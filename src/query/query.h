// Query intermediate representation: the select-project-join-order-group
// subset the paper's workload uses (Section VI-A), produced either by the
// SQL parser or the QueryBuilder.
#ifndef PINUM_QUERY_QUERY_H_
#define PINUM_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/types.h"
#include "stats/selectivity.h"

namespace pinum {

/// `column <op> constant` restriction.
struct FilterPredicate {
  ColumnRef column;
  CompareOp op = CompareOp::kEq;
  Value constant = 0;
};

/// `left = right` equijoin predicate between two tables.
struct JoinPredicate {
  ColumnRef left;
  ColumnRef right;

  /// True if the predicate touches `table`.
  bool Touches(TableId table) const {
    return left.table == table || right.table == table;
  }
  /// The side of the predicate on `table`; requires Touches(table).
  ColumnRef SideOn(TableId table) const {
    return left.table == table ? left : right;
  }
  /// The side of the predicate NOT on `table`; requires Touches(table).
  ColumnRef OtherSide(TableId table) const {
    return left.table == table ? right : left;
  }
};

/// ORDER BY key. Only ascending order matters for plan-coverage purposes
/// (a B-tree covers both directions via backward scans), but the flag is
/// kept for faithful SQL round-tripping.
struct SortKey {
  ColumnRef column;
  bool ascending = true;
};

/// Aggregate applied to non-grouping select columns when GROUP BY is
/// present.
enum class AggKind { kNone, kSum, kCount, kMin, kMax };

/// One query in the workload.
struct Query {
  std::string name;
  /// FROM list; position in this vector is the query-local table position
  /// used by the optimizer's RelSet bitmaps.
  std::vector<TableId> tables;
  std::vector<ColumnRef> select;
  std::vector<FilterPredicate> filters;
  std::vector<JoinPredicate> joins;
  std::vector<ColumnRef> group_by;
  AggKind aggregate = AggKind::kNone;
  std::vector<SortKey> order_by;

  /// Query-local position of a table; -1 when the table is not referenced.
  int PosOfTable(TableId t) const {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (tables[i] == t) return static_cast<int>(i);
    }
    return -1;
  }

  /// All columns of `table` the query touches (select, filters, joins,
  /// group-by, order-by) — determines index-only-scan eligibility.
  std::vector<ColumnIdx> NeededColumns(TableId table) const;

  /// Filter predicates restricted to `table`.
  std::vector<FilterPredicate> FiltersOn(TableId table) const;

  /// Renders the query as SQL text (parseable by the parser module).
  std::string ToSql(const Catalog& catalog) const;
};

/// Fluent builder for Query objects with name-based column resolution.
class QueryBuilder {
 public:
  explicit QueryBuilder(const Catalog* catalog) : catalog_(catalog) {}

  QueryBuilder& Named(std::string name);
  QueryBuilder& From(const std::string& table_name);
  QueryBuilder& Select(const std::string& table_name,
                       const std::string& column);
  QueryBuilder& Where(const std::string& table_name, const std::string& column,
                      CompareOp op, Value constant);
  QueryBuilder& Join(const std::string& left_table, const std::string& left_col,
                     const std::string& right_table,
                     const std::string& right_col);
  QueryBuilder& GroupBy(const std::string& table_name,
                        const std::string& column);
  QueryBuilder& Aggregate(AggKind kind);
  QueryBuilder& OrderBy(const std::string& table_name,
                        const std::string& column, bool ascending = true);

  /// Validates and returns the built query.
  StatusOr<Query> Build();

 private:
  StatusOr<ColumnRef> Resolve(const std::string& table_name,
                              const std::string& column);

  const Catalog* catalog_;
  Query query_;
  Status deferred_error_;
};

}  // namespace pinum

#endif  // PINUM_QUERY_QUERY_H_
