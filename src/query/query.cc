#include "query/query.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace pinum {

std::vector<ColumnIdx> Query::NeededColumns(TableId table) const {
  std::set<ColumnIdx> cols;
  for (const auto& c : select) {
    if (c.table == table) cols.insert(c.column);
  }
  for (const auto& f : filters) {
    if (f.column.table == table) cols.insert(f.column.column);
  }
  for (const auto& j : joins) {
    if (j.left.table == table) cols.insert(j.left.column);
    if (j.right.table == table) cols.insert(j.right.column);
  }
  for (const auto& g : group_by) {
    if (g.table == table) cols.insert(g.column);
  }
  for (const auto& o : order_by) {
    if (o.column.table == table) cols.insert(o.column.column);
  }
  return {cols.begin(), cols.end()};
}

std::vector<FilterPredicate> Query::FiltersOn(TableId table) const {
  std::vector<FilterPredicate> out;
  for (const auto& f : filters) {
    if (f.column.table == table) out.push_back(f);
  }
  return out;
}

namespace {
std::string Qualify(const Catalog& catalog, ColumnRef c) {
  const TableDef* t = catalog.FindTable(c.table);
  if (t == nullptr) return "?.?";
  return t->name + "." + t->columns[static_cast<size_t>(c.column)].name;
}
}  // namespace

std::string Query::ToSql(const Catalog& catalog) const {
  std::ostringstream sql;
  sql << "SELECT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) sql << ", ";
    const bool grouped =
        std::find(group_by.begin(), group_by.end(), select[i]) !=
        group_by.end();
    if (aggregate != AggKind::kNone && !group_by.empty() && !grouped) {
      const char* fn = aggregate == AggKind::kSum     ? "SUM"
                       : aggregate == AggKind::kCount ? "COUNT"
                       : aggregate == AggKind::kMin   ? "MIN"
                                                      : "MAX";
      sql << fn << "(" << Qualify(catalog, select[i]) << ")";
    } else {
      sql << Qualify(catalog, select[i]);
    }
  }
  sql << " FROM ";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) sql << ", ";
    const TableDef* t = catalog.FindTable(tables[i]);
    sql << (t != nullptr ? t->name : "?");
  }
  bool first_pred = true;
  auto pred_sep = [&]() -> const char* {
    const char* sep = first_pred ? " WHERE " : " AND ";
    first_pred = false;
    return sep;
  };
  for (const auto& j : joins) {
    sql << pred_sep() << Qualify(catalog, j.left) << " = "
        << Qualify(catalog, j.right);
  }
  for (const auto& f : filters) {
    sql << pred_sep() << Qualify(catalog, f.column) << " "
        << CompareOpName(f.op) << " " << f.constant;
  }
  if (!group_by.empty()) {
    sql << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) sql << ", ";
      sql << Qualify(catalog, group_by[i]);
    }
  }
  if (!order_by.empty()) {
    sql << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) sql << ", ";
      sql << Qualify(catalog, order_by[i].column)
          << (order_by[i].ascending ? "" : " DESC");
    }
  }
  return sql.str();
}

QueryBuilder& QueryBuilder::Named(std::string name) {
  query_.name = std::move(name);
  return *this;
}

StatusOr<ColumnRef> QueryBuilder::Resolve(const std::string& table_name,
                                          const std::string& column) {
  const TableDef* t = catalog_->FindTableByName(table_name);
  if (t == nullptr) {
    return Status::NotFound("unknown table '" + table_name + "'");
  }
  const ColumnIdx c = t->FindColumn(column);
  if (c < 0) {
    return Status::NotFound("unknown column '" + table_name + "." + column +
                            "'");
  }
  return ColumnRef{t->id, c};
}

QueryBuilder& QueryBuilder::From(const std::string& table_name) {
  const TableDef* t = catalog_->FindTableByName(table_name);
  if (t == nullptr) {
    deferred_error_ = Status::NotFound("unknown table '" + table_name + "'");
    return *this;
  }
  query_.tables.push_back(t->id);
  return *this;
}

QueryBuilder& QueryBuilder::Select(const std::string& table_name,
                                   const std::string& column) {
  auto ref = Resolve(table_name, column);
  if (!ref.ok()) {
    deferred_error_ = ref.status();
    return *this;
  }
  query_.select.push_back(*ref);
  return *this;
}

QueryBuilder& QueryBuilder::Where(const std::string& table_name,
                                  const std::string& column, CompareOp op,
                                  Value constant) {
  auto ref = Resolve(table_name, column);
  if (!ref.ok()) {
    deferred_error_ = ref.status();
    return *this;
  }
  query_.filters.push_back({*ref, op, constant});
  return *this;
}

QueryBuilder& QueryBuilder::Join(const std::string& left_table,
                                 const std::string& left_col,
                                 const std::string& right_table,
                                 const std::string& right_col) {
  auto l = Resolve(left_table, left_col);
  auto r = Resolve(right_table, right_col);
  if (!l.ok() || !r.ok()) {
    deferred_error_ = !l.ok() ? l.status() : r.status();
    return *this;
  }
  query_.joins.push_back({*l, *r});
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(const std::string& table_name,
                                    const std::string& column) {
  auto ref = Resolve(table_name, column);
  if (!ref.ok()) {
    deferred_error_ = ref.status();
    return *this;
  }
  query_.group_by.push_back(*ref);
  return *this;
}

QueryBuilder& QueryBuilder::Aggregate(AggKind kind) {
  query_.aggregate = kind;
  return *this;
}

QueryBuilder& QueryBuilder::OrderBy(const std::string& table_name,
                                    const std::string& column,
                                    bool ascending) {
  auto ref = Resolve(table_name, column);
  if (!ref.ok()) {
    deferred_error_ = ref.status();
    return *this;
  }
  query_.order_by.push_back({*ref, ascending});
  return *this;
}

StatusOr<Query> QueryBuilder::Build() {
  if (!deferred_error_.ok()) return deferred_error_;
  if (query_.tables.empty()) {
    return Status::InvalidArgument("query has no FROM tables");
  }
  if (query_.select.empty()) {
    return Status::InvalidArgument("query has empty select list");
  }
  // Every referenced table must appear in FROM.
  auto check_ref = [&](ColumnRef c) {
    return query_.PosOfTable(c.table) >= 0;
  };
  for (const auto& c : query_.select) {
    if (!check_ref(c)) {
      return Status::InvalidArgument("select references table not in FROM");
    }
  }
  for (const auto& f : query_.filters) {
    if (!check_ref(f.column)) {
      return Status::InvalidArgument("filter references table not in FROM");
    }
  }
  for (const auto& j : query_.joins) {
    if (!check_ref(j.left) || !check_ref(j.right) ||
        j.left.table == j.right.table) {
      return Status::InvalidArgument("malformed join predicate");
    }
  }
  return query_;
}

}  // namespace pinum
