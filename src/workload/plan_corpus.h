// The golden plan-stability corpus: per (family, seed, budget), the
// chosen plans, internal/access costs, seal pruning counts, and the
// greedy + search advisor trajectories (search.* lines: restart and
// swap-move outcomes at a fixed seed), rendered as canonical
// `key = value` text and
// checked in under tests/corpus/. CI regenerates the text and diffs it
// against the golden files (tools/corpus_tool.cc), so a cost-model or
// advisor change fails loudly with the exact changed (workload, query,
// plan) entries instead of silently flipping plans — mongo's
// query_golden idea applied to the what-if cache. Costs are rendered as
// C99 hex doubles (%a): bit-exact round trip, no decimal rounding to
// hide one-ULP drift. Format spec: docs/WORKLOADS.md.
#ifndef PINUM_WORKLOAD_PLAN_CORPUS_H_
#define PINUM_WORKLOAD_PLAN_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/cache_manager.h"

namespace pinum {

/// One corpus cell: a workload family instantiation plus the advisor
/// budget its trajectory is recorded under.
struct CorpusSpec {
  std::string family;
  uint64_t seed = 1;
  int64_t budget_bytes = 3LL * 1024 * 1024 * 1024;
};

/// The checked-in corpus grid: every registered family × seeds {1, 2}.
std::vector<CorpusSpec> DefaultCorpusSpecs();

/// Golden file name for one spec: "<family>_s<seed>.corpus".
std::string CorpusFileName(const CorpusSpec& spec);

/// Builds the spec's workload (serially — num_threads is forced to 1 so
/// accounting is scheduling-independent), runs the greedy advisor and
/// the randomized search (serial, seed 1, no time budget) at the spec's
/// budget, and renders the canonical corpus text. `base_opts`
/// carries everything else (mode, planner knobs): the perturbation test
/// passes a tweaked cost constant through it and asserts the diff
/// reports exactly the cost-bearing entries.
StatusOr<std::string> BuildCorpusText(
    const CorpusSpec& spec, const WorkloadCacheOptions& base_opts = {});

/// One corpus entry that differs between golden and fresh text. Empty
/// old_value means the key was added; empty new_value means removed.
struct CorpusDelta {
  std::string key;
  std::string old_value;
  std::string new_value;
};

/// Diffs two corpus texts entry-by-entry: changed and removed keys in
/// golden order, then added keys in fresh order. Comment (#) and blank
/// lines are ignored; an identical corpus diffs empty.
std::vector<CorpusDelta> DiffCorpusText(const std::string& golden,
                                        const std::string& fresh);

/// Human-readable rendering of a delta list ("key: old -> new", one per
/// line) — what the CI job prints as the reviewable blast radius.
std::string FormatDeltas(const std::vector<CorpusDelta>& deltas);

}  // namespace pinum

#endif  // PINUM_WORKLOAD_PLAN_CORPUS_H_
