// Workload families behind one generator interface: every family
// produces the same artifact bundle — catalog + synthetic statistics +
// seeded queries + candidate universe — so cache building, drift,
// snapshots, serving, and the plan-stability corpus iterate over
// families instead of being pinned to the star schema. Family #1 wraps
// the paper's star-schema generator (src/workload/star_schema.h); the
// others cover the shapes the star workload cannot: ad-hoc many-join
// chains (TPC-H/JOB-like), skewed/correlated statistics, and wide
// fact-to-fact joins with a churned query mix. Knob reference:
// docs/WORKLOADS.md.
#ifndef PINUM_WORKLOAD_WORKLOAD_FAMILY_H_
#define PINUM_WORKLOAD_WORKLOAD_FAMILY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "storage/database.h"
#include "whatif/candidate_set.h"

namespace pinum {

/// Cross-family generator knobs. Every family is a pure function of its
/// options: equal (family, options) produce byte-identical instances —
/// same catalog ids, statistics, query list, and candidate universe —
/// on every platform (generation draws only from common/rng.h). That
/// seeding contract is what makes the golden corpus
/// (src/workload/plan_corpus.h) and the family-parameterized property
/// suites reproducible from a printed (family, seed) pair.
struct WorkloadFamilyOptions {
  uint64_t seed = 42;
  /// Multiplies all logical row counts (statistics are synthetic; no
  /// data is materialized).
  double scale = 1.0;
  /// Queries to generate; 0 = the family's default count.
  int num_queries = 0;
  /// Cap on the generated candidate universe (CandidateOptions::
  /// max_candidates); 0 = the family's default. Because candidates are
  /// emitted in query order, a cap below the full emission starves later
  /// queries' order/join columns of any index that could serve them —
  /// the configuration under which sealing's never-feasible rule
  /// actually prunes plans (the star workload's uncapped universe
  /// prunes 0%).
  size_t max_candidates = 0;
};

/// One generated workload: everything a WorkloadCacheBuilder binding
/// needs, with stable addresses (the builder captures pointers into
/// `db` and `set`, so instances are handed out behind unique_ptr).
/// `db.stats()` and `set` are deliberately mutable — drift
/// (src/workload/drift.h) re-ANALYZEs and appends in place.
struct WorkloadInstance {
  std::string family;
  WorkloadFamilyOptions options;
  Database db;
  std::vector<Query> queries;
  CandidateSet set;
  /// All table ids, primary (largest/fact) table first.
  std::vector<TableId> tables;

  TableId primary_table() const { return tables.front(); }
  const Catalog& catalog() const { return db.catalog(); }
  const StatsCatalog& stats() const { return db.stats(); }
  StatsCatalog& mutable_stats() { return db.stats(); }
};

/// Registered family names, in canonical (corpus/test iteration) order:
/// {"star", "chain", "skew", "fact_pair"}.
const std::vector<std::string>& WorkloadFamilyNames();

/// Generates one workload instance. Unknown family names return
/// kInvalidArgument.
///
///  - "star":      the paper's snowflake benchmark (Section VI-A),
///                 default 6 queries (the 5-way-capped fixture shape).
///  - "chain":     linear FK chain with side branches, queries joining
///                 contiguous subpaths — the ad-hoc many-join shape.
///  - "skew":      star shape whose payload statistics are skewed
///                 equi-depth histograms with mixed correlation and
///                 tiny-vs-huge distinct counts.
///  - "fact_pair": two wide fact tables joined on a shared key plus
///                 dimensions, query mix churned through VaryQueryMix;
///                 default candidate cap leaves some ordered
///                 requirements unservable (nonzero seal pruning).
StatusOr<std::unique_ptr<WorkloadInstance>> MakeWorkloadInstance(
    const std::string& family, const WorkloadFamilyOptions& options = {});

}  // namespace pinum

#endif  // PINUM_WORKLOAD_WORKLOAD_FAMILY_H_
