// Workload-scale cache construction: builds one INUM/PINUM cache per
// workload query concurrently, sharing access-cost optimizer calls
// across queries that price the same candidate index with the same table
// footprint. This scales the paper's per-query procedure ("caching all
// plans with just one optimizer call") to whole workloads — the input
// the index advisor actually consumes.
#ifndef PINUM_WORKLOAD_CACHE_MANAGER_H_
#define PINUM_WORKLOAD_CACHE_MANAGER_H_

#include <cstdint>
#include <vector>

#include <string>

#include "common/thread_pool.h"
#include "inum/access_cost_store.h"
#include "inum/cache.h"
#include "inum/inum_builder.h"
#include "inum/sealed_cache.h"
#include "inum/snapshot.h"
#include "pinum/pinum_builder.h"
#include "query/query.h"
#include "whatif/candidate_set.h"

namespace pinum {

/// Which per-query procedure fills the caches.
enum class CacheBuildMode {
  /// PINUM's hooked calls (a handful per query; the paper's contribution).
  kPinum,
  /// Classic INUM (one call per IOC plus one per candidate; the baseline).
  kClassic,
};

/// Workload-build configuration.
struct WorkloadCacheOptions {
  CacheBuildMode mode = CacheBuildMode::kPinum;
  /// 0 = one thread per hardware core; 1 = strictly serial (the
  /// determinism baseline).
  int num_threads = 0;
  /// Deduplicate access-cost optimizer calls across queries through a
  /// SharedAccessCostStore. Cache *values* are identical either way; only
  /// the number of optimizer calls changes.
  bool share_access_costs = true;
  /// Per-query knobs. The shared_access field of both is managed by the
  /// builder and ignored if set.
  PinumBuildOptions pinum;
  InumBuildOptions inum;
};

/// Per-query build accounting (mode-independent subset of
/// InumBuildStats/PinumBuildStats).
struct QueryBuildStats {
  int64_t plan_cache_calls = 0;
  int64_t access_cost_calls = 0;
  int64_t access_calls_saved = 0;
  size_t plans_cached = 0;
};

/// Whole-workload accounting.
struct WorkloadCacheStats {
  int64_t plan_cache_calls = 0;
  int64_t access_cost_calls = 0;
  /// Access-cost optimizer calls avoided via cross-query sharing. Under
  /// concurrency two queries can race to compute the same entry, so the
  /// split between calls and saved calls is scheduling-dependent; the
  /// cache contents never are.
  int64_t access_calls_saved = 0;
  size_t plans_cached = 0;
  /// Plans the seal step discarded as dominated (can never win under any
  /// configuration); plans served = plans_cached - plans_pruned.
  size_t plans_pruned = 0;
  /// Distinct shared slot-requirement terms across all sealed caches.
  size_t terms = 0;
  /// Posting-list entries across all sealed caches: (index, term) pairs
  /// where the index can lower the term below its base cost. The delta
  /// costing path's per-candidate work is proportional to postings per
  /// index, not to terms — postings / (terms x universe ids) is the
  /// sparsity the advisor's CostWithExtra sweep exploits.
  size_t postings = 0;
  double wall_ms = 0;
  /// Wall time of the one-time seal pass (included in wall_ms).
  double seal_ms = 0;
};

/// The built caches, parallel to the input query vector. `caches` is the
/// mutable build-time form (kept for inspection and incremental reuse);
/// `sealed` is the serving form every what-if consumer should price
/// against — sealed[i] answers bit-identically to caches[i].
struct WorkloadCacheResult {
  std::vector<InumCache> caches;
  std::vector<SealedCache> sealed;
  std::vector<QueryBuildStats> per_query;
  WorkloadCacheStats totals;
};

/// Builds per-query plan caches for an entire workload. One instance is
/// bound to a fixed (base catalog, candidate universe, statistics); its
/// shared store must not be reused across different universes.
class WorkloadCacheBuilder {
 public:
  WorkloadCacheBuilder(const Catalog* base_catalog,
                       const CandidateSet* candidates,
                       const StatsCatalog* stats,
                       WorkloadCacheOptions options = WorkloadCacheOptions{});

  /// Builds every query's cache (concurrently when num_threads != 1) and
  /// seals each once for serving. result.caches[i] and result.sealed[i]
  /// correspond to queries[i]; the first per-query build error aborts the
  /// batch.
  StatusOr<WorkloadCacheResult> BuildAll(const std::vector<Query>& queries);

  /// Persists a build's sealed caches to `path` as one versioned
  /// snapshot file (format: docs/SNAPSHOT_FORMAT.md), stamped with the
  /// epoch fingerprint of this builder's bound (catalog, candidate
  /// universe, statistics). `result.sealed` must be parallel to
  /// `queries` — pass BuildAll's inputs and output unchanged.
  Status SaveSnapshot(const std::string& path,
                      const WorkloadCacheResult& result,
                      const std::vector<Query>& queries) const;

  /// Restores a snapshot into serving-ready sealed caches without any
  /// optimizer call — the restart path. The snapshot's stored epoch must
  /// match this builder's bound (catalog, candidates, stats) exactly;
  /// a snapshot sealed under a different schema, universe, or statistics
  /// is rejected with kFailedPrecondition (see inum/snapshot.h for the
  /// full failure-code taxonomy). The restored caches answer every
  /// cost question bit-identically to the caches that were saved.
  /// The epoch deliberately does not bind the query set (any workload
  /// over the same universe may snapshot); callers serving a specific
  /// workload should verify the returned query_names match it, as
  /// advisor_tool --load does.
  StatusOr<WorkloadSnapshot> LoadSnapshot(const std::string& path) const;

  /// The builder's pool — reusable for batched configuration pricing.
  ThreadPool* pool() { return &pool_; }
  const SharedAccessCostStore& store() const { return store_; }

 private:
  const Catalog* base_catalog_;
  const CandidateSet* candidates_;
  const StatsCatalog* stats_;
  WorkloadCacheOptions options_;
  ThreadPool pool_;
  SharedAccessCostStore store_;
};

}  // namespace pinum

#endif  // PINUM_WORKLOAD_CACHE_MANAGER_H_
