// Workload-scale cache construction: builds one INUM/PINUM cache per
// workload query concurrently, sharing access-cost optimizer calls
// across queries that price the same candidate index with the same table
// footprint. This scales the paper's per-query procedure ("caching all
// plans with just one optimizer call") to whole workloads — the input
// the index advisor actually consumes.
#ifndef PINUM_WORKLOAD_CACHE_MANAGER_H_
#define PINUM_WORKLOAD_CACHE_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "inum/access_cost_store.h"
#include "inum/cache.h"
#include "inum/inum_builder.h"
#include "inum/sealed_cache.h"
#include "inum/snapshot.h"
#include "pinum/pinum_builder.h"
#include "query/query.h"
#include "whatif/candidate_set.h"

namespace pinum {

/// Which per-query procedure fills the caches.
enum class CacheBuildMode {
  /// PINUM's hooked calls (a handful per query; the paper's contribution).
  kPinum,
  /// Classic INUM (one call per IOC plus one per candidate; the baseline).
  kClassic,
};

/// Workload-build configuration.
struct WorkloadCacheOptions {
  CacheBuildMode mode = CacheBuildMode::kPinum;
  /// 0 = one thread per hardware core; 1 = strictly serial (the
  /// determinism baseline).
  int num_threads = 0;
  /// Deduplicate access-cost optimizer calls across queries through a
  /// SharedAccessCostStore. Cache *values* are identical either way; only
  /// the number of optimizer calls changes.
  bool share_access_costs = true;
  /// Per-query knobs. The shared_access field of both is managed by the
  /// builder and ignored if set.
  PinumBuildOptions pinum;
  InumBuildOptions inum;
};

/// Per-query build accounting (mode-independent subset of
/// InumBuildStats/PinumBuildStats).
struct QueryBuildStats {
  int64_t plan_cache_calls = 0;
  int64_t access_cost_calls = 0;
  int64_t access_calls_saved = 0;
  size_t plans_cached = 0;
};

/// Whole-workload accounting.
struct WorkloadCacheStats {
  int64_t plan_cache_calls = 0;
  int64_t access_cost_calls = 0;
  /// Access-cost optimizer calls avoided via cross-query sharing. Under
  /// concurrency two queries can race to compute the same entry, so the
  /// split between calls and saved calls is scheduling-dependent; the
  /// cache contents never are.
  int64_t access_calls_saved = 0;
  size_t plans_cached = 0;
  /// Plans the seal step discarded as dominated (can never win under any
  /// configuration); plans served = plans_cached - plans_pruned.
  size_t plans_pruned = 0;
  /// Distinct shared slot-requirement terms across all sealed caches.
  size_t terms = 0;
  /// Posting-list entries across all sealed caches: (index, term) pairs
  /// where the index can lower the term below its base cost. The delta
  /// costing path's per-candidate work is proportional to postings per
  /// index, not to terms — postings / (terms x universe ids) is the
  /// sparsity the advisor's CostWithExtra sweep exploits.
  size_t postings = 0;
  double wall_ms = 0;
  /// Wall time of the one-time seal pass (included in wall_ms).
  double seal_ms = 0;
};

/// The built caches, parallel to the input query vector. `caches` is the
/// mutable build-time form (kept for inspection and incremental reuse);
/// `sealed` is the serving form every what-if consumer should price
/// against — sealed[i] answers bit-identically to caches[i].
struct WorkloadCacheResult {
  std::vector<InumCache> caches;
  std::vector<SealedCache> sealed;
  std::vector<QueryBuildStats> per_query;
  /// Per-query epoch stamps captured when each cache was (re)built —
  /// QueryStamp under the world that build actually consumed. Snapshots
  /// persist these, NOT stamps recomputed at save time: if the world
  /// drifts between a build and a save, the stored stamps must still
  /// describe the caches' world so StaleQueries reports the drift
  /// instead of masking it.
  std::vector<uint64_t> stamps;
  WorkloadCacheStats totals;
  /// Set only by LoadSnapshotMapped: the snapshot file mapping the
  /// sealed caches' arenas borrow. Each SealedCache also co-owns the
  /// mapping through its arena, so even a result sliced apart keeps the
  /// pages alive; this handle makes the borrow visible and keeps whole-
  /// result copies (serving generations) trivially correct. Null for
  /// built or decode-loaded results.
  std::shared_ptr<const void> mapping;
};

/// Builds per-query plan caches for an entire workload. One instance is
/// bound to a fixed (base catalog, candidate universe, statistics); its
/// shared store must not be reused across different universes.
class WorkloadCacheBuilder {
 public:
  WorkloadCacheBuilder(const Catalog* base_catalog,
                       const CandidateSet* candidates,
                       const StatsCatalog* stats,
                       WorkloadCacheOptions options = WorkloadCacheOptions{});

  /// Builds every query's cache (concurrently when num_threads != 1) and
  /// seals each once for serving. result.caches[i] and result.sealed[i]
  /// correspond to queries[i]; the first per-query build error aborts the
  /// batch. Also records the per-table epoch fingerprints the build ran
  /// under, which a later RebuildQueries diffs to invalidate exactly the
  /// drifted tables' shared access-cost entries.
  StatusOr<WorkloadCacheResult> BuildAll(const std::vector<Query>& queries);

  /// Incremental reseal: re-runs the optimizer and reseals *only* the
  /// named queries — the ones a drift staled (stats re-ANALYZEd,
  /// candidates appended; see src/workload/drift.h and StaleQueries) —
  /// updating `result` in place. `queries` and `result` must be
  /// BuildAll's inputs and output (parallel vectors); every name must
  /// resolve to a query. Costs k stale queries' worth of optimizer
  /// calls instead of a whole-workload rebuild:
  ///
  ///  - shared access-cost entries are invalidated per table, not
  ///    wholesale: tables whose epoch fingerprint (schema slice, stats,
  ///    indexes on the table) drifted since the last build lose their
  ///    entries, still-valid cross-query answers keep serving;
  ///  - rebuilt queries reseal against the *current* universe
  ///    (candidates appended since BuildAll become priceable), while
  ///    untouched queries keep their sealed form — which prices
  ///    beyond-universe ids at base cost, exactly what a cold rebuild
  ///    would compute for them, so mixed-generation serving stays
  ///    bit-identical to a cold BuildAll under the drifted world (the
  ///    differential suite in tests/incremental_reseal_test.cc pins
  ///    this across evaluator and advisor paths);
  ///  - result->totals is recomputed from the updated per-query rows
  ///    (wall_ms/seal_ms become this rebuild's times); the rebuild's
  ///    own accounting lands in `rebuild_totals` when given.
  Status RebuildQueries(const std::vector<std::string>& names,
                        const std::vector<Query>& queries,
                        WorkloadCacheResult* result,
                        WorkloadCacheStats* rebuild_totals = nullptr);

  /// The rebuild-into-copy variant RebuildQueries for always-on serving:
  /// `base` is left completely untouched (readers may keep serving from
  /// it throughout), the rebuild lands in a copy that is returned only
  /// when every per-query build succeeded. This is what the serving
  /// engine's generation swap publishes: the copy becomes generation
  /// N+1 while generation N keeps answering in-flight requests. Same
  /// contract as RebuildQueries otherwise (parallel vectors, per-table
  /// store invalidation, current-universe reseal of the named queries).
  StatusOr<WorkloadCacheResult> RebuildQueriesInto(
      const std::vector<std::string>& names,
      const std::vector<Query>& queries, const WorkloadCacheResult& base,
      WorkloadCacheStats* rebuild_totals = nullptr);

  /// The per-query epoch stamp this builder seals `query` under *right
  /// now*: ComputeQueryStamp over the bound (candidates, stats) folded
  /// with the build mode and planner switches — everything a rebuilt
  /// cache's contents are derived from, so equal stamps mean
  /// cost-identical caches and a drifted stamp means "reseal me".
  /// BuildAll/RebuildQueries capture these into WorkloadCacheResult::
  /// stamps at build time; `table_fp_cache`, when given, memoizes
  /// per-table fingerprints across calls (star workloads touch the
  /// fact table from every query).
  uint64_t QueryStamp(const Query& query,
                      std::map<TableId, uint64_t>* table_fp_cache =
                          nullptr) const;

  /// Indices into `queries` whose snapshot entry is stale: the name at
  /// that position is missing or different, or the stored stamp differs
  /// from the live QueryStamp. Pass the result's names straight to
  /// RebuildQueries after restoring `snapshot.sealed` into a
  /// WorkloadCacheResult; an empty return means the snapshot serves the
  /// whole workload as-is.
  std::vector<size_t> StaleQueries(const WorkloadSnapshot& snapshot,
                                   const std::vector<Query>& queries) const;

  /// The same staleness diff over bare parallel vectors — what a
  /// mapped-snapshot restart has in hand (LoadSnapshotMapped returns
  /// the names separately and the stamps inside the result).
  std::vector<size_t> StaleQueries(const std::vector<std::string>& names,
                                   const std::vector<uint64_t>& stamps,
                                   const std::vector<Query>& queries) const;

  /// Persists a build's sealed caches to `path` as one versioned
  /// snapshot file (format: docs/SNAPSHOT_FORMAT.md), carrying the
  /// universe epoch of this builder's bound candidates plus one
  /// QueryStamp per query. When `path` already holds a snapshot, cache
  /// records whose name and stamp are unchanged are patched in verbatim
  /// instead of re-encoded (the incremental-reseal save path); the file
  /// is still written whole via tmp+rename. `result.sealed` must be
  /// parallel to `queries` — pass BuildAll's inputs and output
  /// unchanged. Per-record patch accounting lands in `save_stats` when
  /// given.
  Status SaveSnapshot(const std::string& path,
                      const WorkloadCacheResult& result,
                      const std::vector<Query>& queries,
                      SnapshotSaveStats* save_stats = nullptr) const;

  /// Restores a snapshot into serving-ready sealed caches without any
  /// optimizer call — the restart path. The snapshot must be
  /// *compatible* with this builder's bound candidates: same base
  /// schema, and its universe equal to — or an append-only prefix of —
  /// the live one; any other mutation is rejected with
  /// kFailedPrecondition (see inum/snapshot.h for the full failure-code
  /// taxonomy). Statistics drift does NOT reject the load: diff the
  /// returned stamps with StaleQueries and hand the stale names to
  /// RebuildQueries — that pair is the incremental restart path. The
  /// restored caches answer every cost question bit-identically to the
  /// caches that were saved. The epoch deliberately does not bind the
  /// query set (any workload over the same universe may snapshot);
  /// callers serving a specific workload should verify the returned
  /// query_names match it, as advisor_tool --load does.
  StatusOr<WorkloadSnapshot> LoadSnapshot(const std::string& path) const;

  /// The zero-copy restart path: mmaps the snapshot read-only
  /// (MappedWorkloadSnapshot::Map) and returns a serving-ready
  /// WorkloadCacheResult whose sealed caches' arenas point straight
  /// into the mapping — no per-element decode, no heap copy of cache
  /// bytes. Same compatibility rule and failure taxonomy as
  /// LoadSnapshot; cost answers are bit-identical to the decode path's.
  /// The result's `mapping` handle (and every cache's arena) pins the
  /// mapped pages, so the result — and serving generations copied from
  /// it — outlive the file's directory entry (saves replace via
  /// rename). The result is RebuildQueries-ready: `caches` holds empty
  /// build-time forms (a mapped restart has no build-time state;
  /// resealed queries get fresh ones), `stamps` are the stored stamps.
  /// `query_names`, when given, receives the stored names — diff with
  /// StaleQueries(names, result.stamps, queries) to find what to
  /// reseal, and verify they match the workload being served.
  StatusOr<WorkloadCacheResult> LoadSnapshotMapped(
      const std::string& path,
      std::vector<std::string>* query_names = nullptr) const;

  /// The builder's pool — reusable for batched configuration pricing.
  ThreadPool* pool() { return &pool_; }
  const SharedAccessCostStore& store() const { return store_; }

 private:
  /// Builds one query's cache + accounting with the active mode; the
  /// shared per-query body of BuildAll and RebuildQueries.
  Status BuildOne(const Query& query, SharedAccessCostStore* store,
                  InumCache* cache, QueryBuildStats* query_stats) const;

  /// Re-derives totals from per_query + sealed sums (wall/seal times are
  /// left to the caller).
  static void RecomputeTotals(WorkloadCacheResult* result);

  /// Diffs the live per-table epoch fingerprints against the ones the
  /// last build recorded, invalidates drifted tables' store entries, and
  /// re-records. Returns the drifted tables.
  std::vector<TableId> RefreshTableFingerprints(
      const std::vector<Query>& queries);

  const Catalog* base_catalog_;
  const CandidateSet* candidates_;
  const StatsCatalog* stats_;
  WorkloadCacheOptions options_;
  ThreadPool pool_;
  SharedAccessCostStore store_;
  /// Per-table epoch fingerprints (snapshot.h) as of the last
  /// BuildAll/RebuildQueries, for exact store invalidation under drift.
  std::map<TableId, uint64_t> table_fingerprints_;
};

}  // namespace pinum

#endif  // PINUM_WORKLOAD_CACHE_MANAGER_H_
