// The paper's synthetic benchmark (Section VI-A): a star-schema database
// with one large fact table and 28 smaller dimension tables arranged as a
// snowflake ("the dimension tables themselves have other dimension
// tables"), numeric uniformly-distributed columns, and ten queries that
// join foreign-key-connected subsets with randomly generated select
// columns, 1%-selectivity where clauses, and order-by clauses.
#ifndef PINUM_WORKLOAD_STAR_SCHEMA_H_
#define PINUM_WORKLOAD_STAR_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "query/query.h"
#include "storage/database.h"

namespace pinum {

/// Workload parameters. Defaults reproduce the paper's 10 GB database at
/// `scale = 1.0`; experiments that only exercise the cost model keep the
/// paper scale (statistics are synthetic, no data is materialized), while
/// execution experiments materialize at a laptop-scale fraction.
struct StarSchemaSpec {
  uint64_t seed = 42;
  /// Multiplies all logical row counts.
  double scale = 1.0;
  int64_t fact_rows = 60'000'000;
  int64_t l1_rows = 500'000;
  int64_t l2_rows = 50'000;
  /// Number of level-1 dimensions (fact foreign keys).
  int num_l1 = 8;
  /// Children per level-1 dimension; must sum with num_l1 to 28 for the
  /// paper's layout (8 + 3+3+3+3+2+2+2+2 = 28).
  std::vector<int> l1_children = {3, 3, 3, 3, 2, 2, 2, 2};
  /// Payload columns per table. Wide enough that a covering index over a
  /// query's few needed columns is a small fraction of the fact heap —
  /// the regime in which the paper's advisor fits four covering fact
  /// indexes into a half-database budget (Section VI-E).
  int payload_cols = 20;
  /// Probability that a query's select list includes a fact payload
  /// column; the paper's analytical queries project dimension attributes
  /// while filtering on the fact table.
  double fact_select_probability = 0.0;
  /// Payload values are uniform in [1, payload_max] ("uniformly
  /// distributed across all positive integers").
  int64_t payload_max = 1'000'000'000;
  /// Number of joined tables per query, Q1..Q10.
  std::vector<int> query_sizes = {2, 3, 3, 4, 4, 5, 5, 6, 6, 7};
  double filter_selectivity = 0.01;
  /// Filters per query.
  int filters_per_query = 2;
  /// Fraction of queries that aggregate with GROUP BY (0 reproduces the
  /// paper's workload; tests raise it to exercise the grouping planner).
  double group_by_fraction = 0.0;
};

/// A generated star-schema database (catalog, statistics, queries, and —
/// after Materialize — rows and ANALYZE'd statistics).
class StarSchemaWorkload {
 public:
  /// Builds catalog, synthetic statistics at spec.scale, and the query
  /// workload. No data is materialized.
  static StatusOr<StarSchemaWorkload> Create(const StarSchemaSpec& spec);

  Database& db() { return db_; }
  const Database& db() const { return db_; }
  const std::vector<Query>& queries() const { return queries_; }
  const StarSchemaSpec& spec() const { return spec_; }
  /// All table ids, fact first.
  const std::vector<TableId>& tables() const { return tables_; }
  TableId fact_table() const { return tables_.front(); }

  /// Generates rows for every table at `exec_scale` (fraction of the
  /// logical row counts) and recomputes statistics from the data.
  Status Materialize(double exec_scale);

  /// Logical row count of `table` at the spec's scale.
  double LogicalRows(TableId table) const;

 private:
  StarSchemaWorkload() = default;

  Status BuildSchema();
  void BuildSyntheticStats();
  Status BuildQueries();

  StarSchemaSpec spec_;
  Database db_;
  std::vector<Query> queries_;
  std::vector<TableId> tables_;
  std::vector<double> logical_rows_;  // parallel to tables_
};

}  // namespace pinum

#endif  // PINUM_WORKLOAD_STAR_SCHEMA_H_
