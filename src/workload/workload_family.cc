#include "workload/workload_family.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "advisor/candidate_generator.h"
#include "common/rng.h"
#include "stats/histogram.h"
#include "workload/drift.h"
#include "workload/star_schema.h"

namespace pinum {

namespace {

constexpr int64_t kPayloadMax = 1'000'000'000;

/// Uniform synthetic column statistics (the star generator's regime).
ColumnStats UniformCol(double n_distinct, Value min, Value max,
                       double correlation) {
  ColumnStats cs;
  cs.n_distinct = n_distinct;
  cs.min = min;
  cs.max = max;
  cs.correlation = correlation;
  cs.histogram = Histogram::Uniform(min, max);
  return cs;
}

/// Skewed synthetic column statistics: an equi-depth histogram over
/// seeded samples v = 1 + (max-1) * u^alpha — mass piles up near 1 for
/// alpha > 1, so equal-width filter bounds hit wildly unequal row
/// fractions (the regime uniform stats can never produce).
ColumnStats SkewedCol(Rng* rng, double alpha, double n_distinct,
                      double correlation) {
  std::vector<Value> data(2048);
  for (Value& v : data) {
    v = 1 + static_cast<Value>(std::pow(rng->NextDouble(), alpha) *
                               static_cast<double>(kPayloadMax - 1));
  }
  ColumnStats cs;
  cs.histogram = Histogram::FromData(std::move(data), 64);
  cs.min = cs.histogram.min();
  cs.max = cs.histogram.max();
  cs.n_distinct = n_distinct;
  cs.correlation = correlation;
  return cs;
}

/// Log-uniform selectivity draw in [lo, hi] and the matching `col <=
/// bound` constant on a uniform [1, kPayloadMax] column.
Value UniformFilterBound(Rng* rng, double lo, double hi) {
  const double u = rng->NextDouble();
  const double sel = std::exp(std::log(lo) + u * (std::log(hi) - std::log(lo)));
  return 1 + static_cast<Value>(
                 std::llround(sel * static_cast<double>(kPayloadMax - 1)));
}

/// Generates the candidate universe for a finished (catalog, stats,
/// queries) bundle and finalizes the instance.
StatusOr<std::unique_ptr<WorkloadInstance>> Finish(
    std::unique_ptr<WorkloadInstance> inst, size_t max_candidates) {
  CandidateOptions copt;
  copt.max_candidates = max_candidates;
  auto cands = GenerateCandidates(inst->queries, inst->db.catalog(),
                                  inst->db.stats(), copt);
  PINUM_ASSIGN_OR_RETURN(inst->set,
                         MakeCandidateSet(inst->db.catalog(), cands));
  return inst;
}

// ---- Family #1: the paper's star schema ----------------------------------

StatusOr<std::unique_ptr<WorkloadInstance>> MakeStar(
    const WorkloadFamilyOptions& options) {
  StarSchemaSpec spec;
  spec.seed = options.seed;
  spec.scale = options.scale;
  // Prefix of the paper's Q1..Q10 sizes; the 6-query default stops at
  // 5-way joins (6/7-way add sanitizer minutes but no new slot shapes).
  const int nq = options.num_queries == 0
                     ? 6
                     : std::min<int>(options.num_queries,
                                     static_cast<int>(spec.query_sizes.size()));
  spec.query_sizes.resize(static_cast<size_t>(nq));
  PINUM_ASSIGN_OR_RETURN(StarSchemaWorkload w, StarSchemaWorkload::Create(spec));

  auto inst = std::make_unique<WorkloadInstance>();
  inst->family = "star";
  inst->options = options;
  inst->queries = w.queries();
  inst->tables = w.tables();
  inst->db = std::move(w.db());
  return Finish(std::move(inst), options.max_candidates);
}

// ---- Family #2: ad-hoc many-join chains (TPC-H/JOB-like) ------------------

StatusOr<std::unique_ptr<WorkloadInstance>> MakeChain(
    const WorkloadFamilyOptions& options) {
  const int kChainLen = 8;
  const std::set<int> kBranchAt = {1, 3, 5};
  const int kMaxJoinChain = 5;  // plus at most one branch per query

  auto inst = std::make_unique<WorkloadInstance>();
  inst->family = "chain";
  inst->options = options;
  Catalog& cat = inst->db.catalog();

  struct GenTable {
    TableId id = kInvalidTableId;
    double rows = 0;
    ColumnIdx fk_next = -1;
    ColumnIdx fk_side = -1;
    std::vector<ColumnIdx> payload;
  };
  std::vector<GenTable> chain(kChainLen);
  std::map<int, GenTable> branches;  // keyed by owner position

  // Chain tables c0 (largest) .. c7, row counts descending geometrically
  // — the many-join regime where join order and intermediate sizes
  // dominate, not one fact table's scan.
  for (int i = 0; i < kChainLen; ++i) {
    TableDef def;
    def.name = "c" + std::to_string(i);
    def.columns.push_back({"id", TypeId::kInt64});
    if (i + 1 < kChainLen) def.columns.push_back({"fk_next", TypeId::kInt64});
    if (kBranchAt.count(i) > 0) {
      def.columns.push_back({"fk_side", TypeId::kInt64});
    }
    for (int p = 1; p <= 6; ++p) {
      def.columns.push_back({"p" + std::to_string(p), TypeId::kInt64});
    }
    GenTable& t = chain[static_cast<size_t>(i)];
    t.rows = std::max(2000.0, 20e6 * options.scale / std::pow(5.0, i));
    PINUM_ASSIGN_OR_RETURN(t.id, cat.AddTable(def));
    const TableDef* added = cat.FindTable(t.id);
    t.fk_next = added->FindColumn("fk_next");
    t.fk_side = added->FindColumn("fk_side");
    for (size_t c = 0; c < added->columns.size(); ++c) {
      if (added->columns[c].name[0] == 'p') {
        t.payload.push_back(static_cast<ColumnIdx>(c));
      }
    }
    inst->tables.push_back(t.id);
  }
  for (int i : kBranchAt) {
    TableDef def;
    def.name = "b" + std::to_string(i);
    def.columns.push_back({"id", TypeId::kInt64});
    for (int p = 1; p <= 4; ++p) {
      def.columns.push_back({"p" + std::to_string(p), TypeId::kInt64});
    }
    GenTable t;
    t.rows = std::max(1000.0, chain[static_cast<size_t>(i)].rows / 2.0);
    PINUM_ASSIGN_OR_RETURN(t.id, cat.AddTable(def));
    const TableDef* added = cat.FindTable(t.id);
    for (size_t c = 1; c < added->columns.size(); ++c) {
      t.payload.push_back(static_cast<ColumnIdx>(c));
    }
    inst->tables.push_back(t.id);
    branches.emplace(i, t);
  }
  for (int i = 0; i + 1 < kChainLen; ++i) {
    PINUM_RETURN_IF_ERROR(cat.AddForeignKey({chain[static_cast<size_t>(i)].id,
                                             chain[static_cast<size_t>(i)].fk_next,
                                             chain[static_cast<size_t>(i + 1)].id,
                                             0}));
  }
  for (const auto& [owner, b] : branches) {
    PINUM_RETURN_IF_ERROR(cat.AddForeignKey(
        {chain[static_cast<size_t>(owner)].id,
         chain[static_cast<size_t>(owner)].fk_side, b.id, 0}));
  }

  auto put_stats = [&](const GenTable& t, double next_rows, double side_rows) {
    const TableDef* def = cat.FindTable(t.id);
    TableStats stats;
    stats.row_count = t.rows;
    stats.RecomputePages(*def);
    stats.columns.resize(def->columns.size());
    for (size_t c = 0; c < def->columns.size(); ++c) {
      const std::string& name = def->columns[c].name;
      if (name == "id") {
        stats.columns[c] = UniformCol(t.rows, 0,
                                      static_cast<Value>(t.rows) - 1, 1.0);
      } else if (name == "fk_next") {
        stats.columns[c] = UniformCol(std::min(t.rows, next_rows), 0,
                                      static_cast<Value>(next_rows) - 1, 0.0);
      } else if (name == "fk_side") {
        stats.columns[c] = UniformCol(std::min(t.rows, side_rows), 0,
                                      static_cast<Value>(side_rows) - 1, 0.0);
      } else {
        stats.columns[c] = UniformCol(std::min(t.rows, 1e9), 1,
                                      kPayloadMax, 0.0);
      }
    }
    inst->db.stats().Put(t.id, std::move(stats));
  };
  for (int i = 0; i < kChainLen; ++i) {
    const double next_rows =
        i + 1 < kChainLen ? chain[static_cast<size_t>(i + 1)].rows : 1;
    const double side_rows =
        branches.count(i) > 0 ? branches.at(i).rows : 1;
    put_stats(chain[static_cast<size_t>(i)], next_rows, side_rows);
  }
  for (const auto& [owner, b] : branches) {
    (void)owner;
    put_stats(b, 1, 1);
  }

  // Queries: contiguous chain subpaths, sometimes widened by one branch.
  Rng rng(options.seed);
  const int nq = options.num_queries == 0 ? 10 : options.num_queries;
  for (int qi = 0; qi < nq; ++qi) {
    const int len = 2 + static_cast<int>(rng.Index(kMaxJoinChain - 1));
    const int start =
        static_cast<int>(rng.Index(static_cast<size_t>(kChainLen - len + 1)));

    Query q;
    q.name = "chain_q" + std::to_string(qi + 1);
    std::vector<const GenTable*> joined;
    for (int i = start; i < start + len; ++i) {
      const GenTable& t = chain[static_cast<size_t>(i)];
      q.tables.push_back(t.id);
      joined.push_back(&t);
      if (i > start) {
        const GenTable& prev = chain[static_cast<size_t>(i - 1)];
        q.joins.push_back({{prev.id, prev.fk_next}, {t.id, 0}});
      }
    }
    if (rng.Chance(0.5)) {
      std::vector<int> owners;
      for (int i = start; i < start + len; ++i) {
        if (branches.count(i) > 0) owners.push_back(i);
      }
      if (!owners.empty()) {
        const int owner = owners[rng.Index(owners.size())];
        const GenTable& oc = chain[static_cast<size_t>(owner)];
        const GenTable& b = branches.at(owner);
        q.tables.push_back(b.id);
        joined.push_back(&b);
        q.joins.push_back({{oc.id, oc.fk_side}, {b.id, 0}});
      }
    }

    const int num_select = 2 + static_cast<int>(rng.Index(3));
    for (int s = 0; s < num_select; ++s) {
      const GenTable* t = joined[rng.Index(joined.size())];
      const ColumnRef col = {t->id, t->payload[rng.Index(t->payload.size())]};
      if (std::find(q.select.begin(), q.select.end(), col) == q.select.end()) {
        q.select.push_back(col);
      }
    }
    for (int f = 0; f < 2; ++f) {
      const GenTable* t = joined[rng.Index(joined.size())];
      q.filters.push_back({{t->id, t->payload[rng.Index(t->payload.size())]},
                           CompareOp::kLe,
                           UniformFilterBound(&rng, 0.002, 0.2)});
    }
    if (!q.select.empty() && rng.Chance(0.7)) {
      q.order_by.push_back({q.select[rng.Index(q.select.size())], true});
    }
    inst->queries.push_back(std::move(q));
  }
  return Finish(std::move(inst), options.max_candidates);
}

// ---- Family #3: skewed / correlated statistics ----------------------------

StatusOr<std::unique_ptr<WorkloadInstance>> MakeSkew(
    const WorkloadFamilyOptions& options) {
  const int kNumDims = 6;
  const double kDimRows[kNumDims] = {2'000,   10'000,  50'000,
                                     100'000, 250'000, 500'000};

  auto inst = std::make_unique<WorkloadInstance>();
  inst->family = "skew";
  inst->options = options;
  Catalog& cat = inst->db.catalog();
  Rng rng(options.seed);

  TableDef fact_def;
  fact_def.name = "f";
  fact_def.columns.push_back({"id", TypeId::kInt64});
  for (int d = 1; d <= kNumDims; ++d) {
    fact_def.columns.push_back({"fk_d" + std::to_string(d), TypeId::kInt64});
  }
  for (int p = 1; p <= 8; ++p) {
    fact_def.columns.push_back({"s" + std::to_string(p), TypeId::kInt64});
  }
  PINUM_ASSIGN_OR_RETURN(const TableId fact, cat.AddTable(fact_def));
  inst->tables.push_back(fact);

  std::vector<TableId> dims(kNumDims);
  for (int d = 0; d < kNumDims; ++d) {
    TableDef def;
    def.name = "d" + std::to_string(d + 1);
    def.columns.push_back({"id", TypeId::kInt64});
    for (int p = 1; p <= 4; ++p) {
      def.columns.push_back({"t" + std::to_string(p), TypeId::kInt64});
    }
    PINUM_ASSIGN_OR_RETURN(dims[static_cast<size_t>(d)], cat.AddTable(def));
    PINUM_RETURN_IF_ERROR(cat.AddForeignKey(
        {fact, static_cast<ColumnIdx>(1 + d), dims[static_cast<size_t>(d)], 0}));
    inst->tables.push_back(dims[static_cast<size_t>(d)]);
  }

  // Payload statistics cycle through (alpha, distinct-count, correlation)
  // mixes: heavy skew with tiny domains next to mild skew with huge
  // domains, heaps physically correlated, anti-correlated, and shuffled.
  const double kAlpha[4] = {4.0, 2.5, 6.0, 1.5};
  const double kDistinct[4] = {60, 1e6, 5'000, 2e8};
  const double kCorr[4] = {0.95, -0.9, 0.0, 0.6};
  int cycle = 0;
  auto put_stats = [&](TableId t, double rows) {
    const TableDef* def = cat.FindTable(t);
    TableStats stats;
    stats.row_count = rows;
    stats.RecomputePages(*def);
    stats.columns.resize(def->columns.size());
    for (size_t c = 0; c < def->columns.size(); ++c) {
      const std::string& name = def->columns[c].name;
      if (name == "id") {
        stats.columns[c] =
            UniformCol(rows, 0, static_cast<Value>(rows) - 1, 1.0);
      } else if (name.rfind("fk_", 0) == 0) {
        const double parent =
            kDimRows[name[4] - '1'] * std::max(options.scale, 1e-3);
        // Alternate fully-keyed and 60%-keyed foreign keys so join
        // selectivity estimates differ across dimensions.
        const double distinct = (name[4] - '1') % 2 == 0 ? parent : 0.6 * parent;
        stats.columns[c] = UniformCol(std::min(rows, distinct), 0,
                                      static_cast<Value>(parent) - 1, 0.0);
      } else {
        const int k = cycle++ % 4;
        stats.columns[c] = SkewedCol(&rng, kAlpha[k],
                                     std::min(rows, kDistinct[k]), kCorr[k]);
      }
    }
    inst->db.stats().Put(t, std::move(stats));
  };
  const double fact_rows = 8e6 * options.scale;
  put_stats(fact, fact_rows);
  for (int d = 0; d < kNumDims; ++d) {
    put_stats(dims[static_cast<size_t>(d)],
              kDimRows[d] * std::max(options.scale, 1e-3));
  }

  // Queries: fact + a random dimension subset; filter bounds are drawn
  // from the filtered column's own histogram boundaries, so the same
  // `<=` shape lands anywhere from ~0% to ~100% selectivity depending on
  // where the skewed mass sits.
  const int nq = options.num_queries == 0 ? 8 : options.num_queries;
  for (int qi = 0; qi < nq; ++qi) {
    Query q;
    q.name = "skew_q" + std::to_string(qi + 1);
    q.tables.push_back(fact);
    const size_t ndim = 1 + rng.Index(4);
    std::vector<size_t> picks = rng.SampleIndices(kNumDims, ndim);
    for (size_t d : picks) {
      const TableId dim = dims[d];
      q.tables.push_back(dim);
      q.joins.push_back({{fact, static_cast<ColumnIdx>(1 + d)}, {dim, 0}});
    }

    std::vector<ColumnRef> payload_pool;
    for (TableId t : q.tables) {
      const TableDef* def = cat.FindTable(t);
      for (size_t c = 0; c < def->columns.size(); ++c) {
        const char lead = def->columns[c].name[0];
        if (lead == 's' || lead == 't') {
          payload_pool.push_back({t, static_cast<ColumnIdx>(c)});
        }
      }
    }
    rng.Shuffle(&payload_pool);
    const size_t num_select = std::min(payload_pool.size(), 2 + rng.Index(3));
    q.select.assign(payload_pool.begin(),
                    payload_pool.begin() + static_cast<long>(num_select));

    for (int f = 0; f < 2; ++f) {
      const ColumnRef col = payload_pool[rng.Index(payload_pool.size())];
      const ColumnStats* cs = inst->db.stats().FindColumn(col);
      const auto& bounds = cs->histogram.bounds();
      q.filters.push_back(
          {col, CompareOp::kLe, bounds[rng.Index(bounds.size())]});
    }
    if (!q.select.empty()) {
      q.order_by.push_back({q.select[rng.Index(q.select.size())], true});
    }
    // A quarter of the mix aggregates (the star generator's group-by
    // shape), exercising the grouping planner under skewed stats.
    if (rng.Chance(0.25) && q.select.size() >= 2) {
      q.group_by.push_back(q.select[0]);
      q.aggregate = AggKind::kSum;
      q.order_by.clear();
      q.order_by.push_back({q.select[0], true});
    }
    inst->queries.push_back(std::move(q));
  }
  return Finish(std::move(inst), options.max_candidates);
}

// ---- Family #4: wide fact-to-fact joins with a churned mix ----------------

StatusOr<std::unique_ptr<WorkloadInstance>> MakeFactPair(
    const WorkloadFamilyOptions& options) {
  // Default candidate cap: queries emit candidates in order, so capping
  // the universe leaves later queries' order-by/join columns with no
  // index that can serve them — their ordered-requirement plans become
  // never-feasible and sealing prunes them (NumPlansPruned > 0), the
  // case the uncapped star universe cannot produce.
  const size_t max_candidates =
      options.max_candidates == 0 ? 28 : options.max_candidates;

  auto inst = std::make_unique<WorkloadInstance>();
  inst->family = "fact_pair";
  inst->options = options;
  Catalog& cat = inst->db.catalog();
  Rng rng(options.seed);

  const double kSharedKeys = 200'000;
  struct Wide {
    TableId id = kInvalidTableId;
    double rows = 0;
    ColumnIdx key = -1;
    ColumnIdx fk_dim = -1;
    std::vector<ColumnIdx> payload;
  };
  auto add_wide = [&](const std::string& name, double rows, char payload_lead,
                      const std::string& fk_name) -> StatusOr<Wide> {
    TableDef def;
    def.name = name;
    def.columns.push_back({"id", TypeId::kInt64});
    def.columns.push_back({"k", TypeId::kInt64});
    def.columns.push_back({fk_name, TypeId::kInt64});
    for (int p = 1; p <= 12; ++p) {
      def.columns.push_back(
          {std::string(1, payload_lead) + std::to_string(p), TypeId::kInt64});
    }
    Wide w;
    w.rows = rows;
    w.key = 1;
    w.fk_dim = 2;
    PINUM_ASSIGN_OR_RETURN(w.id, cat.AddTable(def));
    for (ColumnIdx c = 3; c < static_cast<ColumnIdx>(def.columns.size()); ++c) {
      w.payload.push_back(c);
    }
    return w;
  };
  PINUM_ASSIGN_OR_RETURN(
      const Wide fa, add_wide("fa", 6e6 * options.scale, 'p', "fk_da"));
  PINUM_ASSIGN_OR_RETURN(
      const Wide fb, add_wide("fb", 3e6 * options.scale, 'q', "fk_db"));

  auto add_dim = [&](const std::string& name, double rows,
                     char payload_lead) -> StatusOr<std::pair<TableId, double>> {
    TableDef def;
    def.name = name;
    def.columns.push_back({"id", TypeId::kInt64});
    for (int p = 1; p <= 3; ++p) {
      def.columns.push_back(
          {std::string(1, payload_lead) + std::to_string(p), TypeId::kInt64});
    }
    PINUM_ASSIGN_OR_RETURN(const TableId id, cat.AddTable(def));
    return std::make_pair(id, rows);
  };
  PINUM_ASSIGN_OR_RETURN(
      const auto da, add_dim("da", std::max(1'000.0, 100e3 * options.scale), 'a'));
  PINUM_ASSIGN_OR_RETURN(
      const auto db, add_dim("db", std::max(1'000.0, 50e3 * options.scale), 'b'));
  PINUM_RETURN_IF_ERROR(cat.AddForeignKey({fa.id, fa.fk_dim, da.first, 0}));
  PINUM_RETURN_IF_ERROR(cat.AddForeignKey({fb.id, fb.fk_dim, db.first, 0}));
  inst->tables = {fa.id, fb.id, da.first, db.first};

  auto put_stats = [&](TableId t, double rows, double dim_rows) {
    const TableDef* def = cat.FindTable(t);
    TableStats stats;
    stats.row_count = rows;
    stats.RecomputePages(*def);
    stats.columns.resize(def->columns.size());
    for (size_t c = 0; c < def->columns.size(); ++c) {
      const std::string& name = def->columns[c].name;
      if (name == "id") {
        stats.columns[c] =
            UniformCol(rows, 0, static_cast<Value>(rows) - 1, 1.0);
      } else if (name == "k") {
        stats.columns[c] =
            UniformCol(std::min(rows, kSharedKeys), 0,
                       static_cast<Value>(kSharedKeys) - 1, 0.0);
      } else if (name.rfind("fk_", 0) == 0) {
        stats.columns[c] = UniformCol(std::min(rows, dim_rows), 0,
                                      static_cast<Value>(dim_rows) - 1, 0.0);
      } else {
        stats.columns[c] =
            UniformCol(std::min(rows, 1e9), 1, kPayloadMax, 0.0);
      }
    }
    inst->db.stats().Put(t, std::move(stats));
  };
  put_stats(fa.id, fa.rows, da.second);
  put_stats(fb.id, fb.rows, db.second);
  put_stats(da.first, da.second, 1);
  put_stats(db.first, db.second, 1);

  // Base queries all join the two wide facts on the shared key — the
  // join neither side's FK tree motivates — then optionally pull a
  // dimension in from either side.
  const int nq = options.num_queries == 0 ? 10 : options.num_queries;
  std::vector<Query> base;
  for (int qi = 0; qi < nq; ++qi) {
    Query q;
    q.name = "pair_q" + std::to_string(qi + 1);
    q.tables = {fa.id, fb.id};
    q.joins.push_back({{fa.id, fa.key}, {fb.id, fb.key}});
    if (rng.Chance(0.6)) {
      q.tables.push_back(da.first);
      q.joins.push_back({{fa.id, fa.fk_dim}, {da.first, 0}});
    }
    if (rng.Chance(0.4)) {
      q.tables.push_back(db.first);
      q.joins.push_back({{fb.id, fb.fk_dim}, {db.first, 0}});
    }

    std::vector<ColumnRef> payload_pool;
    for (TableId t : q.tables) {
      const TableDef* def = cat.FindTable(t);
      for (size_t c = 0; c < def->columns.size(); ++c) {
        const char lead = def->columns[c].name[0];
        if (lead == 'p' || lead == 'q' || lead == 'a' || lead == 'b') {
          payload_pool.push_back({t, static_cast<ColumnIdx>(c)});
        }
      }
    }
    rng.Shuffle(&payload_pool);
    const size_t num_select = std::min(payload_pool.size(), 3 + rng.Index(3));
    q.select.assign(payload_pool.begin(),
                    payload_pool.begin() + static_cast<long>(num_select));

    for (int f = 0; f < 2; ++f) {
      const Wide& w = rng.Chance(0.5) ? fa : fb;
      q.filters.push_back({{w.id, w.payload[rng.Index(w.payload.size())]},
                           CompareOp::kLe,
                           UniformFilterBound(&rng, 0.005, 0.1)});
    }
    if (!q.select.empty() && rng.Chance(0.6)) {
      q.order_by.push_back({q.select[rng.Index(q.select.size())], true});
    }
    base.push_back(std::move(q));
  }
  // Churned mix: a shuffled subset plus renamed clones (the drift
  // module's query-churn half), so the served workload is not the raw
  // generator output.
  inst->queries = VaryQueryMix(base, options.seed ^ 0x9e3779b97f4a7c15ULL,
                               std::max<size_t>(4, base.size() * 2 / 3));
  return Finish(std::move(inst), max_candidates);
}

}  // namespace

const std::vector<std::string>& WorkloadFamilyNames() {
  static const std::vector<std::string> kNames = {"star", "chain", "skew",
                                                  "fact_pair"};
  return kNames;
}

StatusOr<std::unique_ptr<WorkloadInstance>> MakeWorkloadInstance(
    const std::string& family, const WorkloadFamilyOptions& options) {
  if (family == "star") return MakeStar(options);
  if (family == "chain") return MakeChain(options);
  if (family == "skew") return MakeSkew(options);
  if (family == "fact_pair") return MakeFactPair(options);
  return Status::InvalidArgument("unknown workload family: " + family);
}

}  // namespace pinum
