#include "workload/drift.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/rng.h"
#include "whatif/whatif_index.h"

namespace pinum {

std::vector<std::string> QueriesTouchingTables(
    const std::vector<Query>& queries, const std::vector<TableId>& tables) {
  std::vector<std::string> stale;
  for (const Query& q : queries) {
    for (TableId t : tables) {
      if (q.PosOfTable(t) >= 0) {
        stale.push_back(q.name);
        break;
      }
    }
  }
  return stale;
}

void DriftTableStats(const Catalog& catalog, TableId table, double factor,
                     StatsCatalog* stats) {
  const TableStats* current = stats->Find(table);
  const TableDef* def = catalog.FindTable(table);
  if (current == nullptr || def == nullptr) return;
  TableStats drifted = *current;
  drifted.row_count = std::max(1.0, drifted.row_count * factor);
  drifted.RecomputePages(*def);
  for (ColumnStats& cs : drifted.columns) {
    cs.n_distinct = std::min(drifted.row_count, cs.n_distinct * factor);
  }
  stats->Put(table, std::move(drifted));
}

StatusOr<DriftResult> ApplyDrift(const std::vector<Query>& queries,
                                 CandidateSet* set, StatsCatalog* stats,
                                 size_t target_stale, uint64_t seed,
                                 const DriftOptions& options) {
  DriftResult result;
  Rng rng(seed);

  // Tables any query touches, each with its blast radius (how many
  // queries a drift of it stales). Smallest radius first — with ties
  // shuffled by the seed — so small targets drift leaf tables, not the
  // fact table everything joins.
  std::vector<TableId> tables;
  for (const Query& q : queries) {
    for (TableId t : q.tables) {
      if (std::find(tables.begin(), tables.end(), t) == tables.end()) {
        tables.push_back(t);
      }
    }
  }
  std::sort(tables.begin(), tables.end());
  rng.Shuffle(&tables);
  std::map<TableId, size_t> radius;
  for (TableId t : tables) {
    radius[t] = QueriesTouchingTables(queries, {t}).size();
  }
  std::stable_sort(tables.begin(), tables.end(), [&](TableId a, TableId b) {
    return radius[a] < radius[b];
  });

  if (target_stale > 0) {
    for (TableId t : tables) {
      if (QueriesTouchingTables(queries, result.drifted_tables).size() >=
          target_stale) {
        break;
      }
      result.drifted_tables.push_back(t);
      const double factor =
          options.factor_min +
          (options.factor_max - options.factor_min) * rng.NextDouble();
      DriftTableStats(set->universe, t, factor, stats);
    }
  }

  for (int c = 0; c < options.add_candidates; ++c) {
    // New candidates land on drifted tables (the realistic shape: the
    // advisor reacts to the same drift), or on any query table when the
    // drift is growth-only.
    const std::vector<TableId>& pool =
        result.drifted_tables.empty() ? tables : result.drifted_tables;
    if (pool.empty()) break;
    const TableId table = pool[rng.Index(pool.size())];
    const TableDef* def = set->universe.FindTable(table);
    const TableStats* ts = stats->Find(table);
    if (def == nullptr || ts == nullptr || def->columns.empty()) continue;
    std::vector<ColumnIdx> keys = {
        static_cast<ColumnIdx>(rng.Index(def->columns.size()))};
    // A name no generator produces, unique per (seed, ordinal), so
    // repeated drifts of one universe cannot collide.
    const std::string name = "drift_" + std::to_string(seed) + "_" +
                             std::to_string(c) + "_" + def->name;
    PINUM_ASSIGN_OR_RETURN(
        const std::vector<IndexId> added,
        set->Append({MakeWhatIfIndex(name, *def, keys, ts->row_count)}));
    result.added_candidates.insert(result.added_candidates.end(),
                                   added.begin(), added.end());
    if (std::find(result.drifted_tables.begin(), result.drifted_tables.end(),
                  table) == result.drifted_tables.end()) {
      result.drifted_tables.push_back(table);
    }
  }

  result.stale_queries = QueriesTouchingTables(queries, result.drifted_tables);
  return result;
}

std::vector<Query> VaryQueryMix(const std::vector<Query>& queries,
                                uint64_t seed, size_t min_keep) {
  Rng rng(seed);
  std::vector<Query> mix = queries;
  rng.Shuffle(&mix);
  const size_t keep =
      std::max(std::min(min_keep, mix.size()),
               mix.empty() ? size_t{0} : 1 + rng.Index(mix.size()));
  mix.resize(keep);
  // Clone names are uniquified against everything already in the mix —
  // rounds compose (this round's input may itself contain clones), and
  // duplicate names would break name-keyed reseal targeting.
  std::set<std::string> taken;
  for (const Query& q : mix) taken.insert(q.name);
  const size_t clones = mix.empty() ? 0 : rng.Index(mix.size() + 1);
  for (size_t c = 0; c < clones; ++c) {
    Query clone = mix[rng.Index(keep)];
    size_t suffix = c;
    std::string name;
    do {
      name = clone.name + "_v" + std::to_string(suffix++);
    } while (taken.count(name) != 0);
    clone.name = std::move(name);
    taken.insert(clone.name);
    mix.push_back(std::move(clone));
  }
  return mix;
}

}  // namespace pinum
