// Seeded world-drift generation for the serving layer's maintenance
// paths: reproducible "the world changed underneath the sealed caches"
// scenarios — table cardinalities re-ANALYZEd, candidate indexes
// appended to the universe, query mixes churned — plus the exact
// stale-query set each drift implies. The differential reseal suite
// (tests/incremental_reseal_test.cc), bench_incremental_reseal, and
// advisor_tool --reseal all drive RebuildQueries through this one
// generator, so a failure reproduces from its printed seed.
#ifndef PINUM_WORKLOAD_DRIFT_H_
#define PINUM_WORKLOAD_DRIFT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "stats/table_stats.h"
#include "whatif/candidate_set.h"

namespace pinum {

/// Drift-shape knobs. Everything downstream of the seed is
/// deterministic: equal (queries, set, stats, target, seed, options)
/// produce equal drifts.
struct DriftOptions {
  /// Each drifted table's row count is scaled by a factor drawn
  /// uniformly from [factor_min, factor_max] (per table, seeded).
  double factor_min = 1.1;
  double factor_max = 1.5;
  /// Candidate indexes to append to the universe (on drifted tables, or
  /// on random query tables when nothing stats-drifted). Append-only:
  /// existing ids stay stable, which is what keeps un-resealed caches
  /// valid — a dropped or redefined candidate is a non-prefix epoch
  /// mutation and means a full rebuild, not a drift.
  int add_candidates = 0;
};

/// One applied drift: which tables changed (statistics scaled and/or a
/// candidate appended), which candidate ids were appended, and — derived
/// from those tables — exactly the queries whose caches went stale, in
/// workload order. Feed `stale_queries` straight to
/// WorkloadCacheBuilder::RebuildQueries.
struct DriftResult {
  std::vector<TableId> drifted_tables;
  std::vector<IndexId> added_candidates;
  std::vector<std::string> stale_queries;
};

/// Names of the queries touching any of `tables`, in workload order —
/// the exact set a drift of those tables stales (a query not touching a
/// drifted table prices bit-identically before and after).
std::vector<std::string> QueriesTouchingTables(
    const std::vector<Query>& queries, const std::vector<TableId>& tables);

/// Re-ANALYZE simulation for one table: scales row_count by `factor`,
/// recomputes heap pages from the definition, and rescales per-column
/// distinct counts (capped at the new row count). Deterministic.
void DriftTableStats(const Catalog& catalog, TableId table, double factor,
                     StatsCatalog* stats);

/// Applies a seeded drift staling at least `target_stale` of `queries`
/// (0 = no drift; >= queries.size() drifts every query): picks the
/// smallest-impact tables first so small targets stay small, scales
/// their statistics in `stats`, optionally appends candidates to `set`
/// (DriftOptions::add_candidates), and reports the stale set. Mutates
/// `set` and `stats` in place — drift the same objects the builder is
/// bound to.
StatusOr<DriftResult> ApplyDrift(const std::vector<Query>& queries,
                                 CandidateSet* set, StatsCatalog* stats,
                                 size_t target_stale, uint64_t seed,
                                 const DriftOptions& options = {});

/// Seeded workload churn: a shuffled subset of `queries` (at least
/// `min_keep`) plus renamed clones of some survivors — the "query mixes
/// vary between tuning rounds" half of drift. Names stay unique.
std::vector<Query> VaryQueryMix(const std::vector<Query>& queries,
                                uint64_t seed, size_t min_keep = 1);

}  // namespace pinum

#endif  // PINUM_WORKLOAD_DRIFT_H_
