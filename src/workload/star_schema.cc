#include "workload/star_schema.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>

namespace pinum {

namespace {

/// Rows at the spec's logical scale, never below a workable floor.
int64_t ScaledRows(int64_t base, double scale) {
  return std::max<int64_t>(100, static_cast<int64_t>(
                                    std::llround(base * scale)));
}

TableDef MakeTableDef(const std::string& name, int payload_cols,
                      const std::vector<std::string>& fk_names) {
  TableDef def;
  def.name = name;
  def.columns.push_back({"id", TypeId::kInt64});
  for (const auto& fk : fk_names) {
    def.columns.push_back({fk, TypeId::kInt64});
  }
  for (int i = 1; i <= payload_cols; ++i) {
    def.columns.push_back({"c" + std::to_string(i), TypeId::kInt64});
  }
  return def;
}

}  // namespace

StatusOr<StarSchemaWorkload> StarSchemaWorkload::Create(
    const StarSchemaSpec& spec) {
  StarSchemaWorkload w;
  w.spec_ = spec;
  PINUM_RETURN_IF_ERROR(w.BuildSchema());
  w.BuildSyntheticStats();
  PINUM_RETURN_IF_ERROR(w.BuildQueries());
  return w;
}

Status StarSchemaWorkload::BuildSchema() {
  Catalog& cat = db_.catalog();
  const int num_l1 = spec_.num_l1;
  if (static_cast<int>(spec_.l1_children.size()) != num_l1) {
    return Status::InvalidArgument("l1_children size must equal num_l1");
  }

  // Level-2 dimensions first (leaves of the snowflake), then level-1
  // dimensions referencing them, then the fact table referencing level 1.
  std::vector<std::vector<std::string>> l2_names(
      static_cast<size_t>(num_l1));
  for (int d = 0; d < num_l1; ++d) {
    for (int c = 0; c < spec_.l1_children[static_cast<size_t>(d)]; ++c) {
      l2_names[static_cast<size_t>(d)].push_back(
          "d" + std::to_string(d + 1) + "_" + std::to_string(c + 1));
    }
  }

  struct Pending {
    std::string name;
    TableDef def;
    double rows;
    std::vector<std::pair<std::string, std::string>> fks;  // col -> parent
  };
  std::vector<Pending> pending;

  for (int d = 0; d < num_l1; ++d) {
    for (const auto& name : l2_names[static_cast<size_t>(d)]) {
      Pending p;
      p.name = name;
      p.def = MakeTableDef(name, spec_.payload_cols, {});
      p.rows = static_cast<double>(ScaledRows(spec_.l2_rows, spec_.scale));
      pending.push_back(std::move(p));
    }
  }
  for (int d = 0; d < num_l1; ++d) {
    std::vector<std::string> fk_cols;
    Pending p;
    p.name = "d" + std::to_string(d + 1);
    for (const auto& child : l2_names[static_cast<size_t>(d)]) {
      fk_cols.push_back("fk_" + child);
      p.fks.emplace_back("fk_" + child, child);
    }
    p.def = MakeTableDef(p.name, spec_.payload_cols, fk_cols);
    p.rows = static_cast<double>(ScaledRows(spec_.l1_rows, spec_.scale));
    pending.push_back(std::move(p));
  }
  {
    Pending fact;
    fact.name = "fact";
    std::vector<std::string> fk_cols;
    for (int d = 0; d < num_l1; ++d) {
      const std::string parent = "d" + std::to_string(d + 1);
      fk_cols.push_back("fk_" + parent);
      fact.fks.emplace_back("fk_" + parent, parent);
    }
    fact.def = MakeTableDef(fact.name, spec_.payload_cols, fk_cols);
    fact.rows = static_cast<double>(ScaledRows(spec_.fact_rows, spec_.scale));
    pending.push_back(std::move(fact));
  }

  for (auto& p : pending) {
    PINUM_ASSIGN_OR_RETURN(TableId id, cat.AddTable(std::move(p.def)));
    (void)id;
  }
  for (const auto& p : pending) {
    const TableDef* child = cat.FindTableByName(p.name);
    for (const auto& [col, parent] : p.fks) {
      const TableDef* parent_def = cat.FindTableByName(parent);
      if (child == nullptr || parent_def == nullptr) {
        return Status::Internal("FK wiring failed");
      }
      ForeignKey fk;
      fk.child_table = child->id;
      fk.child_column = child->FindColumn(col);
      fk.parent_table = parent_def->id;
      fk.parent_column = parent_def->FindColumn("id");
      PINUM_RETURN_IF_ERROR(cat.AddForeignKey(fk));
    }
  }

  // tables_: fact first, then dimensions in creation order.
  tables_.clear();
  logical_rows_.clear();
  tables_.push_back(cat.FindTableByName("fact")->id);
  logical_rows_.push_back(pending.back().rows);
  for (size_t i = 0; i + 1 < pending.size(); ++i) {
    tables_.push_back(cat.FindTableByName(pending[i].name)->id);
    logical_rows_.push_back(pending[i].rows);
  }
  return Status::OK();
}

double StarSchemaWorkload::LogicalRows(TableId table) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i] == table) return logical_rows_[i];
  }
  return 0;
}

void StarSchemaWorkload::BuildSyntheticStats() {
  const Catalog& cat = db_.catalog();
  for (size_t i = 0; i < tables_.size(); ++i) {
    const TableDef* def = cat.FindTable(tables_[i]);
    const double rows = logical_rows_[i];
    TableStats stats;
    stats.row_count = rows;
    stats.RecomputePages(*def);
    stats.columns.resize(def->columns.size());
    for (size_t c = 0; c < def->columns.size(); ++c) {
      ColumnStats& cs = stats.columns[c];
      const std::string& name = def->columns[c].name;
      if (name == "id") {
        cs.n_distinct = rows;
        cs.min = 0;
        cs.max = static_cast<Value>(rows) - 1;
        cs.correlation = 1.0;  // surrogate keys stored in insertion order
        cs.histogram = Histogram::Uniform(cs.min, std::max(cs.min, cs.max));
      } else if (name.rfind("fk_", 0) == 0) {
        const std::string parent = name.substr(3);
        const TableDef* pdef = cat.FindTableByName(parent);
        const double parent_rows =
            pdef != nullptr ? LogicalRows(pdef->id) : rows;
        cs.n_distinct = std::min(rows, parent_rows);
        cs.min = 0;
        cs.max = static_cast<Value>(parent_rows) - 1;
        cs.correlation = 0.0;
        cs.histogram = Histogram::Uniform(cs.min, std::max(cs.min, cs.max));
      } else {
        cs.n_distinct = std::min(rows, static_cast<double>(spec_.payload_max));
        cs.min = 1;
        cs.max = spec_.payload_max;
        cs.correlation = 0.0;
        cs.histogram = Histogram::Uniform(cs.min, cs.max);
      }
    }
    db_.stats().Put(tables_[i], std::move(stats));
  }
}

Status StarSchemaWorkload::BuildQueries() {
  Rng rng(spec_.seed);
  const Catalog& cat = db_.catalog();

  for (size_t qi = 0; qi < spec_.query_sizes.size(); ++qi) {
    const int target_tables = spec_.query_sizes[qi];

    // Random FK-connected subtree containing the fact table.
    std::set<TableId> included = {fact_table()};
    std::vector<ForeignKey> used_edges;
    while (static_cast<int>(included.size()) < target_tables) {
      std::vector<ForeignKey> frontier;
      for (const auto& fk : cat.foreign_keys()) {
        if (included.count(fk.child_table) > 0 &&
            included.count(fk.parent_table) == 0) {
          frontier.push_back(fk);
        }
      }
      if (frontier.empty()) break;
      const ForeignKey edge = frontier[rng.Index(frontier.size())];
      included.insert(edge.parent_table);
      used_edges.push_back(edge);
    }

    Query q;
    q.name = "Q" + std::to_string(qi + 1);
    // FROM list in a deterministic order: fact first, then join order.
    q.tables.push_back(fact_table());
    for (const auto& e : used_edges) q.tables.push_back(e.parent_table);
    for (const auto& e : used_edges) {
      q.joins.push_back({{e.child_table, e.child_column},
                         {e.parent_table, e.parent_column}});
    }

    // Random select columns: dimension payloads, plus (with configured
    // probability) one fact payload column.
    const int num_select = 2 + static_cast<int>(rng.Index(3));
    std::vector<ColumnRef> payload_pool;
    std::vector<ColumnRef> fact_payloads;
    for (TableId t : q.tables) {
      const TableDef* def = cat.FindTable(t);
      for (size_t c = 0; c < def->columns.size(); ++c) {
        if (def->columns[c].name.rfind("c", 0) == 0) {
          if (t == fact_table()) {
            fact_payloads.push_back({t, static_cast<ColumnIdx>(c)});
          } else {
            payload_pool.push_back({t, static_cast<ColumnIdx>(c)});
          }
        }
      }
    }
    rng.Shuffle(&payload_pool);
    // Two-table queries have only one dimension; fall back to the fact
    // pool when the dimension payloads run out.
    if (payload_pool.empty()) payload_pool = fact_payloads;
    for (int s = 0; s < num_select &&
                    s < static_cast<int>(payload_pool.size());
         ++s) {
      q.select.push_back(payload_pool[static_cast<size_t>(s)]);
    }
    if (!fact_payloads.empty() && rng.Chance(spec_.fact_select_probability)) {
      q.select.push_back(fact_payloads[rng.Index(fact_payloads.size())]);
    }

    // Where clauses with the target selectivity, biased toward the fact
    // table (index 0 of the pool after re-shuffling below).
    for (int f = 0; f < spec_.filters_per_query; ++f) {
      const TableId t = (f == 0) ? fact_table()
                                 : q.tables[rng.Index(q.tables.size())];
      const TableDef* def = cat.FindTable(t);
      std::vector<ColumnIdx> payloads;
      for (size_t c = 0; c < def->columns.size(); ++c) {
        if (def->columns[c].name.rfind("c", 0) == 0) {
          payloads.push_back(static_cast<ColumnIdx>(c));
        }
      }
      // Filters target a small set of "hot" columns (the first three
      // payload columns), so covering candidates overlap across queries —
      // the regime where the paper's advisor amortizes four covering
      // fact-table indexes over the whole workload.
      const size_t hot = std::min<size_t>(3, payloads.size());
      const ColumnIdx col = payloads[rng.Index(hot)];
      // value <= min + sel * span gives `sel` selectivity on uniform data.
      const double span = static_cast<double>(spec_.payload_max - 1);
      const Value bound =
          1 + static_cast<Value>(std::llround(span * spec_.filter_selectivity));
      q.filters.push_back({{t, col}, CompareOp::kLe, bound});
    }

    // Order-by one of the selected columns.
    if (!q.select.empty()) {
      q.order_by.push_back({q.select[rng.Index(q.select.size())], true});
    }

    // Optional aggregation (off by default; the paper's workload has
    // order-by but no group-by).
    if (rng.Chance(spec_.group_by_fraction) && q.select.size() >= 2) {
      q.group_by.push_back(q.select[0]);
      q.aggregate = AggKind::kSum;
      q.order_by.clear();
      q.order_by.push_back({q.select[0], true});
    }

    queries_.push_back(std::move(q));
  }
  return Status::OK();
}

Status StarSchemaWorkload::Materialize(double exec_scale) {
  Rng rng(spec_.seed + 1);
  Catalog& cat = db_.catalog();

  // Generate parents before children so FK values can reference real row
  // counts; tables_ is ordered fact-first, so iterate in reverse.
  std::map<TableId, int64_t> rows_of;
  for (size_t i = 0; i < tables_.size(); ++i) {
    rows_of[tables_[i]] = std::max<int64_t>(
        50, static_cast<int64_t>(std::llround(logical_rows_[i] * exec_scale)));
  }

  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    const TableId tid = *it;
    const TableDef* def = cat.FindTable(tid);
    PINUM_RETURN_IF_ERROR(db_.CreateTableStorage(tid));
    TableData* data = db_.MutableData(tid);
    const int64_t n = rows_of[tid];
    data->Reserve(static_cast<size_t>(n));
    std::vector<Value> row(def->columns.size());
    for (int64_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < def->columns.size(); ++c) {
        const std::string& name = def->columns[c].name;
        if (name == "id") {
          row[c] = r;  // surrogate key in insertion order
        } else if (name.rfind("fk_", 0) == 0) {
          const TableDef* parent = cat.FindTableByName(name.substr(3));
          row[c] = rng.Uniform(0, rows_of[parent->id] - 1);
        } else {
          row[c] = rng.Uniform(1, spec_.payload_max);
        }
      }
      data->AppendRow(row);
    }
  }
  return db_.AnalyzeAll();
}

}  // namespace pinum
