#include "workload/plan_corpus.h"

#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "advisor/greedy_advisor.h"
#include "advisor/search_advisor.h"
#include "workload/workload_family.h"

namespace pinum {

namespace {

/// Bit-exact double rendering (C99 hex float). Decimal would round —
/// and a corpus that rounds cannot distinguish a one-ULP cost drift
/// from stability.
std::string Hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// Total leaf access cost recorded at harvest time: the
/// configuration-dependent half of the plan's build-time total, the
/// counterpart of internal_cost.
double HarvestAccessCost(const CachedPlan& plan) {
  double sum = 0;
  for (const LeafSlot& s : plan.slots) sum += s.multiplier * s.unit_cost;
  return sum;
}

std::string NameOf(const CandidateSet& set, IndexId id) {
  const IndexDef* def = set.universe.FindIndex(id);
  return def != nullptr ? def->name : ("id" + std::to_string(id));
}

/// First non-space run up to " = " is the key, the rest the value.
bool ParseLine(const std::string& line, std::string* key, std::string* value) {
  if (line.empty() || line[0] == '#') return false;
  const size_t sep = line.find(" = ");
  if (sep == std::string::npos) return false;
  *key = line.substr(0, sep);
  *value = line.substr(sep + 3);
  return true;
}

std::vector<std::pair<std::string, std::string>> ParseCorpus(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> entries;
  std::istringstream in(text);
  std::string line, key, value;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (ParseLine(line, &key, &value)) entries.emplace_back(key, value);
  }
  return entries;
}

}  // namespace

std::vector<CorpusSpec> DefaultCorpusSpecs() {
  std::vector<CorpusSpec> specs;
  for (const std::string& family : WorkloadFamilyNames()) {
    for (uint64_t seed : {1, 2}) {
      specs.push_back({family, seed, CorpusSpec{}.budget_bytes});
    }
  }
  return specs;
}

std::string CorpusFileName(const CorpusSpec& spec) {
  return spec.family + "_s" + std::to_string(spec.seed) + ".corpus";
}

StatusOr<std::string> BuildCorpusText(const CorpusSpec& spec,
                                      const WorkloadCacheOptions& base_opts) {
  WorkloadFamilyOptions wopts;
  wopts.seed = spec.seed;
  PINUM_ASSIGN_OR_RETURN(auto inst, MakeWorkloadInstance(spec.family, wopts));

  WorkloadCacheOptions opts = base_opts;
  opts.num_threads = 1;  // scheduling-independent accounting
  WorkloadCacheBuilder builder(&inst->catalog(), &inst->set, &inst->stats(),
                               opts);
  PINUM_ASSIGN_OR_RETURN(WorkloadCacheResult result,
                         builder.BuildAll(inst->queries));

  AdvisorOptions aopts;
  aopts.budget_bytes = spec.budget_bytes;
  const AdvisorResult advisor =
      RunGreedyAdvisor(result.sealed, inst->set, aopts);

  std::ostringstream out;
  out << "# pinum plan-stability corpus v1 (docs/WORKLOADS.md)\n";
  out << "workload.family = " << spec.family << "\n";
  out << "workload.seed = " << spec.seed << "\n";
  out << "workload.budget_bytes = " << spec.budget_bytes << "\n";
  out << "workload.queries = " << inst->queries.size() << "\n";
  out << "workload.candidates = " << inst->set.candidate_ids.size() << "\n";
  out << "workload.universe_ids = " << inst->set.NumIndexIds() << "\n";
  out << "workload.plans_cached = " << result.totals.plans_cached << "\n";
  out << "workload.plans_pruned = " << result.totals.plans_pruned << "\n";
  out << "workload.terms = " << result.totals.terms << "\n";
  out << "workload.postings = " << result.totals.postings << "\n";

  for (size_t i = 0; i < inst->queries.size(); ++i) {
    const std::string q = "query[" + inst->queries[i].name + "]";
    const InumCache& cache = result.caches[i];
    const SealedCache& sealed = result.sealed[i];
    out << q << ".plans = " << cache.NumPlans() << "\n";
    out << q << ".plans_pruned = " << sealed.NumPlansPruned() << "\n";
    out << q << ".terms = " << sealed.NumTerms() << "\n";
    out << q << ".postings = " << sealed.NumPostings() << "\n";
    for (size_t p = 0; p < cache.plans().size(); ++p) {
      const CachedPlan& plan = cache.plans()[p];
      out << q << ".plan[" << p << "] = " << plan.RequirementKey()
          << " internal=" << Hex(plan.internal_cost)
          << " access=" << Hex(HarvestAccessCost(plan))
          << " sig=" << plan.signature << "\n";
    }
    // The two configurations every regression cares about: no indexes,
    // and the advisor's final pick.
    const CachedPlan* base_best = cache.BestPlan({});
    out << q << ".cost[base] = " << Hex(sealed.Cost({})) << "\n";
    out << q << ".best[base] = "
        << (base_best != nullptr ? base_best->RequirementKey() : "none")
        << "\n";
    const CachedPlan* final_best = cache.BestPlan(advisor.chosen);
    out << q << ".cost[chosen] = " << Hex(sealed.Cost(advisor.chosen)) << "\n";
    out << q << ".best[chosen] = "
        << (final_best != nullptr ? final_best->RequirementKey() : "none")
        << "\n";
  }

  out << "advisor.cost_before = " << Hex(advisor.workload_cost_before) << "\n";
  for (size_t s = 0; s < advisor.steps.size(); ++s) {
    const AdvisorStep& step = advisor.steps[s];
    out << "advisor.step[" << s << "] = " << NameOf(inst->set, step.chosen)
        << " benefit=" << Hex(step.benefit) << " size=" << step.size_bytes
        << " after=" << Hex(step.workload_cost_after) << "\n";
  }
  out << "advisor.chosen = ";
  if (advisor.chosen.empty()) {
    out << "none";
  } else {
    for (size_t c = 0; c < advisor.chosen.size(); ++c) {
      out << (c > 0 ? " " : "") << NameOf(inst->set, advisor.chosen[c]);
    }
  }
  out << "\n";
  out << "advisor.cost_after = " << Hex(advisor.workload_cost_after) << "\n";
  out << "advisor.total_size_bytes = " << advisor.total_size_bytes << "\n";
  out << "advisor.evaluations = " << advisor.evaluations << "\n";

  // Search-advisor trajectory (docs/ADVISOR.md): serial, fixed seed, no
  // time budget — fully covered by the determinism contract, so every
  // line below is as byte-stable as the greedy block above. A drift here
  // with stable advisor.* lines localizes the change to the restart or
  // swap machinery.
  SearchOptions sopts;
  sopts.base = aopts;
  sopts.seed = 1;
  sopts.max_restarts = 6;
  const SearchResult search = RunSearchAdvisor(result.sealed, inst->set,
                                               sopts);
  out << "search.seed = " << sopts.seed << "\n";
  out << "search.max_restarts = " << sopts.max_restarts << "\n";
  for (const SearchRestart& r : search.restarts) {
    out << "search.restart[" << r.restart << "] = prefix=" << r.prefix_size
        << " chosen=" << r.num_chosen << " after=" << Hex(r.cost_after)
        << "\n";
  }
  for (size_t s = 0; s < search.swaps.size(); ++s) {
    const SearchSwap& swap = search.swaps[s];
    out << "search.swap[" << s << "] = pass=" << swap.pass
        << " evict=" << NameOf(inst->set, swap.evicted) << " insert="
        << (swap.inserted == kInvalidIndexId
                ? std::string("none")
                : NameOf(inst->set, swap.inserted))
        << " chain=" << swap.chain_length << " after=" << Hex(swap.cost_after)
        << "\n";
  }
  out << "search.chosen = ";
  if (search.chosen.empty()) {
    out << "none";
  } else {
    for (size_t c = 0; c < search.chosen.size(); ++c) {
      out << (c > 0 ? " " : "") << NameOf(inst->set, search.chosen[c]);
    }
  }
  out << "\n";
  out << "search.cost_after = " << Hex(search.workload_cost_after) << "\n";
  out << "search.total_size_bytes = " << search.total_size_bytes << "\n";
  out << "search.evaluations = " << search.evaluations << "\n";
  out << "search.swaps_accepted = " << search.swaps_accepted << "\n";
  out << "search.pruned = " << search.swap_candidates_pruned << "\n";
  out << "search.matches_greedy = "
      << (search.workload_cost_after == search.greedy_cost_after ? 1 : 0)
      << "\n";
  return out.str();
}

std::vector<CorpusDelta> DiffCorpusText(const std::string& golden,
                                        const std::string& fresh) {
  const auto old_entries = ParseCorpus(golden);
  const auto new_entries = ParseCorpus(fresh);
  std::map<std::string, std::string> new_by_key(new_entries.begin(),
                                                new_entries.end());
  std::map<std::string, std::string> old_by_key(old_entries.begin(),
                                                old_entries.end());

  std::vector<CorpusDelta> deltas;
  for (const auto& [key, old_value] : old_entries) {
    auto it = new_by_key.find(key);
    if (it == new_by_key.end()) {
      deltas.push_back({key, old_value, ""});
    } else if (it->second != old_value) {
      deltas.push_back({key, old_value, it->second});
    }
  }
  for (const auto& [key, new_value] : new_entries) {
    if (old_by_key.find(key) == old_by_key.end()) {
      deltas.push_back({key, "", new_value});
    }
  }
  return deltas;
}

std::string FormatDeltas(const std::vector<CorpusDelta>& deltas) {
  std::ostringstream out;
  for (const CorpusDelta& d : deltas) {
    if (d.old_value.empty() && !d.new_value.empty()) {
      out << "+ " << d.key << " = " << d.new_value << "\n";
    } else if (d.new_value.empty() && !d.old_value.empty()) {
      out << "- " << d.key << " = " << d.old_value << "\n";
    } else {
      out << "~ " << d.key << ": " << d.old_value << " -> " << d.new_value
          << "\n";
    }
  }
  return out.str();
}

}  // namespace pinum
