#include "workload/cache_manager.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "inum/snapshot_mmap.h"

namespace pinum {

WorkloadCacheBuilder::WorkloadCacheBuilder(const Catalog* base_catalog,
                                           const CandidateSet* candidates,
                                           const StatsCatalog* stats,
                                           WorkloadCacheOptions options)
    : base_catalog_(base_catalog),
      candidates_(candidates),
      stats_(stats),
      options_(std::move(options)),
      pool_(options_.num_threads) {}

Status WorkloadCacheBuilder::BuildOne(const Query& query,
                                      SharedAccessCostStore* store,
                                      InumCache* cache,
                                      QueryBuildStats* query_stats) const {
  // One hit per per-query (re)build — the unit a reseal retries. Fired
  // from whichever pool thread claims the query; callers annotate the
  // returned Status with the query name.
  PINUM_RETURN_IF_ERROR(FailPoint::Check("workload.build_query"));
  if (options_.mode == CacheBuildMode::kPinum) {
    PinumBuildOptions opts = options_.pinum;
    opts.shared_access = store;
    PinumBuildStats stats;
    PINUM_ASSIGN_OR_RETURN(*cache,
                           BuildInumCachePinum(query, *base_catalog_,
                                               *candidates_, *stats_, opts,
                                               &stats));
    *query_stats = {stats.plan_cache_calls, stats.access_cost_calls,
                    stats.access_calls_saved, stats.plans_cached};
  } else {
    InumBuildOptions opts = options_.inum;
    opts.shared_access = store;
    InumBuildStats stats;
    PINUM_ASSIGN_OR_RETURN(*cache,
                           BuildInumCacheClassic(query, *base_catalog_,
                                                 *candidates_, *stats_, opts,
                                                 &stats));
    *query_stats = {stats.plan_cache_calls, stats.access_cost_calls,
                    stats.access_calls_saved, stats.plans_cached};
  }
  return Status::OK();
}

void WorkloadCacheBuilder::RecomputeTotals(WorkloadCacheResult* result) {
  const double wall_ms = result->totals.wall_ms;
  const double seal_ms = result->totals.seal_ms;
  result->totals = {};
  result->totals.wall_ms = wall_ms;
  result->totals.seal_ms = seal_ms;
  for (const QueryBuildStats& qs : result->per_query) {
    result->totals.plan_cache_calls += qs.plan_cache_calls;
    result->totals.access_cost_calls += qs.access_cost_calls;
    result->totals.access_calls_saved += qs.access_calls_saved;
    result->totals.plans_cached += qs.plans_cached;
  }
  for (const SealedCache& sealed : result->sealed) {
    result->totals.plans_pruned += sealed.NumPlansPruned();
    result->totals.terms += sealed.NumTerms();
    result->totals.postings += sealed.NumPostings();
  }
}

std::vector<TableId> WorkloadCacheBuilder::RefreshTableFingerprints(
    const std::vector<Query>& queries) {
  std::vector<TableId> drifted;
  std::map<TableId, uint64_t> live;
  for (const Query& q : queries) {
    for (TableId t : q.tables) {
      if (live.count(t) != 0) continue;
      live[t] = ComputeTableEpochFingerprint(t, *candidates_, *stats_);
    }
  }
  for (const auto& [table, fp] : live) {
    const auto it = table_fingerprints_.find(table);
    if (it != table_fingerprints_.end() && it->second != fp) {
      drifted.push_back(table);
    }
    table_fingerprints_[table] = fp;
  }
  return drifted;
}

StatusOr<WorkloadCacheResult> WorkloadCacheBuilder::BuildAll(
    const std::vector<Query>& queries) {
  const size_t n = queries.size();
  WorkloadCacheResult result;
  result.caches.resize(n);
  result.per_query.resize(n);
  std::vector<Status> statuses(n);

  // Record (or refresh) the per-table epoch fingerprints this build runs
  // under, invalidating any store entries a drift since the previous
  // build made stale — a builder reused across drifts must never serve
  // old-world access costs into a new-world build.
  store_.InvalidateTables(RefreshTableFingerprints(queries));

  // Capture each query's epoch stamp now, against the world this build
  // consumes — snapshots persist these, so a drift after the build (but
  // before a save) still reads as staleness instead of being masked by
  // save-time recomputation.
  std::map<TableId, uint64_t> fp_cache;
  result.stamps.reserve(n);
  for (const Query& q : queries) {
    result.stamps.push_back(QueryStamp(q, &fp_cache));
  }

  SharedAccessCostStore* store =
      options_.share_access_costs ? &store_ : nullptr;

  Stopwatch wall;
  pool_.ParallelFor(static_cast<int64_t>(n), [&](int64_t i) {
    const Query& q = queries[static_cast<size_t>(i)];
    // Failed builds keep the query's name so batch errors stay
    // attributable (replicated workloads have many similar queries).
    const Status st = BuildOne(q, store, &result.caches[static_cast<size_t>(i)],
                               &result.per_query[static_cast<size_t>(i)]);
    if (!st.ok()) {
      statuses[static_cast<size_t>(i)] =
          Status(st.code(), q.name + ": " + st.message());
    }
  });

  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }

  // One-time seal for serving: dominated-plan pruning + flat access-cost
  // vectors over the candidate universe's stable ids. Per-query seals are
  // independent, so they ride the same pool.
  Stopwatch seal_timer;
  const IndexId num_index_ids = candidates_->NumIndexIds();
  result.sealed.resize(n);
  pool_.ParallelFor(static_cast<int64_t>(n), [&](int64_t i) {
    result.sealed[static_cast<size_t>(i)] = SealedCache::Seal(
        result.caches[static_cast<size_t>(i)], num_index_ids);
  });
  result.totals.seal_ms = seal_timer.ElapsedMillis();
  result.totals.wall_ms = wall.ElapsedMillis();
  RecomputeTotals(&result);
  return result;
}

Status WorkloadCacheBuilder::RebuildQueries(
    const std::vector<std::string>& names, const std::vector<Query>& queries,
    WorkloadCacheResult* result, WorkloadCacheStats* rebuild_totals) {
  if (result->caches.size() != queries.size() ||
      result->sealed.size() != queries.size() ||
      result->per_query.size() != queries.size() ||
      result->stamps.size() != queries.size()) {
    return Status::InvalidArgument(
        "reseal: result is not parallel to queries (" +
        std::to_string(result->sealed.size()) + " caches, " +
        std::to_string(queries.size()) + " queries) — pass BuildAll's"
        " inputs and output unchanged (restored snapshots: copy"
        " query_stamps into result.stamps)");
  }
  // Resolve names to positions (first match; workload names are unique).
  std::vector<size_t> targets;
  for (const std::string& name : names) {
    size_t at = queries.size();
    for (size_t i = 0; i < queries.size(); ++i) {
      if (queries[i].name == name) {
        at = i;
        break;
      }
    }
    if (at == queries.size()) {
      return Status::InvalidArgument("reseal: no query named '" + name + "'");
    }
    if (std::find(targets.begin(), targets.end(), at) == targets.end()) {
      targets.push_back(at);
    }
  }

  // Exact store invalidation: only tables whose epoch fingerprint
  // drifted since the last build lose their shared access-cost entries;
  // everything else keeps serving this rebuild (that is the k-of-N win —
  // a stale query re-pays its own optimizer calls, not its neighbours').
  store_.InvalidateTables(RefreshTableFingerprints(queries));

  SharedAccessCostStore* store =
      options_.share_access_costs ? &store_ : nullptr;
  const size_t k = targets.size();
  std::vector<Status> statuses(k);
  std::vector<QueryBuildStats> fresh_stats(k);
  // Built into scratch and installed only after every status is OK, so
  // an error leaves `result` exactly as it was — never half-updated.
  std::vector<InumCache> fresh_caches(k);

  Stopwatch wall;
  pool_.ParallelFor(static_cast<int64_t>(k), [&](int64_t j) {
    const Query& q = queries[targets[static_cast<size_t>(j)]];
    const Status st = BuildOne(q, store, &fresh_caches[static_cast<size_t>(j)],
                               &fresh_stats[static_cast<size_t>(j)]);
    if (!st.ok()) {
      statuses[static_cast<size_t>(j)] =
          Status(st.code(), q.name + ": " + st.message());
    }
  });
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }

  // Reseal the rebuilt queries against the *current* universe: ids
  // appended since the original build become priceable here, while
  // untouched queries keep their narrower sealed form — which prices
  // the new ids at base cost, bit-identical to what a cold rebuild
  // computes for a query the new candidates cannot serve.
  Stopwatch seal_timer;
  const IndexId num_index_ids = candidates_->NumIndexIds();
  std::vector<SealedCache> fresh_sealed(k);
  pool_.ParallelFor(static_cast<int64_t>(k), [&](int64_t j) {
    fresh_sealed[static_cast<size_t>(j)] = SealedCache::Seal(
        fresh_caches[static_cast<size_t>(j)], num_index_ids);
  });
  const double seal_ms = seal_timer.ElapsedMillis();
  const double wall_ms = wall.ElapsedMillis();

  std::map<TableId, uint64_t> fp_cache;
  for (size_t j = 0; j < k; ++j) {
    const size_t i = targets[j];
    result->caches[i] = std::move(fresh_caches[j]);
    result->sealed[i] = std::move(fresh_sealed[j]);
    result->per_query[i] = fresh_stats[j];
    // Re-stamp against the drifted world these rebuilds consumed;
    // untouched queries keep the stamps of the world they were built
    // under.
    result->stamps[i] = QueryStamp(queries[i], &fp_cache);
  }
  result->totals.wall_ms = wall_ms;
  result->totals.seal_ms = seal_ms;
  RecomputeTotals(result);

  if (rebuild_totals != nullptr) {
    *rebuild_totals = {};
    for (size_t j = 0; j < k; ++j) {
      rebuild_totals->plan_cache_calls += fresh_stats[j].plan_cache_calls;
      rebuild_totals->access_cost_calls += fresh_stats[j].access_cost_calls;
      rebuild_totals->access_calls_saved += fresh_stats[j].access_calls_saved;
      rebuild_totals->plans_cached += fresh_stats[j].plans_cached;
    }
    for (size_t j = 0; j < k; ++j) {
      const SealedCache& sealed = result->sealed[targets[j]];
      rebuild_totals->plans_pruned += sealed.NumPlansPruned();
      rebuild_totals->terms += sealed.NumTerms();
      rebuild_totals->postings += sealed.NumPostings();
    }
    rebuild_totals->wall_ms = wall_ms;
    rebuild_totals->seal_ms = seal_ms;
  }
  return Status::OK();
}

StatusOr<WorkloadCacheResult> WorkloadCacheBuilder::RebuildQueriesInto(
    const std::vector<std::string>& names, const std::vector<Query>& queries,
    const WorkloadCacheResult& base, WorkloadCacheStats* rebuild_totals) {
  // The copy is the whole point: `base` may be a published serving
  // generation with concurrent readers, so nothing below may write
  // through it. RebuildQueries only ever mutates the result it is
  // handed, which is this copy.
  WorkloadCacheResult next = base;
  PINUM_RETURN_IF_ERROR(
      RebuildQueries(names, queries, &next, rebuild_totals));
  return next;
}

uint64_t WorkloadCacheBuilder::QueryStamp(
    const Query& query, std::map<TableId, uint64_t>* table_fp_cache) const {
  // Fold the world-slice stamp with the build shape: two builders bound
  // to one world but building different cache flavours (mode, NLJ
  // handling, join-space switches) must not treat each other's sealed
  // bytes as reusable.
  uint64_t h =
      ComputeQueryStamp(query, *candidates_, *stats_, table_fp_cache);
  auto fold = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  fold(static_cast<uint64_t>(options_.mode));
  const PlannerKnobs& knobs = options_.mode == CacheBuildMode::kPinum
                                  ? options_.pinum.base_knobs
                                  : options_.inum.base_knobs;
  fold(knobs.enable_nestloop ? 1 : 0);
  fold(knobs.enable_hashjoin ? 1 : 0);
  fold(knobs.enable_mergejoin ? 1 : 0);
  fold(options_.mode == CacheBuildMode::kPinum
           ? static_cast<uint64_t>(options_.pinum.nlj_extreme_calls) * 2 +
                 (options_.pinum.nlj_export_all ? 1 : 0)
           : (options_.inum.include_nlj_plans ? 1 : 0));
  return h;
}

std::vector<size_t> WorkloadCacheBuilder::StaleQueries(
    const WorkloadSnapshot& snapshot,
    const std::vector<Query>& queries) const {
  return StaleQueries(snapshot.query_names, snapshot.query_stamps, queries);
}

std::vector<size_t> WorkloadCacheBuilder::StaleQueries(
    const std::vector<std::string>& names,
    const std::vector<uint64_t>& stamps,
    const std::vector<Query>& queries) const {
  std::vector<size_t> stale;
  std::map<TableId, uint64_t> fp_cache;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i >= names.size() || i >= stamps.size() ||
        names[i] != queries[i].name ||
        stamps[i] != QueryStamp(queries[i], &fp_cache)) {
      stale.push_back(i);
    }
  }
  return stale;
}

Status WorkloadCacheBuilder::SaveSnapshot(const std::string& path,
                                          const WorkloadCacheResult& result,
                                          const std::vector<Query>& queries,
                                          SnapshotSaveStats* save_stats)
    const {
  if (result.sealed.size() != queries.size() ||
      result.stamps.size() != queries.size()) {
    return Status::InvalidArgument(
        "snapshot save: result.sealed/stamps and queries are not parallel"
        " (" + std::to_string(result.sealed.size()) + " caches, " +
        std::to_string(result.stamps.size()) + " stamps, " +
        std::to_string(queries.size()) + " queries)");
  }
  std::vector<std::string> names;
  names.reserve(queries.size());
  for (const Query& q : queries) names.push_back(q.name);
  // The stamps persisted are the ones captured when each cache was
  // (re)built — the world the bytes were actually derived from. Stamps
  // recomputed here from the live world would mask any drift that
  // happened since the build, which is exactly what StaleQueries must
  // be able to see after a reload.
  return pinum::SaveSnapshot(path, names, result.stamps, result.sealed,
                             ComputeSnapshotEpoch(*candidates_), save_stats);
}

StatusOr<WorkloadSnapshot> WorkloadCacheBuilder::LoadSnapshot(
    const std::string& path) const {
  return pinum::LoadSnapshot(path, ComputeSnapshotEpoch(*candidates_));
}

StatusOr<WorkloadCacheResult> WorkloadCacheBuilder::LoadSnapshotMapped(
    const std::string& path, std::vector<std::string>* query_names) const {
  PINUM_ASSIGN_OR_RETURN(
      MappedWorkloadSnapshot mapped,
      MappedWorkloadSnapshot::Map(path, ComputeSnapshotEpoch(*candidates_)));

  WorkloadCacheResult result;
  const size_t n = mapped.sealed.size();
  // Keep the result parallel (the RebuildQueries precondition): a
  // mapped restart has no build-time caches or per-query accounting, so
  // those slots hold empty placeholders — a reseal replaces exactly the
  // slots it rebuilds, and inspection reads zeros instead of garbage.
  result.caches.resize(n);
  result.per_query.resize(n);
  result.sealed = std::move(mapped.sealed);
  result.stamps = std::move(mapped.query_stamps);
  result.mapping = std::move(mapped.mapping);
  RecomputeTotals(&result);
  if (query_names != nullptr) *query_names = std::move(mapped.query_names);
  return result;
}

}  // namespace pinum
