#include "workload/cache_manager.h"

#include <utility>

#include "common/stopwatch.h"

namespace pinum {

WorkloadCacheBuilder::WorkloadCacheBuilder(const Catalog* base_catalog,
                                           const CandidateSet* candidates,
                                           const StatsCatalog* stats,
                                           WorkloadCacheOptions options)
    : base_catalog_(base_catalog),
      candidates_(candidates),
      stats_(stats),
      options_(std::move(options)),
      pool_(options_.num_threads) {}

StatusOr<WorkloadCacheResult> WorkloadCacheBuilder::BuildAll(
    const std::vector<Query>& queries) {
  const size_t n = queries.size();
  WorkloadCacheResult result;
  result.caches.resize(n);
  result.per_query.resize(n);
  std::vector<Status> statuses(n);

  SharedAccessCostStore* store =
      options_.share_access_costs ? &store_ : nullptr;

  Stopwatch wall;
  pool_.ParallelFor(static_cast<int64_t>(n), [&](int64_t i) {
    const Query& q = queries[static_cast<size_t>(i)];
    QueryBuildStats& qs = result.per_query[static_cast<size_t>(i)];
    // Failed builds keep the query's name so batch errors stay
    // attributable (replicated workloads have many similar queries).
    auto fail = [&](const Status& st) {
      statuses[static_cast<size_t>(i)] =
          Status(st.code(), q.name + ": " + st.message());
    };
    if (options_.mode == CacheBuildMode::kPinum) {
      PinumBuildOptions opts = options_.pinum;
      opts.shared_access = store;
      PinumBuildStats stats;
      auto cache = BuildInumCachePinum(q, *base_catalog_, *candidates_,
                                       *stats_, opts, &stats);
      if (!cache.ok()) {
        fail(cache.status());
        return;
      }
      result.caches[static_cast<size_t>(i)] = std::move(*cache);
      qs = {stats.plan_cache_calls, stats.access_cost_calls,
            stats.access_calls_saved, stats.plans_cached};
    } else {
      InumBuildOptions opts = options_.inum;
      opts.shared_access = store;
      InumBuildStats stats;
      auto cache = BuildInumCacheClassic(q, *base_catalog_, *candidates_,
                                         *stats_, opts, &stats);
      if (!cache.ok()) {
        fail(cache.status());
        return;
      }
      result.caches[static_cast<size_t>(i)] = std::move(*cache);
      qs = {stats.plan_cache_calls, stats.access_cost_calls,
            stats.access_calls_saved, stats.plans_cached};
    }
  });

  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }

  // One-time seal for serving: dominated-plan pruning + flat access-cost
  // vectors over the candidate universe's stable ids. Per-query seals are
  // independent, so they ride the same pool.
  Stopwatch seal_timer;
  const IndexId num_index_ids = candidates_->NumIndexIds();
  result.sealed.resize(n);
  pool_.ParallelFor(static_cast<int64_t>(n), [&](int64_t i) {
    result.sealed[static_cast<size_t>(i)] = SealedCache::Seal(
        result.caches[static_cast<size_t>(i)], num_index_ids);
  });
  result.totals.seal_ms = seal_timer.ElapsedMillis();
  result.totals.wall_ms = wall.ElapsedMillis();

  for (const QueryBuildStats& qs : result.per_query) {
    result.totals.plan_cache_calls += qs.plan_cache_calls;
    result.totals.access_cost_calls += qs.access_cost_calls;
    result.totals.access_calls_saved += qs.access_calls_saved;
    result.totals.plans_cached += qs.plans_cached;
  }
  for (const SealedCache& sealed : result.sealed) {
    result.totals.plans_pruned += sealed.NumPlansPruned();
    result.totals.terms += sealed.NumTerms();
    result.totals.postings += sealed.NumPostings();
  }
  return result;
}

Status WorkloadCacheBuilder::SaveSnapshot(const std::string& path,
                                          const WorkloadCacheResult& result,
                                          const std::vector<Query>& queries)
    const {
  if (result.sealed.size() != queries.size()) {
    return Status::InvalidArgument(
        "snapshot save: result.sealed and queries are not parallel (" +
        std::to_string(result.sealed.size()) + " caches, " +
        std::to_string(queries.size()) + " queries)");
  }
  std::vector<std::string> names;
  names.reserve(queries.size());
  for (const Query& q : queries) names.push_back(q.name);
  return pinum::SaveSnapshot(path, names, result.sealed,
                             ComputeSnapshotEpoch(*candidates_, *stats_));
}

StatusOr<WorkloadSnapshot> WorkloadCacheBuilder::LoadSnapshot(
    const std::string& path) const {
  return pinum::LoadSnapshot(path,
                             ComputeSnapshotEpoch(*candidates_, *stats_));
}

}  // namespace pinum
