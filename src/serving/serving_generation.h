// An immutable published unit of serving state. The serving engine
// (serving_engine.h) answers every what-if question from exactly one
// ServingGeneration: readers atomically pin the current one, resealing
// builds the next one off to the side and publishes it with a single
// atomic swap. Nothing in a generation is ever mutated after
// publication — that immutability, not locking, is what makes the read
// path safe under concurrent reseals.
#ifndef PINUM_SERVING_SERVING_GENERATION_H_
#define PINUM_SERVING_SERVING_GENERATION_H_

#include <cstdint>
#include <vector>

#include "inum/sealed_cache.h"
#include "workload/cache_manager.h"

namespace pinum {

/// One immutable generation of serving state: a whole-workload build
/// result (sealed caches + the per-query epoch stamps they were built
/// under) tagged with a monotonically increasing id. Generations are
/// only ever handed out as shared_ptr<const ServingGeneration>; a
/// reader that pinned generation N keeps it alive — and keeps getting
/// bit-identical answers from it — for as long as it holds the pin,
/// regardless of how many newer generations have been published since.
/// The last pin dropped reclaims the generation; there is no other
/// reclamation mechanism.
struct ServingGeneration {
  /// Monotonically increasing publication id, starting at 1 for the
  /// generation the engine was constructed with. Strictly ordered:
  /// id(G') > id(G) means G' was published after G.
  uint64_t id = 0;

  /// The build result this generation serves from. Treat as deeply
  /// immutable — every SealedCache, stamp, and accounting row is
  /// frozen at publication. When the result came from
  /// LoadSnapshotMapped, its caches' arenas borrow the snapshot file
  /// mapping; result.mapping (plus each cache's own arena handle) pins
  /// the pages for exactly this generation's lifetime.
  WorkloadCacheResult result;

  /// The serve-time caches, parallel to the engine's query vector.
  const std::vector<SealedCache>& sealed() const { return result.sealed; }

  /// The per-query epoch stamps the caches were built under; the drift
  /// watcher diffs these against live QueryStamps to find stale queries.
  const std::vector<uint64_t>& stamps() const { return result.stamps; }
};

}  // namespace pinum

#endif  // PINUM_SERVING_SERVING_GENERATION_H_
