#include "serving/serving_engine.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <map>
#include <utility>

#include "advisor/greedy_advisor.h"
#include "common/rng.h"

namespace pinum {

ServingEngine::ServingEngine(WorkloadCacheBuilder* builder,
                             const std::vector<Query>* queries,
                             WorkloadCacheResult initial,
                             ServingOptions options)
    : builder_(builder), queries_(queries), options_(options) {
  auto first = std::make_shared<ServingGeneration>();
  first->id = 1;
  first->result = std::move(initial);
  generation_.store(std::move(first));
}

ServingEngine::~ServingEngine() {
  StopDriftWatcher();
  StopDispatcher();
  // Requests submitted after the dispatcher stopped still hold
  // promises; answer them rather than abandon them.
  while (PumpOnce() > 0) {
  }
}

// ---- Read path --------------------------------------------------------

std::shared_ptr<const ServingGeneration> ServingEngine::Pin() const {
  return generation_.load();
}

CostAnswer ServingEngine::Cost(const IndexConfig& config) const {
  const auto gen = Pin();
  WorkloadCostEvaluator evaluator(&gen->sealed(), options_.pool);
  return CostAnswer{evaluator.Cost(config), gen->id};
}

std::vector<CostAnswer> ServingEngine::BatchCost(
    const std::vector<IndexConfig>& configs) const {
  const auto gen = Pin();
  WorkloadCostEvaluator evaluator(&gen->sealed(), options_.pool);
  const std::vector<double> costs = evaluator.BatchCost(configs);
  std::vector<CostAnswer> answers(costs.size());
  for (size_t i = 0; i < costs.size(); ++i) {
    answers[i] = CostAnswer{costs[i], gen->id};
  }
  return answers;
}

// ---- Async front end --------------------------------------------------

StatusOr<std::future<CostAnswer>> ServingEngine::SubmitCost(
    IndexConfig config, std::chrono::milliseconds deadline) {
  if (deadline.count() == 0) deadline = options_.default_deadline;
  std::future<CostAnswer> future;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (pending_.size() >= options_.max_queue_depth) {
      stat_shed_unavailable_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "serving queue is full (" + std::to_string(pending_.size()) +
          " pending); retry later");
    }
    PendingRequest request;
    request.config = std::move(config);
    request.deadline = deadline.count() > 0
                           ? std::chrono::steady_clock::now() + deadline
                           : std::chrono::steady_clock::time_point::max();
    future = request.promise.get_future();
    pending_.push_back(std::move(request));
    stat_submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return future;
}

size_t ServingEngine::PumpOnce() {
  std::vector<PendingRequest> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    const size_t take = std::min(pending_.size(), options_.max_batch);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
  }
  if (batch.empty()) return 0;

  // Expired requests are answered (kDeadlineExceeded), not priced and
  // not abandoned: a future's owner always gets a value from whoever
  // pumps first, however late.
  const auto now = std::chrono::steady_clock::now();
  std::vector<PendingRequest> live;
  live.reserve(batch.size());
  size_t expired = 0;
  for (PendingRequest& request : batch) {
    if (request.deadline < now) {
      CostAnswer answer;
      answer.status = Status::DeadlineExceeded(
          "request expired in the serving queue before a pump reached it");
      request.promise.set_value(std::move(answer));
      ++expired;
    } else {
      live.push_back(std::move(request));
    }
  }
  stat_deadline_expired_.fetch_add(expired, std::memory_order_relaxed);
  if (live.empty()) return expired;

  // One pin for the whole batch: coalesced requests are never split
  // across generations, and the sweep is one BatchCost call instead of
  // batch.size() serial Cost calls.
  const auto gen = Pin();
  std::vector<IndexConfig> configs;
  configs.reserve(live.size());
  for (const PendingRequest& request : live) {
    configs.push_back(request.config);
  }
  // A faulting sweep (a pool task throwing — e.g. an injected fault)
  // must neither abandon the batch's promises nor propagate out of
  // whatever thread happened to pump; every request gets an error
  // answer instead.
  try {
    WorkloadCostEvaluator evaluator(&gen->sealed(), options_.pool);
    const std::vector<double> costs = evaluator.BatchCost(configs);
    for (size_t i = 0; i < live.size(); ++i) {
      live[i].promise.set_value(CostAnswer{costs[i], gen->id});
    }
    stat_answered_.fetch_add(live.size(), std::memory_order_relaxed);
  } catch (const std::exception& e) {
    for (PendingRequest& request : live) {
      CostAnswer answer;
      answer.status =
          Status::Internal(std::string("pricing sweep failed: ") + e.what());
      request.promise.set_value(std::move(answer));
    }
    stat_pricing_failures_.fetch_add(live.size(), std::memory_order_relaxed);
  } catch (...) {
    for (PendingRequest& request : live) {
      CostAnswer answer;
      answer.status =
          Status::Internal("pricing sweep failed with a non-standard"
                           " exception");
      request.promise.set_value(std::move(answer));
    }
    stat_pricing_failures_.fetch_add(live.size(), std::memory_order_relaxed);
  }
  return expired + live.size();
}

void ServingEngine::StartDispatcher() {
  StopDispatcher();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    dispatcher_stop_ = false;
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

void ServingEngine::StopDispatcher() {
  if (!dispatcher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    dispatcher_stop_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
}

size_t ServingEngine::Pending() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return pending_.size();
}

void ServingEngine::DispatcherLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return dispatcher_stop_ || !pending_.empty(); });
      // Drain before exiting so StopDispatcher leaves an empty queue.
      if (dispatcher_stop_ && pending_.empty()) return;
    }
    PumpOnce();
  }
}

// ---- Maintenance path -------------------------------------------------

void ServingEngine::Publish(std::shared_ptr<const ServingGeneration> next) {
  generation_.store(std::move(next));
}

void ServingEngine::WithWorld(const std::function<void()>& fn) {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  fn();
}

std::vector<std::string> ServingEngine::StaleNamesLocked() const {
  const auto gen = Pin();
  std::map<TableId, uint64_t> fp_cache;
  std::vector<std::string> stale;
  for (size_t i = 0; i < queries_->size(); ++i) {
    if (builder_->QueryStamp((*queries_)[i], &fp_cache) !=
        gen->stamps()[i]) {
      stale.push_back((*queries_)[i].name);
    }
  }
  return stale;
}

std::vector<std::string> ServingEngine::StaleNames() {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  return StaleNamesLocked();
}

Status ServingEngine::ResealLocked(const std::vector<std::string>& names) {
  stat_reseal_attempts_.fetch_add(1, std::memory_order_relaxed);
  const auto base = Pin();
  const auto started = std::chrono::steady_clock::now();
  // The rebuild lands in a copy; `base` keeps serving readers (and
  // in-flight pins) bit-identically throughout. Pool-task faults
  // surface as exceptions out of ParallelFor — convert them to the
  // same no-publish Status contract as a Status-returning failure, so
  // an injected fault can never escape into (and kill) the watcher
  // thread.
  StatusOr<WorkloadCacheResult> next = [&]() -> StatusOr<WorkloadCacheResult> {
    try {
      return builder_->RebuildQueriesInto(names, *queries_, base->result);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("reseal rebuild threw: ") +
                              e.what());
    } catch (...) {
      return Status::Internal(
          "reseal rebuild threw a non-standard exception");
    }
  }();
  if (!next.ok()) return next.status();

  // The reseal deadline is enforced at publication: a C++ rebuild
  // cannot be aborted mid-flight, but an over-budget result can be
  // discarded — nothing is published, the base generation keeps
  // serving, and the next attempt gets a fresh budget.
  const std::chrono::milliseconds budget =
      options_.maintenance.reseal_deadline;
  if (budget.count() > 0) {
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started);
    if (elapsed > budget) {
      return Status::DeadlineExceeded(
          "reseal overran its deadline (" + std::to_string(elapsed.count()) +
          "ms elapsed, budget " + std::to_string(budget.count()) +
          "ms); result discarded, generation " + std::to_string(base->id) +
          " keeps serving");
    }
  }

  auto next_gen = std::make_shared<ServingGeneration>();
  // Publications are serialized on maintenance_mu_, so base is still
  // current here and id stays strictly monotonic.
  next_gen->id = base->id + 1;
  next_gen->result = std::move(next).value();
  Publish(std::move(next_gen));
  return Status::OK();
}

void ServingEngine::PushEventLocked(MaintenanceEvent event) {
  event.at = std::chrono::steady_clock::now();
  events_.push_back(std::move(event));
  while (events_.size() > options_.max_maintenance_events) {
    events_.pop_front();
  }
}

void ServingEngine::RecordResealOutcome(const Status& status,
                                        uint64_t published) {
  std::lock_guard<std::mutex> lock(status_mu_);
  if (status.ok()) {
    const bool was_degraded = health_ == HealthState::kDegraded;
    last_maintenance_status_ = Status::OK();
    consecutive_failures_ = 0;
    MaintenanceEvent ok_event;
    ok_event.kind = MaintenanceEvent::Kind::kResealSucceeded;
    ok_event.generation = published;
    PushEventLocked(std::move(ok_event));
    if (was_degraded) {
      health_ = HealthState::kHealthy;
      stat_recoveries_.fetch_add(1, std::memory_order_relaxed);
      MaintenanceEvent recovered;
      recovered.kind = MaintenanceEvent::Kind::kRecovered;
      recovered.generation = published;
      PushEventLocked(std::move(recovered));
    }
    return;
  }
  stat_reseal_failures_.fetch_add(1, std::memory_order_relaxed);
  last_maintenance_status_ = status;
  ++consecutive_failures_;
  MaintenanceEvent failed;
  failed.kind = MaintenanceEvent::Kind::kResealFailed;
  failed.status = status;
  failed.generation = published;
  failed.consecutive_failures = consecutive_failures_;
  PushEventLocked(std::move(failed));
  if (health_ == HealthState::kHealthy &&
      consecutive_failures_ >= options_.maintenance.max_retries) {
    health_ = HealthState::kDegraded;
    MaintenanceEvent degraded;
    degraded.kind = MaintenanceEvent::Kind::kDegraded;
    degraded.status = status;
    degraded.generation = published;
    degraded.consecutive_failures = consecutive_failures_;
    PushEventLocked(std::move(degraded));
  }
}

Status ServingEngine::Reseal(const std::vector<std::string>& names) {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  Status status = ResealLocked(names);
  RecordResealOutcome(status, CurrentGenerationId());
  return status;
}

StatusOr<bool> ServingEngine::CheckAndReseal() {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  const std::vector<std::string> stale = StaleNamesLocked();
  if (stale.empty()) {
    // Nothing stale means the serving generation matches the world —
    // if we were failing (or degraded), whatever was failing no longer
    // needs doing: recover.
    std::lock_guard<std::mutex> status_lock(status_mu_);
    if (consecutive_failures_ > 0) {
      consecutive_failures_ = 0;
      last_maintenance_status_ = Status::OK();
      if (health_ == HealthState::kDegraded) {
        health_ = HealthState::kHealthy;
        stat_recoveries_.fetch_add(1, std::memory_order_relaxed);
        MaintenanceEvent recovered;
        recovered.kind = MaintenanceEvent::Kind::kRecovered;
        recovered.generation = CurrentGenerationId();
        PushEventLocked(std::move(recovered));
      }
    }
    return false;
  }
  Status status = ResealLocked(stale);
  RecordResealOutcome(status, CurrentGenerationId());
  if (!status.ok()) return status;
  return true;
}

void ServingEngine::StartDriftWatcher(std::chrono::milliseconds poll) {
  StopDriftWatcher();
  {
    std::lock_guard<std::mutex> lock(watcher_mu_);
    watcher_stop_ = false;
  }
  watcher_ = std::thread([this, poll] { WatcherLoop(poll); });
}

void ServingEngine::StopDriftWatcher() {
  if (!watcher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watcher_mu_);
    watcher_stop_ = true;
  }
  watcher_cv_.notify_all();
  watcher_.join();
}

void ServingEngine::WatcherLoop(std::chrono::milliseconds poll) {
  const MaintenancePolicy& policy = options_.maintenance;
  Rng jitter(policy.jitter_seed);
  std::chrono::milliseconds wait = poll;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watcher_mu_);
      watcher_cv_.wait_for(lock, wait, [this] { return watcher_stop_; });
      if (watcher_stop_) return;
    }
    // Errors are parked in the health state by CheckAndReseal; the old
    // generation keeps serving either way. What the watcher owns is the
    // RETRY CADENCE: after a failure, back off exponentially (with
    // seeded jitter so a fleet doesn't retry in lockstep) instead of
    // hammering the fault at the poll interval; after a success — or
    // nothing to do — return to the poll.
    const StatusOr<bool> outcome = CheckAndReseal();
    if (outcome.ok()) {
      wait = poll;
      continue;
    }
    int failures;
    {
      std::lock_guard<std::mutex> lock(status_mu_);
      failures = consecutive_failures_;
    }
    const int exponent =
        std::min(std::max(failures - 1, 0), policy.max_retries);
    const double base =
        static_cast<double>(policy.initial_backoff.count()) *
        std::pow(policy.backoff_multiplier, exponent);
    // Jitter factor in [0.75, 1.25), deterministic per jitter_seed.
    const double jittered = base * (0.75 + 0.5 * jitter.NextDouble());
    wait = std::chrono::milliseconds(
        std::max<int64_t>(1, static_cast<int64_t>(jittered)));
    {
      std::lock_guard<std::mutex> lock(status_mu_);
      MaintenanceEvent retry;
      retry.kind = MaintenanceEvent::Kind::kRetryScheduled;
      retry.status = outcome.status();
      retry.generation = CurrentGenerationId();
      retry.consecutive_failures = failures;
      retry.backoff = wait;
      PushEventLocked(std::move(retry));
    }
  }
}

Status ServingEngine::LastMaintenanceStatus() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return last_maintenance_status_;
}

HealthReport ServingEngine::Health() const {
  HealthReport report;
  report.generation = CurrentGenerationId();
  std::lock_guard<std::mutex> lock(status_mu_);
  report.state = health_;
  report.last_error = last_maintenance_status_;
  report.consecutive_failures = consecutive_failures_;
  return report;
}

std::vector<MaintenanceEvent> ServingEngine::MaintenanceEvents() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return std::vector<MaintenanceEvent>(events_.begin(), events_.end());
}

ServingStats ServingEngine::Stats() const {
  ServingStats stats;
  stats.submitted = stat_submitted_.load(std::memory_order_relaxed);
  stats.answered = stat_answered_.load(std::memory_order_relaxed);
  stats.shed_unavailable =
      stat_shed_unavailable_.load(std::memory_order_relaxed);
  stats.deadline_expired =
      stat_deadline_expired_.load(std::memory_order_relaxed);
  stats.pricing_failures =
      stat_pricing_failures_.load(std::memory_order_relaxed);
  stats.reseal_attempts =
      stat_reseal_attempts_.load(std::memory_order_relaxed);
  stats.reseal_failures =
      stat_reseal_failures_.load(std::memory_order_relaxed);
  stats.recoveries = stat_recoveries_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace pinum
