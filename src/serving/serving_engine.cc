#include "serving/serving_engine.h"

#include <algorithm>
#include <map>
#include <utility>

#include "advisor/greedy_advisor.h"

namespace pinum {

ServingEngine::ServingEngine(WorkloadCacheBuilder* builder,
                             const std::vector<Query>* queries,
                             WorkloadCacheResult initial,
                             ServingOptions options)
    : builder_(builder), queries_(queries), options_(options) {
  auto first = std::make_shared<ServingGeneration>();
  first->id = 1;
  first->result = std::move(initial);
  generation_.store(std::move(first));
}

ServingEngine::~ServingEngine() {
  StopDriftWatcher();
  StopDispatcher();
  // Requests submitted after the dispatcher stopped still hold
  // promises; answer them rather than abandon them.
  while (PumpOnce() > 0) {
  }
}

// ---- Read path --------------------------------------------------------

std::shared_ptr<const ServingGeneration> ServingEngine::Pin() const {
  return generation_.load();
}

CostAnswer ServingEngine::Cost(const IndexConfig& config) const {
  const auto gen = Pin();
  WorkloadCostEvaluator evaluator(&gen->sealed(), options_.pool);
  return CostAnswer{evaluator.Cost(config), gen->id};
}

std::vector<CostAnswer> ServingEngine::BatchCost(
    const std::vector<IndexConfig>& configs) const {
  const auto gen = Pin();
  WorkloadCostEvaluator evaluator(&gen->sealed(), options_.pool);
  const std::vector<double> costs = evaluator.BatchCost(configs);
  std::vector<CostAnswer> answers(costs.size());
  for (size_t i = 0; i < costs.size(); ++i) {
    answers[i] = CostAnswer{costs[i], gen->id};
  }
  return answers;
}

// ---- Async front end --------------------------------------------------

StatusOr<std::future<CostAnswer>> ServingEngine::SubmitCost(
    IndexConfig config) {
  std::future<CostAnswer> future;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (pending_.size() >= options_.max_queue_depth) {
      return Status::Unavailable(
          "serving queue is full (" + std::to_string(pending_.size()) +
          " pending); retry later");
    }
    PendingRequest request;
    request.config = std::move(config);
    future = request.promise.get_future();
    pending_.push_back(std::move(request));
  }
  queue_cv_.notify_one();
  return future;
}

size_t ServingEngine::PumpOnce() {
  std::vector<PendingRequest> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    const size_t take = std::min(pending_.size(), options_.max_batch);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
  }
  if (batch.empty()) return 0;

  // One pin for the whole batch: coalesced requests are never split
  // across generations, and the sweep is one BatchCost call instead of
  // batch.size() serial Cost calls.
  const auto gen = Pin();
  WorkloadCostEvaluator evaluator(&gen->sealed(), options_.pool);
  std::vector<IndexConfig> configs;
  configs.reserve(batch.size());
  for (const PendingRequest& request : batch) {
    configs.push_back(request.config);
  }
  const std::vector<double> costs = evaluator.BatchCost(configs);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(CostAnswer{costs[i], gen->id});
  }
  return batch.size();
}

void ServingEngine::StartDispatcher() {
  StopDispatcher();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    dispatcher_stop_ = false;
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

void ServingEngine::StopDispatcher() {
  if (!dispatcher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    dispatcher_stop_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
}

size_t ServingEngine::Pending() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return pending_.size();
}

void ServingEngine::DispatcherLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return dispatcher_stop_ || !pending_.empty(); });
      // Drain before exiting so StopDispatcher leaves an empty queue.
      if (dispatcher_stop_ && pending_.empty()) return;
    }
    PumpOnce();
  }
}

// ---- Maintenance path -------------------------------------------------

void ServingEngine::Publish(std::shared_ptr<const ServingGeneration> next) {
  generation_.store(std::move(next));
}

void ServingEngine::WithWorld(const std::function<void()>& fn) {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  fn();
}

std::vector<std::string> ServingEngine::StaleNamesLocked() const {
  const auto gen = Pin();
  std::map<TableId, uint64_t> fp_cache;
  std::vector<std::string> stale;
  for (size_t i = 0; i < queries_->size(); ++i) {
    if (builder_->QueryStamp((*queries_)[i], &fp_cache) !=
        gen->stamps()[i]) {
      stale.push_back((*queries_)[i].name);
    }
  }
  return stale;
}

std::vector<std::string> ServingEngine::StaleNames() {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  return StaleNamesLocked();
}

Status ServingEngine::ResealLocked(const std::vector<std::string>& names) {
  const auto base = Pin();
  // The rebuild lands in a copy; `base` keeps serving readers (and
  // in-flight pins) bit-identically throughout.
  PINUM_ASSIGN_OR_RETURN(
      WorkloadCacheResult next,
      builder_->RebuildQueriesInto(names, *queries_, base->result));
  auto next_gen = std::make_shared<ServingGeneration>();
  // Publications are serialized on maintenance_mu_, so base is still
  // current here and id stays strictly monotonic.
  next_gen->id = base->id + 1;
  next_gen->result = std::move(next);
  Publish(std::move(next_gen));
  return Status::OK();
}

Status ServingEngine::Reseal(const std::vector<std::string>& names) {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  Status status = ResealLocked(names);
  if (!status.ok()) {
    std::lock_guard<std::mutex> status_lock(status_mu_);
    last_maintenance_status_ = status;
  }
  return status;
}

StatusOr<bool> ServingEngine::CheckAndReseal() {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  const std::vector<std::string> stale = StaleNamesLocked();
  if (stale.empty()) return false;
  Status status = ResealLocked(stale);
  if (!status.ok()) {
    std::lock_guard<std::mutex> status_lock(status_mu_);
    last_maintenance_status_ = status;
    return status;
  }
  return true;
}

void ServingEngine::StartDriftWatcher(std::chrono::milliseconds poll) {
  StopDriftWatcher();
  {
    std::lock_guard<std::mutex> lock(watcher_mu_);
    watcher_stop_ = false;
  }
  watcher_ = std::thread([this, poll] { WatcherLoop(poll); });
}

void ServingEngine::StopDriftWatcher() {
  if (!watcher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watcher_mu_);
    watcher_stop_ = true;
  }
  watcher_cv_.notify_all();
  watcher_.join();
}

void ServingEngine::WatcherLoop(std::chrono::milliseconds poll) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watcher_mu_);
      watcher_cv_.wait_for(lock, poll, [this] { return watcher_stop_; });
      if (watcher_stop_) return;
    }
    // Errors are parked in last_maintenance_status_ by CheckAndReseal;
    // the old generation keeps serving either way.
    (void)CheckAndReseal();
  }
}

Status ServingEngine::LastMaintenanceStatus() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return last_maintenance_status_;
}

}  // namespace pinum
