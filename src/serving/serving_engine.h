// Always-on what-if serving: answers configuration-cost questions
// continuously while the world drifts underneath, with reseals that
// never stop the serving path.
//
// The core is an RCU-style generation swap. All serving state lives in
// immutable ServingGenerations (serving_generation.h); the engine holds
// the current one in an atomic shared_ptr. Readers pin it with one
// atomic load — no lock, no wait, no interaction with maintenance —
// and answer from the pinned generation even if ten reseals publish
// while they compute. Maintenance builds the next generation off to
// the side (WorkloadCacheBuilder::RebuildQueriesInto copies the base
// result and reseals only the stale queries) and publishes it with one
// atomic store. Old generations are reclaimed by shared_ptr refcount
// when the last pinned reader drops them.
//
// On top of the swap sits the self-healing layer (docs/SERVING.md,
// "Failure semantics"): a failed reseal never stops serving — the last
// good generation keeps answering bit-identically (stale-while-
// revalidate) while the drift watcher retries with exponential backoff
// under MaintenancePolicy; repeated failure degrades the HealthReport
// to kDegraded, and the first success after the fault clears recovers
// it to kHealthy automatically. SubmitCost futures carry per-request
// deadlines, so a stalled pump answers kDeadlineExceeded instead of
// leaving callers parked on a future forever.
//
// Thread-safety contract (docs/SERVING.md has the long form):
//  - Pin/Cost/BatchCost/SubmitCost/PumpOnce: any thread, any time,
//    concurrent with each other and with maintenance.
//  - Reseal/StaleNames/CheckAndReseal/WithWorld: serialized internally
//    on one maintenance mutex. ALL mutation of the world the builder is
//    bound to (StatsCatalog, CandidateSet — e.g. ApplyDrift) must go
//    through WithWorld so it serializes against stamp reads and
//    rebuilds; the serving path never touches the world, only
//    published generations.
//  - Health/MaintenanceEvents/Stats: any thread, any time.
//  - WorkloadCostEvaluator::EvalScratch stays one-caller-at-a-time as
//    documented in greedy_advisor.h; the engine never shares one.
#ifndef PINUM_SERVING_SERVING_ENGINE_H_
#define PINUM_SERVING_SERVING_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "query/query.h"
#include "serving/serving_generation.h"
#include "whatif/candidate_set.h"
#include "workload/cache_manager.h"

namespace pinum {

/// How maintenance behaves when reseals fail: the drift watcher retries
/// a failing reseal with exponential backoff instead of hammering the
/// poll interval, and after max_retries consecutive failures the engine
/// reports kDegraded — still serving the last good generation — until a
/// reseal succeeds again.
struct MaintenancePolicy {
  /// Consecutive reseal failures before Health() reports kDegraded.
  /// Retrying never stops (the fault may clear); this only moves the
  /// health state, so operators alarm on persistent faults rather than
  /// one blip.
  int max_retries = 3;
  /// Backoff before the first retry; doubles (backoff_multiplier) per
  /// consecutive failure, capped at the max_retries exponent.
  std::chrono::milliseconds initial_backoff{10};
  double backoff_multiplier = 2.0;
  /// Seed for the +-25% jitter on every backoff wait (deterministic per
  /// engine; keeps a fleet of engines from retrying in lockstep).
  uint64_t jitter_seed = 0;
  /// Wall-clock budget for one reseal. A rebuild cannot be aborted
  /// mid-computation, so this is enforced at publication: a reseal that
  /// finishes past its deadline reports kDeadlineExceeded and is NOT
  /// published — the world will still be stale, the next attempt (or a
  /// faster moment) publishes instead. Zero disables the budget.
  std::chrono::milliseconds reseal_deadline{0};
};

/// Serving-engine knobs.
struct ServingOptions {
  /// Admission control: SubmitCost sheds with kUnavailable once this
  /// many requests are queued. Bounds both memory and the worst-case
  /// answer staleness a queued request can observe.
  size_t max_queue_depth = 1024;
  /// Batch coalescing: one pump drains at most this many queued
  /// requests into a single BatchCost sweep over one pinned generation.
  size_t max_batch = 256;
  /// Prices coalesced sweeps in parallel when given (not owned; may be
  /// the builder's pool — concurrent ParallelFor regions are safe).
  /// Null prices serially.
  ThreadPool* pool = nullptr;
  /// Deadline applied to SubmitCost requests that don't pass their own
  /// (zero = no deadline, the pre-existing wait-forever behavior).
  std::chrono::milliseconds default_deadline{0};
  /// Reseal retry/backoff/degradation policy (see MaintenancePolicy).
  MaintenancePolicy maintenance;
  /// Bound on the maintenance-event ring MaintenanceEvents() serves;
  /// older events fall off the front.
  size_t max_maintenance_events = 64;
};

/// One answered cost question: the workload cost plus the id of the
/// generation that produced it. Every OK answer is bit-identical to a
/// cold rebuild of that generation's world — the concurrency stress
/// suite pins this — so the id tells the caller exactly which world
/// snapshot they were quoted. A non-OK `status` (kDeadlineExceeded for
/// a request that expired in the queue, kInternal for a pricing sweep
/// that faulted) means `cost` is meaningless and `generation` is 0.
struct CostAnswer {
  double cost = 0;
  uint64_t generation = 0;
  Status status;
};

/// Two-state serving health. The engine NEVER stops answering — even
/// kDegraded serves the last good generation bit-identically; the state
/// says whether maintenance is keeping up with the world.
enum class HealthState {
  /// Reseals are succeeding (or nothing has needed one).
  kHealthy,
  /// max_retries consecutive reseals have failed; serving continues
  /// from the last good generation (stale-while-revalidate) and the
  /// watcher keeps retrying. Auto-recovers on the next success.
  kDegraded,
};

/// One timestamped maintenance-ring entry (see MaintenanceEvents()).
struct MaintenanceEvent {
  enum class Kind {
    kResealSucceeded,
    kResealFailed,
    /// The watcher scheduled a backoff retry after a failure; `backoff`
    /// holds the wait it chose (jitter included).
    kRetryScheduled,
    /// Consecutive failures crossed max_retries: health kDegraded.
    kDegraded,
    /// First success after kDegraded: health back to kHealthy.
    kRecovered,
  };
  Kind kind = Kind::kResealSucceeded;
  /// The reseal's Status (OK for kResealSucceeded/kRecovered).
  Status status;
  /// Generation published (success) or still serving (failure).
  uint64_t generation = 0;
  /// Consecutive-failure count at the time of the event.
  int consecutive_failures = 0;
  std::chrono::milliseconds backoff{0};
  std::chrono::steady_clock::time_point at;
};

/// Snapshot of serving health, readable from any thread.
struct HealthReport {
  HealthState state = HealthState::kHealthy;
  /// Last reseal failure (OK if the most recent reseal succeeded or
  /// none has run).
  Status last_error;
  int consecutive_failures = 0;
  /// Id of the generation currently serving.
  uint64_t generation = 0;
};

/// Monotonic counters for shed/failure observability: tests and benches
/// assert shedding and degradation actually happened instead of
/// inferring them from timing.
struct ServingStats {
  /// SubmitCost calls admitted into the queue.
  uint64_t submitted = 0;
  /// Futures fulfilled with an OK priced answer.
  uint64_t answered = 0;
  /// SubmitCost calls shed with kUnavailable (queue full).
  uint64_t shed_unavailable = 0;
  /// Futures fulfilled with kDeadlineExceeded (expired in the queue).
  uint64_t deadline_expired = 0;
  /// Futures fulfilled with an error because their pricing sweep
  /// faulted (e.g. an injected pool fault mid-BatchCost).
  uint64_t pricing_failures = 0;
  uint64_t reseal_attempts = 0;
  uint64_t reseal_failures = 0;
  /// kDegraded -> kHealthy transitions.
  uint64_t recoveries = 0;
};

/// Always-on serving front end over one workload's sealed caches.
/// Construct with the builder, the (fixed) query vector BuildAll
/// consumed, and BuildAll's result; the engine publishes that result as
/// generation 1 and starts answering immediately. The builder, queries,
/// and the world objects the builder is bound to must outlive the
/// engine.
///
/// `initial` may equally be LoadSnapshotMapped's result — the restart
/// path that starts answering traffic before any build runs. The
/// mapped result's `mapping` handle travels into generation 1 (and its
/// caches' arenas co-own it), so the snapshot pages stay valid for as
/// long as any pinned generation or in-flight answer needs them; later
/// reseals copy the handle forward until every borrowed cache has been
/// rebuilt heap-side (see docs/SERVING.md).
class ServingEngine {
 public:
  ServingEngine(WorkloadCacheBuilder* builder,
                const std::vector<Query>* queries,
                WorkloadCacheResult initial, ServingOptions options = {});
  /// Stops the watcher and dispatcher, then drains every queued request
  /// (no promise is ever abandoned to a broken_promise).
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  // ---- Read path: lock-free, concurrent with everything ----

  /// Pins the current generation: one atomic shared_ptr load. The
  /// returned generation is immutable and stays alive until the caller
  /// drops the pointer; holding it does not block reseals.
  std::shared_ptr<const ServingGeneration> Pin() const;

  /// Id of the generation a Pin() right now would return.
  uint64_t CurrentGenerationId() const { return Pin()->id; }

  /// Workload cost of one configuration against the pinned current
  /// generation. Bit-identical to
  /// WorkloadCostEvaluator(&gen->sealed()).Cost(config) for the
  /// generation the answer names.
  CostAnswer Cost(const IndexConfig& config) const;

  /// Batched form: all configs price against ONE pinned generation (a
  /// reseal mid-call never splits a batch across generations), so every
  /// answer in the result carries the same generation id.
  std::vector<CostAnswer> BatchCost(
      const std::vector<IndexConfig>& configs) const;

  // ---- Async front end: queue + coalescing + admission control ----

  /// Enqueues one cost question and returns a future for its answer.
  /// Sheds with Status::Unavailable — a retryable, nothing-wrong-with-
  /// the-request rejection — when max_queue_depth requests are already
  /// waiting. The future is fulfilled by the dispatcher thread (if
  /// started), any PumpOnce caller, or at latest the destructor.
  ///
  /// `deadline` bounds how long the request may wait in the queue
  /// (zero: fall back to options.default_deadline; both zero: wait
  /// indefinitely). A request past its deadline when a pump pops it is
  /// answered with CostAnswer.status == kDeadlineExceeded instead of a
  /// price — fulfilled, never abandoned — so no future outlives its
  /// deadline unanswered once anything pumps (the dispatcher makes that
  /// prompt; without it, the next PumpOnce or the destructor).
  StatusOr<std::future<CostAnswer>> SubmitCost(
      IndexConfig config,
      std::chrono::milliseconds deadline = std::chrono::milliseconds(0));

  /// Drains up to max_batch queued requests, answers expired ones with
  /// kDeadlineExceeded, prices the rest in one BatchCost sweep against
  /// one pinned generation, and fulfils their futures. Returns how many
  /// futures were fulfilled (0 = queue was empty). If the pricing sweep
  /// itself faults (an injected pool fault, a throwing cost body), every
  /// request in the batch is fulfilled with an error answer — a faulting
  /// sweep never abandons promises or kills the pumping thread. Safe
  /// from any thread, including concurrent with the dispatcher.
  size_t PumpOnce();

  /// Starts/stops the background dispatcher thread that pumps whenever
  /// requests are queued. Stop drains the queue before returning.
  void StartDispatcher();
  void StopDispatcher();

  /// Current queue depth (requests submitted but not yet drained into
  /// a sweep). For tests and admission-control introspection.
  size_t Pending() const;

  // ---- Maintenance path: serialized, concurrent with serving ----

  /// Runs `fn` holding the maintenance mutex. Every mutation of the
  /// world the builder is bound to (ApplyDrift, manual stats edits,
  /// candidate appends) MUST be wrapped in this: it serializes the
  /// mutation against stamp reads and rebuilds, while serving
  /// continues untouched from published generations.
  void WithWorld(const std::function<void()>& fn);

  /// Names of the queries whose live QueryStamp differs from the
  /// current generation's build stamp — the exact set a reseal must
  /// rebuild. Empty means the current generation matches the world.
  std::vector<std::string> StaleNames();

  /// Rebuilds the named queries into a copy of the current generation
  /// and publishes the copy as the next generation, concurrent with
  /// serving. On error nothing is published and the current generation
  /// keeps serving. A rebuild that throws (pool-task faults surface as
  /// exceptions) is converted to a kInternal Status — same contract.
  Status Reseal(const std::vector<std::string>& names);

  /// StaleNames + Reseal under one maintenance-mutex hold. Returns
  /// whether a new generation was published (false = nothing stale).
  StatusOr<bool> CheckAndReseal();

  /// Starts/stops the drift watcher: a background thread that runs
  /// CheckAndReseal every `poll`. Watcher errors never stop serving:
  /// they are recorded (LastMaintenanceStatus, MaintenanceEvents) and
  /// retried with exponential backoff under options.maintenance —
  /// after a failure the watcher waits backoff instead of poll, so a
  /// persistent fault is retried gently and a transient one heals at
  /// the next attempt.
  void StartDriftWatcher(std::chrono::milliseconds poll);
  void StopDriftWatcher();

  /// The most recent maintenance failure (OK if none yet). The
  /// watcher parks errors here since it has no caller to return to.
  Status LastMaintenanceStatus() const;

  // ---- Health + observability ----

  /// Current serving health (see HealthState). Readable any time.
  HealthReport Health() const;

  /// The bounded maintenance-event ring, oldest first: every reseal
  /// outcome, scheduled retry, degradation, and recovery, timestamped.
  /// At most options.max_maintenance_events entries are retained.
  std::vector<MaintenanceEvent> MaintenanceEvents() const;

  /// Monotonic shed/failure counters (see ServingStats).
  ServingStats Stats() const;

 private:
  struct PendingRequest {
    IndexConfig config;
    std::promise<CostAnswer> promise;
    /// Queue-residency bound; time_point::max() = no deadline.
    std::chrono::steady_clock::time_point deadline;
  };

  /// Atomically replaces the current generation. Publication order is
  /// the maintenance serialization order, so ids stay monotonic.
  void Publish(std::shared_ptr<const ServingGeneration> next);

  std::vector<std::string> StaleNamesLocked() const;
  Status ResealLocked(const std::vector<std::string>& names);

  /// Folds one reseal outcome into the health state + event ring.
  /// `published` is the generation id serving after the attempt.
  void RecordResealOutcome(const Status& status, uint64_t published);
  void PushEventLocked(MaintenanceEvent event);  // status_mu_ held

  void DispatcherLoop();
  void WatcherLoop(std::chrono::milliseconds poll);

  WorkloadCacheBuilder* builder_;
  const std::vector<Query>* queries_;
  ServingOptions options_;

  /// The one swap point. Readers load, maintenance stores; never
  /// null after construction.
  std::atomic<std::shared_ptr<const ServingGeneration>> generation_;

  /// Serializes every world mutation, stamp read, and rebuild.
  std::mutex maintenance_mu_;

  /// Guards the health/event state below.
  mutable std::mutex status_mu_;
  Status last_maintenance_status_;
  HealthState health_ = HealthState::kHealthy;
  int consecutive_failures_ = 0;
  std::deque<MaintenanceEvent> events_;

  // Monotonic counters; relaxed is fine, they are statistics.
  std::atomic<uint64_t> stat_submitted_{0};
  std::atomic<uint64_t> stat_answered_{0};
  std::atomic<uint64_t> stat_shed_unavailable_{0};
  std::atomic<uint64_t> stat_deadline_expired_{0};
  std::atomic<uint64_t> stat_pricing_failures_{0};
  std::atomic<uint64_t> stat_reseal_attempts_{0};
  std::atomic<uint64_t> stat_reseal_failures_{0};
  std::atomic<uint64_t> stat_recoveries_{0};

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> pending_;

  std::thread dispatcher_;
  bool dispatcher_stop_ = false;  // guarded by queue_mu_

  std::thread watcher_;
  std::mutex watcher_mu_;
  std::condition_variable watcher_cv_;
  bool watcher_stop_ = false;  // guarded by watcher_mu_
};

}  // namespace pinum

#endif  // PINUM_SERVING_SERVING_ENGINE_H_
