// Always-on what-if serving: answers configuration-cost questions
// continuously while the world drifts underneath, with reseals that
// never stop the serving path.
//
// The core is an RCU-style generation swap. All serving state lives in
// immutable ServingGenerations (serving_generation.h); the engine holds
// the current one in an atomic shared_ptr. Readers pin it with one
// atomic load — no lock, no wait, no interaction with maintenance —
// and answer from the pinned generation even if ten reseals publish
// while they compute. Maintenance builds the next generation off to
// the side (WorkloadCacheBuilder::RebuildQueriesInto copies the base
// result and reseals only the stale queries) and publishes it with one
// atomic store. Old generations are reclaimed by shared_ptr refcount
// when the last pinned reader drops them.
//
// Thread-safety contract (docs/SERVING.md has the long form):
//  - Pin/Cost/BatchCost/SubmitCost/PumpOnce: any thread, any time,
//    concurrent with each other and with maintenance.
//  - Reseal/StaleNames/CheckAndReseal/WithWorld: serialized internally
//    on one maintenance mutex. ALL mutation of the world the builder is
//    bound to (StatsCatalog, CandidateSet — e.g. ApplyDrift) must go
//    through WithWorld so it serializes against stamp reads and
//    rebuilds; the serving path never touches the world, only
//    published generations.
//  - WorkloadCostEvaluator::EvalScratch stays one-caller-at-a-time as
//    documented in greedy_advisor.h; the engine never shares one.
#ifndef PINUM_SERVING_SERVING_ENGINE_H_
#define PINUM_SERVING_SERVING_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "query/query.h"
#include "serving/serving_generation.h"
#include "whatif/candidate_set.h"
#include "workload/cache_manager.h"

namespace pinum {

/// Serving-engine knobs.
struct ServingOptions {
  /// Admission control: SubmitCost sheds with kUnavailable once this
  /// many requests are queued. Bounds both memory and the worst-case
  /// answer staleness a queued request can observe.
  size_t max_queue_depth = 1024;
  /// Batch coalescing: one pump drains at most this many queued
  /// requests into a single BatchCost sweep over one pinned generation.
  size_t max_batch = 256;
  /// Prices coalesced sweeps in parallel when given (not owned; may be
  /// the builder's pool — concurrent ParallelFor regions are safe).
  /// Null prices serially.
  ThreadPool* pool = nullptr;
};

/// One answered cost question: the workload cost plus the id of the
/// generation that produced it. Every answer is bit-identical to a cold
/// rebuild of that generation's world — the concurrency stress suite
/// pins this — so the id tells the caller exactly which world snapshot
/// they were quoted.
struct CostAnswer {
  double cost = 0;
  uint64_t generation = 0;
};

/// Always-on serving front end over one workload's sealed caches.
/// Construct with the builder, the (fixed) query vector BuildAll
/// consumed, and BuildAll's result; the engine publishes that result as
/// generation 1 and starts answering immediately. The builder, queries,
/// and the world objects the builder is bound to must outlive the
/// engine.
///
/// `initial` may equally be LoadSnapshotMapped's result — the restart
/// path that starts answering traffic before any build runs. The
/// mapped result's `mapping` handle travels into generation 1 (and its
/// caches' arenas co-own it), so the snapshot pages stay valid for as
/// long as any pinned generation or in-flight answer needs them; later
/// reseals copy the handle forward until every borrowed cache has been
/// rebuilt heap-side (see docs/SERVING.md).
class ServingEngine {
 public:
  ServingEngine(WorkloadCacheBuilder* builder,
                const std::vector<Query>* queries,
                WorkloadCacheResult initial, ServingOptions options = {});
  /// Stops the watcher and dispatcher, then drains every queued request
  /// (no promise is ever abandoned to a broken_promise).
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  // ---- Read path: lock-free, concurrent with everything ----

  /// Pins the current generation: one atomic shared_ptr load. The
  /// returned generation is immutable and stays alive until the caller
  /// drops the pointer; holding it does not block reseals.
  std::shared_ptr<const ServingGeneration> Pin() const;

  /// Id of the generation a Pin() right now would return.
  uint64_t CurrentGenerationId() const { return Pin()->id; }

  /// Workload cost of one configuration against the pinned current
  /// generation. Bit-identical to
  /// WorkloadCostEvaluator(&gen->sealed()).Cost(config) for the
  /// generation the answer names.
  CostAnswer Cost(const IndexConfig& config) const;

  /// Batched form: all configs price against ONE pinned generation (a
  /// reseal mid-call never splits a batch across generations), so every
  /// answer in the result carries the same generation id.
  std::vector<CostAnswer> BatchCost(
      const std::vector<IndexConfig>& configs) const;

  // ---- Async front end: queue + coalescing + admission control ----

  /// Enqueues one cost question and returns a future for its answer.
  /// Sheds with Status::Unavailable — a retryable, nothing-wrong-with-
  /// the-request rejection — when max_queue_depth requests are already
  /// waiting. The future is fulfilled by the dispatcher thread (if
  /// started), any PumpOnce caller, or at latest the destructor.
  StatusOr<std::future<CostAnswer>> SubmitCost(IndexConfig config);

  /// Drains up to max_batch queued requests, prices them in one
  /// BatchCost sweep against one pinned generation, and fulfils their
  /// futures. Returns how many were answered (0 = queue was empty).
  /// Safe from any thread, including concurrent with the dispatcher.
  size_t PumpOnce();

  /// Starts/stops the background dispatcher thread that pumps whenever
  /// requests are queued. Stop drains the queue before returning.
  void StartDispatcher();
  void StopDispatcher();

  /// Current queue depth (requests submitted but not yet drained into
  /// a sweep). For tests and admission-control introspection.
  size_t Pending() const;

  // ---- Maintenance path: serialized, concurrent with serving ----

  /// Runs `fn` holding the maintenance mutex. Every mutation of the
  /// world the builder is bound to (ApplyDrift, manual stats edits,
  /// candidate appends) MUST be wrapped in this: it serializes the
  /// mutation against stamp reads and rebuilds, while serving
  /// continues untouched from published generations.
  void WithWorld(const std::function<void()>& fn);

  /// Names of the queries whose live QueryStamp differs from the
  /// current generation's build stamp — the exact set a reseal must
  /// rebuild. Empty means the current generation matches the world.
  std::vector<std::string> StaleNames();

  /// Rebuilds the named queries into a copy of the current generation
  /// and publishes the copy as the next generation, concurrent with
  /// serving. On error nothing is published and the current generation
  /// keeps serving.
  Status Reseal(const std::vector<std::string>& names);

  /// StaleNames + Reseal under one maintenance-mutex hold. Returns
  /// whether a new generation was published (false = nothing stale).
  StatusOr<bool> CheckAndReseal();

  /// Starts/stops the drift watcher: a background thread that runs
  /// CheckAndReseal every `poll`. Watcher errors never stop serving;
  /// they are recorded and readable via LastMaintenanceStatus.
  void StartDriftWatcher(std::chrono::milliseconds poll);
  void StopDriftWatcher();

  /// The most recent maintenance failure (OK if none yet). The
  /// watcher parks errors here since it has no caller to return to.
  Status LastMaintenanceStatus() const;

 private:
  struct PendingRequest {
    IndexConfig config;
    std::promise<CostAnswer> promise;
  };

  /// Atomically replaces the current generation. Publication order is
  /// the maintenance serialization order, so ids stay monotonic.
  void Publish(std::shared_ptr<const ServingGeneration> next);

  std::vector<std::string> StaleNamesLocked() const;
  Status ResealLocked(const std::vector<std::string>& names);

  void DispatcherLoop();
  void WatcherLoop(std::chrono::milliseconds poll);

  WorkloadCacheBuilder* builder_;
  const std::vector<Query>* queries_;
  ServingOptions options_;

  /// The one swap point. Readers load, maintenance stores; never
  /// null after construction.
  std::atomic<std::shared_ptr<const ServingGeneration>> generation_;

  /// Serializes every world mutation, stamp read, and rebuild.
  std::mutex maintenance_mu_;

  mutable std::mutex status_mu_;
  Status last_maintenance_status_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> pending_;

  std::thread dispatcher_;
  bool dispatcher_stop_ = false;  // guarded by queue_mu_

  std::thread watcher_;
  std::mutex watcher_mu_;
  std::condition_variable watcher_cv_;
  bool watcher_stop_ = false;  // guarded by watcher_mu_
};

}  // namespace pinum

#endif  // PINUM_SERVING_SERVING_ENGINE_H_
