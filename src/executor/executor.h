// Plan execution engine: interprets optimizer plans over the in-memory
// row store. Used by the Figure 7 experiment (workload runtimes with and
// without suggested indexes) and by integration tests that verify every
// plan shape produces identical results.
#ifndef PINUM_EXECUTOR_EXECUTOR_H_
#define PINUM_EXECUTOR_EXECUTOR_H_

#include <cstdint>

#include "common/status.h"
#include "optimizer/path.h"
#include "query/query.h"
#include "storage/database.h"

namespace pinum {

/// Execution outcome.
struct ExecResult {
  int64_t rows = 0;
  /// Order-independent checksum of the projected output; identical for
  /// every correct plan of the same query over the same data.
  uint64_t checksum = 0;
  /// True when the output respects the query's ORDER BY.
  bool ordered_ok = true;
  double millis = 0;
};

/// Executes optimizer plans against a Database with materialized data.
///
/// Index scans require the referenced index to be *real* (built via
/// Database::BuildIndex); executing a plan that references a hypothetical
/// index returns InvalidArgument — what-if indexes exist only as
/// statistics (paper, Section V-A).
class PlanExecutor {
 public:
  explicit PlanExecutor(const Database* db) : db_(db) {}

  /// Runs `plan` for `query`, returning row count, checksum and wall time.
  StatusOr<ExecResult> Execute(const Query& query, const Path& plan) const;

 private:
  const Database* db_;
};

}  // namespace pinum

#endif  // PINUM_EXECUTOR_EXECUTOR_H_
