#include "executor/executor.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/stopwatch.h"

namespace pinum {

namespace {

/// Materialized intermediate result.
struct Relation {
  std::vector<ColumnRef> schema;
  std::vector<std::vector<Value>> rows;

  int IndexOf(ColumnRef c) const {
    for (size_t i = 0; i < schema.size(); ++i) {
      if (schema[i] == c) return static_cast<int>(i);
    }
    return -1;
  }
};

bool EvalCompare(Value lhs, CompareOp op, Value rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

/// FNV-1a over the row values.
uint64_t RowHash(const std::vector<Value>& row) {
  uint64_t h = 1469598103934665603ULL;
  for (Value v : row) {
    h ^= static_cast<uint64_t>(v);
    h *= 1099511628211ULL;
  }
  return h;
}

class ExecContext {
 public:
  ExecContext(const Database* db, const Query* query)
      : db_(db), query_(query) {}

  StatusOr<Relation> Eval(const Path& path) {
    switch (path.kind) {
      case PathKind::kSeqScan:
        return EvalSeqScan(path);
      case PathKind::kIndexScan:
        return EvalIndexScan(path);
      case PathKind::kNestLoop:
        return EvalNestLoop(path);
      case PathKind::kHashJoin:
        return EvalHashJoin(path);
      case PathKind::kMergeJoin:
        return EvalMergeJoin(path);
      case PathKind::kSort:
        return EvalSort(path);
      case PathKind::kHashAgg:
      case PathKind::kGroupAgg:
        return EvalAgg(path);
      case PathKind::kIndexProbe:
        return Status::Internal(
            "IndexProbe must appear as the inner of a NestLoop");
    }
    return Status::Unimplemented("unknown path kind");
  }

 private:
  /// Output schema of a base-table scan: the columns the query needs.
  std::vector<ColumnRef> ScanSchema(TableId table) const {
    std::vector<ColumnRef> schema;
    for (ColumnIdx c : query_->NeededColumns(table)) {
      schema.push_back({table, c});
    }
    return schema;
  }

  /// True when `row` (a full heap row) passes the query's filters.
  bool PassesFilters(const TableData& data, RowIdx r,
                     const std::vector<FilterPredicate>& filters) const {
    for (const auto& f : filters) {
      if (!EvalCompare(data.at(r, f.column.column), f.op, f.constant)) {
        return false;
      }
    }
    return true;
  }

  void EmitRow(Relation* out, const TableData& data, RowIdx r) const {
    std::vector<Value> row;
    row.reserve(out->schema.size());
    for (const auto& c : out->schema) row.push_back(data.at(r, c.column));
    out->rows.push_back(std::move(row));
  }

  StatusOr<Relation> EvalSeqScan(const Path& path) {
    const TableData* data = db_->FindData(path.table);
    if (data == nullptr) {
      return Status::InvalidArgument("table not materialized");
    }
    Relation out;
    out.schema = ScanSchema(path.table);
    const auto filters = query_->FiltersOn(path.table);
    const int64_t n = data->NumRows();
    for (RowIdx r = 0; r < n; ++r) {
      if (PassesFilters(*data, r, filters)) EmitRow(&out, *data, r);
    }
    return out;
  }

  /// Bounds on the index's leading column implied by the query filters.
  static void LeadingBounds(const std::vector<FilterPredicate>& filters,
                            ColumnIdx lead, Value* lo, Value* hi) {
    *lo = std::numeric_limits<Value>::min();
    *hi = std::numeric_limits<Value>::max();
    for (const auto& f : filters) {
      if (f.column.column != lead) continue;
      switch (f.op) {
        case CompareOp::kEq:
          *lo = std::max(*lo, f.constant);
          *hi = std::min(*hi, f.constant);
          break;
        case CompareOp::kLt:
          *hi = std::min(*hi, f.constant - 1);
          break;
        case CompareOp::kLe:
          *hi = std::min(*hi, f.constant);
          break;
        case CompareOp::kGt:
          *lo = std::max(*lo, f.constant + 1);
          break;
        case CompareOp::kGe:
          *lo = std::max(*lo, f.constant);
          break;
      }
    }
  }

  StatusOr<Relation> EvalIndexScan(const Path& path) {
    const TableData* data = db_->FindData(path.table);
    const BTreeIndex* index = db_->FindBuiltIndex(path.index);
    if (data == nullptr) {
      return Status::InvalidArgument("table not materialized");
    }
    if (index == nullptr) {
      return Status::InvalidArgument(
          "plan references a hypothetical (what-if) index; build it first");
    }
    Relation out;
    out.schema = ScanSchema(path.table);
    const auto filters = query_->FiltersOn(path.table);
    Value lo, hi;
    LeadingBounds(filters, index->def().leading_column(), &lo, &hi);
    for (RowIdx r : index->RangeScan(lo, hi)) {
      if (PassesFilters(*data, r, filters)) EmitRow(&out, *data, r);
    }
    return out;
  }

  /// Join predicates crossing the two input schemas (unapplied so far).
  std::vector<std::pair<int, int>> CrossingPreds(const Relation& outer,
                                                 const Relation& inner) const {
    std::vector<std::pair<int, int>> crossing;
    for (const auto& j : query_->joins) {
      const int lo = outer.IndexOf(j.left), li = inner.IndexOf(j.left);
      const int ro = outer.IndexOf(j.right), ri = inner.IndexOf(j.right);
      if (lo >= 0 && ri >= 0) crossing.emplace_back(lo, ri);
      if (ro >= 0 && li >= 0) crossing.emplace_back(ro, li);
    }
    return crossing;
  }

  template <typename T>
  static std::vector<T> Concat(const std::vector<T>& a,
                               const std::vector<T>& b) {
    std::vector<T> out = a;
    out.insert(out.end(), b.begin(), b.end());
    return out;
  }

  StatusOr<Relation> EvalNestLoop(const Path& path) {
    PINUM_ASSIGN_OR_RETURN(Relation outer, Eval(*path.outer));
    Relation out;

    if (path.inner->kind == PathKind::kIndexProbe) {
      const Path& probe = *path.inner;
      const TableData* data = db_->FindData(probe.table);
      const BTreeIndex* index = db_->FindBuiltIndex(probe.index);
      if (data == nullptr) {
        return Status::InvalidArgument("table not materialized");
      }
      if (index == nullptr) {
        return Status::InvalidArgument(
            "plan probes a hypothetical (what-if) index; build it first");
      }
      Relation inner_schema_only;
      inner_schema_only.schema = ScanSchema(probe.table);
      out.schema =
          Concat(outer.schema, inner_schema_only.schema);
      // Outer-side column of the probe predicate.
      const JoinPredicate& jp = path.join_preds.at(0);
      const ColumnRef outer_col =
          jp.left.table == probe.table ? jp.right : jp.left;
      const int outer_idx = outer.IndexOf(outer_col);
      if (outer_idx < 0) return Status::Internal("probe column not in outer");
      const auto filters = query_->FiltersOn(probe.table);
      // Remaining crossing predicates beyond the probe itself.
      std::vector<Value> irow;
      for (const auto& orow : outer.rows) {
        const Value v = orow[static_cast<size_t>(outer_idx)];
        index->ProbeEqual(v, [&](RowIdx r) {
          if (!PassesFilters(*data, r, filters)) return;
          irow.clear();
          for (const auto& c : inner_schema_only.schema) {
            irow.push_back(data->at(r, c.column));
          }
          // Apply all other crossing join predicates.
          bool ok = true;
          for (const auto& j : query_->joins) {
            if (&j == &jp) continue;
            const int lo = outer.IndexOf(j.left);
            const int ri = inner_schema_only.IndexOf(j.right);
            const int ro = outer.IndexOf(j.right);
            const int li = inner_schema_only.IndexOf(j.left);
            if (lo >= 0 && ri >= 0 &&
                orow[static_cast<size_t>(lo)] !=
                    irow[static_cast<size_t>(ri)]) {
              ok = false;
            }
            if (ro >= 0 && li >= 0 &&
                orow[static_cast<size_t>(ro)] !=
                    irow[static_cast<size_t>(li)]) {
              ok = false;
            }
          }
          if (ok) out.rows.push_back(Concat(orow, irow));
        });
      }
      return out;
    }

    // Materialized inner.
    PINUM_ASSIGN_OR_RETURN(Relation inner, Eval(*path.inner));
    out.schema = Concat(outer.schema, inner.schema);
    const auto crossing = CrossingPreds(outer, inner);
    for (const auto& orow : outer.rows) {
      for (const auto& irow : inner.rows) {
        bool ok = true;
        for (const auto& [oc, ic] : crossing) {
          if (orow[static_cast<size_t>(oc)] != irow[static_cast<size_t>(ic)]) {
            ok = false;
            break;
          }
        }
        if (ok) out.rows.push_back(Concat(orow, irow));
      }
    }
    return out;
  }

  StatusOr<Relation> EvalHashJoin(const Path& path) {
    PINUM_ASSIGN_OR_RETURN(Relation outer, Eval(*path.outer));
    PINUM_ASSIGN_OR_RETURN(Relation inner, Eval(*path.inner));
    Relation out;
    out.schema = Concat(outer.schema, inner.schema);
    auto crossing = CrossingPreds(outer, inner);
    if (crossing.empty()) return Status::Internal("hash join without preds");
    const auto [hash_oc, hash_ic] = crossing[0];
    std::unordered_multimap<Value, size_t> table;
    table.reserve(inner.rows.size());
    for (size_t i = 0; i < inner.rows.size(); ++i) {
      table.emplace(inner.rows[i][static_cast<size_t>(hash_ic)], i);
    }
    for (const auto& orow : outer.rows) {
      auto [lo_it, hi_it] =
          table.equal_range(orow[static_cast<size_t>(hash_oc)]);
      for (auto it = lo_it; it != hi_it; ++it) {
        const auto& irow = inner.rows[it->second];
        bool ok = true;
        for (size_t k = 1; k < crossing.size(); ++k) {
          const auto& [oc, ic] = crossing[k];
          if (orow[static_cast<size_t>(oc)] != irow[static_cast<size_t>(ic)]) {
            ok = false;
            break;
          }
        }
        if (ok) out.rows.push_back(Concat(orow, irow));
      }
    }
    return out;
  }

  StatusOr<Relation> EvalMergeJoin(const Path& path) {
    PINUM_ASSIGN_OR_RETURN(Relation outer, Eval(*path.outer));
    PINUM_ASSIGN_OR_RETURN(Relation inner, Eval(*path.inner));
    Relation out;
    out.schema = Concat(outer.schema, inner.schema);
    const JoinPredicate& jp = path.join_preds.at(0);
    int oc = outer.IndexOf(jp.left), ic = inner.IndexOf(jp.right);
    if (oc < 0 || ic < 0) {
      oc = outer.IndexOf(jp.right);
      ic = inner.IndexOf(jp.left);
    }
    if (oc < 0 || ic < 0) return Status::Internal("merge pred not in inputs");
    // The planner guarantees sorted inputs (index order or explicit Sort);
    // verify rather than silently re-sort, so plan bugs surface in tests.
    auto sorted_by = [](const Relation& r, int col) {
      for (size_t i = 1; i < r.rows.size(); ++i) {
        if (r.rows[i - 1][static_cast<size_t>(col)] >
            r.rows[i][static_cast<size_t>(col)]) {
          return false;
        }
      }
      return true;
    };
    if (!sorted_by(outer, oc) || !sorted_by(inner, ic)) {
      return Status::Internal("merge join inputs not sorted");
    }
    const auto crossing = CrossingPreds(outer, inner);
    size_t i = 0, j = 0;
    while (i < outer.rows.size() && j < inner.rows.size()) {
      const Value vo = outer.rows[i][static_cast<size_t>(oc)];
      const Value vi = inner.rows[j][static_cast<size_t>(ic)];
      if (vo < vi) {
        ++i;
      } else if (vo > vi) {
        ++j;
      } else {
        // Join the equal-key blocks.
        size_t i_end = i, j_end = j;
        while (i_end < outer.rows.size() &&
               outer.rows[i_end][static_cast<size_t>(oc)] == vo) {
          ++i_end;
        }
        while (j_end < inner.rows.size() &&
               inner.rows[j_end][static_cast<size_t>(ic)] == vi) {
          ++j_end;
        }
        for (size_t a = i; a < i_end; ++a) {
          for (size_t b = j; b < j_end; ++b) {
            bool ok = true;
            for (const auto& [co, ci] : crossing) {
              if (outer.rows[a][static_cast<size_t>(co)] !=
                  inner.rows[b][static_cast<size_t>(ci)]) {
                ok = false;
                break;
              }
            }
            if (ok) out.rows.push_back(Concat(outer.rows[a], inner.rows[b]));
          }
        }
        i = i_end;
        j = j_end;
      }
    }
    return out;
  }

  StatusOr<Relation> EvalSort(const Path& path) {
    PINUM_ASSIGN_OR_RETURN(Relation child, Eval(*path.outer));
    std::vector<int> keys;
    for (const auto& c : path.order.columns) {
      const int idx = child.IndexOf(c);
      if (idx < 0) return Status::Internal("sort column missing from input");
      keys.push_back(idx);
    }
    std::stable_sort(child.rows.begin(), child.rows.end(),
                     [&](const auto& a, const auto& b) {
                       for (int k : keys) {
                         const size_t ki = static_cast<size_t>(k);
                         if (a[ki] != b[ki]) return a[ki] < b[ki];
                       }
                       return false;
                     });
    return child;
  }

  StatusOr<Relation> EvalAgg(const Path& path) {
    PINUM_ASSIGN_OR_RETURN(Relation child, Eval(*path.outer));
    // Output schema mirrors the select list: group columns keep their
    // values, other select columns carry the aggregate.
    Relation out;
    out.schema = query_->select;
    std::vector<int> group_idx;
    for (const auto& g : query_->group_by) {
      const int idx = child.IndexOf(g);
      if (idx < 0) return Status::Internal("group column missing");
      group_idx.push_back(idx);
    }
    std::vector<int> select_idx;
    for (const auto& s : query_->select) {
      const int idx = child.IndexOf(s);
      if (idx < 0) return Status::Internal("select column missing");
      select_idx.push_back(idx);
    }
    std::vector<bool> is_group(query_->select.size(), false);
    for (size_t i = 0; i < query_->select.size(); ++i) {
      is_group[i] = std::find(query_->group_by.begin(), query_->group_by.end(),
                              query_->select[i]) != query_->group_by.end();
    }
    std::map<std::vector<Value>, std::vector<Value>> groups;
    for (const auto& row : child.rows) {
      std::vector<Value> key;
      key.reserve(group_idx.size());
      for (int g : group_idx) key.push_back(row[static_cast<size_t>(g)]);
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        it->second.resize(query_->select.size(), 0);
        for (size_t i = 0; i < query_->select.size(); ++i) {
          if (is_group[i]) {
            it->second[i] = row[static_cast<size_t>(select_idx[i])];
          } else if (query_->aggregate == AggKind::kMin) {
            it->second[i] = std::numeric_limits<Value>::max();
          } else if (query_->aggregate == AggKind::kMax) {
            it->second[i] = std::numeric_limits<Value>::min();
          }
        }
      }
      for (size_t i = 0; i < query_->select.size(); ++i) {
        if (is_group[i]) continue;
        const Value v = row[static_cast<size_t>(select_idx[i])];
        switch (query_->aggregate) {
          case AggKind::kSum:
            it->second[i] += v;
            break;
          case AggKind::kCount:
            it->second[i] += 1;
            break;
          case AggKind::kMin:
            it->second[i] = std::min(it->second[i], v);
            break;
          case AggKind::kMax:
            it->second[i] = std::max(it->second[i], v);
            break;
          case AggKind::kNone:
            it->second[i] = v;
            break;
        }
      }
    }
    for (auto& [key, row] : groups) {
      (void)key;
      out.rows.push_back(std::move(row));
    }
    return out;
  }

  const Database* db_;
  const Query* query_;
};

}  // namespace

StatusOr<ExecResult> PlanExecutor::Execute(const Query& query,
                                           const Path& plan) const {
  Stopwatch timer;
  ExecContext ctx(db_, &query);
  PINUM_ASSIGN_OR_RETURN(Relation result, ctx.Eval(plan));

  // Final projection to the select list (aggregation nodes already
  // project; plain queries still carry full join schemas here).
  std::vector<int> proj;
  const bool already_projected = result.schema == query.select;
  if (!already_projected) {
    for (const auto& s : query.select) {
      const int idx = result.IndexOf(s);
      if (idx < 0) return Status::Internal("select column missing at root");
      proj.push_back(idx);
    }
  }

  ExecResult out;
  out.rows = static_cast<int64_t>(result.rows.size());

  // Order check against the query's ORDER BY.
  std::vector<int> order_idx;
  for (const auto& k : query.order_by) {
    const int idx = result.IndexOf(k.column);
    if (idx >= 0) order_idx.push_back(idx);
  }
  for (size_t r = 1; r < result.rows.size() && !order_idx.empty(); ++r) {
    for (int k : order_idx) {
      const size_t ki = static_cast<size_t>(k);
      if (result.rows[r - 1][ki] < result.rows[r][ki]) break;
      if (result.rows[r - 1][ki] > result.rows[r][ki]) {
        out.ordered_ok = false;
        break;
      }
    }
    if (!out.ordered_ok) break;
  }

  uint64_t checksum = 0;
  std::vector<Value> projected;
  for (const auto& row : result.rows) {
    if (already_projected) {
      checksum += RowHash(row);
    } else {
      projected.clear();
      for (int idx : proj) projected.push_back(row[static_cast<size_t>(idx)]);
      checksum += RowHash(projected);
    }
  }
  out.checksum = checksum;
  out.millis = timer.ElapsedMillis();
  return out;
}

}  // namespace pinum
