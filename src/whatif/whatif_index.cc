#include "whatif/whatif_index.h"

#include <algorithm>
#include <cmath>

#include "storage/btree_index.h"

namespace pinum {

IndexDef MakeWhatIfIndex(const std::string& name, const TableDef& table,
                         const std::vector<ColumnIdx>& key_columns,
                         double row_count) {
  IndexDef def;
  def.name = name;
  def.table = table.id;
  def.key_columns = key_columns;
  def.hypothetical = true;
  const int entry_width = def.EntryWidth(table);
  def.leaf_pages = BtreeLeafPages(
      static_cast<int64_t>(std::llround(std::max(1.0, row_count))),
      entry_width);
  // Section V-A: "We ignore the internal pages of the B-Tree index".
  def.total_pages = def.leaf_pages;
  def.height = 0;  // estimated from leaf pages at costing time
  return def;
}

int64_t IndexSizeBytes(const IndexDef& def) {
  return def.total_pages * PageLayout::kPageSize;
}

StatusOr<Catalog> CatalogWithIndexes(const Catalog& base,
                                     const std::vector<IndexDef>& hypo,
                                     std::vector<IndexId>* assigned_ids) {
  Catalog out = base;
  if (assigned_ids != nullptr) assigned_ids->clear();
  for (const IndexDef& def : hypo) {
    PINUM_ASSIGN_OR_RETURN(IndexId id, out.AddIndex(def));
    if (assigned_ids != nullptr) assigned_ids->push_back(id);
  }
  return out;
}

Catalog CatalogWithOnlyIndexes(const Catalog& base,
                               const std::vector<IndexId>& keep) {
  Catalog out = base;
  std::vector<IndexId> to_drop;
  for (const auto& [id, def] : out.indexes()) {
    (void)def;
    if (std::find(keep.begin(), keep.end(), id) == keep.end()) {
      to_drop.push_back(id);
    }
  }
  for (IndexId id : to_drop) (void)out.DropIndex(id);
  return out;
}

}  // namespace pinum
