// What-if (hypothetical) indexes: statistics-only index definitions the
// optimizer prices as if they existed (paper, Section V-A).
#ifndef PINUM_WHATIF_WHATIF_INDEX_H_
#define PINUM_WHATIF_WHATIF_INDEX_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "stats/table_stats.h"

namespace pinum {

/// Builds a hypothetical IndexDef whose size statistics follow the
/// paper's estimator: leaf pages derived from average attribute sizes,
/// row count and attribute alignment; *internal* B-tree pages are
/// deliberately ignored ("since they affect the relative page sizes only
/// on very small indexes"), so total_pages == leaf_pages. Height is left
/// 0 (estimated from leaf pages by the cost model).
IndexDef MakeWhatIfIndex(const std::string& name, const TableDef& table,
                         const std::vector<ColumnIdx>& key_columns,
                         double row_count);

/// Estimated on-disk footprint of an index definition (what the advisor
/// charges against its space budget).
int64_t IndexSizeBytes(const IndexDef& def);

/// Returns a copy of `base` with the given hypothetical indexes added.
/// This is the "what-if interface": the simulated indexes are visible to
/// optimizations against the returned catalog only.
StatusOr<Catalog> CatalogWithIndexes(const Catalog& base,
                                     const std::vector<IndexDef>& hypo,
                                     std::vector<IndexId>* assigned_ids);

/// Returns a copy of `base` keeping only the indexes in `keep` (plus all
/// tables/foreign keys). Used to evaluate index configurations.
Catalog CatalogWithOnlyIndexes(const Catalog& base,
                               const std::vector<IndexId>& keep);

}  // namespace pinum

#endif  // PINUM_WHATIF_WHATIF_INDEX_H_
