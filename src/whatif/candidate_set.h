// A candidate-index universe with stable ids: the shared vocabulary
// between the INUM/PINUM caches (which price configurations of candidate
// ids) and the advisor (which searches over subsets of them).
#ifndef PINUM_WHATIF_CANDIDATE_SET_H_
#define PINUM_WHATIF_CANDIDATE_SET_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "whatif/whatif_index.h"

namespace pinum {

/// The base catalog extended with every candidate what-if index, assigned
/// stable IndexIds that configurations refer to.
struct CandidateSet {
  Catalog universe;
  std::vector<IndexId> candidate_ids;

  /// Catalog containing only the base objects plus the subset `config`.
  Catalog Subset(const std::vector<IndexId>& config) const {
    std::vector<IndexId> keep = base_index_ids;
    keep.insert(keep.end(), config.begin(), config.end());
    return CatalogWithOnlyIndexes(universe, keep);
  }

  /// Index ids that existed in the base catalog (real indexes).
  std::vector<IndexId> base_index_ids;

  /// One past the largest IndexId in the universe: the length of dense
  /// per-index vectors (e.g. SealedCache's flat access-cost rows) that
  /// use the universe's stable ids as direct subscripts.
  IndexId NumIndexIds() const {
    return universe.indexes().empty() ? 0
                                      : universe.indexes().rbegin()->first + 1;
  }
};

/// Builds the universe from `base` plus hypothetical `candidates`.
inline StatusOr<CandidateSet> MakeCandidateSet(
    const Catalog& base, const std::vector<IndexDef>& candidates) {
  CandidateSet set;
  for (const auto& [id, def] : base.indexes()) {
    (void)def;
    set.base_index_ids.push_back(id);
  }
  PINUM_ASSIGN_OR_RETURN(
      set.universe, CatalogWithIndexes(base, candidates, &set.candidate_ids));
  return set;
}

}  // namespace pinum

#endif  // PINUM_WHATIF_CANDIDATE_SET_H_
