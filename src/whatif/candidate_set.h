// A candidate-index universe with stable ids: the shared vocabulary
// between the INUM/PINUM caches (which price configurations of candidate
// ids) and the advisor (which searches over subsets of them).
#ifndef PINUM_WHATIF_CANDIDATE_SET_H_
#define PINUM_WHATIF_CANDIDATE_SET_H_

#include <algorithm>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "whatif/whatif_index.h"

namespace pinum {

/// The base catalog extended with every candidate what-if index, assigned
/// stable IndexIds that configurations refer to.
struct CandidateSet {
  Catalog universe;
  std::vector<IndexId> candidate_ids;

  /// Catalog containing only the base objects plus the subset `config`.
  Catalog Subset(const std::vector<IndexId>& config) const {
    std::vector<IndexId> keep = base_index_ids;
    keep.insert(keep.end(), config.begin(), config.end());
    return CatalogWithOnlyIndexes(universe, keep);
  }

  /// Index ids that existed in the base catalog (real indexes).
  std::vector<IndexId> base_index_ids;

  /// One past the largest IndexId in the universe: the length of dense
  /// per-index vectors (e.g. SealedCache's flat access-cost rows) that
  /// use the universe's stable ids as direct subscripts.
  IndexId NumIndexIds() const {
    return universe.indexes().empty() ? 0
                                      : universe.indexes().rbegin()->first + 1;
  }

  /// Appends hypothetical `more` to the universe, assigning each a fresh
  /// id strictly above every existing one. Append-only growth is the
  /// contract that makes incremental reseal possible: every existing
  /// candidate id, base id, and the NumIndexIds() prefix stay valid, so
  /// sealed vectors subscripted by the old universe keep meaning the
  /// same indexes and price the new ids as absent (their base cost).
  /// All-or-nothing: on error (duplicate name, unknown table, bad key
  /// columns) nothing is appended. Returns the assigned ids.
  StatusOr<std::vector<IndexId>> Append(const std::vector<IndexDef>& more) {
    // Validate against a scratch copy first so a failure mid-list cannot
    // leave the universe half-grown.
    Catalog probe = universe;
    for (const IndexDef& def : more) {
      PINUM_RETURN_IF_ERROR(probe.AddIndex(def).status());
    }
    std::vector<IndexId> assigned;
    assigned.reserve(more.size());
    for (const IndexDef& def : more) {
      PINUM_ASSIGN_OR_RETURN(IndexId id, universe.AddIndex(def));
      candidate_ids.push_back(id);
      assigned.push_back(id);
    }
    return assigned;
  }

  /// True when `prefix` names the same universe as a (possibly shorter)
  /// earlier generation of this set: its candidate ids are a prefix of
  /// ours. The snapshot layer uses this shape to accept snapshots sealed
  /// before an append (per-query stamps mark what actually went stale)
  /// while rejecting any other mutation.
  bool HasCandidatePrefix(const std::vector<IndexId>& prefix) const {
    return prefix.size() <= candidate_ids.size() &&
           std::equal(prefix.begin(), prefix.end(), candidate_ids.begin());
  }
};

/// Builds the universe from `base` plus hypothetical `candidates`.
inline StatusOr<CandidateSet> MakeCandidateSet(
    const Catalog& base, const std::vector<IndexDef>& candidates) {
  CandidateSet set;
  for (const auto& [id, def] : base.indexes()) {
    (void)def;
    set.base_index_ids.push_back(id);
  }
  PINUM_ASSIGN_OR_RETURN(
      set.universe, CatalogWithIndexes(base, candidates, &set.candidate_ids));
  return set;
}

}  // namespace pinum

#endif  // PINUM_WHATIF_CANDIDATE_SET_H_
