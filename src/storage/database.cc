#include "storage/database.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace pinum {

Status Database::CreateTableStorage(TableId table) {
  const TableDef* def = catalog_.FindTable(table);
  if (def == nullptr) {
    return Status::NotFound("no table with id " + std::to_string(table));
  }
  if (data_.count(table) > 0) {
    return Status::AlreadyExists("storage for table already exists");
  }
  data_[table] = std::make_unique<TableData>(*def);
  return Status::OK();
}

TableData* Database::MutableData(TableId table) {
  auto it = data_.find(table);
  return it == data_.end() ? nullptr : it->second.get();
}

const TableData* Database::FindData(TableId table) const {
  auto it = data_.find(table);
  return it == data_.end() ? nullptr : it->second.get();
}

StatusOr<IndexId> Database::BuildIndex(
    const std::string& name, TableId table,
    const std::vector<ColumnIdx>& key_columns) {
  const TableDef* def = catalog_.FindTable(table);
  if (def == nullptr) {
    return Status::NotFound("no table with id " + std::to_string(table));
  }
  const TableData* data = FindData(table);
  if (data == nullptr) {
    return Status::InvalidArgument("table '" + def->name +
                                   "' has no materialized data");
  }
  IndexDef idx;
  idx.name = name;
  idx.table = table;
  idx.key_columns = key_columns;
  idx.hypothetical = false;
  PINUM_ASSIGN_OR_RETURN(IndexId id, catalog_.AddIndex(idx));
  auto built =
      std::make_unique<BTreeIndex>(*catalog_.FindIndex(id), *def, *data);
  // Propagate true page counts into the catalog entry.
  IndexDef* entry = catalog_.MutableIndex(id);
  entry->leaf_pages = built->leaf_pages();
  entry->total_pages = built->total_pages();
  entry->height = built->height();
  built_indexes_[id] = std::move(built);
  return id;
}

Status Database::DropIndex(IndexId id) {
  built_indexes_.erase(id);
  return catalog_.DropIndex(id);
}

const BTreeIndex* Database::FindBuiltIndex(IndexId id) const {
  auto it = built_indexes_.find(id);
  return it == built_indexes_.end() ? nullptr : it->second.get();
}

namespace {

/// Pearson correlation between values and their heap positions — the
/// statistic PostgreSQL calls pg_stats.correlation.
double PhysicalCorrelation(const std::vector<Value>& column) {
  const size_t n = column.size();
  if (n < 2) return 1.0;
  double mean_v = 0;
  for (Value v : column) mean_v += static_cast<double>(v);
  mean_v /= static_cast<double>(n);
  const double mean_pos = (static_cast<double>(n) - 1) / 2.0;
  double cov = 0, var_v = 0, var_pos = 0;
  for (size_t i = 0; i < n; ++i) {
    const double dv = static_cast<double>(column[i]) - mean_v;
    const double dp = static_cast<double>(i) - mean_pos;
    cov += dv * dp;
    var_v += dv * dv;
    var_pos += dp * dp;
  }
  if (var_v == 0 || var_pos == 0) return 1.0;
  return cov / std::sqrt(var_v * var_pos);
}

}  // namespace

Status Database::AnalyzeTable(TableId table, int histogram_buckets) {
  const TableDef* def = catalog_.FindTable(table);
  const TableData* data = FindData(table);
  if (def == nullptr || data == nullptr) {
    return Status::NotFound("cannot analyze table " + std::to_string(table));
  }
  TableStats stats;
  stats.row_count = static_cast<double>(data->NumRows());
  stats.RecomputePages(*def);
  stats.columns.resize(def->columns.size());
  for (size_t c = 0; c < def->columns.size(); ++c) {
    const auto& col = data->column(static_cast<ColumnIdx>(c));
    ColumnStats& cs = stats.columns[c];
    if (col.empty()) {
      cs = ColumnStats{};
      continue;
    }
    std::set<Value> distinct(col.begin(), col.end());
    cs.n_distinct = static_cast<double>(distinct.size());
    cs.min = *distinct.begin();
    cs.max = *distinct.rbegin();
    cs.correlation = PhysicalCorrelation(col);
    cs.histogram = Histogram::FromData(col, histogram_buckets);
  }
  stats_.Put(table, std::move(stats));
  return Status::OK();
}

Status Database::AnalyzeAll(int histogram_buckets) {
  for (const auto& [id, data] : data_) {
    (void)data;
    PINUM_RETURN_IF_ERROR(AnalyzeTable(id, histogram_buckets));
  }
  return Status::OK();
}

}  // namespace pinum
