// In-memory columnar row store backing the execution engine.
#ifndef PINUM_STORAGE_TABLE_DATA_H_
#define PINUM_STORAGE_TABLE_DATA_H_

#include <cstdint>
#include <vector>

#include "catalog/schema.h"
#include "catalog/types.h"

namespace pinum {

/// Row position within a table.
using RowIdx = int64_t;

/// Column-major storage for one table.
///
/// The engine is laptop-scale and in-memory; page counts used by the cost
/// model are *derived* from row counts and tuple widths exactly as
/// PostgreSQL derives them from the on-disk heap, so cost behaviour matches
/// a disk-resident system of the same logical size.
class TableData {
 public:
  explicit TableData(const TableDef& def)
      : table_id_(def.id), columns_(def.columns.size()) {}

  /// Appends one row; `values` must have one entry per column.
  void AppendRow(const std::vector<Value>& values) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      columns_[i].push_back(values[i]);
    }
  }

  /// Reserves capacity in every column vector.
  void Reserve(size_t rows) {
    for (auto& c : columns_) c.reserve(rows);
  }

  TableId table_id() const { return table_id_; }
  int64_t NumRows() const {
    return columns_.empty() ? 0 : static_cast<int64_t>(columns_[0].size());
  }
  size_t NumColumns() const { return columns_.size(); }

  const std::vector<Value>& column(ColumnIdx i) const {
    return columns_[static_cast<size_t>(i)];
  }
  Value at(RowIdx row, ColumnIdx col) const {
    return columns_[static_cast<size_t>(col)][static_cast<size_t>(row)];
  }

 private:
  TableId table_id_;
  std::vector<std::vector<Value>> columns_;
};

}  // namespace pinum

#endif  // PINUM_STORAGE_TABLE_DATA_H_
