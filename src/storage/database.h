// Database: catalog + statistics + (optionally) materialized data and
// real indexes. The optimizer needs only catalog+stats; the executor and
// the Section VI-B experiment need the materialized parts.
#ifndef PINUM_STORAGE_DATABASE_H_
#define PINUM_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "stats/table_stats.h"
#include "storage/btree_index.h"
#include "storage/table_data.h"

namespace pinum {

/// Owning facade over catalog, statistics, row data and built indexes.
class Database {
 public:
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  StatsCatalog& stats() { return stats_; }
  const StatsCatalog& stats() const { return stats_; }

  /// Creates (empty) storage for a registered table.
  Status CreateTableStorage(TableId table);

  /// Returns the data for a table; nullptr when not materialized.
  TableData* MutableData(TableId table);
  const TableData* FindData(TableId table) const;

  /// Builds a real index over materialized data, updating the catalog
  /// entry's size statistics with the true page counts.
  StatusOr<IndexId> BuildIndex(const std::string& name, TableId table,
                               const std::vector<ColumnIdx>& key_columns);

  /// Drops a real index (catalog entry and materialized structure).
  Status DropIndex(IndexId id);

  /// Returns the built index structure; nullptr if not built.
  const BTreeIndex* FindBuiltIndex(IndexId id) const;

  /// Computes statistics (row counts, page counts, per-column stats with
  /// equi-depth histograms and physical correlation) from materialized
  /// data, like ANALYZE.
  Status AnalyzeTable(TableId table, int histogram_buckets = 100);

  /// ANALYZE for all materialized tables.
  Status AnalyzeAll(int histogram_buckets = 100);

 private:
  Catalog catalog_;
  StatsCatalog stats_;
  std::map<TableId, std::unique_ptr<TableData>> data_;
  std::map<IndexId, std::unique_ptr<BTreeIndex>> built_indexes_;
};

}  // namespace pinum

#endif  // PINUM_STORAGE_DATABASE_H_
