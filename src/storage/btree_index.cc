#include "storage/btree_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pinum {

int64_t BtreeLeafPages(int64_t entries, int entry_width) {
  if (entries <= 0) return 1;
  const double usable = PageLayout::UsableBytes() * PageLayout::kBtreeFillFactor;
  const int64_t per_page =
      std::max<int64_t>(1, static_cast<int64_t>(usable / entry_width));
  return (entries + per_page - 1) / per_page;
}

BtreeSize BtreeFullSize(int64_t entries, int entry_width) {
  BtreeSize size;
  size.leaf_pages = BtreeLeafPages(entries, entry_width);
  size.total_pages = size.leaf_pages;
  size.height = 0;
  // Each internal level stores one downlink entry per child page. A
  // downlink is a (separator key, child pointer) pair: key width plus a
  // 6-byte child pointer, MAXALIGNed with index-tuple overhead.
  const int downlink_width =
      PageLayout::MaxAlign(entry_width - PageLayout::kIndexTupleOverhead + 6) +
      PageLayout::kIndexTupleOverhead;
  const double usable = PageLayout::UsableBytes() * PageLayout::kBtreeFillFactor;
  const int64_t fanout =
      std::max<int64_t>(2, static_cast<int64_t>(usable / downlink_width));
  int64_t level_pages = size.leaf_pages;
  while (level_pages > 1) {
    level_pages = (level_pages + fanout - 1) / fanout;
    size.total_pages += level_pages;
    size.height += 1;
  }
  return size;
}

BTreeIndex::BTreeIndex(const IndexDef& def, const TableDef& table_def,
                       const TableData& data)
    : def_(def) {
  const int64_t n = data.NumRows();
  std::vector<RowIdx> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), RowIdx{0});
  const auto& keys = def_.key_columns;
  std::sort(order.begin(), order.end(), [&](RowIdx a, RowIdx b) {
    for (ColumnIdx k : keys) {
      const Value va = data.at(a, k);
      const Value vb = data.at(b, k);
      if (va != vb) return va < vb;
    }
    return a < b;  // stable tiebreak on heap position
  });
  rows_ = std::move(order);
  leading_keys_.resize(rows_.size());
  const ColumnIdx lead = def_.leading_column();
  for (size_t i = 0; i < rows_.size(); ++i) {
    leading_keys_[i] = data.at(rows_[i], lead);
  }

  const BtreeSize size = BtreeFullSize(n, def_.EntryWidth(table_def));
  leaf_pages_ = size.leaf_pages;
  total_pages_ = size.total_pages;
  height_ = size.height;
  def_.leaf_pages = leaf_pages_;
  def_.total_pages = total_pages_;
  def_.height = height_;
}

std::vector<RowIdx> BTreeIndex::RangeScan(Value lo, Value hi) const {
  std::vector<RowIdx> out;
  auto first = std::lower_bound(leading_keys_.begin(), leading_keys_.end(), lo);
  auto last = std::upper_bound(first, leading_keys_.end(), hi);
  const size_t begin = static_cast<size_t>(first - leading_keys_.begin());
  const size_t end = static_cast<size_t>(last - leading_keys_.begin());
  out.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) out.push_back(rows_[i]);
  return out;
}

}  // namespace pinum
