// Real (materialized) B-tree index with faithful page accounting.
//
// The paper's what-if estimator computes only the *leaf* pages of an index
// and "ignores the internal pages of the B-Tree index" (Section V-A); this
// class computes both, so the Section VI-B experiment can compare
// hypothetical sizes against real ones.
#ifndef PINUM_STORAGE_BTREE_INDEX_H_
#define PINUM_STORAGE_BTREE_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "catalog/schema.h"
#include "storage/table_data.h"

namespace pinum {

/// A built B-tree index: sorted (key, row) entries plus page statistics.
class BTreeIndex {
 public:
  /// Builds the index over the given data. `def.key_columns` selects and
  /// orders the key.
  BTreeIndex(const IndexDef& def, const TableDef& table_def,
             const TableData& data);

  const IndexDef& def() const { return def_; }
  int64_t leaf_pages() const { return leaf_pages_; }
  int64_t total_pages() const { return total_pages_; }
  int height() const { return height_; }
  int64_t NumEntries() const { return static_cast<int64_t>(rows_.size()); }

  /// Row ids whose leading key column lies in [lo, hi] (inclusive),
  /// in key order.
  std::vector<RowIdx> RangeScan(Value lo, Value hi) const;

  /// Invokes `fn(row)` for each entry whose leading key equals `key`,
  /// allocation-free (the executor's nested-loop probe path).
  template <typename Fn>
  void ProbeEqual(Value key, Fn fn) const {
    auto first =
        std::lower_bound(leading_keys_.begin(), leading_keys_.end(), key);
    for (auto it = first; it != leading_keys_.end() && *it == key; ++it) {
      fn(rows_[static_cast<size_t>(it - leading_keys_.begin())]);
    }
  }

  /// All row ids in key order (full ordered scan).
  const std::vector<RowIdx>& OrderedRows() const { return rows_; }

  /// Leading-column key for the i-th entry in key order.
  Value KeyAt(size_t i) const { return leading_keys_[i]; }

 private:
  IndexDef def_;
  /// Leading key column value per entry, sorted (ties broken by the
  /// remaining key columns during the build).
  std::vector<Value> leading_keys_;
  /// Heap row per entry, aligned with leading_keys_.
  std::vector<RowIdx> rows_;
  int64_t leaf_pages_ = 0;
  int64_t total_pages_ = 0;
  int height_ = 0;
};

/// Computes leaf page count for `entries` index entries of `entry_width`
/// bytes — shared by the real build and the what-if estimator so the two
/// differ only by internal pages, as in the paper.
int64_t BtreeLeafPages(int64_t entries, int entry_width);

/// Computes total pages (leaves + internal levels) and height.
struct BtreeSize {
  int64_t leaf_pages;
  int64_t total_pages;
  int height;
};
BtreeSize BtreeFullSize(int64_t entries, int entry_width);

}  // namespace pinum

#endif  // PINUM_STORAGE_BTREE_INDEX_H_
