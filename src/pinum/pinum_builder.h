// PINUM cache construction (the paper's contribution, Sections V-C/V-D):
// the same InumCache the classic procedure builds, filled from one hooked
// optimizer call (plus one for access costs and up to two for NLJ plans)
// instead of one call per interesting-order combination.
#ifndef PINUM_PINUM_PINUM_BUILDER_H_
#define PINUM_PINUM_PINUM_BUILDER_H_

#include <cstdint>

#include "inum/access_cost_store.h"
#include "inum/cache.h"
#include "optimizer/knobs.h"
#include "query/query.h"
#include "stats/table_stats.h"
#include "whatif/candidate_set.h"

namespace pinum {

/// Knobs for the PINUM build.
struct PinumBuildOptions {
  /// Number of extra NLJ-enabled optimizer calls (paper: "typically only
  /// two calls to the optimizer at the extreme access costs are
  /// sufficient"; 0 disables NLJ plans entirely — the accuracy/size
  /// trade-off of Section V-D, see ablation A2).
  ///   call 0: lowest access costs (every candidate visible);
  ///   call 1: highest access costs (no candidates);
  ///   >= 3:   adds a probe sweep — one winner-only call per join
  ///           predicate with only the candidates led by that predicate's
  ///           columns visible, so index-nested-loop shapes that lose at
  ///           both global extremes (cheap probes but no cheap range
  ///           scans) win and get cached. This sweep is this
  ///           implementation's instance of the paper's "higher accuracy
  ///           ... at the cost of a bigger plan cache" refinement; calls
  ///           stay linear in the join count, never in the IOC count.
  int nlj_extreme_calls = 3;
  /// When true, the NLJ extreme calls also run with the export hook,
  /// caching every per-IOC NLJ plan instead of only the winner. Higher
  /// accuracy, "but at the cost of a bigger plan cache and slower cost
  /// lookup" (Section V-D) — and a slower build. Ablation A2 measures the
  /// trade-off.
  bool nlj_export_all = false;
  /// When set, the access-cost call is skipped entirely for queries whose
  /// every table footprint another workload query already priced (same
  /// candidate universe). The store must belong to the same
  /// (catalog, candidates, stats).
  SharedAccessCostStore* shared_access = nullptr;
  PlannerKnobs base_knobs;
};

/// Build-time accounting, the quantities plotted in Figure 4/5.
struct PinumBuildStats {
  int64_t plan_cache_calls = 0;
  int64_t access_cost_calls = 0;
  /// Optimizer calls answered by PinumBuildOptions::shared_access.
  int64_t access_calls_saved = 0;
  double plan_cache_ms = 0;
  double access_cost_ms = 0;
  uint64_t iocs_total = 0;
  size_t plans_cached = 0;
  /// Plans exported by the hooked call(s) before dedup.
  int64_t plans_exported = 0;
};

/// Fills an InumCache for `query` via the PINUM hooks:
///  1. one call with nested loops removed, every interesting order
///     covered by what-if indexes, and the export_all_plans hook — the
///     join planner retains one optimal plan per useful IOC (dominance
///     pruned) and all of them are harvested;
///  2. one call with the keep_all_access_paths hook and all candidate
///     indexes visible — the access-path collector reports every index's
///     access costs at once;
///  3. up to two NLJ-enabled calls at the extreme access costs (all
///     candidates visible / none visible).
StatusOr<InumCache> BuildInumCachePinum(const Query& query,
                                        const Catalog& base_catalog,
                                        const CandidateSet& candidates,
                                        const StatsCatalog& stats,
                                        const PinumBuildOptions& options,
                                        PinumBuildStats* build_stats);

}  // namespace pinum

#endif  // PINUM_PINUM_PINUM_BUILDER_H_
