#include "pinum/pinum_builder.h"

#include <string>

#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "inum/inum_builder.h"
#include "optimizer/interesting_orders.h"
#include "optimizer/optimizer.h"
#include "whatif/whatif_index.h"

namespace pinum {

namespace {

/// Builds the all-interesting-orders IOC: every table's slot filled is
/// not expressible as a single Ioc (one order per table), so instead we
/// synthesize one covering index per (table, interesting order) pair.
StatusOr<Catalog> CatalogCoveringAllOrders(const Catalog& base,
                                           const Query& query,
                                           const StatsCatalog& stats) {
  const auto per_table = PerTableInterestingOrders(query);
  std::vector<IndexDef> covering;
  for (size_t pos = 0; pos < per_table.size(); ++pos) {
    for (const ColumnRef& col : per_table[pos]) {
      // Skip when a visible index already covers this order.
      bool covered = false;
      for (const IndexDef* idx : base.IndexesOnTable(col.table)) {
        if (idx->leading_column() == col.column) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
      const TableDef* table = base.FindTable(col.table);
      const TableStats* tstats = stats.Find(col.table);
      if (table == nullptr || tstats == nullptr) {
        return Status::NotFound("missing table/stats while covering orders");
      }
      covering.push_back(MakeWhatIfIndex(
          "__covall_" + query.name + "_" + std::to_string(pos) + "_" +
              std::to_string(col.column),
          *table, {col.column}, tstats->row_count));
    }
  }
  return CatalogWithIndexes(base, covering, nullptr);
}

}  // namespace

StatusOr<InumCache> BuildInumCachePinum(const Query& query,
                                        const Catalog& base_catalog,
                                        const CandidateSet& candidates,
                                        const StatsCatalog& stats,
                                        const PinumBuildOptions& options,
                                        PinumBuildStats* build_stats) {
  InumCache cache;
  PinumBuildStats local;
  local.iocs_total = CountIocs(PerTableInterestingOrders(query));

  // ---- Plan cache: one hooked call with NLJ removed (Section V-D). ----
  Stopwatch plan_timer;
  {
    PINUM_ASSIGN_OR_RETURN(
        Catalog covering,
        CatalogCoveringAllOrders(base_catalog, query, stats));
    Optimizer opt(&covering, &stats);
    PlannerKnobs knobs = options.base_knobs;
    knobs.enable_nestloop = false;
    knobs.hooks.export_all_plans = true;
    knobs.hooks.keep_all_access_paths = false;
    // Fault injection mirrors the classic builder: every optimizer
    // invocation is one hit, so the k-th call of a reseal can be failed
    // or stalled regardless of which builder mode is active.
    PINUM_RETURN_IF_ERROR(FailPoint::Check("inum.plan_optimizer_call"));
    PINUM_ASSIGN_OR_RETURN(OptimizeResult result, opt.Optimize(query, knobs));
    for (const PathPtr& plan : result.exported) {
      cache.AddPlan(*plan, covering, !query.order_by.empty());
    }
    local.plans_exported += static_cast<int64_t>(result.exported.size());
    ++local.plan_cache_calls;
  }

  // ---- NLJ plans: extreme-access-cost calls (Section V-D). The calls
  // cache their *winning* plan; the nlj_export_all ablation exports every
  // per-IOC NLJ plan instead. ----
  if (options.base_knobs.enable_nestloop) {
    for (int call = 0; call < options.nlj_extreme_calls && call < 2; ++call) {
      // call 0: lowest access costs (all candidates visible). call 1:
      // highest access costs (no candidate indexes). Unlike the export
      // call, no covering-order indexes are synthesized here: these calls
      // cache winner plans, and artificial ordered access would bias the
      // winners toward leaf requirements real configurations cannot meet.
      const Catalog& covering =
          call == 0 ? candidates.universe : base_catalog;
      Optimizer opt(&covering, &stats);
      PlannerKnobs knobs = options.base_knobs;
      knobs.enable_nestloop = true;
      knobs.hooks.export_all_plans = options.nlj_export_all;
      knobs.hooks.keep_all_access_paths = false;
      PINUM_RETURN_IF_ERROR(FailPoint::Check("inum.plan_optimizer_call"));
      PINUM_ASSIGN_OR_RETURN(OptimizeResult result,
                             opt.Optimize(query, knobs));
      for (const PathPtr& plan : result.exported) {
        cache.AddPlan(*plan, covering, !query.order_by.empty());
      }
      local.plans_exported += static_cast<int64_t>(result.exported.size());
      ++local.plan_cache_calls;
    }

    // Probe sweep (nlj_extreme_calls >= 3): one winner-only call per join
    // predicate, with only the candidates led by that predicate's columns
    // visible. Index-nested-loop shapes that lose at both global extremes
    // — cheap probes on one join column but no cheap range scans — win
    // here and get cached. Calls stay linear in the number of joins,
    // never in the IOC count.
    if (options.nlj_extreme_calls >= 3) {
      for (const JoinPredicate& jp : query.joins) {
        std::vector<IndexId> visible;
        for (IndexId id : candidates.candidate_ids) {
          const IndexDef* def = candidates.universe.FindIndex(id);
          if (def == nullptr || query.PosOfTable(def->table) < 0) continue;
          const ColumnRef lead{def->table, def->leading_column()};
          if (lead == jp.left || lead == jp.right) visible.push_back(id);
        }
        if (visible.empty()) continue;
        const Catalog covering = candidates.Subset(visible);
        Optimizer opt(&covering, &stats);
        PlannerKnobs knobs = options.base_knobs;
        knobs.enable_nestloop = true;
        knobs.hooks = PlannerHooks{};
        PINUM_RETURN_IF_ERROR(FailPoint::Check("inum.plan_optimizer_call"));
        PINUM_ASSIGN_OR_RETURN(OptimizeResult result,
                               opt.Optimize(query, knobs));
        cache.AddPlan(*result.best, covering, !query.order_by.empty());
        ++local.plans_exported;
        ++local.plan_cache_calls;
      }
    }
  }
  local.plan_cache_ms = plan_timer.ElapsedMillis();

  // ---- Access costs: ONE call with every candidate visible and the
  // keep_all_access_paths hook (Section V-C) — or ZERO calls when every
  // table footprint was already priced by another workload query. ----
  Stopwatch access_timer;
  {
    SharedAccessCostStore* store = options.shared_access;
    std::vector<TableAccessInfo> shared(query.tables.size());
    bool all_hit = store != nullptr;
    for (size_t pos = 0; all_hit && pos < query.tables.size(); ++pos) {
      all_hit = store->LookupTable(
          TableContextSignature(query, query.tables[pos]), &shared[pos]);
    }
    if (all_hit && !query.tables.empty()) {
      for (size_t pos = 0; pos < query.tables.size(); ++pos) {
        shared[pos].pos = static_cast<int>(pos);
        cache.mutable_access()->Absorb(shared[pos]);
      }
      ++local.access_calls_saved;
    } else {
      Optimizer opt(&candidates.universe, &stats);
      PlannerKnobs knobs = options.base_knobs;
      knobs.hooks.keep_all_access_paths = true;
      knobs.hooks.export_all_plans = false;
      PINUM_RETURN_IF_ERROR(FailPoint::Check("inum.access_optimizer_call"));
      PINUM_ASSIGN_OR_RETURN(OptimizeResult result,
                             opt.Optimize(query, knobs));
      for (const auto& info : result.access_info) {
        cache.mutable_access()->Absorb(info);
        if (store != nullptr) {
          store->StoreTable(TableContextSignature(query, info.table), info);
        }
      }
      ++local.access_cost_calls;
    }
  }
  local.access_cost_ms = access_timer.ElapsedMillis();

  local.plans_cached = cache.NumPlans();
  if (build_stats != nullptr) *build_stats = local;
  return cache;
}

}  // namespace pinum
