#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace pinum {

Histogram Histogram::FromData(std::vector<Value> data, int num_buckets) {
  Histogram h;
  if (data.empty() || num_buckets < 1) return h;
  std::sort(data.begin(), data.end());
  const size_t n = data.size();
  const int buckets =
      std::min<int>(num_buckets, static_cast<int>(n));
  h.bounds_.reserve(static_cast<size_t>(buckets) + 1);
  for (int i = 0; i <= buckets; ++i) {
    // Index of the i-th equi-depth boundary.
    size_t idx = static_cast<size_t>(
        std::llround(static_cast<double>(i) * static_cast<double>(n - 1) /
                     buckets));
    h.bounds_.push_back(data[idx]);
  }
  return h;
}

Histogram Histogram::Uniform(Value min, Value max, int num_buckets) {
  Histogram h;
  if (max < min || num_buckets < 1) return h;
  h.bounds_.reserve(static_cast<size_t>(num_buckets) + 1);
  const double span = static_cast<double>(max) - static_cast<double>(min);
  for (int i = 0; i <= num_buckets; ++i) {
    h.bounds_.push_back(
        min + static_cast<Value>(std::llround(span * i / num_buckets)));
  }
  return h;
}

double Histogram::FractionBelow(Value v, bool inclusive) const {
  if (empty()) return 0.5;  // know-nothing default
  if (v < bounds_.front() || (!inclusive && v == bounds_.front())) return 0.0;
  if (v > bounds_.back() || (inclusive && v == bounds_.back())) return 1.0;
  // Find the bucket containing v and interpolate linearly within it,
  // exactly as PostgreSQL's ineq_histogram_selectivity does.
  const int nb = num_buckets();
  for (int i = 0; i < nb; ++i) {
    const Value lo = bounds_[static_cast<size_t>(i)];
    const Value hi = bounds_[static_cast<size_t>(i) + 1];
    if (v >= lo && (v < hi || (i == nb - 1 && v <= hi))) {
      double frac_in_bucket = 0.5;
      if (hi > lo) {
        frac_in_bucket = (static_cast<double>(v) - static_cast<double>(lo)) /
                         (static_cast<double>(hi) - static_cast<double>(lo));
      }
      return (i + frac_in_bucket) / nb;
    }
  }
  return 1.0;
}

double Histogram::FractionBetween(Value lo, Value hi) const {
  if (hi < lo) return 0.0;
  // P(lo <= x <= hi) = P(x <= hi) - P(x < lo).
  const double below_hi = FractionBelow(hi, /*inclusive=*/true);
  const double below_lo = FractionBelow(lo, /*inclusive=*/false);
  return std::max(0.0, below_hi - below_lo);
}

}  // namespace pinum
