// Selectivity estimation: the System-R / PostgreSQL formulas the
// optimizer uses to size intermediate results.
#ifndef PINUM_STATS_SELECTIVITY_H_
#define PINUM_STATS_SELECTIVITY_H_

#include <algorithm>

#include "stats/table_stats.h"

namespace pinum {

/// Comparison operators supported in WHERE clauses.
enum class CompareOp { kEq, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// Selectivity of `column <op> constant`.
///
/// Equality uses 1/n_distinct (uniformity); inequalities use the
/// histogram, falling back to range interpolation over [min, max].
double RestrictionSelectivity(const ColumnStats& stats, CompareOp op,
                              Value constant);

/// Selectivity of `left = right` equijoin over two columns:
/// 1 / max(nd_left, nd_right)  (PostgreSQL's eqjoinsel without MCVs).
double EquiJoinSelectivity(const ColumnStats& left, const ColumnStats& right);

/// Number of distinct values among `rows` rows drawn from a domain with
/// `n_distinct` values (used to size group-by outputs): Yao's formula
/// approximated as min(n_distinct, rows).
double DistinctAfterRestriction(double n_distinct, double selectivity,
                                double original_rows);

}  // namespace pinum

#endif  // PINUM_STATS_SELECTIVITY_H_
