#include "stats/selectivity.h"

#include <cmath>

namespace pinum {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

double RestrictionSelectivity(const ColumnStats& stats, CompareOp op,
                              Value constant) {
  const double kDefaultSel = 1.0 / 3.0;  // pg's DEFAULT_INEQ_SEL
  switch (op) {
    case CompareOp::kEq: {
      if (stats.n_distinct <= 0) return 0.005;  // pg DEFAULT_EQ_SEL ballpark
      if (constant < stats.min || constant > stats.max) return 0.0;
      return 1.0 / stats.n_distinct;
    }
    case CompareOp::kLt:
    case CompareOp::kLe: {
      if (!stats.histogram.empty()) {
        return stats.histogram.FractionBelow(constant,
                                             op == CompareOp::kLe);
      }
      if (stats.max > stats.min) {
        double f = (static_cast<double>(constant) - stats.min) /
                   (static_cast<double>(stats.max) - stats.min);
        return std::clamp(f, 0.0, 1.0);
      }
      return kDefaultSel;
    }
    case CompareOp::kGt:
    case CompareOp::kGe: {
      const CompareOp inv =
          (op == CompareOp::kGt) ? CompareOp::kLe : CompareOp::kLt;
      return 1.0 - RestrictionSelectivity(stats, inv, constant);
    }
  }
  return kDefaultSel;
}

double EquiJoinSelectivity(const ColumnStats& left, const ColumnStats& right) {
  const double nd = std::max({left.n_distinct, right.n_distinct, 1.0});
  return 1.0 / nd;
}

double DistinctAfterRestriction(double n_distinct, double selectivity,
                                double original_rows) {
  const double surviving = selectivity * original_rows;
  // With uniform data, restricting rows cannot reveal more distinct values
  // than rows; PostgreSQL scales n_distinct toward the surviving rows.
  return std::max(1.0, std::min(n_distinct, surviving));
}

}  // namespace pinum
