// Equi-depth histograms, the statistic PostgreSQL keeps per column
// (pg_stats.histogram_bounds) and that the optimizer's selectivity
// estimation consumes.
#ifndef PINUM_STATS_HISTOGRAM_H_
#define PINUM_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "catalog/types.h"

namespace pinum {

/// Equi-depth (equal-frequency) histogram over int64 values.
///
/// `bounds_` holds nbuckets+1 boundary values; each bucket covers the
/// half-open range [bounds_[i], bounds_[i+1]) and contains ~1/nbuckets of
/// the rows.
class Histogram {
 public:
  Histogram() = default;

  /// Builds an equi-depth histogram from (a copy of) the data.
  static Histogram FromData(std::vector<Value> data, int num_buckets = 100);

  /// Builds a histogram describing a uniform distribution over
  /// [min, max] without materializing data — used for paper-scale
  /// synthetic statistics.
  static Histogram Uniform(Value min, Value max, int num_buckets = 100);

  bool empty() const { return bounds_.size() < 2; }
  int num_buckets() const {
    return empty() ? 0 : static_cast<int>(bounds_.size()) - 1;
  }
  Value min() const { return bounds_.front(); }
  Value max() const { return bounds_.back(); }
  const std::vector<Value>& bounds() const { return bounds_; }

  /// Estimated fraction of rows with value < v (v <= with inclusive=true).
  double FractionBelow(Value v, bool inclusive) const;

  /// Estimated fraction of rows in [lo, hi] (both inclusive).
  double FractionBetween(Value lo, Value hi) const;

 private:
  std::vector<Value> bounds_;
};

}  // namespace pinum

#endif  // PINUM_STATS_HISTOGRAM_H_
