// Per-table and per-column statistics used by the cost model.
#ifndef PINUM_STATS_TABLE_STATS_H_
#define PINUM_STATS_TABLE_STATS_H_

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "catalog/schema.h"
#include "catalog/types.h"
#include "stats/histogram.h"

namespace pinum {

/// Statistics for one column (pg_statistic analogue).
struct ColumnStats {
  /// Number of distinct values.
  double n_distinct = 1;
  Value min = 0;
  Value max = 0;
  /// Physical-vs-logical order correlation in [-1, 1]; 1 means the heap is
  /// stored in this column's order (drives index-scan IO interpolation).
  double correlation = 0.0;
  Histogram histogram;
};

/// Statistics for one table.
struct TableStats {
  double row_count = 0;
  /// Heap pages, derived from row_count and tuple width.
  double heap_pages = 1;
  std::vector<ColumnStats> columns;

  /// Computes heap_pages from the table definition and row_count.
  void RecomputePages(const TableDef& def) {
    const double rows_per_page =
        std::floor(static_cast<double>(PageLayout::UsableBytes()) *
                   PageLayout::kHeapFillFactor / def.TupleWidth());
    heap_pages = std::max(1.0, std::ceil(row_count / rows_per_page));
  }
};

/// Statistics registry, keyed by table id.
///
/// Kept separate from Catalog so that paper-scale (10 GB-equivalent)
/// statistics can drive the optimizer without materialized data.
class StatsCatalog {
 public:
  /// Installs stats for a table (replacing existing ones).
  void Put(TableId table, TableStats stats) {
    stats_[table] = std::move(stats);
  }

  const TableStats* Find(TableId table) const {
    auto it = stats_.find(table);
    return it == stats_.end() ? nullptr : &it->second;
  }

  /// Every table's statistics, keyed by table id — iteration order is
  /// deterministic (ascending table id), which snapshot epoch
  /// fingerprinting relies on.
  const std::map<TableId, TableStats>& all() const { return stats_; }

  /// Convenience: stats for one column; nullptr when absent.
  const ColumnStats* FindColumn(ColumnRef col) const {
    const TableStats* t = Find(col.table);
    if (t == nullptr || col.column < 0 ||
        static_cast<size_t>(col.column) >= t->columns.size()) {
      return nullptr;
    }
    return &t->columns[static_cast<size_t>(col.column)];
  }

 private:
  std::map<TableId, TableStats> stats_;
};

}  // namespace pinum

#endif  // PINUM_STATS_TABLE_STATS_H_
