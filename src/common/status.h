// Status and StatusOr: exception-free error propagation across module
// boundaries, modeled after absl::Status / arrow::Result.
#ifndef PINUM_COMMON_STATUS_H_
#define PINUM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pinum {

/// Error category attached to a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// A precondition the caller must re-establish does not hold (e.g. a
  /// snapshot's catalog/stats epoch no longer matches the live system).
  kFailedPrecondition,
  /// The service is overloaded right now; retrying later may succeed
  /// (e.g. the serving engine's admission control shedding a request
  /// because its queue is full). Deliberately distinct from the
  /// permanent-failure codes above: nothing about the request is wrong.
  kUnavailable,
  /// The operation's deadline passed before it completed (e.g. a
  /// SubmitCost request expiring in the queue, or a reseal overrunning
  /// MaintenancePolicy::reseal_deadline). The work may or may not have
  /// had an effect; for serving answers it means "not answered in time".
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// Functions that can fail return Status (or StatusOr<T>) instead of
/// throwing; callers must check ok() before proceeding.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  // Implicit conversions mirror absl::StatusOr ergonomics.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pinum

/// Propagates a non-OK Status from an expression to the caller.
#define PINUM_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::pinum::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// Evaluates a StatusOr expression, assigning the value or returning the
/// error. Usage: PINUM_ASSIGN_OR_RETURN(auto x, Foo());
#define PINUM_ASSIGN_OR_RETURN(lhs, expr)           \
  PINUM_ASSIGN_OR_RETURN_IMPL_(                     \
      PINUM_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)
#define PINUM_STATUS_CONCAT_INNER_(a, b) a##b
#define PINUM_STATUS_CONCAT_(a, b) PINUM_STATUS_CONCAT_INNER_(a, b)
#define PINUM_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                 \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

#endif  // PINUM_COMMON_STATUS_H_
