// Relation-set bitmaps used by the dynamic-programming join planner.
#ifndef PINUM_COMMON_BITSET64_H_
#define PINUM_COMMON_BITSET64_H_

#include <bit>
#include <cassert>
#include <cstdint>

namespace pinum {

/// Set of up to 64 relation positions, stored as a word.
///
/// Positions are query-local indexes (0 = first table in the FROM list),
/// not global table ids.
class RelSet {
 public:
  constexpr RelSet() : bits_(0) {}
  constexpr explicit RelSet(uint64_t bits) : bits_(bits) {}

  static constexpr RelSet Single(int pos) {
    return RelSet(uint64_t{1} << pos);
  }
  /// Set containing positions [0, n).
  static constexpr RelSet FirstN(int n) {
    return RelSet(n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1);
  }

  constexpr bool Contains(int pos) const {
    return (bits_ >> pos) & uint64_t{1};
  }
  constexpr bool ContainsAll(RelSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  constexpr bool Overlaps(RelSet other) const {
    return (bits_ & other.bits_) != 0;
  }
  constexpr bool Empty() const { return bits_ == 0; }
  int Count() const { return std::popcount(bits_); }

  constexpr RelSet Union(RelSet other) const {
    return RelSet(bits_ | other.bits_);
  }
  constexpr RelSet Intersect(RelSet other) const {
    return RelSet(bits_ & other.bits_);
  }
  constexpr RelSet Minus(RelSet other) const {
    return RelSet(bits_ & ~other.bits_);
  }
  RelSet With(int pos) const { return Union(Single(pos)); }

  /// Position of the lowest set bit. Requires !Empty().
  int Lowest() const {
    assert(!Empty());
    return std::countr_zero(bits_);
  }

  constexpr uint64_t bits() const { return bits_; }
  constexpr bool operator==(const RelSet&) const = default;

  /// Iterates set positions, lowest first.
  template <typename Fn>
  void ForEach(Fn fn) const {
    uint64_t rest = bits_;
    while (rest != 0) {
      const int pos = std::countr_zero(rest);
      fn(pos);
      rest &= rest - 1;
    }
  }

 private:
  uint64_t bits_;
};

}  // namespace pinum

#endif  // PINUM_COMMON_BITSET64_H_
