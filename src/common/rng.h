// Deterministic pseudo-random number generation used throughout the
// workload generators and experiments. All experiments are reproducible
// given the seed; no call site uses std::random_device.
#ifndef PINUM_COMMON_RNG_H_
#define PINUM_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace pinum {

/// SplitMix64-seeded xoshiro256** generator.
///
/// Deliberately self-contained (no <random> engine state size surprises)
/// so that streams are stable across platforms and standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool Chance(double p) { return NextDouble() < p; }

  /// Picks a uniformly random element index for a container of size n > 0.
  size_t Index(size_t n) {
    assert(n > 0);
    return static_cast<size_t>(Next() % n);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Index(i)]);
    }
  }

  /// Samples k distinct indices from [0, n). Requires k <= n.
  std::vector<size_t> SampleIndices(size_t n, size_t k) {
    assert(k <= n);
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace pinum

#endif  // PINUM_COMMON_RNG_H_
