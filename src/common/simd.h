// Explicitly vectorized primitives for the serving layer's dense
// double-precision scans. The backend is selected at configure time:
// CMake probes <experimental/simd> (libstdc++'s portable SIMD types,
// available under gcc and clang-with-libstdc++) and defines
// PINUM_HAVE_STD_SIMD when it compiles; otherwise — or under
// -DPINUM_SIMD=OFF — every helper falls back to the plain scalar loop.
//
// Both backends are bit-identical for the values the serving layer
// feeds them: access costs are non-negative doubles (never NaN, +inf is
// the "requirement cannot be met" sentinel), and elementwise min over
// such values returns the same double under std::min and the vector min
// — the two differ only on NaN and signed-zero operands. The serving
// property suites (sealed cost == unsealed cost, bitwise) hold under
// either backend; tests/common_test.cc pins the helpers directly.
#ifndef PINUM_COMMON_SIMD_H_
#define PINUM_COMMON_SIMD_H_

#include <algorithm>
#include <cstddef>

#if defined(PINUM_HAVE_STD_SIMD)
#include <experimental/simd>
#endif

namespace pinum {
namespace simd {

#if defined(PINUM_HAVE_STD_SIMD)

inline constexpr bool kVectorized = true;

/// Human-readable backend tag for bench/CI logs.
inline const char* BackendName() { return "std::experimental::simd"; }

/// dst[i] = min(dst[i], src[i]) for i in [0, n). The serving layer's
/// config-over-terms scan: folding one index's per-term column into the
/// resolved term values.
inline void MinFoldInto(double* dst, const double* src, std::size_t n) {
  namespace stdx = std::experimental;
  using V = stdx::native_simd<double>;
  constexpr std::size_t kW = V::size();
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    V a;
    V b;
    a.copy_from(dst + i, stdx::element_aligned);
    b.copy_from(src + i, stdx::element_aligned);
    stdx::min(a, b).copy_to(dst + i, stdx::element_aligned);
  }
  for (; i < n; ++i) dst[i] = std::min(dst[i], src[i]);
}

/// dst[i] = value for i in [0, n): the seal-time row fill (a term's
/// dense per-index row starts as its base cost before the table's few
/// real index entries are patched in).
inline void Fill(double* dst, double value, std::size_t n) {
  namespace stdx = std::experimental;
  using V = stdx::native_simd<double>;
  constexpr std::size_t kW = V::size();
  const V splat(value);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    splat.copy_to(dst + i, stdx::element_aligned);
  }
  for (; i < n; ++i) dst[i] = value;
}

#else  // scalar fallback

inline constexpr bool kVectorized = false;

inline const char* BackendName() { return "scalar"; }

inline void MinFoldInto(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = std::min(dst[i], src[i]);
}

inline void Fill(double* dst, double value, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = value;
}

#endif

}  // namespace simd
}  // namespace pinum

#endif  // PINUM_COMMON_SIMD_H_
