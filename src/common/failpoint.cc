#include "common/failpoint.h"

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/rng.h"

namespace pinum {
namespace {

struct Point {
  FailPoint::Config config;
  int64_t hits = 0;
  int64_t fires = 0;
  // Decision stream for kProbability, seeded at arm time and advanced
  // under the registry lock so the schedule is reproducible by seed.
  Rng rng{0};
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Point> points;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

// Fast-path gate: number of currently armed failpoints. When zero,
// Check() is one relaxed load and no lock is taken. Relaxed is enough:
// a test that arms a point and *then* starts the threads it wants to
// observe it synchronizes through thread creation; we only promise
// that a point armed before the racing work began is seen.
std::atomic<int> g_armed{0};

}  // namespace

Status FailPoint::Check(const char* name) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return Status::OK();
  Status injected;
  std::chrono::milliseconds delay{0};
  {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.points.find(name);
    if (it == reg.points.end()) return Status::OK();
    Point& p = it->second;
    ++p.hits;
    bool fire = false;
    switch (p.config.mode) {
      case Mode::kOff:
        break;
      case Mode::kAlways:
        fire = true;
        break;
      case Mode::kNthHit:
        fire = (p.hits == p.config.nth_hit);
        break;
      case Mode::kProbability:
        fire = p.rng.Chance(p.config.probability);
        break;
    }
    if (!fire) return Status::OK();
    ++p.fires;
    injected = p.config.status;
    delay = p.config.delay;
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  return injected;
}

void FailPoint::Arm(const std::string& name, Config config) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto [it, inserted] = reg.points.insert_or_assign(name, Point{});
  it->second.config = std::move(config);
  it->second.rng = Rng(it->second.config.seed);
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void FailPoint::Disarm(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.points.erase(name) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoint::DisarmAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  g_armed.fetch_sub(static_cast<int>(reg.points.size()),
                    std::memory_order_relaxed);
  reg.points.clear();
}

int64_t FailPoint::HitCount(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.hits;
}

int64_t FailPoint::FireCount(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.fires;
}

ScopedFailPoint::ScopedFailPoint(std::string name, FailPoint::Config config)
    : name_(std::move(name)) {
  {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.points.find(name_);
    if (it != reg.points.end()) {
      had_previous_ = true;
      previous_ = it->second.config;
    }
  }
  FailPoint::Arm(name_, std::move(config));
}

ScopedFailPoint::~ScopedFailPoint() {
  if (had_previous_) {
    FailPoint::Arm(name_, std::move(previous_));
  } else {
    FailPoint::Disarm(name_);
  }
}

}  // namespace pinum
