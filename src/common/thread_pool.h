// A small fixed-size thread pool used to parallelize embarrassingly
// parallel build work (one INUM/PINUM cache per workload query, batched
// configuration pricing) and the serving engine's coalesced sweeps.
// Results are written into caller-indexed slots, so output is
// deterministic regardless of scheduling.
#ifndef PINUM_COMMON_THREAD_POOL_H_
#define PINUM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pinum {

/// Fixed pool of worker threads with a shared FIFO queue of parallel
/// regions (one region per ParallelFor call).
class ThreadPool {
 public:
  /// `num_threads` <= 0 uses std::thread::hardware_concurrency(). A pool
  /// of size 1 runs everything on the caller's thread (no workers), which
  /// makes single-threaded runs exactly sequential — the determinism
  /// baseline the tests compare parallel runs against.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that can make progress concurrently (>= 1; counts
  /// the caller participating in ParallelFor).
  int size() const { return size_; }

  /// Runs `fn(i)` for every i in [0, n). Blocks until all iterations
  /// finish. The caller participates, so the pool is never idle while the
  /// caller spins. `fn` must not call ParallelFor on the same pool.
  ///
  /// Exception-safe: if any iteration throws, the first exception (by
  /// completion order) is rethrown on the caller after every claimed
  /// iteration has finished — never on a worker (which would terminate
  /// the process) and never by abandoning the completion barrier (which
  /// would deadlock the caller and dangle `fn`). Once an iteration has
  /// thrown, not-yet-claimed iterations are skipped; which other
  /// iterations ran to completion is unspecified. Concurrent
  /// ParallelFor calls from different threads on one pool are allowed
  /// (regions share the workers but complete independently).
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// Queued region entries not yet claimed by a worker. ParallelFor
  /// removes its own entries before returning, so with no ParallelFor in
  /// flight this is always 0 — the regression probe for the old
  /// behaviour where a finished region's leftover tasks lingered (holding
  /// its state alive) until the next ParallelFor drained them as no-ops.
  size_t QueueDepthForTesting() const;

 private:
  /// Shared state of one ParallelFor call: workers and the caller pull
  /// indices until the range is exhausted; `remaining` counts finished
  /// iterations; the first exception parks in `error` for the caller.
  struct Region {
    int64_t n = 0;
    /// Caller-owned; valid until ParallelFor returns. Only dereferenced
    /// after claiming an index < n, which cannot happen once `remaining`
    /// hits 0 — the earliest the caller can return.
    const std::function<void(int64_t)>* fn = nullptr;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> remaining{0};
    /// Set once an iteration has thrown; later claims skip the body.
    std::atomic<bool> failed{false};
    std::mutex error_mu;
    std::exception_ptr error;  // guarded by error_mu
    std::mutex done_mu;
    std::condition_variable done_cv;
  };

  /// Claims and runs iterations of `region` until exhausted, trapping
  /// exceptions into region->error.
  static void RunRegion(Region* region);

  void WorkerLoop();

  int size_ = 1;
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::shared_ptr<Region>> queue_;
  bool stop_ = false;
};

}  // namespace pinum

#endif  // PINUM_COMMON_THREAD_POOL_H_
