// A small fixed-size thread pool used to parallelize embarrassingly
// parallel build work (one INUM/PINUM cache per workload query, batched
// configuration pricing). Results are written into caller-indexed slots,
// so output is deterministic regardless of scheduling.
#ifndef PINUM_COMMON_THREAD_POOL_H_
#define PINUM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pinum {

/// Fixed pool of worker threads with a shared FIFO task queue.
class ThreadPool {
 public:
  /// `num_threads` <= 0 uses std::thread::hardware_concurrency(). A pool
  /// of size 1 runs everything on the caller's thread (no workers), which
  /// makes single-threaded runs exactly sequential — the determinism
  /// baseline the tests compare parallel runs against.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that can make progress concurrently (>= 1; counts
  /// the caller participating in ParallelFor).
  int size() const { return size_; }

  /// Runs `fn(i)` for every i in [0, n). Blocks until all iterations
  /// finish. The caller participates, so the pool is never idle while the
  /// caller spins. `fn` must not call ParallelFor on the same pool.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  int size_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace pinum

#endif  // PINUM_COMMON_THREAD_POOL_H_
