#include "common/thread_pool.h"

#include <algorithm>
#include <stdexcept>

#include "common/failpoint.h"

namespace pinum {
namespace {

// Fault-injection hook evaluated once per ParallelFor iteration, on
// whichever thread claims it (workers and the participating caller
// alike). Pool tasks communicate failure by throwing, so an injected
// Status surfaces as an exception — exercising the same rethrow-on-
// caller barrier a genuinely throwing body takes.
void CheckTaskFailPoint() {
  Status injected = FailPoint::Check("thread_pool.task");
  if (!injected.ok()) throw std::runtime_error(injected.ToString());
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  size_ = num_threads;
  // The caller is one of the `size_` threads during ParallelFor.
  const int workers = num_threads - 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t ThreadPool::QueueDepthForTesting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::RunRegion(Region* region) {
  const int64_t n = region->n;
  for (;;) {
    const int64_t i = region->next.fetch_add(1);
    if (i >= n) return;
    // After a throw the region's outcome is fixed (the caller will
    // rethrow), so skip the remaining bodies but keep claiming: every
    // iteration must still be accounted for in `remaining` or the
    // caller's barrier never opens.
    if (!region->failed.load(std::memory_order_relaxed)) {
      try {
        CheckTaskFailPoint();
        (*region->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(region->error_mu);
        if (region->error == nullptr) {
          region->error = std::current_exception();
        }
        region->failed.store(true, std::memory_order_relaxed);
      }
    }
    if (region->remaining.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(region->done_mu);
      region->done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Region> region;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      region = std::move(queue_.front());
      queue_.pop_front();
    }
    // A region whose iterations were all claimed already (the caller
    // finished it, or is about to) is a no-op here: RunRegion checks
    // `next` before touching the caller-owned `fn`.
    RunRegion(region.get());
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    // Exactly sequential; exceptions propagate to the caller directly.
    for (int64_t i = 0; i < n; ++i) {
      CheckTaskFailPoint();
      fn(i);
    }
    return;
  }

  auto region = std::make_shared<Region>();
  region->n = n;
  region->fn = &fn;
  region->remaining.store(n);

  const int64_t helpers =
      std::min<int64_t>(static_cast<int64_t>(workers_.size()), n - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t i = 0; i < helpers; ++i) queue_.push_back(region);
  }
  wake_.notify_all();

  RunRegion(region.get());  // the caller participates

  {
    std::unique_lock<std::mutex> lock(region->done_mu);
    region->done_cv.wait(lock,
                         [&] { return region->remaining.load() == 0; });
  }

  // Drop this region's unclaimed queue entries: when the caller (plus
  // early workers) finished every iteration before some workers woke,
  // the leftovers would otherwise sit in the queue — keeping the region
  // alive and delaying the next region's start — until a later
  // ParallelFor drained them as no-ops.
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.erase(std::remove(queue_.begin(), queue_.end(), region),
                 queue_.end());
  }

  std::lock_guard<std::mutex> lock(region->error_mu);
  if (region->error != nullptr) std::rethrow_exception(region->error);
}

}  // namespace pinum
