#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace pinum {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  size_ = num_threads;
  // The caller is one of the `size_` threads during ParallelFor.
  const int workers = num_threads - 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared iteration state: workers and the caller pull indices until the
  // range is exhausted; `remaining` counts finished iterations.
  struct State {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> remaining;
    std::mutex done_mu;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<State>();
  state->remaining.store(n);

  auto run = [state, n, &fn] {
    for (;;) {
      const int64_t i = state->next.fetch_add(1);
      if (i >= n) return;
      fn(i);
      if (state->remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(state->done_mu);
        state->done_cv.notify_all();
      }
    }
  };

  const int64_t helpers =
      std::min<int64_t>(static_cast<int64_t>(workers_.size()), n - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t i = 0; i < helpers; ++i) queue_.emplace_back(run);
  }
  wake_.notify_all();

  run();  // the caller participates

  std::unique_lock<std::mutex> lock(state->done_mu);
  state->done_cv.wait(lock, [&] { return state->remaining.load() == 0; });
}

}  // namespace pinum
