// Small string helpers shared across modules.
#ifndef PINUM_COMMON_STR_UTIL_H_
#define PINUM_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace pinum {

/// Joins the elements of `parts` with `sep` between them.
inline std::string StrJoin(const std::vector<std::string>& parts,
                           const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

/// Joins arbitrary streamable elements with `sep`, applying `fn` to each.
template <typename Container, typename Fn>
std::string StrJoinMapped(const Container& items, const std::string& sep,
                          Fn fn) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out << sep;
    first = false;
    out << fn(item);
  }
  return out.str();
}

/// Uppercases ASCII letters in place and returns the string.
inline std::string AsciiUpper(std::string s) {
  for (char& c : s) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return s;
}

}  // namespace pinum

#endif  // PINUM_COMMON_STR_UTIL_H_
