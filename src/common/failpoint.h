// Deterministic fault injection: a process-wide registry of named
// failpoints compiled into the production code paths that can fail in
// a real deployment — optimizer invocations, snapshot I/O, thread-pool
// task execution. A failpoint is a named call to FailPoint::Check() at
// the site; tests arm the name with a mode (always / exact-nth-hit /
// seeded-probability), an injected Status, and an optional stall, and
// the site observes the failure exactly as if the disk filled or the
// optimizer fell over. Nothing fires unless a test arms it: the
// disarmed fast path is one relaxed atomic load, so the checks stay in
// release builds and the fault schedule exercised under test is the
// binary that ships.
//
// Wired-in failpoint names (the site documents each precisely):
//   workload.build_query        one per-query cache (re)build
//                               (WorkloadCacheBuilder::BuildOne)
//   inum.plan_optimizer_call    each plan-cache optimizer call
//   inum.access_optimizer_call  each access-cost optimizer call
//                               (classic and PINUM builders)
//   thread_pool.task            each ParallelFor iteration (fires as a
//                               thrown exception, exercising the
//                               pool's exception paths)
//   snapshot.save.open          SaveSnapshot: opening the tmp file
//   snapshot.save.short_write   SaveSnapshot: body write cut short
//   snapshot.save.fsync         SaveSnapshot: fsync of the tmp file
//   snapshot.save.rename        SaveSnapshot: the tmp -> path rename
//   snapshot.load.read          LoadSnapshot/ReadSnapshotEpoch: file read
//   snapshot.mmap.map           MappedWorkloadSnapshot::Map: the mmap
//
// Thread-safety: Check/Arm/Disarm/counters may be called from any
// thread concurrently (the registry is mutex-protected; the disarmed
// fast path is lock-free). Seeded-probability decisions come from one
// per-failpoint Rng advanced under the registry lock, so a fault
// schedule is reproducible given the seed regardless of which threads
// hit the point — though *which* caller observes the k-th decision
// stays scheduling-dependent.
#ifndef PINUM_COMMON_FAILPOINT_H_
#define PINUM_COMMON_FAILPOINT_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace pinum {

/// Process-wide named fault-injection points. All members are static;
/// the registry lives for the process.
class FailPoint {
 public:
  enum class Mode {
    /// Armed but inert (counts hits, never fires).
    kOff,
    /// Fires on every hit.
    kAlways,
    /// Fires on exactly the nth_hit-th hit since arming (1-based),
    /// once — the "fail the k-th optimizer call mid-reseal" mode.
    kNthHit,
    /// Fires each hit with probability `probability`, decided by a
    /// generator seeded with `seed` at arm time.
    kProbability,
  };

  struct Config {
    Mode mode = Mode::kAlways;
    /// The Status Check() returns when the point fires. An OK status
    /// makes a delay-only failpoint: the site stalls but proceeds.
    Status status = Status::Internal("injected fault");
    /// kNthHit: which hit fires (1 = the first).
    int64_t nth_hit = 1;
    /// kProbability: per-hit fire chance in [0, 1].
    double probability = 0.0;
    /// kProbability: seed for the per-failpoint decision stream.
    uint64_t seed = 0;
    /// Stall applied (after the fire decision, outside the registry
    /// lock) whenever the point fires.
    std::chrono::milliseconds delay{0};
  };

  /// Evaluates the failpoint `name`. Returns OK unless the name is
  /// armed and its mode fires this hit, in which case the configured
  /// delay is slept and the configured status returned. When nothing
  /// at all is armed this is one relaxed atomic load.
  static Status Check(const char* name);

  /// Arms (or re-arms, resetting counters) the named failpoint.
  static void Arm(const std::string& name, Config config);

  /// Disarms the named failpoint (no-op if not armed).
  static void Disarm(const std::string& name);

  /// Disarms everything — test teardown's safety net.
  static void DisarmAll();

  /// Times Check(name) was evaluated since the name was last armed
  /// (0 if never armed).
  static int64_t HitCount(const std::string& name);

  /// Times the named failpoint actually fired since last armed.
  static int64_t FireCount(const std::string& name);
};

/// RAII scoped activation for tests: arms on construction, restores
/// the prior state (previous config, or disarmed) on destruction.
class ScopedFailPoint {
 public:
  ScopedFailPoint(std::string name, FailPoint::Config config);
  ~ScopedFailPoint();

  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

 private:
  std::string name_;
  bool had_previous_ = false;
  FailPoint::Config previous_;
};

}  // namespace pinum

#endif  // PINUM_COMMON_FAILPOINT_H_
