// Wall-clock stopwatch used by the experiment harnesses.
#ifndef PINUM_COMMON_STOPWATCH_H_
#define PINUM_COMMON_STOPWATCH_H_

#include <chrono>

namespace pinum {

/// Monotonic wall-clock timer. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since construction/Reset in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pinum

#endif  // PINUM_COMMON_STOPWATCH_H_
