// The catalog: registry of tables, indexes and foreign keys.
#ifndef PINUM_CATALOG_CATALOG_H_
#define PINUM_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/types.h"
#include "common/status.h"

namespace pinum {

/// Registry of schema objects.
///
/// Catalog is a value type: the what-if layer copies it and adds
/// hypothetical indexes, leaving the base catalog untouched — this mirrors
/// the paper's what-if interface where simulated indexes are visible to a
/// single optimization only (Section V-A).
class Catalog {
 public:
  /// Registers a table; assigns and returns its id.
  StatusOr<TableId> AddTable(TableDef table);

  /// Registers an index over an existing table; assigns and returns its id.
  StatusOr<IndexId> AddIndex(IndexDef index);

  /// Removes an index.
  Status DropIndex(IndexId id);

  /// Declares a foreign-key edge (used by generators, not enforced).
  Status AddForeignKey(ForeignKey fk);

  // ---- Lookup ----
  const TableDef* FindTable(TableId id) const;
  const TableDef* FindTableByName(const std::string& name) const;
  const IndexDef* FindIndex(IndexId id) const;
  const IndexDef* FindIndexByName(const std::string& name) const;
  /// Indexes defined over `table`, in id order.
  std::vector<const IndexDef*> IndexesOnTable(TableId table) const;

  const std::map<TableId, TableDef>& tables() const { return tables_; }
  const std::map<IndexId, IndexDef>& indexes() const { return indexes_; }
  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }

  /// Mutable index access (storage updates size stats after builds).
  IndexDef* MutableIndex(IndexId id);

  /// Number of registered indexes.
  size_t NumIndexes() const { return indexes_.size(); }

 private:
  std::map<TableId, TableDef> tables_;
  std::map<IndexId, IndexDef> indexes_;
  std::map<std::string, TableId> table_names_;
  std::map<std::string, IndexId> index_names_;
  std::vector<ForeignKey> fks_;
  TableId next_table_id_ = 0;
  IndexId next_index_id_ = 0;
};

}  // namespace pinum

#endif  // PINUM_CATALOG_CATALOG_H_
