// Fundamental identifier and value types shared by all modules.
#ifndef PINUM_CATALOG_TYPES_H_
#define PINUM_CATALOG_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace pinum {

/// Global table identifier assigned by the Catalog.
using TableId = int32_t;
/// Table-local column position (0-based).
using ColumnIdx = int32_t;
/// Global index identifier assigned by the Catalog.
using IndexId = int32_t;

inline constexpr TableId kInvalidTableId = -1;
inline constexpr IndexId kInvalidIndexId = -1;

/// Column value. The star-schema workload of the paper uses numeric
/// (integer) columns exclusively, so the engine stores int64 values;
/// DOUBLE columns are represented as scaled integers by the generator.
using Value = int64_t;

/// Supported column types.
enum class TypeId : uint8_t {
  kInt32,
  kInt64,
};

/// Byte width of a type as stored in heap tuples and index entries.
inline int TypeWidth(TypeId t) {
  switch (t) {
    case TypeId::kInt32:
      return 4;
    case TypeId::kInt64:
      return 8;
  }
  return 8;
}

/// Fully-qualified reference to a column: (global table, local position).
struct ColumnRef {
  TableId table = kInvalidTableId;
  ColumnIdx column = -1;

  bool operator==(const ColumnRef&) const = default;
  bool operator<(const ColumnRef& o) const {
    return table != o.table ? table < o.table : column < o.column;
  }
  bool valid() const { return table != kInvalidTableId && column >= 0; }
};

/// Hash functor so ColumnRef can key unordered containers.
struct ColumnRefHash {
  size_t operator()(const ColumnRef& c) const {
    return std::hash<int64_t>()((static_cast<int64_t>(c.table) << 32) ^
                                static_cast<uint32_t>(c.column));
  }
};

/// Physical layout constants mirroring PostgreSQL's heap/btree pages.
struct PageLayout {
  static constexpr int kPageSize = 8192;
  static constexpr int kPageHeader = 24;
  /// Heap tuple header + item pointer.
  static constexpr int kHeapTupleOverhead = 28;
  /// Index tuple header + item pointer.
  static constexpr int kIndexTupleOverhead = 12;
  /// Default btree leaf fill factor (PostgreSQL: 90%).
  static constexpr double kBtreeFillFactor = 0.90;
  /// Heap fill factor.
  static constexpr double kHeapFillFactor = 1.0;

  /// Bytes usable for tuples in a page.
  static constexpr int UsableBytes() { return kPageSize - kPageHeader; }

  /// Aligns a width to the 8-byte boundary PostgreSQL uses (MAXALIGN).
  static constexpr int MaxAlign(int width) { return (width + 7) & ~7; }
};

}  // namespace pinum

#endif  // PINUM_CATALOG_TYPES_H_
