#include "catalog/catalog.h"

namespace pinum {

StatusOr<TableId> Catalog::AddTable(TableDef table) {
  if (table.name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (table_names_.count(table.name) > 0) {
    return Status::AlreadyExists("table '" + table.name + "' already exists");
  }
  if (table.columns.empty()) {
    return Status::InvalidArgument("table '" + table.name + "' has no columns");
  }
  const TableId id = next_table_id_++;
  table.id = id;
  table_names_[table.name] = id;
  tables_[id] = std::move(table);
  return id;
}

StatusOr<IndexId> Catalog::AddIndex(IndexDef index) {
  const TableDef* table = FindTable(index.table);
  if (table == nullptr) {
    return Status::NotFound("index '" + index.name +
                            "' references unknown table");
  }
  if (index.key_columns.empty()) {
    return Status::InvalidArgument("index '" + index.name +
                                   "' has no key columns");
  }
  for (ColumnIdx c : index.key_columns) {
    if (c < 0 || static_cast<size_t>(c) >= table->columns.size()) {
      return Status::OutOfRange("index '" + index.name +
                                "' references column out of range");
    }
  }
  if (index_names_.count(index.name) > 0) {
    return Status::AlreadyExists("index '" + index.name + "' already exists");
  }
  const IndexId id = next_index_id_++;
  index.id = id;
  index_names_[index.name] = id;
  indexes_[id] = std::move(index);
  return id;
}

Status Catalog::DropIndex(IndexId id) {
  auto it = indexes_.find(id);
  if (it == indexes_.end()) {
    return Status::NotFound("no index with id " + std::to_string(id));
  }
  index_names_.erase(it->second.name);
  indexes_.erase(it);
  return Status::OK();
}

Status Catalog::AddForeignKey(ForeignKey fk) {
  if (FindTable(fk.child_table) == nullptr ||
      FindTable(fk.parent_table) == nullptr) {
    return Status::NotFound("foreign key references unknown table");
  }
  fks_.push_back(fk);
  return Status::OK();
}

const TableDef* Catalog::FindTable(TableId id) const {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : &it->second;
}

const TableDef* Catalog::FindTableByName(const std::string& name) const {
  auto it = table_names_.find(name);
  return it == table_names_.end() ? nullptr : FindTable(it->second);
}

const IndexDef* Catalog::FindIndex(IndexId id) const {
  auto it = indexes_.find(id);
  return it == indexes_.end() ? nullptr : &it->second;
}

const IndexDef* Catalog::FindIndexByName(const std::string& name) const {
  auto it = index_names_.find(name);
  return it == index_names_.end() ? nullptr : FindIndex(it->second);
}

std::vector<const IndexDef*> Catalog::IndexesOnTable(TableId table) const {
  std::vector<const IndexDef*> out;
  for (const auto& [id, idx] : indexes_) {
    if (idx.table == table) out.push_back(&idx);
  }
  return out;
}

IndexDef* Catalog::MutableIndex(IndexId id) {
  auto it = indexes_.find(id);
  return it == indexes_.end() ? nullptr : &it->second;
}

}  // namespace pinum
