// Logical schema objects: columns, tables, indexes, foreign keys.
#ifndef PINUM_CATALOG_SCHEMA_H_
#define PINUM_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "catalog/types.h"

namespace pinum {

/// Definition of one table column.
struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kInt64;

  /// Stored byte width (before alignment).
  int width() const { return TypeWidth(type); }
};

/// Foreign-key edge used by the workload and query generators to pick
/// joinable table subsets (the paper's queries join "via foreign keys").
struct ForeignKey {
  TableId child_table = kInvalidTableId;
  ColumnIdx child_column = -1;
  TableId parent_table = kInvalidTableId;
  ColumnIdx parent_column = -1;  // parent primary key
};

/// Definition of one table.
struct TableDef {
  TableId id = kInvalidTableId;
  std::string name;
  std::vector<ColumnDef> columns;

  /// Width of one heap tuple including per-tuple overhead, MAXALIGNed.
  int TupleWidth() const {
    int w = 0;
    for (const auto& c : columns) w += c.width();
    return PageLayout::MaxAlign(w) + PageLayout::kHeapTupleOverhead;
  }

  /// Finds a column position by name; -1 if absent.
  ColumnIdx FindColumn(const std::string& col_name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == col_name) return static_cast<ColumnIdx>(i);
    }
    return -1;
  }
};

/// Definition of a (real or hypothetical) B-tree index.
///
/// An index "covers" an interesting order when the order column is the
/// index's *first* key column (paper, Section II, definition 4). A
/// multi-column index whose key list contains every column a query needs
/// from the table enables an index-only scan (a "covering index" in the
/// paper's Section VI-E sense).
struct IndexDef {
  IndexId id = kInvalidIndexId;
  std::string name;
  TableId table = kInvalidTableId;
  /// Ordered key columns (positions within the table).
  std::vector<ColumnIdx> key_columns;
  /// True for what-if indexes that exist only as statistics.
  bool hypothetical = false;

  // ---- Size statistics (filled by storage for real indexes, by the
  // what-if estimator for hypothetical ones). ----
  /// Number of leaf pages.
  int64_t leaf_pages = 0;
  /// Leaf + internal pages. For what-if indexes the paper's estimator
  /// ignores internal pages, so total_pages == leaf_pages there (the
  /// source of the small error measured in Section VI-B).
  int64_t total_pages = 0;
  /// B-tree height (number of internal levels above the leaves).
  int height = 0;

  ColumnIdx leading_column() const {
    return key_columns.empty() ? -1 : key_columns[0];
  }

  /// True if the key list contains `col`.
  bool ContainsColumn(ColumnIdx col) const {
    for (ColumnIdx k : key_columns) {
      if (k == col) return true;
    }
    return false;
  }

  /// True if the key list contains every column in `cols`.
  bool CoversColumns(const std::vector<ColumnIdx>& cols) const {
    for (ColumnIdx c : cols) {
      if (!ContainsColumn(c)) return false;
    }
    return true;
  }

  /// Width of one index entry including per-entry overhead, MAXALIGNed.
  int EntryWidth(const TableDef& table_def) const {
    int w = 0;
    for (ColumnIdx c : key_columns) {
      w += table_def.columns[static_cast<size_t>(c)].width();
    }
    return PageLayout::MaxAlign(w) + PageLayout::kIndexTupleOverhead;
  }
};

}  // namespace pinum

#endif  // PINUM_CATALOG_SCHEMA_H_
