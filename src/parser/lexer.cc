#include "parser/lexer.h"

#include <cctype>

namespace pinum {

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      t.kind = TokenKind::kIdent;
      t.text = sql.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      t.kind = TokenKind::kNumber;
      t.text = sql.substr(i, j - i);
      t.number = std::stoll(t.text);
      i = j;
    } else {
      switch (c) {
        case ',':
          t.kind = TokenKind::kComma;
          ++i;
          break;
        case '.':
          t.kind = TokenKind::kDot;
          ++i;
          break;
        case '(':
          t.kind = TokenKind::kLParen;
          ++i;
          break;
        case ')':
          t.kind = TokenKind::kRParen;
          ++i;
          break;
        case '=':
          t.kind = TokenKind::kEq;
          ++i;
          break;
        case '<':
          if (i + 1 < n && sql[i + 1] == '=') {
            t.kind = TokenKind::kLe;
            i += 2;
          } else {
            t.kind = TokenKind::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && sql[i + 1] == '=') {
            t.kind = TokenKind::kGe;
            i += 2;
          } else {
            t.kind = TokenKind::kGt;
            ++i;
          }
          break;
        default:
          return Status::InvalidArgument("unexpected character '" +
                                         std::string(1, c) + "' at offset " +
                                         std::to_string(i));
      }
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace pinum
