#include "parser/parser.h"

#include <algorithm>

#include "common/str_util.h"
#include "parser/lexer.h"

namespace pinum {

namespace {

/// Recursive-descent parser state.
class Parser {
 public:
  Parser(std::vector<Token> tokens, const Catalog& catalog)
      : tokens_(std::move(tokens)), catalog_(catalog) {}

  StatusOr<Query> Parse() {
    PINUM_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    PINUM_RETURN_IF_ERROR(ParseSelectList());
    PINUM_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    PINUM_RETURN_IF_ERROR(ParseFromList());
    PINUM_RETURN_IF_ERROR(ResolveSelectList());
    if (TryKeyword("WHERE")) {
      PINUM_RETURN_IF_ERROR(ParseWhere());
    }
    if (TryKeyword("GROUP")) {
      PINUM_RETURN_IF_ERROR(ExpectKeyword("BY"));
      PINUM_RETURN_IF_ERROR(ParseGroupBy());
    }
    if (TryKeyword("ORDER")) {
      PINUM_RETURN_IF_ERROR(ExpectKeyword("BY"));
      PINUM_RETURN_IF_ERROR(ParseOrderBy());
    }
    if (Cur().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return query_;
  }

 private:
  struct PendingColumn {
    std::string table;  // may be empty (unqualified)
    std::string column;
    AggKind agg = AggKind::kNone;
  };

  const Token& Cur() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at offset " +
                                   std::to_string(Cur().offset));
  }

  bool IsKeyword(const Token& t, const char* kw) const {
    return t.kind == TokenKind::kIdent && AsciiUpper(t.text) == kw;
  }

  bool TryKeyword(const char* kw) {
    if (IsKeyword(Cur(), kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (!TryKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    return Status::OK();
  }

  StatusOr<PendingColumn> ParseColumn() {
    PendingColumn col;
    if (Cur().kind != TokenKind::kIdent) return Error("expected column name");
    std::string first = Cur().text;
    Advance();
    if (Cur().kind == TokenKind::kDot) {
      Advance();
      if (Cur().kind != TokenKind::kIdent) {
        return Error("expected column after '.'");
      }
      col.table = first;
      col.column = Cur().text;
      Advance();
    } else {
      col.column = first;
    }
    return col;
  }

  Status ParseSelectList() {
    while (true) {
      PendingColumn col;
      const std::string upper =
          Cur().kind == TokenKind::kIdent ? AsciiUpper(Cur().text) : "";
      AggKind agg = AggKind::kNone;
      if (upper == "SUM") {
        agg = AggKind::kSum;
      } else if (upper == "COUNT") {
        agg = AggKind::kCount;
      } else if (upper == "MIN") {
        agg = AggKind::kMin;
      } else if (upper == "MAX") {
        agg = AggKind::kMax;
      }
      if (agg != AggKind::kNone &&
          tokens_[pos_ + 1].kind == TokenKind::kLParen) {
        Advance();  // function name
        Advance();  // '('
        PINUM_ASSIGN_OR_RETURN(col, ParseColumn());
        col.agg = agg;
        if (Cur().kind != TokenKind::kRParen) return Error("expected ')'");
        Advance();
      } else {
        PINUM_ASSIGN_OR_RETURN(col, ParseColumn());
      }
      pending_select_.push_back(col);
      if (Cur().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseFromList() {
    while (true) {
      if (Cur().kind != TokenKind::kIdent) return Error("expected table name");
      const TableDef* t = catalog_.FindTableByName(Cur().text);
      if (t == nullptr) {
        return Status::NotFound("unknown table '" + Cur().text + "'");
      }
      query_.tables.push_back(t->id);
      Advance();
      if (Cur().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  /// Resolves a pending column against the FROM tables.
  StatusOr<ColumnRef> Resolve(const PendingColumn& col) const {
    if (!col.table.empty()) {
      const TableDef* t = catalog_.FindTableByName(col.table);
      if (t == nullptr || query_.PosOfTable(t->id) < 0) {
        return Status::NotFound("table '" + col.table + "' not in FROM");
      }
      const ColumnIdx c = t->FindColumn(col.column);
      if (c < 0) {
        return Status::NotFound("unknown column '" + col.table + "." +
                                col.column + "'");
      }
      return ColumnRef{t->id, c};
    }
    // Unqualified: must match exactly one FROM table.
    ColumnRef found;
    int matches = 0;
    for (TableId tid : query_.tables) {
      const TableDef* t = catalog_.FindTable(tid);
      const ColumnIdx c = t->FindColumn(col.column);
      if (c >= 0) {
        found = {tid, c};
        ++matches;
      }
    }
    if (matches == 0) {
      return Status::NotFound("unknown column '" + col.column + "'");
    }
    if (matches > 1) {
      return Status::InvalidArgument("ambiguous column '" + col.column + "'");
    }
    return found;
  }

  Status ResolveSelectList() {
    for (const auto& col : pending_select_) {
      PINUM_ASSIGN_OR_RETURN(ColumnRef ref, Resolve(col));
      query_.select.push_back(ref);
      if (col.agg != AggKind::kNone) {
        if (query_.aggregate != AggKind::kNone &&
            query_.aggregate != col.agg) {
          return Status::Unimplemented(
              "mixed aggregate functions are not supported");
        }
        query_.aggregate = col.agg;
      }
    }
    return Status::OK();
  }

  Status ParseWhere() {
    while (true) {
      PINUM_ASSIGN_OR_RETURN(PendingColumn lhs_col, ParseColumn());
      PINUM_ASSIGN_OR_RETURN(ColumnRef lhs, Resolve(lhs_col));
      if (IsKeyword(Cur(), "BETWEEN")) {
        Advance();
        if (Cur().kind != TokenKind::kNumber) return Error("expected number");
        const Value lo = Cur().number;
        Advance();
        PINUM_RETURN_IF_ERROR(ExpectKeyword("AND"));
        if (Cur().kind != TokenKind::kNumber) return Error("expected number");
        const Value hi = Cur().number;
        Advance();
        query_.filters.push_back({lhs, CompareOp::kGe, lo});
        query_.filters.push_back({lhs, CompareOp::kLe, hi});
      } else {
        CompareOp op;
        switch (Cur().kind) {
          case TokenKind::kEq:
            op = CompareOp::kEq;
            break;
          case TokenKind::kLt:
            op = CompareOp::kLt;
            break;
          case TokenKind::kLe:
            op = CompareOp::kLe;
            break;
          case TokenKind::kGt:
            op = CompareOp::kGt;
            break;
          case TokenKind::kGe:
            op = CompareOp::kGe;
            break;
          default:
            return Error("expected comparison operator");
        }
        Advance();
        if (Cur().kind == TokenKind::kNumber) {
          query_.filters.push_back({lhs, op, Cur().number});
          Advance();
        } else if (Cur().kind == TokenKind::kIdent) {
          if (op != CompareOp::kEq) {
            return Error("only equality joins are supported");
          }
          PINUM_ASSIGN_OR_RETURN(PendingColumn rhs_col, ParseColumn());
          PINUM_ASSIGN_OR_RETURN(ColumnRef rhs, Resolve(rhs_col));
          query_.joins.push_back({lhs, rhs});
        } else {
          return Error("expected constant or column");
        }
      }
      if (!TryKeyword("AND")) break;
    }
    return Status::OK();
  }

  Status ParseGroupBy() {
    while (true) {
      PINUM_ASSIGN_OR_RETURN(PendingColumn col, ParseColumn());
      PINUM_ASSIGN_OR_RETURN(ColumnRef ref, Resolve(col));
      query_.group_by.push_back(ref);
      if (Cur().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseOrderBy() {
    while (true) {
      PINUM_ASSIGN_OR_RETURN(PendingColumn col, ParseColumn());
      PINUM_ASSIGN_OR_RETURN(ColumnRef ref, Resolve(col));
      bool asc = true;
      if (TryKeyword("DESC")) {
        asc = false;
      } else {
        (void)TryKeyword("ASC");
      }
      query_.order_by.push_back({ref, asc});
      if (Cur().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  const Catalog& catalog_;
  size_t pos_ = 0;
  Query query_;
  std::vector<PendingColumn> pending_select_;
};

}  // namespace

StatusOr<Query> ParseSql(const std::string& sql, const Catalog& catalog) {
  PINUM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), catalog);
  PINUM_ASSIGN_OR_RETURN(Query query, parser.Parse());
  if (query.tables.empty()) {
    return Status::InvalidArgument("query has no FROM tables");
  }
  if (query.select.empty()) {
    return Status::InvalidArgument("query has empty select list");
  }
  query.name = "parsed";
  return query;
}

}  // namespace pinum
