// Tokenizer for the SQL subset.
#ifndef PINUM_PARSER_LEXER_H_
#define PINUM_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace pinum {

/// Token categories.
enum class TokenKind {
  kIdent,
  kNumber,
  kComma,
  kDot,
  kLParen,
  kRParen,
  kEq,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

/// One lexed token.
struct Token {
  TokenKind kind;
  std::string text;   // identifier text, uppercased for keyword checks
  int64_t number = 0;
  size_t offset = 0;  // byte offset, for error messages
};

/// Splits `sql` into tokens (kEnd-terminated). Identifiers keep their
/// original text in `text`; keyword comparison is case-insensitive.
StatusOr<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace pinum

#endif  // PINUM_PARSER_LEXER_H_
