// Recursive-descent parser for the SQL subset the engine supports:
//
//   SELECT item (',' item)*
//   FROM table (',' table)*
//   [WHERE pred (AND pred)*]
//   [GROUP BY col (',' col)*]
//   [ORDER BY col [ASC|DESC] (',' col [ASC|DESC])*]
//
//   item  := col | SUM '(' col ')' | COUNT '(' col ')' | MIN... | MAX...
//   pred  := col '=' col | col op const | col BETWEEN const AND const
//   col   := [table '.'] name
//   op    := '=' | '<' | '<=' | '>' | '>='
//
// Names are resolved against the catalog; unqualified columns must be
// unambiguous across the FROM tables.
#ifndef PINUM_PARSER_PARSER_H_
#define PINUM_PARSER_PARSER_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "query/query.h"

namespace pinum {

/// Parses `sql` into a Query, resolving names against `catalog`.
StatusOr<Query> ParseSql(const std::string& sql, const Catalog& catalog);

}  // namespace pinum

#endif  // PINUM_PARSER_PARSER_H_
