// The serving-optimized form of a finished InumCache. Sealing happens
// once after a cache is built; every subsequent what-if question — the
// advisor issues O(candidates x iterations x queries) of them — is
// answered from the sealed form:
//
//  - plans that can never win are pruned: a plan whose every slot
//    requires at least as much as another plan's (same kind-or-stronger
//    requirement, no smaller multiplier) with no smaller internal cost is
//    dominated (the paper's Section IV redundancy observation applied at
//    serve time), and a plan with a requirement no universe index can
//    serve prices infinite under every configuration. The repo's own
//    builders already eliminate both at build time (Section V-D export
//    dominance plus requirement relaxation and key dedup — the property
//    suite pins this), so sealing re-establishes irredundancy as an
//    invariant of the serve-time type no matter where the cache came
//    from (merged, persisted, or hand-built caches included);
//  - per-slot std::map probes are replaced by dense access-cost vectors
//    indexed by the candidate universe's stable ids (CandidateSet
//    guarantees id stability), so pricing a configuration is a
//    branch-light array min-scan;
//  - distinct slot requirements are deduplicated into shared "terms"
//    resolved once per configuration instead of once per plan;
//  - surviving plans are sorted by ascending internal cost, so the scan
//    early-exits as soon as internal_cost >= best_so_far (access costs
//    are non-negative, making internal cost a lower bound).
//
// Cost() is bit-identical to InumCache::Cost() on every configuration —
// pruning removes only plans that are pointwise >= a survivor in exact
// floating-point arithmetic, and the surviving plans' costs are computed
// from the same doubles in the same per-slot order.
//
// The API is seal-only by design: InumCache stays the mutable build-time
// type, SealedCache the immutable serve-time type; there is no Unseal.
#ifndef PINUM_INUM_SEALED_CACHE_H_
#define PINUM_INUM_SEALED_CACHE_H_

#include <cstdint>
#include <vector>

#include "inum/cache.h"

namespace pinum {

class SealedCache {
 public:
  SealedCache() = default;

  /// Seals `cache` for serving. `num_index_ids` bounds the dense vectors:
  /// one past the largest IndexId the cache can be asked about (use
  /// CandidateSet::NumIndexIds()). Configuration entries outside
  /// [0, num_index_ids) price as absent, exactly as InumCache treats ids
  /// missing from its access-cost table.
  static SealedCache Seal(const InumCache& cache, IndexId num_index_ids);

  /// Estimated query cost under `config`; bit-identical to
  /// InumCache::Cost(config) on the cache this was sealed from.
  double Cost(const IndexConfig& config) const;

  /// Plans surviving dominance pruning.
  size_t NumPlans() const { return plans_.size(); }
  /// Plans the seal discarded as dominated.
  size_t NumPlansPruned() const { return plans_pruned_; }
  /// Distinct slot requirements shared across the surviving plans.
  size_t NumTerms() const { return terms_.size(); }

 private:
  /// One distinct (table position, requirement kind, column) slot
  /// requirement, priced per configuration as
  ///   min(base, min over config ids of per_index[id]).
  struct Term {
    /// Cost with the empty configuration (heap for unordered slots,
    /// infinite for ordered/probe slots).
    double base = kInfiniteCost;
    /// Dense per-index cost, subscripted by IndexId.
    std::vector<double> per_index;
  };

  /// One surviving plan: internal cost plus a slice of
  /// (plan_term_ids_, plan_multipliers_) in original slot order.
  struct Plan {
    double internal_cost = 0;
    uint32_t first_slot = 0;
    uint32_t num_slots = 0;
  };

  std::vector<Term> terms_;
  std::vector<Plan> plans_;  // ascending internal_cost
  std::vector<uint32_t> plan_term_ids_;
  std::vector<double> plan_multipliers_;
  size_t plans_pruned_ = 0;
};

}  // namespace pinum

#endif  // PINUM_INUM_SEALED_CACHE_H_
