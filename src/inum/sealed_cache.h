// The serving-optimized form of a finished InumCache. Sealing happens
// once after a cache is built; every subsequent what-if question — the
// advisor issues O(candidates x iterations x queries) of them — is
// answered from the sealed form:
//
//  - plans that can never win are pruned: a plan whose every slot
//    requires at least as much as another plan's (same kind-or-stronger
//    requirement, no smaller multiplier) with no smaller internal cost is
//    dominated (the paper's Section IV redundancy observation applied at
//    serve time), and a plan with a requirement no universe index can
//    serve prices infinite under every configuration. The repo's own
//    builders already eliminate both at build time (Section V-D export
//    dominance plus requirement relaxation and key dedup — the property
//    suite pins this), so sealing re-establishes irredundancy as an
//    invariant of the serve-time type no matter where the cache came
//    from (merged, persisted, or hand-built caches included);
//  - per-slot std::map probes are replaced by a dense index-major term
//    matrix over the candidate universe's stable ids (CandidateSet
//    guarantees id stability): distinct slot requirements are
//    deduplicated into shared "terms", and pricing a configuration is a
//    base-row copy plus one contiguous SIMD min-fold per configuration
//    index (src/common/simd.h; scalar fallback selected at configure
//    time);
//  - per-index posting lists record, for every universe index, the few
//    terms that index can actually lower below their base cost. They
//    drive the delta-costing path: with a CostContext pinning a base
//    configuration's resolved term values, CostWithExtra prices
//    base + {id} by folding only postings[id] — O(postings), not
//    O(|base| x terms) — which turns the greedy advisor's inner loop
//    from re-resolving every term per candidate into a sparse overlay;
//  - surviving plans are sorted by ascending internal cost, so the scan
//    early-exits as soon as internal_cost >= best_so_far (access costs
//    are non-negative, making internal cost a lower bound). A context
//    additionally pins the base configuration's plan-scan result, which
//    seeds the delta scan's early exit: term values under base + {id}
//    are pointwise <= the base values, so the base cost is a valid
//    initial upper bound.
//
// Cost() is bit-identical to InumCache::Cost() on every configuration —
// pruning removes only plans that are pointwise >= a survivor in exact
// floating-point arithmetic, and the surviving plans' costs are computed
// from the same doubles in the same per-slot order. CostWithExtra(ctx,
// id) is bit-identical to Cost(base + {id}) — skipped terms are exactly
// those whose min the extra index cannot change.
//
// Storage: every array lives in ONE relocatable, 8-byte-aligned arena
// image (src/inum/arena.h) and is read through ArenaSpan views. The
// image is what Seal() builds on the heap, what the snapshot layer
// writes to disk verbatim (the v3 cache record IS the image — see
// docs/SNAPSHOT_FORMAT.md), and what snapshot_mmap.{h,cc} serves
// straight out of a mapped file with zero per-element decode. Copying a
// SealedCache shares the immutable arena (cheap — publishing a serving
// generation copies a whole workload's caches); moving transfers the
// backing and leaves the source default-constructed. Both preserve
// seal_id(), so CostContexts pinned before a copy/move stay valid
// against the surviving cache.
//
// The API is seal-only by design: InumCache stays the mutable build-time
// type, SealedCache the immutable serve-time type; there is no Unseal.
#ifndef PINUM_INUM_SEALED_CACHE_H_
#define PINUM_INUM_SEALED_CACHE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "inum/arena.h"
#include "inum/cache.h"

namespace pinum {

class SnapshotCodec;

class SealedCache {
 public:
  SealedCache() = default;

  /// Copies share the immutable arena (a refcount bump, not a deep
  /// copy); both caches answer bit-identically and keep the seal id.
  SealedCache(const SealedCache&) = default;
  SealedCache& operator=(const SealedCache&) = default;

  /// Moves transfer the arena backing and reset the source to the
  /// default-constructed state — a moved-from cache holds no dangling
  /// views (it prices everything as the empty cache does). The
  /// destination keeps the seal id, so CostContexts prepared against
  /// the source before the move stay valid against the destination
  /// (the contract RebuildQueries' in-place slot replacement and the
  /// serving engine's generation plumbing rely on; pinned by the
  /// move-regression test alongside ScratchReuseAcrossResealServesLiveCosts).
  SealedCache(SealedCache&& other) noexcept { *this = std::move(other); }
  SealedCache& operator=(SealedCache&& other) noexcept;

  /// A pinned evaluation context: one base configuration's resolved
  /// per-term values plus its plan-scan result. Prepared once per
  /// (cache, base) and swept across many extras by CostWithExtra; reuse
  /// the same object across advisor iterations to keep its buffers warm.
  /// A context belongs to the cache that prepared it and to one thread
  /// at a time.
  class CostContext {
   public:
    CostContext() = default;

    /// Cost of the pinned base configuration (== Cost(base)).
    double base_cost() const { return base_cost_; }

    /// seal_id() of the cache that prepared this context, 0 when never
    /// prepared. A context whose seal id differs from its cache's is
    /// stale — the cache was resealed (or replaced) since the pin — and
    /// its values_ index a dead term layout; callers holding contexts
    /// across reseals (WorkloadCostEvaluator::EvalScratch) compare the
    /// ids and re-prepare instead of serving torn costs.
    uint64_t seal_id() const { return seal_id_; }

   private:
    friend class SealedCache;
    std::vector<double> values_;
    /// (term, previous value) overlay log so CostWithExtra can restore
    /// the pinned values after each extra; capacity persists across
    /// calls.
    std::vector<std::pair<uint32_t, double>> undo_;
    double base_cost_ = kInfiniteCost;
    uint64_t seal_id_ = 0;
  };

  /// Seals `cache` for serving. `num_index_ids` bounds the dense vectors:
  /// one past the largest IndexId the cache can be asked about (use
  /// CandidateSet::NumIndexIds()). Configuration entries outside
  /// [0, num_index_ids) price as absent, exactly as InumCache treats ids
  /// missing from its access-cost table.
  static SealedCache Seal(const InumCache& cache, IndexId num_index_ids);

  /// Estimated query cost under `config`; bit-identical to
  /// InumCache::Cost(config) on the cache this was sealed from.
  /// Thread-safe: concurrent Cost() calls on one cache never share state
  /// (the scratch context is thread-local), which is what lets the
  /// batched evaluator price configurations on a pool.
  double Cost(const IndexConfig& config) const;

  /// Pins `base` into `ctx`: resolves every term against `base` (SIMD
  /// min-fold over the index-major matrix) and records the plan-scan
  /// result, so base + {extra} questions become sparse overlays.
  void PrepareContext(const IndexConfig& base, CostContext* ctx) const;

  /// Re-pins `ctx` from its base configuration B to B + {extra} by
  /// folding postings[extra] in permanently — O(postings), the greedy
  /// advisor's iteration-to-iteration step once a winner is chosen.
  /// Bit-identical to PrepareContext(B + {extra}, ctx): the values agree
  /// term by term (min-folding the winner's matrix row changes exactly
  /// the posting-bearing terms) and the plan rescan seeded with the old
  /// base cost returns the exact new minimum.
  void ExtendContext(CostContext* ctx, IndexId extra) const;

  /// Cost of base + {extra} for the configuration pinned in `ctx`;
  /// bit-identical to Cost(base_config + {extra}). Folds only
  /// postings[extra] into the pinned term values (restoring them before
  /// returning, so one context serves any number of extras in any
  /// order). Ids outside the universe, ids already in the base, and ids
  /// that cannot lower any term short-circuit to ctx->base_cost().
  double CostWithExtra(CostContext* ctx, IndexId extra) const;

  /// CostWithExtra for a whole sweep: out[i] = CostWithExtra(ctx,
  /// extras[i]) for i in [0, n), bit-identically. The advisor-shaped
  /// entry point: out is SIMD-filled with the base cost first, so the
  /// many extras whose posting lists are empty for this query cost one
  /// store instead of a call.
  void CostExtrasInto(CostContext* ctx, const IndexId* extras, size_t n,
                      double* out) const;

  /// The inverted sweep for when the caller can amortize an id ->
  /// output-slot map across queries: prices only this cache's
  /// posting-bearing ids (PostingBearingIds) that the map points into
  /// the sweep, writing out[position_of_id[id]]. `out` must already be
  /// filled with ctx->base_cost() for every slot, and the map must be
  /// injective on the swept ids (one slot per id); entries are
  /// kNotSwept for ids not being swept, and ids >= map_size are not
  /// swept. Bit-identical to CostExtrasInto over the same sweep.
  static constexpr uint32_t kNotSwept = UINT32_MAX;
  void CostActiveExtrasInto(CostContext* ctx, const uint32_t* position_of_id,
                            size_t map_size, double* out) const;

  /// Universe ids with non-empty posting lists: the only ids whose
  /// addition can change any cost this cache serves. A view into the
  /// arena — valid as long as this cache (or any copy) is alive.
  ArenaSpan<IndexId> PostingBearingIds() const { return posting_ids_; }

  /// Plans surviving dominance pruning.
  size_t NumPlans() const { return plans_.size(); }
  /// Plans the seal discarded as dominated.
  size_t NumPlansPruned() const { return plans_pruned_; }
  /// Distinct slot requirements shared across the surviving plans.
  size_t NumTerms() const { return term_bases_.size(); }
  /// Total posting-list entries across the universe: (index, term) pairs
  /// where the index can lower the term below its base cost. The delta
  /// path's per-extra work is its share of these, not NumTerms().
  size_t NumPostings() const { return posting_terms_.size(); }
  /// One past the largest IndexId this seal covers. Ids at or beyond it
  /// price as absent (their base cost) — which is also bit-identical to
  /// what a wider reseal computes for an id whose access costs this
  /// cache never saw, the property that lets a sealed cache keep serving
  /// unreseal'd after append-only universe growth (incremental reseal).
  size_t UniverseSize() const { return universe_; }
  /// Process-unique identity of this seal's *contents*: freshly drawn by
  /// every Seal() and snapshot decode/map (never 0, never reused within
  /// a process), carried along by copies and moves — both answer
  /// bit-identically, so contexts pinned against the original stay
  /// valid. Assigning a different cache into a slot (RebuildQueries
  /// replacing a resealed query in place) changes the slot's seal id,
  /// which is how CostContext/EvalScratch staleness is detected.
  uint64_t seal_id() const { return seal_id_; }
  /// Bytes of the backing arena image (0 for a default-constructed
  /// cache) — also exactly this cache's v3 snapshot record size.
  size_t ArenaBytes() const { return arena_.size; }

 private:
  /// The persistence layer (src/inum/snapshot.cc, snapshot_mmap.cc)
  /// writes the arena image verbatim and rebinds views over validated
  /// bytes; any layout change must bump kSnapshotFormatVersion and be
  /// reflected in docs/SNAPSHOT_FORMAT.md in the same change.
  friend class SnapshotCodec;

  /// One surviving plan: internal cost plus a slice of
  /// (plan_term_ids_, plan_multipliers_) in original slot order. Stored
  /// in the arena image verbatim — layout is part of the snapshot
  /// format (16 bytes: f64 internal_cost, u32 first_slot, u32
  /// num_slots).
  struct Plan {
    double internal_cost = 0;
    uint32_t first_slot = 0;
    uint32_t num_slots = 0;
  };
  static_assert(sizeof(Plan) == 16 && alignof(Plan) == kArenaAlign,
                "Plan is persisted verbatim; its layout is format-stable");

  // ---- Arena image layout (all offsets relative to the image start,
  // every array offset a multiple of kArenaAlign; see
  // docs/SNAPSHOT_FORMAT.md "cache record (v3)") --------------------------
  /// Array order in the image directory.
  enum ImageArray : size_t {
    kImgTermBases = 0,
    kImgMatrix = 1,
    kImgPostingOffsets = 2,
    kImgPostingTerms = 3,
    kImgPostingValues = 4,
    kImgPostingIds = 5,
    kImgPlans = 6,
    kImgPlanTermIds = 7,
    kImgPlanMultipliers = 8,
    kImgArrayCount = 9,
  };
  /// u64 universe + u64 plans_pruned, then the directory.
  static constexpr size_t kImageDirectoryAt = 16;
  /// Directory entry: u64 byte offset + u64 element count.
  static constexpr size_t kImageArraysAt =
      kImageDirectoryAt + kImgArrayCount * 16;

  /// Structural validation of an untrusted image — every check the
  /// serving scans rely on (alignment, bounds, CSR closure, plan
  /// ordering, strict-improvement postings, posting-id consistency).
  /// Returns kInternal before any view is handed out; shared by the
  /// snapshot decode path and MappedWorkloadSnapshot::Map.
  static Status ValidateImage(const char* data, size_t size);

  /// Installs views over `arena` (whose bytes must already be a valid
  /// image — Seal's own packing or ValidateImage-checked) and draws a
  /// fresh seal id.
  void BindImage(Arena arena);

  /// The canonical image of a default-constructed (never sealed) cache:
  /// universe 0, no plans, the CSR invariant's single {0} offset. What
  /// SnapshotCodec encodes when asked to persist a default cache.
  static std::string PackEmptyImage();

  /// Min over plans of internal + sum(multiplier x values[term]), seeded
  /// with upper bound `seed` (kInfiniteCost for a from-scratch scan);
  /// early-exits on the ascending-internal-cost order.
  double ScanPlans(const double* values, double seed) const;

  /// The posting-overlay core shared by CostWithExtra and
  /// CostExtrasInto: folds postings [begin, end) into ctx's pinned
  /// values, scans, restores, returns the cost.
  double CostOverlay(CostContext* ctx, uint32_t begin, uint32_t end) const;

  /// Draws the next process-unique seal id (atomic; seals run on pools).
  static uint64_t NextSealId();

  /// Back to the default-constructed state (empty arena, no views).
  void Reset();

  /// The one backing buffer every span below points into: heap-owned
  /// (Seal, snapshot decode) or borrowed from a mapped snapshot file.
  Arena arena_;

  /// One past the largest IndexId the sealed arrays cover.
  size_t universe_ = 0;

  /// See seal_id(). Not persisted: decode/map draws a fresh one.
  uint64_t seal_id_ = 0;

  /// Per-term cost under the empty configuration (heap for unordered
  /// slots, infinite for ordered/probe slots).
  ArenaSpan<double> term_bases_;
  /// Index-major term matrix: row id (length NumTerms()) holds every
  /// term's cost under the singleton configuration {id}; entries for
  /// terms the index cannot serve equal the term's base. Configuration
  /// pricing min-folds whole rows, contiguously.
  ArenaSpan<double> per_index_values_;

  /// CSR posting lists over [0, universe_): for id, the terms t (with
  /// their per-index values) where matrix[id][t] < term_bases_[t] —
  /// the only terms whose resolved min the index can ever lower.
  ArenaSpan<uint32_t> posting_offsets_;  // universe_ + 1 entries
  ArenaSpan<uint32_t> posting_terms_;
  ArenaSpan<double> posting_values_;
  /// Ascending ids with a non-empty posting list.
  ArenaSpan<IndexId> posting_ids_;

  ArenaSpan<Plan> plans_;  // ascending internal_cost
  ArenaSpan<uint32_t> plan_term_ids_;
  ArenaSpan<double> plan_multipliers_;
  size_t plans_pruned_ = 0;
};

}  // namespace pinum

#endif  // PINUM_INUM_SEALED_CACHE_H_
