// The INUM plan cache: internal plan costs plus leaf slots, and the
// cost-derivation arithmetic that replaces optimizer calls (paper,
// Section II).
#ifndef PINUM_INUM_CACHE_H_
#define PINUM_INUM_CACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "inum/access_cost_table.h"
#include "optimizer/path.h"

namespace pinum {

/// One cached plan: the configuration-independent "internal" cost of its
/// joins/sorts/aggregation, plus one leaf slot per query table describing
/// what the plan needs from that table's access path.
struct CachedPlan {
  /// cost.total minus all leaf access costs at harvest time.
  double internal_cost = 0;
  /// One slot per table position, ascending.
  std::vector<LeafSlot> slots;
  /// True when the plan contains a nested-loop join.
  bool has_nlj = false;
  /// Structure signature (operator tree), for redundancy analysis.
  std::string signature;

  /// Dedup key: the slot requirements (kind, column, multiplier).
  std::string RequirementKey() const;
};

/// Per-query plan cache + access-cost table. Once built (by either the
/// classic INUM procedure or PINUM's hooked calls), `Cost` answers
/// what-if questions with pure arithmetic — no optimizer involved.
class InumCache {
 public:
  /// Harvests `plan` into the cache (deduplicating by requirement key,
  /// keeping the smaller internal cost). Ordered leaf requirements whose
  /// order the plan does not consume (no merge join / streaming
  /// aggregation / top-level ORDER BY relies on them) are downgraded to
  /// unordered, making the cached plan usable under any configuration
  /// with identical internal cost. `top_order_matters` should be true
  /// when the query has an ORDER BY.
  void AddPlan(const Path& plan, const Catalog& catalog,
               bool top_order_matters = true);

  AccessCostTable* mutable_access() { return &access_; }
  const AccessCostTable& access() const { return access_; }

  /// Estimated cost of the query under `config` (a set of candidate
  /// index ids): min over cached plans of
  ///   internal + sum over slots of multiplier x AC(slot, config).
  double Cost(const IndexConfig& config) const;

  /// The winning cached plan under `config`; nullptr if none applies.
  const CachedPlan* BestPlan(const IndexConfig& config) const;

  /// Cost of one cached plan under `config` (infinite when some slot
  /// requirement cannot be met).
  double PlanCost(const CachedPlan& plan, const IndexConfig& config) const;

  size_t NumPlans() const { return plans_.size(); }
  const std::vector<CachedPlan>& plans() const { return plans_; }

  /// Number of distinct plan-tree signatures (the "unique plans" count of
  /// the paper's Section IV analysis). Maintained incrementally by
  /// AddPlan — O(1), not a per-call set rebuild.
  size_t NumUniqueSignatures() const { return sig_counts_.size(); }

 private:
  std::vector<CachedPlan> plans_;
  std::map<std::string, size_t> by_key_;
  /// Reference counts of plan signatures (a key collision can replace a
  /// plan with one of a different signature, so plain insertion is not
  /// enough to keep the distinct count exact).
  std::map<std::string, size_t> sig_counts_;
  AccessCostTable access_;
};

}  // namespace pinum

#endif  // PINUM_INUM_CACHE_H_
