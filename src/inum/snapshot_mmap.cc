#include "inum/snapshot_mmap.h"

#include <utility>

#include "common/failpoint.h"
#include "inum/snapshot_internal.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pinum {

using snapshot_internal::AnnotateFile;
using snapshot_internal::CacheRecord;
using snapshot_internal::CheckEpochCompatible;
using snapshot_internal::DecodeEpoch;
using snapshot_internal::DecodeQueries;
using snapshot_internal::kHeaderBytes;
using snapshot_internal::SliceCacheRecords;
using snapshot_internal::SnapshotView;
using snapshot_internal::ValidateFraming;

#if defined(_WIN32)

StatusOr<MappedWorkloadSnapshot> MappedWorkloadSnapshot::Map(
    const std::string& path, const SnapshotEpoch& expected) {
  (void)path;
  (void)expected;
  return Status::Unimplemented(
      "mapped snapshots require POSIX mmap; use LoadSnapshot");
}

#else

namespace {

/// RAII wrapper for one read-only MAP_PRIVATE file mapping. The mapped
/// base is page-aligned, so a file offset's alignment equals the mapped
/// pointer's alignment — the property the 8-aligned v3 cache records
/// rely on.
class MappedFile {
 public:
  static StatusOr<std::shared_ptr<const MappedFile>> Open(
      const std::string& path) {
    {
      Status injected = FailPoint::Check("snapshot.mmap.map");
      if (!injected.ok()) return AnnotateFile(std::move(injected), path);
    }
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::NotFound("cannot open snapshot " + path);
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::Internal("cannot stat snapshot " + path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    auto file = std::make_shared<MappedFile>();
    if (size > 0) {
      // mmap rejects zero-length maps; an empty file skips straight to
      // framing validation, which reports the truncation (kOutOfRange).
      void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (base == MAP_FAILED) {
        ::close(fd);
        return Status::Internal("cannot mmap snapshot " + path);
      }
      file->base_ = base;
      file->size_ = size;
    }
    // The mapping outlives the descriptor (POSIX keeps mapped pages
    // valid after close).
    ::close(fd);
    return std::shared_ptr<const MappedFile>(std::move(file));
  }

  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (base_ != nullptr) ::munmap(base_, size_);
  }

  const char* data() const { return static_cast<const char*>(base_); }
  size_t size() const { return size_; }

 private:
  void* base_ = nullptr;
  size_t size_ = 0;
};

}  // namespace

StatusOr<MappedWorkloadSnapshot> MappedWorkloadSnapshot::Map(
    const std::string& path, const SnapshotEpoch& expected) {
  PINUM_ASSIGN_OR_RETURN(std::shared_ptr<const MappedFile> file,
                         MappedFile::Open(path));

  // One full pass over the bytes (the checksum), then O(sections +
  // queries) framing — identical checks, in identical order, to the
  // decode path's OpenSnapshot.
  SnapshotView view;
  PINUM_RETURN_IF_ERROR(
      AnnotateFile(ValidateFraming(file->data(), file->size(), &view), path));
  PINUM_ASSIGN_OR_RETURN(const SnapshotEpoch stored, DecodeEpoch(view));
  PINUM_RETURN_IF_ERROR(CheckEpochCompatible(stored, expected));

  MappedWorkloadSnapshot snapshot;
  snapshot.universe = stored.universe;
  PINUM_RETURN_IF_ERROR(AnnotateFile(
      DecodeQueries(view, &snapshot.query_names, &snapshot.query_stamps),
      path));

  std::vector<CacheRecord> records;
  PINUM_RETURN_IF_ERROR(AnnotateFile(
      SliceCacheRecords(view, snapshot.query_names.size(), &records), path));

  // Bind each cache's views straight into the mapping. Validation runs
  // per image *before* the views are installed; any rejected image
  // aborts the whole map with no cache handed out. Each cache's arena
  // co-owns the MappedFile, so caches stay valid after this snapshot
  // struct (and its `mapping` handle) are gone.
  snapshot.sealed.resize(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    Status st = SnapshotCodec::View(records[i].data, records[i].size, file,
                                    &snapshot.sealed[i]);
    if (!st.ok()) {
      return AnnotateFile(
          Status(st.code(), st.message() + " (cache record " +
                                std::to_string(i) + " at file offset " +
                                std::to_string(records[i].data -
                                               file->data()) +
                                ")"),
          path);
    }
  }
  snapshot.mapped_bytes = file->size();
  snapshot.mapping = std::move(file);
  return snapshot;
}

#endif  // !defined(_WIN32)

}  // namespace pinum
