#include "inum/sealed_cache.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace pinum {

namespace {

/// True when slot `a`'s priced contribution is <= slot `b`'s under every
/// configuration, in exact floating-point arithmetic:
///  - equal requirements with a no-larger multiplier, or
///  - an unordered slot against an ordered one (for any table and config,
///    Unordered <= Ordered: every ordered option is also an unordered
///    option, and the heap only lowers the unordered minimum).
/// Probe slots are incomparable with scan slots — a probe's unit cost has
/// no ordering relation to a scan's.
bool SlotLeq(const LeafSlot& a, const LeafSlot& b) {
  if (a.table_pos != b.table_pos) return false;
  if (a.multiplier > b.multiplier) return false;
  switch (a.req) {
    case LeafReqKind::kUnordered:
      return b.req != LeafReqKind::kProbe;
    case LeafReqKind::kOrdered:
      return b.req == LeafReqKind::kOrdered && a.column == b.column;
    case LeafReqKind::kProbe:
      return b.req == LeafReqKind::kProbe && a.column == b.column;
  }
  return false;
}

/// True when plan `a` prices <= plan `b` under every configuration, so
/// `b` can never win and is safe to prune without changing Cost() by even
/// one bit. Requires pointwise slot comparability plus a no-larger
/// internal cost; no fuzz — sealing must preserve exact equality with the
/// unsealed cache, unlike the optimizer's build-time dominance which may
/// trade epsilon regressions for a smaller export.
bool Dominates(const CachedPlan& a, const CachedPlan& b) {
  if (a.internal_cost > b.internal_cost) return false;
  if (a.slots.size() != b.slots.size()) return false;
  for (size_t i = 0; i < a.slots.size(); ++i) {
    if (!SlotLeq(a.slots[i], b.slots[i])) return false;
  }
  return true;
}

}  // namespace

SealedCache SealedCache::Seal(const InumCache& cache, IndexId num_index_ids) {
  SealedCache sealed;
  const std::vector<CachedPlan>& plans = cache.plans();
  const AccessCostTable& access = cache.access();
  const size_t n = plans.size();
  const size_t universe =
      static_cast<size_t>(std::max<IndexId>(num_index_ids, 0));

  // ---- Terms: one per distinct (pos, req, column) slot requirement
  // across all plans, the dense per-index row filled through the same
  // AccessCostTable queries the naive path issues — singleton
  // configurations, so every entry is the exact double the unsealed
  // Cost() would fold into its min. ----
  std::vector<Term> terms;
  std::vector<bool> term_feasible;
  std::map<std::tuple<int, LeafReqKind, ColumnRef>, uint32_t> term_ids;
  auto term_of = [&](const LeafSlot& slot) -> uint32_t {
    const ColumnRef column =
        slot.req == LeafReqKind::kUnordered ? ColumnRef{} : slot.column;
    const auto key = std::make_tuple(slot.table_pos, slot.req, column);
    auto it = term_ids.find(key);
    if (it != term_ids.end()) return it->second;

    Term term;
    term.per_index.resize(universe);
    IndexConfig single(1);
    auto price = [&](const IndexConfig& config) {
      switch (slot.req) {
        case LeafReqKind::kUnordered:
          return access.Unordered(slot.table_pos, config);
        case LeafReqKind::kOrdered:
          return access.Ordered(slot.table_pos, column, config);
        case LeafReqKind::kProbe:
          return access.Probe(slot.table_pos, column, config);
      }
      return kInfiniteCost;
    };
    term.base = price({});
    bool feasible = !IsInfinite(term.base);
    for (size_t id = 0; id < universe; ++id) {
      single[0] = static_cast<IndexId>(id);
      term.per_index[id] = price(single);
      feasible = feasible || !IsInfinite(term.per_index[id]);
    }
    const uint32_t tid = static_cast<uint32_t>(terms.size());
    terms.push_back(std::move(term));
    term_feasible.push_back(feasible);
    term_ids.emplace(key, tid);
    return tid;
  };

  std::vector<std::vector<uint32_t>> plan_terms(n);
  for (size_t i = 0; i < n; ++i) {
    plan_terms[i].reserve(plans[i].slots.size());
    for (const LeafSlot& slot : plans[i].slots) {
      plan_terms[i].push_back(term_of(slot));
    }
  }

  // ---- Pruning. Two exact rules, neither able to move Cost() by a bit:
  // a plan with a term no universe index (nor the heap) can serve prices
  // infinite under every configuration; a dominated plan prices >= its
  // (unpruned) dominator under every configuration. A dominator must
  // itself be unpruned, which keeps exactly one plan of every
  // mutual-dominance group; dominance is transitive, so survivors cover
  // the pruned plans' dominators too. ----
  std::vector<bool> pruned(n, false);
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t t : plan_terms[i]) {
      if (!term_feasible[t]) {
        pruned[i] = true;
        break;
      }
    }
  }
  for (size_t j = 0; j < n; ++j) {
    if (pruned[j]) continue;
    for (size_t i = 0; i < n; ++i) {
      if (i == j || pruned[i]) continue;
      if (Dominates(plans[i], plans[j])) {
        pruned[j] = true;
        break;
      }
    }
  }

  // ---- Survivors, by ascending internal cost (stable: equal internal
  // costs keep their build order), referencing only the terms they
  // actually use. ----
  std::vector<size_t> order;
  for (size_t i = 0; i < n; ++i) {
    if (!pruned[i]) order.push_back(i);
  }
  sealed.plans_pruned_ = n - order.size();
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return plans[a].internal_cost < plans[b].internal_cost;
  });

  std::vector<uint32_t> remap(terms.size(), UINT32_MAX);
  for (size_t idx : order) {
    const CachedPlan& plan = plans[idx];
    Plan compact;
    compact.internal_cost = plan.internal_cost;
    compact.first_slot = static_cast<uint32_t>(sealed.plan_term_ids_.size());
    compact.num_slots = static_cast<uint32_t>(plan.slots.size());
    for (size_t s = 0; s < plan.slots.size(); ++s) {
      uint32_t& target = remap[plan_terms[idx][s]];
      if (target == UINT32_MAX) {
        target = static_cast<uint32_t>(sealed.terms_.size());
        sealed.terms_.push_back(std::move(terms[plan_terms[idx][s]]));
      }
      sealed.plan_term_ids_.push_back(target);
      sealed.plan_multipliers_.push_back(plan.slots[s].multiplier);
    }
    sealed.plans_.push_back(compact);
  }
  return sealed;
}

double SealedCache::Cost(const IndexConfig& config) const {
  // Resolve every term once per configuration. The scratch buffer is
  // thread-local so concurrent Cost() calls (the batched evaluator prices
  // configurations on a pool) never share it.
  static thread_local std::vector<double> values;
  values.resize(terms_.size());
  const size_t universe = terms_.empty() ? 0 : terms_[0].per_index.size();
  for (size_t t = 0; t < terms_.size(); ++t) {
    const Term& term = terms_[t];
    double v = term.base;
    const double* row = term.per_index.data();
    for (IndexId id : config) {
      // Ids outside the sealed universe price as absent, like ids missing
      // from the unsealed table's per-slot maps.
      if (id >= 0 && static_cast<size_t>(id) < universe) {
        v = std::min(v, row[id]);
      }
    }
    values[t] = v;
  }

  double best = kInfiniteCost;
  for (const Plan& plan : plans_) {
    // Plans are sorted by internal cost, a lower bound on plan cost.
    if (plan.internal_cost >= best) break;
    double cost = plan.internal_cost;
    bool feasible = true;
    const uint32_t end = plan.first_slot + plan.num_slots;
    for (uint32_t s = plan.first_slot; s < end; ++s) {
      const double ac = values[plan_term_ids_[s]];
      if (IsInfinite(ac)) {
        feasible = false;
        break;
      }
      cost += plan_multipliers_[s] * ac;
    }
    if (feasible && cost < best) best = cost;
  }
  return best;
}

}  // namespace pinum
