#include "inum/sealed_cache.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <map>
#include <tuple>

#include "common/simd.h"

namespace pinum {

namespace {

/// True when slot `a`'s priced contribution is <= slot `b`'s under every
/// configuration, in exact floating-point arithmetic:
///  - equal requirements with a no-larger multiplier, or
///  - an unordered slot against an ordered one (for any table and config,
///    Unordered <= Ordered: every ordered option is also an unordered
///    option, and the heap only lowers the unordered minimum).
/// Probe slots are incomparable with scan slots — a probe's unit cost has
/// no ordering relation to a scan's.
bool SlotLeq(const LeafSlot& a, const LeafSlot& b) {
  if (a.table_pos != b.table_pos) return false;
  if (a.multiplier > b.multiplier) return false;
  switch (a.req) {
    case LeafReqKind::kUnordered:
      return b.req != LeafReqKind::kProbe;
    case LeafReqKind::kOrdered:
      return b.req == LeafReqKind::kOrdered && a.column == b.column;
    case LeafReqKind::kProbe:
      return b.req == LeafReqKind::kProbe && a.column == b.column;
  }
  return false;
}

/// True when plan `a` prices <= plan `b` under every configuration, so
/// `b` can never win and is safe to prune without changing Cost() by even
/// one bit. Requires pointwise slot comparability plus a no-larger
/// internal cost; no fuzz — sealing must preserve exact equality with the
/// unsealed cache, unlike the optimizer's build-time dominance which may
/// trade epsilon regressions for a smaller export.
bool Dominates(const CachedPlan& a, const CachedPlan& b) {
  if (a.internal_cost > b.internal_cost) return false;
  if (a.slots.size() != b.slots.size()) return false;
  for (size_t i = 0; i < a.slots.size(); ++i) {
    if (!SlotLeq(a.slots[i], b.slots[i])) return false;
  }
  return true;
}

/// One distinct (table position, requirement kind, column) slot
/// requirement during the seal: base cost plus the dense per-index row
/// the old naive fill produced one map probe at a time. The row now
/// starts as a SIMD fill of the base — an id with no entry in the
/// table's access map prices exactly like the empty configuration
/// (Unordered falls back to the heap, Ordered/Probe to infinite) — and
/// only the table's few recorded indexes are patched in with their
/// singleton-configuration price, the same double the naive path
/// computes for them.
struct BuildTerm {
  double base = kInfiniteCost;
  std::vector<double> row;
  bool feasible = false;
};

}  // namespace

uint64_t SealedCache::NextSealId() {
  // Ids start at 1 so the default CostContext (seal_id 0) can never match
  // a real cache and read as "already prepared".
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1) + 1;
}

SealedCache SealedCache::Seal(const InumCache& cache, IndexId num_index_ids) {
  SealedCache sealed;
  sealed.seal_id_ = NextSealId();
  const std::vector<CachedPlan>& plans = cache.plans();
  const AccessCostTable& access = cache.access();
  const size_t n = plans.size();
  const size_t universe =
      static_cast<size_t>(std::max<IndexId>(num_index_ids, 0));
  sealed.universe_ = universe;

  // ---- Terms: one per distinct (pos, req, column) slot requirement
  // across all plans. ----
  std::vector<BuildTerm> terms;
  std::map<std::tuple<int, LeafReqKind, ColumnRef>, uint32_t> term_ids;
  auto term_of = [&](const LeafSlot& slot) -> uint32_t {
    const ColumnRef column =
        slot.req == LeafReqKind::kUnordered ? ColumnRef{} : slot.column;
    const auto key = std::make_tuple(slot.table_pos, slot.req, column);
    auto it = term_ids.find(key);
    if (it != term_ids.end()) return it->second;

    BuildTerm term;
    IndexConfig single(1);
    auto price = [&](const IndexConfig& config) {
      switch (slot.req) {
        case LeafReqKind::kUnordered:
          return access.Unordered(slot.table_pos, config);
        case LeafReqKind::kOrdered:
          return access.Ordered(slot.table_pos, column, config);
        case LeafReqKind::kProbe:
          return access.Probe(slot.table_pos, column, config);
      }
      return kInfiniteCost;
    };
    term.base = price({});
    term.feasible = !IsInfinite(term.base);
    term.row.resize(universe);
    simd::Fill(term.row.data(), term.base, universe);
    if (const auto* by_index = access.IndexCostsAt(slot.table_pos)) {
      for (const auto& [id, costs] : *by_index) {
        (void)costs;
        if (id < 0 || static_cast<size_t>(id) >= universe) continue;
        single[0] = id;
        const double v = price(single);
        term.row[static_cast<size_t>(id)] = v;
        term.feasible = term.feasible || !IsInfinite(v);
      }
    }
    const uint32_t tid = static_cast<uint32_t>(terms.size());
    terms.push_back(std::move(term));
    term_ids.emplace(key, tid);
    return tid;
  };

  std::vector<std::vector<uint32_t>> plan_terms(n);
  for (size_t i = 0; i < n; ++i) {
    plan_terms[i].reserve(plans[i].slots.size());
    for (const LeafSlot& slot : plans[i].slots) {
      plan_terms[i].push_back(term_of(slot));
    }
  }

  // ---- Pruning. Two exact rules, neither able to move Cost() by a bit:
  // a plan with a term no universe index (nor the heap) can serve prices
  // infinite under every configuration; a dominated plan prices >= its
  // (unpruned) dominator under every configuration. A dominator must
  // itself be unpruned, which keeps exactly one plan of every
  // mutual-dominance group; dominance is transitive, so survivors cover
  // the pruned plans' dominators too. ----
  std::vector<bool> pruned(n, false);
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t t : plan_terms[i]) {
      if (!terms[t].feasible) {
        pruned[i] = true;
        break;
      }
    }
  }
  for (size_t j = 0; j < n; ++j) {
    if (pruned[j]) continue;
    for (size_t i = 0; i < n; ++i) {
      if (i == j || pruned[i]) continue;
      if (Dominates(plans[i], plans[j])) {
        pruned[j] = true;
        break;
      }
    }
  }

  // ---- Survivors, by ascending internal cost (stable: equal internal
  // costs keep their build order), referencing only the terms they
  // actually use. ----
  std::vector<size_t> order;
  for (size_t i = 0; i < n; ++i) {
    if (!pruned[i]) order.push_back(i);
  }
  sealed.plans_pruned_ = n - order.size();
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return plans[a].internal_cost < plans[b].internal_cost;
  });

  std::vector<uint32_t> remap(terms.size(), UINT32_MAX);
  std::vector<uint32_t> kept;  // original term ids, in remapped order
  for (size_t idx : order) {
    const CachedPlan& plan = plans[idx];
    Plan compact;
    compact.internal_cost = plan.internal_cost;
    compact.first_slot = static_cast<uint32_t>(sealed.plan_term_ids_.size());
    compact.num_slots = static_cast<uint32_t>(plan.slots.size());
    for (size_t s = 0; s < plan.slots.size(); ++s) {
      uint32_t& target = remap[plan_terms[idx][s]];
      if (target == UINT32_MAX) {
        target = static_cast<uint32_t>(kept.size());
        kept.push_back(plan_terms[idx][s]);
      }
      sealed.plan_term_ids_.push_back(target);
      sealed.plan_multipliers_.push_back(plan.slots[s].multiplier);
    }
    sealed.plans_.push_back(compact);
  }

  // ---- Serving layout: bases, the index-major matrix (row id = every
  // surviving term's cost under {id}; the transpose of the build rows),
  // and CSR posting lists holding the strict improvements — entries with
  // row[id] < base, the only ones a min-fold can ever act on. ----
  const size_t num_terms = kept.size();
  sealed.term_bases_.resize(num_terms);
  for (size_t k = 0; k < num_terms; ++k) {
    sealed.term_bases_[k] = terms[kept[k]].base;
  }
  sealed.per_index_values_.resize(universe * num_terms);
  for (size_t k = 0; k < num_terms; ++k) {
    const double* row = terms[kept[k]].row.data();
    for (size_t id = 0; id < universe; ++id) {
      sealed.per_index_values_[id * num_terms + k] = row[id];
    }
  }

  sealed.posting_offsets_.assign(universe + 1, 0);
  for (size_t k = 0; k < num_terms; ++k) {
    const BuildTerm& term = terms[kept[k]];
    for (size_t id = 0; id < universe; ++id) {
      if (term.row[id] < term.base) ++sealed.posting_offsets_[id + 1];
    }
  }
  for (size_t id = 0; id < universe; ++id) {
    sealed.posting_offsets_[id + 1] += sealed.posting_offsets_[id];
  }
  sealed.posting_terms_.resize(sealed.posting_offsets_[universe]);
  sealed.posting_values_.resize(sealed.posting_offsets_[universe]);
  std::vector<uint32_t> cursor(sealed.posting_offsets_.begin(),
                               sealed.posting_offsets_.end() - 1);
  // Term-major outer loop keeps each id's postings sorted by term.
  for (size_t k = 0; k < num_terms; ++k) {
    const BuildTerm& term = terms[kept[k]];
    for (size_t id = 0; id < universe; ++id) {
      if (term.row[id] < term.base) {
        const uint32_t at = cursor[id]++;
        sealed.posting_terms_[at] = static_cast<uint32_t>(k);
        sealed.posting_values_[at] = term.row[id];
      }
    }
  }
  for (size_t id = 0; id < universe; ++id) {
    if (sealed.posting_offsets_[id + 1] > sealed.posting_offsets_[id]) {
      sealed.posting_ids_.push_back(static_cast<IndexId>(id));
    }
  }
  return sealed;
}

double SealedCache::ScanPlans(const double* values, double seed) const {
  double best = seed;
  for (const Plan& plan : plans_) {
    // Plans are sorted by internal cost, a lower bound on plan cost.
    if (plan.internal_cost >= best) break;
    double cost = plan.internal_cost;
    bool feasible = true;
    const uint32_t end = plan.first_slot + plan.num_slots;
    for (uint32_t s = plan.first_slot; s < end; ++s) {
      const double ac = values[plan_term_ids_[s]];
      if (IsInfinite(ac)) {
        feasible = false;
        break;
      }
      cost += plan_multipliers_[s] * ac;
    }
    if (feasible && cost < best) best = cost;
  }
  return best;
}

void SealedCache::PrepareContext(const IndexConfig& base,
                                 CostContext* ctx) const {
  const size_t num_terms = term_bases_.size();
  ctx->values_.resize(num_terms);
  std::copy(term_bases_.begin(), term_bases_.end(), ctx->values_.begin());
  for (IndexId id : base) {
    // Ids outside the sealed universe price as absent, like ids missing
    // from the unsealed table's per-slot maps. Per term, the fold order
    // matches the unsealed min exactly: base first, then each
    // configuration id in configuration order.
    if (id >= 0 && static_cast<size_t>(id) < universe_) {
      simd::MinFoldInto(
          ctx->values_.data(),
          per_index_values_.data() + static_cast<size_t>(id) * num_terms,
          num_terms);
    }
  }
  ctx->base_cost_ = ScanPlans(ctx->values_.data(), kInfiniteCost);
  ctx->undo_.clear();
  ctx->seal_id_ = seal_id_;
}

double SealedCache::Cost(const IndexConfig& config) const {
  // One configuration is a context prepared and read once. The scratch
  // context is thread-local so concurrent Cost() calls (the batched
  // evaluator prices configurations on a pool) never share it.
  static thread_local CostContext scratch;
  PrepareContext(config, &scratch);
  return scratch.base_cost_;
}

double SealedCache::CostOverlay(CostContext* ctx, uint32_t begin,
                                uint32_t end) const {
  // A context prepared by a different seal indexes a dead term layout;
  // folding postings into it serves silently wrong (or out-of-range)
  // costs. Free in release builds; callers that legitimately hold
  // contexts across reseals compare seal ids and re-prepare first.
  assert(ctx->seal_id_ == seal_id_ &&
         "CostContext is stale: the cache was resealed since PrepareContext");
  // Overlay the extra index's postings onto the pinned term values. A
  // posting with value >= the pinned min cannot change it (pinned values
  // are pointwise <= term bases, postings are < base but not necessarily
  // < the pinned min); terms without a posting satisfy
  // row[extra] >= base >= pinned, so skipping them is exact.
  ctx->undo_.clear();
  for (uint32_t p = begin; p < end; ++p) {
    double& value = ctx->values_[posting_terms_[p]];
    if (posting_values_[p] < value) {
      ctx->undo_.emplace_back(posting_terms_[p], value);
      value = posting_values_[p];
    }
  }
  if (ctx->undo_.empty()) return ctx->base_cost_;

  // The base cost seeds the early exit: term values only went down, so
  // every plan's cost is <= its base-configuration cost and the base
  // winner still prices <= base_cost — the scan returns the exact
  // minimum, identical (bitwise) to a from-scratch scan's.
  const double best = ScanPlans(ctx->values_.data(), ctx->base_cost_);
  for (const auto& [term, previous] : ctx->undo_) {
    ctx->values_[term] = previous;
  }
  return best;
}

void SealedCache::ExtendContext(CostContext* ctx, IndexId extra) const {
  assert(ctx->seal_id_ == seal_id_ &&
         "CostContext is stale: the cache was resealed since PrepareContext");
  if (extra < 0 || static_cast<size_t>(extra) >= universe_) return;
  // The permanent flavor of CostOverlay: fold and keep, no undo.
  bool changed = false;
  const uint32_t begin = posting_offsets_[static_cast<size_t>(extra)];
  const uint32_t end = posting_offsets_[static_cast<size_t>(extra) + 1];
  for (uint32_t p = begin; p < end; ++p) {
    double& value = ctx->values_[posting_terms_[p]];
    if (posting_values_[p] < value) {
      value = posting_values_[p];
      changed = true;
    }
  }
  if (changed) {
    ctx->base_cost_ = ScanPlans(ctx->values_.data(), ctx->base_cost_);
  }
}

double SealedCache::CostWithExtra(CostContext* ctx, IndexId extra) const {
  assert(ctx->seal_id_ == seal_id_ &&
         "CostContext is stale: the cache was resealed since PrepareContext");
  if (extra < 0 || static_cast<size_t>(extra) >= universe_) {
    return ctx->base_cost_;
  }
  return CostOverlay(ctx, posting_offsets_[static_cast<size_t>(extra)],
                     posting_offsets_[static_cast<size_t>(extra) + 1]);
}

void SealedCache::CostExtrasInto(CostContext* ctx, const IndexId* extras,
                                 size_t n, double* out) const {
  assert(ctx->seal_id_ == seal_id_ &&
         "CostContext is stale: the cache was resealed since PrepareContext");
  // Most extras cannot lower any of this query's terms (their posting
  // lists are empty — candidate indexes on other tables, or indexes the
  // heap already beats), so the whole row starts as the base cost and
  // only posting-bearing extras are priced individually.
  simd::Fill(out, ctx->base_cost_, n);
  const uint32_t* offsets = posting_offsets_.data();
  for (size_t i = 0; i < n; ++i) {
    const IndexId extra = extras[i];
    if (extra < 0 || static_cast<size_t>(extra) >= universe_) continue;
    const uint32_t begin = offsets[static_cast<size_t>(extra)];
    const uint32_t end = offsets[static_cast<size_t>(extra) + 1];
    if (begin == end) continue;
    out[i] = CostOverlay(ctx, begin, end);
  }
}

void SealedCache::CostActiveExtrasInto(CostContext* ctx,
                                       const uint32_t* position_of_id,
                                       size_t map_size, double* out) const {
  assert(ctx->seal_id_ == seal_id_ &&
         "CostContext is stale: the cache was resealed since PrepareContext");
  // Inverted loop: instead of asking "does this swept id have postings
  // here" per extra, walk the (usually much shorter) posting-bearing id
  // list and ask "is this id being swept".
  const uint32_t* offsets = posting_offsets_.data();
  for (const IndexId id : posting_ids_) {
    if (static_cast<size_t>(id) >= map_size) continue;
    const uint32_t slot = position_of_id[static_cast<size_t>(id)];
    if (slot == kNotSwept) continue;
    out[slot] = CostOverlay(ctx, offsets[static_cast<size_t>(id)],
                            offsets[static_cast<size_t>(id) + 1]);
  }
}

}  // namespace pinum
