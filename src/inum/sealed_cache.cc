#include "inum/sealed_cache.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <limits>
#include <map>
#include <tuple>
#include <type_traits>

#include "common/simd.h"

namespace pinum {

namespace {

/// True when slot `a`'s priced contribution is <= slot `b`'s under every
/// configuration, in exact floating-point arithmetic:
///  - equal requirements with a no-larger multiplier, or
///  - an unordered slot against an ordered one (for any table and config,
///    Unordered <= Ordered: every ordered option is also an unordered
///    option, and the heap only lowers the unordered minimum).
/// Probe slots are incomparable with scan slots — a probe's unit cost has
/// no ordering relation to a scan's.
bool SlotLeq(const LeafSlot& a, const LeafSlot& b) {
  if (a.table_pos != b.table_pos) return false;
  if (a.multiplier > b.multiplier) return false;
  switch (a.req) {
    case LeafReqKind::kUnordered:
      return b.req != LeafReqKind::kProbe;
    case LeafReqKind::kOrdered:
      return b.req == LeafReqKind::kOrdered && a.column == b.column;
    case LeafReqKind::kProbe:
      return b.req == LeafReqKind::kProbe && a.column == b.column;
  }
  return false;
}

/// True when plan `a` prices <= plan `b` under every configuration, so
/// `b` can never win and is safe to prune without changing Cost() by even
/// one bit. Requires pointwise slot comparability plus a no-larger
/// internal cost; no fuzz — sealing must preserve exact equality with the
/// unsealed cache, unlike the optimizer's build-time dominance which may
/// trade epsilon regressions for a smaller export.
bool Dominates(const CachedPlan& a, const CachedPlan& b) {
  if (a.internal_cost > b.internal_cost) return false;
  if (a.slots.size() != b.slots.size()) return false;
  for (size_t i = 0; i < a.slots.size(); ++i) {
    if (!SlotLeq(a.slots[i], b.slots[i])) return false;
  }
  return true;
}

/// One distinct (table position, requirement kind, column) slot
/// requirement during the seal: base cost plus the dense per-index row
/// the old naive fill produced one map probe at a time. The row now
/// starts as a SIMD fill of the base — an id with no entry in the
/// table's access map prices exactly like the empty configuration
/// (Unordered falls back to the heap, Ordered/Probe to infinite) — and
/// only the table's few recorded indexes are patched in with their
/// singleton-configuration price, the same double the naive path
/// computes for them.
struct BuildTerm {
  double base = kInfiniteCost;
  std::vector<double> row;
  bool feasible = false;
};

}  // namespace

uint64_t SealedCache::NextSealId() {
  // Ids start at 1 so the default CostContext (seal_id 0) can never match
  // a real cache and read as "already prepared".
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1) + 1;
}

SealedCache& SealedCache::operator=(SealedCache&& other) noexcept {
  if (this == &other) return *this;
  arena_ = std::move(other.arena_);
  universe_ = other.universe_;
  seal_id_ = other.seal_id_;
  plans_pruned_ = other.plans_pruned_;
  term_bases_ = other.term_bases_;
  per_index_values_ = other.per_index_values_;
  posting_offsets_ = other.posting_offsets_;
  posting_terms_ = other.posting_terms_;
  posting_values_ = other.posting_values_;
  posting_ids_ = other.posting_ids_;
  plans_ = other.plans_;
  plan_term_ids_ = other.plan_term_ids_;
  plan_multipliers_ = other.plan_multipliers_;
  // The source must not keep views into an arena it no longer owns:
  // reset it to the default-constructed (empty-cache) state.
  other.Reset();
  return *this;
}

void SealedCache::Reset() {
  arena_ = Arena();
  universe_ = 0;
  seal_id_ = 0;
  plans_pruned_ = 0;
  term_bases_ = {};
  per_index_values_ = {};
  posting_offsets_ = {};
  posting_terms_ = {};
  posting_values_ = {};
  posting_ids_ = {};
  plans_ = {};
  plan_term_ids_ = {};
  plan_multipliers_ = {};
}

namespace {

static_assert(std::is_trivially_copyable_v<pinum::IndexId> &&
              sizeof(pinum::IndexId) == 4);

/// The flat arrays Seal computes, packed into one image afterwards.
struct SealedArrays {
  std::vector<double> term_bases;
  std::vector<double> per_index_values;
  std::vector<uint32_t> posting_offsets;
  std::vector<uint32_t> posting_terms;
  std::vector<double> posting_values;
  std::vector<IndexId> posting_ids;
  std::vector<uint32_t> plan_term_ids;
  std::vector<double> plan_multipliers;
};

}  // namespace

std::string SealedCache::PackEmptyImage() {
  // The empty universe's canonical form keeps the on-disk CSR invariant
  // (universe + 1 offsets): a single zero offset. Sealing an empty
  // build-time cache over a zero-id universe produces exactly that
  // image, and a cache restored from it is behaviourally identical to a
  // default-constructed one — with universe 0 no code path reads past
  // offset 0.
  const SealedCache empty = Seal(InumCache(), 0);
  return std::string(empty.arena_.data, empty.arena_.size);
}

void SealedCache::BindImage(Arena arena) {
  arena_ = std::move(arena);
  const char* d = arena_.data;
  uint64_t universe = 0;
  uint64_t pruned = 0;
  std::memcpy(&universe, d, 8);
  std::memcpy(&pruned, d + 8, 8);
  universe_ = static_cast<size_t>(universe);
  plans_pruned_ = static_cast<size_t>(pruned);

  uint64_t dir[kImgArrayCount][2];
  std::memcpy(dir, d + kImageDirectoryAt, sizeof(dir));
  auto span_at = [&](size_t i, auto* tag) {
    using T = std::remove_pointer_t<decltype(tag)>;
    return ArenaSpan<T>(reinterpret_cast<const T*>(d + dir[i][0]),
                        static_cast<size_t>(dir[i][1]));
  };
  term_bases_ = span_at(kImgTermBases, static_cast<double*>(nullptr));
  per_index_values_ = span_at(kImgMatrix, static_cast<double*>(nullptr));
  posting_offsets_ =
      span_at(kImgPostingOffsets, static_cast<uint32_t*>(nullptr));
  posting_terms_ = span_at(kImgPostingTerms, static_cast<uint32_t*>(nullptr));
  posting_values_ = span_at(kImgPostingValues, static_cast<double*>(nullptr));
  posting_ids_ = span_at(kImgPostingIds, static_cast<IndexId*>(nullptr));
  plans_ = span_at(kImgPlans, static_cast<Plan*>(nullptr));
  plan_term_ids_ = span_at(kImgPlanTermIds, static_cast<uint32_t*>(nullptr));
  plan_multipliers_ =
      span_at(kImgPlanMultipliers, static_cast<double*>(nullptr));
  seal_id_ = NextSealId();
}

Status SealedCache::ValidateImage(const char* data, size_t size) {
  auto corrupt = [](const std::string& what) {
    return Status::Internal("snapshot corrupt: " + what);
  };
  if (size < kImageArraysAt) {
    return corrupt("cache image is smaller than its header and directory");
  }
  if (size % kArenaAlign != 0) {
    return corrupt("cache image size is not 8-byte aligned");
  }
  uint64_t universe64 = 0;
  std::memcpy(&universe64, data, 8);
  if (universe64 >
      static_cast<uint64_t>(std::numeric_limits<IndexId>::max())) {
    return corrupt("universe size does not fit IndexId");
  }
  const size_t universe = static_cast<size_t>(universe64);

  static constexpr size_t kElemBytes[kImgArrayCount] = {
      8, 8, 4, 4, 8, 4, sizeof(Plan), 4, 8};
  uint64_t dir[kImgArrayCount][2];
  std::memcpy(dir, data + kImageDirectoryAt, sizeof(dir));
  for (size_t i = 0; i < kImgArrayCount; ++i) {
    const uint64_t offset = dir[i][0];
    const uint64_t count = dir[i][1];
    if (offset % kArenaAlign != 0) {
      return corrupt("cache array offset is misaligned");
    }
    if (offset > size) {
      return corrupt("cache array offset is out of bounds");
    }
    // Division instead of count * elem: no overflow to exploit.
    if (count > (size - offset) / kElemBytes[i]) {
      return corrupt("cache array overruns its image");
    }
  }
  auto array = [&](size_t i, auto* tag) {
    using T = std::remove_pointer_t<decltype(tag)>;
    return ArenaSpan<T>(reinterpret_cast<const T*>(data + dir[i][0]),
                        static_cast<size_t>(dir[i][1]));
  };
  const auto term_bases = array(kImgTermBases, static_cast<double*>(nullptr));
  const auto matrix = array(kImgMatrix, static_cast<double*>(nullptr));
  const auto offsets =
      array(kImgPostingOffsets, static_cast<uint32_t*>(nullptr));
  const auto posting_terms =
      array(kImgPostingTerms, static_cast<uint32_t*>(nullptr));
  const auto posting_values =
      array(kImgPostingValues, static_cast<double*>(nullptr));
  const auto posting_ids =
      array(kImgPostingIds, static_cast<IndexId*>(nullptr));
  const auto plans = array(kImgPlans, static_cast<Plan*>(nullptr));
  const auto plan_term_ids =
      array(kImgPlanTermIds, static_cast<uint32_t*>(nullptr));
  const auto plan_multipliers =
      array(kImgPlanMultipliers, static_cast<double*>(nullptr));

  const size_t num_terms = term_bases.size();
  // Division instead of universe * num_terms: no overflow to exploit.
  if (num_terms == 0
          ? !matrix.empty()
          : matrix.size() % num_terms != 0 ||
                matrix.size() / num_terms != universe) {
    return corrupt("term matrix is not universe x terms");
  }
  if (offsets.size() != universe + 1) {
    return corrupt("posting offsets do not cover the universe");
  }
  if (offsets.front() != 0 || offsets.back() != posting_terms.size() ||
      posting_terms.size() != posting_values.size()) {
    return corrupt("posting lists are not closed by their offsets");
  }
  for (size_t id = 0; id < universe; ++id) {
    if (offsets[id] > offsets[id + 1]) {
      return corrupt("posting offsets are not monotone");
    }
  }
  for (size_t p = 0; p < posting_terms.size(); ++p) {
    if (posting_terms[p] >= num_terms) {
      return corrupt("posting names a term out of range");
    }
    if (!(posting_values[p] < term_bases[posting_terms[p]])) {
      return corrupt("posting is not a strict improvement over its base");
    }
  }
  // The stored posting-bearing id list (v3 stores it so mapped
  // construction needs no derivation pass) must be exactly the ids with
  // non-empty lists, ascending — the inverted sweep trusts it.
  size_t bearing = 0;
  for (size_t id = 0; id < universe; ++id) {
    if (offsets[id + 1] > offsets[id]) {
      if (bearing >= posting_ids.size() ||
          posting_ids[bearing] != static_cast<IndexId>(id)) {
        return corrupt("posting-bearing id list does not match the offsets");
      }
      ++bearing;
    }
  }
  if (bearing != posting_ids.size()) {
    return corrupt("posting-bearing id list does not match the offsets");
  }

  for (size_t i = 0; i < plans.size(); ++i) {
    if (i > 0 && !(plans[i - 1].internal_cost <= plans[i].internal_cost)) {
      return corrupt("plans are not sorted by internal cost");
    }
    if (static_cast<uint64_t>(plans[i].first_slot) + plans[i].num_slots >
        plan_term_ids.size()) {
      return corrupt("plan slots overrun the slot arrays");
    }
  }
  if (plan_term_ids.size() != plan_multipliers.size()) {
    return corrupt("plan slot arrays disagree in length");
  }
  for (uint32_t t : plan_term_ids) {
    if (t >= num_terms) return corrupt("plan names a term out of range");
  }
  return Status::OK();
}

SealedCache SealedCache::Seal(const InumCache& cache, IndexId num_index_ids) {
  const std::vector<CachedPlan>& plans = cache.plans();
  const AccessCostTable& access = cache.access();
  const size_t n = plans.size();
  const size_t universe =
      static_cast<size_t>(std::max<IndexId>(num_index_ids, 0));

  // ---- Terms: one per distinct (pos, req, column) slot requirement
  // across all plans. ----
  std::vector<BuildTerm> terms;
  std::map<std::tuple<int, LeafReqKind, ColumnRef>, uint32_t> term_ids;
  auto term_of = [&](const LeafSlot& slot) -> uint32_t {
    const ColumnRef column =
        slot.req == LeafReqKind::kUnordered ? ColumnRef{} : slot.column;
    const auto key = std::make_tuple(slot.table_pos, slot.req, column);
    auto it = term_ids.find(key);
    if (it != term_ids.end()) return it->second;

    BuildTerm term;
    IndexConfig single(1);
    auto price = [&](const IndexConfig& config) {
      switch (slot.req) {
        case LeafReqKind::kUnordered:
          return access.Unordered(slot.table_pos, config);
        case LeafReqKind::kOrdered:
          return access.Ordered(slot.table_pos, column, config);
        case LeafReqKind::kProbe:
          return access.Probe(slot.table_pos, column, config);
      }
      return kInfiniteCost;
    };
    term.base = price({});
    term.feasible = !IsInfinite(term.base);
    term.row.resize(universe);
    simd::Fill(term.row.data(), term.base, universe);
    if (const auto* by_index = access.IndexCostsAt(slot.table_pos)) {
      for (const auto& [id, costs] : *by_index) {
        (void)costs;
        if (id < 0 || static_cast<size_t>(id) >= universe) continue;
        single[0] = id;
        const double v = price(single);
        term.row[static_cast<size_t>(id)] = v;
        term.feasible = term.feasible || !IsInfinite(v);
      }
    }
    const uint32_t tid = static_cast<uint32_t>(terms.size());
    terms.push_back(std::move(term));
    term_ids.emplace(key, tid);
    return tid;
  };

  std::vector<std::vector<uint32_t>> plan_terms(n);
  for (size_t i = 0; i < n; ++i) {
    plan_terms[i].reserve(plans[i].slots.size());
    for (const LeafSlot& slot : plans[i].slots) {
      plan_terms[i].push_back(term_of(slot));
    }
  }

  // ---- Pruning. Two exact rules, neither able to move Cost() by a bit:
  // a plan with a term no universe index (nor the heap) can serve prices
  // infinite under every configuration; a dominated plan prices >= its
  // (unpruned) dominator under every configuration. A dominator must
  // itself be unpruned, which keeps exactly one plan of every
  // mutual-dominance group; dominance is transitive, so survivors cover
  // the pruned plans' dominators too. ----
  std::vector<bool> pruned(n, false);
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t t : plan_terms[i]) {
      if (!terms[t].feasible) {
        pruned[i] = true;
        break;
      }
    }
  }
  for (size_t j = 0; j < n; ++j) {
    if (pruned[j]) continue;
    for (size_t i = 0; i < n; ++i) {
      if (i == j || pruned[i]) continue;
      if (Dominates(plans[i], plans[j])) {
        pruned[j] = true;
        break;
      }
    }
  }

  // ---- Survivors, by ascending internal cost (stable: equal internal
  // costs keep their build order), referencing only the terms they
  // actually use. ----
  std::vector<size_t> order;
  for (size_t i = 0; i < n; ++i) {
    if (!pruned[i]) order.push_back(i);
  }
  const size_t plans_pruned = n - order.size();
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return plans[a].internal_cost < plans[b].internal_cost;
  });

  SealedArrays out;
  std::vector<Plan> out_plans;
  std::vector<uint32_t> remap(terms.size(), UINT32_MAX);
  std::vector<uint32_t> kept;  // original term ids, in remapped order
  for (size_t idx : order) {
    const CachedPlan& plan = plans[idx];
    Plan compact;
    compact.internal_cost = plan.internal_cost;
    compact.first_slot = static_cast<uint32_t>(out.plan_term_ids.size());
    compact.num_slots = static_cast<uint32_t>(plan.slots.size());
    for (size_t s = 0; s < plan.slots.size(); ++s) {
      uint32_t& target = remap[plan_terms[idx][s]];
      if (target == UINT32_MAX) {
        target = static_cast<uint32_t>(kept.size());
        kept.push_back(plan_terms[idx][s]);
      }
      out.plan_term_ids.push_back(target);
      out.plan_multipliers.push_back(plan.slots[s].multiplier);
    }
    out_plans.push_back(compact);
  }

  // ---- Serving layout: bases, the index-major matrix (row id = every
  // surviving term's cost under {id}; the transpose of the build rows),
  // and CSR posting lists holding the strict improvements — entries with
  // row[id] < base, the only ones a min-fold can ever act on. ----
  const size_t num_terms = kept.size();
  out.term_bases.resize(num_terms);
  for (size_t k = 0; k < num_terms; ++k) {
    out.term_bases[k] = terms[kept[k]].base;
  }
  out.per_index_values.resize(universe * num_terms);
  for (size_t k = 0; k < num_terms; ++k) {
    const double* row = terms[kept[k]].row.data();
    for (size_t id = 0; id < universe; ++id) {
      out.per_index_values[id * num_terms + k] = row[id];
    }
  }

  out.posting_offsets.assign(universe + 1, 0);
  for (size_t k = 0; k < num_terms; ++k) {
    const BuildTerm& term = terms[kept[k]];
    for (size_t id = 0; id < universe; ++id) {
      if (term.row[id] < term.base) ++out.posting_offsets[id + 1];
    }
  }
  for (size_t id = 0; id < universe; ++id) {
    out.posting_offsets[id + 1] += out.posting_offsets[id];
  }
  out.posting_terms.resize(out.posting_offsets[universe]);
  out.posting_values.resize(out.posting_offsets[universe]);
  std::vector<uint32_t> cursor(out.posting_offsets.begin(),
                               out.posting_offsets.end() - 1);
  // Term-major outer loop keeps each id's postings sorted by term.
  for (size_t k = 0; k < num_terms; ++k) {
    const BuildTerm& term = terms[kept[k]];
    for (size_t id = 0; id < universe; ++id) {
      if (term.row[id] < term.base) {
        const uint32_t at = cursor[id]++;
        out.posting_terms[at] = static_cast<uint32_t>(k);
        out.posting_values[at] = term.row[id];
      }
    }
  }
  for (size_t id = 0; id < universe; ++id) {
    if (out.posting_offsets[id + 1] > out.posting_offsets[id]) {
      out.posting_ids.push_back(static_cast<IndexId>(id));
    }
  }

  // ---- Pack the arrays into one relocatable arena image (the bytes a
  // v3 snapshot stores verbatim) and bind the serving views over it. ----
  struct Entry {
    const void* data;
    size_t count;
    size_t elem;
  };
  const Entry entries[kImgArrayCount] = {
      {out.term_bases.data(), out.term_bases.size(), 8},
      {out.per_index_values.data(), out.per_index_values.size(), 8},
      {out.posting_offsets.data(), out.posting_offsets.size(), 4},
      {out.posting_terms.data(), out.posting_terms.size(), 4},
      {out.posting_values.data(), out.posting_values.size(), 8},
      {out.posting_ids.data(), out.posting_ids.size(), 4},
      {out_plans.data(), out_plans.size(), sizeof(Plan)},
      {out.plan_term_ids.data(), out.plan_term_ids.size(), 4},
      {out.plan_multipliers.data(), out.plan_multipliers.size(), 8},
  };
  size_t at = kImageArraysAt;
  uint64_t dir[kImgArrayCount][2];
  for (size_t i = 0; i < kImgArrayCount; ++i) {
    dir[i][0] = at;
    dir[i][1] = entries[i].count;
    at += ArenaAlignUp(entries[i].count * entries[i].elem);
  }
  std::shared_ptr<char[]> buffer(new char[at]());
  const uint64_t universe64 = universe;
  const uint64_t pruned64 = plans_pruned;
  std::memcpy(buffer.get(), &universe64, 8);
  std::memcpy(buffer.get() + 8, &pruned64, 8);
  std::memcpy(buffer.get() + kImageDirectoryAt, dir, sizeof(dir));
  for (size_t i = 0; i < kImgArrayCount; ++i) {
    if (entries[i].count != 0) {
      std::memcpy(buffer.get() + dir[i][0], entries[i].data,
                  entries[i].count * entries[i].elem);
    }
  }
  Arena arena;
  arena.data = buffer.get();
  arena.size = at;
  arena.owner = std::move(buffer);

  SealedCache sealed;
  sealed.BindImage(std::move(arena));
  return sealed;
}

double SealedCache::ScanPlans(const double* values, double seed) const {
  double best = seed;
  for (const Plan& plan : plans_) {
    // Plans are sorted by internal cost, a lower bound on plan cost.
    if (plan.internal_cost >= best) break;
    double cost = plan.internal_cost;
    bool feasible = true;
    const uint32_t end = plan.first_slot + plan.num_slots;
    for (uint32_t s = plan.first_slot; s < end; ++s) {
      const double ac = values[plan_term_ids_[s]];
      if (IsInfinite(ac)) {
        feasible = false;
        break;
      }
      cost += plan_multipliers_[s] * ac;
    }
    if (feasible && cost < best) best = cost;
  }
  return best;
}

void SealedCache::PrepareContext(const IndexConfig& base,
                                 CostContext* ctx) const {
  const size_t num_terms = term_bases_.size();
  ctx->values_.resize(num_terms);
  std::copy(term_bases_.begin(), term_bases_.end(), ctx->values_.begin());
  for (IndexId id : base) {
    // Ids outside the sealed universe price as absent, like ids missing
    // from the unsealed table's per-slot maps. Per term, the fold order
    // matches the unsealed min exactly: base first, then each
    // configuration id in configuration order.
    if (id >= 0 && static_cast<size_t>(id) < universe_) {
      simd::MinFoldInto(
          ctx->values_.data(),
          per_index_values_.data() + static_cast<size_t>(id) * num_terms,
          num_terms);
    }
  }
  ctx->base_cost_ = ScanPlans(ctx->values_.data(), kInfiniteCost);
  ctx->undo_.clear();
  ctx->seal_id_ = seal_id_;
}

double SealedCache::Cost(const IndexConfig& config) const {
  // One configuration is a context prepared and read once. The scratch
  // context is thread-local so concurrent Cost() calls (the batched
  // evaluator prices configurations on a pool) never share it.
  static thread_local CostContext scratch;
  PrepareContext(config, &scratch);
  return scratch.base_cost_;
}

double SealedCache::CostOverlay(CostContext* ctx, uint32_t begin,
                                uint32_t end) const {
  // A context prepared by a different seal indexes a dead term layout;
  // folding postings into it serves silently wrong (or out-of-range)
  // costs. Free in release builds; callers that legitimately hold
  // contexts across reseals compare seal ids and re-prepare first.
  assert(ctx->seal_id_ == seal_id_ &&
         "CostContext is stale: the cache was resealed since PrepareContext");
  // Overlay the extra index's postings onto the pinned term values. A
  // posting with value >= the pinned min cannot change it (pinned values
  // are pointwise <= term bases, postings are < base but not necessarily
  // < the pinned min); terms without a posting satisfy
  // row[extra] >= base >= pinned, so skipping them is exact.
  ctx->undo_.clear();
  for (uint32_t p = begin; p < end; ++p) {
    double& value = ctx->values_[posting_terms_[p]];
    if (posting_values_[p] < value) {
      ctx->undo_.emplace_back(posting_terms_[p], value);
      value = posting_values_[p];
    }
  }
  if (ctx->undo_.empty()) return ctx->base_cost_;

  // The base cost seeds the early exit: term values only went down, so
  // every plan's cost is <= its base-configuration cost and the base
  // winner still prices <= base_cost — the scan returns the exact
  // minimum, identical (bitwise) to a from-scratch scan's.
  const double best = ScanPlans(ctx->values_.data(), ctx->base_cost_);
  for (const auto& [term, previous] : ctx->undo_) {
    ctx->values_[term] = previous;
  }
  return best;
}

void SealedCache::ExtendContext(CostContext* ctx, IndexId extra) const {
  assert(ctx->seal_id_ == seal_id_ &&
         "CostContext is stale: the cache was resealed since PrepareContext");
  if (extra < 0 || static_cast<size_t>(extra) >= universe_) return;
  // The permanent flavor of CostOverlay: fold and keep, no undo.
  bool changed = false;
  const uint32_t begin = posting_offsets_[static_cast<size_t>(extra)];
  const uint32_t end = posting_offsets_[static_cast<size_t>(extra) + 1];
  for (uint32_t p = begin; p < end; ++p) {
    double& value = ctx->values_[posting_terms_[p]];
    if (posting_values_[p] < value) {
      value = posting_values_[p];
      changed = true;
    }
  }
  if (changed) {
    ctx->base_cost_ = ScanPlans(ctx->values_.data(), ctx->base_cost_);
  }
}

double SealedCache::CostWithExtra(CostContext* ctx, IndexId extra) const {
  assert(ctx->seal_id_ == seal_id_ &&
         "CostContext is stale: the cache was resealed since PrepareContext");
  if (extra < 0 || static_cast<size_t>(extra) >= universe_) {
    return ctx->base_cost_;
  }
  return CostOverlay(ctx, posting_offsets_[static_cast<size_t>(extra)],
                     posting_offsets_[static_cast<size_t>(extra) + 1]);
}

void SealedCache::CostExtrasInto(CostContext* ctx, const IndexId* extras,
                                 size_t n, double* out) const {
  assert(ctx->seal_id_ == seal_id_ &&
         "CostContext is stale: the cache was resealed since PrepareContext");
  // Most extras cannot lower any of this query's terms (their posting
  // lists are empty — candidate indexes on other tables, or indexes the
  // heap already beats), so the whole row starts as the base cost and
  // only posting-bearing extras are priced individually.
  simd::Fill(out, ctx->base_cost_, n);
  const uint32_t* offsets = posting_offsets_.data();
  for (size_t i = 0; i < n; ++i) {
    const IndexId extra = extras[i];
    if (extra < 0 || static_cast<size_t>(extra) >= universe_) continue;
    const uint32_t begin = offsets[static_cast<size_t>(extra)];
    const uint32_t end = offsets[static_cast<size_t>(extra) + 1];
    if (begin == end) continue;
    out[i] = CostOverlay(ctx, begin, end);
  }
}

void SealedCache::CostActiveExtrasInto(CostContext* ctx,
                                       const uint32_t* position_of_id,
                                       size_t map_size, double* out) const {
  assert(ctx->seal_id_ == seal_id_ &&
         "CostContext is stale: the cache was resealed since PrepareContext");
  // Inverted loop: instead of asking "does this swept id have postings
  // here" per extra, walk the (usually much shorter) posting-bearing id
  // list and ask "is this id being swept".
  const uint32_t* offsets = posting_offsets_.data();
  for (const IndexId id : posting_ids_) {
    if (static_cast<size_t>(id) >= map_size) continue;
    const uint32_t slot = position_of_id[static_cast<size_t>(id)];
    if (slot == kNotSwept) continue;
    out[slot] = CostOverlay(ctx, offsets[static_cast<size_t>(id)],
                            offsets[static_cast<size_t>(id) + 1]);
  }
}

}  // namespace pinum
