// Zero-copy snapshot loading: mmap a format-v3 snapshot read-only and
// serve straight out of the page cache.
//
// The decode path (LoadSnapshot) copies every cache record into an
// owned heap arena; this path instead validates the file once —
// framing, checksum, epoch compatibility, and every cache image's
// structural invariants — and then binds each SealedCache's typed views
// *directly into the mapping*. Construction is O(sections + queries +
// validation scan); no per-element decode, no allocation proportional
// to cache bytes. Restart cost becomes page faults, and N processes
// mapping the same file share one physical copy of the caches.
//
// Lifetime contract: every returned SealedCache holds a shared_ptr to
// the mapping (so do its copies — copying a SealedCache shares its
// arena), so the pages stay mapped until the last borrowing cache is
// destroyed. Dropping the MappedWorkloadSnapshot itself does NOT
// invalidate caches moved or copied out of it. The mapping is
// MAP_PRIVATE and read-only; concurrent SaveSnapshot to the same path
// is safe because saves replace the file via rename(2) — the old inode
// (and this mapping) stays intact.
//
// Failure taxonomy matches LoadSnapshot exactly (see snapshot.h):
// kNotFound / kOutOfRange / kInvalidArgument / kUnimplemented /
// kInternal / kFailedPrecondition. A file that fails any check — a
// truncated tail, a flipped payload bit, a misaligned or out-of-bounds
// arena offset — is rejected before any cache view is handed out.
#ifndef PINUM_INUM_SNAPSHOT_MMAP_H_
#define PINUM_INUM_SNAPSHOT_MMAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "inum/sealed_cache.h"
#include "inum/snapshot.h"

namespace pinum {

/// A workload snapshot served in place from a read-only file mapping.
/// Field-compatible with WorkloadSnapshot (same parallel vectors), plus
/// the mapping handle that pins the pages.
struct MappedWorkloadSnapshot {
  std::vector<std::string> query_names;
  std::vector<uint64_t> query_stamps;
  /// Caches whose arenas borrow the mapping. Safe to move/copy out;
  /// each cache co-owns the mapping via its arena owner handle.
  std::vector<SealedCache> sealed;
  /// The stored epoch's universe bound (see WorkloadSnapshot).
  IndexId universe = 0;
  /// The file mapping. Holding this (or any cache borrowing it) keeps
  /// the pages valid; stash it next to anything that outlives this
  /// struct but reads the caches.
  std::shared_ptr<const void> mapping;
  /// Bytes mapped — the snapshot file's size.
  size_t mapped_bytes = 0;

  /// Maps `path` read-only and validates it exactly as LoadSnapshot
  /// would (same failure taxonomy, same epoch-compatibility rule
  /// against `expected`), then binds cache views into the mapping with
  /// zero copy. Every image is fully structurally validated before any
  /// view is handed out.
  static StatusOr<MappedWorkloadSnapshot> Map(const std::string& path,
                                              const SnapshotEpoch& expected);
};

}  // namespace pinum

#endif  // PINUM_INUM_SNAPSHOT_MMAP_H_
