#include "inum/access_cost_store.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace pinum {

std::string TableContextSignature(const Query& query, TableId table) {
  std::vector<ColumnIdx> needed = query.NeededColumns(table);
  std::sort(needed.begin(), needed.end());

  std::vector<FilterPredicate> filters = query.FiltersOn(table);
  std::sort(filters.begin(), filters.end(),
            [](const FilterPredicate& a, const FilterPredicate& b) {
              if (a.column != b.column) return a.column < b.column;
              if (a.op != b.op) return a.op < b.op;
              return a.constant < b.constant;
            });

  std::vector<ColumnIdx> join_cols;
  for (const JoinPredicate& j : query.joins) {
    if (j.Touches(table)) join_cols.push_back(j.SideOn(table).column);
  }
  std::sort(join_cols.begin(), join_cols.end());
  join_cols.erase(std::unique(join_cols.begin(), join_cols.end()),
                  join_cols.end());

  std::ostringstream sig;
  sig << "t" << table << "|n";
  for (ColumnIdx c : needed) sig << c << ",";
  sig << "|f";
  for (const FilterPredicate& f : filters) {
    sig << f.column.column << ":" << static_cast<int>(f.op) << ":"
        << f.constant << ",";
  }
  sig << "|j";
  for (ColumnIdx c : join_cols) sig << c << ",";
  return sig.str();
}

bool SharedAccessCostStore::LookupTable(const std::string& signature,
                                        TableAccessInfo* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_table_.find(signature);
  if (it == by_table_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *out = it->second;
  return true;
}

void SharedAccessCostStore::StoreTable(const std::string& signature,
                                       const TableAccessInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  by_table_.emplace(signature, info);
  // The universe-visible answer is authoritative for the fallback tier:
  // it must replace any narrower answer stored earlier under the same
  // signature, never be masked by it.
  fallback_.insert_or_assign(signature, info);
}

bool SharedAccessCostStore::LookupCandidate(IndexId candidate,
                                            const std::string& signature,
                                            TableAccessInfo* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_candidate_.find({candidate, signature});
  if (it == by_candidate_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *out = it->second;
  return true;
}

void SharedAccessCostStore::StoreCandidate(IndexId candidate,
                                           const std::string& signature,
                                           const TableAccessInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  // Candidate-specific answers never reach the fallback tier: the info
  // carries one candidate's access paths, and a first-wins write here
  // would permanently mask the base-table answer for this signature.
  by_candidate_.emplace(std::make_pair(candidate, signature), info);
}

void SharedAccessCostStore::StoreFallback(const std::string& signature,
                                          const TableAccessInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  fallback_.emplace(signature, info);
}

bool SharedAccessCostStore::LookupFallback(const std::string& signature,
                                           TableAccessInfo* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fallback_.find(signature);
  if (it == fallback_.end()) return false;
  *out = it->second;
  return true;
}

size_t SharedAccessCostStore::InvalidateTables(
    const std::vector<TableId>& tables) {
  std::lock_guard<std::mutex> lock(mu_);
  auto hit = [&](const TableAccessInfo& info) {
    return std::find(tables.begin(), tables.end(), info.table) !=
           tables.end();
  };
  size_t erased = 0;
  auto sweep = [&](auto* map) {
    for (auto it = map->begin(); it != map->end();) {
      if (hit(it->second)) {
        it = map->erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
  };
  sweep(&by_table_);
  sweep(&by_candidate_);
  sweep(&fallback_);
  return erased;
}

int64_t SharedAccessCostStore::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t SharedAccessCostStore::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t SharedAccessCostStore::NumEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_table_.size() + by_candidate_.size();
}

}  // namespace pinum
