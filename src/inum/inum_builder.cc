#include "inum/inum_builder.h"

#include <map>
#include <string>

#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "optimizer/interesting_orders.h"
#include "optimizer/optimizer.h"
#include "whatif/whatif_index.h"

namespace pinum {

StatusOr<Catalog> CatalogCoveringIoc(const Catalog& base, const Ioc& ioc,
                                     const Query& query,
                                     const StatsCatalog& stats) {
  std::vector<IndexDef> covering;
  for (size_t pos = 0; pos < ioc.size(); ++pos) {
    const ColumnRef col = ioc[pos];
    if (!col.valid()) continue;
    const TableDef* table = base.FindTable(col.table);
    const TableStats* tstats = stats.Find(col.table);
    if (table == nullptr || tstats == nullptr) {
      return Status::NotFound("missing table/stats while covering IOC");
    }
    covering.push_back(MakeWhatIfIndex(
        "__cov_" + query.name + "_" + std::to_string(pos) + "_" +
            std::to_string(col.column),
        *table, {col.column}, tstats->row_count));
  }
  return CatalogWithIndexes(base, covering, nullptr);
}

StatusOr<InumCache> BuildInumCacheClassic(const Query& query,
                                          const Catalog& base_catalog,
                                          const CandidateSet& candidates,
                                          const StatsCatalog& stats,
                                          const InumBuildOptions& options,
                                          InumBuildStats* build_stats) {
  InumCache cache;
  InumBuildStats local;

  // ---- Phase 1: plan cache, one (or two) optimizer calls per IOC. ----
  Stopwatch plan_timer;
  IocEnumerator iocs(PerTableInterestingOrders(query));
  Ioc ioc;
  while (iocs.Next(&ioc)) {
    ++local.iocs_enumerated;
    PINUM_ASSIGN_OR_RETURN(
        Catalog covering,
        CatalogCoveringIoc(base_catalog, ioc, query, stats));
    Optimizer opt(&covering, &stats);

    PlannerKnobs knobs = options.base_knobs;
    knobs.hooks = PlannerHooks{};  // stock optimizer: no hooks
    knobs.enable_nestloop = false;
    // Fault injection: one hit per plan-cache optimizer invocation, so a
    // test can fail or stall exactly the k-th call of a (re)build.
    PINUM_RETURN_IF_ERROR(FailPoint::Check("inum.plan_optimizer_call"));
    PINUM_ASSIGN_OR_RETURN(OptimizeResult no_nlj, opt.Optimize(query, knobs));
    cache.AddPlan(*no_nlj.best, covering, !query.order_by.empty());
    ++local.plan_cache_calls;

    if (options.include_nlj_plans && options.base_knobs.enable_nestloop) {
      knobs.enable_nestloop = true;
      PINUM_RETURN_IF_ERROR(FailPoint::Check("inum.plan_optimizer_call"));
      PINUM_ASSIGN_OR_RETURN(OptimizeResult with_nlj,
                             opt.Optimize(query, knobs));
      cache.AddPlan(*with_nlj.best, covering, !query.order_by.empty());
      ++local.plan_cache_calls;
    }
  }
  local.plan_cache_ms = plan_timer.ElapsedMillis();

  // ---- Phase 2: access costs, one optimizer call per candidate index
  // ("the optimizer can be queried with a single index per each table and
  // the access cost determined by parsing the generated plan",
  // Section V-B) — unless another workload query with the same footprint
  // on the candidate's table already paid for the call. ----
  Stopwatch access_timer;
  SharedAccessCostStore* store = options.shared_access;
  // Signatures are per (query, table); memoize them across the
  // per-candidate loop.
  std::map<TableId, std::string> signatures;
  auto signature_of = [&](TableId table) -> const std::string& {
    auto it = signatures.find(table);
    if (it == signatures.end()) {
      it = signatures.emplace(table, TableContextSignature(query, table))
               .first;
    }
    return it->second;
  };
  for (IndexId candidate : candidates.candidate_ids) {
    const IndexDef* def = candidates.universe.FindIndex(candidate);
    if (def == nullptr) continue;
    // Only candidates on the query's tables are relevant.
    if (query.PosOfTable(def->table) < 0) continue;
    if (store != nullptr) {
      TableAccessInfo shared;
      if (store->LookupCandidate(candidate, signature_of(def->table),
                                 &shared)) {
        shared.pos = query.PosOfTable(def->table);
        cache.mutable_access()->Absorb(shared);
        ++local.access_calls_saved;
        continue;
      }
    }
    Catalog single = candidates.Subset({candidate});
    Optimizer opt(&single, &stats);
    PlannerKnobs knobs = options.base_knobs;
    knobs.hooks.keep_all_access_paths = true;  // stand-in for plan parsing
    knobs.hooks.export_all_plans = false;
    PINUM_RETURN_IF_ERROR(FailPoint::Check("inum.access_optimizer_call"));
    PINUM_ASSIGN_OR_RETURN(OptimizeResult result, opt.Optimize(query, knobs));
    for (const auto& info : result.access_info) {
      cache.mutable_access()->Absorb(info);
      if (store != nullptr) {
        if (info.table == def->table) {
          store->StoreCandidate(candidate, signature_of(info.table), info);
        } else {
          store->StoreFallback(signature_of(info.table), info);
        }
      }
    }
    ++local.access_cost_calls;
  }
  // Shared answers only cover the candidate's own table; tables whose
  // every call was deduplicated away still need their own access info.
  if (store != nullptr) {
    bool fallback_needed = false;
    for (size_t pos = 0; pos < query.tables.size(); ++pos) {
      if (!IsInfinite(cache.access().HeapCost(static_cast<int>(pos)))) {
        continue;
      }
      TableAccessInfo fallback;
      if (store->LookupFallback(signature_of(query.tables[pos]), &fallback)) {
        fallback.pos = static_cast<int>(pos);
        cache.mutable_access()->Absorb(fallback);
      } else {
        fallback_needed = true;
      }
    }
    if (fallback_needed) {
      Optimizer opt(&base_catalog, &stats);
      PlannerKnobs knobs = options.base_knobs;
      knobs.hooks.keep_all_access_paths = true;
      knobs.hooks.export_all_plans = false;
      PINUM_RETURN_IF_ERROR(FailPoint::Check("inum.access_optimizer_call"));
      PINUM_ASSIGN_OR_RETURN(OptimizeResult result,
                             opt.Optimize(query, knobs));
      for (const auto& info : result.access_info) {
        cache.mutable_access()->Absorb(info);
        store->StoreFallback(signature_of(info.table), info);
      }
      ++local.access_cost_calls;
    }
  }
  local.access_cost_ms = access_timer.ElapsedMillis();

  local.plans_cached = cache.NumPlans();
  if (build_stats != nullptr) *build_stats = local;
  return cache;
}

}  // namespace pinum
