// Classic INUM cache construction (the paper's baseline): one optimizer
// call per interesting-order combination for the plan cache, plus one
// optimizer call per candidate index for access costs.
#ifndef PINUM_INUM_INUM_BUILDER_H_
#define PINUM_INUM_INUM_BUILDER_H_

#include <cstdint>

#include "inum/access_cost_store.h"
#include "inum/cache.h"
#include "optimizer/interesting_orders.h"
#include "optimizer/knobs.h"
#include "query/query.h"
#include "stats/table_stats.h"
#include "whatif/candidate_set.h"

namespace pinum {

/// Knobs for the classic build.
struct InumBuildOptions {
  /// Cache NLJ plans with a second optimizer call per IOC (the paper:
  /// "INUM caches two optimal plans for each interesting order
  /// combination, one with nested loop joins and one without").
  bool include_nlj_plans = true;
  /// When set, per-candidate access-cost calls whose answer another
  /// workload query already computed (same candidate, same table
  /// footprint) are served from the store instead of the optimizer.
  /// The store must belong to the same (catalog, candidates, stats).
  SharedAccessCostStore* shared_access = nullptr;
  PlannerKnobs base_knobs;
};

/// Build-time accounting, the quantities plotted in Figure 4/5.
struct InumBuildStats {
  int64_t plan_cache_calls = 0;
  int64_t access_cost_calls = 0;
  /// Optimizer calls answered by InumBuildOptions::shared_access.
  int64_t access_calls_saved = 0;
  double plan_cache_ms = 0;
  double access_cost_ms = 0;
  uint64_t iocs_enumerated = 0;
  size_t plans_cached = 0;
};

/// Fills an InumCache for `query` the classic way:
///  - enumerate every IOC; for each, create single-column what-if indexes
///    covering it and invoke the optimizer (twice with NLJ on/off),
///    caching the winning plan;
///  - for every candidate index, invoke the optimizer once with only that
///    index visible to learn its access costs.
StatusOr<InumCache> BuildInumCacheClassic(const Query& query,
                                          const Catalog& base_catalog,
                                          const CandidateSet& candidates,
                                          const StatsCatalog& stats,
                                          const InumBuildOptions& options,
                                          InumBuildStats* build_stats);

/// Creates single-column covering what-if indexes for each non-Phi entry
/// of `ioc` (shared with the PINUM builder, which covers all interesting
/// orders at once).
StatusOr<Catalog> CatalogCoveringIoc(const Catalog& base, const Ioc& ioc,
                                     const Query& query,
                                     const StatsCatalog& stats);

}  // namespace pinum

#endif  // PINUM_INUM_INUM_BUILDER_H_
