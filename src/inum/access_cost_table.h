// Per-(table, index) access costs: the "leaf" half of INUM's linear cost
// decomposition. Built either from one hooked optimizer call (PINUM,
// Section V-C) or from per-index optimizer calls (classic INUM).
#ifndef PINUM_INUM_ACCESS_COST_TABLE_H_
#define PINUM_INUM_ACCESS_COST_TABLE_H_

#include <limits>
#include <map>
#include <vector>

#include "catalog/types.h"
#include "optimizer/scan_builder.h"

namespace pinum {

/// A configuration: the set of (usually hypothetical) indexes assumed to
/// exist. INUM calls a configuration "atomic" when it has at most one
/// index per query table; the pricing below handles general sets by
/// implicitly choosing the best per-table index, which coincides with the
/// best atomic sub-configuration.
using IndexConfig = std::vector<IndexId>;

inline constexpr double kInfiniteCost =
    std::numeric_limits<double>::infinity();

/// The "requirement cannot be met" sentinel test. Access costs are
/// compared against kInfiniteCost in several layers; funneling the
/// float-equality through one named helper keeps the sentinel's meaning
/// (and any future representation change) in one place.
inline bool IsInfinite(double cost) { return cost == kInfiniteCost; }

/// Access costs of one index for one query table.
struct IndexAccessCosts {
  /// Cheapest scan delivering one interesting order.
  struct OrderedCost {
    ColumnRef column;
    double cost = kInfiniteCost;
  };

  IndexId index = kInvalidIndexId;
  /// Probe column (the index's leading key column); invalid when no
  /// probe option was absorbed.
  ColumnRef probe_column;
  /// Cheapest scan through this index (any variant).
  double scan_cost = kInfiniteCost;
  /// Cheapest scan per delivered order column. Scan options of one index
  /// can deliver different orders (e.g. forward/backward variants), so
  /// the minimum is tracked per column, never mixed across columns.
  std::vector<OrderedCost> ordered;
  /// Cheapest single equality probe (inner of an index NLJ);
  /// infinite when the leading column is not a join column.
  double probe_cost = kInfiniteCost;
  double probe_rows = 0;

  /// Cheapest scan delivering order `col`; infinite when none does.
  double OrderedCostFor(ColumnRef col) const {
    for (const OrderedCost& o : ordered) {
      if (o.column == col) return o.cost;
    }
    return kInfiniteCost;
  }
};

/// Access-cost table for one query.
class AccessCostTable {
 public:
  AccessCostTable() = default;

  /// Builds from the optimizer's per-table access info (one entry per
  /// table position of the query).
  explicit AccessCostTable(const std::vector<TableAccessInfo>& info);

  /// Merges the per-index costs of `info` into the table (classic INUM's
  /// incremental population, one optimizer call at a time).
  void Absorb(const TableAccessInfo& info);

  /// Cheapest unordered access to table `pos` using the heap or any
  /// configuration index.
  double Unordered(int pos, const IndexConfig& config) const;

  /// Cheapest access delivering interesting order `col`; infinite when no
  /// configuration index covers it.
  double Ordered(int pos, ColumnRef col, const IndexConfig& config) const;

  /// Cheapest equality probe on `col`; infinite when unsupported.
  double Probe(int pos, ColumnRef col, const IndexConfig& config) const;

  /// Sequential-scan cost of table `pos` (always available).
  double HeapCost(int pos) const;

  /// The per-index costs recorded for table `pos` (nullptr when `pos` is
  /// out of range). An id absent from this map prices exactly like the
  /// empty configuration — Unordered falls back to the heap, Ordered and
  /// Probe to infinite — which is what lets SealedCache fill a term's
  /// dense per-index row with its base cost and patch only these
  /// entries, instead of probing the map once per universe id.
  const std::map<IndexId, IndexAccessCosts>* IndexCostsAt(int pos) const {
    if (pos < 0 || static_cast<size_t>(pos) >= tables_.size()) return nullptr;
    return &tables_[static_cast<size_t>(pos)].by_index;
  }

  int NumTables() const { return static_cast<int>(tables_.size()); }
  size_t NumIndexCosts() const;

 private:
  struct PerTable {
    double heap_cost = kInfiniteCost;
    std::map<IndexId, IndexAccessCosts> by_index;
  };
  std::vector<PerTable> tables_;
};

}  // namespace pinum

#endif  // PINUM_INUM_ACCESS_COST_TABLE_H_
