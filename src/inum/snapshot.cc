// Implementation of the snapshot format specified in
// docs/SNAPSHOT_FORMAT.md. Keep the two in lockstep: any change to the
// bytes written here must bump kSnapshotFormatVersion (snapshot.h) and
// be recorded in the spec's version history.
//
// Byte-level framing, validation, and the cache codec live in
// inum/snapshot_internal.h, shared with the zero-copy mapped reader
// (snapshot_mmap.cc) so both load paths enforce identical checks.
#include "inum/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/failpoint.h"
#include "inum/snapshot_internal.h"

namespace pinum {

using snapshot_internal::AnnotateFile;
using snapshot_internal::ByteReader;
using snapshot_internal::ByteWriter;
using snapshot_internal::CacheRecord;
using snapshot_internal::CheckEpochCompatible;
using snapshot_internal::Corrupt;
using snapshot_internal::DecodeEpoch;
using snapshot_internal::DecodeQueries;
using snapshot_internal::FnvBytes;
using snapshot_internal::kEndianMarker;
using snapshot_internal::kFnvOffset;
using snapshot_internal::kHeaderBytes;
using snapshot_internal::kMagic;
using snapshot_internal::kSectionCaches;
using snapshot_internal::kSectionEntryBytes;
using snapshot_internal::kSectionEpoch;
using snapshot_internal::kSectionQueries;
using snapshot_internal::SliceCacheRecords;
using snapshot_internal::SnapshotView;
using snapshot_internal::ValidateFraming;

namespace {

/// Canonical-serialization hasher for the epoch fingerprints: every
/// field is folded as fixed-width bytes (doubles as their IEEE-754 bit
/// patterns), with lengths prefixed so concatenations cannot collide.
class Fingerprint {
 public:
  void U64(uint64_t v) { h_ = FnvBytes(h_, &v, sizeof(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U64(s.size());
    h_ = FnvBytes(h_, s.data(), s.size());
  }
  uint64_t hash() const { return h_; }

 private:
  uint64_t h_ = kFnvOffset;
};

// ---- Epoch fingerprints -------------------------------------------------

/// Index definitions include the size statistics (leaf/total pages,
/// height): the advisor prices index bytes from them, so a size drift
/// is an epoch change even when key columns are unchanged.
void FoldIndexDef(Fingerprint* fp, IndexId id, const IndexDef& index) {
  fp->I64(id);
  fp->Str(index.name);
  fp->I64(index.table);
  fp->U64(index.key_columns.size());
  for (ColumnIdx c : index.key_columns) fp->I64(c);
  fp->I64(index.hypothetical ? 1 : 0);
  fp->I64(index.leaf_pages);
  fp->I64(index.total_pages);
  fp->I64(index.height);
}

void FoldTableDef(Fingerprint* fp, TableId id, const TableDef& table) {
  fp->I64(id);
  fp->Str(table.name);
  fp->U64(table.columns.size());
  for (const ColumnDef& col : table.columns) {
    fp->Str(col.name);
    fp->I64(static_cast<int64_t>(col.type));
  }
}

void FoldTableStats(Fingerprint* fp, const TableStats& ts) {
  fp->F64(ts.row_count);
  fp->F64(ts.heap_pages);
  fp->U64(ts.columns.size());
  for (const ColumnStats& cs : ts.columns) {
    fp->F64(cs.n_distinct);
    fp->I64(cs.min);
    fp->I64(cs.max);
    fp->F64(cs.correlation);
    fp->U64(cs.histogram.bounds().size());
    for (Value b : cs.histogram.bounds()) fp->I64(b);
  }
}

/// The candidate-free part of the world: tables, foreign keys, and the
/// base (real) index definitions candidates are layered onto. Candidate
/// definitions are covered by the prefix chain instead, so an append
/// does not change this hash.
uint64_t BaseSchemaFingerprint(const CandidateSet& set) {
  Fingerprint fp;
  const Catalog& cat = set.universe;
  fp.U64(cat.tables().size());
  for (const auto& [id, table] : cat.tables()) FoldTableDef(&fp, id, table);
  fp.U64(cat.foreign_keys().size());
  for (const ForeignKey& fk : cat.foreign_keys()) {
    fp.I64(fk.child_table);
    fp.I64(fk.child_column);
    fp.I64(fk.parent_table);
    fp.I64(fk.parent_column);
  }
  fp.U64(set.base_index_ids.size());
  for (IndexId id : set.base_index_ids) {
    if (const IndexDef* def = cat.FindIndex(id)) {
      FoldIndexDef(&fp, id, *def);
    } else {
      fp.I64(id);
    }
  }
  return fp.hash();
}

// ---- Section payloads ---------------------------------------------------

ByteWriter EncodeEpochSection(const SnapshotEpoch& epoch) {
  ByteWriter w;
  w.U64(epoch.base_schema_hash);
  w.I32(epoch.universe);
  w.Vec(epoch.candidate_ids);
  w.U64(epoch.universe_prefix_hash);
  return w;
}

// ---- Whole-file reading -------------------------------------------------

/// An owned, framing-validated snapshot: the file's bytes plus the
/// section view over them.
struct SnapshotFile {
  std::string bytes;
  SnapshotView view;
};

Status ReadFileBytes(const std::string& path, std::string* out) {
  {
    Status injected = FailPoint::Check("snapshot.load.read");
    if (!injected.ok()) return AnnotateFile(std::move(injected), path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open snapshot " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("I/O error reading snapshot " + path +
                            " at byte offset " + std::to_string(bytes.size()));
  }
  *out = std::move(bytes);
  return Status::OK();
}

/// Reads the file and validates the file-level framing (magic, byte
/// order, version, declared length, checksum, section-table bounds).
/// Failures carry the path: the validators are path-agnostic, this
/// boundary is where it gets attached.
StatusOr<SnapshotFile> OpenSnapshot(const std::string& path) {
  SnapshotFile file;
  PINUM_RETURN_IF_ERROR(ReadFileBytes(path, &file.bytes));
  PINUM_RETURN_IF_ERROR(AnnotateFile(
      ValidateFraming(file.bytes.data(), file.bytes.size(), &file.view),
      path));
  return file;
}

}  // namespace

std::vector<uint64_t> ComputeUniversePrefixChain(const CandidateSet& set) {
  std::vector<uint64_t> chain;
  chain.reserve(set.candidate_ids.size() + 1);
  Fingerprint fp;
  chain.push_back(fp.hash());  // the empty prefix
  for (IndexId id : set.candidate_ids) {
    if (const IndexDef* def = set.universe.FindIndex(id)) {
      FoldIndexDef(&fp, id, *def);
    } else {
      fp.I64(id);
    }
    chain.push_back(fp.hash());
  }
  return chain;
}

SnapshotEpoch ComputeSnapshotEpoch(const CandidateSet& set) {
  SnapshotEpoch epoch;
  epoch.base_schema_hash = BaseSchemaFingerprint(set);
  epoch.universe = set.NumIndexIds();
  epoch.candidate_ids = set.candidate_ids;
  epoch.prefix_chain = ComputeUniversePrefixChain(set);
  epoch.universe_prefix_hash = epoch.prefix_chain.back();
  return epoch;
}

uint64_t ComputeTableEpochFingerprint(TableId table, const CandidateSet& set,
                                      const StatsCatalog& stats) {
  Fingerprint fp;
  const Catalog& cat = set.universe;
  if (const TableDef* def = cat.FindTable(table)) {
    FoldTableDef(&fp, table, *def);
  } else {
    fp.I64(table);
  }
  for (const ForeignKey& fk : cat.foreign_keys()) {
    if (fk.child_table == table || fk.parent_table == table) {
      fp.I64(fk.child_table);
      fp.I64(fk.child_column);
      fp.I64(fk.parent_table);
      fp.I64(fk.parent_column);
    }
  }
  // Every universe index on the table — base and candidate alike, in id
  // order — because both shape the table's access costs and the
  // advisor's size pricing; an appended candidate on this table drifts
  // this fingerprint (and so every stamp of a query touching it).
  for (const IndexDef* idx : cat.IndexesOnTable(table)) {
    FoldIndexDef(&fp, idx->id, *idx);
  }
  if (const TableStats* ts = stats.Find(table)) {
    fp.I64(1);
    FoldTableStats(&fp, *ts);
  } else {
    fp.I64(0);
  }
  return fp.hash();
}

uint64_t ComputeQueryStamp(const Query& query, const CandidateSet& set,
                           const StatsCatalog& stats,
                           std::map<TableId, uint64_t>* table_fp_cache) {
  Fingerprint fp;
  // The query's own structure — the exact IR fields the builders
  // consume, in positional order (the cache's slots are positional).
  // The name is deliberately not folded: a rename is not drift.
  fp.U64(query.tables.size());
  for (TableId t : query.tables) fp.I64(t);
  fp.U64(query.select.size());
  for (const ColumnRef& c : query.select) {
    fp.I64(c.table);
    fp.I64(c.column);
  }
  fp.U64(query.filters.size());
  for (const FilterPredicate& f : query.filters) {
    fp.I64(f.column.table);
    fp.I64(f.column.column);
    fp.I64(static_cast<int64_t>(f.op));
    fp.I64(f.constant);
  }
  fp.U64(query.joins.size());
  for (const JoinPredicate& j : query.joins) {
    fp.I64(j.left.table);
    fp.I64(j.left.column);
    fp.I64(j.right.table);
    fp.I64(j.right.column);
  }
  fp.U64(query.group_by.size());
  for (const ColumnRef& c : query.group_by) {
    fp.I64(c.table);
    fp.I64(c.column);
  }
  fp.I64(static_cast<int64_t>(query.aggregate));
  fp.U64(query.order_by.size());
  for (const SortKey& k : query.order_by) {
    fp.I64(k.column.table);
    fp.I64(k.column.column);
    fp.I64(k.ascending ? 1 : 0);
  }
  // The world slices the cache was derived from: one fingerprint per
  // touched table, in position order.
  for (TableId t : query.tables) {
    if (table_fp_cache != nullptr) {
      auto it = table_fp_cache->find(t);
      if (it == table_fp_cache->end()) {
        it = table_fp_cache
                 ->emplace(t, ComputeTableEpochFingerprint(t, set, stats))
                 .first;
      }
      fp.U64(it->second);
    } else {
      fp.U64(ComputeTableEpochFingerprint(t, set, stats));
    }
  }
  return fp.hash();
}

namespace {

/// The previous snapshot's cache records, keyed by query name: the
/// patch source for an incremental save. Holds views into `bytes`.
struct OldCacheRecords {
  std::string bytes;  // keeps the viewed records alive
  struct Record {
    uint64_t stamp = 0;
    const char* data = nullptr;
    size_t size = 0;
  };
  std::map<std::string, Record> by_name;
};

/// Best-effort read of the snapshot currently at `path` for patch
/// reuse. Any failure — missing file, older version, corruption —
/// just disables patching; the save then encodes every record fresh.
OldCacheRecords ReadOldRecords(const std::string& path) {
  OldCacheRecords old;
  if (!ReadFileBytes(path, &old.bytes).ok()) return old;
  SnapshotView view;
  if (!ValidateFraming(old.bytes.data(), old.bytes.size(), &view).ok()) {
    return old;
  }
  std::vector<std::string> names;
  std::vector<uint64_t> stamps;
  if (!DecodeQueries(view, &names, &stamps).ok()) return old;
  std::vector<CacheRecord> records;
  if (!SliceCacheRecords(view, names.size(), &records).ok()) return old;
  for (size_t i = 0; i < names.size(); ++i) {
    old.by_name.emplace(
        names[i],
        OldCacheRecords::Record{stamps[i], records[i].data, records[i].size});
  }
  return old;
}

}  // namespace

Status SaveSnapshot(const std::string& path,
                    const std::vector<std::string>& query_names,
                    const std::vector<uint64_t>& query_stamps,
                    const std::vector<SealedCache>& sealed,
                    const SnapshotEpoch& epoch,
                    SnapshotSaveStats* save_stats) {
  if (query_names.size() != sealed.size() ||
      query_stamps.size() != sealed.size()) {
    return Status::InvalidArgument(
        "query_names, query_stamps and sealed caches must be parallel"
        " vectors");
  }
  SnapshotSaveStats stats;

  const ByteWriter epoch_section = EncodeEpochSection(epoch);
  ByteWriter queries_section;
  queries_section.U32(static_cast<uint32_t>(query_names.size()));
  for (size_t i = 0; i < query_names.size(); ++i) {
    queries_section.U32(static_cast<uint32_t>(query_names[i].size()));
    queries_section.Raw(query_names[i].data(), query_names[i].size());
    queries_section.U64(query_stamps[i]);
  }

  // Cache records — each one the cache's relocatable arena image,
  // framed by its byte length so an incremental save can splice
  // unchanged records from the previous snapshot at this path without
  // decoding them. The reuse key is (name, stamp, sealed universe): the
  // stamp fingerprints every input the cache's *costs* are derived
  // from, and the universe bound — the image's leading u64, peeked
  // without a decode — pins the array widths, which can differ across
  // an append-only growth even when costs don't. Together they make a
  // patched file byte-identical to a from-scratch save of the same
  // result (images are deterministically packed, padding included).
  const OldCacheRecords old = ReadOldRecords(path);
  auto universe_matches = [](const OldCacheRecords::Record& record,
                             size_t universe) {
    uint64_t stored = 0;
    if (record.size < sizeof(stored)) return false;
    std::memcpy(&stored, record.data, sizeof(stored));
    return stored == universe;
  };
  std::vector<std::string> fresh(sealed.size());
  std::vector<std::pair<const char*, size_t>> records(sealed.size());
  for (size_t i = 0; i < sealed.size(); ++i) {
    const auto it = old.by_name.find(query_names[i]);
    if (it != old.by_name.end() && it->second.stamp == query_stamps[i] &&
        universe_matches(it->second, sealed[i].UniverseSize())) {
      records[i] = {it->second.data, it->second.size};
      ++stats.caches_patched;
      continue;
    }
    SnapshotCodec::Encode(sealed[i], &fresh[i]);
    records[i] = {fresh[i].data(), fresh[i].size()};
    ++stats.caches_encoded;
  }
  ByteWriter caches_section;
  caches_section.U32(static_cast<uint32_t>(sealed.size()));
  caches_section.U32(0);  // reserved; pads the lengths array to 8 bytes
  std::vector<uint64_t> lengths;
  lengths.reserve(records.size());
  for (const auto& [data, size] : records) {
    (void)data;
    lengths.push_back(size);
  }
  caches_section.Vec(lengths);
  for (const auto& [data, size] : records) caches_section.Raw(data, size);
  if (save_stats != nullptr) *save_stats = stats;

  const std::pair<uint32_t, const ByteWriter*> sections[] = {
      {kSectionEpoch, &epoch_section},
      {kSectionQueries, &queries_section},
      {kSectionCaches, &caches_section},
  };
  const uint32_t section_count = 3;

  // Section table + payloads ("the body") — the checksummed region.
  // Every section offset is aligned to kArenaAlign with zero padding in
  // between: with the caches section's 16 + 8n-byte preamble and
  // 8-multiple record lengths, that places every arena image at a
  // file offset that is a multiple of 8 — which is what lets the mapped
  // reader (page-aligned base) hand out typed views without a copy.
  const uint64_t table_end =
      kHeaderBytes + static_cast<uint64_t>(section_count) * kSectionEntryBytes;
  uint64_t offsets[section_count];
  uint64_t end = table_end;
  for (uint32_t i = 0; i < section_count; ++i) {
    offsets[i] = ArenaAlignUp(static_cast<size_t>(end));
    end = offsets[i] + sections[i].second->size();
  }
  ByteWriter body;
  for (uint32_t i = 0; i < section_count; ++i) {
    body.U32(sections[i].first);
    body.U32(0);  // reserved
    body.U64(offsets[i]);
    body.U64(sections[i].second->size());
  }
  uint64_t pos = table_end;
  static const char zeros[kArenaAlign] = {};
  for (uint32_t i = 0; i < section_count; ++i) {
    body.Raw(zeros, static_cast<size_t>(offsets[i] - pos));
    body.Raw(sections[i].second->bytes().data(), sections[i].second->size());
    pos = offsets[i] + sections[i].second->size();
  }

  ByteWriter header;
  header.Raw(kMagic, sizeof(kMagic));
  header.U32(kEndianMarker);
  header.U32(kSnapshotFormatVersion);
  header.U32(section_count);
  header.U32(0);  // reserved
  header.U64(kHeaderBytes + body.size());
  header.U64(FnvBytes(kFnvOffset, body.bytes().data(), body.size()));

  // Write-temp-then-rename, with fsync on both sides of the rename: a
  // failed or interrupted save (full disk, crash mid-write, power cut)
  // must never destroy the previously good snapshot at `path` — losing
  // it would force exactly the optimizer-call rebuild persistence
  // exists to avoid. The tmp file is fsynced *before* the rename so the
  // metadata operation can never reach disk ahead of the data (the
  // classic renamed-but-empty-file crash), and the directory is fsynced
  // *after* so the rename itself survives a power cut.
  const std::string tmp = path + ".tmp";
  {
    Status injected = FailPoint::Check("snapshot.save.open");
    if (!injected.ok()) return AnnotateFile(std::move(injected), tmp);
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + tmp + " for writing");
  }
  // Every failure below cleans up the torn tmp and reports where in the
  // file the write stopped — a fleet log line must identify both the
  // file and the byte.
  auto fail = [&f, &tmp](Status st, uint64_t offset) {
    std::fclose(f);
    f = nullptr;
    std::remove(tmp.c_str());
    return AnnotateFile(Status(st.code(), st.message() + " at byte offset " +
                                              std::to_string(offset)),
                        tmp);
  };

  size_t put = std::fwrite(header.bytes().data(), 1, header.size(), f);
  if (put != header.size()) {
    return fail(Status::Internal("short write of snapshot header"), put);
  }
  {
    // The short-write failpoint models a disk filling mid-body: half
    // the body genuinely lands in the tmp file before the failure, so
    // the cleanup path is tortured with a really-torn file.
    Status injected = FailPoint::Check("snapshot.save.short_write");
    if (!injected.ok()) {
      const size_t torn = body.size() / 2;
      (void)std::fwrite(body.bytes().data(), 1, torn, f);
      return fail(std::move(injected), header.size() + torn);
    }
  }
  put = std::fwrite(body.bytes().data(), 1, body.size(), f);
  if (put != body.size()) {
    return fail(Status::Internal("short write of snapshot body"),
                header.size() + put);
  }

  {
    Status injected = FailPoint::Check("snapshot.save.fsync");
    if (!injected.ok()) {
      return fail(std::move(injected), header.size() + body.size());
    }
  }
#ifndef _WIN32
  if (std::fflush(f) != 0 || ::fsync(fileno(f)) != 0) {
    return fail(Status::Internal("fsync of snapshot tmp file failed"),
                header.size() + body.size());
  }
#endif
  if (std::fclose(f) != 0) {
    f = nullptr;
    std::remove(tmp.c_str());
    return AnnotateFile(Status::Internal("close of snapshot tmp file failed"),
                        tmp);
  }
  f = nullptr;

  {
    Status injected = FailPoint::Check("snapshot.save.rename");
    if (!injected.ok()) {
      std::remove(tmp.c_str());
      return AnnotateFile(std::move(injected), path);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
#ifndef _WIN32
  // Best-effort directory fsync: some filesystems reject it, and by
  // this point the rename has succeeded — the snapshot at `path` is
  // valid either way, so a directory-sync failure is not a save failure.
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : (slash == 0 ? "/" : path.substr(0, slash));
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
#endif
  return Status::OK();
}

StatusOr<SnapshotEpoch> ReadSnapshotEpoch(const std::string& path) {
  PINUM_ASSIGN_OR_RETURN(const SnapshotFile file, OpenSnapshot(path));
  return DecodeEpoch(file.view);
}

StatusOr<WorkloadSnapshot> LoadSnapshot(const std::string& path,
                                        const SnapshotEpoch& expected) {
  PINUM_ASSIGN_OR_RETURN(const SnapshotFile file, OpenSnapshot(path));
  PINUM_ASSIGN_OR_RETURN(const SnapshotEpoch stored, DecodeEpoch(file.view));
  PINUM_RETURN_IF_ERROR(CheckEpochCompatible(stored, expected));

  WorkloadSnapshot snapshot;
  snapshot.universe = stored.universe;
  PINUM_RETURN_IF_ERROR(AnnotateFile(
      DecodeQueries(file.view, &snapshot.query_names, &snapshot.query_stamps),
      path));

  std::vector<CacheRecord> records;
  PINUM_RETURN_IF_ERROR(AnnotateFile(
      SliceCacheRecords(file.view, snapshot.query_names.size(), &records),
      path));
  snapshot.sealed.resize(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    // Each record decodes from exactly its framed slice: the image's
    // structural validation (SealedCache::ValidateImage) rejects any
    // record whose contents disagree with its declared length, which is
    // also what keeps spliced (patched) records honest. A rejection
    // names the record and its file offset — the byte range to dump
    // when a fleet log reports one bad record among thousands.
    Status st = SnapshotCodec::DecodeOwned(records[i].data, records[i].size,
                                           &snapshot.sealed[i]);
    if (!st.ok()) {
      return AnnotateFile(
          Status(st.code(),
                 st.message() + " (cache record " + std::to_string(i) +
                     " at file offset " +
                     std::to_string(records[i].data - file.bytes.data()) +
                     ")"),
          path);
    }
  }
  return snapshot;
}

}  // namespace pinum
