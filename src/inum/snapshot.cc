// Implementation of the snapshot format specified in
// docs/SNAPSHOT_FORMAT.md. Keep the two in lockstep: any change to the
// bytes written here must bump kSnapshotFormatVersion (snapshot.h) and
// be recorded in the spec's version history.
#include "inum/snapshot.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <type_traits>
#include <utility>

namespace pinum {

namespace {

// ---- File-level constants (see docs/SNAPSHOT_FORMAT.md) -----------------

constexpr char kMagic[8] = {'P', 'I', 'N', 'U', 'M', 'S', 'N', 'P'};
/// Written in the host's byte order; a reader on the other endianness
/// sees the bytes reversed and rejects the file instead of decoding
/// garbage.
constexpr uint32_t kEndianMarker = 0x01020304u;
constexpr size_t kHeaderBytes = 40;
constexpr size_t kSectionEntryBytes = 24;

/// Section tags. Unknown tags are skipped on read (a same-version writer
/// may append informational sections), but the three below are required.
constexpr uint32_t kSectionEpoch = 1;
constexpr uint32_t kSectionQueries = 2;
constexpr uint32_t kSectionCaches = 3;

// ---- FNV-1a 64: the checksum and the epoch fingerprints -----------------

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Canonical-serialization hasher for the epoch fingerprints: every
/// field is folded as fixed-width bytes (doubles as their IEEE-754 bit
/// patterns), with lengths prefixed so concatenations cannot collide.
class Fingerprint {
 public:
  void U64(uint64_t v) { h_ = FnvBytes(h_, &v, sizeof(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U64(s.size());
    h_ = FnvBytes(h_, s.data(), s.size());
  }
  uint64_t hash() const { return h_; }

 private:
  uint64_t h_ = kFnvOffset;
};

// ---- Byte-level encode/decode helpers -----------------------------------

class ByteWriter {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Raw(const void* data, size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }
  /// u64 element count + raw element bytes.
  template <typename T>
  void Vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(T));
  }

  const std::string& bytes() const { return out_; }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

Status Corrupt(const std::string& what) {
  return Status::Internal("snapshot corrupt: " + what);
}

/// Bounds-checked reader over one section's bytes. Overruns report
/// kInternal (corruption): by the time sections are decoded, the
/// header's file-size check has already ruled plain truncation out.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  Status Raw(void* dst, size_t n, const char* what) {
    if (n > size_ - pos_) return Corrupt(std::string(what) + " overruns its section");
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  Status U32(uint32_t* v, const char* what) { return Raw(v, sizeof(*v), what); }
  Status U64(uint64_t* v, const char* what) { return Raw(v, sizeof(*v), what); }
  Status I32(int32_t* v, const char* what) { return Raw(v, sizeof(*v), what); }
  Status F64(double* v, const char* what) { return Raw(v, sizeof(*v), what); }

  /// Reads a u64-count-prefixed element array. The count is validated
  /// against the bytes actually remaining before anything is allocated,
  /// so a crafted count cannot trigger a huge resize.
  template <typename T>
  Status Vec(std::vector<T>* out, const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    PINUM_RETURN_IF_ERROR(U64(&count, what));
    if (count > (size_ - pos_) / sizeof(T)) {
      return Corrupt(std::string(what) + " count overruns its section");
    }
    out->resize(static_cast<size_t>(count));
    if (count != 0) {
      std::memcpy(out->data(), data_ + pos_,
                  static_cast<size_t>(count) * sizeof(T));
      pos_ += static_cast<size_t>(count) * sizeof(T);
    }
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == size_; }
  /// Bytes left in the section — the bound every count read from the
  /// file must be validated against *before* any allocation.
  size_t Remaining() const { return size_ - pos_; }
  /// Current offset into the section: lets length-prefixed sub-records
  /// (the caches section's per-record slices) be framed exactly.
  size_t Position() const { return pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

// ---- SealedCache field access (the one friend, see sealed_cache.h) ------

class SnapshotCodec {
 public:
  static void Encode(const SealedCache& c, ByteWriter* w) {
    w->U64(c.universe_);
    w->U64(c.plans_pruned_);
    w->Vec(c.term_bases_);
    w->Vec(c.per_index_values_);
    // A default-constructed (never sealed) cache has no offsets vector
    // yet; on disk the CSR invariant `universe + 1 offsets` always
    // holds, so normalize to the empty universe's {0}. The restored
    // cache is behaviorally identical: with universe 0 no code path
    // reads past offset 0.
    if (c.posting_offsets_.empty()) {
      w->Vec(std::vector<uint32_t>{0});
    } else {
      w->Vec(c.posting_offsets_);
    }
    w->Vec(c.posting_terms_);
    w->Vec(c.posting_values_);
    w->U64(c.plans_.size());
    for (const SealedCache::Plan& plan : c.plans_) {
      w->F64(plan.internal_cost);
      w->U32(plan.first_slot);
      w->U32(plan.num_slots);
    }
    w->Vec(c.plan_term_ids_);
    w->Vec(c.plan_multipliers_);
  }

  /// Decodes one cache and re-validates every structural invariant the
  /// serving scans rely on, so a decoded cache is safe to serve from
  /// even if the file was crafted: CSR offsets are monotone and closed
  /// by the posting arrays, every stored term id is in range, plan slot
  /// slices stay inside the slot arrays, plans are ordered by the
  /// internal-cost lower bound (the early-exit invariant), and postings
  /// are strict improvements over their term's base. The derived
  /// posting-bearing id list is rebuilt rather than stored.
  static Status Decode(ByteReader* r, SealedCache* out) {
    uint64_t universe = 0;
    uint64_t pruned = 0;
    PINUM_RETURN_IF_ERROR(r->U64(&universe, "cache universe"));
    PINUM_RETURN_IF_ERROR(r->U64(&pruned, "cache pruned-plan count"));
    if (universe >
        static_cast<uint64_t>(std::numeric_limits<IndexId>::max())) {
      return Corrupt("universe size does not fit IndexId");
    }
    out->universe_ = static_cast<size_t>(universe);
    out->plans_pruned_ = static_cast<size_t>(pruned);
    // Seal identity is process-local, never persisted: a restored cache
    // is a fresh seal as far as pinned contexts are concerned.
    out->seal_id_ = SealedCache::NextSealId();

    PINUM_RETURN_IF_ERROR(r->Vec(&out->term_bases_, "term bases"));
    PINUM_RETURN_IF_ERROR(r->Vec(&out->per_index_values_, "term matrix"));
    PINUM_RETURN_IF_ERROR(r->Vec(&out->posting_offsets_, "posting offsets"));
    PINUM_RETURN_IF_ERROR(r->Vec(&out->posting_terms_, "posting terms"));
    PINUM_RETURN_IF_ERROR(r->Vec(&out->posting_values_, "posting values"));

    const size_t num_terms = out->term_bases_.size();
    // Division instead of universe * num_terms: no overflow to exploit.
    if (num_terms == 0 ? !out->per_index_values_.empty()
                       : out->per_index_values_.size() % num_terms != 0 ||
                             out->per_index_values_.size() / num_terms !=
                                 out->universe_) {
      return Corrupt("term matrix is not universe x terms");
    }
    if (out->posting_offsets_.size() != out->universe_ + 1) {
      return Corrupt("posting offsets do not cover the universe");
    }
    if (out->posting_offsets_.front() != 0 ||
        out->posting_offsets_.back() != out->posting_terms_.size() ||
        out->posting_terms_.size() != out->posting_values_.size()) {
      return Corrupt("posting lists are not closed by their offsets");
    }
    for (size_t id = 0; id < out->universe_; ++id) {
      if (out->posting_offsets_[id] > out->posting_offsets_[id + 1]) {
        return Corrupt("posting offsets are not monotone");
      }
    }
    for (size_t p = 0; p < out->posting_terms_.size(); ++p) {
      if (out->posting_terms_[p] >= num_terms) {
        return Corrupt("posting names a term out of range");
      }
      if (!(out->posting_values_[p] <
            out->term_bases_[out->posting_terms_[p]])) {
        return Corrupt("posting is not a strict improvement over its base");
      }
    }

    uint64_t num_plans = 0;
    PINUM_RETURN_IF_ERROR(r->U64(&num_plans, "plan count"));
    // Each plan record is 16 bytes; bound the count by the bytes that
    // are actually left before reserving anything.
    if (num_plans > r->Remaining() / 16) {
      return Corrupt("plan count overruns its section");
    }
    out->plans_.clear();
    out->plans_.reserve(static_cast<size_t>(num_plans));
    for (uint64_t i = 0; i < num_plans; ++i) {
      SealedCache::Plan plan;
      PINUM_RETURN_IF_ERROR(r->F64(&plan.internal_cost, "plan internal cost"));
      PINUM_RETURN_IF_ERROR(r->U32(&plan.first_slot, "plan first slot"));
      PINUM_RETURN_IF_ERROR(r->U32(&plan.num_slots, "plan slot count"));
      if (i > 0 &&
          !(out->plans_.back().internal_cost <= plan.internal_cost)) {
        return Corrupt("plans are not sorted by internal cost");
      }
      out->plans_.push_back(plan);
    }
    PINUM_RETURN_IF_ERROR(r->Vec(&out->plan_term_ids_, "plan term ids"));
    PINUM_RETURN_IF_ERROR(r->Vec(&out->plan_multipliers_, "plan multipliers"));
    if (out->plan_term_ids_.size() != out->plan_multipliers_.size()) {
      return Corrupt("plan slot arrays disagree in length");
    }
    for (const SealedCache::Plan& plan : out->plans_) {
      if (static_cast<uint64_t>(plan.first_slot) + plan.num_slots >
          out->plan_term_ids_.size()) {
        return Corrupt("plan slots overrun the slot arrays");
      }
    }
    for (uint32_t t : out->plan_term_ids_) {
      if (t >= num_terms) return Corrupt("plan names a term out of range");
    }

    out->posting_ids_.clear();
    for (size_t id = 0; id < out->universe_; ++id) {
      if (out->posting_offsets_[id + 1] > out->posting_offsets_[id]) {
        out->posting_ids_.push_back(static_cast<IndexId>(id));
      }
    }
    return Status::OK();
  }
};

namespace {

// ---- Epoch fingerprints -------------------------------------------------

/// Index definitions include the size statistics (leaf/total pages,
/// height): the advisor prices index bytes from them, so a size drift
/// is an epoch change even when key columns are unchanged.
void FoldIndexDef(Fingerprint* fp, IndexId id, const IndexDef& index) {
  fp->I64(id);
  fp->Str(index.name);
  fp->I64(index.table);
  fp->U64(index.key_columns.size());
  for (ColumnIdx c : index.key_columns) fp->I64(c);
  fp->I64(index.hypothetical ? 1 : 0);
  fp->I64(index.leaf_pages);
  fp->I64(index.total_pages);
  fp->I64(index.height);
}

void FoldTableDef(Fingerprint* fp, TableId id, const TableDef& table) {
  fp->I64(id);
  fp->Str(table.name);
  fp->U64(table.columns.size());
  for (const ColumnDef& col : table.columns) {
    fp->Str(col.name);
    fp->I64(static_cast<int64_t>(col.type));
  }
}

void FoldTableStats(Fingerprint* fp, const TableStats& ts) {
  fp->F64(ts.row_count);
  fp->F64(ts.heap_pages);
  fp->U64(ts.columns.size());
  for (const ColumnStats& cs : ts.columns) {
    fp->F64(cs.n_distinct);
    fp->I64(cs.min);
    fp->I64(cs.max);
    fp->F64(cs.correlation);
    fp->U64(cs.histogram.bounds().size());
    for (Value b : cs.histogram.bounds()) fp->I64(b);
  }
}

/// The candidate-free part of the world: tables, foreign keys, and the
/// base (real) index definitions candidates are layered onto. Candidate
/// definitions are covered by the prefix chain instead, so an append
/// does not change this hash.
uint64_t BaseSchemaFingerprint(const CandidateSet& set) {
  Fingerprint fp;
  const Catalog& cat = set.universe;
  fp.U64(cat.tables().size());
  for (const auto& [id, table] : cat.tables()) FoldTableDef(&fp, id, table);
  fp.U64(cat.foreign_keys().size());
  for (const ForeignKey& fk : cat.foreign_keys()) {
    fp.I64(fk.child_table);
    fp.I64(fk.child_column);
    fp.I64(fk.parent_table);
    fp.I64(fk.parent_column);
  }
  fp.U64(set.base_index_ids.size());
  for (IndexId id : set.base_index_ids) {
    if (const IndexDef* def = cat.FindIndex(id)) {
      FoldIndexDef(&fp, id, *def);
    } else {
      fp.I64(id);
    }
  }
  return fp.hash();
}

// ---- Section payloads ---------------------------------------------------

ByteWriter EncodeEpochSection(const SnapshotEpoch& epoch) {
  ByteWriter w;
  w.U64(epoch.base_schema_hash);
  w.I32(epoch.universe);
  w.Vec(epoch.candidate_ids);
  w.U64(epoch.universe_prefix_hash);
  return w;
}

Status DecodeEpochSection(const char* data, size_t size,
                          SnapshotEpoch* epoch) {
  ByteReader r(data, size);
  PINUM_RETURN_IF_ERROR(r.U64(&epoch->base_schema_hash, "base schema hash"));
  PINUM_RETURN_IF_ERROR(r.I32(&epoch->universe, "universe size"));
  if (epoch->universe < 0) return Corrupt("negative universe size");
  PINUM_RETURN_IF_ERROR(r.Vec(&epoch->candidate_ids, "candidate ids"));
  PINUM_RETURN_IF_ERROR(
      r.U64(&epoch->universe_prefix_hash, "universe prefix hash"));
  if (!r.AtEnd()) return Corrupt("trailing bytes in epoch section");
  return Status::OK();
}

// ---- Whole-file framing -------------------------------------------------

struct SnapshotFile {
  std::string bytes;
  struct Section {
    uint32_t tag = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
  };
  std::vector<Section> sections;

  const Section* Find(uint32_t tag) const {
    for (const Section& s : sections) {
      if (s.tag == tag) return &s;
    }
    return nullptr;
  }
  const char* SectionData(const Section& s) const {
    return bytes.data() + s.offset;
  }
};

Status ReadFileBytes(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open snapshot " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("I/O error reading snapshot " + path);
  }
  *out = std::move(bytes);
  return Status::OK();
}

/// Opens and validates the file-level framing: magic, byte order,
/// version, declared length, checksum, and section-table bounds. Every
/// failure mode maps to its own StatusCode (see snapshot.h).
StatusOr<SnapshotFile> OpenSnapshot(const std::string& path) {
  SnapshotFile file;
  PINUM_RETURN_IF_ERROR(ReadFileBytes(path, &file.bytes));
  const char* data = file.bytes.data();
  const size_t actual_size = file.bytes.size();
  char msg[160];

  if (actual_size < kHeaderBytes) {
    std::snprintf(msg, sizeof(msg),
                  "snapshot truncated: %zu bytes is smaller than the %zu-byte"
                  " header",
                  actual_size, kHeaderBytes);
    return Status::OutOfRange(msg);
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a pinum snapshot (bad magic)");
  }
  uint32_t endian, version, section_count;
  uint64_t declared_size, checksum;
  std::memcpy(&endian, data + 8, 4);
  std::memcpy(&version, data + 12, 4);
  std::memcpy(&section_count, data + 16, 4);
  std::memcpy(&declared_size, data + 24, 8);
  std::memcpy(&checksum, data + 32, 8);
  if (endian != kEndianMarker) {
    return Status::InvalidArgument(
        "snapshot byte order differs from this host's (written on a"
        " foreign-endian machine)");
  }
  if (version > kSnapshotFormatVersion) {
    std::snprintf(msg, sizeof(msg),
                  "snapshot format version %u is newer than the newest"
                  " supported (%u); rebuild the snapshot or upgrade",
                  version, kSnapshotFormatVersion);
    return Status::Unimplemented(msg);
  }
  if (version == 0) return Corrupt("format version 0");
  if (version < kSnapshotFormatVersion) {
    // v1 predates per-query epoch stamps and prefix-compatible
    // universes; its global epoch cannot say which queries are stale,
    // so there is nothing safe to reuse. Rebuilding is the v1 load
    // path's answer to any drift anyway.
    std::snprintf(msg, sizeof(msg),
                  "snapshot format version %u predates per-query epoch"
                  " stamps (oldest supported is %u); rebuild the caches and"
                  " save a fresh snapshot",
                  version, kSnapshotFormatVersion);
    return Status::Unimplemented(msg);
  }
  if (declared_size > actual_size) {
    std::snprintf(msg, sizeof(msg),
                  "snapshot truncated: file is %zu bytes, header declares"
                  " %" PRIu64,
                  actual_size, declared_size);
    return Status::OutOfRange(msg);
  }
  if (declared_size < actual_size) {
    return Corrupt("trailing bytes past the declared file size");
  }
  if (FnvBytes(kFnvOffset, data + kHeaderBytes,
               actual_size - kHeaderBytes) != checksum) {
    return Corrupt("checksum mismatch");
  }

  const size_t table_bytes =
      static_cast<size_t>(section_count) * kSectionEntryBytes;
  if (table_bytes > actual_size - kHeaderBytes) {
    return Corrupt("section table overruns the file");
  }
  for (uint32_t i = 0; i < section_count; ++i) {
    const char* entry = data + kHeaderBytes + i * kSectionEntryBytes;
    SnapshotFile::Section s;
    std::memcpy(&s.tag, entry, 4);
    std::memcpy(&s.offset, entry + 8, 8);
    std::memcpy(&s.length, entry + 16, 8);
    if (s.offset < kHeaderBytes + table_bytes || s.offset > actual_size ||
        s.length > actual_size - s.offset) {
      return Corrupt("section overruns the file");
    }
    file.sections.push_back(s);
  }
  return file;
}

StatusOr<SnapshotEpoch> DecodeEpoch(const SnapshotFile& file) {
  const SnapshotFile::Section* s = file.Find(kSectionEpoch);
  if (s == nullptr) return Corrupt("missing epoch section");
  SnapshotEpoch epoch;
  PINUM_RETURN_IF_ERROR(DecodeEpochSection(
      file.SectionData(*s), static_cast<size_t>(s->length), &epoch));
  return epoch;
}

std::string HashMismatch(const char* what, uint64_t stored,
                         uint64_t current) {
  char msg[192];
  std::snprintf(msg, sizeof(msg),
                "snapshot epoch mismatch: %s fingerprint is now"
                " %016" PRIx64 " but the snapshot was sealed under"
                " %016" PRIx64 "; rebuild the caches and save a fresh"
                " snapshot",
                what, current, stored);
  return msg;
}

}  // namespace

std::vector<uint64_t> ComputeUniversePrefixChain(const CandidateSet& set) {
  std::vector<uint64_t> chain;
  chain.reserve(set.candidate_ids.size() + 1);
  Fingerprint fp;
  chain.push_back(fp.hash());  // the empty prefix
  for (IndexId id : set.candidate_ids) {
    if (const IndexDef* def = set.universe.FindIndex(id)) {
      FoldIndexDef(&fp, id, *def);
    } else {
      fp.I64(id);
    }
    chain.push_back(fp.hash());
  }
  return chain;
}

SnapshotEpoch ComputeSnapshotEpoch(const CandidateSet& set) {
  SnapshotEpoch epoch;
  epoch.base_schema_hash = BaseSchemaFingerprint(set);
  epoch.universe = set.NumIndexIds();
  epoch.candidate_ids = set.candidate_ids;
  epoch.prefix_chain = ComputeUniversePrefixChain(set);
  epoch.universe_prefix_hash = epoch.prefix_chain.back();
  return epoch;
}

uint64_t ComputeTableEpochFingerprint(TableId table, const CandidateSet& set,
                                      const StatsCatalog& stats) {
  Fingerprint fp;
  const Catalog& cat = set.universe;
  if (const TableDef* def = cat.FindTable(table)) {
    FoldTableDef(&fp, table, *def);
  } else {
    fp.I64(table);
  }
  for (const ForeignKey& fk : cat.foreign_keys()) {
    if (fk.child_table == table || fk.parent_table == table) {
      fp.I64(fk.child_table);
      fp.I64(fk.child_column);
      fp.I64(fk.parent_table);
      fp.I64(fk.parent_column);
    }
  }
  // Every universe index on the table — base and candidate alike, in id
  // order — because both shape the table's access costs and the
  // advisor's size pricing; an appended candidate on this table drifts
  // this fingerprint (and so every stamp of a query touching it).
  for (const IndexDef* idx : cat.IndexesOnTable(table)) {
    FoldIndexDef(&fp, idx->id, *idx);
  }
  if (const TableStats* ts = stats.Find(table)) {
    fp.I64(1);
    FoldTableStats(&fp, *ts);
  } else {
    fp.I64(0);
  }
  return fp.hash();
}

uint64_t ComputeQueryStamp(const Query& query, const CandidateSet& set,
                           const StatsCatalog& stats,
                           std::map<TableId, uint64_t>* table_fp_cache) {
  Fingerprint fp;
  // The query's own structure — the exact IR fields the builders
  // consume, in positional order (the cache's slots are positional).
  // The name is deliberately not folded: a rename is not drift.
  fp.U64(query.tables.size());
  for (TableId t : query.tables) fp.I64(t);
  fp.U64(query.select.size());
  for (const ColumnRef& c : query.select) {
    fp.I64(c.table);
    fp.I64(c.column);
  }
  fp.U64(query.filters.size());
  for (const FilterPredicate& f : query.filters) {
    fp.I64(f.column.table);
    fp.I64(f.column.column);
    fp.I64(static_cast<int64_t>(f.op));
    fp.I64(f.constant);
  }
  fp.U64(query.joins.size());
  for (const JoinPredicate& j : query.joins) {
    fp.I64(j.left.table);
    fp.I64(j.left.column);
    fp.I64(j.right.table);
    fp.I64(j.right.column);
  }
  fp.U64(query.group_by.size());
  for (const ColumnRef& c : query.group_by) {
    fp.I64(c.table);
    fp.I64(c.column);
  }
  fp.I64(static_cast<int64_t>(query.aggregate));
  fp.U64(query.order_by.size());
  for (const SortKey& k : query.order_by) {
    fp.I64(k.column.table);
    fp.I64(k.column.column);
    fp.I64(k.ascending ? 1 : 0);
  }
  // The world slices the cache was derived from: one fingerprint per
  // touched table, in position order.
  for (TableId t : query.tables) {
    if (table_fp_cache != nullptr) {
      auto it = table_fp_cache->find(t);
      if (it == table_fp_cache->end()) {
        it = table_fp_cache
                 ->emplace(t, ComputeTableEpochFingerprint(t, set, stats))
                 .first;
      }
      fp.U64(it->second);
    } else {
      fp.U64(ComputeTableEpochFingerprint(t, set, stats));
    }
  }
  return fp.hash();
}

namespace {

/// The previous snapshot's cache records, keyed by query name: the
/// patch source for an incremental save. Holds views into `file.bytes`.
struct OldCacheRecords {
  SnapshotFile file;  // keeps the viewed bytes alive
  struct Record {
    uint64_t stamp = 0;
    const char* data = nullptr;
    size_t size = 0;
  };
  std::map<std::string, Record> by_name;
};

/// Best-effort read of the snapshot currently at `path` for patch
/// reuse. Any failure — missing file, older version, corruption —
/// just disables patching; the save then encodes every record fresh.
OldCacheRecords ReadOldRecords(const std::string& path) {
  OldCacheRecords old;
  auto opened = OpenSnapshot(path);
  if (!opened.ok()) return old;
  old.file = std::move(*opened);

  std::vector<std::string> names;
  std::vector<uint64_t> stamps;
  const SnapshotFile::Section* queries = old.file.Find(kSectionQueries);
  if (queries == nullptr) return old;
  {
    ByteReader r(old.file.SectionData(*queries),
                 static_cast<size_t>(queries->length));
    uint32_t count = 0;
    if (!r.U32(&count, "query count").ok()) return old;
    if (count > r.Remaining() / 12) return old;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t len = 0;
      if (!r.U32(&len, "query-name length").ok() || len > r.Remaining()) {
        return old;
      }
      std::string name(len, '\0');
      uint64_t stamp = 0;
      if (!r.Raw(name.data(), len, "query name").ok() ||
          !r.U64(&stamp, "query stamp").ok()) {
        return old;
      }
      names.push_back(std::move(name));
      stamps.push_back(stamp);
    }
  }

  const SnapshotFile::Section* caches = old.file.Find(kSectionCaches);
  if (caches == nullptr) return old;
  const char* section = old.file.SectionData(*caches);
  ByteReader r(section, static_cast<size_t>(caches->length));
  uint32_t count = 0;
  if (!r.U32(&count, "cache count").ok() || count != names.size()) return old;
  std::vector<uint64_t> lengths;
  if (!r.Vec(&lengths, "cache record lengths").ok() ||
      lengths.size() != count) {
    return old;
  }
  size_t at = r.Position();
  for (uint32_t i = 0; i < count; ++i) {
    const size_t len = static_cast<size_t>(lengths[i]);
    if (len > static_cast<size_t>(caches->length) - at) return old;
    old.by_name.emplace(names[i],
                        OldCacheRecords::Record{stamps[i], section + at, len});
    at += len;
  }
  return old;
}

}  // namespace

Status SaveSnapshot(const std::string& path,
                    const std::vector<std::string>& query_names,
                    const std::vector<uint64_t>& query_stamps,
                    const std::vector<SealedCache>& sealed,
                    const SnapshotEpoch& epoch,
                    SnapshotSaveStats* save_stats) {
  if (query_names.size() != sealed.size() ||
      query_stamps.size() != sealed.size()) {
    return Status::InvalidArgument(
        "query_names, query_stamps and sealed caches must be parallel"
        " vectors");
  }
  SnapshotSaveStats stats;

  const ByteWriter epoch_section = EncodeEpochSection(epoch);
  ByteWriter queries_section;
  queries_section.U32(static_cast<uint32_t>(query_names.size()));
  for (size_t i = 0; i < query_names.size(); ++i) {
    queries_section.U32(static_cast<uint32_t>(query_names[i].size()));
    queries_section.Raw(query_names[i].data(), query_names[i].size());
    queries_section.U64(query_stamps[i]);
  }

  // Cache records, each framed by its byte length so an incremental
  // save can splice unchanged records from the previous snapshot at
  // this path without decoding them. The reuse key is (name, stamp,
  // sealed universe): the stamp fingerprints every input the cache's
  // *costs* are derived from, and the universe bound — the record's
  // leading u64, peeked without a decode — pins the vector widths,
  // which can differ across an append-only growth even when costs
  // don't. Together they make a patched file byte-identical to a
  // from-scratch save of the same result.
  const OldCacheRecords old = ReadOldRecords(path);
  auto universe_matches = [](const OldCacheRecords::Record& record,
                             size_t universe) {
    uint64_t stored = 0;
    if (record.size < sizeof(stored)) return false;
    std::memcpy(&stored, record.data, sizeof(stored));
    return stored == universe;
  };
  std::vector<std::string> fresh(sealed.size());
  std::vector<std::pair<const char*, size_t>> records(sealed.size());
  for (size_t i = 0; i < sealed.size(); ++i) {
    const auto it = old.by_name.find(query_names[i]);
    if (it != old.by_name.end() && it->second.stamp == query_stamps[i] &&
        universe_matches(it->second, sealed[i].UniverseSize())) {
      records[i] = {it->second.data, it->second.size};
      ++stats.caches_patched;
      continue;
    }
    ByteWriter w;
    SnapshotCodec::Encode(sealed[i], &w);
    fresh[i] = w.bytes();
    records[i] = {fresh[i].data(), fresh[i].size()};
    ++stats.caches_encoded;
  }
  ByteWriter caches_section;
  caches_section.U32(static_cast<uint32_t>(sealed.size()));
  std::vector<uint64_t> lengths;
  lengths.reserve(records.size());
  for (const auto& [data, size] : records) {
    (void)data;
    lengths.push_back(size);
  }
  caches_section.Vec(lengths);
  for (const auto& [data, size] : records) caches_section.Raw(data, size);
  if (save_stats != nullptr) *save_stats = stats;

  const std::pair<uint32_t, const ByteWriter*> sections[] = {
      {kSectionEpoch, &epoch_section},
      {kSectionQueries, &queries_section},
      {kSectionCaches, &caches_section},
  };
  const uint32_t section_count = 3;

  // Section table + payloads ("the body") — the checksummed region.
  ByteWriter body;
  uint64_t offset =
      kHeaderBytes + static_cast<uint64_t>(section_count) * kSectionEntryBytes;
  for (const auto& [tag, payload] : sections) {
    body.U32(tag);
    body.U32(0);  // reserved
    body.U64(offset);
    body.U64(payload->size());
    offset += payload->size();
  }
  for (const auto& [tag, payload] : sections) {
    (void)tag;
    body.Raw(payload->bytes().data(), payload->size());
  }

  ByteWriter header;
  header.Raw(kMagic, sizeof(kMagic));
  header.U32(kEndianMarker);
  header.U32(kSnapshotFormatVersion);
  header.U32(section_count);
  header.U32(0);  // reserved
  header.U64(kHeaderBytes + body.size());
  header.U64(FnvBytes(kFnvOffset, body.bytes().data(), body.size()));

  // Write-temp-then-rename: a failed or interrupted save (full disk,
  // crash mid-write) must never destroy the previously good snapshot at
  // `path` — losing it would force exactly the optimizer-call rebuild
  // persistence exists to avoid.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + tmp + " for writing");
  }
  const bool wrote =
      std::fwrite(header.bytes().data(), 1, header.size(), f) ==
          header.size() &&
      std::fwrite(body.bytes().data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("I/O error writing snapshot " + path);
  }
  return Status::OK();
}

StatusOr<SnapshotEpoch> ReadSnapshotEpoch(const std::string& path) {
  PINUM_ASSIGN_OR_RETURN(const SnapshotFile file, OpenSnapshot(path));
  return DecodeEpoch(file);
}

StatusOr<WorkloadSnapshot> LoadSnapshot(const std::string& path,
                                        const SnapshotEpoch& expected) {
  PINUM_ASSIGN_OR_RETURN(const SnapshotFile file, OpenSnapshot(path));
  PINUM_ASSIGN_OR_RETURN(const SnapshotEpoch stored, DecodeEpoch(file));

  if (stored.base_schema_hash != expected.base_schema_hash) {
    return Status::FailedPrecondition(
        HashMismatch("base catalog schema", stored.base_schema_hash,
                     expected.base_schema_hash));
  }
  // Prefix compatibility: the stored vocabulary must be the live one's
  // first N candidates — equality when nothing grew, a strict prefix
  // when candidates were appended after the seal (append-only growth
  // keeps every stored id meaning the same index). Anything else —
  // removed, reordered, or regenerated candidates — invalidates every
  // sealed subscript.
  const size_t stored_count = stored.candidate_ids.size();
  if (stored_count > expected.candidate_ids.size() ||
      !std::equal(stored.candidate_ids.begin(), stored.candidate_ids.end(),
                  expected.candidate_ids.begin())) {
    char msg[224];
    std::snprintf(msg, sizeof(msg),
                  "snapshot epoch mismatch: the snapshot's %zu candidate ids"
                  " are not a prefix of the live universe's %zu (candidates"
                  " were removed, reordered, or regenerated); rebuild the"
                  " caches and save a fresh snapshot",
                  stored_count, expected.candidate_ids.size());
    return Status::FailedPrecondition(msg);
  }
  if (stored.universe > expected.universe) {
    char msg[192];
    std::snprintf(msg, sizeof(msg),
                  "snapshot epoch mismatch: the snapshot covers %d universe"
                  " ids but the live universe has only %d; rebuild the caches"
                  " and save a fresh snapshot",
                  stored.universe, expected.universe);
    return Status::FailedPrecondition(msg);
  }
  // The prefix's *definitions* must match too (sizes included): verify
  // the stored final hash against the live chain's entry for that
  // prefix length.
  uint64_t live_prefix_hash = 0;
  if (stored_count == expected.candidate_ids.size()) {
    live_prefix_hash = expected.universe_prefix_hash;
  } else if (stored_count < expected.prefix_chain.size()) {
    live_prefix_hash = expected.prefix_chain[stored_count];
  } else {
    return Status::InvalidArgument(
        "expected epoch lacks the prefix chain needed to verify a"
        " strict-prefix snapshot (compute it with ComputeSnapshotEpoch)");
  }
  if (stored.universe_prefix_hash != live_prefix_hash) {
    return Status::FailedPrecondition(HashMismatch(
        "candidate-universe definitions (a candidate's key columns or size"
        " statistics changed)",
        stored.universe_prefix_hash, live_prefix_hash));
  }

  WorkloadSnapshot snapshot;
  snapshot.universe = stored.universe;
  const SnapshotFile::Section* queries = file.Find(kSectionQueries);
  if (queries == nullptr) return Corrupt("missing query-names section");
  {
    ByteReader r(file.SectionData(*queries),
                 static_cast<size_t>(queries->length));
    uint32_t count = 0;
    PINUM_RETURN_IF_ERROR(r.U32(&count, "query count"));
    // Every entry takes at least its 4-byte length field plus its
    // 8-byte stamp: bound the count (and each name length) by the
    // remaining bytes before any allocation, so a crafted count yields
    // a Status, not bad_alloc.
    if (count > r.Remaining() / 12) {
      return Corrupt("query count overruns its section");
    }
    snapshot.query_names.reserve(count);
    snapshot.query_stamps.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t len = 0;
      PINUM_RETURN_IF_ERROR(r.U32(&len, "query-name length"));
      if (len > r.Remaining()) {
        return Corrupt("query name overruns its section");
      }
      std::string name(len, '\0');
      PINUM_RETURN_IF_ERROR(r.Raw(name.data(), len, "query name"));
      uint64_t stamp = 0;
      PINUM_RETURN_IF_ERROR(r.U64(&stamp, "query stamp"));
      snapshot.query_names.push_back(std::move(name));
      snapshot.query_stamps.push_back(stamp);
    }
    if (!r.AtEnd()) return Corrupt("trailing bytes in query-names section");
  }

  const SnapshotFile::Section* caches = file.Find(kSectionCaches);
  if (caches == nullptr) return Corrupt("missing caches section");
  {
    ByteReader r(file.SectionData(*caches),
                 static_cast<size_t>(caches->length));
    uint32_t count = 0;
    PINUM_RETURN_IF_ERROR(r.U32(&count, "cache count"));
    if (count != snapshot.query_names.size()) {
      return Corrupt("cache count does not match query count");
    }
    std::vector<uint64_t> lengths;
    PINUM_RETURN_IF_ERROR(r.Vec(&lengths, "cache record lengths"));
    if (lengths.size() != count) {
      return Corrupt("cache record-length count does not match cache count");
    }
    snapshot.sealed.resize(count);
    const char* section = file.SectionData(*caches);
    size_t at = r.Position();
    for (uint32_t i = 0; i < count; ++i) {
      const size_t len = static_cast<size_t>(lengths[i]);
      if (len > static_cast<size_t>(caches->length) - at) {
        return Corrupt("cache record overruns its section");
      }
      // Each record decodes from exactly its framed slice — a record
      // that reads past (or short of) its declared length is corrupt,
      // which is also what keeps spliced (patched) records honest.
      ByteReader record(section + at, len);
      PINUM_RETURN_IF_ERROR(SnapshotCodec::Decode(&record,
                                                  &snapshot.sealed[i]));
      if (!record.AtEnd()) return Corrupt("trailing bytes in cache record");
      at += len;
    }
    if (at != static_cast<size_t>(caches->length)) {
      return Corrupt("trailing bytes in caches section");
    }
  }
  return snapshot;
}

}  // namespace pinum
