#include "inum/cache.h"

#include <algorithm>
#include <sstream>

namespace pinum {

std::string CachedPlan::RequirementKey() const {
  std::ostringstream key;
  for (const auto& s : slots) {
    key << s.table_pos << ":";
    switch (s.req) {
      case LeafReqKind::kUnordered:
        key << "u";
        break;
      case LeafReqKind::kOrdered:
        key << "o" << s.column.table << "." << s.column.column;
        break;
      case LeafReqKind::kProbe:
        key << "p" << s.column.table << "." << s.column.column << "x"
            << static_cast<int64_t>(s.multiplier);
        break;
    }
    key << ";";
  }
  return key.str();
}

void InumCache::AddPlan(const Path& plan, const Catalog& catalog,
                        bool top_order_matters) {
  CachedPlan cached;
  cached.internal_cost = plan.cost.total - plan.LeafCostSum();
  cached.slots = plan.leaves;
  std::sort(cached.slots.begin(), cached.slots.end(),
            [](const LeafSlot& a, const LeafSlot& b) {
              return a.table_pos < b.table_pos;
            });
  // Requirement relaxation: an ordered leaf whose order nothing consumes
  // can be served by any access path without changing the internal cost.
  const std::vector<int> load_bearing =
      LoadBearingOrderLeaves(plan, top_order_matters);
  for (auto& s : cached.slots) {
    if (s.req == LeafReqKind::kOrdered &&
        !std::binary_search(load_bearing.begin(), load_bearing.end(),
                            s.table_pos)) {
      s.req = LeafReqKind::kUnordered;
      s.column = ColumnRef{};
    }
  }
  for (const auto& s : cached.slots) {
    if (s.req == LeafReqKind::kProbe) cached.has_nlj = true;
  }
  cached.signature = plan.Signature(catalog);
  const std::string key = cached.RequirementKey();
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    CachedPlan& existing = plans_[it->second];
    if (cached.internal_cost < existing.internal_cost) {
      if (existing.signature != cached.signature) {
        auto sig = sig_counts_.find(existing.signature);
        if (sig != sig_counts_.end() && --sig->second == 0) {
          sig_counts_.erase(sig);
        }
        ++sig_counts_[cached.signature];
      }
      existing = std::move(cached);
    }
    return;
  }
  by_key_[key] = plans_.size();
  ++sig_counts_[cached.signature];
  plans_.push_back(std::move(cached));
}

double InumCache::PlanCost(const CachedPlan& plan,
                           const IndexConfig& config) const {
  double cost = plan.internal_cost;
  for (const auto& s : plan.slots) {
    double ac = 0;
    switch (s.req) {
      case LeafReqKind::kUnordered:
        ac = access_.Unordered(s.table_pos, config);
        break;
      case LeafReqKind::kOrdered:
        ac = access_.Ordered(s.table_pos, s.column, config);
        break;
      case LeafReqKind::kProbe:
        ac = access_.Probe(s.table_pos, s.column, config);
        break;
    }
    if (IsInfinite(ac)) return kInfiniteCost;
    cost += s.multiplier * ac;
  }
  return cost;
}

double InumCache::Cost(const IndexConfig& config) const {
  double best = kInfiniteCost;
  for (const auto& plan : plans_) {
    best = std::min(best, PlanCost(plan, config));
  }
  return best;
}

const CachedPlan* InumCache::BestPlan(const IndexConfig& config) const {
  const CachedPlan* best = nullptr;
  double best_cost = kInfiniteCost;
  for (const auto& plan : plans_) {
    const double c = PlanCost(plan, config);
    if (c < best_cost) {
      best_cost = c;
      best = &plan;
    }
  }
  return best;
}

}  // namespace pinum
