// Internals shared by the two snapshot readers: the byte-level decode
// path (src/inum/snapshot.cc) and the zero-copy mapped path
// (src/inum/snapshot_mmap.cc). Everything here operates on raw
// (pointer, size) ranges so the same validation runs whether the bytes
// came from a file read or an mmap — the hostile-input guarantees in
// docs/SNAPSHOT_FORMAT.md hold for both. Not part of the public API;
// include only from inum/snapshot*.cc.
#ifndef PINUM_INUM_SNAPSHOT_INTERNAL_H_
#define PINUM_INUM_SNAPSHOT_INTERNAL_H_

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "inum/sealed_cache.h"
#include "inum/snapshot.h"

namespace pinum {

// ---- SealedCache field access (the one friend, see sealed_cache.h) ------
//
// In format v3 a cache record IS the cache's arena image, so the codec
// has three one-line jobs: write the image verbatim, adopt a validated
// copy (decode path), or adopt a validated borrowed view (mmap path).
// All structural validation lives in SealedCache::ValidateImage and runs
// before any view is handed out, on both paths.
class SnapshotCodec {
 public:
  /// Appends the cache's arena image to `out` (the canonical empty
  /// image for a default-constructed, never-sealed cache).
  static void Encode(const SealedCache& c, std::string* out) {
    if (c.arena_.empty()) {
      out->append(SealedCache::PackEmptyImage());
    } else {
      out->append(c.arena_.data, c.arena_.size);
    }
  }

  /// Decode path: copies `data[0, size)` into an owned (heap) arena,
  /// validates the copy, and binds `out`'s views over it. The copy
  /// happens first so validation always reads aligned memory regardless
  /// of where the source bytes sit.
  static Status DecodeOwned(const char* data, size_t size, SealedCache* out) {
    Arena arena = Arena::CopyOf(data, size);
    PINUM_RETURN_IF_ERROR(SealedCache::ValidateImage(arena.data, arena.size));
    out->BindImage(std::move(arena));
    return Status::OK();
  }

  /// Mapped path: validates `data[0, size)` in place and binds `out`'s
  /// views directly over it — zero copy, zero per-element decode.
  /// `owner` pins the bytes (the file mapping) for the cache's
  /// lifetime, copies included. The image start must be 8-aligned —
  /// guaranteed by the format's section/record alignment plus a
  /// page-aligned mapping base, and re-checked here because a crafted
  /// record length can misalign every record after it.
  static Status View(const char* data, size_t size,
                     std::shared_ptr<const void> owner, SealedCache* out) {
    if (reinterpret_cast<uintptr_t>(data) % kArenaAlign != 0) {
      return Status::Internal("snapshot corrupt: cache record is misaligned");
    }
    PINUM_RETURN_IF_ERROR(SealedCache::ValidateImage(data, size));
    Arena arena;
    arena.data = data;
    arena.size = size;
    arena.owner = std::move(owner);
    out->BindImage(std::move(arena));
    return Status::OK();
  }
};

namespace snapshot_internal {

// ---- File-level constants (see docs/SNAPSHOT_FORMAT.md) -----------------

constexpr char kMagic[8] = {'P', 'I', 'N', 'U', 'M', 'S', 'N', 'P'};
/// Written in the host's byte order; a reader on the other endianness
/// sees the bytes reversed and rejects the file instead of decoding
/// garbage.
constexpr uint32_t kEndianMarker = 0x01020304u;
constexpr size_t kHeaderBytes = 40;
constexpr size_t kSectionEntryBytes = 24;

/// Section tags. Unknown tags are skipped on read (a same-version writer
/// may append informational sections), but the three below are required.
constexpr uint32_t kSectionEpoch = 1;
constexpr uint32_t kSectionQueries = 2;
constexpr uint32_t kSectionCaches = 3;

// ---- FNV-1a 64: the checksum and the epoch fingerprints -----------------

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline Status Corrupt(const std::string& what) {
  return Status::Internal("snapshot corrupt: " + what);
}

/// Appends the originating file path to a failure Status. Fleet logs
/// aggregate errors from many processes serving many snapshots; a
/// path-free "snapshot corrupt" line cannot be acted on. Applied at the
/// boundary where the path is known (the two load paths + the saver), so
/// the byte-level validators stay path-agnostic and shareable.
inline Status AnnotateFile(Status st, const std::string& path) {
  if (st.ok()) return st;
  return Status(st.code(), st.message() + " [file: " + path + "]");
}

// ---- Byte-level encode/decode helpers -----------------------------------

class ByteWriter {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Raw(const void* data, size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }
  /// u64 element count + raw element bytes.
  template <typename T>
  void Vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(T));
  }

  const std::string& bytes() const { return out_; }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// Bounds-checked reader over one section's bytes. Overruns report
/// kInternal (corruption): by the time sections are decoded, the
/// header's file-size check has already ruled plain truncation out.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  Status Raw(void* dst, size_t n, const char* what) {
    if (n > size_ - pos_) {
      return Corrupt(std::string(what) + " overruns its section (" +
                     std::to_string(n) + " bytes at section offset " +
                     std::to_string(pos_) + " of " + std::to_string(size_) +
                     ")");
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  Status U32(uint32_t* v, const char* what) { return Raw(v, sizeof(*v), what); }
  Status U64(uint64_t* v, const char* what) { return Raw(v, sizeof(*v), what); }
  Status I32(int32_t* v, const char* what) { return Raw(v, sizeof(*v), what); }
  Status F64(double* v, const char* what) { return Raw(v, sizeof(*v), what); }

  /// Reads a u64-count-prefixed element array. The count is validated
  /// against the bytes actually remaining before anything is allocated,
  /// so a crafted count cannot trigger a huge resize.
  template <typename T>
  Status Vec(std::vector<T>* out, const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    PINUM_RETURN_IF_ERROR(U64(&count, what));
    if (count > (size_ - pos_) / sizeof(T)) {
      return Corrupt(std::string(what) + " count overruns its section (" +
                     std::to_string(count) + " elements declared at section"
                     " offset " + std::to_string(pos_ - sizeof(uint64_t)) +
                     ", " + std::to_string(size_ - pos_) + " bytes remain)");
    }
    out->resize(static_cast<size_t>(count));
    if (count != 0) {
      std::memcpy(out->data(), data_ + pos_,
                  static_cast<size_t>(count) * sizeof(T));
      pos_ += static_cast<size_t>(count) * sizeof(T);
    }
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == size_; }
  /// Bytes left in the section — the bound every count read from the
  /// file must be validated against *before* any allocation.
  size_t Remaining() const { return size_ - pos_; }
  /// Current offset into the section: lets length-prefixed sub-records
  /// (the caches section's per-record slices) be framed exactly.
  size_t Position() const { return pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ---- Whole-file framing -------------------------------------------------

/// A validated view of a snapshot's framing: the raw bytes (NOT owned —
/// the caller's buffer or mapping must outlive the view) plus the
/// section table.
struct SnapshotView {
  const char* data = nullptr;
  size_t size = 0;
  struct Section {
    uint32_t tag = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
  };
  std::vector<Section> sections;

  const Section* Find(uint32_t tag) const {
    for (const Section& s : sections) {
      if (s.tag == tag) return &s;
    }
    return nullptr;
  }
  const char* SectionData(const Section& s) const {
    return data + s.offset;
  }
};

/// Validates the file-level framing over raw bytes: magic, byte order,
/// version, declared length, checksum, and section-table bounds. Every
/// failure mode maps to its own StatusCode (see snapshot.h). This is
/// the one full pass over the bytes the mapped path pays (the checksum);
/// everything after it is O(sections + queries).
inline Status ValidateFraming(const char* data, size_t actual_size,
                              SnapshotView* out) {
  char msg[160];
  if (actual_size < kHeaderBytes) {
    std::snprintf(msg, sizeof(msg),
                  "snapshot truncated: %zu bytes is smaller than the %zu-byte"
                  " header",
                  actual_size, kHeaderBytes);
    return Status::OutOfRange(msg);
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a pinum snapshot (bad magic)");
  }
  uint32_t endian, version, section_count;
  uint64_t declared_size, checksum;
  std::memcpy(&endian, data + 8, 4);
  std::memcpy(&version, data + 12, 4);
  std::memcpy(&section_count, data + 16, 4);
  std::memcpy(&declared_size, data + 24, 8);
  std::memcpy(&checksum, data + 32, 8);
  if (endian != kEndianMarker) {
    return Status::InvalidArgument(
        "snapshot byte order differs from this host's (written on a"
        " foreign-endian machine)");
  }
  if (version > kSnapshotFormatVersion) {
    std::snprintf(msg, sizeof(msg),
                  "snapshot format version %u is newer than the newest"
                  " supported (%u); rebuild the snapshot or upgrade",
                  version, kSnapshotFormatVersion);
    return Status::Unimplemented(msg);
  }
  if (version == 0) return Corrupt("format version 0");
  if (version < kSnapshotFormatVersion) {
    // v1 predates per-query epoch stamps; v2 predates the relocatable
    // arena cache layout (its caches section is a per-field encoding
    // this reader no longer parses). Neither can be served or mapped,
    // so both report the same answer: rebuild and re-save.
    std::snprintf(msg, sizeof(msg),
                  "snapshot format version %u predates the arena cache"
                  " layout (oldest supported is %u); rebuild the caches and"
                  " save a fresh snapshot",
                  version, kSnapshotFormatVersion);
    return Status::Unimplemented(msg);
  }
  if (declared_size > actual_size) {
    std::snprintf(msg, sizeof(msg),
                  "snapshot truncated: file is %zu bytes, header declares"
                  " %" PRIu64,
                  actual_size, declared_size);
    return Status::OutOfRange(msg);
  }
  if (declared_size < actual_size) {
    return Corrupt("trailing bytes past the declared file size");
  }
  if (FnvBytes(kFnvOffset, data + kHeaderBytes,
               actual_size - kHeaderBytes) != checksum) {
    return Corrupt("checksum mismatch");
  }

  out->data = data;
  out->size = actual_size;
  out->sections.clear();
  const size_t table_bytes =
      static_cast<size_t>(section_count) * kSectionEntryBytes;
  if (table_bytes > actual_size - kHeaderBytes) {
    return Corrupt("section table overruns the file");
  }
  for (uint32_t i = 0; i < section_count; ++i) {
    const char* entry = data + kHeaderBytes + i * kSectionEntryBytes;
    SnapshotView::Section s;
    std::memcpy(&s.tag, entry, 4);
    std::memcpy(&s.offset, entry + 8, 8);
    std::memcpy(&s.length, entry + 16, 8);
    if (s.offset < kHeaderBytes + table_bytes || s.offset > actual_size ||
        s.length > actual_size - s.offset) {
      std::snprintf(msg, sizeof(msg),
                    "section %u (tag %u) overruns the file (offset %" PRIu64
                    ", length %" PRIu64 ", file is %zu bytes)",
                    i, s.tag, s.offset, s.length, actual_size);
      return Corrupt(msg);
    }
    out->sections.push_back(s);
  }
  return Status::OK();
}

// ---- Shared section decodes ---------------------------------------------

inline Status DecodeEpochSection(const char* data, size_t size,
                                 SnapshotEpoch* epoch) {
  ByteReader r(data, size);
  PINUM_RETURN_IF_ERROR(r.U64(&epoch->base_schema_hash, "base schema hash"));
  PINUM_RETURN_IF_ERROR(r.I32(&epoch->universe, "universe size"));
  if (epoch->universe < 0) return Corrupt("negative universe size");
  PINUM_RETURN_IF_ERROR(r.Vec(&epoch->candidate_ids, "candidate ids"));
  PINUM_RETURN_IF_ERROR(
      r.U64(&epoch->universe_prefix_hash, "universe prefix hash"));
  if (!r.AtEnd()) return Corrupt("trailing bytes in epoch section");
  return Status::OK();
}

inline StatusOr<SnapshotEpoch> DecodeEpoch(const SnapshotView& file) {
  const SnapshotView::Section* s = file.Find(kSectionEpoch);
  if (s == nullptr) return Corrupt("missing epoch section");
  SnapshotEpoch epoch;
  PINUM_RETURN_IF_ERROR(DecodeEpochSection(
      file.SectionData(*s), static_cast<size_t>(s->length), &epoch));
  return epoch;
}

inline std::string HashMismatch(const char* what, uint64_t stored,
                                uint64_t current) {
  char msg[256];
  std::snprintf(msg, sizeof(msg),
                "snapshot epoch mismatch: %s fingerprint is now"
                " %016" PRIx64 " but the snapshot was sealed under"
                " %016" PRIx64 "; rebuild the caches and save a fresh"
                " snapshot",
                what, current, stored);
  return msg;
}

/// The compatibility rule both load paths enforce (LoadSnapshot and
/// MappedWorkloadSnapshot::Map): same base schema, and the stored
/// candidate vocabulary must be the live one's first N candidates —
/// equality when nothing grew, a strict prefix when candidates were
/// appended after the seal (append-only growth keeps every stored id
/// meaning the same index). Anything else — removed, reordered, or
/// regenerated candidates — invalidates every sealed subscript and is
/// kFailedPrecondition.
inline Status CheckEpochCompatible(const SnapshotEpoch& stored,
                                   const SnapshotEpoch& expected) {
  if (stored.base_schema_hash != expected.base_schema_hash) {
    return Status::FailedPrecondition(
        HashMismatch("base catalog schema", stored.base_schema_hash,
                     expected.base_schema_hash));
  }
  const size_t stored_count = stored.candidate_ids.size();
  if (stored_count > expected.candidate_ids.size() ||
      !std::equal(stored.candidate_ids.begin(), stored.candidate_ids.end(),
                  expected.candidate_ids.begin())) {
    char msg[224];
    std::snprintf(msg, sizeof(msg),
                  "snapshot epoch mismatch: the snapshot's %zu candidate ids"
                  " are not a prefix of the live universe's %zu (candidates"
                  " were removed, reordered, or regenerated); rebuild the"
                  " caches and save a fresh snapshot",
                  stored_count, expected.candidate_ids.size());
    return Status::FailedPrecondition(msg);
  }
  if (stored.universe > expected.universe) {
    char msg[192];
    std::snprintf(msg, sizeof(msg),
                  "snapshot epoch mismatch: the snapshot covers %d universe"
                  " ids but the live universe has only %d; rebuild the caches"
                  " and save a fresh snapshot",
                  stored.universe, expected.universe);
    return Status::FailedPrecondition(msg);
  }
  // The prefix's *definitions* must match too (sizes included): verify
  // the stored final hash against the live chain's entry for that
  // prefix length.
  uint64_t live_prefix_hash = 0;
  if (stored_count == expected.candidate_ids.size()) {
    live_prefix_hash = expected.universe_prefix_hash;
  } else if (stored_count < expected.prefix_chain.size()) {
    live_prefix_hash = expected.prefix_chain[stored_count];
  } else {
    return Status::InvalidArgument(
        "expected epoch lacks the prefix chain needed to verify a"
        " strict-prefix snapshot (compute it with ComputeSnapshotEpoch)");
  }
  if (stored.universe_prefix_hash != live_prefix_hash) {
    return Status::FailedPrecondition(HashMismatch(
        "candidate-universe definitions (a candidate's key columns or size"
        " statistics changed)",
        stored.universe_prefix_hash, live_prefix_hash));
  }
  return Status::OK();
}

/// Decodes the query-names section into parallel (names, stamps)
/// vectors. Every count and length is validated against the remaining
/// bytes before any allocation, so a crafted count yields a Status, not
/// bad_alloc.
inline Status DecodeQueries(const SnapshotView& file,
                            std::vector<std::string>* names,
                            std::vector<uint64_t>* stamps) {
  const SnapshotView::Section* queries = file.Find(kSectionQueries);
  if (queries == nullptr) return Corrupt("missing query-names section");
  ByteReader r(file.SectionData(*queries),
               static_cast<size_t>(queries->length));
  uint32_t count = 0;
  PINUM_RETURN_IF_ERROR(r.U32(&count, "query count"));
  // Every entry takes at least its 4-byte length field plus its 8-byte
  // stamp.
  if (count > r.Remaining() / 12) {
    return Corrupt("query count overruns its section");
  }
  names->clear();
  stamps->clear();
  names->reserve(count);
  stamps->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    PINUM_RETURN_IF_ERROR(r.U32(&len, "query-name length"));
    if (len > r.Remaining()) {
      return Corrupt("query name overruns its section");
    }
    std::string name(len, '\0');
    PINUM_RETURN_IF_ERROR(r.Raw(name.data(), len, "query name"));
    uint64_t stamp = 0;
    PINUM_RETURN_IF_ERROR(r.U64(&stamp, "query stamp"));
    names->push_back(std::move(name));
    stamps->push_back(stamp);
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes in query-names section");
  return Status::OK();
}

/// One length-framed cache record inside the caches section: a v3 arena
/// image, viewed in place.
struct CacheRecord {
  const char* data = nullptr;
  size_t size = 0;
};

/// Frames the caches section's records without decoding them:
/// u32 count, u32 reserved, u64-count-prefixed u64 lengths, then the
/// record bytes back-to-back. `expected_count` is the query count — the
/// two sections must agree. Record *contents* are validated later by
/// SnapshotCodec (per record, both paths).
inline Status SliceCacheRecords(const SnapshotView& file,
                                size_t expected_count,
                                std::vector<CacheRecord>* out) {
  const SnapshotView::Section* caches = file.Find(kSectionCaches);
  if (caches == nullptr) return Corrupt("missing caches section");
  const char* section = file.SectionData(*caches);
  ByteReader r(section, static_cast<size_t>(caches->length));
  uint32_t count = 0;
  PINUM_RETURN_IF_ERROR(r.U32(&count, "cache count"));
  if (count != expected_count) {
    return Corrupt("cache count does not match query count");
  }
  uint32_t reserved = 0;
  PINUM_RETURN_IF_ERROR(r.U32(&reserved, "caches-section reserved field"));
  if (reserved != 0) return Corrupt("caches-section reserved field is set");
  std::vector<uint64_t> lengths;
  PINUM_RETURN_IF_ERROR(r.Vec(&lengths, "cache record lengths"));
  if (lengths.size() != count) {
    return Corrupt("cache record-length count does not match cache count");
  }
  out->clear();
  out->reserve(count);
  size_t at = r.Position();
  for (uint32_t i = 0; i < count; ++i) {
    const size_t len = static_cast<size_t>(lengths[i]);
    if (len > static_cast<size_t>(caches->length) - at) {
      return Corrupt("cache record " + std::to_string(i) + " overruns its"
                     " section (" + std::to_string(len) + " bytes declared at"
                     " section offset " + std::to_string(at) + ", section is " +
                     std::to_string(caches->length) + " bytes; file offset " +
                     std::to_string(caches->offset + at) + ")");
    }
    out->push_back(CacheRecord{section + at, len});
    at += len;
  }
  if (at != static_cast<size_t>(caches->length)) {
    return Corrupt("trailing bytes in caches section");
  }
  return Status::OK();
}

}  // namespace snapshot_internal
}  // namespace pinum

#endif  // PINUM_INUM_SNAPSHOT_INTERNAL_H_
