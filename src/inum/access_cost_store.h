// Cross-query sharing of access-cost optimizer calls (the workload-scale
// extension of Section V-B/V-C): per-table access costs depend only on
// the table's statistics and the query's column footprint on that table
// (filters, needed columns, join columns — see BuildTableAccessInfo), so
// two workload queries with the same footprint on a table can share one
// optimizer call's answer instead of paying for two.
#ifndef PINUM_INUM_ACCESS_COST_STORE_H_
#define PINUM_INUM_ACCESS_COST_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "catalog/types.h"
#include "optimizer/scan_builder.h"
#include "query/query.h"

namespace pinum {

/// Canonical signature of `query`'s access-cost context on `table`: the
/// exact inputs BuildTableAccessInfo consumes — sorted needed columns,
/// sorted filter predicates, and sorted join columns on the table.
/// Queries with equal signatures receive numerically identical
/// TableAccessInfo from the optimizer, by construction.
std::string TableContextSignature(const Query& query, TableId table);

/// Thread-safe store of access-cost answers shared by every per-query
/// cache build of one workload (fixed catalog, candidate universe, and
/// statistics — callers must not mix workloads in one store).
///
/// Two granularities, matching the two build procedures:
///  - per-table (PINUM): the keep-all-access-paths answer with the whole
///    candidate universe visible;
///  - per-candidate (classic INUM): the answer for the candidate's table
///    with only that candidate (plus base indexes) visible.
/// A heap-only tier serves sequential-scan costs for tables whose every
/// candidate call was deduplicated away.
///
/// Values for equal keys are identical, so concurrent builders may
/// compute the same entry twice without affecting results — first writer
/// wins, and duplicated work only shows up in the call accounting.
class SharedAccessCostStore {
 public:
  /// Universe-visible info for (table, signature). Returns true and
  /// copies into `out` on hit; `out->pos` is the stored query's position
  /// and must be remapped by the caller.
  bool LookupTable(const std::string& signature, TableAccessInfo* out) const;
  void StoreTable(const std::string& signature, const TableAccessInfo& info);

  /// Single-candidate info for (candidate, table signature).
  bool LookupCandidate(IndexId candidate, const std::string& signature,
                       TableAccessInfo* out) const;
  void StoreCandidate(IndexId candidate, const std::string& signature,
                      const TableAccessInfo& info);

  /// Fallback info for a table signature. Serves tables none of whose
  /// candidate calls ran (classic builds with every call shared): under
  /// equal footprints the stored answer — heap plus whatever indexes its
  /// call saw — is exactly what an unshared build would have absorbed for
  /// the table. Write ordering: StoreTable's universe-visible answer is
  /// authoritative (overwrites); StoreFallback's base-only answers are
  /// first-wins (equal keys carry identical values); StoreCandidate never
  /// writes this tier, so a candidate-specific answer can never mask the
  /// base-table one.
  bool LookupFallback(const std::string& signature,
                      TableAccessInfo* out) const;
  /// Registers `info` under `signature` (classic builds call this for
  /// every table of every un-shared answer, since their per-candidate
  /// entries only cover the candidate's own table).
  void StoreFallback(const std::string& signature,
                     const TableAccessInfo& info);

  /// Drops every stored answer (all three tiers) whose table is in
  /// `tables`, returning how many entries were erased. The incremental
  /// reseal path calls this with exactly the tables whose statistics /
  /// schema / index slice drifted, so answers for unchanged tables keep
  /// serving later rebuilds — the "still-valid cross-query shared
  /// access costs" half of the reseal contract. Entries for unchanged
  /// tables are exactly the ones whose values a fresh optimizer call
  /// would reproduce, so keeping them never changes rebuilt caches.
  size_t InvalidateTables(const std::vector<TableId>& tables);

  int64_t hits() const;
  int64_t misses() const;
  size_t NumEntries() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TableAccessInfo> by_table_;
  std::map<std::pair<IndexId, std::string>, TableAccessInfo> by_candidate_;
  std::map<std::string, TableAccessInfo> fallback_;
  mutable int64_t hits_ = 0;
  mutable int64_t misses_ = 0;
};

}  // namespace pinum

#endif  // PINUM_INUM_ACCESS_COST_STORE_H_
