#include "inum/access_cost_table.h"

#include <algorithm>

namespace pinum {

AccessCostTable::AccessCostTable(const std::vector<TableAccessInfo>& info) {
  for (const auto& t : info) Absorb(t);
}

void AccessCostTable::Absorb(const TableAccessInfo& info) {
  if (info.pos < 0) return;
  if (static_cast<size_t>(info.pos) >= tables_.size()) {
    tables_.resize(static_cast<size_t>(info.pos) + 1);
  }
  PerTable& t = tables_[static_cast<size_t>(info.pos)];
  for (const ScanOption& opt : info.options) {
    if (opt.index == kInvalidIndexId) {
      t.heap_cost = std::min(t.heap_cost, opt.cost.total);
      continue;
    }
    IndexAccessCosts& c = t.by_index[opt.index];
    c.index = opt.index;
    c.scan_cost = std::min(c.scan_cost, opt.cost.total);
    if (!opt.order.empty()) {
      // Minimize per delivered order column: an index whose scan options
      // deliver different orders must not advertise one column's cheapest
      // cost under another column.
      const ColumnRef lead = opt.order.Leading();
      auto it = std::find_if(c.ordered.begin(), c.ordered.end(),
                             [&](const IndexAccessCosts::OrderedCost& o) {
                               return o.column == lead;
                             });
      if (it == c.ordered.end()) {
        c.ordered.push_back({lead, opt.cost.total});
      } else {
        it->cost = std::min(it->cost, opt.cost.total);
      }
    }
  }
  for (const ProbeOption& probe : info.probes) {
    IndexAccessCosts& c = t.by_index[probe.index];
    c.index = probe.index;
    if (probe.cost_per_probe.total < c.probe_cost) {
      c.probe_cost = probe.cost_per_probe.total;
      c.probe_rows = probe.rows_per_probe;
      c.probe_column = probe.column;
    }
  }
}

double AccessCostTable::HeapCost(int pos) const {
  if (pos < 0 || static_cast<size_t>(pos) >= tables_.size()) {
    return kInfiniteCost;
  }
  return tables_[static_cast<size_t>(pos)].heap_cost;
}

double AccessCostTable::Unordered(int pos, const IndexConfig& config) const {
  if (pos < 0 || static_cast<size_t>(pos) >= tables_.size()) {
    return kInfiniteCost;
  }
  const PerTable& t = tables_[static_cast<size_t>(pos)];
  double best = t.heap_cost;
  for (IndexId id : config) {
    auto it = t.by_index.find(id);
    if (it != t.by_index.end()) best = std::min(best, it->second.scan_cost);
  }
  return best;
}

double AccessCostTable::Ordered(int pos, ColumnRef col,
                                const IndexConfig& config) const {
  if (pos < 0 || static_cast<size_t>(pos) >= tables_.size()) {
    return kInfiniteCost;
  }
  const PerTable& t = tables_[static_cast<size_t>(pos)];
  double best = kInfiniteCost;
  for (IndexId id : config) {
    auto it = t.by_index.find(id);
    if (it != t.by_index.end()) {
      best = std::min(best, it->second.OrderedCostFor(col));
    }
  }
  return best;
}

double AccessCostTable::Probe(int pos, ColumnRef col,
                              const IndexConfig& config) const {
  if (pos < 0 || static_cast<size_t>(pos) >= tables_.size()) {
    return kInfiniteCost;
  }
  const PerTable& t = tables_[static_cast<size_t>(pos)];
  double best = kInfiniteCost;
  for (IndexId id : config) {
    auto it = t.by_index.find(id);
    if (it != t.by_index.end() && it->second.probe_column == col) {
      best = std::min(best, it->second.probe_cost);
    }
  }
  return best;
}

size_t AccessCostTable::NumIndexCosts() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t.by_index.size();
  return n;
}

}  // namespace pinum
