// Sealed-cache snapshots: versioned on-disk persistence for the serving
// layer. One snapshot file holds a whole workload's sealed caches (plus
// the query names they belong to), so a what-if service or advisor
// session can restart in milliseconds instead of re-paying the optimizer
// calls the caches were built from — the restart-cost gap the paper's
// "one optimizer call" pitch leaves open.
//
// The format is specified byte-for-byte in docs/SNAPSHOT_FORMAT.md; the
// spec and this code are kept in lockstep through kSnapshotFormatVersion
// (bump it in both places together). Three properties the format
// guarantees:
//
//  - exact round-trip: doubles are stored as their raw IEEE-754 bit
//    patterns (the kInfiniteCost sentinel included), so a restored
//    cache's Cost()/CostWithExtra() answers are bit-identical to the
//    sealed original's — the same contract sealing itself makes against
//    the build-time cache;
//  - loud staleness: every snapshot embeds an epoch fingerprint of the
//    catalog schema, the candidate universe (size and ids), and the
//    statistics it was sealed under. Loading against a system whose
//    epoch differs fails with kFailedPrecondition instead of silently
//    serving costs for a world that no longer exists;
//  - no trust in the bytes: the file carries its own length and a
//    checksum, every section read is bounds-checked, and the decoded
//    cache's structural invariants (CSR monotonicity, term-id ranges,
//    plan ordering) are re-validated, so a truncated, corrupt, or
//    crafted file yields a descriptive Status, never UB.
//
// Distinct failure paths return distinct codes: kNotFound (missing
// file), kOutOfRange (truncated), kInvalidArgument (not a snapshot /
// foreign byte order), kUnimplemented (future format version),
// kInternal (corruption), kFailedPrecondition (epoch mismatch).
#ifndef PINUM_INUM_SNAPSHOT_H_
#define PINUM_INUM_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "inum/sealed_cache.h"
#include "stats/table_stats.h"
#include "whatif/candidate_set.h"

namespace pinum {

/// On-disk format version this build writes and the newest it can read.
/// Version history lives in docs/SNAPSHOT_FORMAT.md.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Fingerprint of the world a snapshot was sealed under. Two systems
/// agree on an epoch iff costs sealed on one are valid on the other:
/// the schema hash covers tables, columns, foreign keys, and every
/// universe index definition (key columns and size statistics included —
/// the advisor prices bytes from them); the stats hash covers every
/// table's row counts, pages, and per-column statistics; the candidate
/// ids pin the universe's stable-id vocabulary that sealed vectors are
/// subscripted by.
struct SnapshotEpoch {
  uint64_t schema_hash = 0;
  uint64_t stats_hash = 0;
  /// One past the largest universe IndexId (CandidateSet::NumIndexIds).
  IndexId universe = 0;
  std::vector<IndexId> candidate_ids;

  bool operator==(const SnapshotEpoch&) const = default;
};

/// The epoch of a live (candidate universe, statistics) pair —
/// deterministic FNV-1a over a canonical byte serialization, so equal
/// inputs hash equally across processes and runs.
SnapshotEpoch ComputeSnapshotEpoch(const CandidateSet& set,
                                   const StatsCatalog& stats);

/// A restored snapshot: per-query sealed caches, serving-ready (feed
/// `sealed` straight to a WorkloadCostEvaluator), with the query names
/// they were built from (parallel vectors) for attribution.
struct WorkloadSnapshot {
  std::vector<std::string> query_names;
  std::vector<SealedCache> sealed;
};

/// Writes `sealed` (named by the parallel `query_names`) and `epoch` to
/// `path` as one self-contained snapshot file. The bytes are fully
/// serialized first, written to `path + ".tmp"`, and renamed into place
/// only on success, so a failed write (kInternal) never destroys a
/// previously good snapshot at `path`; on success any existing file is
/// replaced.
Status SaveSnapshot(const std::string& path,
                    const std::vector<std::string>& query_names,
                    const std::vector<SealedCache>& sealed,
                    const SnapshotEpoch& epoch);

/// Reads a snapshot back, validating magic, byte order, version, length,
/// checksum, structural invariants, and finally that the stored epoch
/// equals `expected` (compute it from the live universe and stats with
/// ComputeSnapshotEpoch). On success the returned caches answer every
/// cost question bit-identically to the caches that were saved.
StatusOr<WorkloadSnapshot> LoadSnapshot(const std::string& path,
                                        const SnapshotEpoch& expected);

/// Header-and-epoch-only read: what a snapshot claims to be sealed
/// under, without decoding the caches. Fails on the same magic / byte
/// order / truncation / version / checksum paths as LoadSnapshot, but
/// never with kFailedPrecondition — inspection tools use this to say
/// *why* a snapshot is stale.
StatusOr<SnapshotEpoch> ReadSnapshotEpoch(const std::string& path);

}  // namespace pinum

#endif  // PINUM_INUM_SNAPSHOT_H_
