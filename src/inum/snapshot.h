// Sealed-cache snapshots: versioned on-disk persistence for the serving
// layer. One snapshot file holds a whole workload's sealed caches (plus
// the query names they belong to), so a what-if service or advisor
// session can restart in milliseconds instead of re-paying the optimizer
// calls the caches were built from — the restart-cost gap the paper's
// "one optimizer call" pitch leaves open.
//
// The format is specified byte-for-byte in docs/SNAPSHOT_FORMAT.md; the
// spec and this code are kept in lockstep through kSnapshotFormatVersion
// (bump it in both places together). Three properties the format
// guarantees:
//
//  - exact round-trip: doubles are stored as their raw IEEE-754 bit
//    patterns (the kInfiniteCost sentinel included), so a restored
//    cache's Cost()/CostWithExtra() answers are bit-identical to the
//    sealed original's — the same contract sealing itself makes against
//    the build-time cache;
//  - loud staleness, at query granularity: every snapshot embeds a
//    fingerprint of the base catalog schema and of the candidate
//    universe it was sealed over, plus one epoch stamp per query
//    covering exactly the catalog/statistics slices that query touches.
//    Loading against an incompatible world — base schema changed, or the
//    stored universe is not a prefix of the live one — fails with
//    kFailedPrecondition; loading against a world that merely drifted
//    (stats re-ANALYZEd, candidates appended) succeeds and reports
//    exactly which queries are stale, so incremental reseal can re-pay
//    the optimizer for those alone instead of rebuilding the workload;
//  - no trust in the bytes: the file carries its own length and a
//    checksum, every section read is bounds-checked, and the decoded
//    cache's structural invariants (CSR monotonicity, term-id ranges,
//    plan ordering) are re-validated, so a truncated, corrupt, or
//    crafted file yields a descriptive Status, never UB.
//
// Distinct failure paths return distinct codes: kNotFound (missing
// file), kOutOfRange (truncated), kInvalidArgument (not a snapshot /
// foreign byte order), kUnimplemented (future format version),
// kInternal (corruption), kFailedPrecondition (epoch mismatch).
#ifndef PINUM_INUM_SNAPSHOT_H_
#define PINUM_INUM_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "inum/sealed_cache.h"
#include "query/query.h"
#include "stats/table_stats.h"
#include "whatif/candidate_set.h"

namespace pinum {

/// On-disk format version this build writes and the newest it can read.
/// Version history lives in docs/SNAPSHOT_FORMAT.md. v3's caches
/// section stores each cache as its relocatable arena image (see
/// inum/arena.h), 8-aligned in the file, which is what makes the
/// zero-copy mapped reader (inum/snapshot_mmap.h) possible; older
/// versions are rejected kUnimplemented, not migrated.
inline constexpr uint32_t kSnapshotFormatVersion = 3;

/// Fingerprint of the world a snapshot was sealed under. The base
/// schema hash covers tables, columns, foreign keys, and the real
/// (base-catalog) index definitions — the part of the world candidates
/// are layered onto. The candidate vocabulary is fingerprinted as a
/// *running prefix chain* over the candidate definitions in id order
/// (key columns and size statistics included — the advisor prices bytes
/// from them), so a snapshot sealed before an append-only universe
/// growth verifies against the live chain in O(1): the stored epoch is
/// compatible iff the base schema matches and its candidate ids + final
/// prefix hash name a prefix of the live universe. Statistics are
/// deliberately absent here — stats drift is per-query staleness (see
/// ComputeQueryStamp), not an epoch break.
struct SnapshotEpoch {
  uint64_t base_schema_hash = 0;
  /// One past the largest universe IndexId (CandidateSet::NumIndexIds).
  IndexId universe = 0;
  std::vector<IndexId> candidate_ids;
  /// Hash of the full candidate-definition sequence, in id order —
  /// the last entry of ComputeUniversePrefixChain.
  uint64_t universe_prefix_hash = 0;
  /// Live-side only, never stored: hash of every prefix length
  /// ([k] covers the first k candidates; [0] is the empty prefix), so a
  /// stored epoch of any earlier generation verifies in O(1). Empty on
  /// epochs read back from a file (ReadSnapshotEpoch).
  std::vector<uint64_t> prefix_chain;

  /// Equality of the persisted fields (the live-only prefix_chain is
  /// derived from candidate defs and excluded so stored and live epochs
  /// of the same world compare equal).
  bool operator==(const SnapshotEpoch& o) const {
    return base_schema_hash == o.base_schema_hash && universe == o.universe &&
           candidate_ids == o.candidate_ids &&
           universe_prefix_hash == o.universe_prefix_hash;
  }
};

/// The epoch of a live candidate universe — deterministic FNV-1a over a
/// canonical byte serialization, so equal inputs hash equally across
/// processes and runs. Fills prefix_chain.
SnapshotEpoch ComputeSnapshotEpoch(const CandidateSet& set);

/// The running candidate-vocabulary chain: out[k] fingerprints the first
/// k candidates' (id, definition) pairs in order; out[0] is the empty
/// prefix. Any definition change, reorder, or removal changes every
/// later entry — only a pure append leaves existing entries intact.
std::vector<uint64_t> ComputeUniversePrefixChain(const CandidateSet& set);

/// Per-query epoch stamp: a fingerprint of everything this query's
/// sealed cache was derived from — the query's own structure (tables,
/// selects, filters, joins, grouping, ordering) plus, for every table it
/// touches, that table's schema slice, statistics, foreign keys, and
/// every universe index defined on it (base and candidate, sizes
/// included). Two worlds assign a query equal stamps iff its cold-built
/// cache would be identical in both; a drifted stamp is exactly the
/// "this query is stale, reseal it" signal incremental reseal consumes.
/// `table_fp_cache`, when given, memoizes ComputeTableEpochFingerprint
/// results across calls — whole-workload stampings would otherwise
/// re-hash a shared table (histograms included) once per query.
uint64_t ComputeQueryStamp(const Query& query, const CandidateSet& set,
                           const StatsCatalog& stats,
                           std::map<TableId, uint64_t>* table_fp_cache =
                               nullptr);

/// The per-table slice ComputeQueryStamp folds per touched table, also
/// usable on its own to decide which SharedAccessCostStore tables to
/// invalidate after drift: covers the table definition, its statistics,
/// foreign keys touching it, and every universe index on it.
uint64_t ComputeTableEpochFingerprint(TableId table, const CandidateSet& set,
                                      const StatsCatalog& stats);

/// A restored snapshot: per-query sealed caches, serving-ready (feed
/// `sealed` straight to a WorkloadCostEvaluator), with the query names
/// and epoch stamps they were sealed under (parallel vectors). A cache
/// whose stored stamp differs from the live query's stamp is stale —
/// WorkloadCacheBuilder::StaleQueries computes exactly that set.
struct WorkloadSnapshot {
  std::vector<std::string> query_names;
  std::vector<uint64_t> query_stamps;
  std::vector<SealedCache> sealed;
  /// The stored epoch's universe bound: equal to the live
  /// NumIndexIds(), or smaller when the snapshot predates an append.
  IndexId universe = 0;
};

/// Accounting for one SaveSnapshot call: how many cache records were
/// re-serialized vs spliced verbatim from the previous snapshot at the
/// same path (possible when a query's name and stamp are unchanged —
/// the incremental-reseal save path re-encodes only resealed queries).
struct SnapshotSaveStats {
  size_t caches_encoded = 0;
  size_t caches_patched = 0;
};

/// Writes `sealed` (named by the parallel `query_names`, stamped by the
/// parallel `query_stamps`) and `epoch` to `path` as one self-contained
/// snapshot file. When a readable same-version snapshot already exists
/// at `path`, cache records whose (name, stamp) pair it already holds
/// are patched in verbatim instead of re-encoded — stamps fingerprint
/// every input a cache is derived from, so an unchanged stamp means
/// unchanged bytes. The bytes are fully serialized first, written to
/// `path + ".tmp"`, and renamed into place only on success, so a failed
/// write (kInternal) never destroys a previously good snapshot at
/// `path`; on success any existing file is replaced.
Status SaveSnapshot(const std::string& path,
                    const std::vector<std::string>& query_names,
                    const std::vector<uint64_t>& query_stamps,
                    const std::vector<SealedCache>& sealed,
                    const SnapshotEpoch& epoch,
                    SnapshotSaveStats* save_stats = nullptr);

/// Reads a snapshot back, validating magic, byte order, version, length,
/// checksum, and structural invariants, then that the stored epoch is
/// *compatible* with `expected` (compute it from the live universe with
/// ComputeSnapshotEpoch): the base schema hash must match and the stored
/// candidate ids + prefix hash must name a prefix of the live chain —
/// equality when nothing grew, a strict prefix when candidates were
/// appended since the seal. Any other mutation (removed, reordered, or
/// redefined candidates, base-schema change) is kFailedPrecondition.
/// Per-query staleness is NOT checked here — the load reports stored
/// stamps and the caller diffs them against live ones (see
/// WorkloadCacheBuilder::StaleQueries) to decide what to reseal. On
/// success the returned caches answer every cost question bit-identically
/// to the caches that were saved.
StatusOr<WorkloadSnapshot> LoadSnapshot(const std::string& path,
                                        const SnapshotEpoch& expected);

/// Header-and-epoch-only read: what a snapshot claims to be sealed
/// under, without decoding the caches. Fails on the same magic / byte
/// order / truncation / version / checksum paths as LoadSnapshot, but
/// never with kFailedPrecondition — inspection tools use this to say
/// *why* a snapshot is stale.
StatusOr<SnapshotEpoch> ReadSnapshotEpoch(const std::string& path);

}  // namespace pinum

#endif  // PINUM_INUM_SNAPSHOT_H_
