// Arena backing for the sealed serving form: one relocatable,
// 8-byte-aligned byte image per cache, read through typed span views.
//
// The point of the indirection is that the same read-only view code
// serves two backings:
//
//  - an *owned* arena: Seal() (and snapshot decode) packs the cache's
//    flat arrays into one heap buffer, owned via the shared_ptr below —
//    copies of a SealedCache share the immutable buffer instead of
//    deep-copying eleven vectors, which is what makes publishing a
//    serving generation (a whole-result copy) cheap;
//  - a *borrowed* arena: a view straight into an mmap'ed snapshot file
//    (src/inum/snapshot_mmap.h). The owner handle then pins the mapping,
//    so a cache outliving the MappedWorkloadSnapshot that produced it is
//    still backed by live pages.
//
// Images are relocatable by construction — internal references are byte
// offsets from the image start, never pointers — so the bytes a heap
// arena holds are exactly the bytes the snapshot writes, and mapping a
// file needs no fix-up pass. Every array an image holds starts at an
// offset that is a multiple of kArenaAlign, which together with an
// aligned image start (malloc'ed buffers and page-aligned mappings both
// qualify) makes the typed views below safely dereferenceable.
#ifndef PINUM_INUM_ARENA_H_
#define PINUM_INUM_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>

namespace pinum {

/// Alignment every arena image start and every in-image array offset is
/// a multiple of: the strictest alignment among the element types the
/// sealed form stores (double / uint64_t).
inline constexpr size_t kArenaAlign = 8;

/// `n` rounded up to the next multiple of kArenaAlign.
constexpr size_t ArenaAlignUp(size_t n) {
  return (n + kArenaAlign - 1) & ~(kArenaAlign - 1);
}

/// A read-only view of `size` contiguous T — the serve-time face of an
/// arena-resident array. Non-owning: the SealedCache holding the span
/// also holds the Arena that keeps the bytes alive.
template <typename T>
class ArenaSpan {
 public:
  ArenaSpan() = default;
  ArenaSpan(const T* data, size_t size) : data_(data), size_(size) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

/// One immutable byte image plus whatever keeps it alive: a heap buffer
/// (owned arena) or a file mapping (borrowed arena). Copies share the
/// owner — arenas are immutable after construction, so sharing is safe
/// across threads (the same guarantee SealedCache already documents).
struct Arena {
  const char* data = nullptr;
  size_t size = 0;
  /// Type-erased keep-alive handle. For owned arenas this is the buffer
  /// itself; for borrowed arenas, the mapped file. Null only for the
  /// empty (default-constructed) arena.
  std::shared_ptr<const void> owner;

  bool empty() const { return size == 0; }

  /// Heap-allocates an owned arena holding a copy of `bytes[0, n)`.
  /// operator new's fundamental alignment (>= 8 everywhere this builds)
  /// provides the image-start alignment contract.
  static Arena CopyOf(const char* bytes, size_t n);
};

inline Arena Arena::CopyOf(const char* bytes, size_t n) {
  Arena arena;
  if (n == 0) return arena;
  std::shared_ptr<char[]> buffer(new char[n]);
  std::memcpy(buffer.get(), bytes, n);
  arena.data = buffer.get();
  arena.size = n;
  arena.owner = std::move(buffer);
  return arena;
}

}  // namespace pinum

#endif  // PINUM_INUM_ARENA_H_
