// Per-table access-path enumeration: the Access Path Collector of
// Figure 2/3 in the paper. The same computation feeds (a) the planner's
// scan paths, (b) PINUM's one-call access-cost harvest (Section V-C), and
// (c) INUM's per-configuration access-cost pricing — keeping all three
// numerically identical by construction.
#ifndef PINUM_OPTIMIZER_SCAN_BUILDER_H_
#define PINUM_OPTIMIZER_SCAN_BUILDER_H_

#include <vector>

#include "catalog/catalog.h"
#include "optimizer/cost_model.h"
#include "optimizer/order_spec.h"
#include "query/query.h"
#include "stats/table_stats.h"

namespace pinum {

/// One way of accessing a base table.
struct ScanOption {
  /// kInvalidIndexId = heap sequential scan.
  IndexId index = kInvalidIndexId;
  bool index_only = false;
  Cost cost;
  /// Rows produced (after all of the query's filters on this table).
  double rows = 0;
  /// Fraction of the index traversed (1.0 = full scan).
  double sel_index = 1.0;
  /// Delivered order (index key columns; empty for heap scan).
  OrderSpec order;
};

/// One way of probing a base table with an equality parameter (the inner
/// side of an index nested-loop join).
struct ProbeOption {
  IndexId index = kInvalidIndexId;
  /// Probe column (must be the index's leading column).
  ColumnRef column;
  bool index_only = false;
  /// Cost and output rows of a single probe.
  Cost cost_per_probe;
  double rows_per_probe = 0;
};

/// Everything the planner needs to know about one base table of a query.
struct TableAccessInfo {
  TableId table = kInvalidTableId;
  int pos = -1;
  /// Row count before filters (from statistics).
  double raw_rows = 0;
  /// Combined selectivity of the query's filters on this table.
  double filter_sel = 1.0;
  /// raw_rows x filter_sel, clamped to >= 1.
  double filtered_rows = 1;
  double heap_pages = 1;
  /// Output width (bytes of columns the query needs).
  double needed_width = 8;
  int num_filters = 0;
  std::vector<ScanOption> options;
  std::vector<ProbeOption> probes;
};

/// Computes TableAccessInfo for table position `pos` of `query`.
///
/// Enumerates: heap scan; for every visible index with a useful leading
/// column a regular and (when the index covers all needed columns) an
/// index-only scan; and equality-probe options for every join column.
/// No pruning happens here — the collector level decides what to keep
/// (all of it under PINUM's keep_all hook, Section V-C; the cheapest per
/// interesting order otherwise).
StatusOr<TableAccessInfo> BuildTableAccessInfo(const Query& query, int pos,
                                               const Catalog& catalog,
                                               const StatsCatalog& stats,
                                               const CostModel& model);

}  // namespace pinum

#endif  // PINUM_OPTIMIZER_SCAN_BUILDER_H_
