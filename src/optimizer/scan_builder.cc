#include "optimizer/scan_builder.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace pinum {

namespace {

/// Estimated B-tree height for a hypothetical index (real indexes carry
/// their true height): levels needed above the leaves.
int EstimateHeight(int64_t leaf_pages) {
  int height = 0;
  int64_t pages = leaf_pages;
  const int64_t fanout = 256;  // ~8 KB page / 32-byte downlink
  while (pages > 1) {
    pages = (pages + fanout - 1) / fanout;
    ++height;
  }
  return height;
}

}  // namespace

StatusOr<TableAccessInfo> BuildTableAccessInfo(const Query& query, int pos,
                                               const Catalog& catalog,
                                               const StatsCatalog& stats,
                                               const CostModel& model) {
  TableAccessInfo info;
  info.pos = pos;
  info.table = query.tables[static_cast<size_t>(pos)];
  const TableDef* def = catalog.FindTable(info.table);
  const TableStats* tstats = stats.Find(info.table);
  if (def == nullptr || tstats == nullptr) {
    return Status::NotFound("missing table or statistics for table id " +
                            std::to_string(info.table));
  }

  info.raw_rows = std::max(1.0, tstats->row_count);
  info.heap_pages = std::max(1.0, tstats->heap_pages);

  const std::vector<FilterPredicate> filters = query.FiltersOn(info.table);
  info.num_filters = static_cast<int>(filters.size());
  info.filter_sel = 1.0;
  for (const auto& f : filters) {
    const ColumnStats* cs = stats.FindColumn(f.column);
    if (cs == nullptr) {
      return Status::NotFound("missing column statistics");
    }
    info.filter_sel *= RestrictionSelectivity(*cs, f.op, f.constant);
  }
  info.filtered_rows = std::max(1.0, info.raw_rows * info.filter_sel);

  const std::vector<ColumnIdx> needed = query.NeededColumns(info.table);
  info.needed_width = 0;
  for (ColumnIdx c : needed) {
    info.needed_width += def->columns[static_cast<size_t>(c)].width();
  }
  info.needed_width = std::max(8.0, info.needed_width);

  // ---- Heap sequential scan ----
  ScanOption seq;
  seq.index = kInvalidIndexId;
  seq.rows = info.filtered_rows;
  seq.cost = model.SeqScan(info.heap_pages, info.raw_rows, info.num_filters);
  info.options.push_back(seq);

  // Join columns on this table (probe candidates).
  std::set<ColumnIdx> join_cols;
  for (const auto& j : query.joins) {
    if (j.Touches(info.table)) join_cols.insert(j.SideOn(info.table).column);
  }

  // ---- Index scans and probes ----
  for (const IndexDef* idx : catalog.IndexesOnTable(info.table)) {
    const ColumnIdx lead = idx->leading_column();
    const ColumnStats* lead_stats =
        stats.FindColumn({info.table, lead});
    if (lead_stats == nullptr) continue;
    const int height =
        idx->height > 0 ? idx->height
                        : EstimateHeight(std::max<int64_t>(1, idx->leaf_pages));
    // `total_pages` is what the catalog believes the index occupies; for
    // hypothetical indexes the paper's estimator sets it to the leaf pages
    // only (Section V-A) — the deliberate source of the small what-if
    // error measured in Section VI-B.
    const double index_pages =
        static_cast<double>(std::max<int64_t>(1, idx->total_pages));

    // Boundary (sargable) predicates on the leading column shrink the
    // traversed fraction of the index.
    double sel_index = 1.0;
    int boundary_terms = 0;
    for (const auto& f : filters) {
      if (f.column.column == lead) {
        sel_index *= RestrictionSelectivity(*lead_stats, f.op, f.constant);
        ++boundary_terms;
      }
    }
    const double rows_fetched =
        std::max(1.0, info.raw_rows * std::min(1.0, sel_index));
    const bool covers = idx->CoversColumns(needed);

    for (const bool index_only : {false, true}) {
      if (index_only && !covers) continue;
      ScanOption opt;
      opt.index = idx->id;
      opt.index_only = index_only;
      opt.sel_index = sel_index;
      opt.rows = info.filtered_rows;
      opt.cost = model.IndexScan(
          index_pages, height, info.heap_pages, sel_index, rows_fetched,
          info.filtered_rows, lead_stats->correlation, index_only,
          info.num_filters - boundary_terms);
      for (ColumnIdx k : idx->key_columns) {
        opt.order.columns.push_back({info.table, k});
      }
      info.options.push_back(opt);
    }

    // Probe option when the leading column is a join column.
    if (join_cols.count(lead) > 0) {
      const double nd = std::max(1.0, lead_stats->n_distinct);
      const double rows_matched = info.raw_rows / nd;
      const double leaf_pages_touched = std::max(
          1.0, std::ceil(static_cast<double>(idx->leaf_pages) / nd));
      for (const bool index_only : {false, true}) {
        if (index_only && !covers) continue;
        ProbeOption probe;
        probe.index = idx->id;
        probe.column = {info.table, lead};
        probe.index_only = index_only;
        probe.cost_per_probe =
            model.IndexProbe(height, leaf_pages_touched, rows_matched,
                             index_only, info.num_filters);
        probe.rows_per_probe =
            std::max(1e-9, rows_matched * info.filter_sel);
        info.probes.push_back(probe);
      }
    }
  }
  return info;
}

}  // namespace pinum
