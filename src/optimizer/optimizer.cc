#include "optimizer/optimizer.h"

#include <algorithm>

#include "optimizer/grouping_planner.h"
#include "optimizer/interesting_orders.h"
#include "optimizer/join_planner.h"
#include "optimizer/planner_context.h"

namespace pinum {

namespace {

/// Truncates each scan option's delivered order to its useful prefix:
/// PostgreSQL keeps index pathkeys only when they match an interesting
/// order of the query (the Access Path Collector filtering of
/// Section III). For the paper's single-column interesting orders this
/// reduces to: keep the leading column iff it is interesting.
void TruncateToUsefulOrders(PlannerContext* ctx) {
  const auto interesting = PerTableInterestingOrders(*ctx->query);
  for (auto& rel : ctx->rels) {
    const auto& useful = interesting[static_cast<size_t>(rel.pos)];
    for (auto& opt : rel.options) {
      if (opt.order.empty()) continue;
      const ColumnRef lead = opt.order.Leading();
      const bool is_useful =
          std::find(useful.begin(), useful.end(), lead) != useful.end();
      opt.order = is_useful ? OrderSpec::Single(lead) : OrderSpec::None();
    }
  }
}

}  // namespace

StatusOr<OptimizeResult> Optimizer::Optimize(const Query& query,
                                             const PlannerKnobs& knobs) const {
  PINUM_ASSIGN_OR_RETURN(
      PlannerContext ctx,
      BuildPlannerContext(query, *catalog_, *stats_, knobs));
  TruncateToUsefulOrders(&ctx);

  JoinPlanner joiner(&ctx);
  PINUM_ASSIGN_OR_RETURN(std::vector<PathPtr> tops, joiner.Run());
  PINUM_ASSIGN_OR_RETURN(std::vector<PathPtr> finals,
                         FinalizePlans(ctx, tops));

  OptimizeResult result;
  result.paths_considered = joiner.paths_considered();
  result.best = finals[0];
  for (const auto& p : finals) {
    if (p->cost.total < result.best->cost.total) result.best = p;
  }
  if (knobs.hooks.export_all_plans) {
    result.exported = std::move(finals);
  } else {
    result.exported = {result.best};
  }
  if (knobs.hooks.keep_all_access_paths) {
    result.access_info = std::move(ctx.rels);
  }
  return result;
}

}  // namespace pinum
