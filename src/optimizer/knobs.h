// Planner configuration: the GUC-style switches the paper manipulates
// (enable_nestloop, Section V-B) plus the PINUM hooks (Sections V-C/V-D).
#ifndef PINUM_OPTIMIZER_KNOBS_H_
#define PINUM_OPTIMIZER_KNOBS_H_

#include "optimizer/cost_model.h"

namespace pinum {

/// The optimizer hooks PINUM adds (the dotted/dashed arrows of Figure 3).
struct PlannerHooks {
  /// Section V-C: the access-path collector keeps *every* index access
  /// path instead of the cheapest per interesting order, and exports the
  /// per-index access costs with the answer.
  bool keep_all_access_paths = false;
  /// Section V-D: the join planner retains one optimal plan per useful
  /// interesting-order combination (dominance-pruned) and the grouping
  /// planner exports all of them instead of only the winner.
  bool export_all_plans = false;
  /// Ablation A1: skip the Section V-D dominance pruning (plans are still
  /// deduplicated per (order, requirement) key). Exports the raw per-IOC
  /// plan set — larger and slower, measuring what the pruning buys.
  bool disable_dominance_pruning = false;
};

/// Planner switches and cost constants.
struct PlannerKnobs {
  /// When false, nested-loop joins are *removed* from the search space
  /// (the paper tweaks the join planner beyond the usual cost-penalty
  /// semantics of PostgreSQL's enable_nestloop; Section V-B).
  bool enable_nestloop = true;
  bool enable_hashjoin = true;
  bool enable_mergejoin = true;
  CostParams cost;
  PlannerHooks hooks;
};

}  // namespace pinum

#endif  // PINUM_OPTIMIZER_KNOBS_H_
