// System-R / PostgreSQL style dynamic-programming join planner
// (the Join Planner box of Figure 2).
//
// Two pruning regimes:
//  - standard: PostgreSQL add_path semantics — keep the Pareto set over
//    (total cost, startup cost, delivered order);
//  - export (PINUM's Section V-D): keep one minimum-internal-cost path
//    per (delivered order, leaf-requirement) key, then apply the
//    dominance rule "if S_A is a (pointwise) subset of S_B and A's
//    internal cost is no larger, drop B" when a cell completes.
#ifndef PINUM_OPTIMIZER_JOIN_PLANNER_H_
#define PINUM_OPTIMIZER_JOIN_PLANNER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "optimizer/path.h"
#include "optimizer/planner_context.h"

namespace pinum {

/// Adds `path` to `paths` under add_path pruning semantics (see above).
/// Exposed for the grouping planner, which finalizes plan lists the same
/// way.
void AddPath(std::vector<PathPtr>* paths, PathPtr path,
             bool preserve_ioc_diversity);

/// True if `a` dominates `b` under the active mode's rule.
bool PathDominates(const Path& a, const Path& b, bool preserve_ioc_diversity);

/// Removes every path dominated by another (export-mode rule); used once
/// per completed DP cell and on the finalized plan list.
void DominancePrune(std::vector<PathPtr>* paths);

/// Bottom-up join enumeration over connected subsets.
class JoinPlanner {
 public:
  explicit JoinPlanner(const PlannerContext* ctx) : ctx_(ctx) {}

  /// Returns the top-level path list (all tables joined). With the
  /// export_all_plans hook, the list holds one optimal plan per useful
  /// interesting-order combination; otherwise it is the usual small
  /// Pareto set over (cost, order).
  StatusOr<std::vector<PathPtr>> Run();

  /// Number of paths offered to the planner (a planning-effort proxy).
  int64_t paths_considered() const { return paths_considered_; }

 private:
  struct Cell {
    double rows = 0;
    double width = 0;
    std::vector<PathPtr> paths;
    /// Export mode: RequirementOrderKey -> index into `paths`.
    std::unordered_map<std::string, size_t> by_key;
  };

  /// Builds the single-relation cell for table position `pos`.
  Cell MakeBaseCell(int pos);

  /// Generates join paths for target set `s` from the (outer=a, inner=b)
  /// partition and adds them to `cell`.
  void MakeJoins(Cell* cell, RelSet s, const Cell& outer_cell, RelSet a,
                 const Cell& inner_cell, RelSet b);

  /// Returns `path` if it already delivers `col` order, else a Sort.
  PathPtr EnsureSorted(const PathPtr& path, ColumnRef col);

  void Add(Cell* cell, PathPtr path);

  /// Export mode: cross-key dominance prune once the cell is complete.
  void FinalizeCell(Cell* cell);

  const PlannerContext* ctx_;
  std::unordered_map<uint64_t, Cell> cells_;
  int64_t paths_considered_ = 0;
};

}  // namespace pinum

#endif  // PINUM_OPTIMIZER_JOIN_PLANNER_H_
