// The Grouping Planner of Figure 2: derives the query's required order,
// and on the return path from the join planner adds aggregation and Sort
// nodes to plans that do not already deliver the required order.
#ifndef PINUM_OPTIMIZER_GROUPING_PLANNER_H_
#define PINUM_OPTIMIZER_GROUPING_PLANNER_H_

#include <vector>

#include "optimizer/path.h"
#include "optimizer/planner_context.h"

namespace pinum {

/// Finalizes top-level join paths: attaches grouping/aggregation and any
/// Sort required by ORDER BY. Returns the finalized plan list pruned
/// under the active mode's dominance rule — the full per-IOC plan set
/// under PINUM's export_all_plans hook, the singleton winner otherwise.
StatusOr<std::vector<PathPtr>> FinalizePlans(const PlannerContext& ctx,
                                             const std::vector<PathPtr>& tops);

/// Estimated number of groups for the query's GROUP BY over `rows` input
/// rows (product of per-column distinct counts, capped by rows).
double EstimateGroups(const PlannerContext& ctx, double rows);

}  // namespace pinum

#endif  // PINUM_OPTIMIZER_GROUPING_PLANNER_H_
