// Plan/path representation produced by the planner and consumed by the
// executor, the INUM cache harvester, and EXPLAIN-style printing.
#ifndef PINUM_OPTIMIZER_PATH_H_
#define PINUM_OPTIMIZER_PATH_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/bitset64.h"
#include "optimizer/cost_model.h"
#include "optimizer/order_spec.h"
#include "query/query.h"

namespace pinum {

/// Plan operator kinds.
enum class PathKind {
  kSeqScan,
  kIndexScan,
  kIndexProbe,  ///< parameterized inner side of an index nested-loop join
  kNestLoop,
  kHashJoin,
  kMergeJoin,
  kSort,
  kHashAgg,
  kGroupAgg,
};

const char* PathKindName(PathKind k);

/// The kind of access a cached plan requires from one of its leaves —
/// the quantity INUM's cost derivation re-prices per configuration.
enum class LeafReqKind {
  kUnordered,  ///< any access path on the table will do
  kOrdered,    ///< access must deliver the interesting order `column`
  kProbe,      ///< access must support equality probes on `column`
};

/// Per-base-table leaf slot of a plan. A plan's cost is
///   internal + sum over leaves of (multiplier x unit access cost)
/// which is INUM's linear cost decomposition (paper, Section II).
struct LeafSlot {
  int table_pos = -1;
  TableId table = kInvalidTableId;
  LeafReqKind req = LeafReqKind::kUnordered;
  /// The interesting-order / probe column (invalid when kUnordered).
  ColumnRef column;
  /// Number of times the leaf is executed (NLJ inner rescans).
  double multiplier = 1.0;
  /// Access cost charged per execution at plan-build time.
  double unit_cost = 0;
  /// Rows the leaf produces per execution.
  double rows = 1.0;
  /// Index used at build time; kInvalidIndexId = heap scan.
  IndexId index_used = kInvalidIndexId;
  bool index_only = false;
};

/// One path (sub-plan). Paths form trees via shared ownership; the
/// planner may share subtrees between alternatives.
struct Path {
  PathKind kind;
  RelSet rels;
  double rows = 0;
  double width = 8;
  Cost cost;
  /// Delivered output order.
  OrderSpec order;

  // ---- Scans / probes ----
  TableId table = kInvalidTableId;
  int table_pos = -1;
  IndexId index = kInvalidIndexId;
  bool index_only = false;
  /// Fraction of the index traversed (boundary quals on leading column).
  double sel_index = 1.0;
  /// Probe column for kIndexProbe.
  ColumnRef probe_column;

  // ---- Joins (outer/inner) and unary nodes (child = outer) ----
  std::shared_ptr<Path> outer;
  std::shared_ptr<Path> inner;
  std::vector<JoinPredicate> join_preds;

  // ---- Aggregation ----
  std::vector<ColumnRef> group_columns;

  /// Leaf decomposition for the INUM cache (see LeafSlot).
  std::vector<LeafSlot> leaves;

  /// Configuration-independent cost (cost.total - LeafCostSum()), cached
  /// by the join planner for the Section V-D dominance comparisons.
  double internal_cost = 0;

  /// Total access cost charged to leaves; internal cost is
  /// cost.total - LeafCostSum().
  double LeafCostSum() const {
    double sum = 0;
    for (const auto& l : leaves) sum += l.multiplier * l.unit_cost;
    return sum;
  }

  /// Canonical key of (delivered order, leaf requirements): paths sharing
  /// a key are interchangeable up to internal cost under re-pricing.
  std::string RequirementOrderKey() const;

  /// EXPLAIN-style rendering.
  std::string Explain(const Catalog& catalog, int indent = 0) const;

  /// Canonical one-line structure signature (used to count unique plans
  /// in the Section IV redundancy analysis).
  std::string Signature(const Catalog& catalog) const;
};

using PathPtr = std::shared_ptr<Path>;

/// Pointwise leaf-requirement comparison: true when `a` requires no more
/// from every leaf than `b` does (Section V-D's S_A subset-of S_B).
bool LeafReqsSubsumedBy(const Path& a, const Path& b);

/// The leaf (table position) whose delivered order `p` passes through to
/// its output, or -1 when the output order is unordered / produced by a
/// Sort enforcer rather than a leaf access path.
int OrderSourceLeaf(const Path& p);

/// Table positions whose leaf *order* the plan actually consumes: inputs
/// of merge joins, inputs of streaming (group) aggregation, and — when
/// `top_order_matters` — the leaf feeding the plan's delivered ORDER BY.
/// Ordered leaves outside this set can be replaced by any access path
/// without changing the internal cost; the INUM harvester downgrades them
/// to unordered requirements for maximal plan reuse.
std::vector<int> LoadBearingOrderLeaves(const Path& p,
                                        bool top_order_matters);

}  // namespace pinum

#endif  // PINUM_OPTIMIZER_PATH_H_
