// Shared planning state: per-relation access info, join predicate
// selectivities, and the cost model.
#ifndef PINUM_OPTIMIZER_PLANNER_CONTEXT_H_
#define PINUM_OPTIMIZER_PLANNER_CONTEXT_H_

#include <vector>

#include "common/bitset64.h"
#include "optimizer/knobs.h"
#include "optimizer/scan_builder.h"
#include "query/query.h"

namespace pinum {

/// A join predicate annotated with planner information.
struct JoinPredInfo {
  JoinPredicate pred;
  double selectivity = 1.0;
  int left_pos = -1;
  int right_pos = -1;

  /// True when the predicate connects the two (disjoint) relation sets.
  bool Connects(RelSet a, RelSet b) const {
    return (a.Contains(left_pos) && b.Contains(right_pos)) ||
           (a.Contains(right_pos) && b.Contains(left_pos));
  }
  /// True when both sides lie inside `s`.
  bool Within(RelSet s) const {
    return s.Contains(left_pos) && s.Contains(right_pos);
  }
};

/// Everything the join and grouping planners need, precomputed once per
/// optimizer call.
struct PlannerContext {
  const Query* query = nullptr;
  const Catalog* catalog = nullptr;
  const StatsCatalog* stats = nullptr;
  CostModel model;
  PlannerKnobs knobs;
  /// Per query-table-position access info.
  std::vector<TableAccessInfo> rels;
  std::vector<JoinPredInfo> preds;

  int NumRels() const { return static_cast<int>(rels.size()); }

  /// Cardinality of the join over relation set `s`: product of filtered
  /// base cardinalities times the selectivity of every join predicate
  /// internal to `s` (System-R's independence assumption).
  double RowsOfSet(RelSet s) const;

  /// Output row width of the join over `s`.
  double WidthOfSet(RelSet s) const;
};

/// Builds the context (scan options per table, join selectivities).
StatusOr<PlannerContext> BuildPlannerContext(const Query& query,
                                             const Catalog& catalog,
                                             const StatsCatalog& stats,
                                             const PlannerKnobs& knobs);

}  // namespace pinum

#endif  // PINUM_OPTIMIZER_PLANNER_CONTEXT_H_
