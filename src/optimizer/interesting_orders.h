// Interesting orders and interesting-order combinations (IOCs), the
// central vocabulary of INUM and PINUM (paper, Section II definitions
// 2-4).
#ifndef PINUM_OPTIMIZER_INTERESTING_ORDERS_H_
#define PINUM_OPTIMIZER_INTERESTING_ORDERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/query.h"

namespace pinum {

/// An interesting-order combination: one entry per query table position;
/// an invalid ColumnRef denotes Φ (no interesting order for that table).
using Ioc = std::vector<ColumnRef>;

/// The interesting orders of each table in the query: columns appearing
/// in join, group-by, or order-by clauses (Section II, definition 2),
/// indexed by query-local table position.
std::vector<std::vector<ColumnRef>> PerTableInterestingOrders(
    const Query& query);

/// Number of interesting-order combinations: prod over tables of
/// (1 + number of interesting orders) — e.g. 648 for TPC-H Q5 (Sec. IV).
uint64_t CountIocs(const std::vector<std::vector<ColumnRef>>& orders);

/// Odometer-style enumerator over all IOCs of a query.
class IocEnumerator {
 public:
  explicit IocEnumerator(std::vector<std::vector<ColumnRef>> per_table);

  /// Advances to the next combination; returns false when exhausted.
  /// The first call yields the all-Φ combination.
  bool Next(Ioc* out);

  /// Resets to the beginning.
  void Reset();

  uint64_t TotalCount() const { return CountIocs(per_table_); }

 private:
  std::vector<std::vector<ColumnRef>> per_table_;
  std::vector<size_t> digits_;  // 0 = Φ, k = per_table_[t][k-1]
  bool done_ = false;
  bool started_ = false;
};

/// Human-readable IOC rendering, e.g. "(A, Φ, C)".
std::string IocToString(const Ioc& ioc, const Catalog& catalog);

}  // namespace pinum

#endif  // PINUM_OPTIMIZER_INTERESTING_ORDERS_H_
