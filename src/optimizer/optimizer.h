// Optimizer facade: the entry point equivalent to PostgreSQL's
// planner(), with the PINUM hooks of Figure 3.
#ifndef PINUM_OPTIMIZER_OPTIMIZER_H_
#define PINUM_OPTIMIZER_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/knobs.h"
#include "optimizer/path.h"
#include "optimizer/scan_builder.h"
#include "query/query.h"
#include "stats/table_stats.h"

namespace pinum {

/// Result of one optimizer call.
struct OptimizeResult {
  /// The winning plan (always set).
  PathPtr best;
  /// With hooks.export_all_plans: one optimal finalized plan per useful
  /// interesting-order combination (Section V-D). Contains only `best`
  /// otherwise.
  std::vector<PathPtr> exported;
  /// With hooks.keep_all_access_paths: the per-table access-cost catalog
  /// (every index access path, not just the cheapest per order;
  /// Section V-C). Empty otherwise.
  std::vector<TableAccessInfo> access_info;
  /// Planning-effort proxy: number of paths offered to add_path.
  int64_t paths_considered = 0;
};

/// Bottom-up, dynamic-programming query optimizer.
class Optimizer {
 public:
  Optimizer(const Catalog* catalog, const StatsCatalog* stats)
      : catalog_(catalog), stats_(stats) {}

  /// Optimizes `query` under `knobs`.
  StatusOr<OptimizeResult> Optimize(const Query& query,
                                    const PlannerKnobs& knobs) const;

 private:
  const Catalog* catalog_;
  const StatsCatalog* stats_;
};

}  // namespace pinum

#endif  // PINUM_OPTIMIZER_OPTIMIZER_H_
