#include "optimizer/planner_context.h"

#include <algorithm>

namespace pinum {

double PlannerContext::RowsOfSet(RelSet s) const {
  double rows = 1.0;
  s.ForEach([&](int pos) {
    rows *= rels[static_cast<size_t>(pos)].filtered_rows;
  });
  for (const auto& p : preds) {
    if (p.Within(s)) rows *= p.selectivity;
  }
  return std::max(1.0, rows);
}

double PlannerContext::WidthOfSet(RelSet s) const {
  double width = 0;
  s.ForEach([&](int pos) {
    width += rels[static_cast<size_t>(pos)].needed_width;
  });
  return std::max(8.0, width);
}

StatusOr<PlannerContext> BuildPlannerContext(const Query& query,
                                             const Catalog& catalog,
                                             const StatsCatalog& stats,
                                             const PlannerKnobs& knobs) {
  PlannerContext ctx;
  ctx.query = &query;
  ctx.catalog = &catalog;
  ctx.stats = &stats;
  ctx.model = CostModel(knobs.cost);
  ctx.knobs = knobs;
  if (query.tables.size() > 63) {
    return Status::InvalidArgument("too many tables in FROM (max 63)");
  }
  ctx.rels.reserve(query.tables.size());
  for (int pos = 0; pos < static_cast<int>(query.tables.size()); ++pos) {
    PINUM_ASSIGN_OR_RETURN(
        TableAccessInfo info,
        BuildTableAccessInfo(query, pos, catalog, stats, ctx.model));
    ctx.rels.push_back(std::move(info));
  }
  for (const auto& j : query.joins) {
    JoinPredInfo info;
    info.pred = j;
    info.left_pos = query.PosOfTable(j.left.table);
    info.right_pos = query.PosOfTable(j.right.table);
    const ColumnStats* ls = stats.FindColumn(j.left);
    const ColumnStats* rs = stats.FindColumn(j.right);
    if (ls == nullptr || rs == nullptr) {
      return Status::NotFound("missing join column statistics");
    }
    info.selectivity = EquiJoinSelectivity(*ls, *rs);
    ctx.preds.push_back(info);
  }
  return ctx;
}

}  // namespace pinum
