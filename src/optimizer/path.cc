#include "optimizer/path.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace pinum {

const char* PathKindName(PathKind k) {
  switch (k) {
    case PathKind::kSeqScan:
      return "SeqScan";
    case PathKind::kIndexScan:
      return "IndexScan";
    case PathKind::kIndexProbe:
      return "IndexProbe";
    case PathKind::kNestLoop:
      return "NestLoop";
    case PathKind::kHashJoin:
      return "HashJoin";
    case PathKind::kMergeJoin:
      return "MergeJoin";
    case PathKind::kSort:
      return "Sort";
    case PathKind::kHashAgg:
      return "HashAgg";
    case PathKind::kGroupAgg:
      return "GroupAgg";
  }
  return "?";
}

namespace {

std::string ColumnName(const Catalog& catalog, ColumnRef c) {
  const TableDef* t = catalog.FindTable(c.table);
  if (t == nullptr || c.column < 0 ||
      static_cast<size_t>(c.column) >= t->columns.size()) {
    return "?";
  }
  return t->name + "." + t->columns[static_cast<size_t>(c.column)].name;
}

}  // namespace

std::string Path::Explain(const Catalog& catalog, int indent) const {
  std::ostringstream out;
  out << std::string(static_cast<size_t>(indent) * 2, ' ') << PathKindName(kind);
  if (kind == PathKind::kSeqScan || kind == PathKind::kIndexScan ||
      kind == PathKind::kIndexProbe) {
    const TableDef* t = catalog.FindTable(table);
    out << " on " << (t != nullptr ? t->name : "?");
    if (index != kInvalidIndexId) {
      const IndexDef* idx = catalog.FindIndex(index);
      out << " using " << (idx != nullptr ? idx->name : "?");
      if (index_only) out << " (index-only)";
    }
    if (kind == PathKind::kIndexProbe) {
      out << " probe(" << ColumnName(catalog, probe_column) << ")";
    }
  }
  if (kind == PathKind::kSort && !order.empty()) {
    out << " by " << ColumnName(catalog, order.Leading());
  }
  if (kind == PathKind::kMergeJoin && !join_preds.empty()) {
    out << " on " << ColumnName(catalog, join_preds[0].left) << " = "
        << ColumnName(catalog, join_preds[0].right);
  }
  out << "  (rows=" << static_cast<int64_t>(rows)
      << " cost=" << cost.startup << ".." << cost.total << ")\n";
  if (outer != nullptr) out << outer->Explain(catalog, indent + 1);
  if (inner != nullptr) out << inner->Explain(catalog, indent + 1);
  return out.str();
}

std::string Path::Signature(const Catalog& catalog) const {
  std::ostringstream out;
  out << PathKindName(kind);
  switch (kind) {
    case PathKind::kSeqScan:
    case PathKind::kIndexScan:
    case PathKind::kIndexProbe: {
      const TableDef* t = catalog.FindTable(table);
      out << "(" << (t != nullptr ? t->name : "?");
      if (!order.empty()) out << " ord:" << ColumnName(catalog, order.Leading());
      if (index_only) out << " io";
      out << ")";
      break;
    }
    case PathKind::kMergeJoin:
    case PathKind::kHashJoin:
    case PathKind::kNestLoop:
      out << "(" << outer->Signature(catalog) << ","
          << inner->Signature(catalog) << ")";
      break;
    case PathKind::kSort:
      out << "[" << ColumnName(catalog, order.Leading()) << "]("
          << outer->Signature(catalog) << ")";
      break;
    case PathKind::kHashAgg:
    case PathKind::kGroupAgg:
      out << "(" << outer->Signature(catalog) << ")";
      break;
  }
  return out.str();
}

std::string Path::RequirementOrderKey() const {
  std::string key;
  key.reserve(16 + leaves.size() * 12);
  if (!order.empty()) {
    const ColumnRef lead = order.Leading();
    key += std::to_string(lead.table);
    key += '.';
    key += std::to_string(lead.column);
  }
  key += '|';
  // Leaves are kept sorted by table position by construction.
  for (const auto& s : leaves) {
    switch (s.req) {
      case LeafReqKind::kUnordered:
        key += 'u';
        break;
      case LeafReqKind::kOrdered:
        key += 'o';
        key += std::to_string(s.column.column);
        break;
      case LeafReqKind::kProbe:
        key += 'p';
        key += std::to_string(s.column.column);
        key += 'x';
        key += std::to_string(static_cast<int64_t>(s.multiplier));
        break;
    }
    key += ';';
  }
  return key;
}

int OrderSourceLeaf(const Path& p) {
  switch (p.kind) {
    case PathKind::kIndexScan:
      return p.order.empty() ? -1 : p.table_pos;
    case PathKind::kSeqScan:
    case PathKind::kIndexProbe:
    case PathKind::kSort:     // order created by the enforcer, not a leaf
    case PathKind::kHashAgg:  // hashing scrambles order
    case PathKind::kHashJoin:
      return -1;
    case PathKind::kNestLoop:
    case PathKind::kMergeJoin:
    case PathKind::kGroupAgg:
      // These preserve (or rely on) the outer/child order.
      return p.outer ? OrderSourceLeaf(*p.outer) : -1;
  }
  return -1;
}

namespace {

void CollectLoadBearing(const Path& p, std::vector<int>* out) {
  if (p.kind == PathKind::kMergeJoin) {
    if (p.outer) out->push_back(OrderSourceLeaf(*p.outer));
    if (p.inner) out->push_back(OrderSourceLeaf(*p.inner));
  }
  if (p.kind == PathKind::kGroupAgg && p.outer) {
    out->push_back(OrderSourceLeaf(*p.outer));
  }
  if (p.outer) CollectLoadBearing(*p.outer, out);
  if (p.inner) CollectLoadBearing(*p.inner, out);
}

}  // namespace

std::vector<int> LoadBearingOrderLeaves(const Path& p,
                                        bool top_order_matters) {
  std::vector<int> out;
  if (top_order_matters) out.push_back(OrderSourceLeaf(p));
  CollectLoadBearing(p, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (!out.empty() && out.front() == -1) out.erase(out.begin());
  return out;
}

bool LeafReqsSubsumedBy(const Path& a, const Path& b) {
  // Both paths cover the same relation set and keep their leaves sorted
  // by table position, so a two-pointer walk suffices.
  size_t j = 0;
  for (const auto& sa : a.leaves) {
    if (sa.req == LeafReqKind::kUnordered) continue;
    while (j < b.leaves.size() && b.leaves[j].table_pos < sa.table_pos) ++j;
    if (j >= b.leaves.size() || b.leaves[j].table_pos != sa.table_pos) {
      return false;
    }
    const LeafSlot& sb = b.leaves[j];
    if (sa.req != sb.req || !(sa.column == sb.column)) return false;
    // A probe executed more often is a strictly stronger requirement on
    // the priced access cost; require a's multiplier not to exceed b's.
    if (sa.multiplier > sb.multiplier * 1.000001) return false;
  }
  return true;
}

}  // namespace pinum
