#include "optimizer/join_planner.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace pinum {

namespace {
constexpr double kCostFuzz = 1e-9;

/// Merges two position-sorted leaf vectors, preserving the order.
std::vector<LeafSlot> MergeLeaves(const std::vector<LeafSlot>& a,
                                  const std::vector<LeafSlot>& b) {
  std::vector<LeafSlot> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out),
             [](const LeafSlot& x, const LeafSlot& y) {
               return x.table_pos < y.table_pos;
             });
  return out;
}

void SetInternalCost(Path* p) {
  p->internal_cost = p->cost.total - p->LeafCostSum();
}

}  // namespace

bool PathDominates(const Path& a, const Path& b,
                   bool preserve_ioc_diversity) {
  if (preserve_ioc_diversity) {
    // Section V-D dominance, strengthened to be provably safe under
    // re-pricing: compare *internal* costs (total minus leaf access
    // costs). If a's internal cost is no larger, a requires no more from
    // any leaf (S_A subset of S_B pointwise), and a delivers a covering
    // order, then for every index configuration C
    //   cost_C(a) = internal(a) + sum AC_C(reqs_a)
    //             <= internal(b) + sum AC_C(reqs_b) = cost_C(b),
    // because an unordered requirement is priced as the minimum over all
    // access paths. Hence b can never be the per-configuration optimum.
    if (a.internal_cost > b.internal_cost + kCostFuzz) return false;
    if (!a.order.Satisfies(b.order)) return false;
    return LeafReqsSubsumedBy(a, b);
  }
  // Standard PostgreSQL add_path semantics.
  if (a.cost.total > b.cost.total + kCostFuzz) return false;
  if (a.cost.startup > b.cost.startup + kCostFuzz) return false;
  return a.order.Satisfies(b.order);
}

void AddPath(std::vector<PathPtr>* paths, PathPtr path,
             bool preserve_ioc_diversity) {
  SetInternalCost(path.get());
  for (auto it = paths->begin(); it != paths->end();) {
    if (PathDominates(**it, *path, preserve_ioc_diversity)) return;
    if (PathDominates(*path, **it, preserve_ioc_diversity)) {
      it = paths->erase(it);
    } else {
      ++it;
    }
  }
  paths->push_back(std::move(path));
}

void DominancePrune(std::vector<PathPtr>* paths) {
  std::vector<PathPtr> kept;
  kept.reserve(paths->size());
  for (size_t i = 0; i < paths->size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < paths->size() && !dominated; ++j) {
      if (j == i) continue;
      // Tie-break: identical keys cannot occur here (deduplicated by
      // key); mutual dominance would imply identical keys, so the check
      // is asymmetric in practice.
      if (PathDominates(*(*paths)[j], *(*paths)[i],
                        /*preserve_ioc_diversity=*/true)) {
        dominated = true;
      }
    }
    if (!dominated) kept.push_back((*paths)[i]);
  }
  *paths = std::move(kept);
}

void JoinPlanner::Add(Cell* cell, PathPtr path) {
  ++paths_considered_;
  if (!ctx_->knobs.hooks.export_all_plans) {
    AddPath(&cell->paths, std::move(path), /*preserve_ioc_diversity=*/false);
    return;
  }
  // Export mode: O(1) dedup on the (order, requirements) key, keeping the
  // path with the smallest internal cost. Cross-key dominance pruning
  // runs once per completed cell (FinalizeCell).
  SetInternalCost(path.get());
  const std::string key = path->RequirementOrderKey();
  auto [it, inserted] = cell->by_key.try_emplace(key, cell->paths.size());
  if (inserted) {
    cell->paths.push_back(std::move(path));
  } else if (path->internal_cost <
             cell->paths[it->second]->internal_cost - kCostFuzz) {
    cell->paths[it->second] = std::move(path);
  }
}

void JoinPlanner::FinalizeCell(Cell* cell) {
  if (!ctx_->knobs.hooks.export_all_plans) return;
  if (!ctx_->knobs.hooks.disable_dominance_pruning) {
    DominancePrune(&cell->paths);
  }
  cell->by_key.clear();
}

JoinPlanner::Cell JoinPlanner::MakeBaseCell(int pos) {
  const TableAccessInfo& info = ctx_->rels[static_cast<size_t>(pos)];
  Cell cell;
  cell.rows = info.filtered_rows;
  cell.width = info.needed_width;
  for (const ScanOption& opt : info.options) {
    auto p = std::make_shared<Path>();
    p->kind = opt.index == kInvalidIndexId ? PathKind::kSeqScan
                                           : PathKind::kIndexScan;
    p->rels = RelSet::Single(pos);
    p->rows = opt.rows;
    p->width = info.needed_width;
    p->cost = opt.cost;
    p->order = opt.order;
    p->table = info.table;
    p->table_pos = pos;
    p->index = opt.index;
    p->index_only = opt.index_only;
    p->sel_index = opt.sel_index;
    LeafSlot slot;
    slot.table_pos = pos;
    slot.table = info.table;
    slot.req = opt.order.empty() ? LeafReqKind::kUnordered
                                 : LeafReqKind::kOrdered;
    slot.column = opt.order.Leading();
    slot.multiplier = 1.0;
    slot.unit_cost = opt.cost.total;
    slot.rows = opt.rows;
    slot.index_used = opt.index;
    slot.index_only = opt.index_only;
    p->leaves = {slot};
    Add(&cell, std::move(p));
  }
  FinalizeCell(&cell);
  return cell;
}

PathPtr JoinPlanner::EnsureSorted(const PathPtr& path, ColumnRef col) {
  if (path->order.Satisfies(OrderSpec::Single(col))) return path;
  auto sort = std::make_shared<Path>();
  sort->kind = PathKind::kSort;
  sort->rels = path->rels;
  sort->rows = path->rows;
  sort->width = path->width;
  const Cost sc = ctx_->model.Sort(path->rows, path->width);
  sort->cost.startup = path->cost.total + sc.startup;
  sort->cost.total = path->cost.total + sc.total;
  sort->order = OrderSpec::Single(col);
  sort->outer = path;
  sort->leaves = path->leaves;
  return sort;
}

void JoinPlanner::MakeJoins(Cell* cell, RelSet s, const Cell& outer_cell,
                            RelSet a, const Cell& inner_cell, RelSet b) {
  // Join predicates connecting the two sides.
  std::vector<const JoinPredInfo*> connecting;
  for (const auto& p : ctx_->preds) {
    if (p.Connects(a, b)) connecting.push_back(&p);
  }
  if (connecting.empty()) return;  // no cross products

  const double rows_out = cell->rows;
  const CostModel& model = ctx_->model;
  const PlannerKnobs& knobs = ctx_->knobs;

  for (const PathPtr& pa : outer_cell.paths) {
    for (const PathPtr& pb : inner_cell.paths) {
      // ---- Hash join ----
      if (knobs.enable_hashjoin) {
        auto hj = std::make_shared<Path>();
        hj->kind = PathKind::kHashJoin;
        hj->rels = s;
        hj->rows = rows_out;
        hj->width = cell->width;
        const Cost jc = model.HashJoin(pa->rows, pb->rows, pb->width,
                                       pa->width, rows_out);
        hj->cost.startup = pb->cost.total + jc.startup;
        hj->cost.total = pa->cost.total + pb->cost.total + jc.total;
        hj->order = OrderSpec::None();
        hj->outer = pa;
        hj->inner = pb;
        hj->join_preds.push_back(connecting[0]->pred);
        hj->leaves = MergeLeaves(pa->leaves, pb->leaves);
        Add(cell, std::move(hj));
      }

      // ---- Merge join (one per connecting predicate) ----
      if (knobs.enable_mergejoin) {
        for (const JoinPredInfo* jp : connecting) {
          const ColumnRef outer_col = a.Contains(jp->left_pos)
                                          ? jp->pred.left
                                          : jp->pred.right;
          const ColumnRef inner_col = a.Contains(jp->left_pos)
                                          ? jp->pred.right
                                          : jp->pred.left;
          PathPtr so = EnsureSorted(pa, outer_col);
          PathPtr si = EnsureSorted(pb, inner_col);
          auto mj = std::make_shared<Path>();
          mj->kind = PathKind::kMergeJoin;
          mj->rels = s;
          mj->rows = rows_out;
          mj->width = cell->width;
          const Cost jc = model.MergeJoin(so->rows, si->rows, rows_out);
          mj->cost.startup = so->cost.startup + si->cost.startup + jc.startup;
          mj->cost.total = so->cost.total + si->cost.total + jc.total;
          mj->order = so->order;  // merge preserves the outer order
          mj->outer = so;
          mj->inner = si;
          mj->join_preds.push_back(jp->pred);
          mj->leaves = MergeLeaves(so->leaves, si->leaves);
          Add(cell, std::move(mj));
        }
      }

      // ---- Nested-loop joins ----
      if (!knobs.enable_nestloop) continue;

      // (a) Index nested loop: single-relation inner probed through an
      // index on the join column.
      if (b.Count() == 1) {
        const int inner_pos = b.Lowest();
        const TableAccessInfo& inner_info =
            ctx_->rels[static_cast<size_t>(inner_pos)];
        for (const JoinPredInfo* jp : connecting) {
          const ColumnRef inner_col =
              jp->pred.left.table == inner_info.table ? jp->pred.left
                                                      : jp->pred.right;
          for (const ProbeOption& probe : inner_info.probes) {
            if (!(probe.column == inner_col)) continue;
            auto ip = std::make_shared<Path>();
            ip->kind = PathKind::kIndexProbe;
            ip->rels = b;
            ip->rows = probe.rows_per_probe;
            ip->width = inner_info.needed_width;
            ip->cost = probe.cost_per_probe;
            ip->table = inner_info.table;
            ip->table_pos = inner_pos;
            ip->index = probe.index;
            ip->index_only = probe.index_only;
            ip->probe_column = probe.column;

            auto nl = std::make_shared<Path>();
            nl->kind = PathKind::kNestLoop;
            nl->rels = s;
            nl->rows = rows_out;
            nl->width = cell->width;
            nl->cost.startup = pa->cost.startup;
            nl->cost.total = pa->cost.total +
                             pa->rows * probe.cost_per_probe.total +
                             model.OutputCost(rows_out);
            nl->order = pa->order;  // NLJ preserves the outer order
            nl->outer = pa;
            nl->inner = ip;
            nl->join_preds.push_back(jp->pred);
            LeafSlot slot;
            slot.table_pos = inner_pos;
            slot.table = inner_info.table;
            slot.req = LeafReqKind::kProbe;
            slot.column = probe.column;
            slot.multiplier = pa->rows;
            slot.unit_cost = probe.cost_per_probe.total;
            slot.rows = probe.rows_per_probe;
            slot.index_used = probe.index;
            slot.index_only = probe.index_only;
            nl->leaves = MergeLeaves(pa->leaves, {slot});
            Add(cell, std::move(nl));
          }
        }
      }

      // (b) Nested loop over a materialized inner.
      {
        const double rescans = std::max(0.0, pa->rows - 1.0);
        const Cost mat = model.Material(pb->rows, pb->width);
        const double rescan_cost =
            model.RescanMaterialCost(pb->rows, pb->width);
        auto nl = std::make_shared<Path>();
        nl->kind = PathKind::kNestLoop;
        nl->rels = s;
        nl->rows = rows_out;
        nl->width = cell->width;
        nl->cost.startup = pa->cost.startup;
        nl->cost.total =
            pa->cost.total + pb->cost.total + mat.total +
            rescans * rescan_cost +
            pa->rows * pb->rows * model.params().cpu_operator_cost +
            model.OutputCost(rows_out);
        nl->order = pa->order;
        nl->outer = pa;
        nl->inner = pb;
        nl->join_preds.push_back(connecting[0]->pred);
        nl->leaves = MergeLeaves(pa->leaves, pb->leaves);
        Add(cell, std::move(nl));
      }
    }
  }
}

StatusOr<std::vector<PathPtr>> JoinPlanner::Run() {
  const int n = ctx_->NumRels();
  for (int pos = 0; pos < n; ++pos) {
    cells_[RelSet::Single(pos).bits()] = MakeBaseCell(pos);
  }
  if (n == 1) return cells_[RelSet::Single(0).bits()].paths;

  const uint64_t full = RelSet::FirstN(n).bits();
  for (uint64_t mask = 1; mask <= full; ++mask) {
    if (std::popcount(mask) < 2) continue;
    const RelSet s(mask);
    Cell cell;
    cell.rows = ctx_->RowsOfSet(s);
    cell.width = ctx_->WidthOfSet(s);
    // Enumerate partitions; fixing the lowest bit in `a` halves the
    // enumeration, and MakeJoins is called for both role assignments.
    const uint64_t lowest = mask & (~mask + 1);
    for (uint64_t sub = (mask - 1) & mask; sub != 0;
         sub = (sub - 1) & mask) {
      if ((sub & lowest) == 0) continue;
      const uint64_t other = mask ^ sub;
      if (other == 0) continue;
      auto it_a = cells_.find(sub);
      auto it_b = cells_.find(other);
      if (it_a == cells_.end() || it_b == cells_.end()) continue;
      MakeJoins(&cell, s, it_a->second, RelSet(sub), it_b->second,
                RelSet(other));
      MakeJoins(&cell, s, it_b->second, RelSet(other), it_a->second,
                RelSet(sub));
    }
    if (!cell.paths.empty()) {
      FinalizeCell(&cell);
      cells_[mask] = std::move(cell);
    }
  }
  auto it = cells_.find(full);
  if (it == cells_.end() || it->second.paths.empty()) {
    return Status::InvalidArgument(
        "query's join graph is disconnected (cross products unsupported)");
  }
  return it->second.paths;
}

}  // namespace pinum
