// PostgreSQL-style cost model: the arithmetic behind every access path
// and join method the planner considers. Formulas follow costsize.c of
// PostgreSQL 8.3 (the version the paper modified), simplified where the
// paper's workload cannot distinguish the difference.
#ifndef PINUM_OPTIMIZER_COST_MODEL_H_
#define PINUM_OPTIMIZER_COST_MODEL_H_

#include <algorithm>
#include <cstdint>

namespace pinum {

/// Planner cost: cost to produce the first tuple (startup) and all tuples
/// (total), in the same abstract units PostgreSQL uses (1.0 = one
/// sequential page fetch).
struct Cost {
  double startup = 0;
  double total = 0;

  Cost operator+(const Cost& o) const {
    return {startup + o.startup, total + o.total};
  }
};

/// Tunable cost constants (PostgreSQL GUC defaults).
struct CostParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_index_tuple_cost = 0.005;
  double cpu_operator_cost = 0.0025;
  /// Memory available to one sort/hash (bytes). PostgreSQL 8.3 defaults to
  /// 1 MB; we default to 16 MB so that hash joins on the 10 GB-equivalent
  /// star schema stay in the plan space alongside NLJ/merge.
  double work_mem_bytes = 16.0 * 1024 * 1024;
};

/// Stateless cost computations parameterized by CostParams.
class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams()) : params_(params) {}

  const CostParams& params() const { return params_; }

  /// Full sequential scan applying `num_filter_terms` predicate terms.
  Cost SeqScan(double heap_pages, double rows, int num_filter_terms) const;

  /// B-tree index scan.
  ///
  /// `sel_index`: fraction of the index traversed (boundary predicates on
  /// the leading column). `rows_fetched`: tuples read from the index.
  /// `rows_out`: tuples surviving all filters. `correlation`: physical
  /// order correlation of the leading column; interpolates between the
  /// best case (sequential heap pages) and worst case (one random heap
  /// page per tuple, Mackert-Lohman capped) exactly as cost_index does.
  Cost IndexScan(double leaf_pages, int height, double heap_pages,
                 double sel_index, double rows_fetched, double rows_out,
                 double correlation, bool index_only,
                 int num_filter_terms) const;

  /// One parameterized inner index probe (inner side of an index
  /// nested-loop join): descent + matched-tuple fetches.
  Cost IndexProbe(int height, double leaf_pages_touched, double rows_matched,
                  bool index_only, int num_filter_terms) const;

  /// External-merge-aware sort of `rows` tuples of `width` bytes.
  /// Input cost is *not* included.
  Cost Sort(double rows, double width) const;

  /// Materialize: first-pass write plus the per-rescan cost callers charge
  /// via RescanMaterial.
  Cost Material(double rows, double width) const;
  double RescanMaterialCost(double rows, double width) const;

  /// Hash join build+probe (join-clause evaluation included; children
  /// costs are *not* included).
  Cost HashJoin(double outer_rows, double inner_rows, double inner_width,
                double outer_width, double rows_out) const;

  /// Merge join over sorted inputs (children/sort costs not included).
  Cost MergeJoin(double outer_rows, double inner_rows, double rows_out) const;

  /// CPU cost of emitting one joined row.
  double OutputCost(double rows_out) const {
    return rows_out * params_.cpu_tuple_cost;
  }

  /// Hash aggregation of `rows` input rows into `groups` groups.
  Cost HashAgg(double rows, double groups, int num_aggs) const;

  /// Sorted (streaming) aggregation — requires input ordered on the
  /// grouping column.
  Cost GroupAgg(double rows, double groups, int num_aggs) const;

  /// Pages occupied by `rows` tuples of `width` bytes (work files).
  double SpillPages(double rows, double width) const;

 private:
  CostParams params_;
};

/// Mackert-Lohman approximation of distinct heap pages touched when
/// fetching `tuples` random tuples from a heap of `pages` pages.
double MackertLohmanPages(double tuples, double pages);

}  // namespace pinum

#endif  // PINUM_OPTIMIZER_COST_MODEL_H_
