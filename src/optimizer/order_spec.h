// Sort-order bookkeeping (PostgreSQL "pathkeys").
#ifndef PINUM_OPTIMIZER_ORDER_SPEC_H_
#define PINUM_OPTIMIZER_ORDER_SPEC_H_

#include <vector>

#include "catalog/types.h"

namespace pinum {

/// The sort order a path delivers (or a consumer requires): a sequence of
/// columns, major first. Empty = unordered / no requirement.
struct OrderSpec {
  std::vector<ColumnRef> columns;

  static OrderSpec None() { return OrderSpec{}; }
  static OrderSpec Single(ColumnRef c) { return OrderSpec{{c}}; }

  bool empty() const { return columns.empty(); }

  /// True if a stream ordered by *this* satisfies `required`
  /// (i.e. `required` is a prefix of this order).
  bool Satisfies(const OrderSpec& required) const {
    if (required.columns.size() > columns.size()) return false;
    for (size_t i = 0; i < required.columns.size(); ++i) {
      if (!(columns[i] == required.columns[i])) return false;
    }
    return true;
  }

  /// The leading column, or an invalid ref when unordered — the paper's
  /// single-column notion of an interesting order.
  ColumnRef Leading() const {
    return columns.empty() ? ColumnRef{} : columns[0];
  }

  bool operator==(const OrderSpec&) const = default;
};

}  // namespace pinum

#endif  // PINUM_OPTIMIZER_ORDER_SPEC_H_
