#include "optimizer/cost_model.h"

#include <cmath>

namespace pinum {

double MackertLohmanPages(double tuples, double pages) {
  if (pages <= 0 || tuples <= 0) return 0;
  // Mackert & Lohman, "Index Scans Using a Finite LRU Buffer" (no cache
  // constraint): pages_fetched = min(2TN / (2N + T), N) for T tuple
  // fetches against N pages.
  const double fetched = (2.0 * tuples * pages) / (2.0 * pages + tuples);
  return std::min(fetched, pages);
}

Cost CostModel::SeqScan(double heap_pages, double rows,
                        int num_filter_terms) const {
  Cost c;
  c.startup = 0;
  const double io = heap_pages * params_.seq_page_cost;
  const double cpu =
      rows * (params_.cpu_tuple_cost +
              num_filter_terms * params_.cpu_operator_cost);
  c.total = io + cpu;
  return c;
}

Cost CostModel::IndexScan(double leaf_pages, int height, double heap_pages,
                          double sel_index, double rows_fetched,
                          double rows_out, double correlation, bool index_only,
                          int num_filter_terms) const {
  Cost c;
  // Descent through the internal levels: one random fetch per level plus
  // the first leaf.
  const double descent = (height + 1) * params_.random_page_cost;
  c.startup = descent * 0.0;  // pg charges descent inside total, startup ~0
  // Leaf pages traversed are contiguous: first random, rest sequential.
  const double leaves = std::max(1.0, std::ceil(sel_index * leaf_pages));
  double io = descent + (leaves - 1) * params_.seq_page_cost;
  if (!index_only) {
    // Heap fetches: interpolate between perfectly correlated (contiguous
    // heap pages) and uncorrelated (Mackert-Lohman random pages).
    const double max_io =
        MackertLohmanPages(rows_fetched, heap_pages) * params_.random_page_cost;
    const double min_pages = std::max(1.0, std::ceil(sel_index * heap_pages));
    const double min_io = params_.random_page_cost +
                          (min_pages - 1) * params_.seq_page_cost;
    const double csq = correlation * correlation;
    io += max_io + csq * (std::min(min_io, max_io) - max_io);
  }
  const double cpu =
      rows_fetched * (params_.cpu_index_tuple_cost +
                      num_filter_terms * params_.cpu_operator_cost) +
      rows_out * params_.cpu_tuple_cost;
  c.total = io + cpu;
  return c;
}

Cost CostModel::IndexProbe(int height, double leaf_pages_touched,
                           double rows_matched, bool index_only,
                           int num_filter_terms) const {
  Cost c;
  const double descent = (height + 1) * params_.random_page_cost;
  double io = descent + std::max(0.0, leaf_pages_touched - 1.0) *
                            params_.seq_page_cost;
  if (!index_only) {
    io += rows_matched * params_.random_page_cost;
  }
  const double cpu =
      rows_matched * (params_.cpu_index_tuple_cost + params_.cpu_tuple_cost +
                      num_filter_terms * params_.cpu_operator_cost);
  c.startup = 0;
  c.total = io + cpu;
  return c;
}

double CostModel::SpillPages(double rows, double width) const {
  return std::ceil(rows * std::max(8.0, width) / 8192.0);
}

Cost CostModel::Sort(double rows, double width) const {
  Cost c;
  const double n = std::max(2.0, rows);
  const double comparison = 2.0 * params_.cpu_operator_cost;
  double cost = comparison * n * std::log2(n);
  const double bytes = rows * std::max(8.0, width);
  if (bytes > params_.work_mem_bytes) {
    // External merge sort: write + read each page once per pass; the
    // workload sizes need at most one merge pass.
    const double pages = SpillPages(rows, width);
    cost += 2.0 * pages * params_.seq_page_cost;
  }
  c.startup = cost;  // sort must consume all input before emitting
  c.total = cost + rows * params_.cpu_operator_cost;
  return c;
}

Cost CostModel::Material(double rows, double width) const {
  Cost c;
  c.startup = 0;
  c.total = rows * 2.0 * params_.cpu_operator_cost;
  const double bytes = rows * std::max(8.0, width);
  if (bytes > params_.work_mem_bytes) {
    c.total += SpillPages(rows, width) * params_.seq_page_cost;
  }
  return c;
}

double CostModel::RescanMaterialCost(double rows, double width) const {
  double cost = rows * params_.cpu_operator_cost;
  const double bytes = rows * std::max(8.0, width);
  if (bytes > params_.work_mem_bytes) {
    cost += SpillPages(rows, width) * params_.seq_page_cost;
  }
  return cost;
}

Cost CostModel::HashJoin(double outer_rows, double inner_rows,
                         double inner_width, double outer_width,
                         double rows_out) const {
  Cost c;
  // Build phase: hash every inner row.
  const double build =
      inner_rows * (params_.cpu_operator_cost + params_.cpu_tuple_cost);
  // Probe phase: hash every outer row and evaluate the join clause on
  // candidate matches (~1 bucket entry per probe with good hashing).
  const double probe = outer_rows * (params_.cpu_operator_cost * 2.0);
  double io = 0;
  const double inner_bytes = inner_rows * std::max(8.0, inner_width);
  if (inner_bytes > params_.work_mem_bytes) {
    // Multi-batch: write and re-read both sides once.
    io = 2.0 *
         (SpillPages(inner_rows, inner_width) +
          SpillPages(outer_rows, outer_width)) *
         params_.seq_page_cost;
  }
  c.startup = build;
  c.total = build + probe + io + OutputCost(rows_out);
  return c;
}

Cost CostModel::MergeJoin(double outer_rows, double inner_rows,
                          double rows_out) const {
  Cost c;
  c.startup = 0;
  c.total = (outer_rows + inner_rows) * params_.cpu_operator_cost +
            OutputCost(rows_out);
  return c;
}

Cost CostModel::HashAgg(double rows, double groups, int num_aggs) const {
  Cost c;
  const double cpu = rows * params_.cpu_operator_cost * (1 + num_aggs);
  c.startup = cpu;  // must absorb all input first
  c.total = cpu + groups * params_.cpu_tuple_cost;
  return c;
}

Cost CostModel::GroupAgg(double rows, double groups, int num_aggs) const {
  Cost c;
  c.startup = 0;  // streaming
  c.total = rows * params_.cpu_operator_cost * (1 + num_aggs) +
            groups * params_.cpu_tuple_cost;
  return c;
}

}  // namespace pinum
