#include "optimizer/grouping_planner.h"

#include <algorithm>
#include <map>
#include <string>

#include "optimizer/join_planner.h"

namespace pinum {

double EstimateGroups(const PlannerContext& ctx, double rows) {
  const Query& q = *ctx.query;
  if (q.group_by.empty()) return rows;
  double nd = 1.0;
  for (const auto& col : q.group_by) {
    const ColumnStats* cs = ctx.stats->FindColumn(col);
    nd *= cs != nullptr ? std::max(1.0, cs->n_distinct) : 100.0;
  }
  return std::max(1.0, std::min(nd, rows));
}

namespace {

/// Wraps `child` in a Sort delivering `spec`.
PathPtr MakeSort(const PlannerContext& ctx, const PathPtr& child,
                 const OrderSpec& spec) {
  auto sort = std::make_shared<Path>();
  sort->kind = PathKind::kSort;
  sort->rels = child->rels;
  sort->rows = child->rows;
  sort->width = child->width;
  const Cost sc = ctx.model.Sort(child->rows, child->width);
  sort->cost.startup = child->cost.total + sc.startup;
  sort->cost.total = child->cost.total + sc.total;
  sort->order = spec;
  sort->outer = child;
  sort->leaves = child->leaves;
  return sort;
}

/// Wraps `child` in an aggregation node.
PathPtr MakeAgg(const PlannerContext& ctx, const PathPtr& child, bool hashed,
                double groups, int num_aggs) {
  auto agg = std::make_shared<Path>();
  agg->kind = hashed ? PathKind::kHashAgg : PathKind::kGroupAgg;
  agg->rels = child->rels;
  agg->rows = groups;
  agg->width = child->width;
  const Cost ac = hashed ? ctx.model.HashAgg(child->rows, groups, num_aggs)
                         : ctx.model.GroupAgg(child->rows, groups, num_aggs);
  agg->cost.startup = (hashed ? child->cost.total : child->cost.startup) +
                      ac.startup;
  agg->cost.total = child->cost.total + ac.total;
  // Hash aggregation scrambles the input order; sorted aggregation
  // preserves it.
  agg->order = hashed ? OrderSpec::None() : child->order;
  agg->outer = child;
  agg->group_columns = ctx.query->group_by;
  agg->leaves = child->leaves;
  return agg;
}

}  // namespace

StatusOr<std::vector<PathPtr>> FinalizePlans(
    const PlannerContext& ctx, const std::vector<PathPtr>& tops) {
  const Query& q = *ctx.query;
  const bool diversity = ctx.knobs.hooks.export_all_plans;

  OrderSpec required;
  for (const auto& k : q.order_by) required.columns.push_back(k.column);
  OrderSpec group_order;
  for (const auto& c : q.group_by) group_order.columns.push_back(c);

  int num_aggs = 0;
  if (q.aggregate != AggKind::kNone) {
    for (const auto& s : q.select) {
      if (std::find(q.group_by.begin(), q.group_by.end(), s) ==
          q.group_by.end()) {
        ++num_aggs;
      }
    }
  }

  std::vector<PathPtr> finals;
  for (const PathPtr& top : tops) {
    std::vector<PathPtr> staged;
    if (q.group_by.empty()) {
      staged.push_back(top);
    } else {
      const double groups = EstimateGroups(ctx, top->rows);
      staged.push_back(MakeAgg(ctx, top, /*hashed=*/true, groups, num_aggs));
      if (top->order.Satisfies(group_order)) {
        staged.push_back(
            MakeAgg(ctx, top, /*hashed=*/false, groups, num_aggs));
      } else {
        staged.push_back(MakeAgg(ctx, MakeSort(ctx, top, group_order),
                                 /*hashed=*/false, groups, num_aggs));
      }
    }
    for (const PathPtr& p : staged) {
      PathPtr final_path =
          (required.empty() || p->order.Satisfies(required))
              ? p
              : MakeSort(ctx, p, required);
      if (diversity && ctx.knobs.hooks.disable_dominance_pruning) {
        // Ablation A1: key-dedup only, no dominance pruning.
        final_path->internal_cost =
            final_path->cost.total - final_path->LeafCostSum();
        finals.push_back(std::move(final_path));
      } else {
        AddPath(&finals, std::move(final_path), diversity);
      }
    }
  }
  if (diversity && ctx.knobs.hooks.disable_dominance_pruning) {
    // Deduplicate by (order, requirement) key, keeping min internal cost.
    std::map<std::string, PathPtr> by_key;
    for (const auto& p : finals) {
      auto [it, inserted] = by_key.try_emplace(p->RequirementOrderKey(), p);
      if (!inserted && p->internal_cost < it->second->internal_cost) {
        it->second = p;
      }
    }
    finals.clear();
    for (auto& [key, p] : by_key) {
      (void)key;
      finals.push_back(std::move(p));
    }
  }
  if (finals.empty()) {
    return Status::Internal("no plans survived finalization");
  }
  if (!diversity) {
    // Standard mode: report only the winner, like a stock optimizer.
    PathPtr best = finals[0];
    for (const auto& p : finals) {
      if (p->cost.total < best->cost.total) best = p;
    }
    return std::vector<PathPtr>{best};
  }
  return finals;
}

}  // namespace pinum
