#include "optimizer/interesting_orders.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace pinum {

std::vector<std::vector<ColumnRef>> PerTableInterestingOrders(
    const Query& query) {
  std::vector<std::set<ColumnRef>> sets(query.tables.size());
  auto add = [&](ColumnRef c) {
    const int pos = query.PosOfTable(c.table);
    if (pos >= 0) sets[static_cast<size_t>(pos)].insert(c);
  };
  for (const auto& j : query.joins) {
    add(j.left);
    add(j.right);
  }
  for (const auto& g : query.group_by) add(g);
  for (const auto& o : query.order_by) add(o.column);
  std::vector<std::vector<ColumnRef>> out(query.tables.size());
  for (size_t i = 0; i < sets.size(); ++i) {
    out[i].assign(sets[i].begin(), sets[i].end());
  }
  return out;
}

uint64_t CountIocs(const std::vector<std::vector<ColumnRef>>& orders) {
  uint64_t n = 1;
  for (const auto& per_table : orders) {
    n *= static_cast<uint64_t>(per_table.size()) + 1;
  }
  return n;
}

IocEnumerator::IocEnumerator(std::vector<std::vector<ColumnRef>> per_table)
    : per_table_(std::move(per_table)), digits_(per_table_.size(), 0) {}

void IocEnumerator::Reset() {
  std::fill(digits_.begin(), digits_.end(), size_t{0});
  done_ = false;
  started_ = false;
}

bool IocEnumerator::Next(Ioc* out) {
  if (done_) return false;
  if (started_) {
    // Increment the odometer.
    size_t i = 0;
    for (; i < digits_.size(); ++i) {
      if (digits_[i] < per_table_[i].size()) {
        ++digits_[i];
        break;
      }
      digits_[i] = 0;
    }
    if (i == digits_.size()) {
      done_ = true;
      return false;
    }
  }
  started_ = true;
  out->assign(per_table_.size(), ColumnRef{});
  for (size_t t = 0; t < per_table_.size(); ++t) {
    if (digits_[t] > 0) (*out)[t] = per_table_[t][digits_[t] - 1];
  }
  return true;
}

std::string IocToString(const Ioc& ioc, const Catalog& catalog) {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < ioc.size(); ++i) {
    if (i > 0) out << ", ";
    if (!ioc[i].valid()) {
      out << "Φ";
    } else {
      const TableDef* t = catalog.FindTable(ioc[i].table);
      out << (t != nullptr
                  ? t->columns[static_cast<size_t>(ioc[i].column)].name
                  : "?");
    }
  }
  out << ")";
  return out.str();
}

}  // namespace pinum
