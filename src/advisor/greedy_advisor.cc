#include "advisor/greedy_advisor.h"

#include <algorithm>

#include "whatif/whatif_index.h"

namespace pinum {

namespace {

double WorkloadCost(const std::vector<InumCache>& caches,
                    const IndexConfig& config) {
  double total = 0;
  for (const auto& cache : caches) total += cache.Cost(config);
  return total;
}

}  // namespace

AdvisorResult RunGreedyAdvisor(const std::vector<InumCache>& caches,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options) {
  AdvisorResult result;
  IndexConfig chosen;
  result.workload_cost_before = WorkloadCost(caches, chosen);
  ++result.evaluations;
  double current_cost = result.workload_cost_before;
  int64_t used_bytes = 0;

  std::vector<IndexId> remaining = candidates.candidate_ids;
  while (true) {
    if (options.max_indexes > 0 &&
        static_cast<int>(chosen.size()) >= options.max_indexes) {
      break;
    }
    IndexId best = kInvalidIndexId;
    double best_cost = current_cost;
    int64_t best_size = 0;
    for (IndexId cand : remaining) {
      const IndexDef* def = candidates.universe.FindIndex(cand);
      if (def == nullptr) continue;
      const int64_t size = IndexSizeBytes(*def);
      if (used_bytes + size > options.budget_bytes) continue;
      chosen.push_back(cand);
      const double cost = WorkloadCost(caches, chosen);
      ++result.evaluations;
      chosen.pop_back();
      if (cost < best_cost) {
        best_cost = cost;
        best = cand;
        best_size = size;
      }
    }
    if (best == kInvalidIndexId) break;
    const double benefit = current_cost - best_cost;
    if (benefit < options.min_relative_benefit *
                      std::max(1.0, result.workload_cost_before)) {
      break;
    }
    chosen.push_back(best);
    used_bytes += best_size;
    current_cost = best_cost;
    remaining.erase(std::remove(remaining.begin(), remaining.end(), best),
                    remaining.end());
    result.steps.push_back({best, benefit, best_size, current_cost});
  }

  result.chosen = chosen;
  result.workload_cost_after = current_cost;
  result.total_size_bytes = used_bytes;
  return result;
}

}  // namespace pinum
