#include "advisor/greedy_advisor.h"

#include <algorithm>

#include "whatif/whatif_index.h"

namespace pinum {

double WorkloadCostEvaluator::Cost(const IndexConfig& config) const {
  double total = 0;
  for (const SealedCache& cache : *caches_) total += cache.Cost(config);
  return total;
}

std::vector<double> WorkloadCostEvaluator::BatchCost(
    const std::vector<IndexConfig>& configs) const {
  std::vector<double> costs(configs.size());
  if (pool_ == nullptr || configs.size() <= 1) {
    for (size_t i = 0; i < configs.size(); ++i) costs[i] = Cost(configs[i]);
    return costs;
  }
  pool_->ParallelFor(static_cast<int64_t>(configs.size()), [&](int64_t i) {
    costs[static_cast<size_t>(i)] = Cost(configs[static_cast<size_t>(i)]);
  });
  return costs;
}

AdvisorResult RunGreedyAdvisor(const WorkloadCostEvaluator& evaluator,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options) {
  AdvisorResult result;
  IndexConfig chosen;
  result.workload_cost_before = evaluator.Cost(chosen);
  ++result.evaluations;
  double current_cost = result.workload_cost_before;
  int64_t used_bytes = 0;

  std::vector<IndexId> remaining = candidates.candidate_ids;
  while (true) {
    if (options.max_indexes > 0 &&
        static_cast<int>(chosen.size()) >= options.max_indexes) {
      break;
    }
    // One batch per iteration: every surviving candidate appended to the
    // current configuration, priced together.
    std::vector<IndexId> batch_ids;
    std::vector<int64_t> batch_sizes;
    std::vector<IndexConfig> batch;
    for (IndexId cand : remaining) {
      const IndexDef* def = candidates.universe.FindIndex(cand);
      if (def == nullptr) continue;
      const int64_t size = IndexSizeBytes(*def);
      if (used_bytes + size > options.budget_bytes) continue;
      IndexConfig config = chosen;
      config.push_back(cand);
      batch_ids.push_back(cand);
      batch_sizes.push_back(size);
      batch.push_back(std::move(config));
    }
    if (batch.empty()) break;
    const std::vector<double> costs = evaluator.BatchCost(batch);
    result.evaluations += static_cast<int64_t>(batch.size());

    // Strictly-better-in-candidate-order selection: identical to pricing
    // the candidates one at a time.
    IndexId best = kInvalidIndexId;
    double best_cost = current_cost;
    int64_t best_size = 0;
    for (size_t i = 0; i < batch_ids.size(); ++i) {
      if (costs[i] < best_cost) {
        best_cost = costs[i];
        best = batch_ids[i];
        best_size = batch_sizes[i];
      }
    }
    if (best == kInvalidIndexId) break;
    const double benefit = current_cost - best_cost;
    if (benefit < options.min_relative_benefit *
                      std::max(1.0, result.workload_cost_before)) {
      break;
    }
    chosen.push_back(best);
    used_bytes += best_size;
    current_cost = best_cost;
    remaining.erase(std::remove(remaining.begin(), remaining.end(), best),
                    remaining.end());
    result.steps.push_back({best, benefit, best_size, current_cost});
  }

  result.chosen = chosen;
  result.workload_cost_after = current_cost;
  result.total_size_bytes = used_bytes;
  return result;
}

AdvisorResult RunGreedyAdvisor(const std::vector<SealedCache>& caches,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options) {
  return RunGreedyAdvisor(WorkloadCostEvaluator(&caches), candidates,
                          options);
}

AdvisorResult RunGreedyAdvisor(const std::vector<InumCache>& caches,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options) {
  std::vector<SealedCache> sealed;
  sealed.reserve(caches.size());
  for (const InumCache& cache : caches) {
    sealed.push_back(SealedCache::Seal(cache, candidates.NumIndexIds()));
  }
  return RunGreedyAdvisor(sealed, candidates, options);
}

}  // namespace pinum
