#include "advisor/greedy_advisor.h"

#include <algorithm>
#include <cassert>

#include "common/simd.h"
#include "whatif/whatif_index.h"

namespace pinum {

double WorkloadCostEvaluator::Cost(const IndexConfig& config) const {
  double total = 0;
  for (const SealedCache& cache : *caches_) total += cache.Cost(config);
  return total;
}

std::vector<double> WorkloadCostEvaluator::BatchCost(
    const std::vector<IndexConfig>& configs) const {
  std::vector<double> costs(configs.size());
  if (pool_ == nullptr || configs.size() <= 1) {
    for (size_t i = 0; i < configs.size(); ++i) costs[i] = Cost(configs[i]);
    return costs;
  }
  pool_->ParallelFor(static_cast<int64_t>(configs.size()), [&](int64_t i) {
    costs[static_cast<size_t>(i)] = Cost(configs[static_cast<size_t>(i)]);
  });
  return costs;
}

const std::vector<double>& WorkloadCostEvaluator::BatchCostWithExtras(
    const IndexConfig& base, const std::vector<IndexId>& extras,
    EvalScratch* scratch) const {
  // A scratch's contexts index one cache vector's seals; serving them to
  // a different vector would return the wrong workload's costs. Identity
  // is recorded on first use and asserted (debug builds) ever after.
  assert((scratch->bound_caches == nullptr ||
          scratch->bound_caches == caches_) &&
         "EvalScratch reused with a different evaluator's cache vector");
  scratch->bound_caches = caches_;
  const size_t num_queries = caches_->size();
  const size_t num_extras = extras.size();
  if (scratch->per_query.size() != num_queries) {
    scratch->per_query.assign(num_queries, {});
    scratch->pinned_valid = false;
  }
  scratch->per_query_costs.resize(num_queries * num_extras);

  // Context reuse across calls: the greedy advisor's bases grow one
  // winner at a time, so the common case extends the pinned contexts by
  // one id's postings instead of re-resolving every term against the
  // whole base.
  const bool reuse = scratch->pinned_valid && base == scratch->pinned_base;
  const bool extend =
      !reuse && scratch->pinned_valid &&
      base.size() == scratch->pinned_base.size() + 1 &&
      std::equal(scratch->pinned_base.begin(), scratch->pinned_base.end(),
                 base.begin());
  const IndexId appended = extend ? base.back() : kInvalidIndexId;

  // One id -> sweep-slot map, built once and shared by every query's
  // inverted sweep (walk the cache's posting-bearing ids, not all
  // extras). A duplicated swept id cannot be mapped to two slots, so
  // that (advisor-impossible) shape falls back to the per-extra sweep.
  IndexId max_id = -1;
  for (const IndexId id : extras) max_id = std::max(max_id, id);
  // When every extra is negative (all out of universe) — or there are no
  // extras at all — max_id stays -1 and there is nothing to overlay:
  // every row is exactly Cost(base). That case is handled explicitly
  // below (rows filled with the pinned base cost, no sweep) instead of
  // leaning on the inverted sweep walking a zero-size map. Contexts are
  // still pinned/extended so the next real sweep reuses them warm.
  const bool empty_sweep = max_id < 0;
  const size_t map_size = static_cast<size_t>(max_id + 1);
  scratch->position_of_id.assign(map_size, SealedCache::kNotSwept);
  bool duplicate_ids = false;
  for (size_t e = 0; e < num_extras; ++e) {
    const IndexId id = extras[e];
    if (id < 0) continue;
    uint32_t& slot = scratch->position_of_id[static_cast<size_t>(id)];
    duplicate_ids = duplicate_ids || slot != SealedCache::kNotSwept;
    slot = static_cast<uint32_t>(e);
  }
  const uint32_t* position_of_id = scratch->position_of_id.data();

  // Shard by query: each query pins the base once, then sweeps every
  // extra through its posting overlay. Slots are disjoint, so the matrix
  // contents are deterministic regardless of scheduling.
  auto price_query = [&](int64_t q) {
    const SealedCache& cache = (*caches_)[static_cast<size_t>(q)];
    SealedCache::CostContext& ctx =
        scratch->per_query[static_cast<size_t>(q)];
    if (ctx.seal_id() != cache.seal_id()) {
      // The cache at this slot was resealed (or replaced) since the
      // context was pinned — RebuildQueries swaps stale queries' seals
      // in place — so the pinned values index a dead term layout.
      // Re-prepare against the live seal; only the resealed queries pay
      // this, their neighbours keep their warm contexts.
      cache.PrepareContext(base, &ctx);
    } else if (extend) {
      cache.ExtendContext(&ctx, appended);
    } else if (!reuse) {
      cache.PrepareContext(base, &ctx);
    }
    double* row = scratch->per_query_costs.data() +
                  static_cast<size_t>(q) * num_extras;
    if (empty_sweep) {
      simd::Fill(row, ctx.base_cost(), num_extras);
    } else if (duplicate_ids) {
      cache.CostExtrasInto(&ctx, extras.data(), num_extras, row);
    } else {
      simd::Fill(row, ctx.base_cost(), num_extras);
      cache.CostActiveExtrasInto(&ctx, position_of_id, map_size, row);
    }
  };
  if (pool_ == nullptr || num_queries <= 1) {
    for (size_t q = 0; q < num_queries; ++q) {
      price_query(static_cast<int64_t>(q));
    }
  } else {
    pool_->ParallelFor(static_cast<int64_t>(num_queries), price_query);
  }

  scratch->pinned_base = base;
  scratch->pinned_valid = true;

  // Reduce the per-query partial results in query order — floating-point
  // addition is not associative, and this is the order Cost() sums in,
  // which makes the delta and batched paths bit-identical.
  scratch->totals.assign(num_extras, 0.0);
  for (size_t q = 0; q < num_queries; ++q) {
    const double* row = scratch->per_query_costs.data() + q * num_extras;
    for (size_t e = 0; e < num_extras; ++e) scratch->totals[e] += row[e];
  }
  return scratch->totals;
}

std::vector<AdvisorCandidate> ResolveAdvisorCandidates(
    const CandidateSet& candidates) {
  std::vector<AdvisorCandidate> resolved;
  resolved.reserve(candidates.candidate_ids.size());
  for (size_t i = 0; i < candidates.candidate_ids.size(); ++i) {
    const IndexId cand = candidates.candidate_ids[i];
    const IndexDef* def = candidates.universe.FindIndex(cand);
    if (def == nullptr) continue;
    resolved.push_back(
        {cand, IndexSizeBytes(*def), static_cast<uint32_t>(i)});
  }
  return resolved;
}

GreedyRun RunGreedyFrom(const WorkloadCostEvaluator& evaluator,
                        const std::vector<AdvisorCandidate>& candidates,
                        const IndexConfig& start, int64_t start_bytes,
                        double floor_scale, const AdvisorOptions& options,
                        WorkloadCostEvaluator::EvalScratch* scratch,
                        GreedySweepFilter* filter) {
  GreedyRun run;
  IndexConfig chosen = start;
  run.start_cost = evaluator.Cost(chosen);
  run.evaluations = 1;
  run.full_evaluations = 1;
  if (floor_scale <= 0) floor_scale = run.start_cost;
  double current_cost = run.start_cost;
  int64_t used_bytes = start_bytes;

  // Working set: everything not already in the start configuration.
  std::vector<AdvisorCandidate> remaining;
  remaining.reserve(candidates.size());
  for (const AdvisorCandidate& cand : candidates) {
    if (std::find(start.begin(), start.end(), cand.id) != start.end()) {
      continue;
    }
    remaining.push_back(cand);
  }

  std::vector<AdvisorCandidate> swept;
  std::vector<IndexId> sweep_ids;
  std::vector<IndexConfig> batch;
  const size_t npos = static_cast<size_t>(-1);

  while (true) {
    if (options.max_indexes > 0 &&
        static_cast<int>(chosen.size()) >= options.max_indexes) {
      break;
    }
    // Permanent budget pruning: used_bytes only grows, so a candidate
    // that no longer fits never fits again — swap-and-pop it instead of
    // re-filtering the whole set every iteration.
    for (size_t i = 0; i < remaining.size();) {
      if (used_bytes + remaining[i].size_bytes > options.budget_bytes) {
        remaining[i] = remaining.back();
        remaining.pop_back();
      } else {
        ++i;
      }
    }
    if (remaining.empty()) break;

    // One sweep per iteration: every surviving candidate appended to the
    // current configuration, priced together. A filter may exclude
    // candidates it can prove dominated (below the stopping floor); that
    // never changes the outcome — see GreedySweepFilter's contract.
    swept.clear();
    sweep_ids.clear();
    for (const AdvisorCandidate& cand : remaining) {
      if (filter != nullptr && filter->Skip(cand)) continue;
      swept.push_back(cand);
      sweep_ids.push_back(cand.id);
    }
    if (swept.empty()) break;
    const std::vector<double>* costs;
    std::vector<double> batched_costs;
    if (options.cost_path == AdvisorCostPath::kDelta) {
      costs = &evaluator.BatchCostWithExtras(chosen, sweep_ids, scratch);
      run.full_evaluations += 1;  // the pinned base; extras are overlays
    } else {
      batch.clear();
      batch.reserve(sweep_ids.size());
      for (IndexId id : sweep_ids) {
        IndexConfig config = chosen;
        config.push_back(id);
        batch.push_back(std::move(config));
      }
      batched_costs = evaluator.BatchCost(batch);
      costs = &batched_costs;
      run.full_evaluations += static_cast<int64_t>(sweep_ids.size());
    }
    run.evaluations += static_cast<int64_t>(sweep_ids.size());

    // Strictly-better argmin with ties broken by original candidate
    // order: identical to pricing the candidates one at a time in
    // candidate order, but independent of the working set's layout, so
    // swap-and-pop removals cannot change which index is selected.
    size_t best_i = npos;
    double best_cost = current_cost;
    for (size_t i = 0; i < swept.size(); ++i) {
      const double cost = (*costs)[i];
      const bool wins =
          best_i == npos
              ? cost < best_cost
              : cost < best_cost ||
                    (cost == best_cost && swept[i].order < swept[best_i].order);
      if (wins) {
        best_i = i;
        best_cost = cost;
      }
    }
    if (best_i == npos) {
      // Nothing strictly better: this sweep was priced against the final
      // configuration, so expose it for dominance pruning.
      run.final_sweep_valid = true;
      run.final_sweep = swept;
      run.final_sweep_costs = *costs;
      break;
    }
    const double benefit = current_cost - best_cost;
    if (benefit < options.min_relative_benefit * floor_scale ||
        benefit < options.min_absolute_benefit) {
      run.final_sweep_valid = true;
      run.final_sweep = swept;
      run.final_sweep_costs = *costs;
      break;
    }
    const AdvisorCandidate winner = swept[best_i];
    chosen.push_back(winner.id);
    used_bytes += winner.size_bytes;
    current_cost = best_cost;
    for (size_t i = 0; i < remaining.size(); ++i) {
      // Match on (id, order): order is the unique original slot, so a
      // duplicated id can never evict its twin.
      if (remaining[i].id == winner.id &&
          remaining[i].order == winner.order) {
        remaining[i] = remaining.back();
        remaining.pop_back();
        break;
      }
    }
    if (filter != nullptr) filter->OnPick(winner);
    run.steps.push_back(
        {winner.id, benefit, winner.size_bytes, current_cost});
  }

  run.chosen = std::move(chosen);
  run.cost_after = current_cost;
  run.used_bytes = used_bytes;
  return run;
}

AdvisorResult RunGreedyAdvisor(const WorkloadCostEvaluator& evaluator,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options) {
  const std::vector<AdvisorCandidate> resolved =
      ResolveAdvisorCandidates(candidates);
  WorkloadCostEvaluator::EvalScratch scratch;  // pinned across iterations
  const GreedyRun run =
      RunGreedyFrom(evaluator, resolved, /*start=*/{}, /*start_bytes=*/0,
                    /*floor_scale=*/0, options, &scratch, /*filter=*/nullptr);
  AdvisorResult result;
  result.chosen = run.chosen;
  result.steps = run.steps;
  result.workload_cost_before = run.start_cost;
  result.workload_cost_after = run.cost_after;
  result.total_size_bytes = run.used_bytes;
  result.evaluations = run.evaluations;
  result.full_evaluations = run.full_evaluations;
  return result;
}

AdvisorResult RunGreedyAdvisor(const std::vector<SealedCache>& caches,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options) {
  return RunGreedyAdvisor(WorkloadCostEvaluator(&caches), candidates,
                          options);
}

AdvisorResult RunGreedyAdvisor(const std::vector<InumCache>& caches,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options) {
  std::vector<SealedCache> sealed;
  sealed.reserve(caches.size());
  for (const InumCache& cache : caches) {
    sealed.push_back(SealedCache::Seal(cache, candidates.NumIndexIds()));
  }
  return RunGreedyAdvisor(sealed, candidates, options);
}

}  // namespace pinum
