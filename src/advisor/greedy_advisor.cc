#include "advisor/greedy_advisor.h"

#include <algorithm>

#include "common/simd.h"
#include "whatif/whatif_index.h"

namespace pinum {

double WorkloadCostEvaluator::Cost(const IndexConfig& config) const {
  double total = 0;
  for (const SealedCache& cache : *caches_) total += cache.Cost(config);
  return total;
}

std::vector<double> WorkloadCostEvaluator::BatchCost(
    const std::vector<IndexConfig>& configs) const {
  std::vector<double> costs(configs.size());
  if (pool_ == nullptr || configs.size() <= 1) {
    for (size_t i = 0; i < configs.size(); ++i) costs[i] = Cost(configs[i]);
    return costs;
  }
  pool_->ParallelFor(static_cast<int64_t>(configs.size()), [&](int64_t i) {
    costs[static_cast<size_t>(i)] = Cost(configs[static_cast<size_t>(i)]);
  });
  return costs;
}

const std::vector<double>& WorkloadCostEvaluator::BatchCostWithExtras(
    const IndexConfig& base, const std::vector<IndexId>& extras,
    EvalScratch* scratch) const {
  const size_t num_queries = caches_->size();
  const size_t num_extras = extras.size();
  if (scratch->per_query.size() != num_queries) {
    scratch->per_query.assign(num_queries, {});
    scratch->pinned_valid = false;
  }
  scratch->per_query_costs.resize(num_queries * num_extras);

  // Context reuse across calls: the greedy advisor's bases grow one
  // winner at a time, so the common case extends the pinned contexts by
  // one id's postings instead of re-resolving every term against the
  // whole base.
  const bool reuse = scratch->pinned_valid && base == scratch->pinned_base;
  const bool extend =
      !reuse && scratch->pinned_valid &&
      base.size() == scratch->pinned_base.size() + 1 &&
      std::equal(scratch->pinned_base.begin(), scratch->pinned_base.end(),
                 base.begin());
  const IndexId appended = extend ? base.back() : kInvalidIndexId;

  // One id -> sweep-slot map, built once and shared by every query's
  // inverted sweep (walk the cache's posting-bearing ids, not all
  // extras). A duplicated swept id cannot be mapped to two slots, so
  // that (advisor-impossible) shape falls back to the per-extra sweep.
  IndexId max_id = -1;
  for (const IndexId id : extras) max_id = std::max(max_id, id);
  const size_t map_size = static_cast<size_t>(max_id + 1);
  scratch->position_of_id.assign(map_size, SealedCache::kNotSwept);
  bool duplicate_ids = false;
  for (size_t e = 0; e < num_extras; ++e) {
    const IndexId id = extras[e];
    if (id < 0) continue;
    uint32_t& slot = scratch->position_of_id[static_cast<size_t>(id)];
    duplicate_ids = duplicate_ids || slot != SealedCache::kNotSwept;
    slot = static_cast<uint32_t>(e);
  }
  const uint32_t* position_of_id = scratch->position_of_id.data();

  // Shard by query: each query pins the base once, then sweeps every
  // extra through its posting overlay. Slots are disjoint, so the matrix
  // contents are deterministic regardless of scheduling.
  auto price_query = [&](int64_t q) {
    const SealedCache& cache = (*caches_)[static_cast<size_t>(q)];
    SealedCache::CostContext& ctx =
        scratch->per_query[static_cast<size_t>(q)];
    if (ctx.seal_id() != cache.seal_id()) {
      // The cache at this slot was resealed (or replaced) since the
      // context was pinned — RebuildQueries swaps stale queries' seals
      // in place — so the pinned values index a dead term layout.
      // Re-prepare against the live seal; only the resealed queries pay
      // this, their neighbours keep their warm contexts.
      cache.PrepareContext(base, &ctx);
    } else if (extend) {
      cache.ExtendContext(&ctx, appended);
    } else if (!reuse) {
      cache.PrepareContext(base, &ctx);
    }
    double* row = scratch->per_query_costs.data() +
                  static_cast<size_t>(q) * num_extras;
    if (duplicate_ids) {
      cache.CostExtrasInto(&ctx, extras.data(), num_extras, row);
    } else {
      simd::Fill(row, ctx.base_cost(), num_extras);
      cache.CostActiveExtrasInto(&ctx, position_of_id, map_size, row);
    }
  };
  if (pool_ == nullptr || num_queries <= 1) {
    for (size_t q = 0; q < num_queries; ++q) {
      price_query(static_cast<int64_t>(q));
    }
  } else {
    pool_->ParallelFor(static_cast<int64_t>(num_queries), price_query);
  }

  scratch->pinned_base = base;
  scratch->pinned_valid = true;

  // Reduce the per-query partial results in query order — floating-point
  // addition is not associative, and this is the order Cost() sums in,
  // which makes the delta and batched paths bit-identical.
  scratch->totals.assign(num_extras, 0.0);
  for (size_t q = 0; q < num_queries; ++q) {
    const double* row = scratch->per_query_costs.data() + q * num_extras;
    for (size_t e = 0; e < num_extras; ++e) scratch->totals[e] += row[e];
  }
  return scratch->totals;
}

AdvisorResult RunGreedyAdvisor(const WorkloadCostEvaluator& evaluator,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options) {
  AdvisorResult result;
  IndexConfig chosen;
  result.workload_cost_before = evaluator.Cost(chosen);
  ++result.evaluations;
  double current_cost = result.workload_cost_before;
  int64_t used_bytes = 0;

  // The working set: ids resolvable in the universe, with their sizes
  // computed once and their original candidate order remembered. Ids the
  // universe cannot resolve are dropped here instead of being re-probed
  // (and re-skipped) every iteration.
  struct Cand {
    IndexId id;
    int64_t size_bytes;
    uint32_t order;  // position in candidates.candidate_ids
  };
  std::vector<Cand> remaining;
  remaining.reserve(candidates.candidate_ids.size());
  for (size_t i = 0; i < candidates.candidate_ids.size(); ++i) {
    const IndexId cand = candidates.candidate_ids[i];
    const IndexDef* def = candidates.universe.FindIndex(cand);
    if (def == nullptr) continue;
    remaining.push_back({cand, IndexSizeBytes(*def), static_cast<uint32_t>(i)});
  }

  WorkloadCostEvaluator::EvalScratch scratch;  // pinned across iterations
  std::vector<IndexId> sweep_ids;
  std::vector<IndexConfig> batch;
  const size_t npos = static_cast<size_t>(-1);

  while (true) {
    if (options.max_indexes > 0 &&
        static_cast<int>(chosen.size()) >= options.max_indexes) {
      break;
    }
    // Permanent budget pruning: used_bytes only grows, so a candidate
    // that no longer fits never fits again — swap-and-pop it instead of
    // re-filtering the whole set every iteration.
    for (size_t i = 0; i < remaining.size();) {
      if (used_bytes + remaining[i].size_bytes > options.budget_bytes) {
        remaining[i] = remaining.back();
        remaining.pop_back();
      } else {
        ++i;
      }
    }
    if (remaining.empty()) break;

    // One sweep per iteration: every surviving candidate appended to the
    // current configuration, priced together.
    sweep_ids.clear();
    for (const Cand& cand : remaining) sweep_ids.push_back(cand.id);
    const std::vector<double>* costs;
    std::vector<double> batched_costs;
    if (options.cost_path == AdvisorCostPath::kDelta) {
      costs = &evaluator.BatchCostWithExtras(chosen, sweep_ids, &scratch);
    } else {
      batch.clear();
      batch.reserve(sweep_ids.size());
      for (IndexId id : sweep_ids) {
        IndexConfig config = chosen;
        config.push_back(id);
        batch.push_back(std::move(config));
      }
      batched_costs = evaluator.BatchCost(batch);
      costs = &batched_costs;
    }
    result.evaluations += static_cast<int64_t>(sweep_ids.size());

    // Strictly-better argmin with ties broken by original candidate
    // order: identical to pricing the candidates one at a time in
    // candidate order, but independent of the working set's layout, so
    // swap-and-pop removals cannot change which index is selected.
    size_t best_i = npos;
    double best_cost = current_cost;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const double cost = (*costs)[i];
      const bool wins =
          best_i == npos
              ? cost < best_cost
              : cost < best_cost ||
                    (cost == best_cost &&
                     remaining[i].order < remaining[best_i].order);
      if (wins) {
        best_i = i;
        best_cost = cost;
      }
    }
    if (best_i == npos) break;
    const double benefit = current_cost - best_cost;
    if (benefit < options.min_relative_benefit *
                      std::max(1.0, result.workload_cost_before)) {
      break;
    }
    const Cand winner = remaining[best_i];
    chosen.push_back(winner.id);
    used_bytes += winner.size_bytes;
    current_cost = best_cost;
    remaining[best_i] = remaining.back();
    remaining.pop_back();
    result.steps.push_back({winner.id, benefit, winner.size_bytes,
                            current_cost});
  }

  result.chosen = chosen;
  result.workload_cost_after = current_cost;
  result.total_size_bytes = used_bytes;
  return result;
}

AdvisorResult RunGreedyAdvisor(const std::vector<SealedCache>& caches,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options) {
  return RunGreedyAdvisor(WorkloadCostEvaluator(&caches), candidates,
                          options);
}

AdvisorResult RunGreedyAdvisor(const std::vector<InumCache>& caches,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options) {
  std::vector<SealedCache> sealed;
  sealed.reserve(caches.size());
  for (const InumCache& cache : caches) {
    sealed.push_back(SealedCache::Seal(cache, candidates.NumIndexIds()));
  }
  return RunGreedyAdvisor(sealed, candidates, options);
}

}  // namespace pinum
