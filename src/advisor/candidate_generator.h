// Candidate-index generation for the index-selection tool: the tool
// "first statically analyses the queries to find a large set of candidate
// indexes" (paper, Section V-E) — its accuracy advantage over commercial
// designers comes "mainly because of its significantly larger candidate
// index set".
#ifndef PINUM_ADVISOR_CANDIDATE_GENERATOR_H_
#define PINUM_ADVISOR_CANDIDATE_GENERATOR_H_

#include <vector>

#include "catalog/catalog.h"
#include "query/query.h"
#include "stats/table_stats.h"

namespace pinum {

/// Candidate generation knobs.
struct CandidateOptions {
  /// Emit single-column indexes on filter/join/order/group columns.
  bool single_column = true;
  /// Emit covering indexes: interesting column first, then every other
  /// column the query reads from the table (enables index-only scans —
  /// the paper's winning fact-table indexes are of this shape).
  bool covering = true;
  /// Emit workload-covering indexes: a filter column first, then the
  /// union of every column any workload query reads from the table. One
  /// such index serves many queries at once, which is how the paper's
  /// advisor amortizes a few fat fact-table indexes across the workload.
  bool workload_covering = true;
  /// Upper bound on emitted candidates (0 = unlimited).
  size_t max_candidates = 0;
};

/// Generates deduplicated hypothetical candidate indexes for a workload.
std::vector<IndexDef> GenerateCandidates(const std::vector<Query>& workload,
                                         const Catalog& catalog,
                                         const StatsCatalog& stats,
                                         const CandidateOptions& options);

}  // namespace pinum

#endif  // PINUM_ADVISOR_CANDIDATE_GENERATOR_H_
