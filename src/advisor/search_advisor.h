// Anytime randomized configuration search on top of the delta engine.
//
// The paper's Section V-E advisor is a single greedy sweep because every
// evaluation used to cost an optimizer call; the delta path prices a
// candidate in O(postings), cheap enough to afford *search*. The search
// runs (1) parallel randomized restarts — greedy completions from
// seeded random candidate prefixes, sharded over the ThreadPool — and
// (2) swap/backtracking local moves on the best restart: evict one
// chosen index, re-sweep the survivors through BatchCostWithExtras with
// the pinned EvalScratch, and greedy-complete from the freed budget,
// which captures index-interaction effects a single greedy pass misses.
// Posting-overlap signatures from the sealed caches prune swap
// candidates that are provably still below the stopping floor
// (docs/ADVISOR.md spells out the soundness argument).
//
// Determinism contract: the result (minus wall_ms) is a pure function
// of (caches, candidates, options). Restart outcomes depend only on
// their per-restart seeded RNG and reduce in canonical restart order,
// so pool scheduling and thread counts never change the returned bits;
// runs on a fresh build and on a restored snapshot are bit-identical.
// With time_budget_ms > 0 the search is *anytime*: the deadline is
// checked between whole units of work (a restart, an eviction), the
// greedy baseline always completes, and whatever has finished reduces
// under the same canonical rule — so a truncated run is still never
// worse than greedy, but which units finished is machine-dependent.
// Leave the deadline at 0 wherever reproducibility matters (tests, the
// golden corpus).
#ifndef PINUM_ADVISOR_SEARCH_ADVISOR_H_
#define PINUM_ADVISOR_SEARCH_ADVISOR_H_

#include <cstdint>
#include <vector>

#include "advisor/greedy_advisor.h"
#include "whatif/candidate_set.h"

namespace pinum {

/// Search configuration. The embedded AdvisorOptions carry the space
/// budget and stopping rule shared with greedy; the fields here shape
/// the search itself.
struct SearchOptions {
  /// Space budget, stopping floors, max_indexes, cost path — shared by
  /// the greedy baseline, every restart, and every swap chain.
  AdvisorOptions base;
  /// Master seed. Restart r draws from an independent stream seeded by
  /// SplitMix64(seed, r), so (seed, r) pins a restart's prefix exactly.
  uint64_t seed = 1;
  /// Randomized restarts run after the greedy baseline (restart 0).
  int max_restarts = 16;
  /// Wall-clock budget in milliseconds; 0 = unlimited (fully
  /// deterministic). The greedy baseline always completes even when the
  /// budget is already spent, so the search never returns a
  /// configuration worse than greedy's.
  double time_budget_ms = 0;
  /// Passes of swap/backtracking local moves over the incumbent; each
  /// pass tries evicting every chosen position once. Stops early at a
  /// fixpoint (a pass with no accepted move).
  int max_local_passes = 4;
  /// Skip swap-sweep candidates whose posting footprint is disjoint
  /// from everything the incumbent changed and whose last swept benefit
  /// already failed the stopping floor. Exact (never changes the
  /// result — SearchPruningNeverChangesTheResult pins this), purely a
  /// work saver; exposed so tests can diff on/off.
  bool prune_dominated_swaps = true;
};

/// One restart's trajectory entry, in canonical restart order.
struct SearchRestart {
  /// 0 = the greedy baseline (empty prefix).
  uint32_t restart = 0;
  /// Random budget-fitting candidates the greedy completion grew from.
  uint32_t prefix_size = 0;
  /// False only when the time budget skipped this restart.
  bool completed = false;
  double cost_after = 0;
  uint32_t num_chosen = 0;
};

/// One accepted swap move.
struct SearchSwap {
  uint32_t pass = 0;
  IndexId evicted = kInvalidIndexId;
  /// First index the re-sweep chain inserted (kInvalidIndexId when the
  /// move shrank the configuration outright).
  IndexId inserted = kInvalidIndexId;
  /// Total insertions after the eviction (>1 = backtracking: several
  /// smaller indexes replaced one large one).
  uint32_t chain_length = 0;
  double cost_after = 0;
};

/// Search output. Everything except wall_ms is covered by the
/// determinism contract above.
struct SearchResult {
  /// Best configuration found, in growth order (restart prefix + greedy
  /// picks, mutated by accepted swaps).
  IndexConfig chosen;
  double workload_cost_before = 0;
  double workload_cost_after = 0;
  /// Restart 0's converged cost — the greedy baseline the quality
  /// guarantee is measured against. workload_cost_after is never above
  /// this.
  double greedy_cost_after = 0;
  int64_t total_size_bytes = 0;
  /// Counter semantics match AdvisorResult: configurations priced
  /// across all restarts and swap chains / full-path resolutions only.
  int64_t evaluations = 0;
  int64_t full_evaluations = 0;
  /// Restarts that ran to completion (always >= 1: the baseline).
  int64_t restarts_completed = 0;
  int64_t swaps_accepted = 0;
  /// Swap-sweep candidates skipped by the posting-overlap pruner.
  int64_t swap_candidates_pruned = 0;
  /// Trajectories, for the plan-stability corpus and debugging.
  std::vector<SearchRestart> restarts;
  std::vector<SearchSwap> swaps;
  /// Measured wall clock; the one field outside the determinism
  /// contract.
  double wall_ms = 0;
};

/// Runs the search. The evaluator's pool (when present) shards the
/// randomized restarts — each restart prices serially on its worker —
/// and then the swap-move sweeps query-parallel; a pool-less evaluator
/// runs everything serially with identical bits.
SearchResult RunSearchAdvisor(const WorkloadCostEvaluator& evaluator,
                              const CandidateSet& candidates,
                              const SearchOptions& options);

/// Convenience overload: serial search over already-sealed caches.
SearchResult RunSearchAdvisor(const std::vector<SealedCache>& caches,
                              const CandidateSet& candidates,
                              const SearchOptions& options);

}  // namespace pinum

#endif  // PINUM_ADVISOR_SEARCH_ADVISOR_H_
