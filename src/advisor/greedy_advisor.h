// The index-selection tool of Section V-E: an iterative greedy algorithm
// over a large candidate set, evaluating configurations through the
// (P)INUM cache instead of the optimizer.
#ifndef PINUM_ADVISOR_GREEDY_ADVISOR_H_
#define PINUM_ADVISOR_GREEDY_ADVISOR_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "inum/cache.h"
#include "inum/sealed_cache.h"
#include "whatif/candidate_set.h"

namespace pinum {

/// Batched what-if costing over a workload's per-query sealed caches:
/// prices a whole set of candidate configurations in one call — in
/// parallel when given a pool — instead of looping query-by-query at
/// every call site. Results are written into per-configuration slots, so
/// batched and serial pricing return bit-identical costs.
///
/// Two batch shapes are offered. BatchCost prices arbitrary
/// configurations from scratch. BatchCostWithExtras prices one base
/// configuration plus each of many single-index extensions — the greedy
/// advisor's iteration shape — through the delta path: each query's
/// sealed cache pins the base into a CostContext once, then every extra
/// is a sparse posting-list overlay (O(postings) instead of
/// O(|base| x terms) per extra). Work shards across queries on the pool,
/// per-query costs land in per-(query, extra) slots, and the final
/// per-extra sums reduce in query order — the exact addition order the
/// serial Cost() path uses — so the delta and batched paths return
/// bit-identical workload costs.
///
/// The evaluator consumes the serve-time SealedCache form only; seal the
/// build-time InumCaches once (WorkloadCacheBuilder does this) and keep
/// serving from the sealed vector.
class WorkloadCostEvaluator {
 public:
  /// Reusable scratch for BatchCostWithExtras: per-query pinned contexts
  /// and the per-(query, extra) cost matrix. Keep one instance alive
  /// across advisor iterations so contexts stay pinned: when a call's
  /// base equals the previous call's base plus one appended id — the
  /// greedy advisor's winner — the contexts are extended in place
  /// (O(postings) per query) instead of re-resolved from scratch. A
  /// scratch belongs to one evaluator's cache vector; do not share it
  /// across evaluators or concurrent calls. It IS safe to keep using a
  /// scratch after WorkloadCacheBuilder::RebuildQueries reseals some of
  /// the vector's caches in place: every call compares each context's
  /// recorded seal id against its cache's (SealedCache::seal_id) and
  /// re-prepares exactly the resealed queries' contexts, so reuse can
  /// never serve costs from a dead seal's term layout.
  struct EvalScratch {
    std::vector<SealedCache::CostContext> per_query;
    /// Row-major [query][extra] per-query costs.
    std::vector<double> per_query_costs;
    /// Per-extra workload totals, reduced in query order.
    std::vector<double> totals;
    /// The base configuration the contexts currently pin.
    IndexConfig pinned_base;
    bool pinned_valid = false;
    /// id -> sweep slot map shared by every query's inverted sweep.
    std::vector<uint32_t> position_of_id;
  };

  /// `caches` must outlive the evaluator (it may come from a fresh
  /// WorkloadCacheBuilder::BuildAll or from a restored snapshot —
  /// LoadSnapshot's caches serve bit-identically). `pool` is optional
  /// (serial pricing when null) and not owned; it may be shared with
  /// other users between calls but not during one.
  explicit WorkloadCostEvaluator(const std::vector<SealedCache>* caches,
                                 ThreadPool* pool = nullptr)
      : caches_(caches), pool_(pool) {}

  /// Workload cost of one configuration: sum of per-query cache costs,
  /// added in query order (the canonical order every batch path reduces
  /// in, which is what makes them bit-identical to this). Thread-safe.
  double Cost(const IndexConfig& config) const;

  /// Workload cost of every configuration; result[i] prices configs[i].
  /// Configurations shard across the pool when one was given;
  /// scheduling never affects the returned bits. Thread-safe.
  std::vector<double> BatchCost(const std::vector<IndexConfig>& configs) const;

  /// Workload cost of base + {extras[i]} for every i, through the delta
  /// path; the returned reference (scratch->totals) is valid until the
  /// next call with the same scratch. result[i] is bit-identical to
  /// Cost(base + {extras[i]}). Duplicate ids in `extras` are allowed
  /// (each slot is priced independently); ids outside the universe and
  /// ids already in `base` price as Cost(base). NOT thread-safe with
  /// respect to `scratch`: one scratch, one caller at a time.
  const std::vector<double>& BatchCostWithExtras(
      const IndexConfig& base, const std::vector<IndexId>& extras,
      EvalScratch* scratch) const;

  size_t NumQueries() const { return caches_->size(); }

 private:
  const std::vector<SealedCache>* caches_;
  ThreadPool* pool_;
};

/// How the advisor prices each iteration's candidate sweep. Both paths
/// produce bit-identical AdvisorResults (the equivalence suite pins
/// this); the delta path is the fast default, the batched path is the
/// PR-2 baseline kept for verification and benchmarking.
enum class AdvisorCostPath {
  /// Pin chosen-so-far into per-query contexts once per iteration, sweep
  /// candidates through SealedCache::CostWithExtra posting overlays.
  kDelta,
  /// Re-price chosen + {cand} from scratch per candidate (PR-2 path).
  kBatched,
};

/// Advisor configuration.
struct AdvisorOptions {
  /// Disk-space budget for the suggested indexes (bytes). The paper's
  /// experiment restricts suggestions to 5 GB against a 10 GB database.
  int64_t budget_bytes = 5LL * 1024 * 1024 * 1024;
  /// Stop after this many winners regardless of budget (0 = unlimited).
  int max_indexes = 0;
  /// Minimum relative benefit to keep iterating.
  double min_relative_benefit = 1e-6;
  /// Candidate-sweep pricing path.
  AdvisorCostPath cost_path = AdvisorCostPath::kDelta;
};

/// One greedy iteration's outcome.
struct AdvisorStep {
  IndexId chosen = kInvalidIndexId;
  double benefit = 0;
  int64_t size_bytes = 0;
  double workload_cost_after = 0;
};

/// Advisor output.
struct AdvisorResult {
  std::vector<IndexId> chosen;
  std::vector<AdvisorStep> steps;
  double workload_cost_before = 0;
  double workload_cost_after = 0;
  int64_t total_size_bytes = 0;
  /// Number of configuration evaluations performed (each would have been
  /// an optimizer call without the cache).
  int64_t evaluations = 0;
};

/// Runs the greedy selection: repeatedly adds the candidate with the
/// largest workload benefit until the space budget would be violated or
/// no candidate helps. Each iteration sweeps all surviving candidates
/// through the evaluator — pure arithmetic, no optimizer calls, parallel
/// when the evaluator has a pool. Candidates are dropped from the
/// working set permanently once they can never return: unknown ids up
/// front, and over-budget ids as soon as they stop fitting (the used
/// budget only grows).
///
/// Deterministic: the result is a pure function of (caches, candidates,
/// options) — ties break on candidate order rank, pool sharding never
/// changes reduction order — so runs on a fresh build, on a restored
/// snapshot, on either cost path, and at any thread count are all
/// bit-identical (the equivalence suites in tests/advisor_test.cc and
/// tests/snapshot_test.cc pin this).
AdvisorResult RunGreedyAdvisor(const WorkloadCostEvaluator& evaluator,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options);

/// Convenience overload: serial pricing over already-sealed caches.
AdvisorResult RunGreedyAdvisor(const std::vector<SealedCache>& caches,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options);

/// Convenience overload for freshly built caches: seals each once (the
/// cheap, one-time serving conversion), then runs the greedy selection
/// against the sealed forms.
AdvisorResult RunGreedyAdvisor(const std::vector<InumCache>& caches,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options);

}  // namespace pinum

#endif  // PINUM_ADVISOR_GREEDY_ADVISOR_H_
