// The index-selection tool of Section V-E: an iterative greedy algorithm
// over a large candidate set, evaluating configurations through the
// (P)INUM cache instead of the optimizer. The greedy core is exposed as
// RunGreedyFrom so the search advisor (src/advisor/search_advisor.h) can
// run it from arbitrary start configurations — randomized-restart
// prefixes and swap-move bases — without duplicating the sweep loop.
#ifndef PINUM_ADVISOR_GREEDY_ADVISOR_H_
#define PINUM_ADVISOR_GREEDY_ADVISOR_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "inum/cache.h"
#include "inum/sealed_cache.h"
#include "whatif/candidate_set.h"

namespace pinum {

/// Batched what-if costing over a workload's per-query sealed caches:
/// prices a whole set of candidate configurations in one call — in
/// parallel when given a pool — instead of looping query-by-query at
/// every call site. Results are written into per-configuration slots, so
/// batched and serial pricing return bit-identical costs.
///
/// Two batch shapes are offered. BatchCost prices arbitrary
/// configurations from scratch. BatchCostWithExtras prices one base
/// configuration plus each of many single-index extensions — the greedy
/// advisor's iteration shape — through the delta path: each query's
/// sealed cache pins the base into a CostContext once, then every extra
/// is a sparse posting-list overlay (O(postings) instead of
/// O(|base| x terms) per extra). Work shards across queries on the pool,
/// per-query costs land in per-(query, extra) slots, and the final
/// per-extra sums reduce in query order — the exact addition order the
/// serial Cost() path uses — so the delta and batched paths return
/// bit-identical workload costs.
///
/// The evaluator consumes the serve-time SealedCache form only; seal the
/// build-time InumCaches once (WorkloadCacheBuilder does this) and keep
/// serving from the sealed vector.
class WorkloadCostEvaluator {
 public:
  /// Reusable scratch for BatchCostWithExtras: per-query pinned contexts
  /// and the per-(query, extra) cost matrix. Keep one instance alive
  /// across advisor iterations so contexts stay pinned: when a call's
  /// base equals the previous call's base plus one appended id — the
  /// greedy advisor's winner — the contexts are extended in place
  /// (O(postings) per query) instead of re-resolved from scratch. A
  /// scratch belongs to one evaluator's cache vector; do not share it
  /// across evaluators over different vectors or concurrent calls — the
  /// first call records the cache-vector identity in `bound_caches` and
  /// debug builds assert on a mismatch. It IS safe to keep using a
  /// scratch after WorkloadCacheBuilder::RebuildQueries reseals some of
  /// the vector's caches in place: every call compares each context's
  /// recorded seal id against its cache's (SealedCache::seal_id) and
  /// re-prepares exactly the resealed queries' contexts, so reuse can
  /// never serve costs from a dead seal's term layout.
  struct EvalScratch {
    std::vector<SealedCache::CostContext> per_query;
    /// Row-major [query][extra] per-query costs.
    std::vector<double> per_query_costs;
    /// Per-extra workload totals, reduced in query order.
    std::vector<double> totals;
    /// The base configuration the contexts currently pin.
    IndexConfig pinned_base;
    bool pinned_valid = false;
    /// id -> sweep slot map shared by every query's inverted sweep.
    std::vector<uint32_t> position_of_id;
    /// The cache vector this scratch's contexts belong to, recorded on
    /// first use. Contexts index one vector's seals; feeding them to an
    /// evaluator over a different vector would serve costs from the
    /// wrong workload, so debug builds assert identity on every call.
    const void* bound_caches = nullptr;
  };

  /// `caches` must outlive the evaluator (it may come from a fresh
  /// WorkloadCacheBuilder::BuildAll or from a restored snapshot —
  /// LoadSnapshot's caches serve bit-identically). `pool` is optional
  /// (serial pricing when null) and not owned; it may be shared with
  /// other users between calls but not during one.
  explicit WorkloadCostEvaluator(const std::vector<SealedCache>* caches,
                                 ThreadPool* pool = nullptr)
      : caches_(caches), pool_(pool) {}

  /// Workload cost of one configuration: sum of per-query cache costs,
  /// added in query order (the canonical order every batch path reduces
  /// in, which is what makes them bit-identical to this). Thread-safe.
  double Cost(const IndexConfig& config) const;

  /// Workload cost of every configuration; result[i] prices configs[i].
  /// Configurations shard across the pool when one was given;
  /// scheduling never affects the returned bits. Thread-safe.
  std::vector<double> BatchCost(const std::vector<IndexConfig>& configs) const;

  /// Workload cost of base + {extras[i]} for every i, through the delta
  /// path; the returned reference (scratch->totals) is valid until the
  /// next call with the same scratch. result[i] is bit-identical to
  /// Cost(base + {extras[i]}). Duplicate ids in `extras` are allowed
  /// (each slot is priced independently); ids outside the universe and
  /// ids already in `base` price as Cost(base). NOT thread-safe with
  /// respect to `scratch`: one scratch, one caller at a time.
  const std::vector<double>& BatchCostWithExtras(
      const IndexConfig& base, const std::vector<IndexId>& extras,
      EvalScratch* scratch) const;

  size_t NumQueries() const { return caches_->size(); }

  /// The cache vector this evaluator prices against (not owned). The
  /// search advisor uses this to spin up serial per-restart evaluators
  /// over the same caches and to read posting footprints for pruning.
  const std::vector<SealedCache>* caches() const { return caches_; }

  /// The pool sweeps shard over; nullptr for serial pricing.
  ThreadPool* pool() const { return pool_; }

 private:
  const std::vector<SealedCache>* caches_;
  ThreadPool* pool_;
};

/// How the advisor prices each iteration's candidate sweep. Both paths
/// produce bit-identical AdvisorResults apart from the
/// `full_evaluations` work counter (the equivalence suite pins this);
/// the delta path is the fast default, the batched path is the PR-2
/// baseline kept for verification and benchmarking.
enum class AdvisorCostPath {
  /// Pin chosen-so-far into per-query contexts once per iteration, sweep
  /// candidates through SealedCache::CostWithExtra posting overlays.
  kDelta,
  /// Re-price chosen + {cand} from scratch per candidate (PR-2 path).
  kBatched,
};

/// Advisor configuration.
struct AdvisorOptions {
  /// Disk-space budget for the suggested indexes (bytes). The paper's
  /// experiment restricts suggestions to 5 GB against a 10 GB database.
  int64_t budget_bytes = 5LL * 1024 * 1024 * 1024;
  /// Stop after this many winners regardless of budget (0 = unlimited).
  int max_indexes = 0;
  /// Minimum benefit to keep iterating, as a fraction of the workload's
  /// starting cost: the loop stops when an iteration's best benefit
  /// falls below min_relative_benefit * workload_cost_before. Genuinely
  /// relative at every scale — a workload whose total cost is 0.5 keeps
  /// winners worth 5e-7 under the default, where the pre-fix rule
  /// (scaling by max(1.0, cost_before)) silently became an absolute
  /// 1e-6 cutoff. Callers that want the old behavior for sub-1.0
  /// workloads can say so explicitly via min_absolute_benefit.
  double min_relative_benefit = 1e-6;
  /// Absolute benefit floor applied alongside the relative rule: the
  /// loop also stops when the best benefit falls below this many cost
  /// units, regardless of workload scale. 0 (default) disables it.
  double min_absolute_benefit = 0;
  /// Candidate-sweep pricing path.
  AdvisorCostPath cost_path = AdvisorCostPath::kDelta;
};

/// One greedy iteration's outcome.
struct AdvisorStep {
  IndexId chosen = kInvalidIndexId;
  double benefit = 0;
  int64_t size_bytes = 0;
  double workload_cost_after = 0;
};

/// Advisor output.
struct AdvisorResult {
  std::vector<IndexId> chosen;
  std::vector<AdvisorStep> steps;
  double workload_cost_before = 0;
  double workload_cost_after = 0;
  int64_t total_size_bytes = 0;
  /// Configurations priced. Each one would have been a whole optimizer
  /// call without the cache, so this is also the optimizer-calls-avoided
  /// count. Path-independent: the delta and batched paths price the
  /// same configurations.
  int64_t evaluations = 0;
  /// Configurations actually resolved through the full pricing path
  /// (term-matrix scan over the whole configuration). The delta path
  /// resolves only each iteration's base and prices the sweep as
  /// O(postings) posting overlays, so full_evaluations stays at
  /// 1 + iterations there, while the batched path pays one full
  /// resolution per priced configuration (== evaluations). The gap
  /// between the two counters is the work the delta engine avoided —
  /// deliberately path-DEPENDENT, unlike every other field.
  int64_t full_evaluations = 0;
};

/// A budget-resolvable candidate in the advisor working set: its id, its
/// estimated size (computed once), and its position in
/// CandidateSet::candidate_ids — the deterministic tie-break rank.
struct AdvisorCandidate {
  IndexId id = kInvalidIndexId;
  int64_t size_bytes = 0;
  uint32_t order = 0;
};

/// Resolves a candidate set into the advisor working form. Ids the
/// universe cannot resolve are dropped here instead of being re-probed
/// (and re-skipped) every iteration.
std::vector<AdvisorCandidate> ResolveAdvisorCandidates(
    const CandidateSet& candidates);

/// Hook for skipping individual candidates out of RunGreedyFrom sweeps.
/// Skip() must be *exact*: it may only return true for a candidate that
/// provably cannot change the run's outcome — i.e. one whose benefit
/// against the run's current configuration is known to fall below the
/// stopping rule's floor (such a candidate is never accepted, and if it
/// were the sweep argmin the loop would stop either way, since every
/// other candidate's benefit is no larger). The search advisor's
/// posting-overlap pruner (docs/ADVISOR.md) is the intended
/// implementation. OnPick is invoked after each accepted winner so the
/// filter can track how the configuration has drifted from whatever
/// reference its skip evidence was gathered against.
class GreedySweepFilter {
 public:
  virtual ~GreedySweepFilter() = default;
  virtual bool Skip(const AdvisorCandidate& cand) = 0;
  virtual void OnPick(const AdvisorCandidate& cand) { (void)cand; }
};

/// One greedy run from an arbitrary start configuration — the core loop
/// of RunGreedyAdvisor, exposed for the search advisor's restart and
/// swap-chain moves.
struct GreedyRun {
  /// start + picks, in growth order.
  IndexConfig chosen;
  /// The picks only (start members have no steps).
  std::vector<AdvisorStep> steps;
  /// Cost of the start configuration / of `chosen`.
  double start_cost = 0;
  double cost_after = 0;
  /// start_bytes + picked sizes.
  int64_t used_bytes = 0;
  int64_t evaluations = 0;
  int64_t full_evaluations = 0;
  /// The last sweep the loop priced, exposed so a search layer can prove
  /// candidates dominated in later moves. Valid only when that sweep was
  /// priced against the final `chosen` (the loop ended because no swept
  /// candidate beat the benefit floor); runs that end on the budget,
  /// max_indexes, or empty-sweep exits leave it invalid.
  bool final_sweep_valid = false;
  std::vector<AdvisorCandidate> final_sweep;
  /// final_sweep_costs[i] = Cost(chosen + {final_sweep[i].id}).
  std::vector<double> final_sweep_costs;
};

/// Runs greedy selection starting from `start` (whose indexes occupy
/// `start_bytes` of the budget): repeatedly adds the candidate with the
/// largest workload benefit until the space budget would be violated or
/// no candidate helps. Candidates already in `start` are excluded from
/// the working set; `options.max_indexes` counts start members.
/// `floor_scale` is the workload cost the relative stopping rule scales
/// by — pass 0 (or any non-positive value) to scale by the start
/// configuration's own cost, which is what RunGreedyAdvisor does; the
/// search advisor passes the empty configuration's cost so every
/// restart and swap chain stops under the same rule. `scratch` keeps
/// contexts pinned across iterations (and across calls — swap chains
/// share one). `filter` optionally skips provably-dominated candidates
/// (see GreedySweepFilter); pass nullptr to sweep everything.
///
/// Deterministic: the result is a pure function of (caches, candidates,
/// start, floor_scale, options) plus the filter's decisions — ties
/// break on candidate order rank, pool sharding never changes reduction
/// order.
GreedyRun RunGreedyFrom(const WorkloadCostEvaluator& evaluator,
                        const std::vector<AdvisorCandidate>& candidates,
                        const IndexConfig& start, int64_t start_bytes,
                        double floor_scale, const AdvisorOptions& options,
                        WorkloadCostEvaluator::EvalScratch* scratch,
                        GreedySweepFilter* filter);

/// Runs the greedy selection: repeatedly adds the candidate with the
/// largest workload benefit until the space budget would be violated or
/// no candidate helps. Each iteration sweeps all surviving candidates
/// through the evaluator — pure arithmetic, no optimizer calls, parallel
/// when the evaluator has a pool. Candidates are dropped from the
/// working set permanently once they can never return: unknown ids up
/// front, and over-budget ids as soon as they stop fitting (the used
/// budget only grows).
///
/// Deterministic: the result is a pure function of (caches, candidates,
/// options) — ties break on candidate order rank, pool sharding never
/// changes reduction order — so runs on a fresh build, on a restored
/// snapshot, on either cost path, and at any thread count are all
/// bit-identical (the equivalence suites in tests/advisor_test.cc and
/// tests/snapshot_test.cc pin this; `full_evaluations` is the one
/// deliberately path-dependent field).
AdvisorResult RunGreedyAdvisor(const WorkloadCostEvaluator& evaluator,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options);

/// Convenience overload: serial pricing over already-sealed caches.
AdvisorResult RunGreedyAdvisor(const std::vector<SealedCache>& caches,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options);

/// Convenience overload for freshly built caches: seals each once (the
/// cheap, one-time serving conversion), then runs the greedy selection
/// against the sealed forms.
AdvisorResult RunGreedyAdvisor(const std::vector<InumCache>& caches,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options);

}  // namespace pinum

#endif  // PINUM_ADVISOR_GREEDY_ADVISOR_H_
