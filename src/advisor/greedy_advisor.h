// The index-selection tool of Section V-E: an iterative greedy algorithm
// over a large candidate set, evaluating configurations through the
// (P)INUM cache instead of the optimizer.
#ifndef PINUM_ADVISOR_GREEDY_ADVISOR_H_
#define PINUM_ADVISOR_GREEDY_ADVISOR_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "inum/cache.h"
#include "inum/sealed_cache.h"
#include "whatif/candidate_set.h"

namespace pinum {

/// Batched what-if costing over a workload's per-query sealed caches:
/// prices a whole set of candidate configurations in one call — in
/// parallel when given a pool — instead of looping query-by-query at
/// every call site. Results are written into per-configuration slots, so
/// batched and serial pricing return bit-identical costs.
///
/// The evaluator consumes the serve-time SealedCache form only; seal the
/// build-time InumCaches once (WorkloadCacheBuilder does this) and keep
/// serving from the sealed vector.
class WorkloadCostEvaluator {
 public:
  /// `caches` must outlive the evaluator. `pool` is optional (serial
  /// pricing when null) and not owned.
  explicit WorkloadCostEvaluator(const std::vector<SealedCache>* caches,
                                 ThreadPool* pool = nullptr)
      : caches_(caches), pool_(pool) {}

  /// Workload cost of one configuration: sum of per-query cache costs.
  double Cost(const IndexConfig& config) const;

  /// Workload cost of every configuration; result[i] prices configs[i].
  std::vector<double> BatchCost(const std::vector<IndexConfig>& configs) const;

  size_t NumQueries() const { return caches_->size(); }

 private:
  const std::vector<SealedCache>* caches_;
  ThreadPool* pool_;
};

/// Advisor configuration.
struct AdvisorOptions {
  /// Disk-space budget for the suggested indexes (bytes). The paper's
  /// experiment restricts suggestions to 5 GB against a 10 GB database.
  int64_t budget_bytes = 5LL * 1024 * 1024 * 1024;
  /// Stop after this many winners regardless of budget (0 = unlimited).
  int max_indexes = 0;
  /// Minimum relative benefit to keep iterating.
  double min_relative_benefit = 1e-6;
};

/// One greedy iteration's outcome.
struct AdvisorStep {
  IndexId chosen = kInvalidIndexId;
  double benefit = 0;
  int64_t size_bytes = 0;
  double workload_cost_after = 0;
};

/// Advisor output.
struct AdvisorResult {
  std::vector<IndexId> chosen;
  std::vector<AdvisorStep> steps;
  double workload_cost_before = 0;
  double workload_cost_after = 0;
  int64_t total_size_bytes = 0;
  /// Number of configuration evaluations performed (each would have been
  /// an optimizer call without the cache).
  int64_t evaluations = 0;
};

/// Runs the greedy selection: repeatedly adds the candidate with the
/// largest workload benefit until the space budget would be violated or
/// no candidate helps. Each iteration prices all surviving candidates as
/// one batch through the evaluator — pure arithmetic, no optimizer
/// calls, parallel when the evaluator has a pool.
AdvisorResult RunGreedyAdvisor(const WorkloadCostEvaluator& evaluator,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options);

/// Convenience overload: serial pricing over already-sealed caches.
AdvisorResult RunGreedyAdvisor(const std::vector<SealedCache>& caches,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options);

/// Convenience overload for freshly built caches: seals each once (the
/// cheap, one-time serving conversion), then runs the greedy selection
/// against the sealed forms.
AdvisorResult RunGreedyAdvisor(const std::vector<InumCache>& caches,
                               const CandidateSet& candidates,
                               const AdvisorOptions& options);

}  // namespace pinum

#endif  // PINUM_ADVISOR_GREEDY_ADVISOR_H_
