#include "advisor/search_advisor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/stopwatch.h"

namespace pinum {
namespace {

// SplitMix64 finalizer: decorrelates the per-restart streams so restart
// r's prefix is pinned by (seed, r) alone.
uint64_t MixSeed(uint64_t seed, uint64_t r) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (r + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Per-candidate posting-footprint signature: a 64-bit bloom over the
// queries where the candidate bears postings. A query's cost depends
// only on the configuration members with postings in that query's cache
// (ids without postings never fold into its term values), so two
// candidates with disjoint signatures provably touch disjoint query
// sets — changing one cannot move the other's workload benefit.
std::vector<uint64_t> PostingSignatures(const std::vector<SealedCache>& caches,
                                        size_t universe) {
  std::vector<uint64_t> sigs(universe, 0);
  for (size_t q = 0; q < caches.size(); ++q) {
    const uint64_t bit = 1ULL << (MixSeed(0, q) & 63);
    for (const IndexId id : caches[q].PostingBearingIds()) {
      if (id >= 0 && static_cast<size_t>(id) < universe) sigs[id] |= bit;
    }
  }
  return sigs;
}

// The swap-sweep filter. Always bars the evicted index itself from
// re-insertion — otherwise a locally-best index is immediately re-picked
// and the move degenerates to a no-op, never exploring the
// interaction-aware configurations the swap exists to reach.
//
// When pruning is on it also skips dominated candidates. Evidence: the
// incumbent's final greedy
// sweep priced every surviving candidate against the full incumbent
// configuration, so benefit_c(incumbent) is known for each. A swap
// chain's configuration differs from the incumbent only by the evicted
// index and the chain's insertions; if candidate c's query signature is
// disjoint from all of those, then every query where c bears postings
// sees the exact incumbent configuration, so benefit_c(chain base) ==
// benefit_c(incumbent). When that benefit already fails the stopping
// floor, c can neither be accepted nor change the chain's stopping
// point (the sweep argmin's benefit would fail the floor with or
// without c) — skipping it is exact, per GreedySweepFilter's contract.
class SwapPruner : public GreedySweepFilter {
 public:
  SwapPruner(IndexId evicted, bool prune, const std::vector<uint64_t>* sigs,
             const std::vector<double>* incumbent_sweep_cost,
             double incumbent_cost, double rel_floor, double abs_floor,
             uint64_t changed_sig)
      : evicted_(evicted),
        prune_(prune),
        sigs_(sigs),
        sweep_cost_(incumbent_sweep_cost),
        incumbent_cost_(incumbent_cost),
        rel_floor_(rel_floor),
        abs_floor_(abs_floor),
        changed_sig_(changed_sig) {}

  bool Skip(const AdvisorCandidate& cand) override {
    if (cand.id == evicted_) return true;  // the move's defining exclusion
    if (!prune_) return false;
    const size_t id = static_cast<size_t>(cand.id);
    if (id >= sigs_->size()) return false;
    if (((*sigs_)[id] & changed_sig_) != 0) return false;  // maybe moved
    const double cost = (*sweep_cost_)[id];
    if (std::isnan(cost)) return false;  // no incumbent evidence
    const double benefit = incumbent_cost_ - cost;
    if (benefit < rel_floor_ || benefit < abs_floor_) {
      ++skipped_;
      return true;
    }
    return false;
  }

  void OnPick(const AdvisorCandidate& cand) override {
    const size_t id = static_cast<size_t>(cand.id);
    // An insertion invalidates the evidence for every candidate sharing
    // a query with it; out-of-range ids (impossible for resolved
    // candidates) conservatively invalidate everything.
    changed_sig_ |= id < sigs_->size() ? (*sigs_)[id] : ~0ULL;
  }

  int64_t skipped() const { return skipped_; }

 private:
  IndexId evicted_;
  bool prune_;
  const std::vector<uint64_t>* sigs_;
  const std::vector<double>* sweep_cost_;
  double incumbent_cost_;
  double rel_floor_;
  double abs_floor_;
  uint64_t changed_sig_;
  int64_t skipped_ = 0;
};

}  // namespace

SearchResult RunSearchAdvisor(const WorkloadCostEvaluator& evaluator,
                              const CandidateSet& candidates,
                              const SearchOptions& options) {
  Stopwatch wall;
  SearchResult result;
  const std::vector<AdvisorCandidate> cands =
      ResolveAdvisorCandidates(candidates);
  auto expired = [&] {
    return options.time_budget_ms > 0 &&
           wall.ElapsedMillis() >= options.time_budget_ms;
  };

  // Restart 0: the canonical greedy baseline. Always runs to completion
  // — even with the budget already spent — which is what guarantees the
  // search never returns a configuration worse than greedy's. Sweeps
  // shard query-parallel on the evaluator's pool.
  const int num_random =
      cands.empty() ? 0 : std::max(0, options.max_restarts);
  std::vector<GreedyRun> runs(static_cast<size_t>(num_random) + 1);
  std::vector<uint32_t> prefix_sizes(runs.size(), 0);
  std::vector<char> completed(runs.size(), 0);
  WorkloadCostEvaluator::EvalScratch scratch;
  runs[0] = RunGreedyFrom(evaluator, cands, /*start=*/{}, /*start_bytes=*/0,
                          /*floor_scale=*/0, options.base, &scratch,
                          /*filter=*/nullptr);
  completed[0] = 1;
  const double empty_cost = runs[0].start_cost;
  result.workload_cost_before = empty_cost;
  result.greedy_cost_after = runs[0].cost_after;

  // Randomized restarts: a seeded random budget-fitting candidate prefix,
  // greedy-completed. Restarts shard over the pool — one restart per
  // worker, each pricing serially through its own evaluator and scratch
  // (BatchCostWithExtras must not nest on the pool) — and their outcomes
  // depend only on (seed, restart), never on scheduling.
  const size_t max_prefix = std::max<size_t>(
      1, std::min(cands.size(), runs[0].chosen.size() + 2));
  auto run_restart = [&](int64_t idx) {
    const size_t r = static_cast<size_t>(idx) + 1;
    if (expired()) return;  // anytime: skip whole restarts past deadline
    Rng rng(MixSeed(options.seed, r));
    size_t want = 1 + rng.Index(max_prefix);
    if (options.base.max_indexes > 0) {
      want = std::min(want, static_cast<size_t>(options.base.max_indexes));
    }
    IndexConfig prefix;
    int64_t prefix_bytes = 0;
    for (const size_t i : rng.SampleIndices(cands.size(), cands.size())) {
      if (prefix.size() >= want) break;
      if (prefix_bytes + cands[i].size_bytes > options.base.budget_bytes) {
        continue;
      }
      prefix.push_back(cands[i].id);
      prefix_bytes += cands[i].size_bytes;
    }
    WorkloadCostEvaluator serial(evaluator.caches(), nullptr);
    WorkloadCostEvaluator::EvalScratch restart_scratch;
    runs[r] = RunGreedyFrom(serial, cands, prefix, prefix_bytes, empty_cost,
                            options.base, &restart_scratch,
                            /*filter=*/nullptr);
    prefix_sizes[r] = static_cast<uint32_t>(prefix.size());
    completed[r] = 1;
  };
  ThreadPool* pool = evaluator.pool();
  if (num_random > 0) {
    if (pool != nullptr) {
      pool->ParallelFor(num_random, run_restart);
    } else {
      for (int64_t r = 0; r < num_random; ++r) run_restart(r);
    }
  }

  // Canonical reduction: best completed restart, ties to the lowest
  // restart index — pool scheduling cannot change the winner.
  size_t best = 0;
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!completed[r]) continue;
    ++result.restarts_completed;
    result.evaluations += runs[r].evaluations;
    result.full_evaluations += runs[r].full_evaluations;
    if (runs[r].cost_after < runs[best].cost_after) best = r;
    SearchRestart entry;
    entry.restart = static_cast<uint32_t>(r);
    entry.prefix_size = prefix_sizes[r];
    entry.completed = true;
    entry.cost_after = runs[r].cost_after;
    entry.num_chosen = static_cast<uint32_t>(runs[r].chosen.size());
    result.restarts.push_back(entry);
  }
  for (size_t r = 0; r < runs.size(); ++r) {
    if (completed[r]) continue;
    SearchRestart entry;
    entry.restart = static_cast<uint32_t>(r);
    result.restarts.push_back(entry);
  }
  std::sort(result.restarts.begin(), result.restarts.end(),
            [](const SearchRestart& a, const SearchRestart& b) {
              return a.restart < b.restart;
            });

  // Swap/backtracking local moves on the incumbent: evict one chosen
  // index, greedy-complete from the freed budget (the re-sweep prices
  // through BatchCostWithExtras with the shared pinned scratch), accept
  // strictly-improving moves that pass the same benefit floor greedy
  // stops under. Candidates provably still below the floor are pruned
  // via the posting-overlap signatures.
  GreedyRun& incumbent = runs[best];
  IndexConfig chosen = incumbent.chosen;
  int64_t used_bytes = incumbent.used_bytes;
  double current_cost = incumbent.cost_after;
  const size_t universe = candidates.NumIndexIds();
  std::vector<uint64_t> sigs;
  if (options.prune_dominated_swaps) {
    sigs = PostingSignatures(*evaluator.caches(), universe);
  }
  std::vector<double> sweep_cost(universe,
                                 std::numeric_limits<double>::quiet_NaN());
  bool sweep_valid = false;
  auto load_sweep = [&](const GreedyRun& run) {
    sweep_cost.assign(universe, std::numeric_limits<double>::quiet_NaN());
    sweep_valid = run.final_sweep_valid;
    if (!sweep_valid) return;
    for (size_t i = 0; i < run.final_sweep.size(); ++i) {
      const size_t id = static_cast<size_t>(run.final_sweep[i].id);
      if (id < universe) sweep_cost[id] = run.final_sweep_costs[i];
    }
  };
  load_sweep(incumbent);
  auto size_of = [&](IndexId id) {
    for (const AdvisorCandidate& cand : cands) {
      if (cand.id == id) return cand.size_bytes;
    }
    return int64_t{0};
  };
  const double rel_floor =
      options.base.min_relative_benefit * empty_cost;
  const double abs_floor = options.base.min_absolute_benefit;

  bool out_of_time = false;
  for (int pass = 0; pass < options.max_local_passes && !out_of_time;
       ++pass) {
    bool pass_improved = false;
    for (size_t pos = 0; pos < chosen.size(); ++pos) {
      if (expired()) {  // anytime: finish between whole eviction moves
        out_of_time = true;
        break;
      }
      const IndexId evicted = chosen[pos];
      IndexConfig swap_base;
      swap_base.reserve(chosen.size() - 1);
      for (size_t i = 0; i < chosen.size(); ++i) {
        if (i != pos) swap_base.push_back(chosen[i]);
      }
      const int64_t swap_base_bytes = used_bytes - size_of(evicted);
      const bool prune = options.prune_dominated_swaps && sweep_valid &&
                         static_cast<size_t>(evicted) < sigs.size();
      SwapPruner pruner(evicted, prune, &sigs, &sweep_cost, current_cost,
                        rel_floor, abs_floor,
                        prune ? sigs[static_cast<size_t>(evicted)] : 0);
      GreedyRun chain = RunGreedyFrom(
          evaluator, cands, swap_base, swap_base_bytes, empty_cost,
          options.base, &scratch, &pruner);
      result.evaluations += chain.evaluations;
      result.full_evaluations += chain.full_evaluations;
      result.swap_candidates_pruned += pruner.skipped();
      const double improvement = current_cost - chain.cost_after;
      if (improvement > 0 &&
          !(improvement < rel_floor || improvement < abs_floor)) {
        SearchSwap swap;
        swap.pass = static_cast<uint32_t>(pass);
        swap.evicted = evicted;
        swap.inserted =
            chain.steps.empty() ? kInvalidIndexId : chain.steps[0].chosen;
        swap.chain_length = static_cast<uint32_t>(chain.steps.size());
        swap.cost_after = chain.cost_after;
        result.swaps.push_back(swap);
        ++result.swaps_accepted;
        chosen = chain.chosen;
        used_bytes = chain.used_bytes;
        current_cost = chain.cost_after;
        load_sweep(chain);
        pass_improved = true;
        // `pos` now indexes the mutated configuration; continuing is
        // fine — every position gets revisited next pass, and the
        // fixpoint rule below decides when to stop.
      }
    }
    if (!pass_improved) break;
  }

  result.chosen = std::move(chosen);
  result.workload_cost_after = current_cost;
  result.total_size_bytes = used_bytes;
  result.wall_ms = wall.ElapsedMillis();
  return result;
}

SearchResult RunSearchAdvisor(const std::vector<SealedCache>& caches,
                              const CandidateSet& candidates,
                              const SearchOptions& options) {
  return RunSearchAdvisor(WorkloadCostEvaluator(&caches), candidates,
                          options);
}

}  // namespace pinum
