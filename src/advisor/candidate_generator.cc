#include "advisor/candidate_generator.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "whatif/whatif_index.h"

namespace pinum {

namespace {

/// Stable dedup key for (table, key column list).
std::string KeyOf(TableId table, const std::vector<ColumnIdx>& cols) {
  std::ostringstream key;
  key << table << ":";
  for (ColumnIdx c : cols) key << c << ",";
  return key.str();
}

}  // namespace

std::vector<IndexDef> GenerateCandidates(const std::vector<Query>& workload,
                                         const Catalog& catalog,
                                         const StatsCatalog& stats,
                                         const CandidateOptions& options) {
  std::vector<IndexDef> out;
  std::set<std::string> seen;
  int counter = 0;

  auto emit = [&](TableId table, const std::vector<ColumnIdx>& cols) {
    if (cols.empty()) return;
    if (options.max_candidates > 0 && out.size() >= options.max_candidates) {
      return;
    }
    const std::string key = KeyOf(table, cols);
    if (!seen.insert(key).second) return;
    const TableDef* def = catalog.FindTable(table);
    const TableStats* tstats = stats.Find(table);
    if (def == nullptr || tstats == nullptr) return;
    out.push_back(MakeWhatIfIndex("cand_" + std::to_string(counter++) + "_" +
                                      def->name,
                                  *def, cols, tstats->row_count));
  };

  for (const Query& q : workload) {
    for (TableId table : q.tables) {
      // Interesting columns: filters, joins, order-by, group-by.
      std::vector<ColumnIdx> interesting;
      auto add_interesting = [&](ColumnRef c) {
        if (c.table == table &&
            std::find(interesting.begin(), interesting.end(), c.column) ==
                interesting.end()) {
          interesting.push_back(c.column);
        }
      };
      for (const auto& f : q.filters) add_interesting(f.column);
      for (const auto& j : q.joins) {
        if (j.Touches(table)) add_interesting(j.SideOn(table));
      }
      for (const auto& o : q.order_by) add_interesting(o.column);
      for (const auto& g : q.group_by) add_interesting(g);

      const std::vector<ColumnIdx> needed = q.NeededColumns(table);

      for (ColumnIdx lead : interesting) {
        if (options.single_column) emit(table, {lead});
        if (options.covering) {
          std::vector<ColumnIdx> cols = {lead};
          for (ColumnIdx c : needed) {
            if (c != lead) cols.push_back(c);
          }
          if (cols.size() > 1) emit(table, cols);
        }
      }
      // Pure covering index (index-only scans without a useful order).
      if (options.covering && !needed.empty()) emit(table, needed);
    }
  }

  // Workload-covering candidates: per table, each filter column leading
  // the union of all columns the workload reads from the table.
  if (options.workload_covering) {
    std::map<TableId, std::set<ColumnIdx>> unions;
    std::map<TableId, std::set<ColumnIdx>> filter_cols;
    for (const Query& q : workload) {
      for (TableId table : q.tables) {
        const auto needed = q.NeededColumns(table);
        unions[table].insert(needed.begin(), needed.end());
      }
      for (const auto& f : q.filters) {
        filter_cols[f.column.table].insert(f.column.column);
      }
    }
    for (const auto& [table, cols] : unions) {
      for (ColumnIdx lead : filter_cols[table]) {
        std::vector<ColumnIdx> key = {lead};
        for (ColumnIdx c : cols) {
          if (c != lead) key.push_back(c);
        }
        if (key.size() > 1) emit(table, key);
      }
    }
  }
  return out;
}

}  // namespace pinum
