// Snapshot persistence: a save→load round trip must hand back caches
// that answer every cost question bit-identically to the sealed
// originals (infinity sentinels included), and every failure path —
// missing file, truncation, bad magic, future format version, payload
// corruption, epoch mismatch — must return its own distinct Status
// instead of crashing or serving wrong costs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "advisor/candidate_generator.h"
#include "advisor/greedy_advisor.h"
#include "common/rng.h"
#include "inum/snapshot.h"
#include "test_util.h"
#include "whatif/candidate_set.h"
#include "workload/cache_manager.h"
#include "workload/star_schema.h"

namespace pinum {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// The paper's star-schema workload (capped at 5-way joins, like the
/// sealed-cache suite: larger joins add minutes under sanitizers but no
/// new slot shapes), its candidate universe, one PINUM build, and a
/// snapshot of it on disk — shared across the suite because the build is
/// the expensive part.
class SnapshotTest : public ::testing::Test {
 protected:
  struct Fixture {
    StarSchemaWorkload workload;
    CandidateSet set;
    /// Pointer because the builder (with its thread pool) is neither
    /// copyable nor movable.
    std::unique_ptr<WorkloadCacheBuilder> builder;
    WorkloadCacheResult built;
    std::string path;

    WorkloadCacheBuilder& Builder() { return *builder; }
  };
  static Fixture* fix_;

  static void SetUpTestSuite() {
    StarSchemaSpec spec;
    spec.query_sizes = {2, 3, 3, 4, 4, 5};
    auto w = StarSchemaWorkload::Create(spec);
    ASSERT_TRUE(w.ok());
    CandidateOptions copt;
    auto cands = GenerateCandidates(w->queries(), w->db().catalog(),
                                    w->db().stats(), copt);
    auto set = MakeCandidateSet(w->db().catalog(), cands);
    ASSERT_TRUE(set.ok());
    fix_ = new Fixture{std::move(*w),
                       std::move(*set),
                       nullptr,
                       {},
                       ::testing::TempDir() + "pinum_snapshot_test.snap"};
    fix_->builder = std::make_unique<WorkloadCacheBuilder>(
        &fix_->workload.db().catalog(), &fix_->set,
        &fix_->workload.db().stats());
    auto built = fix_->builder->BuildAll(fix_->workload.queries());
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    fix_->built = std::move(*built);
    Status st = fix_->builder->SaveSnapshot(fix_->path, fix_->built,
                                            fix_->workload.queries());
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  static void TearDownTestSuite() {
    std::remove(fix_->path.c_str());
    delete fix_;
    fix_ = nullptr;
  }

  /// A pristine copy of the snapshot bytes for patch-and-reject tests.
  static std::string SnapshotBytes() { return ReadFile(fix_->path); }

  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + name;
  }
};

SnapshotTest::Fixture* SnapshotTest::fix_ = nullptr;

TEST_F(SnapshotTest, RoundTripCostBitIdentical) {
  auto loaded = fix_->builder->LoadSnapshot(fix_->path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::vector<Query>& queries = fix_->workload.queries();
  ASSERT_EQ(loaded->sealed.size(), queries.size());
  ASSERT_EQ(loaded->query_names.size(), queries.size());
  const IndexId universe = fix_->set.NumIndexIds();

  Rng rng(211);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(loaded->query_names[qi], queries[qi].name);
    const SealedCache& original = fix_->built.sealed[qi];
    const SealedCache& restored = loaded->sealed[qi];
    // Structure round-trips exactly, derived posting ids included.
    EXPECT_EQ(restored.NumPlans(), original.NumPlans());
    EXPECT_EQ(restored.NumPlansPruned(), original.NumPlansPruned());
    EXPECT_EQ(restored.NumTerms(), original.NumTerms());
    EXPECT_EQ(restored.NumPostings(), original.NumPostings());
    EXPECT_EQ(restored.PostingBearingIds(), original.PostingBearingIds());

    // Costs round-trip bitwise — including the empty configuration,
    // duplicate ids, ids outside the universe, and configurations whose
    // terms stay at the kInfiniteCost sentinel.
    EXPECT_EQ(restored.Cost({}), original.Cost({})) << "query " << qi;
    for (int trial = 0; trial < 20; ++trial) {
      IndexConfig config =
          RandomAtomicConfig(queries[qi], fix_->set, &rng);
      if (!config.empty() && rng.Chance(0.5)) {
        config.push_back(config[rng.Index(config.size())]);
      }
      if (rng.Chance(0.5)) config.push_back(universe + 100);
      if (rng.Chance(0.5)) config.push_back(kInvalidIndexId);
      EXPECT_EQ(restored.Cost(config), original.Cost(config))
          << "query " << qi << " trial " << trial;
    }

    // The delta path serves from restored postings bit-identically too.
    SealedCache::CostContext restored_ctx;
    SealedCache::CostContext original_ctx;
    const IndexConfig base =
        RandomAtomicConfig(queries[qi], fix_->set, &rng);
    restored.PrepareContext(base, &restored_ctx);
    original.PrepareContext(base, &original_ctx);
    EXPECT_EQ(restored_ctx.base_cost(), original_ctx.base_cost());
    for (IndexId extra : fix_->set.candidate_ids) {
      EXPECT_EQ(restored.CostWithExtra(&restored_ctx, extra),
                original.CostWithExtra(&original_ctx, extra))
          << "query " << qi << " extra " << extra;
    }
  }
}

TEST_F(SnapshotTest, AdvisorOutputBitIdenticalFromRestoredCaches) {
  // The acceptance property behind `advisor_tool --load`: the greedy
  // advisor over restored caches must return the fresh build's result
  // field for field, cost bits included.
  auto loaded = fix_->builder->LoadSnapshot(fix_->path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  AdvisorOptions opts;
  const AdvisorResult fresh =
      RunGreedyAdvisor(fix_->built.sealed, fix_->set, opts);
  const AdvisorResult restored =
      RunGreedyAdvisor(loaded->sealed, fix_->set, opts);
  ExpectSameAdvisorResult(fresh, restored);
  EXPECT_FALSE(fresh.chosen.empty());
}

TEST_F(SnapshotTest, ReadSnapshotEpochMatchesLiveEpoch) {
  auto stored = ReadSnapshotEpoch(fix_->path);
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  const SnapshotEpoch live = ComputeSnapshotEpoch(
      fix_->set, fix_->workload.db().stats());
  EXPECT_TRUE(*stored == live);
  EXPECT_EQ(stored->universe, fix_->set.NumIndexIds());
  EXPECT_EQ(stored->candidate_ids, fix_->set.candidate_ids);
}

TEST_F(SnapshotTest, MissingFileIsNotFound) {
  auto loaded = fix_->builder->LoadSnapshot(TempPath("no_such.snap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotTest, TruncationIsOutOfRange) {
  const std::string bytes = SnapshotBytes();
  const std::string path = TempPath("truncated.snap");
  // Every truncation point — inside the header, inside the section
  // table, mid-payload, one byte short — must report kOutOfRange with
  // no crash (ASan-clean), never garbage costs.
  for (size_t keep :
       {size_t{0}, size_t{4}, size_t{12}, size_t{39}, size_t{96},
        bytes.size() / 2, bytes.size() - 1}) {
    WriteFile(path, bytes.substr(0, keep));
    auto loaded = fix_->builder->LoadSnapshot(path);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange)
        << "kept " << keep << " bytes: " << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, BadMagicIsInvalidArgument) {
  std::string bytes = SnapshotBytes();
  bytes[0] = 'X';
  const std::string path = TempPath("bad_magic.snap");
  WriteFile(path, bytes);
  auto loaded = fix_->builder->LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, FutureFormatVersionIsUnimplemented) {
  std::string bytes = SnapshotBytes();
  // The format version lives at byte 12 (docs/SNAPSHOT_FORMAT.md) and is
  // deliberately outside the checksummed region, so a newer writer's
  // file fails on the version, not on a checksum it may compute
  // differently.
  const uint32_t future = kSnapshotFormatVersion + 1;
  std::memcpy(bytes.data() + 12, &future, sizeof(future));
  const std::string path = TempPath("future.snap");
  WriteFile(path, bytes);
  auto loaded = fix_->builder->LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnimplemented);
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, PayloadCorruptionIsInternal) {
  const std::string pristine = SnapshotBytes();
  const std::string path = TempPath("corrupt.snap");
  // Any flipped payload bit — section table, epoch, costs, postings —
  // trips the checksum before the bytes are believed.
  for (size_t at : {size_t{40}, size_t{64}, pristine.size() / 2,
                    pristine.size() - 1}) {
    std::string bytes = pristine;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x40);
    WriteFile(path, bytes);
    auto loaded = fix_->builder->LoadSnapshot(path);
    ASSERT_FALSE(loaded.ok()) << "flip at " << at;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInternal)
        << "flip at " << at << ": " << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, StatsEpochMismatchIsFailedPrecondition) {
  // The same snapshot against a world whose statistics drifted (one
  // table re-ANALYZEd to a different row count) must be rejected loudly:
  // its cached costs were derived from the old stats.
  StatsCatalog drifted;
  for (const auto& [table, stats] : fix_->workload.db().stats().all()) {
    TableStats copy = stats;
    if (table == fix_->workload.fact_table()) {
      copy.row_count += 1;
    }
    drifted.Put(table, std::move(copy));
  }
  auto loaded = LoadSnapshot(
      fix_->path, ComputeSnapshotEpoch(fix_->set, drifted));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("statistics"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, CatalogEpochMismatchIsFailedPrecondition) {
  // A universe with one more candidate index is a different id
  // vocabulary: the sealed vectors' subscripts no longer mean the same
  // indexes, so the snapshot must not load.
  const Catalog& base = fix_->workload.db().catalog();
  std::vector<IndexDef> candidates;
  for (IndexId id : fix_->set.candidate_ids) {
    candidates.push_back(*fix_->set.universe.FindIndex(id));
  }
  IndexDef extra;
  extra.name = "snapshot_test_extra";
  extra.table = fix_->workload.fact_table();
  extra.key_columns = {0};
  candidates.push_back(extra);
  auto grown = MakeCandidateSet(base, candidates);
  ASSERT_TRUE(grown.ok());
  auto loaded = LoadSnapshot(
      fix_->path, ComputeSnapshotEpoch(*grown, fix_->workload.db().stats()));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotTest, CandidateVocabularyDriftIsFailedPrecondition) {
  // Same universe size, same candidate count, different id assignment
  // (candidates regenerated in another order): the generic "N ids vs M
  // ids" message would read identically on both sides, so this path
  // must say the vocabulary itself changed.
  SnapshotEpoch permuted =
      ComputeSnapshotEpoch(fix_->set, fix_->workload.db().stats());
  ASSERT_GE(permuted.candidate_ids.size(), 2u);
  std::swap(permuted.candidate_ids[0], permuted.candidate_ids[1]);
  auto loaded = LoadSnapshot(fix_->path, permuted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("vocabulary"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, CraftedHugeCountIsRejectedWithoutAllocating) {
  // A crafted file can carry a valid checksum (FNV-1a is unkeyed), so
  // count fields must be bounded by the bytes actually present before
  // anything is allocated: a 0xFFFFFFFF query count must come back as
  // corruption, not as a multi-gigabyte reserve / bad_alloc.
  std::string bytes = SnapshotBytes();
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 16, 4);
  uint64_t queries_offset = 0;
  for (uint32_t i = 0; i < section_count; ++i) {
    const char* entry = bytes.data() + 40 + i * 24;
    uint32_t tag = 0;
    std::memcpy(&tag, entry, 4);
    if (tag == 2) std::memcpy(&queries_offset, entry + 8, 8);
  }
  ASSERT_NE(queries_offset, 0u);
  const uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + queries_offset, &huge, 4);
  // Recompute the payload checksum (spec: FNV-1a over [40, EOF)) so the
  // crafted count is what the reader actually trips on.
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 40; i < bytes.size(); ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ULL;
  }
  std::memcpy(bytes.data() + 32, &h, 8);
  const std::string path = TempPath("crafted.snap");
  WriteFile(path, bytes);
  auto loaded = fix_->builder->LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInternal)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, IndexSizeDriftIsFailedPrecondition) {
  // Same tables, same candidate key columns, but one candidate's size
  // estimate changed (stats drift reflected into the what-if sizer):
  // the advisor prices bytes from IndexDef sizes, so this is an epoch
  // change even though the id vocabulary is identical.
  CandidateSet resized = fix_->set;
  IndexDef* def = resized.universe.MutableIndex(resized.candidate_ids[0]);
  ASSERT_NE(def, nullptr);
  def->leaf_pages += 1;
  auto loaded = LoadSnapshot(
      fix_->path, ComputeSnapshotEpoch(resized, fix_->workload.db().stats()));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("schema"), std::string::npos)
      << loaded.status().ToString();
}

TEST(SnapshotUnitTest, EmptyWorkloadRoundTrips) {
  // Zero queries is a valid (if degenerate) snapshot: the framing,
  // epoch, and empty sections must round-trip.
  const std::string path = ::testing::TempDir() + "empty.snap";
  SnapshotEpoch epoch;
  epoch.schema_hash = 7;
  epoch.stats_hash = 9;
  Status st = SaveSnapshot(path, {}, {}, epoch);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto loaded = LoadSnapshot(path, epoch);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->sealed.empty());
  EXPECT_TRUE(loaded->query_names.empty());
  std::remove(path.c_str());
}

TEST(SnapshotUnitTest, DefaultSealedCacheRoundTrips) {
  // A default-constructed SealedCache (universe 0, no plans) is what an
  // unbuildable query would pin; it must survive the trip too.
  const std::string path = ::testing::TempDir() + "default.snap";
  std::vector<SealedCache> caches(2);
  Status st = SaveSnapshot(path, {"a", "b"}, caches, SnapshotEpoch{});
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto loaded = LoadSnapshot(path, SnapshotEpoch{});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->sealed.size(), 2u);
  EXPECT_EQ(loaded->sealed[0].Cost({}), kInfiniteCost);
  EXPECT_EQ(loaded->sealed[0].Cost({1, 2}), kInfiniteCost);
  EXPECT_EQ(loaded->query_names, (std::vector<std::string>{"a", "b"}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pinum
