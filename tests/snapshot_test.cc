// Snapshot persistence: a save→load round trip must hand back caches
// that answer every cost question bit-identically to the sealed
// originals (infinity sentinels included), and every failure path —
// missing file, truncation, bad magic, old/future format version,
// payload corruption, incompatible epoch — must return its own distinct
// Status instead of crashing or serving wrong costs. v2 epoch
// semantics: statistics drift and append-only universe growth do NOT
// reject the load — they surface as per-query staleness (the
// incremental-reseal restart path) — while any non-prefix universe
// mutation or base-schema change is still kFailedPrecondition.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "advisor/candidate_generator.h"
#include "advisor/greedy_advisor.h"
#include "common/rng.h"
#include "inum/snapshot.h"
#include "test_util.h"
#include "whatif/candidate_set.h"
#include "whatif/whatif_index.h"
#include "workload/cache_manager.h"
#include "workload/drift.h"
#include "workload/star_schema.h"

namespace pinum {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// The shared star fixture (tests/test_util.h — capped at 5-way joins,
/// like the sealed-cache suite) plus one PINUM build and a snapshot of
/// it on disk — shared across the suite because the build is the
/// expensive part.
class SnapshotTest : public ::testing::Test {
 protected:
  struct Fixture {
    std::unique_ptr<StarFixture> star;
    /// Pointer because the builder (with its thread pool) is neither
    /// copyable nor movable.
    std::unique_ptr<WorkloadCacheBuilder> builder;
    WorkloadCacheResult built;
    std::string path;

    const CandidateSet& set() const { return star->set; }
  };
  static Fixture* fix_;

  static void SetUpTestSuite() {
    auto star = MakeStarFixture();
    ASSERT_NE(star, nullptr);
    fix_ = new Fixture{std::move(star),
                       nullptr,
                       {},
                       TempPath("pinum_snapshot_test.snap")};
    fix_->builder = std::make_unique<WorkloadCacheBuilder>(
        &fix_->star->catalog(), &fix_->star->set, &fix_->star->stats());
    auto built = fix_->builder->BuildAll(fix_->star->queries());
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    fix_->built = std::move(*built);
    SnapshotSaveStats save_stats;
    Status st = fix_->builder->SaveSnapshot(fix_->path, fix_->built,
                                            fix_->star->queries(),
                                            &save_stats);
    ASSERT_TRUE(st.ok()) << st.ToString();
    // First save at this path: nothing to patch from.
    ASSERT_EQ(save_stats.caches_encoded, fix_->star->queries().size());
    ASSERT_EQ(save_stats.caches_patched, 0u);
  }
  static void TearDownTestSuite() {
    std::remove(fix_->path.c_str());
    delete fix_;
    fix_ = nullptr;
  }

  /// A pristine copy of the snapshot bytes for patch-and-reject tests.
  static std::string SnapshotBytes() { return ReadFile(fix_->path); }

  /// Test-file paths embed the pid: ctest -j runs every TEST as its
  /// own process, and each process re-runs SetUpTestSuite — two
  /// concurrent shards sharing one literal path race on the suite
  /// snapshot (the second shard's "first save" finds the first
  /// shard's identical file and patches instead of encoding).
  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + std::to_string(getpid()) + "_" + name;
  }
};

SnapshotTest::Fixture* SnapshotTest::fix_ = nullptr;

TEST_F(SnapshotTest, RoundTripCostBitIdentical) {
  auto loaded = fix_->builder->LoadSnapshot(fix_->path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::vector<Query>& queries = fix_->star->queries();
  ASSERT_EQ(loaded->sealed.size(), queries.size());
  ASSERT_EQ(loaded->query_names.size(), queries.size());
  ASSERT_EQ(loaded->query_stamps.size(), queries.size());
  const IndexId universe = fix_->star->set.NumIndexIds();
  EXPECT_EQ(loaded->universe, universe);

  Rng rng(211);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(loaded->query_names[qi], queries[qi].name);
    // Stored stamps are the live ones (nothing drifted), so nothing is
    // stale.
    EXPECT_EQ(loaded->query_stamps[qi],
              fix_->builder->QueryStamp(queries[qi]));
    const SealedCache& original = fix_->built.sealed[qi];
    const SealedCache& restored = loaded->sealed[qi];
    // Structure round-trips exactly, the stored posting-id list
    // included — and so does the whole arena image, byte for byte (the
    // record on disk IS the image, so anything else is a codec bug).
    EXPECT_EQ(restored.NumPlans(), original.NumPlans());
    EXPECT_EQ(restored.NumPlansPruned(), original.NumPlansPruned());
    EXPECT_EQ(restored.NumTerms(), original.NumTerms());
    EXPECT_EQ(restored.NumPostings(), original.NumPostings());
    const ArenaSpan<IndexId> restored_ids = restored.PostingBearingIds();
    const ArenaSpan<IndexId> original_ids = original.PostingBearingIds();
    EXPECT_TRUE(std::equal(restored_ids.begin(), restored_ids.end(),
                           original_ids.begin(), original_ids.end()));
    EXPECT_EQ(restored.ArenaBytes(), original.ArenaBytes());

    // Costs round-trip bitwise — including the empty configuration,
    // duplicate ids, ids outside the universe, and configurations whose
    // terms stay at the kInfiniteCost sentinel.
    EXPECT_EQ(restored.Cost({}), original.Cost({})) << "query " << qi;
    for (int trial = 0; trial < 20; ++trial) {
      IndexConfig config =
          RandomAtomicConfig(queries[qi], fix_->star->set, &rng);
      if (!config.empty() && rng.Chance(0.5)) {
        config.push_back(config[rng.Index(config.size())]);
      }
      if (rng.Chance(0.5)) config.push_back(universe + 100);
      if (rng.Chance(0.5)) config.push_back(kInvalidIndexId);
      EXPECT_EQ(restored.Cost(config), original.Cost(config))
          << "query " << qi << " trial " << trial;
    }

    // The delta path serves from restored postings bit-identically too.
    SealedCache::CostContext restored_ctx;
    SealedCache::CostContext original_ctx;
    const IndexConfig base =
        RandomAtomicConfig(queries[qi], fix_->star->set, &rng);
    restored.PrepareContext(base, &restored_ctx);
    original.PrepareContext(base, &original_ctx);
    EXPECT_EQ(restored_ctx.base_cost(), original_ctx.base_cost());
    for (IndexId extra : fix_->star->set.candidate_ids) {
      EXPECT_EQ(restored.CostWithExtra(&restored_ctx, extra),
                original.CostWithExtra(&original_ctx, extra))
          << "query " << qi << " extra " << extra;
    }
  }
}

TEST_F(SnapshotTest, AdvisorOutputBitIdenticalFromRestoredCaches) {
  // The acceptance property behind `advisor_tool --load`: the greedy
  // advisor over restored caches must return the fresh build's result
  // field for field, cost bits included.
  auto loaded = fix_->builder->LoadSnapshot(fix_->path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  AdvisorOptions opts;
  const AdvisorResult fresh =
      RunGreedyAdvisor(fix_->built.sealed, fix_->star->set, opts);
  const AdvisorResult restored =
      RunGreedyAdvisor(loaded->sealed, fix_->star->set, opts);
  ExpectSameAdvisorResult(fresh, restored);
  EXPECT_FALSE(fresh.chosen.empty());
}

TEST_F(SnapshotTest, ReadSnapshotEpochMatchesLiveEpoch) {
  auto stored = ReadSnapshotEpoch(fix_->path);
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  const SnapshotEpoch live = ComputeSnapshotEpoch(fix_->star->set);
  EXPECT_TRUE(*stored == live);
  EXPECT_EQ(stored->universe, fix_->star->set.NumIndexIds());
  EXPECT_EQ(stored->candidate_ids, fix_->star->set.candidate_ids);
  // The live chain's final entry is the persisted prefix hash.
  ASSERT_EQ(live.prefix_chain.size(), live.candidate_ids.size() + 1);
  EXPECT_EQ(stored->universe_prefix_hash, live.prefix_chain.back());
}

TEST_F(SnapshotTest, MissingFileIsNotFound) {
  auto loaded = fix_->builder->LoadSnapshot(TempPath("no_such.snap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotTest, TruncationIsOutOfRange) {
  const std::string bytes = SnapshotBytes();
  const std::string path = TempPath("truncated.snap");
  // Every truncation point — inside the header, inside the section
  // table, mid-payload, one byte short — must report kOutOfRange with
  // no crash (ASan-clean), never garbage costs.
  for (size_t keep :
       {size_t{0}, size_t{4}, size_t{12}, size_t{39}, size_t{96},
        bytes.size() / 2, bytes.size() - 1}) {
    WriteFile(path, bytes.substr(0, keep));
    auto loaded = fix_->builder->LoadSnapshot(path);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange)
        << "kept " << keep << " bytes: " << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, BadMagicIsInvalidArgument) {
  std::string bytes = SnapshotBytes();
  bytes[0] = 'X';
  const std::string path = TempPath("bad_magic.snap");
  WriteFile(path, bytes);
  auto loaded = fix_->builder->LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, FutureFormatVersionIsUnimplemented) {
  std::string bytes = SnapshotBytes();
  // The format version lives at byte 12 (docs/SNAPSHOT_FORMAT.md) and is
  // deliberately outside the checksummed region, so a newer writer's
  // file fails on the version, not on a checksum it may compute
  // differently.
  const uint32_t future = kSnapshotFormatVersion + 1;
  std::memcpy(bytes.data() + 12, &future, sizeof(future));
  const std::string path = TempPath("future.snap");
  WriteFile(path, bytes);
  auto loaded = fix_->builder->LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnimplemented);
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, PayloadCorruptionIsInternal) {
  const std::string pristine = SnapshotBytes();
  const std::string path = TempPath("corrupt.snap");
  // Any flipped payload bit — section table, epoch, costs, postings —
  // trips the checksum before the bytes are believed.
  for (size_t at : {size_t{40}, size_t{64}, pristine.size() / 2,
                    pristine.size() - 1}) {
    std::string bytes = pristine;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x40);
    WriteFile(path, bytes);
    auto loaded = fix_->builder->LoadSnapshot(path);
    ASSERT_FALSE(loaded.ok()) << "flip at " << at;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInternal)
        << "flip at " << at << ": " << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, StatsDriftLoadsAndReportsStaleQueries) {
  // v2 semantics: statistics drift no longer rejects the load — the
  // epoch binds the universe, not the stats — it surfaces as per-query
  // staleness. Drift one dimension table's row count: the load
  // succeeds, and StaleQueries names exactly the queries touching that
  // table (the set RebuildQueries would be handed).
  StatsCatalog drifted = fix_->star->stats();
  // The last dimension table: drifting fact would stale everything.
  const TableId victim = fix_->star->tables().back();
  DriftTableStats(fix_->star->catalog(), victim, 2.0, &drifted);

  WorkloadCacheBuilder drifted_builder(&fix_->star->catalog(),
                                       &fix_->star->set, &drifted);
  auto loaded = drifted_builder.LoadSnapshot(fix_->path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const std::vector<Query>& queries = fix_->star->queries();
  const std::vector<size_t> stale =
      drifted_builder.StaleQueries(*loaded, queries);
  const std::vector<std::string> want =
      QueriesTouchingTables(queries, {victim});
  std::vector<std::string> got;
  for (size_t i : stale) got.push_back(queries[i].name);
  EXPECT_EQ(got, want);
  // Against the unchanged world the same snapshot reports nothing
  // stale.
  EXPECT_TRUE(fix_->builder->StaleQueries(*loaded, queries).empty());
}

TEST_F(SnapshotTest, GrownUniverseLoadsAsPrefixAndStalesTouchedQueries) {
  // v2 semantics: append-only growth keeps the snapshot loadable — the
  // stored vocabulary is a strict prefix of the live one, every stored
  // subscript still means the same index — and queries touching the new
  // candidate's table come back stale (their keep-all access answer now
  // has one more index to see).
  CandidateSet grown = fix_->star->set;
  const TableDef* fact =
      grown.universe.FindTable(fix_->star->primary_table());
  ASSERT_NE(fact, nullptr);
  auto added = grown.Append(
      {MakeWhatIfIndex("snapshot_test_extra", *fact, {0}, 1000)});
  ASSERT_TRUE(added.ok()) << added.status().ToString();

  WorkloadCacheBuilder grown_builder(&fix_->star->catalog(), &grown,
                                     &fix_->star->stats());
  auto loaded = grown_builder.LoadSnapshot(fix_->path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->universe, fix_->star->set.NumIndexIds());
  EXPECT_LT(loaded->universe, grown.NumIndexIds());

  const std::vector<Query>& queries = fix_->star->queries();
  const std::vector<size_t> stale =
      grown_builder.StaleQueries(*loaded, queries);
  std::vector<std::string> got;
  for (size_t i : stale) got.push_back(queries[i].name);
  EXPECT_EQ(got, QueriesTouchingTables(
                     queries, {fix_->star->primary_table()}));
  // Restored caches for fresh queries keep serving: sampled costs agree
  // with the fixture build (the new id prices at base on both sides).
  Rng rng(401);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    IndexConfig config = RandomAtomicConfig(queries[qi], fix_->star->set, &rng);
    EXPECT_EQ(loaded->sealed[qi].Cost(config),
              fix_->built.sealed[qi].Cost(config));
    config.push_back(added->front());
    EXPECT_EQ(loaded->sealed[qi].Cost(config),
              fix_->built.sealed[qi].Cost(config));
  }
}

TEST_F(SnapshotTest, ShrunkUniverseIsFailedPrecondition) {
  // The reverse direction must still reject: a live universe with FEWER
  // candidates than the snapshot (a drop is not append-only) leaves
  // stored subscripts pointing at nothing.
  const Catalog& base = fix_->star->catalog();
  std::vector<IndexDef> fewer;
  for (size_t i = 0; i + 1 < fix_->star->set.candidate_ids.size(); ++i) {
    fewer.push_back(
        *fix_->star->set.universe.FindIndex(fix_->star->set.candidate_ids[i]));
  }
  auto shrunk = MakeCandidateSet(base, fewer);
  ASSERT_TRUE(shrunk.ok());
  auto loaded = LoadSnapshot(fix_->path, ComputeSnapshotEpoch(*shrunk));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("prefix"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, BaseSchemaDriftIsFailedPrecondition) {
  // A base-catalog change (here: a new real table) is not expressible
  // as per-query staleness — the world the universe is layered onto
  // moved — so the load must reject even though candidates are intact.
  Catalog changed = fix_->star->catalog();
  TableDef extra_table;
  extra_table.name = "snapshot_test_new_table";
  extra_table.columns.push_back({"id", TypeId::kInt64});
  ASSERT_TRUE(changed.AddTable(extra_table).ok());
  std::vector<IndexDef> candidates;
  for (IndexId id : fix_->star->set.candidate_ids) {
    candidates.push_back(*fix_->star->set.universe.FindIndex(id));
  }
  auto rebased = MakeCandidateSet(changed, candidates);
  ASSERT_TRUE(rebased.ok());
  auto loaded = LoadSnapshot(fix_->path, ComputeSnapshotEpoch(*rebased));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("schema"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, CandidateVocabularyDriftIsFailedPrecondition) {
  // Same universe size, same candidate count, different id assignment
  // (candidates regenerated in another order): not a prefix of the live
  // vocabulary, so the sealed subscripts cannot be trusted.
  SnapshotEpoch permuted = ComputeSnapshotEpoch(fix_->star->set);
  ASSERT_GE(permuted.candidate_ids.size(), 2u);
  std::swap(permuted.candidate_ids[0], permuted.candidate_ids[1]);
  auto loaded = LoadSnapshot(fix_->path, permuted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("prefix"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, IncrementalSavePatchesOnlyResealedSections) {
  // The incremental-reseal save path: after drifting and resealing k
  // queries, re-saving over the old snapshot re-encodes exactly those k
  // records and splices the other N-k verbatim — and the patched file
  // is byte-identical to a from-scratch save of the same state.
  const std::vector<Query>& queries = fix_->star->queries();
  CandidateSet set = fix_->star->set;
  StatsCatalog stats = fix_->star->stats();
  WorkloadCacheBuilder builder(&fix_->star->catalog(), &set, &stats);
  auto built = builder.BuildAll(queries);
  ASSERT_TRUE(built.ok());

  const std::string patched_path = TempPath("patched.snap");
  SnapshotSaveStats first;
  ASSERT_TRUE(
      builder.SaveSnapshot(patched_path, *built, queries, &first).ok());
  EXPECT_EQ(first.caches_encoded, queries.size());
  EXPECT_EQ(first.caches_patched, 0u);

  auto drift = ApplyDrift(queries, &set, &stats, 1, 503);
  ASSERT_TRUE(drift.ok());
  const size_t k = drift->stale_queries.size();
  ASSERT_GT(k, 0u);
  ASSERT_LT(k, queries.size());
  ASSERT_TRUE(
      builder.RebuildQueries(drift->stale_queries, queries, &*built).ok());

  SnapshotSaveStats second;
  ASSERT_TRUE(
      builder.SaveSnapshot(patched_path, *built, queries, &second).ok());
  EXPECT_EQ(second.caches_encoded, k);
  EXPECT_EQ(second.caches_patched, queries.size() - k);

  const std::string fresh_path = TempPath("fresh.snap");
  SnapshotSaveStats fresh;
  ASSERT_TRUE(
      builder.SaveSnapshot(fresh_path, *built, queries, &fresh).ok());
  EXPECT_EQ(fresh.caches_encoded, queries.size());
  EXPECT_EQ(ReadFile(patched_path), ReadFile(fresh_path));

  // And the patched file round-trips into the resealed serving state.
  auto loaded = builder.LoadSnapshot(patched_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(builder.StaleQueries(*loaded, queries).empty());
  Rng rng(509);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const IndexConfig config = RandomAtomicConfig(queries[qi], set, &rng);
    EXPECT_EQ(loaded->sealed[qi].Cost(config), built->sealed[qi].Cost(config))
        << "query " << qi;
  }
  std::remove(patched_path.c_str());
  std::remove(fresh_path.c_str());
}

TEST_F(SnapshotTest, DriftBetweenBuildAndSaveStillReadsAsStale) {
  // Stamps are captured at build time and carried in the result — NOT
  // recomputed at save time. A drift landing after the build but before
  // the save must therefore still surface as staleness on reload;
  // save-time recomputation would stamp pre-drift caches with the
  // post-drift world and mask the drift forever.
  const std::vector<Query>& queries = fix_->star->queries();
  CandidateSet set = fix_->star->set;
  StatsCatalog stats = fix_->star->stats();
  WorkloadCacheBuilder builder(&fix_->star->catalog(), &set, &stats);
  auto built = builder.BuildAll(queries);
  ASSERT_TRUE(built.ok());

  const TableId victim = fix_->star->tables().back();
  DriftTableStats(fix_->star->catalog(), victim, 2.0, &stats);

  const std::string path = TempPath("late_drift.snap");
  ASSERT_TRUE(builder.SaveSnapshot(path, *built, queries).ok());
  auto loaded = builder.LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::vector<std::string> got;
  for (size_t i : builder.StaleQueries(*loaded, queries)) {
    got.push_back(queries[i].name);
  }
  EXPECT_EQ(got, QueriesTouchingTables(queries, {victim}));
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, GrowthReEncodesWidenedRecordsOnSave) {
  // The splice key includes the sealed universe bound: after an append
  // plus a cold rebuild, even never-stale queries' caches widened, so
  // their old (narrower) records must be re-encoded, keeping the
  // patched file byte-identical to a from-scratch save.
  const std::vector<Query>& queries = fix_->star->queries();
  CandidateSet set = fix_->star->set;
  StatsCatalog stats = fix_->star->stats();
  WorkloadCacheBuilder builder(&fix_->star->catalog(), &set, &stats);
  auto built = builder.BuildAll(queries);
  ASSERT_TRUE(built.ok());
  const std::string path = TempPath("growth_patch.snap");
  ASSERT_TRUE(builder.SaveSnapshot(path, *built, queries).ok());

  const TableDef* fact =
      set.universe.FindTable(fix_->star->primary_table());
  ASSERT_TRUE(
      set.Append({MakeWhatIfIndex("growth_patch_extra", *fact, {0}, 1000)})
          .ok());
  auto cold = builder.BuildAll(queries);
  ASSERT_TRUE(cold.ok());

  SnapshotSaveStats save_stats;
  ASSERT_TRUE(
      builder.SaveSnapshot(path, *cold, queries, &save_stats).ok());
  EXPECT_EQ(save_stats.caches_patched, 0u);
  EXPECT_EQ(save_stats.caches_encoded, queries.size());

  const std::string fresh_path = TempPath("growth_fresh.snap");
  ASSERT_TRUE(builder.SaveSnapshot(fresh_path, *cold, queries).ok());
  EXPECT_EQ(ReadFile(path), ReadFile(fresh_path));
  std::remove(path.c_str());
  std::remove(fresh_path.c_str());
}

TEST_F(SnapshotTest, OldFormatVersionIsUnimplemented) {
  // A v1 file (global epoch, no per-query stamps) has nothing safely
  // reusable; it must be rejected on the version field, loudly and
  // distinctly.
  std::string bytes = SnapshotBytes();
  const uint32_t old_version = 1;
  std::memcpy(bytes.data() + 12, &old_version, sizeof(old_version));
  const std::string path = TempPath("v1.snap");
  WriteFile(path, bytes);
  auto loaded = fix_->builder->LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnimplemented);
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, CraftedHugeCountIsRejectedWithoutAllocating) {
  // A crafted file can carry a valid checksum (FNV-1a is unkeyed), so
  // count fields must be bounded by the bytes actually present before
  // anything is allocated: a 0xFFFFFFFF query count must come back as
  // corruption, not as a multi-gigabyte reserve / bad_alloc.
  std::string bytes = SnapshotBytes();
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 16, 4);
  uint64_t queries_offset = 0;
  for (uint32_t i = 0; i < section_count; ++i) {
    const char* entry = bytes.data() + 40 + i * 24;
    uint32_t tag = 0;
    std::memcpy(&tag, entry, 4);
    if (tag == 2) std::memcpy(&queries_offset, entry + 8, 8);
  }
  ASSERT_NE(queries_offset, 0u);
  const uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + queries_offset, &huge, 4);
  // Recompute the payload checksum (spec: FNV-1a over [40, EOF)) so the
  // crafted count is what the reader actually trips on.
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 40; i < bytes.size(); ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ULL;
  }
  std::memcpy(bytes.data() + 32, &h, 8);
  const std::string path = TempPath("crafted.snap");
  WriteFile(path, bytes);
  auto loaded = fix_->builder->LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInternal)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, IndexSizeDriftIsFailedPrecondition) {
  // Same tables, same candidate key columns, but one candidate's size
  // estimate changed (stats drift reflected into the what-if sizer):
  // the advisor prices bytes from IndexDef sizes, so this is an epoch
  // change even though the id vocabulary is identical.
  CandidateSet resized = fix_->star->set;
  IndexDef* def = resized.universe.MutableIndex(resized.candidate_ids[0]);
  ASSERT_NE(def, nullptr);
  def->leaf_pages += 1;
  auto loaded = LoadSnapshot(fix_->path, ComputeSnapshotEpoch(resized));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("candidate"), std::string::npos)
      << loaded.status().ToString();
}

// Every workload family (src/workload/workload_family.h) round-trips
// through the snapshot codec: save→load hands back caches answering
// sampled cost questions — pruning counters included — and the greedy
// advisor bit-identically to the sealed originals. The trace line
// prints (family, seed) so a failure reproduces alone.
class FamilySnapshotTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilySnapshotTest, RoundTripAndAdvisorBitIdentical) {
  auto fix = MakeFamilyFixture(GetParam());
  ASSERT_NE(fix, nullptr);
  SCOPED_TRACE(fix->trace());
  WorkloadCacheBuilder builder(&fix->catalog(), &fix->set, &fix->stats());
  auto built = builder.BuildAll(fix->queries());
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string path = ::testing::TempDir() + std::to_string(getpid()) +
                           "_family_" + GetParam() + ".snap";
  ASSERT_TRUE(builder.SaveSnapshot(path, *built, fix->queries()).ok());
  auto loaded = builder.LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->sealed.size(), fix->queries().size());
  EXPECT_TRUE(builder.StaleQueries(*loaded, fix->queries()).empty());

  Rng rng(601);
  for (size_t qi = 0; qi < fix->queries().size(); ++qi) {
    const SealedCache& original = built->sealed[qi];
    const SealedCache& restored = loaded->sealed[qi];
    EXPECT_EQ(restored.NumPlans(), original.NumPlans());
    EXPECT_EQ(restored.NumPlansPruned(), original.NumPlansPruned());
    EXPECT_EQ(restored.NumTerms(), original.NumTerms());
    EXPECT_EQ(restored.NumPostings(), original.NumPostings());
    EXPECT_EQ(restored.Cost({}), original.Cost({})) << "query " << qi;
    for (int trial = 0; trial < 12; ++trial) {
      IndexConfig config =
          RandomSubsetConfig(fix->set, &rng, rng.NextDouble() * 0.3);
      if (rng.Chance(0.3)) config.push_back(fix->set.NumIndexIds() + 5);
      EXPECT_EQ(restored.Cost(config), original.Cost(config))
          << "query " << qi << " trial " << trial;
    }
  }

  AdvisorOptions opts;
  const AdvisorResult fresh = RunGreedyAdvisor(built->sealed, fix->set, opts);
  const AdvisorResult from_snapshot =
      RunGreedyAdvisor(loaded->sealed, fix->set, opts);
  ExpectSameAdvisorResult(fresh, from_snapshot);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadFamilies, FamilySnapshotTest,
    ::testing::ValuesIn(WorkloadFamilyNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(SnapshotUnitTest, EmptyWorkloadRoundTrips) {
  // Zero queries is a valid (if degenerate) snapshot: the framing,
  // epoch, and empty sections must round-trip.
  const std::string path =
      ::testing::TempDir() + std::to_string(getpid()) + "_empty.snap";
  SnapshotEpoch epoch;
  epoch.base_schema_hash = 7;
  Status st = SaveSnapshot(path, {}, {}, {}, epoch);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto loaded = LoadSnapshot(path, epoch);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->sealed.empty());
  EXPECT_TRUE(loaded->query_names.empty());
  std::remove(path.c_str());
}

TEST(SnapshotUnitTest, DefaultSealedCacheRoundTrips) {
  // A default-constructed SealedCache (universe 0, no plans) is what an
  // unbuildable query would pin; it must survive the trip too.
  const std::string path = ::testing::TempDir() + "default.snap";
  std::vector<SealedCache> caches(2);
  Status st = SaveSnapshot(path, {"a", "b"}, {21, 22}, caches,
                           SnapshotEpoch{});
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto loaded = LoadSnapshot(path, SnapshotEpoch{});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->sealed.size(), 2u);
  EXPECT_EQ(loaded->sealed[0].Cost({}), kInfiniteCost);
  EXPECT_EQ(loaded->sealed[0].Cost({1, 2}), kInfiniteCost);
  EXPECT_EQ(loaded->query_names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(loaded->query_stamps, (std::vector<uint64_t>{21, 22}));
  std::remove(path.c_str());
}

TEST(SnapshotUnitTest, MismatchedStampVectorIsInvalidArgument) {
  const std::string path = ::testing::TempDir() + "bad_parallel.snap";
  std::vector<SealedCache> caches(2);
  const Status st =
      SaveSnapshot(path, {"a", "b"}, {21}, caches, SnapshotEpoch{});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pinum
