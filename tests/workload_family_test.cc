// Workload-family generator contract (src/workload/workload_family.h):
// the registry is stable, every family is bit-deterministic under a
// fixed (seed, options) — the property the golden plan-stability corpus
// (tests/corpus/) rests on — seeds actually matter, the option knobs are
// honored, and each family's structural signature (schema shape, join
// shapes, candidate cap) holds. Failures print (family, seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.h"
#include "workload/workload_family.h"

namespace pinum {
namespace {

/// Renders everything observable about an instance into one string:
/// query SQL (name, joins, filter constants, order/group keys via
/// Query::ToSql), the candidate universe (names + key columns), and the
/// statistics digest (row counts, per-column n_distinct and histogram
/// bounds). Two generator runs are "the same workload" iff these bytes
/// are equal.
std::string Render(const WorkloadInstance& inst) {
  std::ostringstream out;
  out.precision(17);
  for (const Query& q : inst.queries) {
    out << q.name << ": " << q.ToSql(inst.catalog()) << "\n";
  }
  for (IndexId id : inst.set.candidate_ids) {
    const IndexDef* def = inst.set.universe.FindIndex(id);
    out << "index " << def->name << " table=" << def->table << " cols=";
    for (ColumnIdx c : def->key_columns) out << c << ",";
    out << " leaf_pages=" << def->leaf_pages << "\n";
  }
  for (TableId t : inst.tables) {
    const TableStats* ts = inst.stats().Find(t);
    out << "table " << t << " rows=" << ts->row_count;
    for (const ColumnStats& cs : ts->columns) {
      out << " [nd=" << cs.n_distinct << " corr=" << cs.correlation;
      for (double b : cs.histogram.bounds()) out << " " << b;
      out << "]";
    }
    out << "\n";
  }
  return out.str();
}

std::unique_ptr<WorkloadInstance> Make(const std::string& family,
                                       WorkloadFamilyOptions options = {}) {
  auto inst = MakeWorkloadInstance(family, options);
  EXPECT_TRUE(inst.ok()) << family << ": " << inst.status().ToString();
  return inst.ok() ? std::move(*inst) : nullptr;
}

TEST(WorkloadFamilyTest, RegistryListsAllFamiliesStarFirst) {
  const std::vector<std::string> names = WorkloadFamilyNames();
  EXPECT_EQ(names, (std::vector<std::string>{"star", "chain", "skew",
                                             "fact_pair"}));
}

TEST(WorkloadFamilyTest, UnknownFamilyIsInvalidArgument) {
  auto inst = MakeWorkloadInstance("no_such_family");
  ASSERT_FALSE(inst.ok());
  EXPECT_EQ(inst.status().code(), StatusCode::kInvalidArgument);
}

TEST(WorkloadFamilyTest, SameSeedReproducesBitIdenticalWorkload) {
  // The seeding contract (docs/WORKLOADS.md): (family, options) is the
  // complete input — two runs in one process, or on two machines, emit
  // the same catalog, statistics, queries, and candidate universe.
  for (const std::string& family : WorkloadFamilyNames()) {
    SCOPED_TRACE("family=" + family);
    auto a = Make(family);
    auto b = Make(family);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(Render(*a), Render(*b));
  }
}

TEST(WorkloadFamilyTest, DifferentSeedsProduceDifferentQueries) {
  for (const std::string& family : WorkloadFamilyNames()) {
    SCOPED_TRACE("family=" + family);
    WorkloadFamilyOptions one, two;
    one.seed = 1;
    two.seed = 2;
    auto a = Make(family, one);
    auto b = Make(family, two);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(Render(*a), Render(*b));
  }
}

TEST(WorkloadFamilyTest, NumQueriesKnobIsHonored) {
  for (const std::string& family : WorkloadFamilyNames()) {
    SCOPED_TRACE("family=" + family);
    WorkloadFamilyOptions options;
    options.num_queries = 3;
    auto inst = Make(family, options);
    ASSERT_NE(inst, nullptr);
    // fact_pair churns the base mix through VaryQueryMix (a seeded
    // subset plus renamed clones), so its count floats around the base
    // — bounded by 2x — while every other family emits exactly N.
    if (family == "fact_pair") {
      EXPECT_GE(inst->queries.size(), 1u);
      EXPECT_LE(inst->queries.size(), 6u);
    } else {
      EXPECT_EQ(inst->queries.size(), 3u);
    }
  }
}

TEST(WorkloadFamilyTest, MaxCandidatesCapsTheUniversePrefix) {
  for (const std::string& family : WorkloadFamilyNames()) {
    SCOPED_TRACE("family=" + family);
    WorkloadFamilyOptions capped;
    capped.max_candidates = 12;
    auto inst = Make(family, capped);
    ASSERT_NE(inst, nullptr);
    EXPECT_LE(inst->set.candidate_ids.size(), 12u);
    // The cap keeps a prefix of the uncapped emission order, so the
    // capped universe is the uncapped one truncated.
    WorkloadFamilyOptions uncapped;
    uncapped.max_candidates = 10'000;
    auto full = Make(family, uncapped);
    ASSERT_NE(full, nullptr);
    ASSERT_LE(inst->set.candidate_ids.size(), full->set.candidate_ids.size());
    for (size_t i = 0; i < inst->set.candidate_ids.size(); ++i) {
      EXPECT_EQ(
          inst->set.universe.FindIndex(inst->set.candidate_ids[i])->name,
          full->set.universe.FindIndex(full->set.candidate_ids[i])->name)
          << "candidate " << i;
    }
  }
}

TEST(WorkloadFamilyTest, EveryFamilyIsWellFormed) {
  // Cross-family invariants the serving stack depends on: a non-empty
  // seeded workload, fact-first table order, every query naming only
  // cataloged tables with stats, unique query names, and a non-empty
  // candidate universe whose ids resolve.
  for (const std::string& family : WorkloadFamilyNames()) {
    SCOPED_TRACE("family=" + family);
    auto inst = Make(family);
    ASSERT_NE(inst, nullptr);
    EXPECT_EQ(inst->family, family);
    ASSERT_FALSE(inst->tables.empty());
    ASSERT_FALSE(inst->queries.empty());
    ASSERT_FALSE(inst->set.candidate_ids.empty());
    EXPECT_EQ(inst->primary_table(), inst->tables.front());
    std::set<std::string> names;
    for (const Query& q : inst->queries) {
      EXPECT_TRUE(names.insert(q.name).second) << "duplicate " << q.name;
      ASSERT_GE(q.tables.size(), 2u) << q.name;
      EXPECT_EQ(q.joins.size() + 1, q.tables.size())
          << q.name << ": families emit acyclic join trees";
      for (TableId t : q.tables) {
        EXPECT_NE(inst->catalog().FindTable(t), nullptr) << q.name;
        EXPECT_NE(inst->stats().Find(t), nullptr) << q.name;
      }
    }
    for (IndexId id : inst->set.candidate_ids) {
      EXPECT_NE(inst->set.universe.FindIndex(id), nullptr);
    }
  }
}

TEST(WorkloadFamilyTest, ChainQueriesAreManyJoinChains) {
  auto inst = Make("chain");
  ASSERT_NE(inst, nullptr);
  size_t max_tables = 0;
  for (const Query& q : inst->queries) {
    max_tables = std::max(max_tables, q.tables.size());
  }
  // At least one ad-hoc chain reaches 4+ joined tables.
  EXPECT_GE(max_tables, 4u);
}

TEST(WorkloadFamilyTest, SkewFamilyCarriesNonUniformHistograms) {
  // The skewed family's reason to exist: at least one fact payload
  // column's equi-depth histogram is visibly non-uniform (bucket widths
  // spread by >4x) and at least one column carries correlation.
  auto inst = Make("skew");
  ASSERT_NE(inst, nullptr);
  const TableStats* fact = inst->stats().Find(inst->primary_table());
  ASSERT_NE(fact, nullptr);
  bool skewed = false, correlated = false;
  for (const ColumnStats& cs : fact->columns) {
    const std::vector<Value>& b = cs.histogram.bounds();
    if (b.size() >= 3) {
      double min_w = 1e300, max_w = 0;
      for (size_t i = 0; i + 1 < b.size(); ++i) {
        const double w = b[i + 1] - b[i];
        if (w <= 0) continue;
        min_w = std::min(min_w, w);
        max_w = std::max(max_w, w);
      }
      if (max_w > 4 * min_w) skewed = true;
    }
    if (std::abs(cs.correlation) > 0.5) correlated = true;
  }
  EXPECT_TRUE(skewed);
  EXPECT_TRUE(correlated);
}

TEST(WorkloadFamilyTest, FactPairQueriesJoinTheTwoFacts) {
  auto inst = Make("fact_pair");
  ASSERT_NE(inst, nullptr);
  ASSERT_GE(inst->tables.size(), 2u);
  const TableId fa = inst->tables[0];
  const TableId fb = inst->tables[1];
  for (const Query& q : inst->queries) {
    bool fact_to_fact = false;
    for (const JoinPredicate& j : q.joins) {
      fact_to_fact |= j.Touches(fa) && j.Touches(fb);
    }
    EXPECT_TRUE(fact_to_fact) << q.name << " lacks the wide fa=fb join";
  }
}

TEST(WorkloadFamilyTest, BuildsCleanlyThroughTheWorkloadCacheBuilder) {
  // The integration handshake behind every parameterized suite: each
  // family's instance feeds WorkloadCacheBuilder and seals every query.
  for (const std::string& family : WorkloadFamilyNames()) {
    SCOPED_TRACE("family=" + family);
    auto fix = MakeFamilyFixture(family);
    ASSERT_NE(fix, nullptr);
    auto built =
        WorkloadCacheBuilder(&fix->catalog(), &fix->set, &fix->stats(), {})
            .BuildAll(fix->queries());
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_EQ(built->sealed.size(), fix->queries().size());
    for (size_t qi = 0; qi < built->sealed.size(); ++qi) {
      EXPECT_GT(built->sealed[qi].NumPlans(), 0u)
          << fix->queries()[qi].name;
      EXPECT_LT(built->sealed[qi].Cost({}), kInfiniteCost)
          << fix->queries()[qi].name;
    }
  }
}

}  // namespace
}  // namespace pinum
