// Fault-injection suite: the FailPoint framework itself (modes, seeded
// reproducibility, scoped restore, concurrent checks) and the
// self-healing serving contract under injected faults — an optimizer
// that fails mid-reseal never disturbs serving, tortured snapshot
// saves never destroy the previous good snapshot, expired SubmitCost
// futures answer kDeadlineExceeded instead of hanging, a persistently
// failing reseal degrades health while serving the last good
// generation bit-identically and auto-recovers when the fault clears,
// and a seeded randomized fault schedule leaves every OK answer
// bitwise equal to the generation that produced it. The schedule seed
// comes from PINUM_FAULT_SEED (default 1) so the CI fault matrix runs
// distinct schedules under ASan and TSan.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "advisor/greedy_advisor.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/status.h"
#include "inum/snapshot.h"
#include "inum/snapshot_mmap.h"
#include "serving/serving_engine.h"
#include "test_util.h"
#include "whatif/candidate_set.h"
#include "workload/cache_manager.h"
#include "workload/drift.h"

namespace pinum {
namespace {

/// The CI fault matrix varies this (PINUM_FAULT_SEED=1..3) so each
/// sanitizer job exercises a different injected-fault schedule.
uint64_t FaultSeed() {
  const char* env = std::getenv("PINUM_FAULT_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

// ---------------------------------------------------------------------
// FailPoint framework unit tests (no workload fixture needed).
// ---------------------------------------------------------------------

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoint::DisarmAll(); }
};

TEST_F(FailPointTest, DisarmedChecksAreOkAndUncounted) {
  EXPECT_TRUE(FailPoint::Check("fp.never_armed").ok());
  EXPECT_EQ(FailPoint::HitCount("fp.never_armed"), 0);
  EXPECT_EQ(FailPoint::FireCount("fp.never_armed"), 0);
}

TEST_F(FailPointTest, AlwaysModeFiresEveryHit) {
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kAlways;
  config.status = Status::NotFound("injected");
  FailPoint::Arm("fp.always", config);
  for (int i = 0; i < 3; ++i) {
    const Status st = FailPoint::Check("fp.always");
    EXPECT_EQ(st.code(), StatusCode::kNotFound);
    EXPECT_EQ(st.message(), "injected");
  }
  EXPECT_EQ(FailPoint::HitCount("fp.always"), 3);
  EXPECT_EQ(FailPoint::FireCount("fp.always"), 3);
  FailPoint::Disarm("fp.always");
  EXPECT_TRUE(FailPoint::Check("fp.always").ok());
}

TEST_F(FailPointTest, OffModeCountsHitsButNeverFires) {
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kOff;
  FailPoint::Arm("fp.off", config);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(FailPoint::Check("fp.off").ok());
  }
  EXPECT_EQ(FailPoint::HitCount("fp.off"), 5);
  EXPECT_EQ(FailPoint::FireCount("fp.off"), 0);
}

TEST_F(FailPointTest, NthHitFiresExactlyOnce) {
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kNthHit;
  config.nth_hit = 3;
  config.status = Status::Unavailable("third hit");
  FailPoint::Arm("fp.nth", config);
  EXPECT_TRUE(FailPoint::Check("fp.nth").ok());
  EXPECT_TRUE(FailPoint::Check("fp.nth").ok());
  EXPECT_EQ(FailPoint::Check("fp.nth").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(FailPoint::Check("fp.nth").ok());
  EXPECT_TRUE(FailPoint::Check("fp.nth").ok());
  EXPECT_EQ(FailPoint::HitCount("fp.nth"), 5);
  EXPECT_EQ(FailPoint::FireCount("fp.nth"), 1);
}

TEST_F(FailPointTest, SeededProbabilityScheduleIsReproducible) {
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kProbability;
  config.probability = 0.5;
  config.seed = FaultSeed();

  auto draw_schedule = [&] {
    FailPoint::Arm("fp.prob", config);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!FailPoint::Check("fp.prob").ok());
    }
    return fired;
  };

  const std::vector<bool> first = draw_schedule();
  // Re-arming with the same seed replays the identical decision stream.
  EXPECT_EQ(draw_schedule(), first);

  // A different seed yields a different stream (64 fair coin flips
  // colliding is a 2^-64 event, not a flake).
  config.seed = FaultSeed() + 1;
  EXPECT_NE(draw_schedule(), first);

  // The schedule actually mixes fires and passes at p = 0.5.
  const int fires = static_cast<int>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

TEST_F(FailPointTest, DelayStallsTheCaller) {
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kAlways;
  config.status = Status::OK();  // delay-only: stall but proceed
  config.delay = std::chrono::milliseconds(20);
  FailPoint::Arm("fp.delay", config);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(FailPoint::Check("fp.delay").ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(20));
  EXPECT_EQ(FailPoint::FireCount("fp.delay"), 1);
}

TEST_F(FailPointTest, ScopedFailPointRestoresPriorState) {
  // Scope over an unarmed name: disarmed again afterwards.
  {
    ScopedFailPoint scoped("fp.scoped", FailPoint::Config{});
    EXPECT_FALSE(FailPoint::Check("fp.scoped").ok());
  }
  EXPECT_TRUE(FailPoint::Check("fp.scoped").ok());

  // Scope over an armed name: the outer config comes back.
  FailPoint::Config outer;
  outer.status = Status::NotFound("outer");
  FailPoint::Arm("fp.scoped", outer);
  {
    FailPoint::Config inner;
    inner.status = Status::Unavailable("inner");
    ScopedFailPoint scoped("fp.scoped", inner);
    EXPECT_EQ(FailPoint::Check("fp.scoped").code(),
              StatusCode::kUnavailable);
  }
  EXPECT_EQ(FailPoint::Check("fp.scoped").code(), StatusCode::kNotFound);
}

TEST_F(FailPointTest, DisarmAllClearsEveryPoint) {
  FailPoint::Arm("fp.a", FailPoint::Config{});
  FailPoint::Arm("fp.b", FailPoint::Config{});
  EXPECT_FALSE(FailPoint::Check("fp.a").ok());
  FailPoint::DisarmAll();
  EXPECT_TRUE(FailPoint::Check("fp.a").ok());
  EXPECT_TRUE(FailPoint::Check("fp.b").ok());
  EXPECT_EQ(FailPoint::HitCount("fp.a"), 0);
}

TEST_F(FailPointTest, ConcurrentChecksCountEveryHit) {
  FailPoint::Config config;
  config.mode = FailPoint::Mode::kProbability;
  config.probability = 0.5;
  config.seed = FaultSeed();
  FailPoint::Arm("fp.concurrent", config);
  constexpr int kThreads = 4;
  constexpr int kChecksPerThread = 1000;
  std::atomic<int64_t> observed_fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kChecksPerThread; ++i) {
        if (!FailPoint::Check("fp.concurrent").ok()) observed_fires++;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(FailPoint::HitCount("fp.concurrent"),
            kThreads * kChecksPerThread);
  EXPECT_EQ(FailPoint::FireCount("fp.concurrent"), observed_fires.load());
}

// ---------------------------------------------------------------------
// Engine + snapshot fault injection over the shared star fixture.
// ---------------------------------------------------------------------

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { star_ = MakeStarFixture().release(); }
  static void TearDownTestSuite() {
    delete star_;
    star_ = nullptr;
  }

  void SetUp() override {
    ASSERT_NE(star_, nullptr);
    // Per-test world copies: drift mutates them in place.
    set_ = star_->set;
    stats_ = star_->stats();
  }
  void TearDown() override { FailPoint::DisarmAll(); }

  const std::vector<Query>& queries() const { return star_->queries(); }
  const Catalog& catalog() const { return star_->catalog(); }

  std::unique_ptr<WorkloadCacheBuilder> MakeBuilder(
      WorkloadCacheResult* result) {
    WorkloadCacheOptions opts;
    auto builder = std::make_unique<WorkloadCacheBuilder>(
        &catalog(), &set_, &stats_, opts);
    auto built = builder->BuildAll(queries());
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    *result = std::move(*built);
    return builder;
  }

  std::vector<std::string> Drift(uint64_t seed, int add_candidates = 1) {
    DriftOptions dopts;
    dopts.add_candidates = add_candidates;
    auto drift = ApplyDrift(queries(), &set_, &stats_, queries().size(),
                            seed, dopts);
    EXPECT_TRUE(drift.ok()) << drift.status().ToString();
    return drift->stale_queries;
  }

  /// Expects every config to price bitwise-equal between the engine and
  /// a cold rebuild under the engine's current world.
  void ExpectMatchesColdRebuild(const ServingEngine& engine,
                                const std::vector<IndexConfig>& configs) {
    WorkloadCacheBuilder cold(&catalog(), &set_, &stats_,
                              WorkloadCacheOptions{});
    auto cold_built = cold.BuildAll(queries());
    ASSERT_TRUE(cold_built.ok()) << cold_built.status().ToString();
    WorkloadCostEvaluator cold_eval(&cold_built->sealed);
    for (const IndexConfig& config : configs) {
      EXPECT_EQ(engine.Cost(config).cost, cold_eval.Cost(config));
    }
  }

  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + std::to_string(getpid()) + "_" + name;
  }

  static StarFixture* star_;
  CandidateSet set_;
  StatsCatalog stats_;
};

StarFixture* FaultInjectionTest::star_ = nullptr;

TEST_F(FaultInjectionTest, OptimizerFaultMidResealLeavesServingUntouched) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingEngine engine(builder.get(), &queries(), std::move(built));

  Rng rng(FaultSeed() * 31 + 1);
  std::vector<IndexConfig> configs;
  for (int i = 0; i < 6; ++i) {
    configs.push_back(RandomSubsetConfig(set_, &rng, 0.3));
  }
  std::vector<double> before;
  for (const IndexConfig& config : configs) {
    before.push_back(engine.Cost(config).cost);
  }

  std::vector<std::string> stale;
  engine.WithWorld([&] { stale = Drift(/*seed=*/FaultSeed() * 100 + 7); });
  ASSERT_FALSE(stale.empty());

  // Fail the 5th optimizer call of the rebuild — mid-reseal, after some
  // queries already rebuilt into the side copy.
  {
    FailPoint::Config fault;
    fault.mode = FailPoint::Mode::kNthHit;
    fault.nth_hit = 5;
    fault.status = Status::Unavailable("optimizer process died");
    ScopedFailPoint scoped("inum.plan_optimizer_call", fault);
    const Status st = engine.Reseal(stale);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(FailPoint::FireCount("inum.plan_optimizer_call"), 1);
  }

  // Nothing was published; serving still answers generation 1's bits.
  EXPECT_EQ(engine.CurrentGenerationId(), 1u);
  for (size_t i = 0; i < configs.size(); ++i) {
    const CostAnswer answer = engine.Cost(configs[i]);
    EXPECT_EQ(answer.generation, 1u);
    EXPECT_EQ(answer.cost, before[i]);
  }
  EXPECT_FALSE(engine.StaleNames().empty());
  EXPECT_FALSE(engine.Health().last_error.ok());

  // Fault cleared: the retried reseal publishes a cold rebuild's bits.
  auto resealed = engine.CheckAndReseal();
  ASSERT_TRUE(resealed.ok()) << resealed.status().ToString();
  EXPECT_TRUE(*resealed);
  EXPECT_EQ(engine.CurrentGenerationId(), 2u);
  EXPECT_TRUE(engine.Health().last_error.ok());
  ExpectMatchesColdRebuild(engine, configs);
}

TEST_F(FaultInjectionTest, SaveTortureNeverDestroysPreviousSnapshot) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  const std::string path = TempPath("fault_save_torture.snap");
  const std::string tmp = path + ".tmp";

  ASSERT_TRUE(builder->SaveSnapshot(path, built, queries()).ok());
  const std::string good_bytes = ReadFileBytes(path);
  ASSERT_FALSE(good_bytes.empty());

  for (const char* name :
       {"snapshot.save.open", "snapshot.save.short_write",
        "snapshot.save.fsync", "snapshot.save.rename"}) {
    FailPoint::Config fault;
    fault.status = Status::Internal("injected I/O fault");
    ScopedFailPoint scoped(name, fault);

    const Status st = builder->SaveSnapshot(path, built, queries());
    ASSERT_FALSE(st.ok()) << name;
    // Diagnosable: the error names the file it happened on.
    EXPECT_NE(st.message().find(" [file: "), std::string::npos) << name;
    EXPECT_NE(st.message().find(path), std::string::npos) << name;
    // No torn tmp file left behind, previous snapshot byte-identical.
    EXPECT_FALSE(FileExists(tmp)) << name;
    EXPECT_EQ(ReadFileBytes(path), good_bytes) << name;
  }

  // The surviving snapshot still loads, and a fault-free save succeeds.
  ASSERT_TRUE(builder->LoadSnapshot(path).ok());
  EXPECT_TRUE(builder->SaveSnapshot(path, built, queries()).ok());
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, ShortWriteFaultReportsByteOffset) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  const std::string path = TempPath("fault_save_offset.snap");

  FailPoint::Config fault;
  fault.status = Status::Internal("disk full");
  ScopedFailPoint scoped("snapshot.save.short_write", fault);
  const Status st = builder->SaveSnapshot(path, built, queries());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find(" at byte offset "), std::string::npos)
      << st.ToString();
  EXPECT_FALSE(FileExists(path + ".tmp"));
  EXPECT_FALSE(FileExists(path));
}

TEST_F(FaultInjectionTest, LoadAndMapFaultsReportThePath) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  const std::string path = TempPath("fault_load.snap");
  ASSERT_TRUE(builder->SaveSnapshot(path, built, queries()).ok());

  {
    FailPoint::Config fault;
    fault.status = Status::Internal("read returned EIO");
    ScopedFailPoint scoped("snapshot.load.read", fault);
    auto loaded = builder->LoadSnapshot(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find(path), std::string::npos);
  }
  {
    FailPoint::Config fault;
    fault.status = Status::Internal("mmap refused");
    ScopedFailPoint scoped("snapshot.mmap.map", fault);
    auto mapped =
        MappedWorkloadSnapshot::Map(path, ComputeSnapshotEpoch(set_));
    ASSERT_FALSE(mapped.ok());
    if (mapped.status().code() != StatusCode::kUnimplemented) {
      EXPECT_EQ(mapped.status().code(), StatusCode::kInternal);
      EXPECT_NE(mapped.status().message().find(path), std::string::npos);
      EXPECT_NE(mapped.status().message().find("mmap refused"),
                std::string::npos);
    }
  }

  // Both paths work again once disarmed.
  EXPECT_TRUE(builder->LoadSnapshot(path).ok());
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, ExpiredRequestsAnswerDeadlineExceeded) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingEngine engine(builder.get(), &queries(), std::move(built));

  // One request with a tiny deadline, one without. After the deadline
  // passes, a pump answers the expired one with kDeadlineExceeded and
  // still prices the live one — the batch is never poisoned.
  auto expired = engine.SubmitCost(IndexConfig{},
                                   std::chrono::milliseconds(1));
  auto live = engine.SubmitCost(IndexConfig{});
  ASSERT_TRUE(expired.ok());
  ASSERT_TRUE(live.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(engine.PumpOnce(), 2u);

  const CostAnswer expired_answer = expired.value().get();
  EXPECT_EQ(expired_answer.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(expired_answer.generation, 0u);

  const CostAnswer live_answer = live.value().get();
  ASSERT_TRUE(live_answer.status.ok());
  WorkloadCostEvaluator eval(&engine.Pin()->sealed());
  EXPECT_EQ(live_answer.cost, eval.Cost(IndexConfig{}));

  const ServingStats stats = engine.Stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.answered, 1u);
  EXPECT_EQ(stats.submitted, 2u);
}

TEST_F(FaultInjectionTest, DefaultDeadlineAppliesAndDestructorHonorsIt) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingOptions options;
  options.default_deadline = std::chrono::milliseconds(1);
  std::future<CostAnswer> orphan;
  {
    ServingEngine engine(builder.get(), &queries(), std::move(built),
                         options);
    auto submitted = engine.SubmitCost(IndexConfig{});
    ASSERT_TRUE(submitted.ok());
    orphan = std::move(submitted.value());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    // No pump: the destructor drain must still answer the future —
    // expired by then, so with kDeadlineExceeded, not a stale price.
  }
  EXPECT_EQ(orphan.get().status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultInjectionTest, ShedRequestsAreCountedUnavailable) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingOptions options;
  options.max_queue_depth = 1;
  ServingEngine engine(builder.get(), &queries(), std::move(built), options);

  auto admitted = engine.SubmitCost(IndexConfig{});
  ASSERT_TRUE(admitted.ok());
  auto shed = engine.SubmitCost(IndexConfig{});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  const ServingStats stats = engine.Stats();
  EXPECT_EQ(stats.shed_unavailable, 1u);
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(engine.PumpOnce(), 1u);
  EXPECT_TRUE(admitted.value().get().status.ok());
}

TEST_F(FaultInjectionTest, PoolFaultDuringPumpYieldsErrorAnswers) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingOptions options;
  options.pool = builder->pool();
  ServingEngine engine(builder.get(), &queries(), std::move(built), options);

  std::vector<std::future<CostAnswer>> futures;
  for (int i = 0; i < 3; ++i) {
    auto submitted = engine.SubmitCost(IndexConfig{});
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted.value()));
  }

  {
    FailPoint::Config fault;
    fault.status = Status::Internal("injected pool fault");
    ScopedFailPoint scoped("thread_pool.task", fault);
    // The faulting sweep fulfils every promise with an error answer —
    // no future is abandoned, the pumping thread survives.
    EXPECT_EQ(engine.PumpOnce(), 3u);
  }
  for (auto& future : futures) {
    const CostAnswer answer = future.get();
    EXPECT_EQ(answer.status.code(), StatusCode::kInternal);
    EXPECT_EQ(answer.generation, 0u);
  }
  EXPECT_GE(engine.Stats().pricing_failures, 1u);

  // Disarmed, the engine prices normally again on the same pool.
  auto retry = engine.SubmitCost(IndexConfig{});
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(engine.PumpOnce(), 1u);
  const CostAnswer answer = retry.value().get();
  ASSERT_TRUE(answer.status.ok());
  WorkloadCostEvaluator eval(&engine.Pin()->sealed());
  EXPECT_EQ(answer.cost, eval.Cost(IndexConfig{}));
}

TEST_F(FaultInjectionTest, OverBudgetResealIsDiscardedNotPublished) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingOptions options;
  options.maintenance.reseal_deadline = std::chrono::milliseconds(1);
  ServingEngine engine(builder.get(), &queries(), std::move(built), options);

  Rng rng(FaultSeed() * 31 + 2);
  std::vector<IndexConfig> configs;
  for (int i = 0; i < 4; ++i) {
    configs.push_back(RandomSubsetConfig(set_, &rng, 0.3));
  }
  std::vector<double> before;
  for (const IndexConfig& config : configs) {
    before.push_back(engine.Cost(config).cost);
  }

  std::vector<std::string> stale;
  engine.WithWorld([&] { stale = Drift(/*seed=*/FaultSeed() * 100 + 8); });

  // Stall one per-query rebuild well past the 1ms budget. The rebuild
  // completes (it cannot be aborted) but its result must be discarded.
  FailPoint::Config stall;
  stall.mode = FailPoint::Mode::kNthHit;
  stall.nth_hit = 1;
  stall.status = Status::OK();
  stall.delay = std::chrono::milliseconds(20);
  ScopedFailPoint scoped("workload.build_query", stall);

  const Status st = engine.Reseal(stale);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_EQ(engine.CurrentGenerationId(), 1u);
  EXPECT_FALSE(engine.StaleNames().empty());
  EXPECT_EQ(engine.Health().last_error.code(),
            StatusCode::kDeadlineExceeded);
  // Serving never saw the discarded result.
  for (size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(engine.Cost(configs[i]).cost, before[i]);
  }
}

TEST_F(FaultInjectionTest, PersistentFaultDegradesThenAutoRecovers) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingOptions options;
  options.maintenance.max_retries = 2;
  options.maintenance.initial_backoff = std::chrono::milliseconds(1);
  options.maintenance.jitter_seed = FaultSeed();
  ServingEngine engine(builder.get(), &queries(), std::move(built), options);

  Rng rng(FaultSeed() * 31 + 3);
  std::vector<IndexConfig> configs;
  for (int i = 0; i < 6; ++i) {
    configs.push_back(RandomSubsetConfig(set_, &rng, 0.3));
  }
  std::vector<double> before;
  for (const IndexConfig& config : configs) {
    before.push_back(engine.Cost(config).cost);
  }

  // Every per-query rebuild fails while armed: the watcher retries
  // with backoff, crosses max_retries, and degrades.
  FailPoint::Config fault;
  fault.status = Status::Unavailable("stats store offline");
  FailPoint::Arm("workload.build_query", fault);

  engine.StartDriftWatcher(std::chrono::milliseconds(2));
  engine.WithWorld([&] { Drift(/*seed=*/FaultSeed() * 100 + 9); });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine.Health().state != HealthState::kDegraded &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(engine.Health().state, HealthState::kDegraded);

  // Degraded, not down: the last good generation keeps answering its
  // exact bits (stale-while-revalidate).
  EXPECT_EQ(engine.CurrentGenerationId(), 1u);
  for (size_t i = 0; i < configs.size(); ++i) {
    const CostAnswer answer = engine.Cost(configs[i]);
    EXPECT_EQ(answer.generation, 1u);
    EXPECT_EQ(answer.cost, before[i]);
  }
  {
    const HealthReport report = engine.Health();
    EXPECT_EQ(report.last_error.code(), StatusCode::kUnavailable);
    EXPECT_GE(report.consecutive_failures, 2);
    EXPECT_EQ(report.generation, 1u);
  }

  // Fault clears: the watcher's next attempt publishes and the health
  // flips back to kHealthy with no intervention.
  FailPoint::Disarm("workload.build_query");
  while ((engine.Health().state != HealthState::kHealthy ||
          engine.CurrentGenerationId() < 2) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  engine.StopDriftWatcher();
  ASSERT_EQ(engine.Health().state, HealthState::kHealthy);
  ASSERT_GE(engine.CurrentGenerationId(), 2u);
  EXPECT_TRUE(engine.StaleNames().empty());

  // The recovered generation is a cold rebuild's bits.
  ExpectMatchesColdRebuild(engine, configs);

  // The event ring tells the whole story, and the stats agree.
  bool saw_failed = false, saw_retry = false, saw_degraded = false,
       saw_recovered = false, saw_succeeded = false;
  for (const MaintenanceEvent& event : engine.MaintenanceEvents()) {
    switch (event.kind) {
      case MaintenanceEvent::Kind::kResealFailed:
        saw_failed = true;
        EXPECT_FALSE(event.status.ok());
        break;
      case MaintenanceEvent::Kind::kRetryScheduled:
        saw_retry = true;
        EXPECT_GT(event.backoff.count(), 0);
        break;
      case MaintenanceEvent::Kind::kDegraded:
        saw_degraded = true;
        EXPECT_GE(event.consecutive_failures, 2);
        break;
      case MaintenanceEvent::Kind::kRecovered:
        saw_recovered = true;
        break;
      case MaintenanceEvent::Kind::kResealSucceeded:
        saw_succeeded = true;
        EXPECT_TRUE(event.status.ok());
        break;
    }
  }
  EXPECT_TRUE(saw_failed);
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_degraded);
  EXPECT_TRUE(saw_recovered);
  EXPECT_TRUE(saw_succeeded);
  EXPECT_LE(engine.MaintenanceEvents().size(),
            ServingOptions{}.max_maintenance_events);

  const ServingStats stats = engine.Stats();
  EXPECT_GE(stats.reseal_failures, 2u);
  EXPECT_GE(stats.recoveries, 1u);
  EXPECT_GT(stats.reseal_attempts, stats.reseal_failures);
}

// The randomized fault-schedule stress case (the CI fault matrix runs
// it under ASan and TSan across seeds): readers hammer every serving
// entry point while maintenance drifts and reseals through a seeded
// probabilistic fault on the per-query rebuild. Every OK answer must
// be bitwise what its named generation computes; every future must
// resolve (OK, kDeadlineExceeded, or a shed at submission); the final
// generation must equal a cold rebuild once the faults clear.
TEST_F(FaultInjectionTest, RandomizedFaultScheduleStress) {
  const uint64_t seed = FaultSeed();
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingOptions options;
  // Readers price serially: pool faults are maintenance's problem in
  // this test (PoolFaultDuringPumpYieldsErrorAnswers covers the pump).
  options.pool = nullptr;
  options.maintenance.max_retries = 2;
  options.maintenance.initial_backoff = std::chrono::milliseconds(1);
  options.maintenance.jitter_seed = seed;
  ServingEngine engine(builder.get(), &queries(), std::move(built), options);
  engine.StartDispatcher();

  Rng rng(seed * 31 + 4);
  std::vector<IndexConfig> configs;
  for (int i = 0; i < 12; ++i) {
    configs.push_back(RandomSubsetConfig(set_, &rng, 0.3));
  }

  // Every generation ever published, id -> generation (maintenance is
  // the only publisher; it records right after each publish).
  std::map<uint64_t, std::shared_ptr<const ServingGeneration>> published;
  published[1] = engine.Pin();

  // The fault schedule: each per-query rebuild fails with p = 0.2,
  // decided by a stream seeded from PINUM_FAULT_SEED. Armed for the
  // whole stress run — reseals fail and retry while readers serve.
  FailPoint::Config fault;
  fault.mode = FailPoint::Mode::kProbability;
  fault.probability = 0.2;
  fault.seed = seed;
  fault.status = Status::Unavailable("injected rebuild fault");
  FailPoint::Arm("workload.build_query", fault);

  struct Observation {
    size_t config_idx;
    double cost;
    uint64_t generation;
  };
  constexpr int kReaders = 4;
  constexpr int kReaderIters = 60;
  constexpr int kDriftRounds = 5;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> expired{0};
  std::vector<std::vector<Observation>> observed(kReaders);

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng thread_rng(seed * 1000 + static_cast<uint64_t>(r));
      for (int it = 0; it < kReaderIters && !stop.load(); ++it) {
        const size_t idx = thread_rng.Next() % configs.size();
        switch (it % 3) {
          case 0: {
            const CostAnswer answer = engine.Cost(configs[idx]);
            ASSERT_TRUE(answer.status.ok());
            observed[r].push_back({idx, answer.cost, answer.generation});
            break;
          }
          case 1: {
            const size_t idx2 = thread_rng.Next() % configs.size();
            const std::vector<CostAnswer> answers =
                engine.BatchCost({configs[idx], configs[idx2]});
            ASSERT_EQ(answers[0].generation, answers[1].generation);
            observed[r].push_back(
                {idx, answers[0].cost, answers[0].generation});
            observed[r].push_back(
                {idx2, answers[1].cost, answers[1].generation});
            break;
          }
          case 2: {
            auto submitted = engine.SubmitCost(
                configs[idx], std::chrono::milliseconds(500));
            if (!submitted.ok()) {
              ASSERT_EQ(submitted.status().code(),
                        StatusCode::kUnavailable);
              break;
            }
            const CostAnswer answer = submitted.value().get();
            if (answer.status.ok()) {
              observed[r].push_back({idx, answer.cost, answer.generation});
            } else {
              // The only non-OK resolution a queued request may see
              // here is its own deadline expiring.
              ASSERT_EQ(answer.status.code(),
                        StatusCode::kDeadlineExceeded);
              expired++;
            }
            break;
          }
        }
      }
    });
  }

  std::thread maintenance([&] {
    for (int round = 0; round < kDriftRounds; ++round) {
      engine.WithWorld([&] {
        Drift(seed * 100 + static_cast<uint64_t>(round),
              /*add_candidates=*/round % 2);
      });
      // Retry through the injected faults until this round publishes;
      // p(all queries rebuild clean) ≈ 0.8^|queries| per attempt, so a
      // couple hundred attempts cannot flake.
      bool published_this_round = false;
      for (int attempt = 0; attempt < 500 && !published_this_round;
           ++attempt) {
        auto resealed = engine.CheckAndReseal();
        ASSERT_TRUE(resealed.ok() ||
                    resealed.status().code() == StatusCode::kUnavailable)
            << resealed.status().ToString();
        if (resealed.ok()) {
          ASSERT_TRUE(*resealed);
          published_this_round = true;
          published[engine.CurrentGenerationId()] = engine.Pin();
        }
      }
      ASSERT_TRUE(published_this_round)
          << "round " << round << " never published through the faults";
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true);
  });

  maintenance.join();
  for (std::thread& reader : readers) reader.join();
  engine.StopDispatcher();
  FailPoint::DisarmAll();

  // Bit-identity audit: every OK answer is exactly what the generation
  // it names computes.
  size_t audited = 0;
  for (const auto& per_reader : observed) {
    for (const Observation& obs : per_reader) {
      auto it = published.find(obs.generation);
      ASSERT_NE(it, published.end())
          << "answer names unpublished generation " << obs.generation;
      WorkloadCostEvaluator eval(&it->second->sealed());
      ASSERT_EQ(obs.cost, eval.Cost(configs[obs.config_idx]))
          << "generation " << obs.generation << ", config "
          << obs.config_idx;
      ++audited;
    }
  }
  EXPECT_GT(audited, 0u);

  // Faults cleared: the engine reseals whatever is left and the final
  // generation equals a cold rebuild under the final world, bitwise.
  auto final_reseal = engine.CheckAndReseal();
  ASSERT_TRUE(final_reseal.ok()) << final_reseal.status().ToString();
  EXPECT_EQ(engine.Health().state, HealthState::kHealthy);
  EXPECT_TRUE(engine.StaleNames().empty());
  ExpectMatchesColdRebuild(engine, configs);

  const ServingStats stats = engine.Stats();
  EXPECT_GE(stats.reseal_attempts,
            static_cast<uint64_t>(kDriftRounds));
  EXPECT_EQ(stats.deadline_expired, expired.load());
}

}  // namespace
}  // namespace pinum
