// Shared test fixtures: a miniature star schema (fact + two dimensions)
// with synthetic statistics and helpers to materialize it, the paper's
// star-schema workload + candidate universe (the expensive fixture the
// serving suites share), and seeded drift wrappers for the differential
// reseal suite.
#ifndef PINUM_TESTS_TEST_UTIL_H_
#define PINUM_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "advisor/candidate_generator.h"
#include "advisor/greedy_advisor.h"
#include "common/rng.h"
#include "inum/access_cost_table.h"
#include "query/query.h"
#include "stats/table_stats.h"
#include "storage/database.h"
#include "whatif/candidate_set.h"
#include "workload/cache_manager.h"
#include "workload/star_schema.h"
#include "workload/workload_family.h"

namespace pinum {

/// Every field of two advisor runs, compared exactly — costs are
/// doubles compared with ==, because the delta path's contract (and the
/// batched/serial pricing contract before it) is bitwise equality, not
/// approximate agreement. Any new AdvisorResult field belongs here so
/// every equivalence suite enforces it. `full_evaluations` is the one
/// deliberately path-DEPENDENT field (it counts full-path resolutions,
/// which the delta path avoids); pass same_cost_path = false when `a`
/// and `b` ran different cost paths so everything else is still pinned.
inline void ExpectSameAdvisorResult(const AdvisorResult& a,
                                    const AdvisorResult& b,
                                    bool same_cost_path = true) {
  EXPECT_EQ(a.chosen, b.chosen);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].chosen, b.steps[i].chosen) << "step " << i;
    EXPECT_EQ(a.steps[i].benefit, b.steps[i].benefit) << "step " << i;
    EXPECT_EQ(a.steps[i].size_bytes, b.steps[i].size_bytes) << "step " << i;
    EXPECT_EQ(a.steps[i].workload_cost_after, b.steps[i].workload_cost_after)
        << "step " << i;
  }
  EXPECT_EQ(a.workload_cost_before, b.workload_cost_before);
  EXPECT_EQ(a.workload_cost_after, b.workload_cost_after);
  EXPECT_EQ(a.total_size_bytes, b.total_size_bytes);
  EXPECT_EQ(a.evaluations, b.evaluations);
  if (same_cost_path) EXPECT_EQ(a.full_evaluations, b.full_evaluations);
}

/// Random atomic configuration over the candidates relevant to `q` (at
/// most one index per table, each table filled with prob. `p_fill`) —
/// the sampling the cache-accuracy tests price configurations with.
inline IndexConfig RandomAtomicConfig(const Query& q, const CandidateSet& set,
                                      Rng* rng, double p_fill = 0.6) {
  std::map<TableId, std::vector<IndexId>> per_table;
  for (IndexId id : set.candidate_ids) {
    const IndexDef* def = set.universe.FindIndex(id);
    if (q.PosOfTable(def->table) >= 0) per_table[def->table].push_back(id);
  }
  IndexConfig config;
  for (auto& [table, ids] : per_table) {
    (void)table;
    if (rng->Chance(p_fill)) config.push_back(ids[rng->Index(ids.size())]);
  }
  return config;
}

/// Family-parameterized workload fixture: one generated WorkloadInstance
/// (src/workload/workload_family.h) behind the accessor surface the
/// serving suites share. The default "star" family reproduces the old
/// hand-rolled fixture exactly — the paper's star schema capped at 5-way
/// joins (6/7-way queries add minutes under sanitizers but no new slot
/// shapes) with its generated candidate universe. Property suites
/// parameterized over WorkloadFamilyNames() construct one per family and
/// SCOPED_TRACE `trace()` so failures print their (family, seed).
struct FamilyFixture {
  explicit FamilyFixture(std::unique_ptr<WorkloadInstance> inst)
      : instance(std::move(inst)), set(instance->set) {}

  std::unique_ptr<WorkloadInstance> instance;
  /// The candidate universe, aliasing instance->set (drift appends to it
  /// through either name).
  CandidateSet& set;

  const std::vector<Query>& queries() const { return instance->queries; }
  const Catalog& catalog() const { return instance->catalog(); }
  const StatsCatalog& stats() const { return instance->stats(); }
  const std::vector<TableId>& tables() const { return instance->tables; }
  TableId primary_table() const { return instance->primary_table(); }
  const std::string& family() const { return instance->family; }

  /// Failure-reproduction tag: "family=chain seed=42".
  std::string trace() const {
    return "family=" + instance->family +
           " seed=" + std::to_string(instance->options.seed);
  }
};

/// Returns nullptr on failure; callers ASSERT at SetUpTestSuite time.
inline std::unique_ptr<FamilyFixture> MakeFamilyFixture(
    const std::string& family, const WorkloadFamilyOptions& options = {}) {
  auto inst = MakeWorkloadInstance(family, options);
  if (!inst.ok()) return nullptr;
  return std::make_unique<FamilyFixture>(std::move(*inst));
}

/// The star-family specialization the pre-family suites were written
/// against (identical catalog, queries, and universe to the old
/// StarFixture).
using StarFixture = FamilyFixture;

inline std::unique_ptr<StarFixture> MakeStarFixture() {
  return MakeFamilyFixture("star");
}

/// Uniformly random subset of `set`'s candidates (any number of indexes
/// per table) with probability `p` per candidate — the non-atomic
/// sampling the sealed-cache and reseal equivalence suites mix in.
inline IndexConfig RandomSubsetConfig(const CandidateSet& set, Rng* rng,
                                      double p) {
  IndexConfig config;
  for (IndexId id : set.candidate_ids) {
    if (rng->Chance(p)) config.push_back(id);
  }
  return config;
}

/// Builds `fact(id, fk_d1, fk_d2, c1, c2)`, `d1(id, c1, c2)`,
/// `d2(id, c1, c2)` with uniform synthetic statistics.
///
/// fact: `fact_rows` rows; dims: `dim_rows` rows. Payload columns are
/// uniform in [1, payload_max].
class MiniStar {
 public:
  explicit MiniStar(double fact_rows = 1'000'000, double dim_rows = 10'000,
                    Value payload_max = 1'000'000) {
    auto add_table = [&](const std::string& name, bool is_fact) {
      TableDef def;
      def.name = name;
      def.columns.push_back({"id", TypeId::kInt64});
      if (is_fact) {
        def.columns.push_back({"fk_d1", TypeId::kInt64});
        def.columns.push_back({"fk_d2", TypeId::kInt64});
      }
      def.columns.push_back({"c1", TypeId::kInt64});
      def.columns.push_back({"c2", TypeId::kInt64});
      return *db.catalog().AddTable(def);
    };
    fact = add_table("fact", true);
    d1 = add_table("d1", false);
    d2 = add_table("d2", false);
    (void)db.catalog().AddForeignKey(
        {fact, 1, d1, 0});
    (void)db.catalog().AddForeignKey(
        {fact, 2, d2, 0});

    auto put_stats = [&](TableId t, double rows, bool is_fact) {
      const TableDef* def = db.catalog().FindTable(t);
      TableStats stats;
      stats.row_count = rows;
      stats.RecomputePages(*def);
      stats.columns.resize(def->columns.size());
      for (size_t c = 0; c < def->columns.size(); ++c) {
        ColumnStats& cs = stats.columns[c];
        const std::string& name = def->columns[c].name;
        if (name == "id") {
          cs.n_distinct = rows;
          cs.min = 0;
          cs.max = static_cast<Value>(rows) - 1;
          cs.correlation = 1.0;
          cs.histogram = Histogram::Uniform(cs.min, cs.max);
        } else if (name.rfind("fk_", 0) == 0) {
          cs.n_distinct = std::min(rows, dim_rows_);
          cs.min = 0;
          cs.max = static_cast<Value>(dim_rows_) - 1;
          cs.correlation = 0.0;
          cs.histogram = Histogram::Uniform(cs.min, cs.max);
        } else {
          cs.n_distinct = std::min(rows, static_cast<double>(payload_max_));
          cs.min = 1;
          cs.max = payload_max_;
          cs.correlation = 0.0;
          cs.histogram = Histogram::Uniform(cs.min, cs.max);
        }
      }
      db.stats().Put(t, std::move(stats));
      (void)is_fact;
    };
    dim_rows_ = dim_rows;
    payload_max_ = payload_max;
    put_stats(fact, fact_rows, true);
    put_stats(d1, dim_rows, false);
    put_stats(d2, dim_rows, false);
  }

  /// Generates rows matching the synthetic distributions and re-ANALYZEs.
  Status Materialize(int64_t fact_rows, int64_t dim_rows,
                     uint64_t seed = 99) {
    Rng rng(seed);
    auto fill = [&](TableId t, int64_t n) -> Status {
      PINUM_RETURN_IF_ERROR(db.CreateTableStorage(t));
      TableData* data = db.MutableData(t);
      const TableDef* def = db.catalog().FindTable(t);
      std::vector<Value> row(def->columns.size());
      for (int64_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < def->columns.size(); ++c) {
          const std::string& name = def->columns[c].name;
          if (name == "id") {
            row[c] = r;
          } else if (name.rfind("fk_", 0) == 0) {
            row[c] = rng.Uniform(0, dim_rows - 1);
          } else {
            row[c] = rng.Uniform(1, payload_max_);
          }
        }
        data->AppendRow(row);
      }
      return Status::OK();
    };
    PINUM_RETURN_IF_ERROR(fill(fact, fact_rows));
    PINUM_RETURN_IF_ERROR(fill(d1, dim_rows));
    PINUM_RETURN_IF_ERROR(fill(d2, dim_rows));
    return db.AnalyzeAll();
  }

  /// Two-table join with a 1% filter on fact.c1 and ORDER BY d1.c1.
  Query JoinQuery() const {
    QueryBuilder qb(&db.catalog());
    auto q = qb.Named("mini_q")
                 .From("fact")
                 .From("d1")
                 .Select("fact", "c2")
                 .Select("d1", "c1")
                 .Join("fact", "fk_d1", "d1", "id")
                 .Where("fact", "c1", CompareOp::kLe, payload_max_ / 100)
                 .OrderBy("d1", "c1")
                 .Build();
    return *q;
  }

  /// Three-table join with filters on fact.
  Query ThreeWayQuery() const {
    QueryBuilder qb(&db.catalog());
    auto q = qb.Named("mini_q3")
                 .From("fact")
                 .From("d1")
                 .From("d2")
                 .Select("fact", "c2")
                 .Select("d1", "c1")
                 .Select("d2", "c2")
                 .Join("fact", "fk_d1", "d1", "id")
                 .Join("fact", "fk_d2", "d2", "id")
                 .Where("fact", "c1", CompareOp::kLe, payload_max_ / 100)
                 .OrderBy("d2", "c2")
                 .Build();
    return *q;
  }

  Database db;
  TableId fact, d1, d2;

 private:
  double dim_rows_;
  Value payload_max_;
};

/// MiniStar plus its two-query workload and candidate universe — the
/// fast build fixture WorkloadCacheTest and the classic-mode
/// differential reseal case share (previously hand-rolled per suite).
struct MiniWorkloadFixture {
  MiniWorkloadFixture() {
    queries = {mini.JoinQuery(), mini.ThreeWayQuery()};
    CandidateOptions copt;
    auto cands = GenerateCandidates(queries, mini.db.catalog(),
                                    mini.db.stats(), copt);
    set = *MakeCandidateSet(mini.db.catalog(), cands);
  }

  /// Builds the workload with `opts` (EXPECTs success).
  WorkloadCacheResult Build(WorkloadCacheOptions opts) {
    WorkloadCacheBuilder builder(&mini.db.catalog(), &set, &mini.db.stats(),
                                 opts);
    auto result = builder.BuildAll(queries);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(*result);
  }

  MiniStar mini;
  std::vector<Query> queries;
  CandidateSet set;
};

}  // namespace pinum

#endif  // PINUM_TESTS_TEST_UTIL_H_
