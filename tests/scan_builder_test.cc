#include <gtest/gtest.h>

#include "optimizer/scan_builder.h"
#include "test_util.h"
#include "whatif/whatif_index.h"

namespace pinum {
namespace {

class ScanBuilderTest : public ::testing::Test {
 protected:
  ScanBuilderTest() : mini_(), model_() {}

  StatusOr<TableAccessInfo> Build(const Query& q, int pos,
                                  const Catalog& catalog) {
    return BuildTableAccessInfo(q, pos, catalog, mini_.db.stats(), model_);
  }

  MiniStar mini_;
  CostModel model_;
};

TEST_F(ScanBuilderTest, HeapOnlyWithoutIndexes) {
  const Query q = mini_.JoinQuery();
  auto info = Build(q, 0, mini_.db.catalog());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->options.size(), 1u);  // seq scan only
  EXPECT_EQ(info->options[0].index, kInvalidIndexId);
  EXPECT_TRUE(info->probes.empty());
  // 1% filter selectivity.
  EXPECT_NEAR(info->filter_sel, 0.01, 0.002);
  EXPECT_NEAR(info->filtered_rows, info->raw_rows * info->filter_sel,
              info->raw_rows * 0.001);
}

TEST_F(ScanBuilderTest, IndexAddsScanAndProbeOptions) {
  const Query q = mini_.JoinQuery();
  const TableDef* d1 = mini_.db.catalog().FindTable(mini_.d1);
  // Index on d1.id: join column -> probe option; covers the order `id`.
  std::vector<IndexDef> hypo = {
      MakeWhatIfIndex("d1_id", *d1, {0}, 10'000)};
  auto catalog = CatalogWithIndexes(mini_.db.catalog(), hypo, nullptr);
  ASSERT_TRUE(catalog.ok());
  auto info = Build(q, 1, *catalog);
  ASSERT_TRUE(info.ok());
  // seq + regular index scan (not covering all needed columns: c1 needed).
  EXPECT_EQ(info->options.size(), 2u);
  EXPECT_FALSE(info->probes.empty());
  EXPECT_EQ(info->probes[0].column.column, 0);
  EXPECT_GT(info->probes[0].cost_per_probe.total, 0);
}

TEST_F(ScanBuilderTest, CoveringIndexGetsIndexOnlyVariant) {
  const Query q = mini_.JoinQuery();
  const TableDef* d1 = mini_.db.catalog().FindTable(mini_.d1);
  // d1 needs columns id (join) and c1 (select/order): index on (id, c1).
  std::vector<IndexDef> hypo = {
      MakeWhatIfIndex("d1_cov", *d1, {0, 1}, 10'000)};
  auto catalog = CatalogWithIndexes(mini_.db.catalog(), hypo, nullptr);
  ASSERT_TRUE(catalog.ok());
  auto info = Build(q, 1, *catalog);
  ASSERT_TRUE(info.ok());
  // seq + regular + index-only.
  ASSERT_EQ(info->options.size(), 3u);
  const ScanOption* index_only = nullptr;
  const ScanOption* regular = nullptr;
  for (const auto& opt : info->options) {
    if (opt.index == kInvalidIndexId) continue;
    (opt.index_only ? index_only : regular) = &opt;
  }
  ASSERT_NE(index_only, nullptr);
  ASSERT_NE(regular, nullptr);
  EXPECT_LT(index_only->cost.total, regular->cost.total);
  // Both deliver the index order (leading column id).
  EXPECT_EQ(index_only->order.Leading().column, 0);
}

TEST_F(ScanBuilderTest, BoundaryPredicateShrinksIndexScan) {
  // A highly selective predicate (0.01%) makes the index range scan beat
  // the sequential scan; at 1% with uncorrelated heap order the random
  // heap fetches lose to the sequential scan — faithful PostgreSQL
  // behavior with random_page_cost = 4.
  QueryBuilder qb(&mini_.db.catalog());
  auto q = qb.Named("narrow")
                .From("fact")
                .Select("fact", "c2")
                .Where("fact", "c1", CompareOp::kLe, 100)  // 1e-4 of 1e6
                .Build();
  ASSERT_TRUE(q.ok());
  const TableDef* fact = mini_.db.catalog().FindTable(mini_.fact);
  std::vector<IndexDef> hypo = {
      MakeWhatIfIndex("fact_c1", *fact, {3}, 1'000'000)};  // c1 is col 3
  auto catalog = CatalogWithIndexes(mini_.db.catalog(), hypo, nullptr);
  ASSERT_TRUE(catalog.ok());
  auto info = Build(*q, 0, *catalog);
  ASSERT_TRUE(info.ok());
  const ScanOption* idx = nullptr;
  for (const auto& opt : info->options) {
    if (opt.index != kInvalidIndexId) idx = &opt;
  }
  ASSERT_NE(idx, nullptr);
  EXPECT_NEAR(idx->sel_index, 1e-4, 5e-5);
  // Selective range scan beats the sequential scan.
  EXPECT_LT(idx->cost.total, info->options[0].cost.total);

  // At 1% selectivity the same index loses to the sequential scan.
  const Query wide = mini_.JoinQuery();
  auto wide_info = Build(wide, 0, *catalog);
  ASSERT_TRUE(wide_info.ok());
  const ScanOption* wide_idx = nullptr;
  for (const auto& opt : wide_info->options) {
    if (opt.index != kInvalidIndexId) wide_idx = &opt;
  }
  ASSERT_NE(wide_idx, nullptr);
  EXPECT_GT(wide_idx->cost.total, wide_info->options[0].cost.total);
}

TEST_F(ScanBuilderTest, MissingStatsIsError) {
  Query q = mini_.JoinQuery();
  Catalog fresh;  // tables absent
  TableDef t;
  t.name = "fact";
  t.columns = {{"id", TypeId::kInt64}};
  (void)fresh.AddTable(t);
  StatsCatalog empty_stats;
  auto info = BuildTableAccessInfo(q, 0, fresh, empty_stats, model_);
  EXPECT_FALSE(info.ok());
}

TEST_F(ScanBuilderTest, NonJoinLeadingColumnHasNoProbe) {
  const Query q = mini_.JoinQuery();
  const TableDef* d1 = mini_.db.catalog().FindTable(mini_.d1);
  // Index on payload c2 (not a join column): scan option, no probe.
  std::vector<IndexDef> hypo = {
      MakeWhatIfIndex("d1_c2", *d1, {2}, 10'000)};
  auto catalog = CatalogWithIndexes(mini_.db.catalog(), hypo, nullptr);
  ASSERT_TRUE(catalog.ok());
  auto info = Build(q, 1, *catalog);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->options.size(), 2u);
  EXPECT_TRUE(info->probes.empty());
}

}  // namespace
}  // namespace pinum
