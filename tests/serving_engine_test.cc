// Always-on serving suite: generation lifecycle (pinned generations
// answer bit-identically across reseals, last pin dropped reclaims),
// admission control (full queue sheds kUnavailable, never hangs), the
// async front end (coalesced pumps, dispatcher thread, destructor
// drain), the drift watcher, and a seeded concurrent stress case in
// which readers hammer every serving entry point while a maintenance
// thread drifts the world and publishes reseals — afterwards EVERY
// recorded answer must be bitwise equal to the recorded generation
// that produced it, and the final generation must match a cold rebuild
// under the final world. The stress case is the one the TSan CI job
// runs; keep it free of benign races by construction.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "advisor/greedy_advisor.h"
#include "common/rng.h"
#include "common/status.h"
#include "serving/serving_engine.h"
#include "test_util.h"
#include "whatif/candidate_set.h"
#include "workload/cache_manager.h"
#include "workload/drift.h"

namespace pinum {
namespace {

class ServingEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { star_ = MakeStarFixture().release(); }
  static void TearDownTestSuite() {
    delete star_;
    star_ = nullptr;
  }

  void SetUp() override {
    ASSERT_NE(star_, nullptr);
    // Per-test world copies: drift mutates them in place.
    set_ = star_->set;
    stats_ = star_->stats();
  }

  const std::vector<Query>& queries() const { return star_->queries(); }
  const Catalog& catalog() const { return star_->catalog(); }

  /// A builder over this test's world copy plus its BuildAll result.
  std::unique_ptr<WorkloadCacheBuilder> MakeBuilder(
      WorkloadCacheResult* result) {
    WorkloadCacheOptions opts;
    auto builder = std::make_unique<WorkloadCacheBuilder>(
        &catalog(), &set_, &stats_, opts);
    auto built = builder->BuildAll(queries());
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    *result = std::move(*built);
    return builder;
  }

  /// Drifts this test's world (all queries stale) and returns the
  /// stale names. Callers inside an engine must wrap in WithWorld.
  std::vector<std::string> Drift(uint64_t seed, int add_candidates = 1) {
    DriftOptions dopts;
    dopts.add_candidates = add_candidates;
    auto drift = ApplyDrift(queries(), &set_, &stats_, queries().size(),
                            seed, dopts);
    EXPECT_TRUE(drift.ok()) << drift.status().ToString();
    return drift->stale_queries;
  }

  static StarFixture* star_;
  CandidateSet set_;
  StatsCatalog stats_;
};

StarFixture* ServingEngineTest::star_ = nullptr;

TEST_F(ServingEngineTest, PinnedGenerationIsBitIdenticalAcrossReseal) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingEngine engine(builder.get(), &queries(), std::move(built));

  Rng rng(11);
  std::vector<IndexConfig> configs;
  for (int i = 0; i < 8; ++i) {
    configs.push_back(RandomSubsetConfig(set_, &rng, 0.3));
  }

  // Pin generation 1 and record its answers before any drift.
  auto pinned = engine.Pin();
  EXPECT_EQ(pinned->id, 1u);
  std::vector<double> before;
  for (const IndexConfig& config : configs) {
    const CostAnswer answer = engine.Cost(config);
    EXPECT_EQ(answer.generation, 1u);
    before.push_back(answer.cost);
  }

  std::vector<std::string> stale;
  engine.WithWorld([&] { stale = Drift(/*seed=*/77); });
  ASSERT_EQ(stale.size(), queries().size());
  ASSERT_TRUE(engine.Reseal(stale).ok());
  EXPECT_EQ(engine.CurrentGenerationId(), 2u);

  // The pinned old generation still answers exactly what it answered
  // before publication — immutability, not luck.
  WorkloadCostEvaluator old_eval(&pinned->sealed());
  bool any_moved = false;
  for (size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(old_eval.Cost(configs[i]), before[i]);
    const CostAnswer now = engine.Cost(configs[i]);
    EXPECT_EQ(now.generation, 2u);
    any_moved |= now.cost != before[i];
  }
  // Sanity: the drift actually changed answers, so the equalities
  // above were not vacuous.
  EXPECT_TRUE(any_moved);

  // And generation 2 is bitwise a cold rebuild under the drifted world.
  WorkloadCacheBuilder cold(&catalog(), &set_, &stats_,
                            WorkloadCacheOptions{});
  auto cold_built = cold.BuildAll(queries());
  ASSERT_TRUE(cold_built.ok()) << cold_built.status().ToString();
  WorkloadCostEvaluator cold_eval(&cold_built->sealed);
  for (const IndexConfig& config : configs) {
    EXPECT_EQ(engine.Cost(config).cost, cold_eval.Cost(config));
  }
}

TEST_F(ServingEngineTest, LastPinDroppedReclaimsTheGeneration) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingEngine engine(builder.get(), &queries(), std::move(built));

  std::shared_ptr<const ServingGeneration> pinned = engine.Pin();
  std::weak_ptr<const ServingGeneration> probe = pinned;

  std::vector<std::string> stale;
  engine.WithWorld([&] { stale = Drift(/*seed=*/78); });
  ASSERT_TRUE(engine.Reseal(stale).ok());

  // The reseal replaced the engine's reference, but the reader's pin
  // keeps generation 1 alive...
  EXPECT_FALSE(probe.expired());
  EXPECT_EQ(probe.lock()->id, 1u);

  // ...and dropping the last pin reclaims it immediately.
  pinned.reset();
  EXPECT_TRUE(probe.expired());
}

TEST_F(ServingEngineTest, FullQueueShedsUnavailableInsteadOfHanging) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingOptions options;
  options.max_queue_depth = 2;
  ServingEngine engine(builder.get(), &queries(), std::move(built), options);

  auto a = engine.SubmitCost(IndexConfig{});
  auto b = engine.SubmitCost(IndexConfig{});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(engine.Pending(), 2u);

  // Admission control: the bounded queue rejects rather than queues
  // unboundedly or blocks the caller.
  auto shed = engine.SubmitCost(IndexConfig{});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);

  // The queued two still get answered, in one coalesced sweep.
  EXPECT_EQ(engine.PumpOnce(), 2u);
  EXPECT_EQ(engine.Pending(), 0u);
  WorkloadCostEvaluator eval(&engine.Pin()->sealed());
  const double expected = eval.Cost(IndexConfig{});
  CostAnswer answer_a = a.value().get();
  CostAnswer answer_b = b.value().get();
  EXPECT_EQ(answer_a.cost, expected);
  EXPECT_EQ(answer_b.cost, expected);
  EXPECT_EQ(answer_a.generation, 1u);

  // And the queue is usable again after the drain.
  auto c = engine.SubmitCost(IndexConfig{});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(engine.PumpOnce(), 1u);
  EXPECT_EQ(c.value().get().cost, expected);
}

TEST_F(ServingEngineTest, DispatcherAnswersSubmissionsInBackground) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingEngine engine(builder.get(), &queries(), std::move(built));
  engine.StartDispatcher();

  Rng rng(13);
  std::vector<IndexConfig> configs;
  std::vector<std::future<CostAnswer>> futures;
  for (int i = 0; i < 16; ++i) {
    configs.push_back(RandomSubsetConfig(set_, &rng, 0.25));
    auto submitted = engine.SubmitCost(configs.back());
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(submitted.value()));
  }

  WorkloadCostEvaluator eval(&engine.Pin()->sealed());
  for (size_t i = 0; i < futures.size(); ++i) {
    const CostAnswer answer = futures[i].get();
    EXPECT_EQ(answer.cost, eval.Cost(configs[i]));
    EXPECT_EQ(answer.generation, 1u);
  }
  engine.StopDispatcher();
  EXPECT_EQ(engine.Pending(), 0u);
}

TEST_F(ServingEngineTest, DestructorDrainsUnpumpedSubmissions) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  std::future<CostAnswer> orphan;
  double expected = 0;
  {
    ServingEngine engine(builder.get(), &queries(), std::move(built));
    WorkloadCostEvaluator eval(&engine.Pin()->sealed());
    expected = eval.Cost(IndexConfig{});
    auto submitted = engine.SubmitCost(IndexConfig{});
    ASSERT_TRUE(submitted.ok());
    orphan = std::move(submitted.value());
    // No dispatcher, no pump: the destructor must answer it.
  }
  EXPECT_EQ(orphan.get().cost, expected);
}

TEST_F(ServingEngineTest, StaleNamesTracksDriftAndResealClearsIt) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingEngine engine(builder.get(), &queries(), std::move(built));

  EXPECT_TRUE(engine.StaleNames().empty());
  auto first = engine.CheckAndReseal();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(*first);
  EXPECT_EQ(engine.CurrentGenerationId(), 1u);

  std::vector<std::string> stale;
  engine.WithWorld([&] { stale = Drift(/*seed=*/79); });
  EXPECT_EQ(engine.StaleNames(), stale);

  auto resealed = engine.CheckAndReseal();
  ASSERT_TRUE(resealed.ok()) << resealed.status().ToString();
  EXPECT_TRUE(*resealed);
  EXPECT_EQ(engine.CurrentGenerationId(), 2u);
  EXPECT_TRUE(engine.StaleNames().empty());
  EXPECT_TRUE(engine.LastMaintenanceStatus().ok());
}

TEST_F(ServingEngineTest, DriftWatcherPublishesInBackground) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingEngine engine(builder.get(), &queries(), std::move(built));
  engine.StartDriftWatcher(std::chrono::milliseconds(2));

  engine.WithWorld([&] { Drift(/*seed=*/80); });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (engine.CurrentGenerationId() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  engine.StopDriftWatcher();
  ASSERT_GE(engine.CurrentGenerationId(), 2u);
  EXPECT_TRUE(engine.LastMaintenanceStatus().ok())
      << engine.LastMaintenanceStatus().ToString();
  EXPECT_TRUE(engine.StaleNames().empty());

  // The watcher-published generation is a cold rebuild's bits.
  WorkloadCacheBuilder cold(&catalog(), &set_, &stats_,
                            WorkloadCacheOptions{});
  auto cold_built = cold.BuildAll(queries());
  ASSERT_TRUE(cold_built.ok()) << cold_built.status().ToString();
  WorkloadCostEvaluator cold_eval(&cold_built->sealed);
  Rng rng(14);
  for (int i = 0; i < 6; ++i) {
    const IndexConfig config = RandomSubsetConfig(set_, &rng, 0.3);
    EXPECT_EQ(engine.Cost(config).cost, cold_eval.Cost(config));
  }
}

// The concurrency stress case (the TSan job's main subject): readers
// hammer Cost / BatchCost / SubmitCost while a maintenance thread
// drifts the world and publishes reseals. Every published generation
// is retained; after the join, every recorded (config, cost,
// generation) triple must satisfy cost == that generation's evaluator
// cost, bit for bit, and the final generation must equal a cold
// rebuild under the final world.
TEST_F(ServingEngineTest, ConcurrentResealServesOnlyPublishedGenerations) {
  WorkloadCacheResult built;
  auto builder = MakeBuilder(&built);
  ServingOptions options;
  options.pool = builder->pool();
  ServingEngine engine(builder.get(), &queries(), std::move(built), options);
  engine.StartDispatcher();

  Rng rng(15);
  std::vector<IndexConfig> configs;
  for (int i = 0; i < 12; ++i) {
    configs.push_back(RandomSubsetConfig(set_, &rng, 0.3));
  }

  // Every generation the engine ever publishes, id -> generation.
  // Maintenance is the only publisher and records right after each
  // publish, so the map is complete by the time readers are verified.
  std::map<uint64_t, std::shared_ptr<const ServingGeneration>> published;
  published[1] = engine.Pin();

  struct Observation {
    size_t config_idx;
    double cost;
    uint64_t generation;
  };

  constexpr int kReaders = 4;
  constexpr int kReaderIters = 60;
  constexpr int kResealRounds = 5;
  std::atomic<bool> stop{false};
  std::vector<std::vector<Observation>> observed(kReaders);

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng thread_rng(100 + static_cast<uint64_t>(r));
      for (int it = 0; it < kReaderIters && !stop.load(); ++it) {
        const size_t idx = thread_rng.Next() % configs.size();
        switch (it % 3) {
          case 0: {
            const CostAnswer answer = engine.Cost(configs[idx]);
            observed[r].push_back({idx, answer.cost, answer.generation});
            break;
          }
          case 1: {
            const size_t idx2 = thread_rng.Next() % configs.size();
            const std::vector<CostAnswer> answers =
                engine.BatchCost({configs[idx], configs[idx2]});
            // A batch never splits across generations.
            ASSERT_EQ(answers[0].generation, answers[1].generation);
            observed[r].push_back(
                {idx, answers[0].cost, answers[0].generation});
            observed[r].push_back(
                {idx2, answers[1].cost, answers[1].generation});
            break;
          }
          case 2: {
            auto submitted = engine.SubmitCost(configs[idx]);
            if (!submitted.ok()) {
              // Admission control under load is allowed; the status
              // must be the retryable shed, nothing else.
              ASSERT_EQ(submitted.status().code(),
                        StatusCode::kUnavailable);
              break;
            }
            const CostAnswer answer = submitted.value().get();
            observed[r].push_back({idx, answer.cost, answer.generation});
            break;
          }
        }
      }
    });
  }

  std::thread maintenance([&] {
    for (int round = 0; round < kResealRounds; ++round) {
      engine.WithWorld([&] {
        Drift(/*seed=*/200 + static_cast<uint64_t>(round),
              /*add_candidates=*/round % 2);
      });
      auto resealed = engine.CheckAndReseal();
      ASSERT_TRUE(resealed.ok()) << resealed.status().ToString();
      ASSERT_TRUE(*resealed);
      published[engine.CurrentGenerationId()] = engine.Pin();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true);
  });

  maintenance.join();
  for (std::thread& reader : readers) reader.join();
  engine.StopDispatcher();

  // Bit-identity audit: every answer ever handed out is exactly what
  // the generation it names computes.
  size_t audited = 0;
  for (const auto& per_reader : observed) {
    for (const Observation& obs : per_reader) {
      auto it = published.find(obs.generation);
      ASSERT_NE(it, published.end())
          << "answer names unpublished generation " << obs.generation;
      WorkloadCostEvaluator eval(&it->second->sealed());
      ASSERT_EQ(obs.cost, eval.Cost(configs[obs.config_idx]))
          << "generation " << obs.generation << ", config "
          << obs.config_idx;
      ++audited;
    }
  }
  EXPECT_GT(audited, 0u);

  // Final generation == cold rebuild under the final world, bitwise.
  EXPECT_EQ(engine.CurrentGenerationId(),
            1u + static_cast<uint64_t>(kResealRounds));
  WorkloadCacheBuilder cold(&catalog(), &set_, &stats_,
                            WorkloadCacheOptions{});
  auto cold_built = cold.BuildAll(queries());
  ASSERT_TRUE(cold_built.ok()) << cold_built.status().ToString();
  WorkloadCostEvaluator cold_eval(&cold_built->sealed);
  for (const IndexConfig& config : configs) {
    EXPECT_EQ(engine.Cost(config).cost, cold_eval.Cost(config));
  }
}

}  // namespace
}  // namespace pinum
