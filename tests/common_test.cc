#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/bitset64.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/thread_pool.h"

namespace pinum {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kFailedPrecondition, StatusCode::kUnavailable,
        StatusCode::kDeadlineExceeded}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Internal("boom");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  PINUM_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differ = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differ;
  }
  EXPECT_GT(differ, 0);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(0, 3));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(13);
  auto sample = rng.SampleIndices(50, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(RelSetTest, BasicSetOps) {
  RelSet s = RelSet::Single(3).With(5);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Count(), 2);
  EXPECT_EQ(s.Lowest(), 3);
}

TEST(RelSetTest, UnionIntersectMinus) {
  const RelSet a(0b1010), b(0b0110);
  EXPECT_EQ(a.Union(b).bits(), 0b1110u);
  EXPECT_EQ(a.Intersect(b).bits(), 0b0010u);
  EXPECT_EQ(a.Minus(b).bits(), 0b1000u);
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(a.Union(b).ContainsAll(a));
}

TEST(RelSetTest, FirstN) {
  EXPECT_EQ(RelSet::FirstN(0).bits(), 0u);
  EXPECT_EQ(RelSet::FirstN(3).bits(), 0b111u);
  EXPECT_EQ(RelSet::FirstN(7).Count(), 7);
}

TEST(RelSetTest, ForEachVisitsAscending) {
  RelSet s(0b101001);
  std::vector<int> seen;
  s.ForEach([&](int pos) { seen.push_back(pos); });
  EXPECT_EQ(seen, (std::vector<int>{0, 3, 5}));
}

TEST(StrUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"x"}, ", "), "x");
}

TEST(StrUtilTest, AsciiUpper) {
  EXPECT_EQ(AsciiUpper("select"), "SELECT");
  EXPECT_EQ(AsciiUpper("MiXeD_123"), "MIXED_123");
}

// The SIMD helpers must be bit-identical to the scalar loops they
// replace for every size (full vectors plus ragged tails) and for the
// values the serving layer feeds them — non-negative costs with +inf as
// the infeasibility sentinel. The whole sealed-cost property suite
// depends on this equivalence.
TEST(SimdTest, MinFoldMatchesScalarOnEverySizeAndTail) {
  const double inf = std::numeric_limits<double>::infinity();
  Rng rng(7);
  for (size_t n = 0; n <= 67; ++n) {
    std::vector<double> dst(n);
    std::vector<double> src(n);
    for (size_t i = 0; i < n; ++i) {
      dst[i] = rng.Chance(0.2) ? inf : rng.NextDouble() * 1e6;
      src[i] = rng.Chance(0.2) ? inf : rng.NextDouble() * 1e6;
    }
    std::vector<double> expected(dst);
    for (size_t i = 0; i < n; ++i) {
      expected[i] = std::min(expected[i], src[i]);
    }
    simd::MinFoldInto(dst.data(), src.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(dst[i], expected[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdTest, MinFoldKeepsEqualValuesBitIdentical) {
  // Equal operands (the common "index cannot improve this term" case)
  // must keep the destination's exact value.
  std::vector<double> dst(13, 42.5);
  std::vector<double> src(13, 42.5);
  simd::MinFoldInto(dst.data(), src.data(), dst.size());
  for (double v : dst) EXPECT_EQ(v, 42.5);
}

TEST(SimdTest, FillCoversRaggedTails) {
  const double inf = std::numeric_limits<double>::infinity();
  for (size_t n = 0; n <= 67; ++n) {
    std::vector<double> dst(n + 1, -1.0);  // +1 canary past the fill
    simd::Fill(dst.data(), inf, n);
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(dst[i], inf) << "n=" << n;
    EXPECT_EQ(dst[n], -1.0) << "fill overran at n=" << n;
  }
}

TEST(SimdTest, BackendNameIsNonEmpty) {
  EXPECT_NE(simd::BackendName(), nullptr);
  EXPECT_NE(std::string(simd::BackendName()), "");
}

TEST(ThreadPoolTest, RunsEveryIteration) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    const int64_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "i=" << i;
    }
  }
}

// An exception from the body must reach the caller — not std::terminate
// on a worker, and not a deadlocked completion barrier (the pre-fix
// behaviour: the throwing iteration skipped its `remaining` decrement,
// so the caller waited forever while the worker died).
TEST(ThreadPoolTest, BodyExceptionRethrownOnCaller) {
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const int64_t n = 256;
    std::atomic<int64_t> ran{0};
    bool caught = false;
    try {
      pool.ParallelFor(n, [&](int64_t i) {
        if (i == 7) throw std::runtime_error("iteration 7 failed");
        ran++;
      });
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "iteration 7 failed");
    }
    EXPECT_TRUE(caught);
    EXPECT_LT(ran.load(), n);  // the throwing iteration never counts
    // The pool survives: the same pool serves the next region normally.
    std::atomic<int64_t> after{0};
    pool.ParallelFor(n, [&](int64_t) { after++; });
    EXPECT_EQ(after.load(), n);
  }
}

TEST(ThreadPoolTest, EveryIterationThrowingStillCompletes) {
  for (int threads : {2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(64, [](int64_t) { throw std::logic_error("all"); }),
        std::logic_error);
  }
}

// Finished regions must not leave their queued helper entries behind:
// before the fix, a caller that finished all iterations while workers
// slept left stale closures in the queue (holding the region state
// alive) to be drained as no-ops at the start of the *next* region.
TEST(ThreadPoolTest, NoLeftoverTasksAfterParallelFor) {
  ThreadPool pool(8);
  // Tiny regions maximize the chance the caller finishes before any
  // worker wakes; with the fix the queue is empty after *every* return.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> ran{0};
    pool.ParallelFor(2, [&](int64_t) { ran++; });
    EXPECT_EQ(ran.load(), 2);
    EXPECT_EQ(pool.QueueDepthForTesting(), 0u) << "round " << round;
  }
}

TEST(ThreadPoolTest, QueueDrainsAfterThrowingRegionToo) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    EXPECT_THROW(pool.ParallelFor(3, [](int64_t i) {
      if (i == 0) throw std::runtime_error("boom");
    }),
                 std::runtime_error);
    EXPECT_EQ(pool.QueueDepthForTesting(), 0u) << "round " << round;
  }
}

// Concurrent ParallelFor calls from different threads share the workers
// but complete independently — the serving engine reseals on the
// builder's pool while a batched sweep may be using it too.
TEST(ThreadPoolTest, ConcurrentRegionsFromTwoCallers) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  std::thread other([&] {
    for (int r = 0; r < 20; ++r) {
      pool.ParallelFor(64, [&](int64_t) { total++; });
    }
  });
  for (int r = 0; r < 20; ++r) {
    pool.ParallelFor(64, [&](int64_t) { total++; });
  }
  other.join();
  EXPECT_EQ(total.load(), 2 * 20 * 64);
  EXPECT_EQ(pool.QueueDepthForTesting(), 0u);
}

TEST(ThreadPoolTest, InjectedNthHitFaultRethrownAndPoolSurvives) {
  ThreadPool pool(4);
  FailPoint::Config fault;
  fault.mode = FailPoint::Mode::kNthHit;
  fault.nth_hit = 5;
  fault.status = Status::Internal("injected task fault");
  ScopedFailPoint guard("thread_pool.task", fault);
  std::atomic<int64_t> ran{0};
  EXPECT_THROW(pool.ParallelFor(64, [&](int64_t) { ran++; }),
               std::runtime_error);
  EXPECT_EQ(FailPoint::FireCount("thread_pool.task"), 1);
  // The nth-hit fault fires exactly once; the pool stays usable.
  std::atomic<int64_t> after{0};
  pool.ParallelFor(64, [&](int64_t) { after++; });
  EXPECT_EQ(after.load(), 64);
  EXPECT_EQ(pool.QueueDepthForTesting(), 0u);
}

TEST(ThreadPoolTest, SeededProbabilityFaultsLeaveQueueClean) {
  ThreadPool pool(4);
  FailPoint::Config fault;
  fault.mode = FailPoint::Mode::kProbability;
  fault.probability = 0.05;
  fault.seed = 17;
  fault.status = Status::Unavailable("injected flaky task");
  ScopedFailPoint guard("thread_pool.task", fault);
  int threw = 0;
  for (int round = 0; round < 50; ++round) {
    try {
      pool.ParallelFor(32, [](int64_t) {});
    } catch (const std::runtime_error&) {
      threw++;
    }
    // A throwing region must still retire its queue entries.
    EXPECT_EQ(pool.QueueDepthForTesting(), 0u);
  }
  EXPECT_GT(threw, 0);
  // A region rethrows only the first fault, so fires >= throwing regions.
  EXPECT_GE(FailPoint::FireCount("thread_pool.task"),
            static_cast<int64_t>(threw));
}

TEST(ThreadPoolTest, TeardownAfterStalledConcurrentRegionsIsClean) {
  FailPoint::Config stall;
  stall.mode = FailPoint::Mode::kAlways;
  stall.status = Status::OK();
  stall.delay = std::chrono::milliseconds(2);
  ScopedFailPoint guard("thread_pool.task", stall);
  std::atomic<int64_t> ran{0};
  {
    ThreadPool pool(4);
    std::thread other(
        [&] { pool.ParallelFor(16, [&](int64_t) { ran++; }); });
    pool.ParallelFor(16, [&](int64_t) { ran++; });
    other.join();
    EXPECT_EQ(pool.QueueDepthForTesting(), 0u);
    // Pool destructor runs right after the delayed regions drain; a
    // worker still waking from the stall must not crash teardown.
  }
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace pinum
