// Workload-scale cache construction: WorkloadCacheBuilder correctness
// (PINUM vs classic agreement, single- vs multi-threaded determinism),
// cross-query access-cost-call deduplication accounting, and the batched
// advisor costing path.
#include <gtest/gtest.h>

#include "advisor/candidate_generator.h"
#include "advisor/greedy_advisor.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "optimizer/optimizer.h"
#include "test_util.h"
#include "whatif/candidate_set.h"
#include "workload/cache_manager.h"

namespace pinum {
namespace {

class WorkloadCacheTest : public ::testing::Test {
 protected:
  // The MiniStar workload + candidates + build helper live in the
  // shared fixture (tests/test_util.h) — the reseal suite uses the same
  // setup. References keep the test bodies unchanged.
  WorkloadCacheTest()
      : mini_(fixture_.mini), queries_(fixture_.queries), set_(fixture_.set) {}

  WorkloadCacheResult Build(WorkloadCacheOptions opts) {
    return fixture_.Build(opts);
  }

  /// Random atomic configuration (at most one index per table).
  IndexConfig RandomAtomicConfig(const Query& q, Rng* rng) {
    return ::pinum::RandomAtomicConfig(q, set_, rng);
  }

  MiniWorkloadFixture fixture_;
  MiniStar& mini_;
  std::vector<Query>& queries_;
  CandidateSet& set_;
};

TEST_F(WorkloadCacheTest, PinumAndClassicAgreeOnConfigCosts) {
  // With NLJ disabled PINUM's exported plan set is provably complete, so
  // its derived cost equals a direct optimizer call on every config;
  // classic's per-IOC winners price the same configs never lower (its
  // plan set is a subset — the seed's pinum_test documents the same
  // relation).
  WorkloadCacheOptions popts;
  popts.mode = CacheBuildMode::kPinum;
  popts.num_threads = 1;
  popts.pinum.base_knobs.enable_nestloop = false;
  const WorkloadCacheResult pinum = Build(popts);

  WorkloadCacheOptions copts;
  copts.mode = CacheBuildMode::kClassic;
  copts.num_threads = 1;
  copts.inum.base_knobs.enable_nestloop = false;
  const WorkloadCacheResult classic = Build(copts);

  Rng rng(7);
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    for (int trial = 0; trial < 25; ++trial) {
      const IndexConfig config = RandomAtomicConfig(queries_[qi], &rng);
      const double p = pinum.caches[qi].Cost(config);
      const double c = classic.caches[qi].Cost(config);
      Catalog sub = set_.Subset(config);
      Optimizer opt(&sub, &mini_.db.stats());
      PlannerKnobs knobs;
      knobs.enable_nestloop = false;
      auto direct = opt.Optimize(queries_[qi], knobs);
      ASSERT_TRUE(direct.ok());
      EXPECT_NEAR(p, direct->best->cost.total,
                  direct->best->cost.total * 1e-9)
          << "query " << qi << " config size " << config.size();
      EXPECT_LE(p, c + 1e-6)
          << "query " << qi << " config size " << config.size();
    }
  }
}

TEST_F(WorkloadCacheTest, PinumNeverWorseThanClassicWithNlj) {
  // With NLJ, PINUM's plan set is a superset of what its extreme calls
  // would win individually; its derived cost never exceeds classic's.
  WorkloadCacheOptions popts;
  popts.num_threads = 1;
  const WorkloadCacheResult pinum = Build(popts);

  WorkloadCacheOptions copts;
  copts.mode = CacheBuildMode::kClassic;
  copts.num_threads = 1;
  const WorkloadCacheResult classic = Build(copts);

  Rng rng(11);
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    for (int trial = 0; trial < 25; ++trial) {
      const IndexConfig config = RandomAtomicConfig(queries_[qi], &rng);
      EXPECT_LE(pinum.caches[qi].Cost(config),
                classic.caches[qi].Cost(config) + 1e-6);
    }
  }
}

TEST_F(WorkloadCacheTest, ConcurrentBuildsAreDeterministic) {
  // Same workload, same options, 1 thread vs 4 threads: every cache must
  // price every configuration identically (sharing makes the *call
  // counts* scheduling-dependent, never the cache contents).
  for (const CacheBuildMode mode :
       {CacheBuildMode::kPinum, CacheBuildMode::kClassic}) {
    WorkloadCacheOptions serial;
    serial.mode = mode;
    serial.num_threads = 1;
    const WorkloadCacheResult a = Build(serial);

    WorkloadCacheOptions parallel = serial;
    parallel.num_threads = 4;
    const WorkloadCacheResult b = Build(parallel);

    ASSERT_EQ(a.caches.size(), b.caches.size());
    Rng rng(13);
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      EXPECT_EQ(a.caches[qi].NumPlans(), b.caches[qi].NumPlans());
      for (int trial = 0; trial < 40; ++trial) {
        const IndexConfig config = RandomAtomicConfig(queries_[qi], &rng);
        EXPECT_EQ(a.caches[qi].Cost(config), b.caches[qi].Cost(config))
            << "mode " << static_cast<int>(mode) << " query " << qi;
      }
    }
  }
}

TEST_F(WorkloadCacheTest, SharingDoesNotChangeCosts) {
  for (const CacheBuildMode mode :
       {CacheBuildMode::kPinum, CacheBuildMode::kClassic}) {
    WorkloadCacheOptions shared;
    shared.mode = mode;
    shared.num_threads = 1;
    shared.share_access_costs = true;
    const WorkloadCacheResult a = Build(shared);

    WorkloadCacheOptions unshared = shared;
    unshared.share_access_costs = false;
    const WorkloadCacheResult b = Build(unshared);

    Rng rng(17);
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      for (int trial = 0; trial < 40; ++trial) {
        const IndexConfig config = RandomAtomicConfig(queries_[qi], &rng);
        EXPECT_EQ(a.caches[qi].Cost(config), b.caches[qi].Cost(config))
            << "mode " << static_cast<int>(mode) << " query " << qi;
      }
    }
  }
}

TEST_F(WorkloadCacheTest, SharingPreservesBaseIndexCosts) {
  // Configurations may name real (base-catalog) indexes too. A table
  // none of whose candidate calls ran is served from the store's
  // fallback tier, which must carry the base-index options verbatim —
  // not just the heap cost (regression: the fallback once stripped
  // non-heap options, making shared and unshared classic builds price
  // base-index configs differently).
  MiniStar mini;
  const TableDef* d1_def = mini.db.catalog().FindTable(mini.d1);
  IndexDef base_idx = MakeWhatIfIndex("d1_id_real", *d1_def, {0}, 10'000);
  auto base_id = mini.db.catalog().AddIndex(base_idx);
  ASSERT_TRUE(base_id.ok());

  // One candidate, on fact only, so d1 never gets a candidate call and
  // the clone's d1 info must come from the fallback tier.
  const TableDef* fact_def = mini.db.catalog().FindTable(mini.fact);
  std::vector<IndexDef> cand_defs = {
      MakeWhatIfIndex("cand_fact_c1", *fact_def, {3}, 1'000'000)};
  auto set = MakeCandidateSet(mini.db.catalog(), cand_defs);
  ASSERT_TRUE(set.ok());

  std::vector<Query> repeated = {mini.JoinQuery(), mini.JoinQuery()};
  repeated[1].name = "mini_q_clone";

  WorkloadCacheOptions opts;
  opts.mode = CacheBuildMode::kClassic;
  opts.num_threads = 1;
  WorkloadCacheBuilder shared_b(&mini.db.catalog(), &*set, &mini.db.stats(),
                                opts);
  auto shared = shared_b.BuildAll(repeated);
  ASSERT_TRUE(shared.ok());
  // The clone's single candidate call must have been deduplicated.
  EXPECT_EQ(shared->per_query[1].access_calls_saved, 1);

  opts.share_access_costs = false;
  WorkloadCacheBuilder unshared_b(&mini.db.catalog(), &*set,
                                  &mini.db.stats(), opts);
  auto unshared = unshared_b.BuildAll(repeated);
  ASSERT_TRUE(unshared.ok());

  const std::vector<IndexConfig> configs = {
      {*base_id},
      {*base_id, set->candidate_ids[0]},
      {set->candidate_ids[0]},
  };
  for (size_t qi = 0; qi < repeated.size(); ++qi) {
    for (const IndexConfig& config : configs) {
      EXPECT_EQ(shared->caches[qi].Cost(config),
                unshared->caches[qi].Cost(config))
          << "query " << qi << " config size " << config.size();
    }
  }

  // Pin the invariant at the access table itself (stronger than Cost,
  // which can mask a missing entry when the affected plan loses the
  // min anyway): the clone's d1 entries — served from the fallback
  // tier — must match the unshared build's, including the base index's
  // probe and scan costs.
  const int d1_pos = repeated[1].PosOfTable(mini.d1);
  const ColumnRef d1_id{mini.d1, 0};
  const IndexConfig base_only = {*base_id};
  const AccessCostTable& shared_acc = shared->caches[1].access();
  const AccessCostTable& unshared_acc = unshared->caches[1].access();
  EXPECT_LT(unshared_acc.Probe(d1_pos, d1_id, base_only), kInfiniteCost);
  EXPECT_EQ(shared_acc.Probe(d1_pos, d1_id, base_only),
            unshared_acc.Probe(d1_pos, d1_id, base_only));
  EXPECT_EQ(shared_acc.Unordered(d1_pos, base_only),
            unshared_acc.Unordered(d1_pos, base_only));
  EXPECT_EQ(shared_acc.Ordered(d1_pos, d1_id, base_only),
            unshared_acc.Ordered(d1_pos, d1_id, base_only));
}

TEST_F(WorkloadCacheTest, SharedStoreDropsAccessCostCalls) {
  // Two queries with identical table footprints (renamed clones): the
  // second query's access costs must be served entirely from the store.
  std::vector<Query> repeated = {mini_.JoinQuery(), mini_.JoinQuery()};
  repeated[1].name = "mini_q_clone";

  // PINUM: one keep-all call for the first query, zero for the second.
  {
    WorkloadCacheOptions opts;
    opts.num_threads = 1;
    WorkloadCacheBuilder builder(&mini_.db.catalog(), &set_,
                                 &mini_.db.stats(), opts);
    auto result = builder.BuildAll(repeated);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->per_query[0].access_cost_calls, 1);
    EXPECT_EQ(result->per_query[0].access_calls_saved, 0);
    EXPECT_EQ(result->per_query[1].access_cost_calls, 0);
    EXPECT_EQ(result->per_query[1].access_calls_saved, 1);

    opts.share_access_costs = false;
    WorkloadCacheBuilder unshared(&mini_.db.catalog(), &set_,
                                  &mini_.db.stats(), opts);
    auto baseline = unshared.BuildAll(repeated);
    ASSERT_TRUE(baseline.ok());
    EXPECT_LT(result->totals.access_cost_calls,
              baseline->totals.access_cost_calls);
    // Plan-cache calls are per query and unaffected by sharing.
    EXPECT_EQ(result->totals.plan_cache_calls,
              baseline->totals.plan_cache_calls);
  }

  // Classic: one call per relevant candidate for the first query, all of
  // them shared for the second.
  {
    WorkloadCacheOptions opts;
    opts.mode = CacheBuildMode::kClassic;
    opts.num_threads = 1;
    WorkloadCacheBuilder builder(&mini_.db.catalog(), &set_,
                                 &mini_.db.stats(), opts);
    auto result = builder.BuildAll(repeated);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->per_query[0].access_cost_calls, 0);
    EXPECT_EQ(result->per_query[1].access_cost_calls, 0);
    EXPECT_EQ(result->per_query[1].access_calls_saved,
              result->per_query[0].access_cost_calls);
    EXPECT_GT(builder.store().hits(), 0);
  }
}

TEST_F(WorkloadCacheTest, BatchedAdvisorMatchesSerialAdvisor) {
  WorkloadCacheOptions opts;
  opts.num_threads = 1;
  const WorkloadCacheResult built = Build(opts);

  AdvisorOptions aopts;
  aopts.budget_bytes = 512LL * 1024 * 1024;
  // The InumCache overload seals internally; it must agree exactly with
  // batched pricing over the builder's own sealed vector.
  const AdvisorResult serial = RunGreedyAdvisor(built.caches, set_, aopts);

  ThreadPool pool(4);
  const WorkloadCostEvaluator evaluator(&built.sealed, &pool);
  const AdvisorResult batched = RunGreedyAdvisor(evaluator, set_, aopts);

  EXPECT_EQ(serial.chosen, batched.chosen);
  EXPECT_EQ(serial.workload_cost_before, batched.workload_cost_before);
  EXPECT_EQ(serial.workload_cost_after, batched.workload_cost_after);
  EXPECT_EQ(serial.evaluations, batched.evaluations);
  EXPECT_EQ(serial.total_size_bytes, batched.total_size_bytes);
}

TEST_F(WorkloadCacheTest, BuilderSealsEveryCacheIdentically) {
  // BuildAll returns both forms; every sealed cache must price every
  // configuration bit-identically to its build-time source.
  WorkloadCacheOptions opts;
  opts.num_threads = 4;
  const WorkloadCacheResult built = Build(opts);
  ASSERT_EQ(built.sealed.size(), built.caches.size());

  Rng rng(23);
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    EXPECT_EQ(built.sealed[qi].NumPlans() + built.sealed[qi].NumPlansPruned(),
              built.caches[qi].NumPlans());
    for (int trial = 0; trial < 40; ++trial) {
      const IndexConfig config = RandomAtomicConfig(queries_[qi], &rng);
      EXPECT_EQ(built.sealed[qi].Cost(config), built.caches[qi].Cost(config))
          << "query " << qi;
    }
  }
}

TEST(SharedAccessCostStoreTest, FallbackTierWriteOrdering) {
  // Regression: every fallback write used to be a first-wins emplace, so
  // a candidate-specific answer stored first permanently masked the
  // base-table answer for its signature. Pinned ordering: candidate
  // stores never touch the fallback tier, StoreFallback is first-wins
  // among equivalent base answers, and StoreTable's universe-visible
  // answer overwrites whatever came before.
  SharedAccessCostStore store;
  const std::string sig = "t1|n0,|f|j";

  auto info_with_heap_cost = [](double heap_total) {
    TableAccessInfo info;
    info.table = 1;
    info.pos = 0;
    ScanOption heap;
    heap.index = kInvalidIndexId;
    heap.cost = {0, heap_total};
    info.options.push_back(heap);
    return info;
  };

  // A candidate-specific answer (heap + one candidate index).
  TableAccessInfo cand_info = info_with_heap_cost(100);
  ScanOption cand_scan;
  cand_scan.index = 7;
  cand_scan.cost = {0, 10};
  cand_info.options.push_back(cand_scan);
  store.StoreCandidate(7, sig, cand_info);

  TableAccessInfo out;
  EXPECT_TRUE(store.LookupCandidate(7, sig, &out));
  EXPECT_FALSE(store.LookupFallback(sig, &out))
      << "candidate store seeded the fallback tier";

  // Base-only answers are first-wins among themselves...
  store.StoreFallback(sig, info_with_heap_cost(100));
  store.StoreFallback(sig, info_with_heap_cost(200));
  ASSERT_TRUE(store.LookupFallback(sig, &out));
  ASSERT_EQ(out.options.size(), 1u);
  EXPECT_EQ(out.options[0].cost.total, 100);

  // ...but the universe-visible StoreTable answer is authoritative.
  TableAccessInfo universe_info = info_with_heap_cost(100);
  ScanOption all_scan;
  all_scan.index = 9;
  all_scan.cost = {0, 5};
  universe_info.options.push_back(all_scan);
  store.StoreTable(sig, universe_info);
  ASSERT_TRUE(store.LookupFallback(sig, &out));
  ASSERT_EQ(out.options.size(), 2u);
  EXPECT_EQ(out.options[1].index, 9);
}

TEST_F(WorkloadCacheTest, BatchCostMatchesSingleCost) {
  WorkloadCacheOptions opts;
  opts.num_threads = 1;
  const WorkloadCacheResult built = Build(opts);

  ThreadPool pool(3);
  const WorkloadCostEvaluator parallel_eval(&built.sealed, &pool);
  const WorkloadCostEvaluator serial_eval(&built.sealed);

  Rng rng(19);
  std::vector<IndexConfig> configs;
  for (int i = 0; i < 64; ++i) {
    configs.push_back(RandomAtomicConfig(queries_[i % 2], &rng));
  }
  const std::vector<double> batched = parallel_eval.BatchCost(configs);
  ASSERT_EQ(batched.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(batched[i], serial_eval.Cost(configs[i])) << "config " << i;
  }
}

}  // namespace
}  // namespace pinum
