#include <gtest/gtest.h>

#include "query/query.h"
#include "test_util.h"

namespace pinum {
namespace {

TEST(QueryBuilderTest, BuildsValidQuery) {
  MiniStar mini;
  const Query q = mini.JoinQuery();
  EXPECT_EQ(q.tables.size(), 2u);
  EXPECT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.order_by.size(), 1u);
  EXPECT_EQ(q.PosOfTable(mini.fact), 0);
  EXPECT_EQ(q.PosOfTable(mini.d1), 1);
  EXPECT_EQ(q.PosOfTable(mini.d2), -1);
}

TEST(QueryBuilderTest, RejectsUnknownNames) {
  MiniStar mini;
  QueryBuilder qb(&mini.db.catalog());
  auto q = qb.From("nope").Select("fact", "c1").Build();
  EXPECT_FALSE(q.ok());
  QueryBuilder qb2(&mini.db.catalog());
  auto q2 = qb2.From("fact").Select("fact", "zzz").Build();
  EXPECT_FALSE(q2.ok());
}

TEST(QueryBuilderTest, RejectsEmptyFromOrSelect) {
  MiniStar mini;
  QueryBuilder qb(&mini.db.catalog());
  EXPECT_FALSE(qb.Build().ok());
  QueryBuilder qb2(&mini.db.catalog());
  EXPECT_FALSE(qb2.From("fact").Build().ok());
}

TEST(QueryBuilderTest, RejectsSelectOutsideFrom) {
  MiniStar mini;
  QueryBuilder qb(&mini.db.catalog());
  auto q = qb.From("fact").Select("d1", "c1").Build();
  EXPECT_FALSE(q.ok());
}

TEST(QueryBuilderTest, RejectsSelfJoinPredicate) {
  MiniStar mini;
  QueryBuilder qb(&mini.db.catalog());
  auto q = qb.From("fact")
               .Select("fact", "c1")
               .Join("fact", "c1", "fact", "c2")
               .Build();
  EXPECT_FALSE(q.ok());
}

TEST(QueryTest, NeededColumnsCoversAllClauses) {
  MiniStar mini;
  const Query q = mini.JoinQuery();
  // fact: c2 (select), c1 (filter), fk_d1 (join) -> columns 3, 4, 1.
  const auto fact_cols = q.NeededColumns(mini.fact);
  EXPECT_EQ(fact_cols.size(), 3u);
  // d1: c1 (select + order by), id (join) -> 2 columns.
  const auto d1_cols = q.NeededColumns(mini.d1);
  EXPECT_EQ(d1_cols.size(), 2u);
}

TEST(QueryTest, FiltersOnSplitsByTable) {
  MiniStar mini;
  const Query q = mini.JoinQuery();
  EXPECT_EQ(q.FiltersOn(mini.fact).size(), 1u);
  EXPECT_TRUE(q.FiltersOn(mini.d1).empty());
}

TEST(QueryTest, JoinPredicateHelpers) {
  MiniStar mini;
  const Query q = mini.JoinQuery();
  const JoinPredicate& j = q.joins[0];
  EXPECT_TRUE(j.Touches(mini.fact));
  EXPECT_TRUE(j.Touches(mini.d1));
  EXPECT_FALSE(j.Touches(mini.d2));
  EXPECT_EQ(j.SideOn(mini.fact).table, mini.fact);
  EXPECT_EQ(j.OtherSide(mini.fact).table, mini.d1);
}

TEST(QueryTest, ToSqlRendersAllClauses) {
  MiniStar mini;
  const Query q = mini.JoinQuery();
  const std::string sql = q.ToSql(mini.db.catalog());
  EXPECT_NE(sql.find("SELECT fact.c2, d1.c1"), std::string::npos);
  EXPECT_NE(sql.find("FROM fact, d1"), std::string::npos);
  EXPECT_NE(sql.find("fact.fk_d1 = d1.id"), std::string::npos);
  EXPECT_NE(sql.find("fact.c1 <="), std::string::npos);
  EXPECT_NE(sql.find("ORDER BY d1.c1"), std::string::npos);
}

TEST(QueryTest, ToSqlRendersAggregates) {
  MiniStar mini;
  QueryBuilder qb(&mini.db.catalog());
  auto q = qb.From("fact")
               .Select("fact", "c1")
               .Select("fact", "c2")
               .GroupBy("fact", "c1")
               .Aggregate(AggKind::kSum)
               .Build();
  ASSERT_TRUE(q.ok());
  const std::string sql = q->ToSql(mini.db.catalog());
  EXPECT_NE(sql.find("SUM(fact.c2)"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY fact.c1"), std::string::npos);
}

}  // namespace
}  // namespace pinum
