#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace pinum {
namespace {

TableDef SimpleTable(const std::string& name, int cols = 3) {
  TableDef t;
  t.name = name;
  for (int i = 0; i < cols; ++i) {
    t.columns.push_back({"c" + std::to_string(i), TypeId::kInt64});
  }
  return t;
}

TEST(CatalogTest, AddAndFindTable) {
  Catalog cat;
  auto id = cat.AddTable(SimpleTable("t1"));
  ASSERT_TRUE(id.ok());
  const TableDef* t = cat.FindTable(*id);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->name, "t1");
  EXPECT_EQ(cat.FindTableByName("t1")->id, *id);
  EXPECT_EQ(cat.FindTableByName("nope"), nullptr);
}

TEST(CatalogTest, RejectsDuplicateTableNames) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(SimpleTable("t")).ok());
  auto dup = cat.AddTable(SimpleTable("t"));
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, RejectsEmptyTables) {
  Catalog cat;
  TableDef empty;
  empty.name = "empty";
  EXPECT_EQ(cat.AddTable(empty).status().code(),
            StatusCode::kInvalidArgument);
  TableDef unnamed;
  unnamed.columns.push_back({"c", TypeId::kInt64});
  EXPECT_EQ(cat.AddTable(unnamed).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, AddIndexValidatesTableAndColumns) {
  Catalog cat;
  auto tid = cat.AddTable(SimpleTable("t"));
  ASSERT_TRUE(tid.ok());

  IndexDef bad_table;
  bad_table.name = "i0";
  bad_table.table = 99;
  bad_table.key_columns = {0};
  EXPECT_EQ(cat.AddIndex(bad_table).status().code(), StatusCode::kNotFound);

  IndexDef bad_col;
  bad_col.name = "i1";
  bad_col.table = *tid;
  bad_col.key_columns = {17};
  EXPECT_EQ(cat.AddIndex(bad_col).status().code(), StatusCode::kOutOfRange);

  IndexDef no_cols;
  no_cols.name = "i2";
  no_cols.table = *tid;
  EXPECT_EQ(cat.AddIndex(no_cols).status().code(),
            StatusCode::kInvalidArgument);

  IndexDef good;
  good.name = "i3";
  good.table = *tid;
  good.key_columns = {1, 2};
  auto iid = cat.AddIndex(good);
  ASSERT_TRUE(iid.ok());
  EXPECT_EQ(cat.FindIndex(*iid)->leading_column(), 1);
}

TEST(CatalogTest, DropIndexRemovesNameToo) {
  Catalog cat;
  auto tid = cat.AddTable(SimpleTable("t"));
  IndexDef idx;
  idx.name = "i";
  idx.table = *tid;
  idx.key_columns = {0};
  auto iid = cat.AddIndex(idx);
  ASSERT_TRUE(iid.ok());
  ASSERT_TRUE(cat.DropIndex(*iid).ok());
  EXPECT_EQ(cat.FindIndex(*iid), nullptr);
  EXPECT_EQ(cat.FindIndexByName("i"), nullptr);
  // Name can be reused after the drop.
  EXPECT_TRUE(cat.AddIndex(idx).ok());
  EXPECT_EQ(cat.DropIndex(12345).code(), StatusCode::kNotFound);
}

TEST(CatalogTest, IndexesOnTableFiltersByTable) {
  Catalog cat;
  auto t1 = cat.AddTable(SimpleTable("t1"));
  auto t2 = cat.AddTable(SimpleTable("t2"));
  for (int i = 0; i < 3; ++i) {
    IndexDef idx;
    idx.name = "i" + std::to_string(i);
    idx.table = i < 2 ? *t1 : *t2;
    idx.key_columns = {0};
    ASSERT_TRUE(cat.AddIndex(idx).ok());
  }
  EXPECT_EQ(cat.IndexesOnTable(*t1).size(), 2u);
  EXPECT_EQ(cat.IndexesOnTable(*t2).size(), 1u);
}

TEST(CatalogTest, CatalogIsCopyableValueType) {
  Catalog base;
  auto tid = base.AddTable(SimpleTable("t"));
  Catalog copy = base;
  IndexDef idx;
  idx.name = "only_in_copy";
  idx.table = *tid;
  idx.key_columns = {0};
  ASSERT_TRUE(copy.AddIndex(idx).ok());
  EXPECT_EQ(base.NumIndexes(), 0u);
  EXPECT_EQ(copy.NumIndexes(), 1u);
}

TEST(CatalogTest, ForeignKeysValidated) {
  Catalog cat;
  auto t1 = cat.AddTable(SimpleTable("t1"));
  auto t2 = cat.AddTable(SimpleTable("t2"));
  ForeignKey fk{*t1, 1, *t2, 0};
  EXPECT_TRUE(cat.AddForeignKey(fk).ok());
  ForeignKey bad{*t1, 1, 999, 0};
  EXPECT_EQ(cat.AddForeignKey(bad).code(), StatusCode::kNotFound);
  EXPECT_EQ(cat.foreign_keys().size(), 1u);
}

TEST(SchemaTest, TupleWidthIncludesOverheadAndAlignment) {
  TableDef t = SimpleTable("t", 3);  // 24 bytes of data
  EXPECT_EQ(t.TupleWidth(), 24 + PageLayout::kHeapTupleOverhead);
  TableDef odd;
  odd.name = "odd";
  odd.columns = {{"a", TypeId::kInt32}};  // 4 bytes -> MAXALIGN to 8
  EXPECT_EQ(odd.TupleWidth(), 8 + PageLayout::kHeapTupleOverhead);
}

TEST(SchemaTest, IndexCoverage) {
  TableDef t = SimpleTable("t", 5);
  IndexDef idx;
  idx.table = 0;
  idx.key_columns = {2, 0, 4};
  EXPECT_EQ(idx.leading_column(), 2);
  EXPECT_TRUE(idx.ContainsColumn(0));
  EXPECT_FALSE(idx.ContainsColumn(1));
  EXPECT_TRUE(idx.CoversColumns({0, 2}));
  EXPECT_FALSE(idx.CoversColumns({0, 1}));
  EXPECT_EQ(idx.EntryWidth(t), 24 + PageLayout::kIndexTupleOverhead);
}

TEST(SchemaTest, FindColumnByName) {
  TableDef t = SimpleTable("t", 3);
  EXPECT_EQ(t.FindColumn("c1"), 1);
  EXPECT_EQ(t.FindColumn("zzz"), -1);
}

}  // namespace
}  // namespace pinum
