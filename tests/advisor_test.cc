#include <gtest/gtest.h>

#include "advisor/candidate_generator.h"
#include "advisor/greedy_advisor.h"
#include "optimizer/path.h"
#include "optimizer/scan_builder.h"
#include "pinum/pinum_builder.h"
#include "test_util.h"
#include "whatif/candidate_set.h"
#include "whatif/whatif_index.h"

namespace pinum {
namespace {

class AdvisorTest : public ::testing::Test {
 protected:
  AdvisorTest() : mini_() {
    workload_ = {mini_.JoinQuery(), mini_.ThreeWayQuery()};
    CandidateOptions copt;
    candidates_ = GenerateCandidates(workload_, mini_.db.catalog(),
                                     mini_.db.stats(), copt);
    set_ = *MakeCandidateSet(mini_.db.catalog(), candidates_);
    for (const Query& q : workload_) {
      PinumBuildOptions opts;
      auto cache = BuildInumCachePinum(q, mini_.db.catalog(), set_,
                                       mini_.db.stats(), opts, nullptr);
      EXPECT_TRUE(cache.ok());
      caches_.push_back(std::move(*cache));
    }
  }

  MiniStar mini_;
  std::vector<Query> workload_;
  std::vector<IndexDef> candidates_;
  CandidateSet set_;
  std::vector<InumCache> caches_;
};

TEST_F(AdvisorTest, CandidatesCoverInterestingColumns) {
  EXPECT_GT(candidates_.size(), 5u);
  // Every candidate indexes a table referenced by the workload and has a
  // nonempty key.
  for (const auto& c : candidates_) {
    EXPECT_TRUE(c.hypothetical);
    EXPECT_FALSE(c.key_columns.empty());
    EXPECT_GT(c.leaf_pages, 0);
    bool referenced = false;
    for (const auto& q : workload_) {
      if (q.PosOfTable(c.table) >= 0) referenced = true;
    }
    EXPECT_TRUE(referenced);
  }
  // Covering candidates exist (multi-column keys).
  bool has_covering = false;
  for (const auto& c : candidates_) {
    if (c.key_columns.size() > 1) has_covering = true;
  }
  EXPECT_TRUE(has_covering);
}

TEST_F(AdvisorTest, CandidatesDeduplicated) {
  std::set<std::string> keys;
  for (const auto& c : candidates_) {
    std::string key = std::to_string(c.table);
    for (ColumnIdx k : c.key_columns) key += "," + std::to_string(k);
    EXPECT_TRUE(keys.insert(key).second) << "duplicate candidate " << key;
  }
}

TEST_F(AdvisorTest, MaxCandidatesRespected) {
  CandidateOptions capped;
  capped.max_candidates = 3;
  auto some = GenerateCandidates(workload_, mini_.db.catalog(),
                                 mini_.db.stats(), capped);
  EXPECT_LE(some.size(), 3u);
}

TEST_F(AdvisorTest, GreedyImprovesWorkloadCost) {
  AdvisorOptions opts;
  const AdvisorResult result = RunGreedyAdvisor(caches_, set_, opts);
  EXPECT_FALSE(result.chosen.empty());
  EXPECT_LT(result.workload_cost_after, result.workload_cost_before);
  EXPECT_GT(result.evaluations, 0);
}

TEST_F(AdvisorTest, StepsHaveNonIncreasingBenefit) {
  AdvisorOptions opts;
  const AdvisorResult result = RunGreedyAdvisor(caches_, set_, opts);
  for (size_t i = 1; i < result.steps.size(); ++i) {
    EXPECT_LE(result.steps[i].benefit, result.steps[i - 1].benefit + 1e-6);
  }
  // Steps' final costs are consistent with the overall result.
  if (!result.steps.empty()) {
    EXPECT_NEAR(result.steps.back().workload_cost_after,
                result.workload_cost_after, 1e-6);
  }
}

TEST_F(AdvisorTest, BudgetRespected) {
  AdvisorOptions tight;
  tight.budget_bytes = 2 * 1024 * 1024;  // 2 MB
  const AdvisorResult result = RunGreedyAdvisor(caches_, set_, tight);
  EXPECT_LE(result.total_size_bytes, tight.budget_bytes);
  int64_t recomputed = 0;
  for (IndexId id : result.chosen) {
    recomputed += IndexSizeBytes(*set_.universe.FindIndex(id));
  }
  EXPECT_EQ(recomputed, result.total_size_bytes);
}

TEST_F(AdvisorTest, ZeroBudgetChoosesNothing) {
  AdvisorOptions zero;
  zero.budget_bytes = 0;
  const AdvisorResult result = RunGreedyAdvisor(caches_, set_, zero);
  EXPECT_TRUE(result.chosen.empty());
  EXPECT_EQ(result.workload_cost_after, result.workload_cost_before);
}

TEST_F(AdvisorTest, MaxIndexesCapsSelection) {
  AdvisorOptions capped;
  capped.max_indexes = 1;
  const AdvisorResult result = RunGreedyAdvisor(caches_, set_, capped);
  EXPECT_LE(result.chosen.size(), 1u);
}

TEST_F(AdvisorTest, LargerBudgetNeverHurts) {
  AdvisorOptions small;
  small.budget_bytes = 4 * 1024 * 1024;
  AdvisorOptions large;
  large.budget_bytes = 4LL * 1024 * 1024 * 1024;
  const AdvisorResult r_small = RunGreedyAdvisor(caches_, set_, small);
  const AdvisorResult r_large = RunGreedyAdvisor(caches_, set_, large);
  EXPECT_LE(r_large.workload_cost_after, r_small.workload_cost_after + 1e-6);
}

TEST_F(AdvisorTest, DeltaAndBatchedPathsReturnIdenticalResults) {
  // The delta path (pinned per-query contexts + posting overlays) and
  // the PR-2 batched path must agree on every field, bit for bit,
  // across budgets tight enough to trigger the permanent drop of
  // over-budget candidates mid-run.
  for (int64_t budget :
       {int64_t{0}, int64_t{2} * 1024 * 1024, int64_t{64} * 1024 * 1024,
        int64_t{4} * 1024 * 1024 * 1024}) {
    AdvisorOptions batched;
    batched.budget_bytes = budget;
    batched.cost_path = AdvisorCostPath::kBatched;
    AdvisorOptions delta = batched;
    delta.cost_path = AdvisorCostPath::kDelta;
    const AdvisorResult b = RunGreedyAdvisor(caches_, set_, batched);
    const AdvisorResult d = RunGreedyAdvisor(caches_, set_, delta);
    SCOPED_TRACE("budget " + std::to_string(budget));
    ExpectSameAdvisorResult(b, d, /*same_cost_path=*/false);
  }
}

TEST_F(AdvisorTest, EvaluationCountersSplitConfigsPricedFromFullWork) {
  // Regression: the delta path used to report sweep_ids.size() as if
  // every extra were a full configuration evaluation. The split pins
  // both semantics: `evaluations` counts configurations priced (each an
  // optimizer call avoided — path-independent), `full_evaluations`
  // counts configurations actually resolved through the full pricing
  // path (the delta path's sweeps are O(postings) overlays, so only the
  // per-iteration pinned base counts there).
  AdvisorOptions delta;  // default kDelta
  AdvisorOptions batched;
  batched.cost_path = AdvisorCostPath::kBatched;
  const AdvisorResult d = RunGreedyAdvisor(caches_, set_, delta);
  const AdvisorResult b = RunGreedyAdvisor(caches_, set_, batched);
  ASSERT_FALSE(d.chosen.empty());

  // Configurations priced: path-independent, and exactly one initial
  // Cost plus one per swept candidate. The default budget never drops a
  // candidate mid-run, so sweep i prices (num_candidates - i) survivors
  // and there are steps + 1 sweeps (the last finds nothing above the
  // floor).
  EXPECT_EQ(d.evaluations, b.evaluations);
  const int64_t n = static_cast<int64_t>(set_.candidate_ids.size());
  const int64_t sweeps = static_cast<int64_t>(d.steps.size()) + 1;
  int64_t expected_priced = 1;
  for (int64_t i = 0; i < sweeps; ++i) expected_priced += n - i;
  EXPECT_EQ(d.evaluations, expected_priced);

  // Full-path work: the batched path pays one full resolution per
  // priced configuration; the delta path pays the initial Cost plus one
  // pinned base per sweep and nothing else.
  EXPECT_EQ(b.full_evaluations, b.evaluations);
  EXPECT_EQ(d.full_evaluations, 1 + sweeps);
  EXPECT_LT(d.full_evaluations, d.evaluations);
}

TEST_F(AdvisorTest, AllOutOfUniverseExtrasPriceAsBase) {
  // Regression sweep for the max_id == -1 edge: when every extra is
  // negative (or there are none), there is nothing to overlay — every
  // row must come back as exactly Cost(base), the call must leave the
  // pinned contexts coherent, and the next real sweep must reuse them
  // warm with unchanged bits.
  std::vector<SealedCache> sealed;
  for (const InumCache& cache : caches_) {
    sealed.push_back(SealedCache::Seal(cache, set_.NumIndexIds()));
  }
  const WorkloadCostEvaluator evaluator(&sealed);
  WorkloadCostEvaluator::EvalScratch scratch;

  IndexConfig base;
  base.push_back(set_.candidate_ids[0]);
  const double base_cost = evaluator.Cost(base);

  const std::vector<IndexId> bogus = {kInvalidIndexId, -2, -7};
  const std::vector<double> all_negative =
      evaluator.BatchCostWithExtras(base, bogus, &scratch);
  ASSERT_EQ(all_negative.size(), bogus.size());
  for (size_t e = 0; e < all_negative.size(); ++e) {
    EXPECT_EQ(all_negative[e], base_cost) << "extra " << e;
  }

  const std::vector<double> none =
      evaluator.BatchCostWithExtras(base, {}, &scratch);
  EXPECT_TRUE(none.empty());

  // The empty sweeps above still pinned/extended contexts: a real sweep
  // on a base grown by one id must take the extend fast path and match
  // the from-scratch batch bit for bit.
  IndexConfig grown = base;
  grown.push_back(set_.candidate_ids[1]);
  const std::vector<double>& real =
      evaluator.BatchCostWithExtras(grown, set_.candidate_ids, &scratch);
  std::vector<IndexConfig> configs;
  for (IndexId id : set_.candidate_ids) {
    IndexConfig config = grown;
    config.push_back(id);
    configs.push_back(std::move(config));
  }
  const std::vector<double> expected = evaluator.BatchCost(configs);
  ASSERT_EQ(real.size(), expected.size());
  for (size_t e = 0; e < expected.size(); ++e) {
    EXPECT_EQ(real[e], expected[e]) << "extra " << e;
  }
}

TEST(AdvisorStoppingRuleTest, RelativeRuleStaysRelativeBelowUnitCost) {
  // Regression: the stopping rule used to scale by
  // max(1.0, workload_cost_before), silently turning the threshold
  // absolute for workloads whose total cost sits below 1.0 — a winner
  // worth 6e-7 on a 0.5-cost workload (relative benefit 1.2e-6, above
  // the 1e-6 default) was dropped. Hand-build such a workload: one
  // seq-scan plan costing 0.5, one candidate shaving 6e-7 off.
  MiniStar mini;
  const IndexDef def = MakeWhatIfIndex(
      "tiny_cand", *mini.db.catalog().FindTable(mini.fact), {3}, 100.0);
  CandidateSet set = *MakeCandidateSet(mini.db.catalog(), {def});
  const IndexId cand = set.candidate_ids[0];

  InumCache cache;
  Path plan;
  plan.kind = PathKind::kSeqScan;
  plan.table_pos = 0;
  plan.cost = {0, 0.5};
  LeafSlot slot;
  slot.table_pos = 0;
  slot.req = LeafReqKind::kUnordered;
  slot.unit_cost = 0.4;
  plan.leaves = {slot};
  cache.AddPlan(plan, mini.db.catalog());
  TableAccessInfo info;
  info.pos = 0;
  info.table = mini.fact;
  ScanOption seq;
  seq.index = kInvalidIndexId;
  seq.cost = {0, 0.4};
  info.options.push_back(seq);
  ScanOption idx;
  idx.index = cand;
  idx.cost = {0, 0.4 - 6e-7};
  info.options.push_back(idx);
  cache.mutable_access()->Absorb(info);

  std::vector<SealedCache> sealed;
  sealed.push_back(SealedCache::Seal(cache, set.NumIndexIds()));

  AdvisorOptions opts;  // min_relative_benefit = 1e-6, floor disabled
  const AdvisorResult kept = RunGreedyAdvisor(sealed, set, opts);
  ASSERT_LT(kept.workload_cost_before, 1.0);
  EXPECT_EQ(kept.chosen, std::vector<IndexId>{cand})
      << "a benefit above min_relative_benefit * cost_before must be kept "
         "even when cost_before < 1.0";

  // The documented absolute floor reproduces the old cutoff on demand.
  AdvisorOptions absolute = opts;
  absolute.min_absolute_benefit = 1e-6;
  const AdvisorResult dropped = RunGreedyAdvisor(sealed, set, absolute);
  EXPECT_TRUE(dropped.chosen.empty());
  EXPECT_EQ(dropped.workload_cost_after, dropped.workload_cost_before);
}

TEST_F(AdvisorTest, BatchCostWithExtrasMatchesBatchCost) {
  // The evaluator's delta batch must price base + {extra} exactly like
  // the from-scratch batch, including extras already in the base and
  // ids outside the universe, and context reuse across calls (same
  // base, then base grown by one) must not change anything.
  std::vector<SealedCache> sealed;
  for (const InumCache& cache : caches_) {
    sealed.push_back(SealedCache::Seal(cache, set_.NumIndexIds()));
  }
  const WorkloadCostEvaluator evaluator(&sealed);
  WorkloadCostEvaluator::EvalScratch scratch;

  std::vector<IndexId> extras = set_.candidate_ids;
  extras.push_back(set_.NumIndexIds() + 7);
  extras.push_back(kInvalidIndexId);

  IndexConfig base;
  for (int round = 0; round < 3; ++round) {
    std::vector<IndexConfig> configs;
    for (IndexId extra : extras) {
      IndexConfig config = base;
      config.push_back(extra);
      configs.push_back(std::move(config));
    }
    const std::vector<double> expected = evaluator.BatchCost(configs);
    // Twice with the same scratch: first call prepares (round 0) or
    // extends (later rounds), second reuses the pinned contexts.
    for (int pass = 0; pass < 2; ++pass) {
      const std::vector<double>& got =
          evaluator.BatchCostWithExtras(base, extras, &scratch);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t e = 0; e < expected.size(); ++e) {
        EXPECT_EQ(got[e], expected[e])
            << "round " << round << " pass " << pass << " extra " << e;
      }
    }
    base.push_back(set_.candidate_ids[round]);  // next round extends
  }
}

}  // namespace
}  // namespace pinum
