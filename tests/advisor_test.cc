#include <gtest/gtest.h>

#include "advisor/candidate_generator.h"
#include "advisor/greedy_advisor.h"
#include "pinum/pinum_builder.h"
#include "test_util.h"
#include "whatif/candidate_set.h"

namespace pinum {
namespace {

class AdvisorTest : public ::testing::Test {
 protected:
  AdvisorTest() : mini_() {
    workload_ = {mini_.JoinQuery(), mini_.ThreeWayQuery()};
    CandidateOptions copt;
    candidates_ = GenerateCandidates(workload_, mini_.db.catalog(),
                                     mini_.db.stats(), copt);
    set_ = *MakeCandidateSet(mini_.db.catalog(), candidates_);
    for (const Query& q : workload_) {
      PinumBuildOptions opts;
      auto cache = BuildInumCachePinum(q, mini_.db.catalog(), set_,
                                       mini_.db.stats(), opts, nullptr);
      EXPECT_TRUE(cache.ok());
      caches_.push_back(std::move(*cache));
    }
  }

  MiniStar mini_;
  std::vector<Query> workload_;
  std::vector<IndexDef> candidates_;
  CandidateSet set_;
  std::vector<InumCache> caches_;
};

TEST_F(AdvisorTest, CandidatesCoverInterestingColumns) {
  EXPECT_GT(candidates_.size(), 5u);
  // Every candidate indexes a table referenced by the workload and has a
  // nonempty key.
  for (const auto& c : candidates_) {
    EXPECT_TRUE(c.hypothetical);
    EXPECT_FALSE(c.key_columns.empty());
    EXPECT_GT(c.leaf_pages, 0);
    bool referenced = false;
    for (const auto& q : workload_) {
      if (q.PosOfTable(c.table) >= 0) referenced = true;
    }
    EXPECT_TRUE(referenced);
  }
  // Covering candidates exist (multi-column keys).
  bool has_covering = false;
  for (const auto& c : candidates_) {
    if (c.key_columns.size() > 1) has_covering = true;
  }
  EXPECT_TRUE(has_covering);
}

TEST_F(AdvisorTest, CandidatesDeduplicated) {
  std::set<std::string> keys;
  for (const auto& c : candidates_) {
    std::string key = std::to_string(c.table);
    for (ColumnIdx k : c.key_columns) key += "," + std::to_string(k);
    EXPECT_TRUE(keys.insert(key).second) << "duplicate candidate " << key;
  }
}

TEST_F(AdvisorTest, MaxCandidatesRespected) {
  CandidateOptions capped;
  capped.max_candidates = 3;
  auto some = GenerateCandidates(workload_, mini_.db.catalog(),
                                 mini_.db.stats(), capped);
  EXPECT_LE(some.size(), 3u);
}

TEST_F(AdvisorTest, GreedyImprovesWorkloadCost) {
  AdvisorOptions opts;
  const AdvisorResult result = RunGreedyAdvisor(caches_, set_, opts);
  EXPECT_FALSE(result.chosen.empty());
  EXPECT_LT(result.workload_cost_after, result.workload_cost_before);
  EXPECT_GT(result.evaluations, 0);
}

TEST_F(AdvisorTest, StepsHaveNonIncreasingBenefit) {
  AdvisorOptions opts;
  const AdvisorResult result = RunGreedyAdvisor(caches_, set_, opts);
  for (size_t i = 1; i < result.steps.size(); ++i) {
    EXPECT_LE(result.steps[i].benefit, result.steps[i - 1].benefit + 1e-6);
  }
  // Steps' final costs are consistent with the overall result.
  if (!result.steps.empty()) {
    EXPECT_NEAR(result.steps.back().workload_cost_after,
                result.workload_cost_after, 1e-6);
  }
}

TEST_F(AdvisorTest, BudgetRespected) {
  AdvisorOptions tight;
  tight.budget_bytes = 2 * 1024 * 1024;  // 2 MB
  const AdvisorResult result = RunGreedyAdvisor(caches_, set_, tight);
  EXPECT_LE(result.total_size_bytes, tight.budget_bytes);
  int64_t recomputed = 0;
  for (IndexId id : result.chosen) {
    recomputed += IndexSizeBytes(*set_.universe.FindIndex(id));
  }
  EXPECT_EQ(recomputed, result.total_size_bytes);
}

TEST_F(AdvisorTest, ZeroBudgetChoosesNothing) {
  AdvisorOptions zero;
  zero.budget_bytes = 0;
  const AdvisorResult result = RunGreedyAdvisor(caches_, set_, zero);
  EXPECT_TRUE(result.chosen.empty());
  EXPECT_EQ(result.workload_cost_after, result.workload_cost_before);
}

TEST_F(AdvisorTest, MaxIndexesCapsSelection) {
  AdvisorOptions capped;
  capped.max_indexes = 1;
  const AdvisorResult result = RunGreedyAdvisor(caches_, set_, capped);
  EXPECT_LE(result.chosen.size(), 1u);
}

TEST_F(AdvisorTest, LargerBudgetNeverHurts) {
  AdvisorOptions small;
  small.budget_bytes = 4 * 1024 * 1024;
  AdvisorOptions large;
  large.budget_bytes = 4LL * 1024 * 1024 * 1024;
  const AdvisorResult r_small = RunGreedyAdvisor(caches_, set_, small);
  const AdvisorResult r_large = RunGreedyAdvisor(caches_, set_, large);
  EXPECT_LE(r_large.workload_cost_after, r_small.workload_cost_after + 1e-6);
}

TEST_F(AdvisorTest, DeltaAndBatchedPathsReturnIdenticalResults) {
  // The delta path (pinned per-query contexts + posting overlays) and
  // the PR-2 batched path must agree on every field, bit for bit,
  // across budgets tight enough to trigger the permanent drop of
  // over-budget candidates mid-run.
  for (int64_t budget :
       {int64_t{0}, int64_t{2} * 1024 * 1024, int64_t{64} * 1024 * 1024,
        int64_t{4} * 1024 * 1024 * 1024}) {
    AdvisorOptions batched;
    batched.budget_bytes = budget;
    batched.cost_path = AdvisorCostPath::kBatched;
    AdvisorOptions delta = batched;
    delta.cost_path = AdvisorCostPath::kDelta;
    const AdvisorResult b = RunGreedyAdvisor(caches_, set_, batched);
    const AdvisorResult d = RunGreedyAdvisor(caches_, set_, delta);
    SCOPED_TRACE("budget " + std::to_string(budget));
    ExpectSameAdvisorResult(b, d);
  }
}

TEST_F(AdvisorTest, BatchCostWithExtrasMatchesBatchCost) {
  // The evaluator's delta batch must price base + {extra} exactly like
  // the from-scratch batch, including extras already in the base and
  // ids outside the universe, and context reuse across calls (same
  // base, then base grown by one) must not change anything.
  std::vector<SealedCache> sealed;
  for (const InumCache& cache : caches_) {
    sealed.push_back(SealedCache::Seal(cache, set_.NumIndexIds()));
  }
  const WorkloadCostEvaluator evaluator(&sealed);
  WorkloadCostEvaluator::EvalScratch scratch;

  std::vector<IndexId> extras = set_.candidate_ids;
  extras.push_back(set_.NumIndexIds() + 7);
  extras.push_back(kInvalidIndexId);

  IndexConfig base;
  for (int round = 0; round < 3; ++round) {
    std::vector<IndexConfig> configs;
    for (IndexId extra : extras) {
      IndexConfig config = base;
      config.push_back(extra);
      configs.push_back(std::move(config));
    }
    const std::vector<double> expected = evaluator.BatchCost(configs);
    // Twice with the same scratch: first call prepares (round 0) or
    // extends (later rounds), second reuses the pinned contexts.
    for (int pass = 0; pass < 2; ++pass) {
      const std::vector<double>& got =
          evaluator.BatchCostWithExtras(base, extras, &scratch);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t e = 0; e < expected.size(); ++e) {
        EXPECT_EQ(got[e], expected[e])
            << "round " << round << " pass " << pass << " extra " << e;
      }
    }
    base.push_back(set_.candidate_ids[round]);  // next round extends
  }
}

}  // namespace
}  // namespace pinum
