#include <gtest/gtest.h>

#include "advisor/candidate_generator.h"
#include "common/rng.h"
#include "inum/inum_builder.h"
#include "optimizer/optimizer.h"
#include "pinum/pinum_builder.h"
#include "test_util.h"
#include "whatif/candidate_set.h"

namespace pinum {
namespace {

class PinumTest : public ::testing::Test {
 protected:
  PinumTest() : mini_() {
    CandidateOptions copt;
    auto cands =
        GenerateCandidates({mini_.JoinQuery(), mini_.ThreeWayQuery()},
                           mini_.db.catalog(), mini_.db.stats(), copt);
    set_ = *MakeCandidateSet(mini_.db.catalog(), cands);
  }

  InumCache BuildPinum(const Query& q, PinumBuildStats* stats = nullptr,
                       PinumBuildOptions opts = PinumBuildOptions{}) {
    auto cache = BuildInumCachePinum(q, mini_.db.catalog(), set_,
                                     mini_.db.stats(), opts, stats);
    EXPECT_TRUE(cache.ok()) << cache.status().ToString();
    return *cache;
  }

  /// Random atomic configuration (at most one index per table).
  IndexConfig RandomAtomicConfig(const Query& q, Rng* rng) {
    return ::pinum::RandomAtomicConfig(q, set_, rng);
  }

  MiniStar mini_;
  CandidateSet set_;
};

TEST_F(PinumTest, UsesConstantNumberOfOptimizerCalls) {
  PinumBuildStats stats;
  BuildPinum(mini_.ThreeWayQuery(), &stats);
  // 1 hooked plan call + 2 NLJ extremes + 2 probe-sweep calls (one per
  // join) + 1 access-cost call — independent of the IOC count: fact has
  // interesting orders {fk_d1, fk_d2}, d1 {id}, d2 {id, c2}, so
  // (1+2)(1+1)(1+2) = 18 IOCs.
  EXPECT_EQ(stats.plan_cache_calls, 5);
  EXPECT_EQ(stats.access_cost_calls, 1);
  EXPECT_EQ(stats.iocs_total, 18u);
  EXPECT_GT(stats.plans_cached, 0u);
}

TEST_F(PinumTest, CostModelExactWithoutNestedLoops) {
  // With NLJ disabled the exported per-IOC plan set is provably complete:
  // the derived cost must equal a direct optimizer call for any config.
  const Query q = mini_.ThreeWayQuery();
  PinumBuildOptions opts;
  opts.base_knobs.enable_nestloop = false;
  InumCache cache = BuildPinum(q, nullptr, opts);
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const IndexConfig config = RandomAtomicConfig(q, &rng);
    Catalog sub = set_.Subset(config);
    Optimizer opt(&sub, &mini_.db.stats());
    PlannerKnobs knobs;
    knobs.enable_nestloop = false;
    auto direct = opt.Optimize(q, knobs);
    ASSERT_TRUE(direct.ok());
    EXPECT_NEAR(cache.Cost(config), direct->best->cost.total,
                direct->best->cost.total * 1e-9)
        << "config size " << config.size();
  }
}

TEST_F(PinumTest, CostModelNeverUnderestimatesWithNlj) {
  // With NLJ the cache holds plans from two extreme calls; the derived
  // cost is an upper bound on the optimizer's (it prices real plans) and
  // is close in practice (Section VI-C).
  const Query q = mini_.JoinQuery();
  InumCache cache = BuildPinum(q);
  Rng rng(29);
  for (int trial = 0; trial < 30; ++trial) {
    const IndexConfig config = RandomAtomicConfig(q, &rng);
    Catalog sub = set_.Subset(config);
    Optimizer opt(&sub, &mini_.db.stats());
    auto direct = opt.Optimize(q, PlannerKnobs{});
    ASSERT_TRUE(direct.ok());
    EXPECT_GE(cache.Cost(config),
              direct->best->cost.total * (1 - 1e-9));
  }
}

TEST_F(PinumTest, MatchesClassicInumOnSharedConfigs) {
  // Both caches price from the same access-cost math; PINUM's plan set is
  // a superset, so its derived cost is never higher.
  const Query q = mini_.ThreeWayQuery();
  InumCache pinum_cache = BuildPinum(q);
  InumBuildOptions iopts;
  InumBuildStats istats;
  auto classic = BuildInumCacheClassic(q, mini_.db.catalog(), set_,
                                       mini_.db.stats(), iopts, &istats);
  ASSERT_TRUE(classic.ok());
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const IndexConfig config = RandomAtomicConfig(q, &rng);
    EXPECT_LE(pinum_cache.Cost(config), classic->Cost(config) + 1e-6);
  }
}

TEST_F(PinumTest, FewerCallsThanClassic) {
  PinumBuildStats pstats;
  BuildPinum(mini_.ThreeWayQuery(), &pstats);
  InumBuildOptions iopts;
  InumBuildStats istats;
  auto classic =
      BuildInumCacheClassic(mini_.ThreeWayQuery(), mini_.db.catalog(), set_,
                            mini_.db.stats(), iopts, &istats);
  ASSERT_TRUE(classic.ok());
  EXPECT_LT(pstats.plan_cache_calls + pstats.access_cost_calls,
            (istats.plan_cache_calls + istats.access_cost_calls) / 5);
}

TEST_F(PinumTest, NljCallCountKnob) {
  PinumBuildOptions opts;
  opts.nlj_extreme_calls = 0;
  PinumBuildStats stats0;
  InumCache cache0 = BuildPinum(mini_.JoinQuery(), &stats0, opts);
  EXPECT_EQ(stats0.plan_cache_calls, 1);
  for (const auto& plan : cache0.plans()) EXPECT_FALSE(plan.has_nlj);

  opts.nlj_extreme_calls = 2;
  PinumBuildStats stats2;
  InumCache cache2 = BuildPinum(mini_.JoinQuery(), &stats2, opts);
  EXPECT_EQ(stats2.plan_cache_calls, 3);
  EXPECT_GE(cache2.NumPlans(), cache0.NumPlans());

  // nlj_extreme_calls >= 3 adds one probe-sweep call per join predicate
  // (JoinQuery has one join).
  opts.nlj_extreme_calls = 3;
  PinumBuildStats stats3;
  InumCache cache3 = BuildPinum(mini_.JoinQuery(), &stats3, opts);
  EXPECT_EQ(stats3.plan_cache_calls, 4);
  EXPECT_GE(cache3.NumPlans(), cache2.NumPlans());
}

TEST_F(PinumTest, DominanceExportSmallerThanIocCount) {
  // The Section IV/V-D claim: the per-IOC plan set after dominance
  // pruning is much smaller than the IOC count.
  PinumBuildStats stats;
  BuildPinum(mini_.ThreeWayQuery(), &stats);
  EXPECT_LT(stats.plans_cached, stats.iocs_total);
}

TEST_F(PinumTest, NljExportAblationGrowsCache) {
  PinumBuildOptions normal;
  PinumBuildStats s1;
  InumCache c1 = BuildPinum(mini_.JoinQuery(), &s1, normal);
  PinumBuildOptions exported;
  exported.nlj_export_all = true;
  PinumBuildStats s2;
  InumCache c2 = BuildPinum(mini_.JoinQuery(), &s2, exported);
  EXPECT_GE(c2.NumPlans(), c1.NumPlans());
  // The bigger cache can only improve (lower) derived costs.
  Rng rng(37);
  for (int trial = 0; trial < 10; ++trial) {
    const IndexConfig config = RandomAtomicConfig(mini_.JoinQuery(), &rng);
    EXPECT_LE(c2.Cost(config), c1.Cost(config) + 1e-6);
  }
}

}  // namespace
}  // namespace pinum
