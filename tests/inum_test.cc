#include <gtest/gtest.h>

#include "advisor/candidate_generator.h"
#include "common/rng.h"
#include "inum/inum_builder.h"
#include "optimizer/optimizer.h"
#include "test_util.h"
#include "whatif/candidate_set.h"

namespace pinum {
namespace {

class InumTest : public ::testing::Test {
 protected:
  InumTest() : mini_() {
    CandidateOptions copt;
    auto cands =
        GenerateCandidates({mini_.JoinQuery(), mini_.ThreeWayQuery()},
                           mini_.db.catalog(), mini_.db.stats(), copt);
    set_ = *MakeCandidateSet(mini_.db.catalog(), cands);
  }

  InumCache BuildClassic(const Query& q, InumBuildStats* stats = nullptr) {
    InumBuildOptions opts;
    auto cache = BuildInumCacheClassic(q, mini_.db.catalog(), set_,
                                       mini_.db.stats(), opts, stats);
    EXPECT_TRUE(cache.ok()) << cache.status().ToString();
    return *cache;
  }

  MiniStar mini_;
  CandidateSet set_;
};

TEST_F(InumTest, ClassicBuildMakesOneCallPerIocAndVariant) {
  InumBuildStats stats;
  const Query q = mini_.JoinQuery();
  BuildClassic(q, &stats);
  // 6 IOCs x 2 (NLJ on/off).
  EXPECT_EQ(stats.iocs_enumerated, 6u);
  EXPECT_EQ(stats.plan_cache_calls, 12);
  EXPECT_GT(stats.access_cost_calls, 0);
  EXPECT_GT(stats.plans_cached, 0u);
}

TEST_F(InumTest, EmptyConfigCostMatchesOptimizerWithoutIndexes) {
  const Query q = mini_.JoinQuery();
  InumCache cache = BuildClassic(q);
  Optimizer opt(&mini_.db.catalog(), &mini_.db.stats());
  auto direct = opt.Optimize(q, PlannerKnobs{});
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR(cache.Cost({}), direct->best->cost.total,
              direct->best->cost.total * 1e-6);
}

TEST_F(InumTest, CostIsMonotoneInConfiguration) {
  // Adding an index can never increase the derived cost.
  const Query q = mini_.ThreeWayQuery();
  InumCache cache = BuildClassic(q);
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    IndexConfig config;
    for (IndexId id : set_.candidate_ids) {
      if (rng.Chance(0.3)) config.push_back(id);
    }
    const double base = cache.Cost(config);
    for (IndexId extra : set_.candidate_ids) {
      if (std::find(config.begin(), config.end(), extra) != config.end()) {
        continue;
      }
      IndexConfig bigger = config;
      bigger.push_back(extra);
      EXPECT_LE(cache.Cost(bigger), base + 1e-6);
    }
  }
}

TEST_F(InumTest, BestPlanAgreesWithCost) {
  const Query q = mini_.JoinQuery();
  InumCache cache = BuildClassic(q);
  IndexConfig config = set_.candidate_ids;
  const CachedPlan* best = cache.BestPlan(config);
  ASSERT_NE(best, nullptr);
  EXPECT_NEAR(cache.PlanCost(*best, config), cache.Cost(config), 1e-9);
}

TEST_F(InumTest, PlanRequirementKeysAreCanonical) {
  const Query q = mini_.ThreeWayQuery();
  InumCache cache = BuildClassic(q);
  std::set<std::string> keys;
  for (const auto& plan : cache.plans()) {
    EXPECT_TRUE(keys.insert(plan.RequirementKey()).second)
        << "duplicate requirement key in cache";
    // Slots sorted by table position.
    for (size_t i = 1; i < plan.slots.size(); ++i) {
      EXPECT_LT(plan.slots[i - 1].table_pos, plan.slots[i].table_pos);
    }
  }
}

TEST_F(InumTest, UnsatisfiableRequirementsPricedInfinite) {
  AccessCostTable table;
  TableAccessInfo info;
  info.pos = 0;
  info.table = 0;
  ScanOption seq;
  seq.index = kInvalidIndexId;
  seq.cost = {0, 100};
  seq.rows = 10;
  info.options.push_back(seq);
  table.Absorb(info);
  // No index in the (empty) config covers order c0.
  EXPECT_EQ(table.Ordered(0, {0, 0}, {}), kInfiniteCost);
  EXPECT_EQ(table.Probe(0, {0, 0}, {}), kInfiniteCost);
  EXPECT_EQ(table.Unordered(0, {}), 100);
  EXPECT_EQ(table.HeapCost(0), 100);
  // Out-of-range positions are infinite, not UB.
  EXPECT_EQ(table.Unordered(7, {}), kInfiniteCost);
}

TEST_F(InumTest, AccessTablePricesPerIndexVariants) {
  AccessCostTable table;
  TableAccessInfo info;
  info.pos = 0;
  info.table = 0;
  ScanOption seq;
  seq.index = kInvalidIndexId;
  seq.cost = {0, 1000};
  info.options.push_back(seq);
  ScanOption regular;
  regular.index = 5;
  regular.cost = {0, 400};
  regular.order = OrderSpec::Single({0, 2});
  info.options.push_back(regular);
  ScanOption index_only = regular;
  index_only.index_only = true;
  index_only.cost = {0, 150};
  info.options.push_back(index_only);
  ProbeOption probe;
  probe.index = 5;
  probe.column = {0, 2};
  probe.cost_per_probe = {0, 9};
  probe.rows_per_probe = 2;
  info.probes.push_back(probe);
  table.Absorb(info);

  EXPECT_EQ(table.Unordered(0, {5}), 150);   // cheapest variant
  EXPECT_EQ(table.Ordered(0, {0, 2}, {5}), 150);
  EXPECT_EQ(table.Ordered(0, {0, 3}, {5}), kInfiniteCost);  // wrong order
  EXPECT_EQ(table.Probe(0, {0, 2}, {5}), 9);
  EXPECT_EQ(table.Unordered(0, {}), 1000);   // config without the index
}

TEST_F(InumTest, AbsorbKeepsOrderedCostsPerOrderColumn) {
  // Regression: one index absorbed through two scan options with
  // *different* delivered orders used to keep the min ordered cost across
  // both while remembering only the last order column — advertising the
  // cheaper column's cost under the wrong column.
  AccessCostTable table;
  TableAccessInfo info;
  info.pos = 0;
  info.table = 0;
  ScanOption seq;
  seq.index = kInvalidIndexId;
  seq.cost = {0, 1000};
  info.options.push_back(seq);
  ScanOption forward;  // delivers order c2, cheap
  forward.index = 5;
  forward.cost = {0, 100};
  forward.order = OrderSpec::Single({0, 2});
  info.options.push_back(forward);
  ScanOption backward = forward;  // delivers order c3, expensive
  backward.cost = {0, 400};
  backward.order = OrderSpec::Single({0, 3});
  info.options.push_back(backward);
  table.Absorb(info);

  EXPECT_EQ(table.Ordered(0, {0, 2}, {5}), 100);
  EXPECT_EQ(table.Ordered(0, {0, 3}, {5}), 400);  // not 100
  EXPECT_EQ(table.Ordered(0, {0, 4}, {5}), kInfiniteCost);
  EXPECT_EQ(table.Unordered(0, {5}), 100);
}

TEST_F(InumTest, UniqueSignatureCountTracksReplacements) {
  // NumUniqueSignatures is memoized in AddPlan; replacement through a
  // requirement-key collision must keep the distinct count exact even
  // when the replacing plan has a different structure signature.
  const Query q = mini_.JoinQuery();
  InumCache cache = BuildClassic(q);
  std::set<std::string> expected;
  for (const auto& plan : cache.plans()) expected.insert(plan.signature);
  EXPECT_EQ(cache.NumUniqueSignatures(), expected.size());

  InumCache small;
  Path seq_plan;
  seq_plan.kind = PathKind::kSeqScan;
  seq_plan.table_pos = 0;
  seq_plan.cost = {0, 100};
  LeafSlot slot;
  slot.table_pos = 0;
  slot.req = LeafReqKind::kUnordered;
  slot.unit_cost = 40;
  seq_plan.leaves = {slot};
  small.AddPlan(seq_plan, mini_.db.catalog());
  EXPECT_EQ(small.NumUniqueSignatures(), 1u);
  // Same requirement key, cheaper internal cost, different signature:
  // replaces the plan and the old signature leaves the count.
  Path sorted_plan = seq_plan;
  sorted_plan.kind = PathKind::kSort;
  sorted_plan.outer = std::make_shared<Path>(seq_plan);
  sorted_plan.cost = {0, 80};
  small.AddPlan(sorted_plan, mini_.db.catalog());
  ASSERT_EQ(small.NumPlans(), 1u);
  EXPECT_EQ(small.NumUniqueSignatures(), 1u);
}

TEST_F(InumTest, CacheDedupKeepsCheaperInternalCost) {
  InumCache cache;
  Path plan;
  plan.kind = PathKind::kSeqScan;
  plan.cost = {0, 100};
  LeafSlot slot;
  slot.table_pos = 0;
  slot.req = LeafReqKind::kUnordered;
  slot.unit_cost = 40;
  plan.leaves = {slot};
  cache.AddPlan(plan, mini_.db.catalog());       // internal 60
  plan.cost = {0, 80};
  cache.AddPlan(plan, mini_.db.catalog());       // internal 40: replaces
  plan.cost = {0, 90};
  cache.AddPlan(plan, mini_.db.catalog());       // internal 50: ignored
  ASSERT_EQ(cache.NumPlans(), 1u);
  EXPECT_NEAR(cache.plans()[0].internal_cost, 40, 1e-9);
}

}  // namespace
}  // namespace pinum
