#include <gtest/gtest.h>

#include "workload/star_schema.h"

namespace pinum {
namespace {

TEST(StarSchemaTest, PaperLayout28Dimensions) {
  StarSchemaSpec spec;
  auto w = StarSchemaWorkload::Create(spec);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  // 1 fact + 8 level-1 + 20 level-2 = 29 tables.
  EXPECT_EQ(w->tables().size(), 29u);
  const TableDef* fact = w->db().catalog().FindTable(w->fact_table());
  ASSERT_NE(fact, nullptr);
  EXPECT_EQ(fact->name, "fact");
  // fact: id + 8 fks + 20 payload = 29 columns.
  EXPECT_EQ(fact->columns.size(), 29u);
  // Snowflake foreign keys: 8 (fact->L1) + 20 (L1->L2).
  EXPECT_EQ(w->db().catalog().foreign_keys().size(), 28u);
}

TEST(StarSchemaTest, TenQueriesWithConfiguredSizes) {
  StarSchemaSpec spec;
  auto w = StarSchemaWorkload::Create(spec);
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->queries().size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    const Query& q = w->queries()[i];
    EXPECT_EQ(static_cast<int>(q.tables.size()), spec.query_sizes[i])
        << q.name;
    // Connected via FK joins: n tables need n-1 join predicates.
    EXPECT_EQ(q.joins.size(), q.tables.size() - 1) << q.name;
    EXPECT_FALSE(q.select.empty()) << q.name;
    EXPECT_FALSE(q.order_by.empty()) << q.name;
    EXPECT_EQ(q.filters.size(),
              static_cast<size_t>(spec.filters_per_query))
        << q.name;
    // The fact table anchors every query.
    EXPECT_EQ(q.tables[0], w->fact_table()) << q.name;
  }
}

TEST(StarSchemaTest, FiltersHaveTargetSelectivity) {
  StarSchemaSpec spec;
  auto w = StarSchemaWorkload::Create(spec);
  ASSERT_TRUE(w.ok());
  for (const Query& q : w->queries()) {
    for (const auto& f : q.filters) {
      const ColumnStats* cs = w->db().stats().FindColumn(f.column);
      ASSERT_NE(cs, nullptr);
      const double sel = RestrictionSelectivity(*cs, f.op, f.constant);
      EXPECT_NEAR(sel, spec.filter_selectivity, 0.005) << q.name;
    }
  }
}

TEST(StarSchemaTest, SyntheticStatsMatchLogicalRows) {
  StarSchemaSpec spec;
  auto w = StarSchemaWorkload::Create(spec);
  ASSERT_TRUE(w.ok());
  for (TableId t : w->tables()) {
    const TableStats* stats = w->db().stats().Find(t);
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->row_count, w->LogicalRows(t));
    EXPECT_GE(stats->heap_pages, 1);
    // id column: unique, correlated (surrogate key).
    EXPECT_EQ(stats->columns[0].n_distinct, stats->row_count);
    EXPECT_EQ(stats->columns[0].correlation, 1.0);
  }
  // Fact is the large table.
  const TableStats* fact = w->db().stats().Find(w->fact_table());
  EXPECT_EQ(fact->row_count, 60'000'000);
}

TEST(StarSchemaTest, DeterministicForSameSeed) {
  StarSchemaSpec spec;
  auto w1 = StarSchemaWorkload::Create(spec);
  auto w2 = StarSchemaWorkload::Create(spec);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(w1->queries()[i].ToSql(w1->db().catalog()),
              w2->queries()[i].ToSql(w2->db().catalog()));
  }
}

TEST(StarSchemaTest, DifferentSeedsChangeQueries) {
  StarSchemaSpec s1, s2;
  s2.seed = 1234;
  auto w1 = StarSchemaWorkload::Create(s1);
  auto w2 = StarSchemaWorkload::Create(s2);
  int differ = 0;
  for (size_t i = 0; i < 10; ++i) {
    if (w1->queries()[i].ToSql(w1->db().catalog()) !=
        w2->queries()[i].ToSql(w2->db().catalog())) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 0);
}

TEST(StarSchemaTest, ScaleShrinksRowCounts) {
  StarSchemaSpec small;
  small.scale = 0.001;
  auto w = StarSchemaWorkload::Create(small);
  ASSERT_TRUE(w.ok());
  const TableStats* fact = w->db().stats().Find(w->fact_table());
  EXPECT_EQ(fact->row_count, 60'000);
}

TEST(StarSchemaTest, MaterializeGeneratesConsistentData) {
  StarSchemaSpec spec;
  spec.scale = 1.0;
  auto w = StarSchemaWorkload::Create(spec);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->Materialize(0.0002).ok());  // fact: 12k rows
  const TableData* fact = w->db().FindData(w->fact_table());
  ASSERT_NE(fact, nullptr);
  EXPECT_EQ(fact->NumRows(), 12'000);
  // FK values reference existing parent ids.
  const TableDef* def = w->db().catalog().FindTable(w->fact_table());
  for (size_t c = 0; c < def->columns.size(); ++c) {
    if (def->columns[c].name.rfind("fk_", 0) != 0) continue;
    const TableDef* parent = w->db().catalog().FindTableByName(
        def->columns[c].name.substr(3));
    const TableData* pdata = w->db().FindData(parent->id);
    for (int64_t r = 0; r < fact->NumRows(); r += 997) {
      const Value v = fact->at(r, static_cast<ColumnIdx>(c));
      EXPECT_GE(v, 0);
      EXPECT_LT(v, pdata->NumRows());
    }
  }
  // ANALYZE replaced synthetic stats with measured ones.
  const TableStats* stats = w->db().stats().Find(w->fact_table());
  EXPECT_EQ(stats->row_count, 12'000);
}

TEST(StarSchemaTest, GroupByFractionAddsAggregates) {
  StarSchemaSpec spec;
  spec.group_by_fraction = 1.0;
  auto w = StarSchemaWorkload::Create(spec);
  ASSERT_TRUE(w.ok());
  int with_group = 0;
  for (const Query& q : w->queries()) {
    if (!q.group_by.empty()) {
      ++with_group;
      EXPECT_EQ(q.aggregate, AggKind::kSum);
    }
  }
  EXPECT_GT(with_group, 5);
}

TEST(StarSchemaTest, InvalidSpecRejected) {
  StarSchemaSpec bad;
  bad.l1_children = {1, 2};  // size mismatch with num_l1 = 8
  auto w = StarSchemaWorkload::Create(bad);
  EXPECT_FALSE(w.ok());
}

}  // namespace
}  // namespace pinum
