#include <gtest/gtest.h>

#include "optimizer/cost_model.h"

namespace pinum {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModel model_;
};

TEST_F(CostModelTest, SeqScanLinearInPagesAndRows) {
  const Cost c1 = model_.SeqScan(1000, 100000, 1);
  const Cost c2 = model_.SeqScan(2000, 200000, 1);
  EXPECT_NEAR(c2.total, 2 * c1.total, 1e-9);
  EXPECT_EQ(c1.startup, 0);
  // More filter terms cost more CPU.
  EXPECT_GT(model_.SeqScan(1000, 100000, 3).total, c1.total);
}

TEST_F(CostModelTest, MackertLohmanCapsAtPages) {
  EXPECT_EQ(MackertLohmanPages(0, 100), 0);
  EXPECT_LE(MackertLohmanPages(1e9, 100), 100);
  // Few tuples over many pages: about one page per tuple.
  EXPECT_NEAR(MackertLohmanPages(10, 1e6), 10, 0.1);
}

TEST_F(CostModelTest, IndexScanCheaperWhenSelective) {
  const double leaf = 3000, heap = 10000, rows = 1e6;
  const Cost narrow =
      model_.IndexScan(leaf, 2, heap, 0.01, rows * 0.01, rows * 0.01, 0.0,
                       false, 0);
  const Cost wide = model_.IndexScan(leaf, 2, heap, 0.5, rows * 0.5,
                                     rows * 0.5, 0.0, false, 0);
  EXPECT_LT(narrow.total, wide.total);
}

TEST_F(CostModelTest, CorrelationReducesHeapIo) {
  const double leaf = 3000, heap = 10000, rows = 1e6;
  const Cost uncorrelated = model_.IndexScan(leaf, 2, heap, 0.1, rows * 0.1,
                                             rows * 0.1, 0.0, false, 0);
  const Cost correlated = model_.IndexScan(leaf, 2, heap, 0.1, rows * 0.1,
                                           rows * 0.1, 1.0, false, 0);
  EXPECT_LT(correlated.total, uncorrelated.total);
}

TEST_F(CostModelTest, IndexOnlyAvoidsHeapFetches) {
  const double leaf = 3000, heap = 10000, rows = 1e6;
  const Cost regular = model_.IndexScan(leaf, 2, heap, 0.1, rows * 0.1,
                                        rows * 0.1, 0.0, false, 0);
  const Cost index_only = model_.IndexScan(leaf, 2, heap, 0.1, rows * 0.1,
                                           rows * 0.1, 0.0, true, 0);
  EXPECT_LT(index_only.total, regular.total * 0.5);
}

TEST_F(CostModelTest, IndexScanBeatsSeqScanOnlyWhenSelective) {
  // The planner's pivotal trade-off: a selective range fits the index
  // scan; a full-table read favors the sequential scan.
  const double leaf = 3000, heap = 20000, rows = 1e6;
  const Cost seq = model_.SeqScan(heap, rows, 1);
  const Cost sel_idx = model_.IndexScan(leaf, 2, heap, 0.001, rows * 0.001,
                                        rows * 0.001, 0.0, false, 1);
  const Cost full_idx =
      model_.IndexScan(leaf, 2, heap, 1.0, rows, rows, 0.0, false, 1);
  EXPECT_LT(sel_idx.total, seq.total);
  EXPECT_GT(full_idx.total, seq.total);
}

TEST_F(CostModelTest, ProbeCheapRelativeToScan) {
  const Cost probe = model_.IndexProbe(2, 1, 2.0, false, 0);
  const Cost scan = model_.SeqScan(10000, 1e6, 0);
  EXPECT_LT(probe.total * 100, scan.total);
  // Index-only probes skip the heap fetches.
  const Cost io_probe = model_.IndexProbe(2, 1, 2.0, true, 0);
  EXPECT_LT(io_probe.total, probe.total);
}

TEST_F(CostModelTest, SortSuperlinearAndSpills) {
  const Cost small = model_.Sort(1000, 16);
  const Cost big = model_.Sort(1'000'000, 16);
  EXPECT_GT(big.total, 1000 * small.total / 2);
  // Startup dominates: a sort emits nothing until done.
  EXPECT_GT(small.startup, 0.9 * small.total - small.startup);

  // Spilling adds IO beyond work_mem.
  CostParams tight;
  tight.work_mem_bytes = 1024;
  CostModel tight_model(tight);
  EXPECT_GT(tight_model.Sort(1'000'000, 16).total,
            model_.Sort(1'000'000, 16).total);
}

TEST_F(CostModelTest, HashJoinBuildOnInner) {
  const Cost c = model_.HashJoin(1e6, 1000, 16, 16, 1e6);
  // Startup covers the build side only.
  EXPECT_LT(c.startup, c.total);
  // Spill when inner exceeds work_mem.
  const Cost spilled = model_.HashJoin(1e6, 1e7, 64, 16, 1e6);
  const Cost fits = model_.HashJoin(1e6, 1000, 64, 16, 1e6);
  EXPECT_GT(spilled.total - fits.total, 0);
}

TEST_F(CostModelTest, MergeJoinLinearInInputs) {
  const Cost c1 = model_.MergeJoin(1e5, 1e5, 1e5);
  const Cost c2 = model_.MergeJoin(2e5, 2e5, 2e5);
  EXPECT_NEAR(c2.total, 2 * c1.total, 1e-6);
}

TEST_F(CostModelTest, AggCosts) {
  const Cost hash = model_.HashAgg(1e6, 100, 1);
  const Cost group = model_.GroupAgg(1e6, 100, 1);
  // Hash agg pays up front; sorted agg streams.
  EXPECT_GT(hash.startup, 0);
  EXPECT_EQ(group.startup, 0);
  EXPECT_GT(model_.HashAgg(1e6, 100, 3).total, hash.total);
}

TEST_F(CostModelTest, MaterialRescanCheaperThanFirstPass) {
  const Cost mat = model_.Material(1e5, 16);
  const double rescan = model_.RescanMaterialCost(1e5, 16);
  EXPECT_LT(rescan, mat.total);
  EXPECT_GT(rescan, 0);
}

TEST_F(CostModelTest, DefaultParamsMatchPostgres) {
  CostParams p;
  EXPECT_EQ(p.seq_page_cost, 1.0);
  EXPECT_EQ(p.random_page_cost, 4.0);
  EXPECT_EQ(p.cpu_tuple_cost, 0.01);
  EXPECT_EQ(p.cpu_index_tuple_cost, 0.005);
  EXPECT_EQ(p.cpu_operator_cost, 0.0025);
}

}  // namespace
}  // namespace pinum
