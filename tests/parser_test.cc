#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"
#include "test_util.h"

namespace pinum {
namespace {

TEST(LexerTest, TokenizesAllKinds) {
  auto tokens = Tokenize("SELECT a.b, c <= 42 >= < > = ( ) -7");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdent, TokenKind::kIdent, TokenKind::kDot,
                TokenKind::kIdent, TokenKind::kComma, TokenKind::kIdent,
                TokenKind::kLe, TokenKind::kNumber, TokenKind::kGe,
                TokenKind::kLt, TokenKind::kGt, TokenKind::kEq,
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kNumber,
                TokenKind::kEnd}));
  EXPECT_EQ((*tokens)[7].number, 42);
  EXPECT_EQ((*tokens)[14].number, -7);
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("select #!").ok());
}

class ParserTest : public ::testing::Test {
 protected:
  MiniStar mini_;
};

TEST_F(ParserTest, ParsesSimpleSelect) {
  auto q = ParseSql("SELECT c1 FROM d1", mini_.db.catalog());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->tables.size(), 1u);
  EXPECT_EQ(q->select.size(), 1u);
}

TEST_F(ParserTest, ParsesJoinFilterOrder) {
  auto q = ParseSql(
      "SELECT fact.c2, d1.c1 FROM fact, d1 "
      "WHERE fact.fk_d1 = d1.id AND fact.c1 <= 10000 "
      "ORDER BY d1.c1 DESC",
      mini_.db.catalog());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->joins.size(), 1u);
  EXPECT_EQ(q->filters.size(), 1u);
  EXPECT_EQ(q->filters[0].op, CompareOp::kLe);
  EXPECT_EQ(q->filters[0].constant, 10000);
  ASSERT_EQ(q->order_by.size(), 1u);
  EXPECT_FALSE(q->order_by[0].ascending);
}

TEST_F(ParserTest, ParsesBetweenAsTwoFilters) {
  auto q = ParseSql("SELECT c1 FROM d1 WHERE c2 BETWEEN 5 AND 10",
                    mini_.db.catalog());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->filters.size(), 2u);
  EXPECT_EQ(q->filters[0].op, CompareOp::kGe);
  EXPECT_EQ(q->filters[0].constant, 5);
  EXPECT_EQ(q->filters[1].op, CompareOp::kLe);
  EXPECT_EQ(q->filters[1].constant, 10);
}

TEST_F(ParserTest, ParsesGroupByWithSum) {
  auto q = ParseSql(
      "SELECT d1.c1, SUM(d1.c2) FROM d1 GROUP BY d1.c1 ORDER BY d1.c1",
      mini_.db.catalog());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->aggregate, AggKind::kSum);
  EXPECT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->select.size(), 2u);
}

TEST_F(ParserTest, CaseInsensitiveKeywords) {
  auto q = ParseSql("select c1 from d1 where c2 >= 3 order by c1",
                    mini_.db.catalog());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->filters[0].op, CompareOp::kGe);
}

TEST_F(ParserTest, ResolvesUnqualifiedUnambiguousColumns) {
  auto q = ParseSql("SELECT fk_d1 FROM fact", mini_.db.catalog());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].table, mini_.fact);
}

TEST_F(ParserTest, RejectsAmbiguousColumns) {
  // c1 exists in both fact and d1.
  auto q = ParseSql("SELECT c1 FROM fact, d1 WHERE fact.fk_d1 = d1.id",
                    mini_.db.catalog());
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ParserTest, RejectsUnknownTableAndColumn) {
  EXPECT_EQ(ParseSql("SELECT c1 FROM nope", mini_.db.catalog())
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseSql("SELECT zzz FROM d1", mini_.db.catalog())
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(ParserTest, RejectsMalformedSql) {
  EXPECT_FALSE(ParseSql("SELECT FROM d1", mini_.db.catalog()).ok());
  EXPECT_FALSE(ParseSql("SELECT c1 d1", mini_.db.catalog()).ok());
  EXPECT_FALSE(ParseSql("SELECT c1 FROM d1 WHERE", mini_.db.catalog()).ok());
  EXPECT_FALSE(
      ParseSql("SELECT c1 FROM d1 WHERE c1 < d1.c2", mini_.db.catalog())
          .ok());  // non-equality column comparison
  EXPECT_FALSE(
      ParseSql("SELECT c1 FROM d1 trailing", mini_.db.catalog()).ok());
}

TEST_F(ParserTest, RoundTripsGeneratedSql) {
  const Query original = mini_.ThreeWayQuery();
  const std::string sql = original.ToSql(mini_.db.catalog());
  auto reparsed = ParseSql(sql, mini_.db.catalog());
  ASSERT_TRUE(reparsed.ok()) << sql << " -> " << reparsed.status().ToString();
  EXPECT_EQ(reparsed->tables, original.tables);
  EXPECT_EQ(reparsed->select.size(), original.select.size());
  EXPECT_EQ(reparsed->joins.size(), original.joins.size());
  EXPECT_EQ(reparsed->filters.size(), original.filters.size());
  EXPECT_EQ(reparsed->order_by.size(), original.order_by.size());
}

}  // namespace
}  // namespace pinum
