// RunSearchAdvisor: the anytime randomized search must (a) never return
// a configuration costlier than the greedy baseline it embeds as
// restart 0, (b) be a pure function of (caches, candidates, options) —
// same bits serial, pooled at any width, re-run, and from restored
// snapshots — and (c) prove its swap/backtracking moves actually escape
// a greedy trap (index-interaction effects a single sweep misses).
// Pruning via posting-overlap signatures is work-saving only: results
// with it on and off are compared field for field.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "advisor/search_advisor.h"
#include "common/thread_pool.h"
#include "optimizer/path.h"
#include "optimizer/scan_builder.h"
#include "test_util.h"
#include "whatif/candidate_set.h"
#include "whatif/whatif_index.h"
#include "workload/cache_manager.h"

namespace pinum {
namespace {

/// Everything except wall_ms (measured time, explicitly outside the
/// determinism contract), compared exactly.
void ExpectSameSearchResult(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_EQ(a.workload_cost_before, b.workload_cost_before);
  EXPECT_EQ(a.workload_cost_after, b.workload_cost_after);
  EXPECT_EQ(a.greedy_cost_after, b.greedy_cost_after);
  EXPECT_EQ(a.total_size_bytes, b.total_size_bytes);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.full_evaluations, b.full_evaluations);
  EXPECT_EQ(a.restarts_completed, b.restarts_completed);
  EXPECT_EQ(a.swaps_accepted, b.swaps_accepted);
  EXPECT_EQ(a.swap_candidates_pruned, b.swap_candidates_pruned);
  ASSERT_EQ(a.restarts.size(), b.restarts.size());
  for (size_t i = 0; i < a.restarts.size(); ++i) {
    EXPECT_EQ(a.restarts[i].restart, b.restarts[i].restart) << "restart " << i;
    EXPECT_EQ(a.restarts[i].prefix_size, b.restarts[i].prefix_size)
        << "restart " << i;
    EXPECT_EQ(a.restarts[i].completed, b.restarts[i].completed)
        << "restart " << i;
    EXPECT_EQ(a.restarts[i].cost_after, b.restarts[i].cost_after)
        << "restart " << i;
    EXPECT_EQ(a.restarts[i].num_chosen, b.restarts[i].num_chosen)
        << "restart " << i;
  }
  ASSERT_EQ(a.swaps.size(), b.swaps.size());
  for (size_t i = 0; i < a.swaps.size(); ++i) {
    EXPECT_EQ(a.swaps[i].pass, b.swaps[i].pass) << "swap " << i;
    EXPECT_EQ(a.swaps[i].evicted, b.swaps[i].evicted) << "swap " << i;
    EXPECT_EQ(a.swaps[i].inserted, b.swaps[i].inserted) << "swap " << i;
    EXPECT_EQ(a.swaps[i].chain_length, b.swaps[i].chain_length)
        << "swap " << i;
    EXPECT_EQ(a.swaps[i].cost_after, b.swaps[i].cost_after) << "swap " << i;
  }
}

/// Shared chain-family workload: built once, sealed caches served to
/// every test. Chain instances have enough candidates and queries for
/// restarts and swaps to do real work while staying fast.
class SearchAdvisorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fix_ = MakeFamilyFixture("chain");
    ASSERT_NE(fix_, nullptr);
    WorkloadCacheBuilder builder(&fix_->catalog(), &fix_->set,
                                 &fix_->instance->mutable_stats(),
                                 WorkloadCacheOptions{});
    auto built = builder.BuildAll(fix_->queries());
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    built_ = new WorkloadCacheResult(std::move(*built));
  }
  static void TearDownTestSuite() {
    delete built_;
    built_ = nullptr;
    fix_.reset();
  }

  static SearchOptions TightOptions() {
    SearchOptions options;
    options.base.budget_bytes = 48 * 1024 * 1024;  // tight: forces choices
    options.seed = 1;
    options.max_restarts = 6;
    return options;
  }

  static std::unique_ptr<FamilyFixture> fix_;
  static WorkloadCacheResult* built_;
};

std::unique_ptr<FamilyFixture> SearchAdvisorTest::fix_;
WorkloadCacheResult* SearchAdvisorTest::built_ = nullptr;

TEST_F(SearchAdvisorTest, NeverWorseThanGreedyAcrossBudgets) {
  for (int64_t budget :
       {int64_t{16} * 1024 * 1024, int64_t{48} * 1024 * 1024,
        int64_t{256} * 1024 * 1024, int64_t{4} * 1024 * 1024 * 1024}) {
    SCOPED_TRACE("budget " + std::to_string(budget));
    SearchOptions options = TightOptions();
    options.base.budget_bytes = budget;
    AdvisorOptions gopts = options.base;
    const AdvisorResult greedy =
        RunGreedyAdvisor(built_->sealed, fix_->set, gopts);
    const SearchResult search =
        RunSearchAdvisor(built_->sealed, fix_->set, options);

    // Restart 0 IS the greedy baseline.
    EXPECT_EQ(search.greedy_cost_after, greedy.workload_cost_after);
    EXPECT_EQ(search.workload_cost_before, greedy.workload_cost_before);
    ASSERT_FALSE(search.restarts.empty());
    EXPECT_EQ(search.restarts[0].restart, 0u);
    EXPECT_EQ(search.restarts[0].prefix_size, 0u);
    EXPECT_TRUE(search.restarts[0].completed);
    EXPECT_EQ(search.restarts[0].cost_after, greedy.workload_cost_after);

    // The quality guarantee, and internal consistency: the reported
    // cost is bit-identical to pricing the chosen configuration.
    EXPECT_LE(search.workload_cost_after, search.greedy_cost_after);
    const WorkloadCostEvaluator evaluator(&built_->sealed);
    EXPECT_EQ(evaluator.Cost(search.chosen), search.workload_cost_after);
    EXPECT_LE(search.total_size_bytes, budget);
    int64_t recomputed = 0;
    for (IndexId id : search.chosen) {
      recomputed += IndexSizeBytes(*fix_->set.universe.FindIndex(id));
    }
    EXPECT_EQ(recomputed, search.total_size_bytes);
    EXPECT_EQ(search.restarts_completed,
              static_cast<int64_t>(options.max_restarts) + 1);
  }
}

TEST_F(SearchAdvisorTest, DeterministicAcrossThreadCountsAndReruns) {
  const SearchOptions options = TightOptions();
  const SearchResult serial =
      RunSearchAdvisor(built_->sealed, fix_->set, options);
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ThreadPool pool(threads);
    const WorkloadCostEvaluator pooled(&built_->sealed, &pool);
    const SearchResult a = RunSearchAdvisor(pooled, fix_->set, options);
    const SearchResult b = RunSearchAdvisor(pooled, fix_->set, options);
    ExpectSameSearchResult(serial, a);
    ExpectSameSearchResult(a, b);
  }
}

TEST_F(SearchAdvisorTest, BitIdenticalFromRestoredSnapshot) {
  // Same determinism contract as greedy: a snapshot round trip changes
  // nothing about the search's bits.
  WorkloadCacheBuilder builder(&fix_->catalog(), &fix_->set,
                               &fix_->instance->mutable_stats(),
                               WorkloadCacheOptions{});
  const std::string path = ::testing::TempDir() +
                           std::to_string(getpid()) + "_search.snap";
  ASSERT_TRUE(builder.SaveSnapshot(path, *built_, fix_->queries()).ok());
  auto restored = builder.LoadSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const SearchOptions options = TightOptions();
  const SearchResult fresh =
      RunSearchAdvisor(built_->sealed, fix_->set, options);
  const SearchResult from_snapshot =
      RunSearchAdvisor(restored->sealed, fix_->set, options);
  ExpectSameSearchResult(fresh, from_snapshot);
  (void)unlink(path.c_str());
}

TEST_F(SearchAdvisorTest, SeedChangesTrajectoriesNotTheGuarantee) {
  double first_cost = 0;
  bool any_prefix_difference = false;
  std::vector<uint32_t> first_prefixes;
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SearchOptions options = TightOptions();
    options.seed = seed;
    const SearchResult search =
        RunSearchAdvisor(built_->sealed, fix_->set, options);
    EXPECT_LE(search.workload_cost_after, search.greedy_cost_after);
    std::vector<uint32_t> prefixes;
    for (const SearchRestart& r : search.restarts) {
      prefixes.push_back(r.prefix_size);
    }
    if (seed == 1) {
      first_cost = search.greedy_cost_after;
      first_prefixes = prefixes;
    } else {
      // The baseline is seed-independent; the random prefixes are not.
      EXPECT_EQ(search.greedy_cost_after, first_cost);
      any_prefix_difference =
          any_prefix_difference || prefixes != first_prefixes;
    }
  }
  EXPECT_TRUE(any_prefix_difference)
      << "three seeds drew identical restart prefixes";
}

TEST_F(SearchAdvisorTest, PruningNeverChangesTheResult) {
  // The posting-overlap pruner may only skip candidates that provably
  // cannot change any swap chain: identical results with it on and off,
  // except for the work counters it exists to reduce.
  for (int64_t budget : {int64_t{16} * 1024 * 1024,
                         int64_t{48} * 1024 * 1024,
                         int64_t{256} * 1024 * 1024}) {
    SCOPED_TRACE("budget " + std::to_string(budget));
    SearchOptions on = TightOptions();
    on.base.budget_bytes = budget;
    SearchOptions off = on;
    off.prune_dominated_swaps = false;
    const SearchResult with_prune =
        RunSearchAdvisor(built_->sealed, fix_->set, on);
    const SearchResult without =
        RunSearchAdvisor(built_->sealed, fix_->set, off);
    EXPECT_EQ(with_prune.chosen, without.chosen);
    EXPECT_EQ(with_prune.workload_cost_after, without.workload_cost_after);
    EXPECT_EQ(with_prune.greedy_cost_after, without.greedy_cost_after);
    EXPECT_EQ(with_prune.total_size_bytes, without.total_size_bytes);
    EXPECT_EQ(with_prune.swaps_accepted, without.swaps_accepted);
    EXPECT_EQ(with_prune.swaps.size(), without.swaps.size());
    EXPECT_EQ(without.swap_candidates_pruned, 0);
    EXPECT_LE(with_prune.evaluations, without.evaluations);
  }
}

TEST_F(SearchAdvisorTest, TimeBudgetIsAnytime) {
  // A microscopic deadline: the greedy baseline still completes (the
  // floor of the anytime contract), the result is valid and never worse
  // than greedy, and later restarts/moves are skipped cleanly.
  SearchOptions options = TightOptions();
  options.time_budget_ms = 1e-6;
  const SearchResult search =
      RunSearchAdvisor(built_->sealed, fix_->set, options);
  EXPECT_GE(search.restarts_completed, 1);
  EXPECT_TRUE(search.restarts[0].completed);
  EXPECT_LE(search.workload_cost_after, search.greedy_cost_after);
  const WorkloadCostEvaluator evaluator(&built_->sealed);
  EXPECT_EQ(evaluator.Cost(search.chosen), search.workload_cost_after);
}

TEST_F(SearchAdvisorTest, MaxIndexesAndBudgetRespected) {
  SearchOptions options = TightOptions();
  options.base.max_indexes = 2;
  const SearchResult search =
      RunSearchAdvisor(built_->sealed, fix_->set, options);
  EXPECT_LE(search.chosen.size(), 2u);
  EXPECT_LE(search.total_size_bytes, options.base.budget_bytes);
  EXPECT_LE(search.workload_cost_after, search.greedy_cost_after);
}

TEST(SearchAdvisorTrapTest, SwapMovesEscapeAGreedyTrap) {
  // The classic interaction greedy cannot see: candidate A alone is the
  // best single pick and fills the budget; B and C individually help
  // less but together beat A. Greedy takes A and stops; the search's
  // swap move must evict A and greedy-complete to {B, C}. Restarts are
  // disabled so only the swap/backtracking machinery can find it.
  MiniStar mini;
  const TableDef& fact = *mini.db.catalog().FindTable(mini.fact);
  const IndexDef def_a = MakeWhatIfIndex("trap_a", fact, {1}, 150'000.0);
  const IndexDef def_b = MakeWhatIfIndex("trap_b", fact, {2}, 100'000.0);
  const IndexDef def_c = MakeWhatIfIndex("trap_c", fact, {3}, 100'000.0);
  CandidateSet set = *MakeCandidateSet(mini.db.catalog(), {def_a, def_b,
                                                           def_c});
  const IndexId a = set.candidate_ids[0];
  const IndexId b = set.candidate_ids[1];
  const IndexId c = set.candidate_ids[2];
  const int64_t size_a = IndexSizeBytes(def_a);
  const int64_t size_b = IndexSizeBytes(def_b);
  const int64_t size_c = IndexSizeBytes(def_c);
  const int64_t budget = size_b + size_c;
  // The trap's geometry: A fits alone but leaves no room for anything
  // else.
  ASSERT_LE(size_a, budget);
  ASSERT_GT(size_a + size_b, budget);
  ASSERT_GT(size_a + size_c, budget);

  // Three single-table queries; each cache rewards exactly one
  // candidate (disjoint posting footprints, which also exercises the
  // pruner's signatures): A saves 10 on q0, B and C save 6 each.
  auto make_cache = [&](IndexId rewarded, double saving) {
    InumCache cache;
    Path plan;
    plan.kind = PathKind::kSeqScan;
    plan.table_pos = 0;
    plan.cost = {0, 60};
    LeafSlot slot;
    slot.table_pos = 0;
    slot.req = LeafReqKind::kUnordered;
    slot.unit_cost = 50;
    plan.leaves = {slot};
    cache.AddPlan(plan, mini.db.catalog());
    TableAccessInfo info;
    info.pos = 0;
    info.table = mini.fact;
    ScanOption seq;
    seq.index = kInvalidIndexId;
    seq.cost = {0, 50};
    info.options.push_back(seq);
    ScanOption idx;
    idx.index = rewarded;
    idx.cost = {0, 50 - saving};
    info.options.push_back(idx);
    cache.mutable_access()->Absorb(info);
    return SealedCache::Seal(cache, set.NumIndexIds());
  };
  std::vector<SealedCache> sealed;
  sealed.push_back(make_cache(a, 10));
  sealed.push_back(make_cache(b, 6));
  sealed.push_back(make_cache(c, 6));

  SearchOptions options;
  options.base.budget_bytes = budget;
  options.max_restarts = 0;  // swaps must do it alone

  const AdvisorResult greedy =
      RunGreedyAdvisor(sealed, set, options.base);
  ASSERT_EQ(greedy.chosen, (std::vector<IndexId>{a}));

  const SearchResult search = RunSearchAdvisor(sealed, set, options);
  EXPECT_EQ(search.greedy_cost_after, greedy.workload_cost_after);
  EXPECT_LT(search.workload_cost_after, search.greedy_cost_after);
  EXPECT_EQ(search.chosen, (IndexConfig{b, c}));
  ASSERT_EQ(search.swaps_accepted, 1);
  EXPECT_EQ(search.swaps[0].evicted, a);
  EXPECT_EQ(search.swaps[0].inserted, b);
  EXPECT_EQ(search.swaps[0].chain_length, 2u);
  // Workload arithmetic: base 180, greedy saves 10, the pair saves 12.
  EXPECT_EQ(search.workload_cost_after, greedy.workload_cost_after - 2);

  // With restarts enabled, a random prefix finds the same optimum, and
  // pruning on/off agree here too.
  SearchOptions restarts = options;
  restarts.max_restarts = 8;
  const SearchResult wide = RunSearchAdvisor(sealed, set, restarts);
  EXPECT_EQ(wide.workload_cost_after, search.workload_cost_after);
  SearchOptions no_prune = restarts;
  no_prune.prune_dominated_swaps = false;
  const SearchResult raw = RunSearchAdvisor(sealed, set, no_prune);
  EXPECT_EQ(raw.chosen, wide.chosen);
  EXPECT_EQ(raw.workload_cost_after, wide.workload_cost_after);
}

}  // namespace
}  // namespace pinum
