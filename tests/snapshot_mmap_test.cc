// Zero-copy (mmap) snapshot serving: a mapped snapshot must answer
// every cost question bit-identically to both the heap-built caches it
// was saved from and the decode-path load of the same file — across
// Cost, the pinned-context delta path, the batched evaluator sweeps,
// and whole advisor runs — while every hostile input (truncation, bit
// flips, crafted arena offsets, old format versions, incompatible
// epochs) is rejected with the right Status before any cache view is
// handed out. Lifetime is part of the contract: caches borrow the
// mapping, so they must keep serving after the snapshot struct, the
// mapping handle, and even the file's directory entry are gone.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "advisor/greedy_advisor.h"
#include "common/rng.h"
#include "inum/snapshot.h"
#include "inum/snapshot_mmap.h"
#include "serving/serving_engine.h"
#include "test_util.h"
#include "workload/cache_manager.h"
#include "workload/drift.h"
#include "workload/star_schema.h"

namespace pinum {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Recomputes the header checksum (spec: FNV-1a over [40, EOF)) so a
/// crafted payload is what the reader actually trips on, not the
/// checksum covering it.
void Rechecksum(std::string* bytes) {
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 40; i < bytes->size(); ++i) {
    h ^= static_cast<unsigned char>((*bytes)[i]);
    h *= 1099511628211ULL;
  }
  std::memcpy(bytes->data() + 32, &h, 8);
}

/// File offset of the section tagged `tag` (0 if absent).
uint64_t SectionOffset(const std::string& bytes, uint32_t tag) {
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 16, 4);
  for (uint32_t i = 0; i < section_count; ++i) {
    const char* entry = bytes.data() + 40 + i * 24;
    uint32_t t = 0;
    std::memcpy(&t, entry, 4);
    if (t == tag) {
      uint64_t offset = 0;
      std::memcpy(&offset, entry + 8, 8);
      return offset;
    }
  }
  return 0;
}

/// File offset of the first cache record's arena image: the caches
/// section starts u32 count, u32 reserved, u64 length-count, u64
/// lengths[count], then the records back-to-back.
uint64_t FirstRecordOffset(const std::string& bytes) {
  const uint64_t section = SectionOffset(bytes, 3);
  EXPECT_NE(section, 0u);
  uint32_t count = 0;
  std::memcpy(&count, bytes.data() + section, 4);
  return section + 16 + 8 * static_cast<uint64_t>(count);
}

class SnapshotMmapTest : public ::testing::Test {
 protected:
  struct Fixture {
    std::unique_ptr<StarFixture> star;
    std::unique_ptr<WorkloadCacheBuilder> builder;
    WorkloadCacheResult built;
    std::string path;
  };
  static Fixture* fix_;

  static void SetUpTestSuite() {
    auto star = MakeStarFixture();
    ASSERT_NE(star, nullptr);
    fix_ = new Fixture{std::move(star), nullptr, {},
                       TempPath("pinum_mmap_test.snap")};
    fix_->builder = std::make_unique<WorkloadCacheBuilder>(
        &fix_->star->catalog(), &fix_->star->set, &fix_->star->stats());
    auto built = fix_->builder->BuildAll(fix_->star->queries());
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    fix_->built = std::move(*built);
    ASSERT_TRUE(fix_->builder
                    ->SaveSnapshot(fix_->path, fix_->built,
                                   fix_->star->queries())
                    .ok());
  }
  static void TearDownTestSuite() {
    std::remove(fix_->path.c_str());
    delete fix_;
    fix_ = nullptr;
  }

  static std::string SnapshotBytes() { return ReadFile(fix_->path); }

  /// Pid-qualified temp paths: ctest -j shards suites across processes.
  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + std::to_string(getpid()) + "_" + name;
  }

  static SnapshotEpoch LiveEpoch() {
    return ComputeSnapshotEpoch(fix_->star->set);
  }
};

SnapshotMmapTest::Fixture* SnapshotMmapTest::fix_ = nullptr;

TEST_F(SnapshotMmapTest, MappedCostsBitIdenticalToHeapBuilt) {
  // The acceptance property: a mapped cache IS the sealed original as
  // far as any cost question can tell — same bits on the dense path,
  // the sentinel/out-of-range edges, and the pinned-context delta path.
  auto mapped = MappedWorkloadSnapshot::Map(fix_->path, LiveEpoch());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const std::vector<Query>& queries = fix_->star->queries();
  ASSERT_EQ(mapped->sealed.size(), queries.size());
  const IndexId universe = fix_->star->set.NumIndexIds();
  EXPECT_EQ(mapped->universe, universe);

  Rng rng(613);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const SealedCache& original = fix_->built.sealed[qi];
    const SealedCache& view = mapped->sealed[qi];
    EXPECT_EQ(view.NumPlans(), original.NumPlans());
    EXPECT_EQ(view.NumTerms(), original.NumTerms());
    EXPECT_EQ(view.NumPostings(), original.NumPostings());
    EXPECT_EQ(view.ArenaBytes(), original.ArenaBytes());
    EXPECT_EQ(view.Cost({}), original.Cost({})) << "query " << qi;
    for (int trial = 0; trial < 20; ++trial) {
      IndexConfig config =
          RandomAtomicConfig(queries[qi], fix_->star->set, &rng);
      if (!config.empty() && rng.Chance(0.5)) {
        config.push_back(config[rng.Index(config.size())]);
      }
      if (rng.Chance(0.5)) config.push_back(universe + 100);
      if (rng.Chance(0.5)) config.push_back(kInvalidIndexId);
      EXPECT_EQ(view.Cost(config), original.Cost(config))
          << "query " << qi << " trial " << trial;
    }

    SealedCache::CostContext view_ctx;
    SealedCache::CostContext original_ctx;
    const IndexConfig base =
        RandomAtomicConfig(queries[qi], fix_->star->set, &rng);
    view.PrepareContext(base, &view_ctx);
    original.PrepareContext(base, &original_ctx);
    EXPECT_EQ(view_ctx.base_cost(), original_ctx.base_cost());
    for (IndexId extra : fix_->star->set.candidate_ids) {
      EXPECT_EQ(view.CostWithExtra(&view_ctx, extra),
                original.CostWithExtra(&original_ctx, extra))
          << "query " << qi << " extra " << extra;
    }
  }
}

TEST_F(SnapshotMmapTest, MappedEvaluatorSweepsBitIdentical) {
  // The evaluator's batch paths (what the advisor and the serving
  // engine actually call) over mapped caches, against the heap-built
  // vector: BatchCost and the delta-path BatchCostWithExtras.
  auto mapped = MappedWorkloadSnapshot::Map(fix_->path, LiveEpoch());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const WorkloadCostEvaluator heap_eval(&fix_->built.sealed);
  const WorkloadCostEvaluator mapped_eval(&mapped->sealed);

  Rng rng(617);
  std::vector<IndexConfig> configs;
  for (int i = 0; i < 24; ++i) {
    configs.push_back(RandomSubsetConfig(fix_->star->set, &rng, 0.3));
  }
  const std::vector<double> heap_batch = heap_eval.BatchCost(configs);
  const std::vector<double> mapped_batch = mapped_eval.BatchCost(configs);
  EXPECT_EQ(heap_batch, mapped_batch);

  WorkloadCostEvaluator::EvalScratch heap_scratch;
  WorkloadCostEvaluator::EvalScratch mapped_scratch;
  const std::vector<IndexId>& extras = fix_->star->set.candidate_ids;
  IndexConfig base;
  for (int round = 0; round < 3; ++round) {
    const std::vector<double>& heap_costs =
        heap_eval.BatchCostWithExtras(base, extras, &heap_scratch);
    const std::vector<double>& mapped_costs =
        mapped_eval.BatchCostWithExtras(base, extras, &mapped_scratch);
    EXPECT_EQ(heap_costs, mapped_costs) << "round " << round;
    // Extend the base by this round's winner — the advisor's pinned-
    // context fast path.
    const size_t best = static_cast<size_t>(
        std::min_element(heap_costs.begin(), heap_costs.end()) -
        heap_costs.begin());
    base.push_back(extras[best]);
  }
}

TEST_F(SnapshotMmapTest, AdvisorOutputBitIdenticalFromMappedCaches) {
  auto mapped = MappedWorkloadSnapshot::Map(fix_->path, LiveEpoch());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  AdvisorOptions opts;
  const AdvisorResult fresh =
      RunGreedyAdvisor(fix_->built.sealed, fix_->star->set, opts);
  const AdvisorResult from_mapped =
      RunGreedyAdvisor(mapped->sealed, fix_->star->set, opts);
  ExpectSameAdvisorResult(fresh, from_mapped);
  EXPECT_FALSE(fresh.chosen.empty());
}

TEST_F(SnapshotMmapTest, MappedCachesOutliveHandleAndFile) {
  // Lifetime contract: a cache copied out of the snapshot keeps serving
  // after (1) the snapshot struct and its mapping handle are destroyed
  // and (2) the file's directory entry is unlinked — the arena's owner
  // handle alone pins the pages (POSIX keeps a mapping alive past
  // unlink).
  const std::string path = TempPath("unlink.snap");
  WriteFile(path, SnapshotBytes());
  SealedCache survivor;
  {
    auto mapped = MappedWorkloadSnapshot::Map(path, LiveEpoch());
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    survivor = mapped->sealed[0];
    std::remove(path.c_str());
  }
  const SealedCache& original = fix_->built.sealed[0];
  Rng rng(619);
  EXPECT_EQ(survivor.Cost({}), original.Cost({}));
  for (int trial = 0; trial < 10; ++trial) {
    const IndexConfig config =
        RandomAtomicConfig(fix_->star->queries()[0], fix_->star->set, &rng);
    EXPECT_EQ(survivor.Cost(config), original.Cost(config));
  }
}

TEST_F(SnapshotMmapTest, MissingFileIsNotFound) {
  auto mapped =
      MappedWorkloadSnapshot::Map(TempPath("no_such.snap"), LiveEpoch());
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotMmapTest, TruncationSweepIsOutOfRange) {
  // The decode path's truncation sweep, pointed at Map(): every cut —
  // inside the header, the section table, mid-payload, one byte short —
  // must be kOutOfRange with no crash and no view handed out.
  const std::string bytes = SnapshotBytes();
  const std::string path = TempPath("truncated.snap");
  for (size_t keep :
       {size_t{0}, size_t{4}, size_t{12}, size_t{39}, size_t{96},
        bytes.size() / 2, bytes.size() - 1}) {
    WriteFile(path, bytes.substr(0, keep));
    auto mapped = MappedWorkloadSnapshot::Map(path, LiveEpoch());
    ASSERT_FALSE(mapped.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(mapped.status().code(), StatusCode::kOutOfRange)
        << "kept " << keep << " bytes: " << mapped.status().ToString();
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotMmapTest, PayloadBitFlipsAreInternal) {
  // The decode path's bit-flip sweep against Map(): any flipped payload
  // bit — section table, epoch, arena images — trips the checksum
  // before the bytes are believed.
  const std::string pristine = SnapshotBytes();
  const std::string path = TempPath("corrupt.snap");
  for (size_t at : {size_t{40}, size_t{64}, pristine.size() / 2,
                    pristine.size() - 1}) {
    std::string bytes = pristine;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x40);
    WriteFile(path, bytes);
    auto mapped = MappedWorkloadSnapshot::Map(path, LiveEpoch());
    ASSERT_FALSE(mapped.ok()) << "flip at " << at;
    EXPECT_EQ(mapped.status().code(), StatusCode::kInternal)
        << "flip at " << at << ": " << mapped.status().ToString();
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotMmapTest, MisalignedArenaOffsetIsInternal) {
  // A checksum-valid image whose directory points an array at a
  // non-8-aligned offset: ValidateImage must reject it (kInternal)
  // before any typed view exists — this is the UB the validation
  // exists to prevent, not just a wrong answer.
  std::string bytes = SnapshotBytes();
  const uint64_t record = FirstRecordOffset(bytes);
  // First directory entry's offset field (record + 16).
  uint64_t offset = 0;
  std::memcpy(&offset, bytes.data() + record + 16, 8);
  offset += 4;
  std::memcpy(bytes.data() + record + 16, &offset, 8);
  Rechecksum(&bytes);
  const std::string path = TempPath("misaligned.snap");
  WriteFile(path, bytes);
  auto mapped = MappedWorkloadSnapshot::Map(path, LiveEpoch());
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInternal)
      << mapped.status().ToString();
  EXPECT_NE(mapped.status().message().find("misaligned"), std::string::npos)
      << mapped.status().ToString();
  std::remove(path.c_str());
}

TEST_F(SnapshotMmapTest, OutOfBoundsArenaOffsetIsInternal) {
  // A checksum-valid image whose directory points outside the image:
  // rejected before any view, with no out-of-bounds read (ASan-clean).
  std::string bytes = SnapshotBytes();
  const uint64_t record = FirstRecordOffset(bytes);
  const uint64_t huge = uint64_t{1} << 40;
  std::memcpy(bytes.data() + record + 16, &huge, 8);
  Rechecksum(&bytes);
  const std::string path = TempPath("oob.snap");
  WriteFile(path, bytes);
  auto mapped = MappedWorkloadSnapshot::Map(path, LiveEpoch());
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInternal)
      << mapped.status().ToString();
  EXPECT_NE(mapped.status().message().find("out of bounds"),
            std::string::npos)
      << mapped.status().ToString();
  std::remove(path.c_str());
}

TEST_F(SnapshotMmapTest, CountedArrayOverrunIsInternal) {
  // In-bounds offset, crafted count overrunning the image: the third
  // arena rejection class the ISSUE names (offset OK, extent not).
  std::string bytes = SnapshotBytes();
  const uint64_t record = FirstRecordOffset(bytes);
  const uint64_t huge_count = uint64_t{1} << 32;
  std::memcpy(bytes.data() + record + 24, &huge_count, 8);
  Rechecksum(&bytes);
  const std::string path = TempPath("overrun.snap");
  WriteFile(path, bytes);
  auto mapped = MappedWorkloadSnapshot::Map(path, LiveEpoch());
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInternal)
      << mapped.status().ToString();
  EXPECT_NE(mapped.status().message().find("overruns"), std::string::npos)
      << mapped.status().ToString();
  std::remove(path.c_str());
}

TEST_F(SnapshotMmapTest, V2FormatIsUnimplemented) {
  // Pre-arena formats cannot be mapped (their caches section is a
  // per-field encoding); v2 and v1 both come back kUnimplemented, on
  // the version field alone.
  for (uint32_t old_version : {uint32_t{2}, uint32_t{1}}) {
    std::string bytes = SnapshotBytes();
    std::memcpy(bytes.data() + 12, &old_version, sizeof(old_version));
    const std::string path = TempPath("old.snap");
    WriteFile(path, bytes);
    auto mapped = MappedWorkloadSnapshot::Map(path, LiveEpoch());
    ASSERT_FALSE(mapped.ok()) << "version " << old_version;
    EXPECT_EQ(mapped.status().code(), StatusCode::kUnimplemented)
        << "version " << old_version << ": " << mapped.status().ToString();
    std::remove(path.c_str());
  }
}

TEST_F(SnapshotMmapTest, FutureFormatIsUnimplemented) {
  std::string bytes = SnapshotBytes();
  const uint32_t future = kSnapshotFormatVersion + 1;
  std::memcpy(bytes.data() + 12, &future, sizeof(future));
  const std::string path = TempPath("future.snap");
  WriteFile(path, bytes);
  auto mapped = MappedWorkloadSnapshot::Map(path, LiveEpoch());
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kUnimplemented);
  std::remove(path.c_str());
}

TEST_F(SnapshotMmapTest, EpochMismatchIsFailedPrecondition) {
  // Same compatibility rule as the decode path: a permuted candidate
  // vocabulary is not a prefix of the live chain.
  SnapshotEpoch permuted = LiveEpoch();
  ASSERT_GE(permuted.candidate_ids.size(), 2u);
  std::swap(permuted.candidate_ids[0], permuted.candidate_ids[1]);
  auto mapped = MappedWorkloadSnapshot::Map(fix_->path, permuted);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotMmapTest, LoadSnapshotMappedStalenessAndResealAfterDrift) {
  // The mapped restart path end to end: LoadSnapshotMapped under a
  // drifted world succeeds (stats drift is staleness, not an epoch
  // break), StaleQueries over the returned names/stamps names exactly
  // the touched queries, and RebuildQueries over the mapped result
  // reseals them in place — heap caches replacing borrowed views — with
  // every answer bit-identical to a cold build of the drifted world.
  const std::vector<Query>& queries = fix_->star->queries();
  CandidateSet set = fix_->star->set;
  StatsCatalog stats = fix_->star->stats();
  const TableId victim = fix_->star->tables().back();
  DriftTableStats(fix_->star->catalog(), victim, 2.0, &stats);

  WorkloadCacheBuilder drifted_builder(&fix_->star->catalog(), &set, &stats);
  std::vector<std::string> names;
  auto mapped = drifted_builder.LoadSnapshotMapped(fix_->path, &names);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->sealed.size(), queries.size());
  ASSERT_EQ(mapped->caches.size(), queries.size());
  ASSERT_NE(mapped->mapping, nullptr);

  const std::vector<size_t> stale =
      drifted_builder.StaleQueries(names, mapped->stamps, queries);
  std::vector<std::string> got;
  for (size_t i : stale) got.push_back(queries[i].name);
  EXPECT_EQ(got, QueriesTouchingTables(queries, {victim}));
  ASSERT_FALSE(got.empty());

  ASSERT_TRUE(drifted_builder.RebuildQueries(got, queries, &*mapped).ok());
  auto cold = drifted_builder.BuildAll(queries);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  Rng rng(631);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (int trial = 0; trial < 5; ++trial) {
      const IndexConfig config = RandomAtomicConfig(queries[qi], set, &rng);
      EXPECT_EQ(mapped->sealed[qi].Cost(config),
                cold->sealed[qi].Cost(config))
          << "query " << qi << " trial " << trial;
    }
  }
}

TEST_F(SnapshotMmapTest, ServingEngineStartsFromMappedGenerationZero) {
  // The always-on restart: an engine constructed from a mapped result
  // answers traffic immediately (no build ran), bit-identically to the
  // heap-built evaluator, and a later drift-reseal publishes the next
  // generation while the mapped one keeps pinned readers valid.
  const std::vector<Query>& queries = fix_->star->queries();
  CandidateSet set = fix_->star->set;
  StatsCatalog stats = fix_->star->stats();
  WorkloadCacheBuilder builder(&fix_->star->catalog(), &set, &stats);
  auto mapped = builder.LoadSnapshotMapped(fix_->path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  ServingEngine engine(&builder, &queries, std::move(*mapped));
  const WorkloadCostEvaluator evaluator(&fix_->built.sealed);
  Rng rng(641);
  std::vector<IndexConfig> probes;
  for (int i = 0; i < 8; ++i) {
    probes.push_back(RandomSubsetConfig(fix_->star->set, &rng, 0.3));
  }
  for (const IndexConfig& config : probes) {
    const CostAnswer answer = engine.Cost(config);
    EXPECT_EQ(answer.cost, evaluator.Cost(config));
    EXPECT_EQ(answer.generation, 1u);
  }

  // Pin the mapped generation, drift, reseal: the published generation
  // answers the drifted world while the pinned mapped one still serves
  // its original bits.
  auto pinned = engine.Pin();
  const double pre_drift = engine.Cost(probes[0]).cost;
  const TableId victim = fix_->star->tables().back();
  engine.WithWorld([&] {
    DriftTableStats(fix_->star->catalog(), victim, 2.0, &stats);
  });
  auto resealed = engine.CheckAndReseal();
  ASSERT_TRUE(resealed.ok()) << resealed.status().ToString();
  EXPECT_TRUE(*resealed);
  EXPECT_EQ(engine.CurrentGenerationId(), 2u);

  auto cold = builder.BuildAll(queries);
  ASSERT_TRUE(cold.ok());
  const WorkloadCostEvaluator drifted_eval(&cold->sealed);
  for (const IndexConfig& config : probes) {
    EXPECT_EQ(engine.Cost(config).cost, drifted_eval.Cost(config));
  }
  const WorkloadCostEvaluator pinned_eval(&pinned->sealed());
  EXPECT_EQ(pinned_eval.Cost(probes[0]), pre_drift);
}

}  // namespace
}  // namespace pinum
