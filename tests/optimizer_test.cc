#include <gtest/gtest.h>

#include "optimizer/interesting_orders.h"
#include "optimizer/join_planner.h"
#include "optimizer/optimizer.h"
#include "test_util.h"
#include "whatif/whatif_index.h"

namespace pinum {
namespace {

/// Collects every node kind appearing in a plan tree.
void CollectKinds(const Path& p, std::vector<PathKind>* kinds) {
  kinds->push_back(p.kind);
  if (p.outer) CollectKinds(*p.outer, kinds);
  if (p.inner) CollectKinds(*p.inner, kinds);
}

bool ContainsKind(const Path& p, PathKind kind) {
  std::vector<PathKind> kinds;
  CollectKinds(p, &kinds);
  return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
}

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : mini_() {}
  MiniStar mini_;
};

TEST_F(OptimizerTest, SingleTableScanPlan) {
  QueryBuilder qb(&mini_.db.catalog());
  auto q = qb.From("d1").Select("d1", "c1").Build();
  ASSERT_TRUE(q.ok());
  Optimizer opt(&mini_.db.catalog(), &mini_.db.stats());
  auto r = opt.Optimize(*q, PlannerKnobs{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->best->kind, PathKind::kSeqScan);
  EXPECT_GT(r->best->cost.total, 0);
}

TEST_F(OptimizerTest, JoinQueryProducesJoinWithSortForOrderBy) {
  const Query q = mini_.JoinQuery();
  Optimizer opt(&mini_.db.catalog(), &mini_.db.stats());
  auto r = opt.Optimize(q, PlannerKnobs{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // No index covers d1.c1, so the order-by requires a Sort somewhere.
  EXPECT_TRUE(ContainsKind(*r->best, PathKind::kSort));
  EXPECT_TRUE(ContainsKind(*r->best, PathKind::kHashJoin) ||
              ContainsKind(*r->best, PathKind::kMergeJoin) ||
              ContainsKind(*r->best, PathKind::kNestLoop));
}

TEST_F(OptimizerTest, EnableNestloopFalseRemovesNlj) {
  // NLJ-friendly setting: a tiny outer (0.01% filter on fact) probing a
  // large dimension through an index on its key — rescanning the
  // dimension any other way is costlier.
  MiniStar big_dim(/*fact_rows=*/1'000'000, /*dim_rows=*/100'000);
  const TableDef* d1 = big_dim.db.catalog().FindTable(big_dim.d1);
  std::vector<IndexDef> hypo = {
      MakeWhatIfIndex("d1_id", *d1, {0}, 100'000)};
  auto catalog = CatalogWithIndexes(big_dim.db.catalog(), hypo, nullptr);
  ASSERT_TRUE(catalog.ok());
  Optimizer opt(&*catalog, &big_dim.db.stats());
  QueryBuilder qb(&big_dim.db.catalog());
  auto q = qb.Named("nlj_friendly")
               .From("fact")
               .From("d1")
               .Select("fact", "c2")
               .Select("d1", "c1")
               .Join("fact", "fk_d1", "d1", "id")
               .Where("fact", "c1", CompareOp::kLe, 100)  // ~100 rows
               .Build();
  ASSERT_TRUE(q.ok());

  PlannerKnobs with_nlj;
  auto r1 = opt.Optimize(*q, with_nlj);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(ContainsKind(*r1->best, PathKind::kNestLoop))
      << r1->best->Explain(*catalog);

  PlannerKnobs no_nlj;
  no_nlj.enable_nestloop = false;
  auto r2 = opt.Optimize(*q, no_nlj);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(ContainsKind(*r2->best, PathKind::kNestLoop));
  // Removing a join method can only increase the winner's cost.
  EXPECT_GE(r2->best->cost.total, r1->best->cost.total - 1e-6);
}

TEST_F(OptimizerTest, DisablingAllJoinsFailsGracefully) {
  PlannerKnobs none;
  none.enable_nestloop = false;
  none.enable_hashjoin = false;
  none.enable_mergejoin = false;
  Optimizer opt(&mini_.db.catalog(), &mini_.db.stats());
  auto r = opt.Optimize(mini_.JoinQuery(), none);
  EXPECT_FALSE(r.ok());
}

TEST_F(OptimizerTest, DisconnectedJoinGraphRejected) {
  QueryBuilder qb(&mini_.db.catalog());
  auto q = qb.From("d1").From("d2").Select("d1", "c1").Build();
  ASSERT_TRUE(q.ok());
  Optimizer opt(&mini_.db.catalog(), &mini_.db.stats());
  auto r = opt.Optimize(*q, PlannerKnobs{});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(OptimizerTest, CoveringOrderIndexAvoidsTopSort) {
  // Single-table ORDER BY: an index leading with the order column lets
  // the planner skip the Sort entirely.
  const TableDef* d1 = mini_.db.catalog().FindTable(mini_.d1);
  std::vector<IndexDef> hypo = {
      MakeWhatIfIndex("d1_c1_cov", *d1, {1, 2}, 10'000)};  // (c1, c2)
  auto catalog = CatalogWithIndexes(mini_.db.catalog(), hypo, nullptr);
  ASSERT_TRUE(catalog.ok());
  Optimizer opt(&*catalog, &mini_.db.stats());
  QueryBuilder qb(&mini_.db.catalog());
  auto q = qb.From("d1")
               .Select("d1", "c1")
               .Select("d1", "c2")
               .OrderBy("d1", "c1")
               .Build();
  ASSERT_TRUE(q.ok());
  auto r = opt.Optimize(*q, PlannerKnobs{});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(ContainsKind(*r->best, PathKind::kSort))
      << r->best->Explain(*catalog);
  EXPECT_EQ(r->best->kind, PathKind::kIndexScan);

  // The exported per-IOC set of the join query contains a plan whose d1
  // leaf delivers the ORDER BY column's order and probes fact through an
  // fk index — the plan shape that avoids the top-level sort. (An
  // id-ordered merge-join leaf is correctly dominance-pruned here: it can
  // never beat hash join + sort under any configuration.)
  const TableDef* fact = mini_.db.catalog().FindTable(mini_.fact);
  std::vector<IndexDef> nlj_idx = {
      MakeWhatIfIndex("d1_c1", *d1, {1}, 10'000),
      MakeWhatIfIndex("fact_fk_d1", *fact, {1}, 1'000'000)};
  auto catalog2 = CatalogWithIndexes(mini_.db.catalog(), nlj_idx, nullptr);
  ASSERT_TRUE(catalog2.ok());
  Optimizer opt2(&*catalog2, &mini_.db.stats());
  PlannerKnobs hooks;
  hooks.hooks.export_all_plans = true;
  auto r2 = opt2.Optimize(mini_.JoinQuery(), hooks);
  ASSERT_TRUE(r2.ok());
  bool ordered_leaf = false;
  for (const auto& p : r2->exported) {
    for (const auto& slot : p->leaves) {
      if (slot.req == LeafReqKind::kOrdered && slot.table == mini_.d1) {
        ordered_leaf = true;
      }
    }
  }
  EXPECT_TRUE(ordered_leaf);
}

TEST_F(OptimizerTest, ExportedPlansHaveDistinctRequirementKeys) {
  Optimizer opt(&mini_.db.catalog(), &mini_.db.stats());
  PlannerKnobs knobs;
  knobs.hooks.export_all_plans = true;
  knobs.enable_nestloop = false;
  auto r = opt.Optimize(mini_.ThreeWayQuery(), knobs);
  ASSERT_TRUE(r.ok());
  std::set<std::string> keys;
  for (const auto& p : r->exported) {
    EXPECT_TRUE(keys.insert(p->RequirementOrderKey()).second);
  }
  EXPECT_GE(r->exported.size(), 1u);
}

TEST_F(OptimizerTest, AccessInfoExportedOnlyWithHook) {
  Optimizer opt(&mini_.db.catalog(), &mini_.db.stats());
  PlannerKnobs plain;
  auto r1 = opt.Optimize(mini_.JoinQuery(), plain);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->access_info.empty());

  PlannerKnobs hooked;
  hooked.hooks.keep_all_access_paths = true;
  auto r2 = opt.Optimize(mini_.JoinQuery(), hooked);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->access_info.size(), 2u);
}

TEST_F(OptimizerTest, GroupByProducesAggregation) {
  QueryBuilder qb(&mini_.db.catalog());
  auto q = qb.From("fact")
               .From("d1")
               .Select("d1", "c1")
               .Select("fact", "c2")
               .Join("fact", "fk_d1", "d1", "id")
               .GroupBy("d1", "c1")
               .Aggregate(AggKind::kSum)
               .Build();
  ASSERT_TRUE(q.ok());
  Optimizer opt(&mini_.db.catalog(), &mini_.db.stats());
  auto r = opt.Optimize(*q, PlannerKnobs{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ContainsKind(*r->best, PathKind::kHashAgg) ||
              ContainsKind(*r->best, PathKind::kGroupAgg));
  // Output rows bounded by the group count.
  EXPECT_LE(r->best->rows,
            mini_.db.stats().FindColumn({mini_.d1, 1})->n_distinct + 1);
}

TEST_F(OptimizerTest, ExplainRendersTree) {
  Optimizer opt(&mini_.db.catalog(), &mini_.db.stats());
  auto r = opt.Optimize(mini_.JoinQuery(), PlannerKnobs{});
  ASSERT_TRUE(r.ok());
  const std::string text = r->best->Explain(mini_.db.catalog());
  EXPECT_NE(text.find("fact"), std::string::npos);
  EXPECT_NE(text.find("cost="), std::string::npos);
  EXPECT_FALSE(r->best->Signature(mini_.db.catalog()).empty());
}

TEST(InterestingOrdersTest, PerTableOrdersFromClauses) {
  MiniStar mini;
  const Query q = mini.JoinQuery();  // join fact.fk_d1=d1.id, order d1.c1
  const auto orders = PerTableInterestingOrders(q);
  ASSERT_EQ(orders.size(), 2u);
  EXPECT_EQ(orders[0].size(), 1u);  // fact: fk_d1
  EXPECT_EQ(orders[1].size(), 2u);  // d1: id (join), c1 (order by)
  EXPECT_EQ(CountIocs(orders), 6u);  // (1+1)*(1+2)
}

TEST(InterestingOrdersTest, EnumeratorVisitsAllCombinations) {
  MiniStar mini;
  const Query q = mini.ThreeWayQuery();
  const auto orders = PerTableInterestingOrders(q);
  IocEnumerator it(orders);
  Ioc ioc;
  uint64_t n = 0;
  std::set<std::string> seen;
  while (it.Next(&ioc)) {
    ++n;
    seen.insert(IocToString(ioc, mini.db.catalog()));
  }
  EXPECT_EQ(n, CountIocs(orders));
  EXPECT_EQ(seen.size(), n);  // all distinct
  // First combination is all-Phi.
  it.Reset();
  ASSERT_TRUE(it.Next(&ioc));
  for (const auto& c : ioc) EXPECT_FALSE(c.valid());
}

TEST(AddPathTest, StandardModePrunesDominated) {
  auto mk = [](double total, double startup, OrderSpec order) {
    auto p = std::make_shared<Path>();
    p->kind = PathKind::kSeqScan;
    p->cost = {startup, total};
    p->order = std::move(order);
    return p;
  };
  std::vector<PathPtr> paths;
  AddPath(&paths, mk(100, 0, OrderSpec::None()), false);
  // Strictly worse: dropped.
  AddPath(&paths, mk(200, 10, OrderSpec::None()), false);
  EXPECT_EQ(paths.size(), 1u);
  // Better order survives despite higher cost.
  AddPath(&paths, mk(150, 0, OrderSpec::Single({0, 1})), false);
  EXPECT_EQ(paths.size(), 2u);
  // Cheaper with the same order evicts.
  AddPath(&paths, mk(120, 0, OrderSpec::Single({0, 1})), false);
  EXPECT_EQ(paths.size(), 2u);
  double best_ordered = 1e18;
  for (const auto& p : paths) {
    if (!p->order.empty()) best_ordered = p->cost.total;
  }
  EXPECT_EQ(best_ordered, 120);
}

}  // namespace
}  // namespace pinum
