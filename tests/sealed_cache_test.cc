// SealedCache: the serve-time form must price every configuration
// bit-identically to the build-time InumCache it was sealed from —
// including empty configurations, duplicate ids, ids outside the
// universe, and ids the access-cost table never saw — while pruning
// dominated plans and early-exiting on the internal-cost lower bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "advisor/candidate_generator.h"
#include "advisor/greedy_advisor.h"
#include "common/rng.h"
#include "common/simd.h"
#include "inum/sealed_cache.h"
#include "test_util.h"
#include "whatif/candidate_set.h"
#include "whatif/whatif_index.h"
#include "workload/cache_manager.h"
#include "workload/star_schema.h"

namespace pinum {
namespace {

/// Sealed-vs-build bit identity for one built workload: every sealed
/// cache must price every configuration — empty, atomic, random
/// subsets, duplicate ids, out-of-universe ids, the invalid sentinel —
/// bitwise equal to the InumCache it was sealed from. Free function so
/// both the shared-star suite and the family-parameterized suite drive
/// it; callers SCOPED_TRACE their (family, seed).
void ExpectSealedBitIdentical(const FamilyFixture& fix,
                              const WorkloadCacheResult& built,
                              uint64_t seed) {
  const std::vector<Query>& queries = fix.queries();
  Rng rng(seed);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const InumCache& cache = built.caches[qi];
    const SealedCache& sealed = built.sealed[qi];
    // Empty configuration.
    EXPECT_EQ(sealed.Cost({}), cache.Cost({})) << "query " << qi;
    for (int trial = 0; trial < 30; ++trial) {
      IndexConfig config =
          trial % 2 == 0
              ? RandomAtomicConfig(queries[qi], fix.set, &rng)
              : RandomSubsetConfig(fix.set, &rng, rng.NextDouble() * 0.2);
      // Duplicate an id.
      if (!config.empty() && rng.Chance(0.5)) {
        config.push_back(config[rng.Index(config.size())]);
      }
      // Name ids the per-query access-cost table has no entry for:
      // valid universe ids on unrelated tables (atomic sampling already
      // restricts to the query's tables only on even trials), ids past
      // the universe, and the invalid sentinel.
      if (rng.Chance(0.5)) {
        config.push_back(fix.set.NumIndexIds() + 100);
      }
      if (rng.Chance(0.5)) config.push_back(kInvalidIndexId);
      EXPECT_EQ(sealed.Cost(config), cache.Cost(config))
          << "query " << qi << " trial " << trial << " config size "
          << config.size();
    }
  }
}

/// The delta-costing property: with any base pinned into a context,
/// CostWithExtra(ctx, id) must equal Cost(base + {id}) bitwise for
/// every id — candidates on the query's tables (posting-bearing),
/// candidates on unrelated tables (empty postings), ids past the
/// universe, the invalid sentinel, and ids already in the base — and
/// the context must come back restored after every overlay. Bases
/// cover the same corners the Cost() suite pins: empty, duplicated
/// ids, out-of-universe ids, and configurations under which some
/// terms stay infeasible.
void ExpectDeltaBitIdentical(const FamilyFixture& fix,
                             const WorkloadCacheResult& built,
                             uint64_t seed) {
  const std::vector<Query>& queries = fix.queries();
  const IndexId universe = fix.set.NumIndexIds();
  Rng rng(seed);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const SealedCache& sealed = built.sealed[qi];
    SealedCache::CostContext ctx;
    for (int trial = 0; trial < 6; ++trial) {
      IndexConfig base;
      if (trial > 0) {
        base = trial % 2 == 1
                   ? RandomAtomicConfig(queries[qi], fix.set, &rng)
                   : RandomSubsetConfig(fix.set, &rng, rng.NextDouble() * 0.15);
        if (!base.empty() && rng.Chance(0.5)) {
          base.push_back(base[rng.Index(base.size())]);
        }
        if (rng.Chance(0.3)) base.push_back(universe + 50);
        if (rng.Chance(0.3)) base.push_back(kInvalidIndexId);
      }
      sealed.PrepareContext(base, &ctx);
      EXPECT_EQ(ctx.base_cost(), sealed.Cost(base))
          << "query " << qi << " trial " << trial;

      std::vector<IndexId> extras = fix.set.candidate_ids;
      extras.push_back(universe + 3);
      extras.push_back(kInvalidIndexId);
      if (!base.empty()) extras.push_back(base[0]);
      for (IndexId extra : extras) {
        IndexConfig full = base;
        full.push_back(extra);
        EXPECT_EQ(sealed.CostWithExtra(&ctx, extra), sealed.Cost(full))
            << "query " << qi << " trial " << trial << " extra " << extra;
      }
      // The overlays must have restored the pinned values exactly.
      EXPECT_EQ(sealed.CostWithExtra(&ctx, kInvalidIndexId),
                sealed.Cost(base))
          << "query " << qi << " trial " << trial;
    }
  }
}

/// The shared star fixture (tests/test_util.h — the paper's workload
/// capped at 5-way joins: the classic fixture build is one optimizer
/// call per IOC and the 6/7-way queries alone have 384 + 960 IOCs,
/// minutes under sanitizers for no added coverage) with PINUM and
/// classic caches — shared across the suite because cache construction
/// is the expensive part.
class SealedCacheTest : public ::testing::Test {
 protected:
  struct Fixture {
    std::unique_ptr<StarFixture> star;
    WorkloadCacheResult pinum;
    WorkloadCacheResult classic;

    const std::vector<Query>& queries() const { return star->queries(); }
    const CandidateSet& set() const { return star->set; }
  };
  static Fixture* fix_;

  static void SetUpTestSuite() {
    auto star = MakeStarFixture();
    ASSERT_NE(star, nullptr);
    fix_ = new Fixture{std::move(star), {}, {}};

    WorkloadCacheOptions popts;
    auto pinum = WorkloadCacheBuilder(&fix_->star->catalog(),
                                      &fix_->star->set,
                                      &fix_->star->stats(), popts)
                     .BuildAll(fix_->star->queries());
    ASSERT_TRUE(pinum.ok()) << pinum.status().ToString();
    fix_->pinum = std::move(*pinum);

    WorkloadCacheOptions copts;
    copts.mode = CacheBuildMode::kClassic;
    auto classic = WorkloadCacheBuilder(&fix_->star->catalog(),
                                        &fix_->star->set,
                                        &fix_->star->stats(), copts)
                       .BuildAll(fix_->star->queries());
    ASSERT_TRUE(classic.ok()) << classic.status().ToString();
    fix_->classic = std::move(*classic);
  }
  static void TearDownTestSuite() {
    delete fix_;
    fix_ = nullptr;
  }

  /// Uniformly random subset of the candidate universe (not atomic: any
  /// number of indexes per table) with probability `p` per candidate.
  static IndexConfig RandomSubset(Rng* rng, double p) {
    return RandomSubsetConfig(fix_->star->set, rng, p);
  }

  static void ExpectIdentical(const WorkloadCacheResult& built,
                              uint64_t seed) {
    ExpectSealedBitIdentical(*fix_->star, built, seed);
  }

  static void ExpectDeltaIdentical(const WorkloadCacheResult& built,
                                   uint64_t seed) {
    ExpectDeltaBitIdentical(*fix_->star, built, seed);
  }
};

SealedCacheTest::Fixture* SealedCacheTest::fix_ = nullptr;

TEST_F(SealedCacheTest, PinumSealedCostBitIdentical) {
  ExpectIdentical(fix_->pinum, 101);
}

TEST_F(SealedCacheTest, ClassicSealedCostBitIdentical) {
  ExpectIdentical(fix_->classic, 103);
}

TEST_F(SealedCacheTest, PinumCostWithExtraBitIdentical) {
  ExpectDeltaIdentical(fix_->pinum, 107);
}

TEST_F(SealedCacheTest, ClassicCostWithExtraBitIdentical) {
  ExpectDeltaIdentical(fix_->classic, 109);
}

TEST_F(SealedCacheTest, SweepEntryPointsMatchSingleExtraCalls) {
  // The batch sweeps (dense CostExtrasInto, inverted CostActiveExtrasInto)
  // must price exactly like per-id CostWithExtra calls — including
  // duplicate swept ids for the dense sweep.
  Rng rng(113);
  const IndexId universe = fix_->star->set.NumIndexIds();
  for (size_t qi = 0; qi < fix_->pinum.sealed.size(); ++qi) {
    const SealedCache& sealed = fix_->pinum.sealed[qi];
    const IndexConfig base =
        RandomAtomicConfig(fix_->star->queries()[qi], fix_->star->set, &rng);
    SealedCache::CostContext ctx;
    sealed.PrepareContext(base, &ctx);

    std::vector<IndexId> extras = fix_->star->set.candidate_ids;
    extras.push_back(universe + 9);
    extras.push_back(kInvalidIndexId);
    extras.push_back(extras[0]);  // duplicate
    std::vector<double> expected(extras.size());
    for (size_t e = 0; e < extras.size(); ++e) {
      expected[e] = sealed.CostWithExtra(&ctx, extras[e]);
    }

    std::vector<double> dense(extras.size());
    sealed.CostExtrasInto(&ctx, extras.data(), extras.size(), dense.data());
    EXPECT_EQ(dense, expected) << "query " << qi;

    // Inverted sweep over the unique prefix (its contract requires an
    // injective id -> slot map).
    const size_t unique = extras.size() - 1;
    std::vector<uint32_t> position_of_id(
        static_cast<size_t>(universe) + 10, SealedCache::kNotSwept);
    for (size_t e = 0; e < unique; ++e) {
      if (extras[e] >= 0) {
        position_of_id[static_cast<size_t>(extras[e])] =
            static_cast<uint32_t>(e);
      }
    }
    std::vector<double> inverted(unique);
    simd::Fill(inverted.data(), ctx.base_cost(), unique);
    sealed.CostActiveExtrasInto(&ctx, position_of_id.data(),
                                position_of_id.size(), inverted.data());
    for (size_t e = 0; e < unique; ++e) {
      EXPECT_EQ(inverted[e], expected[e]) << "query " << qi << " slot " << e;
    }
  }
}

TEST_F(SealedCacheTest, ContextExtensionMatchesFreshPreparation) {
  // Growing a context one winner at a time (the advisor's
  // iteration-to-iteration step) must leave it indistinguishable from a
  // context freshly prepared on the grown configuration.
  Rng rng(127);
  for (size_t qi = 0; qi < fix_->pinum.sealed.size(); ++qi) {
    const SealedCache& sealed = fix_->pinum.sealed[qi];
    SealedCache::CostContext grown;
    sealed.PrepareContext({}, &grown);
    IndexConfig config;
    for (int step = 0; step < 6; ++step) {
      const IndexId id =
          fix_->star->set.candidate_ids[rng.Index(fix_->star->set.candidate_ids.size())];
      config.push_back(id);
      sealed.ExtendContext(&grown, id);
      EXPECT_EQ(grown.base_cost(), sealed.Cost(config))
          << "query " << qi << " step " << step;
      SealedCache::CostContext fresh;
      sealed.PrepareContext(config, &fresh);
      EXPECT_EQ(grown.base_cost(), fresh.base_cost());
      for (int probe = 0; probe < 8; ++probe) {
        const IndexId extra = fix_->star->set.candidate_ids[rng.Index(
            fix_->star->set.candidate_ids.size())];
        EXPECT_EQ(sealed.CostWithExtra(&grown, extra),
                  sealed.CostWithExtra(&fresh, extra))
            << "query " << qi << " step " << step << " extra " << extra;
      }
    }
  }
}

TEST_F(SealedCacheTest, SealNeverGrowsThePlanSet) {
  for (const WorkloadCacheResult* built : {&fix_->pinum, &fix_->classic}) {
    for (size_t qi = 0; qi < built->caches.size(); ++qi) {
      EXPECT_EQ(built->sealed[qi].NumPlans() +
                    built->sealed[qi].NumPlansPruned(),
                built->caches[qi].NumPlans());
      EXPECT_GT(built->sealed[qi].NumPlans(), 0u);
      EXPECT_GT(built->sealed[qi].NumTerms(), 0u);
    }
  }
}

TEST_F(SealedCacheTest, BuilderCachesAreAlreadyIrredundant) {
  // Both builders eliminate the paper's Section IV redundancy at build
  // time (export-call dominance pruning, requirement relaxation, key
  // dedup), so on the star workload — whose uncapped candidate universe
  // serves every ordered requirement — the seal's exact pruning must
  // find nothing left. If this ever starts failing, a builder has begun
  // exporting removable plans. (The never-feasible rule is universe-
  // dependent, not builder redundancy: the chain and fact_pair families
  // below prune > 0 without contradicting this.)
  for (const WorkloadCacheResult* built : {&fix_->pinum, &fix_->classic}) {
    for (const SealedCache& sealed : built->sealed) {
      EXPECT_EQ(sealed.NumPlansPruned(), 0u);
    }
  }
}

TEST_F(SealedCacheTest, AdvisorDeltaPathMatchesBatchedPath) {
  // The advisor equivalence the ISSUE pins: the delta path (pinned
  // contexts + posting overlays, extended winner by winner) must return
  // the PR-2 batched path's AdvisorResult bit for bit, across stopping
  // regimes (budget-bound, count-bound, benefit-bound) and with a
  // thread pool sharding the delta evaluation across queries.
  const WorkloadCostEvaluator evaluator(&fix_->pinum.sealed);
  std::vector<AdvisorOptions> variants(4);
  variants[1].budget_bytes = 64 * 1024 * 1024;
  variants[2].max_indexes = 3;
  variants[3].min_relative_benefit = 0;
  for (size_t v = 0; v < variants.size(); ++v) {
    AdvisorOptions batched = variants[v];
    batched.cost_path = AdvisorCostPath::kBatched;
    AdvisorOptions delta = variants[v];
    delta.cost_path = AdvisorCostPath::kDelta;
    const AdvisorResult b = RunGreedyAdvisor(evaluator, fix_->star->set, batched);
    const AdvisorResult d = RunGreedyAdvisor(evaluator, fix_->star->set, delta);
    SCOPED_TRACE("variant " + std::to_string(v));
    ExpectSameAdvisorResult(b, d, /*same_cost_path=*/false);
    EXPECT_FALSE(b.chosen.empty());

    ThreadPool pool(0);
    const WorkloadCostEvaluator pooled(&fix_->pinum.sealed, &pool);
    const AdvisorResult dp = RunGreedyAdvisor(pooled, fix_->star->set, delta);
    ExpectSameAdvisorResult(b, dp, /*same_cost_path=*/false);
  }
}

TEST_F(SealedCacheTest, GrownUniverseIdsPriceAtBaseOnOldSeal) {
  // Incremental reseal's serving contract: after append-only universe
  // growth, an *old* sealed cache (narrower universe) must price the
  // appended ids exactly as a reseal over the wider universe would —
  // at their base cost, since the build-time cache never saw their
  // access costs — so un-resealed queries keep serving bit-identically.
  CandidateSet grown = fix_->star->set;
  const TableDef* fact =
      grown.universe.FindTable(fix_->star->primary_table());
  ASSERT_NE(fact, nullptr);
  auto added = grown.Append(
      {MakeWhatIfIndex("growth_a", *fact, {0}, 1000),
       MakeWhatIfIndex("growth_b", *fact, {1, 2}, 1000)});
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ASSERT_GT(grown.NumIndexIds(), fix_->star->set.NumIndexIds());

  Rng rng(131);
  for (size_t qi = 0; qi < fix_->pinum.sealed.size(); ++qi) {
    const SealedCache& narrow = fix_->pinum.sealed[qi];
    const SealedCache wide =
        SealedCache::Seal(fix_->pinum.caches[qi], grown.NumIndexIds());
    EXPECT_EQ(narrow.UniverseSize(),
              static_cast<size_t>(fix_->star->set.NumIndexIds()));
    EXPECT_EQ(wide.UniverseSize(), static_cast<size_t>(grown.NumIndexIds()));

    for (int trial = 0; trial < 10; ++trial) {
      IndexConfig config = RandomSubset(&rng, rng.NextDouble() * 0.15);
      const double without = narrow.Cost(config);
      IndexConfig with = config;
      for (IndexId id : *added) {
        if (rng.Chance(0.7)) with.push_back(id);
      }
      // New ids price as absent on the narrow seal and at base on the
      // wide one — the same bits either way.
      EXPECT_EQ(narrow.Cost(with), without) << "query " << qi;
      EXPECT_EQ(wide.Cost(with), without) << "query " << qi;
      EXPECT_EQ(wide.Cost(config), without) << "query " << qi;
    }

    // The delta path agrees: an appended id short-circuits to the base
    // cost on the narrow seal and overlays empty postings on the wide
    // one.
    SealedCache::CostContext narrow_ctx;
    SealedCache::CostContext wide_ctx;
    const IndexConfig base = RandomSubset(&rng, 0.1);
    narrow.PrepareContext(base, &narrow_ctx);
    wide.PrepareContext(base, &wide_ctx);
    EXPECT_EQ(narrow_ctx.base_cost(), wide_ctx.base_cost());
    for (IndexId id : *added) {
      EXPECT_EQ(narrow.CostWithExtra(&narrow_ctx, id),
                narrow_ctx.base_cost());
      EXPECT_EQ(wide.CostWithExtra(&wide_ctx, id), wide_ctx.base_cost());
    }
  }
}

/// The same bit-identity properties, over every registered workload
/// family (src/workload/workload_family.h): the sealed serve-time form
/// must answer like its InumCache on many-join chains, skewed stats,
/// and pruning-heavy capped universes exactly as it does on the star
/// schema. Each case builds its own instance (fast: family builds are
/// sub-second even under sanitizers) and SCOPED_TRACEs its (family,
/// seed) so a failure reproduces from the printed pair.
class FamilySealedCacheTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilySealedCacheTest, SealedAndDeltaCostsBitIdentical) {
  auto fix = MakeFamilyFixture(GetParam());
  ASSERT_NE(fix, nullptr);
  SCOPED_TRACE(fix->trace());
  auto built =
      WorkloadCacheBuilder(&fix->catalog(), &fix->set, &fix->stats(), {})
          .BuildAll(fix->queries());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ExpectSealedBitIdentical(*fix, *built, 211);
  ExpectDeltaBitIdentical(*fix, *built, 223);
}

TEST_P(FamilySealedCacheTest, SealTimePruningFiresWherePinned) {
  // The ISSUE's pruning coverage: the chain family's merge-order
  // requirements and the fact_pair family's capped candidate universe
  // leave some ordered requirements with no serving index, so sealing
  // must discard plans (never-feasible rule) — pruning is NOT a no-op
  // outside the star workload — while the bit-identity test above holds
  // on the very same pruned caches. Star (uncapped) must stay at zero,
  // matching BuilderCachesAreAlreadyIrredundant.
  auto fix = MakeFamilyFixture(GetParam());
  ASSERT_NE(fix, nullptr);
  SCOPED_TRACE(fix->trace());
  auto built =
      WorkloadCacheBuilder(&fix->catalog(), &fix->set, &fix->stats(), {})
          .BuildAll(fix->queries());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  size_t pruned = 0;
  for (const SealedCache& sealed : built->sealed) {
    pruned += sealed.NumPlansPruned();
  }
  const std::string& family = GetParam();
  if (family == "chain" || family == "fact_pair") {
    EXPECT_GT(pruned, 0u);
  } else if (family == "star") {
    EXPECT_EQ(pruned, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadFamilies, FamilySealedCacheTest,
    ::testing::ValuesIn(WorkloadFamilyNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(SealedCacheUnitTest, PrunesHandCraftedDominatedPlan) {
  // Two plans, identical single unordered slot, the second with a larger
  // internal cost: the second can never win and must be pruned, without
  // changing any priced cost.
  MiniStar mini;
  InumCache cache;
  Path plan;
  plan.kind = PathKind::kSeqScan;
  plan.table_pos = 0;
  plan.cost = {0, 100};
  LeafSlot slot;
  slot.table_pos = 0;
  slot.req = LeafReqKind::kUnordered;
  slot.unit_cost = 40;
  plan.leaves = {slot};
  cache.AddPlan(plan, mini.db.catalog());  // internal 60, unordered

  // Ordered requirement on c1 with a higher internal cost: the unordered
  // plan dominates it (unordered <= ordered pointwise). kIndexScan with a
  // delivered order keeps the requirement load-bearing under a top-level
  // ORDER BY, so AddPlan does not relax it away.
  Path ordered = plan;
  ordered.kind = PathKind::kIndexScan;
  ordered.cost = {0, 140};
  ordered.leaves[0].req = LeafReqKind::kOrdered;
  ordered.leaves[0].column = {mini.fact, 3};
  ordered.order = OrderSpec::Single({mini.fact, 3});
  cache.AddPlan(ordered, mini.db.catalog(), /*top_order_matters=*/true);
  ASSERT_EQ(cache.NumPlans(), 2u);

  TableAccessInfo info;
  info.pos = 0;
  info.table = mini.fact;
  ScanOption seq;
  seq.index = kInvalidIndexId;
  seq.cost = {0, 50};
  info.options.push_back(seq);
  ScanOption idx;
  idx.index = 3;
  idx.cost = {0, 20};
  idx.order = OrderSpec::Single({mini.fact, 3});
  info.options.push_back(idx);
  cache.mutable_access()->Absorb(info);

  const SealedCache sealed = SealedCache::Seal(cache, 8);
  EXPECT_EQ(sealed.NumPlans(), 1u);
  EXPECT_EQ(sealed.NumPlansPruned(), 1u);
  for (const IndexConfig& config :
       {IndexConfig{}, IndexConfig{3}, IndexConfig{3, 3}, IndexConfig{5}}) {
    EXPECT_EQ(sealed.Cost(config), cache.Cost(config));
  }
}

TEST(SealedCacheUnitTest, PrunesNeverFeasiblePlan) {
  // A plan requiring an order no index in the sealed universe delivers
  // prices infinite under every configuration: pruned at seal time.
  MiniStar mini;
  InumCache cache;
  Path plan;
  plan.kind = PathKind::kSeqScan;
  plan.table_pos = 0;
  plan.cost = {0, 100};
  LeafSlot slot;
  slot.table_pos = 0;
  slot.req = LeafReqKind::kUnordered;
  slot.unit_cost = 40;
  plan.leaves = {slot};
  cache.AddPlan(plan, mini.db.catalog());

  Path dead = plan;
  dead.kind = PathKind::kIndexScan;
  dead.cost = {0, 10};  // cheapest internal cost, but unservable
  dead.leaves[0].req = LeafReqKind::kOrdered;
  dead.leaves[0].column = {mini.fact, 4};
  dead.order = OrderSpec::Single({mini.fact, 4});
  cache.AddPlan(dead, mini.db.catalog(), true);
  ASSERT_EQ(cache.NumPlans(), 2u);

  TableAccessInfo info;
  info.pos = 0;
  info.table = mini.fact;
  ScanOption seq;
  seq.index = kInvalidIndexId;
  seq.cost = {0, 50};
  info.options.push_back(seq);
  ScanOption idx;  // index 3 orders c3, nothing orders c4
  idx.index = 3;
  idx.cost = {0, 20};
  idx.order = OrderSpec::Single({mini.fact, 3});
  info.options.push_back(idx);
  cache.mutable_access()->Absorb(info);

  const SealedCache sealed = SealedCache::Seal(cache, 8);
  EXPECT_EQ(sealed.NumPlans(), 1u);
  EXPECT_EQ(sealed.NumPlansPruned(), 1u);
  for (const IndexConfig& config : {IndexConfig{}, IndexConfig{3}}) {
    EXPECT_EQ(sealed.Cost(config), cache.Cost(config));
  }
}

TEST(SealedCacheUnitTest, KeepsIncomparablePlans) {
  // An ordered plan with *smaller* internal cost is not dominated by the
  // unordered one (and cannot dominate it either): both must survive.
  MiniStar mini;
  InumCache cache;
  Path plan;
  plan.kind = PathKind::kSeqScan;
  plan.table_pos = 0;
  plan.cost = {0, 100};
  LeafSlot slot;
  slot.table_pos = 0;
  slot.req = LeafReqKind::kUnordered;
  slot.unit_cost = 40;
  plan.leaves = {slot};
  cache.AddPlan(plan, mini.db.catalog());  // internal 60, unordered

  Path ordered = plan;
  ordered.kind = PathKind::kIndexScan;
  ordered.cost = {0, 70};  // internal 30: cheaper when an index orders
  ordered.leaves[0].req = LeafReqKind::kOrdered;
  ordered.leaves[0].column = {mini.fact, 3};
  ordered.order = OrderSpec::Single({mini.fact, 3});
  cache.AddPlan(ordered, mini.db.catalog(), true);
  ASSERT_EQ(cache.NumPlans(), 2u);

  TableAccessInfo info;
  info.pos = 0;
  info.table = mini.fact;
  ScanOption seq;
  seq.index = kInvalidIndexId;
  seq.cost = {0, 50};
  info.options.push_back(seq);
  ScanOption idx;
  idx.index = 3;
  idx.cost = {0, 45};
  idx.order = OrderSpec::Single({mini.fact, 3});
  info.options.push_back(idx);
  cache.mutable_access()->Absorb(info);

  const SealedCache sealed = SealedCache::Seal(cache, 8);
  EXPECT_EQ(sealed.NumPlans(), 2u);
  EXPECT_EQ(sealed.NumPlansPruned(), 0u);
  // Without the index the unordered plan wins (60 + 50 vs infeasible);
  // with it the ordered plan wins (30 + 45 < 60 + 45).
  EXPECT_EQ(sealed.Cost({}), cache.Cost({}));
  EXPECT_EQ(sealed.Cost({}), 110);
  EXPECT_EQ(sealed.Cost({3}), cache.Cost({3}));
  EXPECT_EQ(sealed.Cost({3}), 75);
}

}  // namespace
}  // namespace pinum
