// End-to-end integration: workload -> candidates -> PINUM caches ->
// greedy advisor -> build chosen indexes for real -> re-optimize ->
// execute, verifying identical results and improved runtimes. This is the
// Figure 6/7 pipeline at test scale.
#include <gtest/gtest.h>

#include "advisor/candidate_generator.h"
#include "advisor/greedy_advisor.h"
#include "executor/executor.h"
#include "optimizer/optimizer.h"
#include "pinum/pinum_builder.h"
#include "whatif/candidate_set.h"
#include "workload/star_schema.h"

namespace pinum {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static StarSchemaWorkload* workload_;

  static void SetUpTestSuite() {
    StarSchemaSpec spec;
    spec.scale = 0.001;  // fact: 60k rows — test scale
    spec.query_sizes = {2, 3, 4};
    auto w = StarSchemaWorkload::Create(spec);
    ASSERT_TRUE(w.ok());
    workload_ = new StarSchemaWorkload(std::move(*w));
    ASSERT_TRUE(workload_->Materialize(1.0).ok());
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
};

StarSchemaWorkload* IntegrationTest::workload_ = nullptr;

TEST_F(IntegrationTest, AdvisorPipelineSpeedsUpExecution) {
  Database& db = workload_->db();
  const std::vector<Query>& queries = workload_->queries();

  // 1. Baseline: optimize + execute without indexes.
  Optimizer base_opt(&db.catalog(), &db.stats());
  PlanExecutor exec(&db);
  std::vector<ExecResult> before;
  for (const Query& q : queries) {
    auto r = base_opt.Optimize(q, PlannerKnobs{});
    ASSERT_TRUE(r.ok()) << q.name;
    auto e = exec.Execute(q, *r->best);
    ASSERT_TRUE(e.ok()) << q.name << ": " << e.status().ToString();
    before.push_back(*e);
  }

  // 2. Candidates + PINUM caches + greedy advisor.
  CandidateOptions copt;
  auto cands =
      GenerateCandidates(queries, db.catalog(), db.stats(), copt);
  ASSERT_FALSE(cands.empty());
  auto set = MakeCandidateSet(db.catalog(), cands);
  ASSERT_TRUE(set.ok());
  std::vector<InumCache> caches;
  for (const Query& q : queries) {
    PinumBuildOptions opts;
    auto cache = BuildInumCachePinum(q, db.catalog(), *set, db.stats(),
                                     opts, nullptr);
    ASSERT_TRUE(cache.ok()) << q.name;
    caches.push_back(std::move(*cache));
  }
  AdvisorOptions aopts;
  aopts.budget_bytes = 1LL << 30;
  const AdvisorResult advice = RunGreedyAdvisor(caches, *set, aopts);
  ASSERT_FALSE(advice.chosen.empty());
  EXPECT_LT(advice.workload_cost_after, advice.workload_cost_before);

  // 3. Build the suggested indexes for real.
  for (IndexId id : advice.chosen) {
    const IndexDef* def = set->universe.FindIndex(id);
    ASSERT_NE(def, nullptr);
    auto built = db.BuildIndex("built_" + def->name, def->table,
                               def->key_columns);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
  }

  // 4. Re-optimize + execute; results must match, runtime should drop.
  Optimizer indexed_opt(&db.catalog(), &db.stats());
  double total_before = 0, total_after = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = indexed_opt.Optimize(queries[i], PlannerKnobs{});
    ASSERT_TRUE(r.ok());
    auto e = exec.Execute(queries[i], *r->best);
    ASSERT_TRUE(e.ok()) << queries[i].name << ": "
                        << e.status().ToString();
    EXPECT_EQ(e->rows, before[i].rows) << queries[i].name;
    EXPECT_EQ(e->checksum, before[i].checksum) << queries[i].name;
    EXPECT_TRUE(e->ordered_ok);
    total_before += before[i].millis;
    total_after += e->millis;
  }
  // The suggested indexes must help overall (the Figure 7 claim; exact
  // ratios are measured by the benchmark, not asserted here).
  EXPECT_LT(total_after, total_before);
}

TEST_F(IntegrationTest, PinumCostPredictsRealIndexBenefitDirection) {
  // The cache's predicted improvement direction matches reality: cost
  // with all candidates <= cost with none.
  Database& db = workload_->db();
  const Query& q = workload_->queries()[1];
  CandidateOptions copt;
  auto cands = GenerateCandidates({q}, db.catalog(), db.stats(), copt);
  auto set = MakeCandidateSet(db.catalog(), cands);
  ASSERT_TRUE(set.ok());
  PinumBuildOptions opts;
  auto cache =
      BuildInumCachePinum(q, db.catalog(), *set, db.stats(), opts, nullptr);
  ASSERT_TRUE(cache.ok());
  EXPECT_LE(cache->Cost(set->candidate_ids), cache->Cost({}) + 1e-6);
}

}  // namespace
}  // namespace pinum
