#include <gtest/gtest.h>

#include "storage/btree_index.h"
#include "test_util.h"
#include "whatif/candidate_set.h"
#include "whatif/whatif_index.h"

namespace pinum {
namespace {

TEST(WhatIfIndexTest, LeafOnlySizeEstimate) {
  TableDef t;
  t.name = "t";
  t.id = 0;
  t.columns = {{"a", TypeId::kInt64}, {"b", TypeId::kInt64}};
  const IndexDef def = MakeWhatIfIndex("w", t, {0}, 1'000'000);
  EXPECT_TRUE(def.hypothetical);
  EXPECT_GT(def.leaf_pages, 0);
  // Section V-A: internal pages ignored.
  EXPECT_EQ(def.total_pages, def.leaf_pages);
  EXPECT_EQ(def.height, 0);
  EXPECT_EQ(IndexSizeBytes(def), def.total_pages * PageLayout::kPageSize);
}

TEST(WhatIfIndexTest, EstimateMatchesRealLeafPagesExactly) {
  // The what-if estimator and the real build share the same leaf-page
  // math; the only size difference is the internal pages.
  MiniStar mini;
  ASSERT_TRUE(mini.Materialize(200'000, 1'000).ok());
  const TableDef* fact = mini.db.catalog().FindTable(mini.fact);
  const IndexDef estimated =
      MakeWhatIfIndex("w", *fact, {3}, 200'000);
  auto real = mini.db.BuildIndex("real_c1", mini.fact, {3});
  ASSERT_TRUE(real.ok());
  const IndexDef* built = mini.db.catalog().FindIndex(*real);
  EXPECT_EQ(estimated.leaf_pages, built->leaf_pages);
  EXPECT_GE(built->total_pages, built->leaf_pages);
  // Relative size error = internal/total: small (the paper's 0.33%-scale
  // error source).
  const double err =
      static_cast<double>(built->total_pages - estimated.total_pages) /
      static_cast<double>(built->total_pages);
  EXPECT_GE(err, 0.0);
  EXPECT_LT(err, 0.02);
}

TEST(WhatIfCatalogTest, OverlayDoesNotTouchBase) {
  MiniStar mini;
  const TableDef* d1 = mini.db.catalog().FindTable(mini.d1);
  std::vector<IndexDef> hypo = {MakeWhatIfIndex("w1", *d1, {0}, 10'000),
                                MakeWhatIfIndex("w2", *d1, {1}, 10'000)};
  std::vector<IndexId> ids;
  auto overlay = CatalogWithIndexes(mini.db.catalog(), hypo, &ids);
  ASSERT_TRUE(overlay.ok());
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(overlay->NumIndexes(), 2u);
  EXPECT_EQ(mini.db.catalog().NumIndexes(), 0u);
}

TEST(WhatIfCatalogTest, SubsetKeepsOnlyRequested) {
  MiniStar mini;
  const TableDef* d1 = mini.db.catalog().FindTable(mini.d1);
  std::vector<IndexDef> cands = {MakeWhatIfIndex("w1", *d1, {0}, 10'000),
                                 MakeWhatIfIndex("w2", *d1, {1}, 10'000),
                                 MakeWhatIfIndex("w3", *d1, {2}, 10'000)};
  auto set = MakeCandidateSet(mini.db.catalog(), cands);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->candidate_ids.size(), 3u);
  const Catalog sub = set->Subset({set->candidate_ids[1]});
  EXPECT_EQ(sub.NumIndexes(), 1u);
  EXPECT_NE(sub.FindIndex(set->candidate_ids[1]), nullptr);
  // Ids are stable: the subset keeps the universe id.
  EXPECT_EQ(sub.FindIndex(set->candidate_ids[1])->name, "w2");
}

TEST(WhatIfCatalogTest, CandidateSetPreservesBaseIndexes) {
  MiniStar mini;
  ASSERT_TRUE(mini.Materialize(1'000, 100).ok());
  auto real = mini.db.BuildIndex("real_idx", mini.d1, {0});
  ASSERT_TRUE(real.ok());
  const TableDef* d1 = mini.db.catalog().FindTable(mini.d1);
  std::vector<IndexDef> cands = {MakeWhatIfIndex("w1", *d1, {1}, 100)};
  auto set = MakeCandidateSet(mini.db.catalog(), cands);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->base_index_ids.size(), 1u);
  // Subset with no candidates still contains the real index.
  const Catalog sub = set->Subset({});
  EXPECT_EQ(sub.NumIndexes(), 1u);
  EXPECT_NE(sub.FindIndexByName("real_idx"), nullptr);
}

TEST(WhatIfCatalogTest, DuplicateCandidateNamesRejected) {
  MiniStar mini;
  const TableDef* d1 = mini.db.catalog().FindTable(mini.d1);
  std::vector<IndexDef> dup = {MakeWhatIfIndex("w", *d1, {0}, 100),
                               MakeWhatIfIndex("w", *d1, {1}, 100)};
  auto set = MakeCandidateSet(mini.db.catalog(), dup);
  EXPECT_FALSE(set.ok());
}

TEST(WhatIfCatalogTest, AppendKeepsExistingIdsStable) {
  // The append-only growth contract incremental reseal stands on: an
  // Append assigns fresh ids strictly above every existing one and
  // leaves the candidate-id prefix, base ids, and the old NumIndexIds
  // bound untouched — old sealed vectors' subscripts stay meaningful.
  MiniStar mini;
  const TableDef* d1 = mini.db.catalog().FindTable(mini.d1);
  const TableDef* fact = mini.db.catalog().FindTable(mini.fact);
  std::vector<IndexDef> cands = {MakeWhatIfIndex("w1", *d1, {1}, 100),
                                 MakeWhatIfIndex("w2", *fact, {3}, 1000)};
  auto set = MakeCandidateSet(mini.db.catalog(), cands);
  ASSERT_TRUE(set.ok());

  const CandidateSet before = *set;
  const IndexId old_bound = before.NumIndexIds();
  auto added = set->Append({MakeWhatIfIndex("w3", *fact, {4}, 1000),
                            MakeWhatIfIndex("w4", *d1, {2}, 100)});
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ASSERT_EQ(added->size(), 2u);

  // Prefix stability: old ids unchanged and still resolving to the same
  // definitions; new ids strictly above the old bound.
  EXPECT_TRUE(set->HasCandidatePrefix(before.candidate_ids));
  EXPECT_EQ(set->base_index_ids, before.base_index_ids);
  for (IndexId id : before.candidate_ids) {
    EXPECT_EQ(set->universe.FindIndex(id)->name,
              before.universe.FindIndex(id)->name);
  }
  for (IndexId id : *added) {
    EXPECT_GE(id, old_bound);
    EXPECT_NE(set->universe.FindIndex(id), nullptr);
  }
  EXPECT_GT(set->NumIndexIds(), old_bound);
  EXPECT_FALSE(before.HasCandidatePrefix(set->candidate_ids));
}

TEST(WhatIfCatalogTest, AppendIsAllOrNothing) {
  // A failing Append (duplicate name mid-list) must leave the set
  // byte-for-byte untouched — a half-grown universe would break the
  // prefix contract for every snapshot sealed before it.
  MiniStar mini;
  const TableDef* d1 = mini.db.catalog().FindTable(mini.d1);
  std::vector<IndexDef> cands = {MakeWhatIfIndex("w1", *d1, {1}, 100)};
  auto set = MakeCandidateSet(mini.db.catalog(), cands);
  ASSERT_TRUE(set.ok());
  const std::vector<IndexId> before_ids = set->candidate_ids;
  const IndexId before_bound = set->NumIndexIds();

  auto added = set->Append({MakeWhatIfIndex("w_ok", *d1, {2}, 100),
                            MakeWhatIfIndex("w1", *d1, {0}, 100)});
  EXPECT_FALSE(added.ok());
  EXPECT_EQ(set->candidate_ids, before_ids);
  EXPECT_EQ(set->NumIndexIds(), before_bound);
  EXPECT_EQ(set->universe.FindIndexByName("w_ok"), nullptr);
}

}  // namespace
}  // namespace pinum
