// Plan-stability corpus contract (src/workload/plan_corpus.h): corpus
// text is a deterministic function of its spec, the differ reports
// exactly the entries that changed (verified against an independent
// reparse in this file), and — the reason the corpus exists — an
// intentional cost-model perturbation is caught with its precise blast
// radius: cost-bearing entries move, the workload's structural identity
// does not.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "workload/plan_corpus.h"
#include "workload/workload_family.h"

namespace pinum {
namespace {

/// Independent reference parser for the `key = value` corpus format —
/// deliberately NOT sharing code with DiffCorpusText, so the differ's
/// answer is cross-checked against a second implementation.
std::map<std::string, std::string> Reparse(const std::string& text) {
  std::map<std::string, std::string> entries;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t sep = line.find(" = ");
    if (sep == std::string::npos) continue;
    entries[line.substr(0, sep)] = line.substr(sep + 3);
  }
  return entries;
}

TEST(PlanCorpusTest, DefaultGridCoversEveryFamilyAtTwoSeeds) {
  const std::vector<CorpusSpec> specs = DefaultCorpusSpecs();
  ASSERT_EQ(specs.size(), WorkloadFamilyNames().size() * 2);
  std::set<std::string> files;
  for (const CorpusSpec& spec : specs) {
    EXPECT_TRUE(spec.seed == 1 || spec.seed == 2);
    EXPECT_EQ(CorpusFileName(spec),
              spec.family + "_s" + std::to_string(spec.seed) + ".corpus");
    EXPECT_TRUE(files.insert(CorpusFileName(spec)).second);
  }
  for (const std::string& family : WorkloadFamilyNames()) {
    EXPECT_TRUE(files.count(family + "_s1.corpus")) << family;
    EXPECT_TRUE(files.count(family + "_s2.corpus")) << family;
  }
}

TEST(PlanCorpusTest, CorpusTextIsDeterministic) {
  for (const std::string& family : WorkloadFamilyNames()) {
    SCOPED_TRACE("family=" + family);
    CorpusSpec spec;
    spec.family = family;
    auto a = BuildCorpusText(spec);
    auto b = BuildCorpusText(spec);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(*a, *b);
    EXPECT_TRUE(DiffCorpusText(*a, *b).empty());
    // And the text carries actual plan entries, not just headers.
    const auto entries = Reparse(*a);
    EXPECT_GT(entries.size(), 10u);
    EXPECT_TRUE(entries.count("workload.family"));
    EXPECT_EQ(entries.at("workload.family"), family);
  }
}

TEST(PlanCorpusTest, UnknownFamilyPropagatesTheError) {
  CorpusSpec spec;
  spec.family = "no_such_family";
  auto text = BuildCorpusText(spec);
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanCorpusTest, DiffReportsChangedRemovedThenAdded) {
  const std::string golden =
      "# comment\n"
      "a = 1\n"
      "b = 2\n"
      "\n"
      "c = 3\n";
  const std::string fresh =
      "a = 1\n"
      "b = 9\n"
      "# other comment\n"
      "d = 4\n";
  const std::vector<CorpusDelta> deltas = DiffCorpusText(golden, fresh);
  ASSERT_EQ(deltas.size(), 3u);
  // Changed and removed keys in golden order first, then added keys.
  EXPECT_EQ(deltas[0].key, "b");
  EXPECT_EQ(deltas[0].old_value, "2");
  EXPECT_EQ(deltas[0].new_value, "9");
  EXPECT_EQ(deltas[1].key, "c");
  EXPECT_EQ(deltas[1].old_value, "3");
  EXPECT_EQ(deltas[1].new_value, "");
  EXPECT_EQ(deltas[2].key, "d");
  EXPECT_EQ(deltas[2].old_value, "");
  EXPECT_EQ(deltas[2].new_value, "4");

  const std::string report = FormatDeltas(deltas);
  EXPECT_NE(report.find("b"), std::string::npos);
  EXPECT_NE(report.find("d"), std::string::npos);
}

TEST(PlanCorpusTest, CostModelPerturbationIsCaughtWithExactBlastRadius) {
  // The acceptance property behind the CI corpus-diff job: nudge one
  // cost constant (random_page_cost 4.0 -> 4.5 — the kind of tweak that
  // silently flips plans in systems without plan-stability testing) and
  // the diff must (a) fire, (b) agree entry-for-entry with an
  // independent reparse of both texts, and (c) touch only cost-bearing
  // entries — the workload's structural identity lines must not move.
  CorpusSpec spec;
  spec.family = "skew";
  auto golden = BuildCorpusText(spec);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();

  WorkloadCacheOptions perturbed;
  perturbed.pinum.base_knobs.cost.random_page_cost = 4.5;
  auto fresh = BuildCorpusText(spec, perturbed);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ASSERT_NE(*golden, *fresh);

  const std::vector<CorpusDelta> deltas = DiffCorpusText(*golden, *fresh);
  ASSERT_FALSE(deltas.empty());

  // (b) exactness: the differ's report equals the set difference a
  // reference parser computes — no entry over- or under-reported.
  const auto golden_entries = Reparse(*golden);
  const auto fresh_entries = Reparse(*fresh);
  std::set<std::string> expected;
  for (const auto& [key, value] : golden_entries) {
    auto it = fresh_entries.find(key);
    if (it == fresh_entries.end() || it->second != value) {
      expected.insert(key);
    }
  }
  for (const auto& [key, value] : fresh_entries) {
    if (!golden_entries.count(key)) expected.insert(key);
  }
  std::set<std::string> reported;
  for (const CorpusDelta& d : deltas) {
    EXPECT_TRUE(reported.insert(d.key).second)
        << "duplicate delta for " << d.key;
    EXPECT_NE(d.old_value, d.new_value) << d.key;
    // Every reported old/new value matches what the texts actually say.
    auto g = golden_entries.find(d.key);
    EXPECT_EQ(d.old_value, g == golden_entries.end() ? "" : g->second)
        << d.key;
    auto f = fresh_entries.find(d.key);
    EXPECT_EQ(d.new_value, f == fresh_entries.end() ? "" : f->second)
        << d.key;
  }
  EXPECT_EQ(reported, expected);

  // (c) blast radius: costs moved, identity did not. Page-cost changes
  // reprice plans (per-plan internal/access hex costs, cost[...] rows,
  // advisor trajectory) but never the workload's shape.
  bool plan_cost_moved = false;
  for (const CorpusDelta& d : deltas) {
    if (d.key.find(".plan[") != std::string::npos ||
        d.key.find(".cost[") != std::string::npos) {
      plan_cost_moved = true;
    }
  }
  EXPECT_TRUE(plan_cost_moved)
      << "perturbation fired but no per-plan cost entry changed";
  for (const char* stable :
       {"workload.family", "workload.seed", "workload.queries",
        "workload.candidates", "workload.universe_ids"}) {
    EXPECT_FALSE(reported.count(stable)) << stable << " must not change";
  }
}

}  // namespace
}  // namespace pinum
