// Differential rebuild-equivalence property suite for incremental
// reseal: after drifting the world for k of N queries (statistics
// re-ANALYZEd and/or candidates appended to the universe),
// WorkloadCacheBuilder::RebuildQueries over exactly the stale set must
// make k queries' worth of optimizer calls and leave the serving layer
// — BatchCost over random configurations and RunGreedyAdvisor across
// both cost paths, pooled and serial — *bitwise identical* to a cold
// BuildAll under the drifted world. Every case is seeded through the
// drift generator (src/workload/drift.h) and prints its seed on
// failure, so any divergence reproduces from the log line alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "advisor/greedy_advisor.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "test_util.h"
#include "whatif/candidate_set.h"
#include "workload/cache_manager.h"
#include "workload/drift.h"

namespace pinum {
namespace {

/// One differential case, fully seeded: copy the pristine world,
/// build, drift to >= `target` stale queries, reseal incrementally,
/// cold-rebuild, compare everything bitwise.
void RunDifferentialCase(const Catalog& catalog,
                         const CandidateSet& pristine_set,
                         const StatsCatalog& pristine_stats,
                         const std::vector<Query>& queries, size_t target,
                         uint64_t seed, const WorkloadCacheOptions& opts,
                         const DriftOptions& dopts = {}) {
  SCOPED_TRACE("reseal case: seed " + std::to_string(seed) + ", target " +
               std::to_string(target) + " of " +
               std::to_string(queries.size()) + " queries, mode " +
               (opts.mode == CacheBuildMode::kPinum ? "pinum" : "classic") +
               ", add_candidates " + std::to_string(dopts.add_candidates));
  // Per-case world copies: drift mutates them, the fixture's pristine
  // originals serve the next case.
  CandidateSet set = pristine_set;
  StatsCatalog stats = pristine_stats;

  WorkloadCacheBuilder incremental(&catalog, &set, &stats, opts);
  auto built = incremental.BuildAll(queries);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  auto drift = ApplyDrift(queries, &set, &stats, target, seed, dopts);
  ASSERT_TRUE(drift.ok()) << drift.status().ToString();
  if (target > 0) {
    ASSERT_GE(drift->stale_queries.size(),
              std::min(target, queries.size()));
  }

  WorkloadCacheStats rebuild_totals;
  const Status st = incremental.RebuildQueries(drift->stale_queries,
                                               queries, &*built,
                                               &rebuild_totals);
  ASSERT_TRUE(st.ok()) << st.ToString();

  // The comparator: a cold whole-workload build under the drifted
  // world, from a fresh builder with an empty shared store.
  WorkloadCacheBuilder cold_builder(&catalog, &set, &stats, opts);
  auto cold = cold_builder.BuildAll(queries);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  // O(k) optimizer calls, not O(N): plan-cache calls are per query
  // and unaffected by sharing, so the rebuild must have paid exactly
  // the stale queries' share of the cold build's.
  int64_t stale_plan_calls = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (std::find(drift->stale_queries.begin(), drift->stale_queries.end(),
                  queries[i].name) != drift->stale_queries.end()) {
      stale_plan_calls += cold->per_query[i].plan_cache_calls;
    }
  }
  EXPECT_EQ(rebuild_totals.plan_cache_calls, stale_plan_calls);
  if (drift->stale_queries.size() < queries.size()) {
    EXPECT_LT(rebuild_totals.plan_cache_calls +
                  rebuild_totals.access_cost_calls,
              cold->totals.plan_cache_calls +
                  cold->totals.access_cost_calls);
  }

  // Evaluator identity: random configurations over the (possibly
  // grown) universe — empty, atomic, multi-index, appended ids,
  // out-of-universe ids — priced through the pooled batch path on the
  // incremental caches and the serial path on the cold ones.
  ThreadPool pool(4);
  const WorkloadCostEvaluator inc_eval(&built->sealed, &pool);
  const WorkloadCostEvaluator cold_eval(&cold->sealed);
  Rng rng(seed * 7919 + target);
  std::vector<IndexConfig> configs;
  configs.push_back({});
  for (int t = 0; t < 24; ++t) {
    IndexConfig config =
        RandomSubsetConfig(set, &rng, rng.NextDouble() * 0.2);
    for (IndexId added : drift->added_candidates) {
      if (rng.Chance(0.5)) config.push_back(added);
    }
    if (rng.Chance(0.3)) config.push_back(set.NumIndexIds() + 17);
    configs.push_back(std::move(config));
  }
  const std::vector<double> incremental_costs = inc_eval.BatchCost(configs);
  ASSERT_EQ(incremental_costs.size(), configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    EXPECT_EQ(incremental_costs[c], cold_eval.Cost(configs[c]))
        << "config " << c << " size " << configs[c].size();
  }

  // Advisor identity: both cost paths, pooled and serial, field for
  // field against the cold build's serial batched run.
  AdvisorOptions aopts;
  aopts.budget_bytes = 512LL * 1024 * 1024;
  for (const AdvisorCostPath path :
       {AdvisorCostPath::kDelta, AdvisorCostPath::kBatched}) {
    SCOPED_TRACE(path == AdvisorCostPath::kDelta ? "delta path"
                                                 : "batched path");
    AdvisorOptions popts = aopts;
    popts.cost_path = path;
    const AdvisorResult want = RunGreedyAdvisor(cold->sealed, set, popts);
    const AdvisorResult serial =
        RunGreedyAdvisor(WorkloadCostEvaluator(&built->sealed), set, popts);
    ExpectSameAdvisorResult(want, serial);
    const AdvisorResult pooled = RunGreedyAdvisor(inc_eval, set, popts);
    ExpectSameAdvisorResult(want, pooled);
  }
}

// RunDifferentialCase's callers below share the expensive star fixture.
class IncrementalResealTest : public ::testing::Test {
 protected:
  static std::unique_ptr<StarFixture> fix_;

  static void SetUpTestSuite() {
    fix_ = MakeStarFixture();
    ASSERT_NE(fix_, nullptr);
  }
  static void TearDownTestSuite() { fix_.reset(); }

  static void RunStarCase(size_t target, uint64_t seed,
                          const DriftOptions& dopts = {}) {
    WorkloadCacheOptions opts;
    RunDifferentialCase(fix_->catalog(), fix_->set, fix_->stats(),
                        fix_->queries(), target, seed, opts, dopts);
  }
};

std::unique_ptr<StarFixture> IncrementalResealTest::fix_ = nullptr;

TEST_F(IncrementalResealTest, NoDriftRebuildsNothing) {
  // k = 0: the empty reseal is a no-op and the world stays bitwise
  // identical to a cold rebuild of the unchanged world.
  RunStarCase(0, 11);
}

TEST_F(IncrementalResealTest, SingleQueryDrift) {
  // k = 1-ish: the generator drifts the smallest-radius table, so the
  // stale set is as small as the topology allows.
  RunStarCase(1, 13);
  RunStarCase(1, 17);
}

TEST_F(IncrementalResealTest, HalfWorkloadDrift) {
  RunStarCase(fix_->queries().size() / 2, 19);
  RunStarCase(fix_->queries().size() / 2, 23);
}

TEST_F(IncrementalResealTest, FullWorkloadDrift) {
  // k = N: every query stale — incremental and cold converge to the
  // same full rebuild, bit for bit.
  RunStarCase(fix_->queries().size(), 29);
}

TEST_F(IncrementalResealTest, UniverseGrowthDrift) {
  // Candidates appended to the universe: rebuilt queries reseal against
  // the grown universe, untouched queries keep serving their narrower
  // seal (new ids price at base), and both must agree bitwise with a
  // cold build over the grown universe — including advisor runs that
  // may *choose* an appended candidate.
  DriftOptions dopts;
  dopts.add_candidates = 2;
  RunStarCase(1, 31, dopts);
  RunStarCase(fix_->queries().size(), 37, dopts);
}

TEST_F(IncrementalResealTest, GrowthOnlyDriftWithoutStatsChange) {
  // Growth with no stats perturbation at all (target 0 + appends): only
  // queries touching the appended candidates' tables go stale.
  DriftOptions dopts;
  dopts.add_candidates = 1;
  dopts.factor_min = dopts.factor_max = 1.0;
  RunStarCase(0, 41, dopts);
}

TEST_F(IncrementalResealTest, VariedQueryMix) {
  // Workload churn between rounds: a seeded subset + clones of the star
  // queries, then the same differential property.
  for (const uint64_t seed : {43u, 47u}) {
    const std::vector<Query> mix =
        VaryQueryMix(fix_->queries(), seed, /*min_keep=*/2);
    ASSERT_GE(mix.size(), 2u);
    WorkloadCacheOptions opts;
    RunDifferentialCase(fix_->catalog(), fix_->set, fix_->stats(), mix,
                        mix.size() / 2, seed, opts);
  }
}

TEST_F(IncrementalResealTest, UntouchedQueriesKeepTheirSealedForm) {
  CandidateSet set = fix_->set;
  StatsCatalog stats = fix_->stats();
  const std::vector<Query>& queries = fix_->queries();
  WorkloadCacheOptions opts;
  WorkloadCacheBuilder builder(&fix_->catalog(), &set, &stats, opts);
  auto built = builder.BuildAll(queries);
  ASSERT_TRUE(built.ok());

  DriftOptions dopts;
  dopts.add_candidates = 1;
  auto drift = ApplyDrift(queries, &set, &stats, 1, 53, dopts);
  ASSERT_TRUE(drift.ok());
  ASSERT_FALSE(drift->stale_queries.empty());
  ASSERT_LT(drift->stale_queries.size(), queries.size());

  // Record the untouched queries' per-query accounting and a sampled
  // cost before the reseal; both must come through unchanged.
  Rng rng(59);
  std::vector<double> before(queries.size());
  const IndexConfig probe = RandomSubsetConfig(set, &rng, 0.1);
  for (size_t i = 0; i < queries.size(); ++i) {
    before[i] = built->sealed[i].Cost(probe);
  }
  const std::vector<QueryBuildStats> per_query_before = built->per_query;

  ASSERT_TRUE(
      builder.RebuildQueries(drift->stale_queries, queries, &*built).ok());
  const IndexId grown_universe = set.NumIndexIds();
  for (size_t i = 0; i < queries.size(); ++i) {
    const bool stale =
        std::find(drift->stale_queries.begin(), drift->stale_queries.end(),
                  queries[i].name) != drift->stale_queries.end();
    if (stale) {
      // Rebuilt queries sealed against the grown universe.
      EXPECT_EQ(built->sealed[i].UniverseSize(),
                static_cast<size_t>(grown_universe));
    } else {
      EXPECT_EQ(built->sealed[i].Cost(probe), before[i]) << "query " << i;
      EXPECT_EQ(built->per_query[i].plan_cache_calls,
                per_query_before[i].plan_cache_calls);
      EXPECT_LT(built->sealed[i].UniverseSize(),
                static_cast<size_t>(grown_universe));
    }
  }
}

TEST_F(IncrementalResealTest, ScratchReuseAcrossResealServesLiveCosts) {
  // Regression: BatchCostWithExtras reuses pinned contexts whenever the
  // scratch shape and base match, but RebuildQueries replaces sealed
  // caches in place — before the seal-id check, a scratch pinned before
  // the reseal kept serving the *old* generation's term layout (silently
  // wrong or out-of-range costs). Every post-reseal answer must be
  // bit-identical to a fresh-scratch evaluation.
  CandidateSet set = fix_->set;
  StatsCatalog stats = fix_->stats();
  const std::vector<Query>& queries = fix_->queries();
  WorkloadCacheOptions opts;
  WorkloadCacheBuilder builder(&fix_->catalog(), &set, &stats, opts);
  auto built = builder.BuildAll(queries);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const WorkloadCostEvaluator evaluator(&built->sealed);
  std::vector<IndexId> extras = set.candidate_ids;

  // Two scratches pinned to the empty base against the pre-drift seals:
  // after the reseal, one is asked the same base again (the `reuse` fast
  // path) and one is asked base + one id (the advisor's `extend` fast
  // path) — both fast paths must notice the dead seals and re-prepare.
  WorkloadCostEvaluator::EvalScratch reuse_scratch;
  WorkloadCostEvaluator::EvalScratch extend_scratch;
  const std::vector<double> pre =
      evaluator.BatchCostWithExtras({}, extras, &reuse_scratch);
  ASSERT_EQ(pre.size(), extras.size());
  (void)evaluator.BatchCostWithExtras({}, extras, &extend_scratch);
  IndexConfig grown;
  grown.push_back(extras[0]);

  // Drift hard enough that every query's costs actually move, then
  // reseal in place — the scratches' contexts now point at dead seals.
  auto drift = ApplyDrift(queries, &set, &stats, queries.size(), 61);
  ASSERT_TRUE(drift.ok()) << drift.status().ToString();
  ASSERT_TRUE(
      builder.RebuildQueries(drift->stale_queries, queries, &*built).ok());

  struct Case {
    const char* name;
    IndexConfig base;
    WorkloadCostEvaluator::EvalScratch* scratch;
  };
  Case cases[] = {{"reuse-on-stale", {}, &reuse_scratch},
                  {"extend-on-stale", grown, &extend_scratch}};
  for (Case& c : cases) {
    SCOPED_TRACE(c.name);
    const std::vector<double> stale_scratch_costs =
        evaluator.BatchCostWithExtras(c.base, extras, c.scratch);
    WorkloadCostEvaluator::EvalScratch fresh;
    const std::vector<double> fresh_costs =
        evaluator.BatchCostWithExtras(c.base, extras, &fresh);
    ASSERT_EQ(stale_scratch_costs.size(), fresh_costs.size());
    bool any_moved = false;
    for (size_t e = 0; e < extras.size(); ++e) {
      EXPECT_EQ(stale_scratch_costs[e], fresh_costs[e]) << "extra " << e;
      // And both match the from-scratch configuration price.
      IndexConfig config = c.base;
      config.push_back(extras[e]);
      EXPECT_EQ(fresh_costs[e], evaluator.Cost(config)) << "extra " << e;
      any_moved = any_moved || fresh_costs[e] != pre[e];
    }
    // The drift really changed the answers, so the identity above is not
    // vacuously comparing pre-drift values.
    EXPECT_TRUE(any_moved);
  }
}

TEST_F(IncrementalResealTest, ScratchBoundToOneCacheVectorAssertsInDebug) {
  // The header's contract — "a scratch belongs to one evaluator's cache
  // vector" — is now enforced: the first BatchCostWithExtras records the
  // vector's identity in the scratch and debug builds assert on any
  // later call through a different vector. (Release builds stay safe
  // regardless: the foreign vector's seal ids never match the pinned
  // contexts', so every context is re-prepared — but that silent full
  // re-prepare storm is exactly the misuse worth catching loudly.)
  CandidateSet set = fix_->set;
  StatsCatalog stats = fix_->stats();
  WorkloadCacheBuilder builder(&fix_->catalog(), &set, &stats,
                               WorkloadCacheOptions{});
  auto built_a = builder.BuildAll(fix_->queries());
  ASSERT_TRUE(built_a.ok()) << built_a.status().ToString();
  auto built_b = builder.BuildAll(fix_->queries());
  ASSERT_TRUE(built_b.ok()) << built_b.status().ToString();

  const WorkloadCostEvaluator eval_a(&built_a->sealed);
  const WorkloadCostEvaluator eval_b(&built_b->sealed);
  const std::vector<IndexId>& extras = set.candidate_ids;
  WorkloadCostEvaluator::EvalScratch scratch;
  (void)eval_a.BatchCostWithExtras({}, extras, &scratch);
  EXPECT_EQ(scratch.bound_caches, &built_a->sealed);
  EXPECT_DEBUG_DEATH(
      (void)eval_b.BatchCostWithExtras({}, extras, &scratch),
      "EvalScratch reused with a different evaluator's cache vector");

  // Same-vector reuse stays allowed — including after an in-place
  // reseal, which ScratchReuseAcrossResealServesLiveCosts pins above.
  const std::vector<double> again =
      eval_a.BatchCostWithExtras({}, extras, &scratch);
  EXPECT_EQ(again.size(), extras.size());
}

TEST_F(IncrementalResealTest, MovedCachesKeepTheirSealAndPinnedContexts) {
  // Regression: SealedCache's move operations transfer the arena handle
  // but KEEP the seal id — a move is the same immutable seal changing
  // address, not a reseal. Vector reallocation (RebuildQueries growing
  // built->sealed, a generation copy reserving capacity) move-constructs
  // every element; if moves drew fresh seal ids, every pinned
  // EvalScratch context would look stale afterwards and the reuse/extend
  // fast paths would silently degrade into a full re-prepare storm.
  CandidateSet set = fix_->set;
  StatsCatalog stats = fix_->stats();
  const std::vector<Query>& queries = fix_->queries();
  WorkloadCacheBuilder builder(&fix_->catalog(), &set, &stats,
                               WorkloadCacheOptions{});
  auto built = builder.BuildAll(queries);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::vector<IndexId>& extras = set.candidate_ids;

  // Direct move ctor + move assignment: the context prepared before the
  // moves stays pinned to the live seal and keeps answering the delta
  // path bit-identically (the arena is shared, so its spans never dangle).
  SealedCache cache = built->sealed[0];
  const uint64_t seal_before = cache.seal_id();
  SealedCache::CostContext ctx;
  IndexConfig base;
  base.push_back(extras[0]);
  cache.PrepareContext(base, &ctx);
  ASSERT_EQ(ctx.seal_id(), seal_before);
  std::vector<double> expected;
  {
    SealedCache::CostContext fresh_ctx;
    built->sealed[0].PrepareContext(base, &fresh_ctx);
    for (IndexId extra : extras) {
      expected.push_back(built->sealed[0].CostWithExtra(&fresh_ctx, extra));
    }
  }
  SealedCache moved(std::move(cache));
  EXPECT_EQ(moved.seal_id(), seal_before);
  EXPECT_EQ(cache.ArenaBytes(), 0u);  // moved-from is an empty husk
  SealedCache assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.seal_id(), seal_before);
  for (size_t e = 0; e < extras.size(); ++e) {
    EXPECT_EQ(assigned.CostWithExtra(&ctx, extras[e]), expected[e])
        << "extra " << e;
  }

  // Whole-vector reallocation: every cache move-constructs to a new
  // address, every seal id survives, and a scratch pinned beforehand is
  // still recognized as live (no context re-prepared, same bits out).
  WorkloadCostEvaluator evaluator(&built->sealed);
  WorkloadCostEvaluator::EvalScratch scratch;
  const std::vector<double> pre =
      evaluator.BatchCostWithExtras({}, extras, &scratch);
  std::vector<uint64_t> ids_before;
  for (const SealedCache& c : built->sealed) ids_before.push_back(c.seal_id());
  built->sealed.reserve(built->sealed.capacity() * 2 + 1);
  for (size_t i = 0; i < built->sealed.size(); ++i) {
    EXPECT_EQ(built->sealed[i].seal_id(), ids_before[i]) << "query " << i;
    EXPECT_EQ(scratch.per_query[i].seal_id(), ids_before[i]) << "query " << i;
  }
  const std::vector<double> post =
      evaluator.BatchCostWithExtras({}, extras, &scratch);
  EXPECT_EQ(pre, post);
}

TEST_F(IncrementalResealTest, UnknownNameIsInvalidArgument) {
  CandidateSet set = fix_->set;
  StatsCatalog stats = fix_->stats();
  WorkloadCacheOptions opts;
  WorkloadCacheBuilder builder(&fix_->catalog(), &set, &stats, opts);
  auto built = builder.BuildAll(fix_->queries());
  ASSERT_TRUE(built.ok());
  const Status st =
      builder.RebuildQueries({"no_such_query"}, fix_->queries(), &*built);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  WorkloadCacheResult truncated = std::move(*built);
  truncated.sealed.pop_back();
  const Status parallel_st =
      builder.RebuildQueries({}, fix_->queries(), &truncated);
  EXPECT_EQ(parallel_st.code(), StatusCode::kInvalidArgument);
}

// Every workload family (src/workload/workload_family.h) upholds the
// same differential contract: small drift, half-workload drift, and
// full drift with universe growth, each bit-identical to a cold build.
// The trace line prints (family, seed) so a failure reproduces alone.
class FamilyResealTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilyResealTest, DifferentialResealBitIdentical) {
  auto fix = MakeFamilyFixture(GetParam());
  ASSERT_NE(fix, nullptr);
  SCOPED_TRACE(fix->trace());
  WorkloadCacheOptions opts;
  const size_t n = fix->queries().size();
  RunDifferentialCase(fix->catalog(), fix->set, fix->stats(),
                      fix->queries(), 1, 71, opts);
  RunDifferentialCase(fix->catalog(), fix->set, fix->stats(),
                      fix->queries(), n / 2, 73, opts);
  DriftOptions dopts;
  dopts.add_candidates = 2;
  RunDifferentialCase(fix->catalog(), fix->set, fix->stats(),
                      fix->queries(), n, 79, opts, dopts);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadFamilies, FamilyResealTest,
    ::testing::ValuesIn(WorkloadFamilyNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(IncrementalResealMiniTest, ClassicModeDifferential) {
  // The classic (one-call-per-IOC) builder exercises the store's
  // per-candidate and fallback invalidation tiers; MiniStar keeps the
  // IOC explosion affordable. Also runs serial (num_threads = 1) to pin
  // the pool-free path.
  MiniWorkloadFixture mini;
  for (const uint64_t seed : {61u, 67u}) {
    for (const size_t target : {size_t{1}, mini.queries.size()}) {
      WorkloadCacheOptions opts;
      opts.mode = CacheBuildMode::kClassic;
      opts.num_threads = 1;
      RunDifferentialCase(mini.mini.db.catalog(), mini.set,
                          mini.mini.db.stats(), mini.queries, target, seed,
                          opts);
    }
  }
}

TEST(IncrementalResealMiniTest, VaryQueryMixComposesWithUniqueNames) {
  // Rounds compose: feeding one round's mix (clones included) into the
  // next must never produce duplicate names — reseal targeting is
  // name-keyed, so a collision would silently rebuild the wrong query.
  MiniWorkloadFixture mini;
  std::vector<Query> mix = mini.queries;
  for (uint64_t round = 1; round <= 6; ++round) {
    mix = VaryQueryMix(mix, round, /*min_keep=*/1);
    ASSERT_FALSE(mix.empty());
    std::set<std::string> names;
    for (const Query& q : mix) {
      EXPECT_TRUE(names.insert(q.name).second)
          << "duplicate name '" << q.name << "' in round " << round;
    }
  }
}

TEST(IncrementalResealMiniTest, SharedStoreKeepsValidEntriesAcrossDrift) {
  // The half of the reseal contract call counting can see: rebuilding a
  // clone whose tables did NOT drift re-serves every access cost from
  // the shared store (0 calls), while a drifted table's entries are
  // gone and must be re-paid.
  MiniWorkloadFixture mini;
  std::vector<Query> repeated = {mini.queries[0], mini.queries[0]};
  repeated[1].name = "clone";

  WorkloadCacheOptions opts;
  opts.num_threads = 1;
  WorkloadCacheBuilder builder(&mini.mini.db.catalog(), &mini.set,
                               &mini.mini.db.stats(), opts);
  auto built = builder.BuildAll(repeated);
  ASSERT_TRUE(built.ok());

  // No drift: the rebuilt clone shares everything.
  WorkloadCacheStats totals;
  ASSERT_TRUE(
      builder.RebuildQueries({"clone"}, repeated, &*built, &totals).ok());
  EXPECT_EQ(totals.access_cost_calls, 0);
  EXPECT_EQ(totals.access_calls_saved, 1);

  // Drift d1 (the join query touches fact and d1): its entries are
  // invalidated, so the rebuild re-pays the access call.
  DriftTableStats(mini.mini.db.catalog(), mini.mini.d1, 2.0,
                  &mini.mini.db.stats());
  ASSERT_TRUE(
      builder.RebuildQueries({"clone"}, repeated, &*built, &totals).ok());
  EXPECT_GT(totals.access_cost_calls, 0);
}

}  // namespace
}  // namespace pinum
