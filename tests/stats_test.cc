#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/histogram.h"
#include "stats/selectivity.h"
#include "stats/table_stats.h"

namespace pinum {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.num_buckets(), 0);
}

TEST(HistogramTest, UniformFractionBelow) {
  Histogram h = Histogram::Uniform(0, 1000, 100);
  EXPECT_FALSE(h.empty());
  EXPECT_NEAR(h.FractionBelow(500, false), 0.5, 0.02);
  EXPECT_NEAR(h.FractionBelow(100, false), 0.1, 0.02);
  EXPECT_EQ(h.FractionBelow(-1, false), 0.0);
  EXPECT_EQ(h.FractionBelow(2000, true), 1.0);
}

TEST(HistogramTest, FractionBetween) {
  Histogram h = Histogram::Uniform(0, 1000, 100);
  EXPECT_NEAR(h.FractionBetween(250, 750), 0.5, 0.03);
  EXPECT_EQ(h.FractionBetween(10, 5), 0.0);
  EXPECT_NEAR(h.FractionBetween(0, 1000), 1.0, 0.01);
}

TEST(HistogramTest, FromDataEquiDepth) {
  // Skewed data: equi-depth bucket boundaries concentrate where the data
  // does, so the median estimate stays accurate.
  std::vector<Value> data;
  for (int i = 0; i < 900; ++i) data.push_back(i % 10);  // dense in [0,10)
  for (int i = 0; i < 100; ++i) data.push_back(1000 + i);
  Histogram h = Histogram::FromData(data, 50);
  EXPECT_NEAR(h.FractionBelow(10, false), 0.9, 0.05);
  EXPECT_NEAR(h.FractionBelow(1000, false), 0.9, 0.05);
}

TEST(HistogramTest, FromDataUniformMatchesAnalytic) {
  Rng rng(5);
  std::vector<Value> data;
  for (int i = 0; i < 10000; ++i) data.push_back(rng.Uniform(0, 999999));
  Histogram h = Histogram::FromData(data, 100);
  EXPECT_NEAR(h.FractionBelow(250000, false), 0.25, 0.02);
  EXPECT_NEAR(h.FractionBelow(750000, false), 0.75, 0.02);
}

TEST(HistogramTest, SingleValueData) {
  Histogram h = Histogram::FromData(std::vector<Value>(100, 7), 10);
  EXPECT_EQ(h.FractionBelow(6, true), 0.0);
  EXPECT_EQ(h.FractionBelow(8, false), 1.0);
}

ColumnStats UniformStats(Value min, Value max, double nd) {
  ColumnStats cs;
  cs.min = min;
  cs.max = max;
  cs.n_distinct = nd;
  cs.histogram = Histogram::Uniform(min, max, 100);
  return cs;
}

TEST(SelectivityTest, EqualityUsesNDistinct) {
  ColumnStats cs = UniformStats(0, 999, 1000);
  EXPECT_NEAR(RestrictionSelectivity(cs, CompareOp::kEq, 500), 0.001, 1e-9);
  // Out-of-range constants cannot match.
  EXPECT_EQ(RestrictionSelectivity(cs, CompareOp::kEq, -5), 0.0);
  EXPECT_EQ(RestrictionSelectivity(cs, CompareOp::kEq, 5000), 0.0);
}

TEST(SelectivityTest, RangeOnUniform) {
  ColumnStats cs = UniformStats(0, 1000000, 1000000);
  EXPECT_NEAR(RestrictionSelectivity(cs, CompareOp::kLe, 10000), 0.01, 0.005);
  EXPECT_NEAR(RestrictionSelectivity(cs, CompareOp::kGe, 990000), 0.01,
              0.005);
  EXPECT_NEAR(RestrictionSelectivity(cs, CompareOp::kLt, 500000), 0.5, 0.01);
  EXPECT_NEAR(RestrictionSelectivity(cs, CompareOp::kGt, 500000), 0.5, 0.01);
}

TEST(SelectivityTest, ComplementaryOpsSumToOne) {
  ColumnStats cs = UniformStats(0, 99999, 100000);
  for (Value v : {0, 1000, 50000, 99999}) {
    const double le = RestrictionSelectivity(cs, CompareOp::kLe, v);
    const double gt = RestrictionSelectivity(cs, CompareOp::kGt, v);
    EXPECT_NEAR(le + gt, 1.0, 1e-9) << "v=" << v;
  }
}

TEST(SelectivityTest, EquiJoinUsesLargerNDistinct) {
  ColumnStats big = UniformStats(0, 999999, 1000000);
  ColumnStats small = UniformStats(0, 999, 1000);
  EXPECT_NEAR(EquiJoinSelectivity(big, small), 1e-6, 1e-12);
  EXPECT_NEAR(EquiJoinSelectivity(small, small), 1e-3, 1e-9);
}

TEST(SelectivityTest, DistinctAfterRestrictionCapped) {
  EXPECT_EQ(DistinctAfterRestriction(1000, 0.001, 10000), 10.0);
  EXPECT_EQ(DistinctAfterRestriction(10, 0.5, 10000), 10.0);
  EXPECT_EQ(DistinctAfterRestriction(10, 0.0, 10000), 1.0);
}

TEST(TableStatsTest, RecomputePages) {
  TableDef def;
  def.name = "t";
  for (int i = 0; i < 4; ++i) {
    def.columns.push_back({"c" + std::to_string(i), TypeId::kInt64});
  }
  TableStats stats;
  stats.row_count = 1'000'000;
  stats.RecomputePages(def);
  // 60-byte tuples (32 data MAXALIGNed + 28 overhead), ~136 per 8K page.
  const double rows_per_page = std::floor(8168.0 / def.TupleWidth());
  EXPECT_NEAR(stats.heap_pages, std::ceil(1e6 / rows_per_page), 1.0);
}

TEST(StatsCatalogTest, FindColumn) {
  StatsCatalog stats;
  TableStats t;
  t.row_count = 10;
  t.columns.resize(2);
  t.columns[1].n_distinct = 42;
  stats.Put(7, t);
  ASSERT_NE(stats.Find(7), nullptr);
  EXPECT_EQ(stats.Find(8), nullptr);
  const ColumnStats* cs = stats.FindColumn({7, 1});
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->n_distinct, 42);
  EXPECT_EQ(stats.FindColumn({7, 5}), nullptr);
  EXPECT_EQ(stats.FindColumn({9, 0}), nullptr);
}

}  // namespace
}  // namespace pinum
