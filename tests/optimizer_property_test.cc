// Property-style tests of planner invariants, parameterized over the ten
// star-schema workload queries.
#include <gtest/gtest.h>

#include "optimizer/interesting_orders.h"
#include "optimizer/optimizer.h"
#include "workload/star_schema.h"

namespace pinum {
namespace {

/// Workload shared by all property tests (paper-scale statistics).
const StarSchemaWorkload& SharedWorkload() {
  static StarSchemaWorkload* w = [] {
    StarSchemaSpec spec;
    auto created = StarSchemaWorkload::Create(spec);
    return new StarSchemaWorkload(std::move(*created));
  }();
  return *w;
}

class QueryPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  const Query& query() const {
    return SharedWorkload().queries()[static_cast<size_t>(GetParam())];
  }
  const Catalog& catalog() const { return SharedWorkload().db().catalog(); }
  const StatsCatalog& stats() const { return SharedWorkload().db().stats(); }
};

void WalkPaths(const Path& p, const std::function<void(const Path&)>& fn) {
  fn(p);
  if (p.outer) WalkPaths(*p.outer, fn);
  if (p.inner) WalkPaths(*p.inner, fn);
}

TEST_P(QueryPropertyTest, PlanCoversAllTablesExactlyOnce) {
  Optimizer opt(&catalog(), &stats());
  auto r = opt.Optimize(query(), PlannerKnobs{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // One leaf slot per table position, each position exactly once.
  std::set<int> positions;
  for (const auto& slot : r->best->leaves) {
    EXPECT_TRUE(positions.insert(slot.table_pos).second);
  }
  EXPECT_EQ(positions.size(), query().tables.size());
}

TEST_P(QueryPropertyTest, CostsAreFiniteAndPositive) {
  Optimizer opt(&catalog(), &stats());
  auto r = opt.Optimize(query(), PlannerKnobs{});
  ASSERT_TRUE(r.ok());
  WalkPaths(*r->best, [](const Path& p) {
    EXPECT_GT(p.cost.total, 0);
    EXPECT_GE(p.cost.startup, 0);
    EXPECT_LE(p.cost.startup, p.cost.total + 1e-9);
    EXPECT_GE(p.rows, 0);
  });
}

TEST_P(QueryPropertyTest, ChildCostsNeverExceedParents) {
  Optimizer opt(&catalog(), &stats());
  auto r = opt.Optimize(query(), PlannerKnobs{});
  ASSERT_TRUE(r.ok());
  WalkPaths(*r->best, [](const Path& p) {
    if (p.outer && p.kind != PathKind::kNestLoop) {
      EXPECT_LE(p.outer->cost.total, p.cost.total + 1e-6)
          << PathKindName(p.kind);
    }
  });
}

TEST_P(QueryPropertyTest, DisablingNestloopRemovesAllNljNodes) {
  Optimizer opt(&catalog(), &stats());
  PlannerKnobs knobs;
  knobs.enable_nestloop = false;
  knobs.hooks.export_all_plans = true;
  auto r = opt.Optimize(query(), knobs);
  ASSERT_TRUE(r.ok());
  for (const auto& plan : r->exported) {
    WalkPaths(*plan, [](const Path& p) {
      EXPECT_NE(p.kind, PathKind::kNestLoop);
      EXPECT_NE(p.kind, PathKind::kIndexProbe);
    });
  }
}

TEST_P(QueryPropertyTest, ExportedSetContainsTheWinner) {
  Optimizer opt(&catalog(), &stats());
  PlannerKnobs knobs;
  knobs.hooks.export_all_plans = true;
  knobs.enable_nestloop = false;
  auto r = opt.Optimize(query(), knobs);
  ASSERT_TRUE(r.ok());
  double best = 1e30;
  for (const auto& p : r->exported) best = std::min(best, p->cost.total);
  EXPECT_NEAR(best, r->best->cost.total, 1e-6);
}

TEST_P(QueryPropertyTest, ExportedPlansSatisfyTheQueryOrder) {
  Optimizer opt(&catalog(), &stats());
  PlannerKnobs knobs;
  knobs.hooks.export_all_plans = true;
  knobs.enable_nestloop = false;
  auto r = opt.Optimize(query(), knobs);
  ASSERT_TRUE(r.ok());
  OrderSpec required;
  for (const auto& k : query().order_by) required.columns.push_back(k.column);
  for (const auto& p : r->exported) {
    EXPECT_TRUE(required.empty() || p->order.Satisfies(required))
        << p->Explain(catalog());
  }
}

TEST_P(QueryPropertyTest, InternalCostIsLeafIndependent) {
  // internal = total - sum(mult x unit) must be non-negative: leaves can
  // never cost more than the whole plan.
  Optimizer opt(&catalog(), &stats());
  PlannerKnobs knobs;
  knobs.hooks.export_all_plans = true;
  knobs.enable_nestloop = false;
  auto r = opt.Optimize(query(), knobs);
  ASSERT_TRUE(r.ok());
  for (const auto& p : r->exported) {
    EXPECT_GE(p->cost.total - p->LeafCostSum(), -1e-6)
        << p->Explain(catalog());
  }
}

TEST_P(QueryPropertyTest, ExportedCountBoundedByIocCount) {
  Optimizer opt(&catalog(), &stats());
  PlannerKnobs knobs;
  knobs.hooks.export_all_plans = true;
  knobs.enable_nestloop = false;
  auto r = opt.Optimize(query(), knobs);
  ASSERT_TRUE(r.ok());
  const uint64_t iocs = CountIocs(PerTableInterestingOrders(query()));
  // The Section IV observation: far fewer useful plans than IOCs.
  EXPECT_LE(r->exported.size(), iocs);
}

TEST_P(QueryPropertyTest, MoreMemoryNeverWorsensThePlan) {
  Optimizer opt(&catalog(), &stats());
  PlannerKnobs small;
  small.cost.work_mem_bytes = 1 << 20;
  PlannerKnobs big;
  big.cost.work_mem_bytes = 1 << 28;
  auto r_small = opt.Optimize(query(), small);
  auto r_big = opt.Optimize(query(), big);
  ASSERT_TRUE(r_small.ok());
  ASSERT_TRUE(r_big.ok());
  EXPECT_LE(r_big->best->cost.total, r_small->best->cost.total + 1e-6);
}

TEST_P(QueryPropertyTest, DeterministicAcrossRepeatedCalls) {
  Optimizer opt(&catalog(), &stats());
  auto r1 = opt.Optimize(query(), PlannerKnobs{});
  auto r2 = opt.Optimize(query(), PlannerKnobs{});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->best->cost.total, r2->best->cost.total);
  EXPECT_EQ(r1->best->Signature(catalog()), r2->best->Signature(catalog()));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloadQueries, QueryPropertyTest,
                         ::testing::Range(0, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param + 1);
                         });

}  // namespace
}  // namespace pinum
