#include <gtest/gtest.h>

#include "executor/executor.h"
#include "optimizer/optimizer.h"
#include "test_util.h"
#include "whatif/whatif_index.h"

namespace pinum {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : mini_(/*fact_rows=*/20'000, /*dim_rows=*/500) {
    EXPECT_TRUE(mini_.Materialize(20'000, 500).ok());
  }

  StatusOr<ExecResult> Run(const Query& q, const PlannerKnobs& knobs) {
    Optimizer opt(&mini_.db.catalog(), &mini_.db.stats());
    PINUM_ASSIGN_OR_RETURN(OptimizeResult r, opt.Optimize(q, knobs));
    PlanExecutor exec(&mini_.db);
    return exec.Execute(q, *r.best);
  }

  MiniStar mini_;
};

TEST_F(ExecutorTest, SingleTableScanMatchesBruteForce) {
  QueryBuilder qb(&mini_.db.catalog());
  auto q = qb.From("fact")
               .Select("fact", "c2")
               .Where("fact", "c1", CompareOp::kLe, 10000)
               .Build();
  ASSERT_TRUE(q.ok());
  auto result = Run(*q, PlannerKnobs{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Brute force count.
  const TableData* data = mini_.db.FindData(mini_.fact);
  int64_t expected = 0;
  for (int64_t r = 0; r < data->NumRows(); ++r) {
    if (data->at(r, 3) <= 10000) ++expected;
  }
  EXPECT_EQ(result->rows, expected);
  EXPECT_GT(expected, 0);
}

TEST_F(ExecutorTest, JoinPlansAgreeAcrossJoinMethods) {
  const Query q = mini_.JoinQuery();
  PlannerKnobs hash_only;
  hash_only.enable_nestloop = false;
  hash_only.enable_mergejoin = false;
  PlannerKnobs merge_only;
  merge_only.enable_nestloop = false;
  merge_only.enable_hashjoin = false;
  auto r_hash = Run(q, hash_only);
  auto r_merge = Run(q, merge_only);
  ASSERT_TRUE(r_hash.ok()) << r_hash.status().ToString();
  ASSERT_TRUE(r_merge.ok()) << r_merge.status().ToString();
  EXPECT_EQ(r_hash->rows, r_merge->rows);
  EXPECT_EQ(r_hash->checksum, r_merge->checksum);
  EXPECT_GT(r_hash->rows, 0);
}

TEST_F(ExecutorTest, NestLoopWithRealIndexAgrees) {
  // Build a real index on d1.id so the planner can pick an index NLJ.
  ASSERT_TRUE(mini_.db.BuildIndex("d1_id", mini_.d1, {0}).ok());
  const Query q = mini_.JoinQuery();
  PlannerKnobs nlj_only;
  nlj_only.enable_hashjoin = false;
  nlj_only.enable_mergejoin = false;
  auto r_nlj = Run(q, nlj_only);
  ASSERT_TRUE(r_nlj.ok()) << r_nlj.status().ToString();
  PlannerKnobs hash_only;
  hash_only.enable_nestloop = false;
  hash_only.enable_mergejoin = false;
  auto r_hash = Run(q, hash_only);
  ASSERT_TRUE(r_hash.ok());
  EXPECT_EQ(r_nlj->rows, r_hash->rows);
  EXPECT_EQ(r_nlj->checksum, r_hash->checksum);
}

TEST_F(ExecutorTest, OrderByRespected) {
  const Query q = mini_.JoinQuery();
  auto result = Run(q, PlannerKnobs{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ordered_ok);
}

TEST_F(ExecutorTest, ThreeWayJoinMatchesBruteForce) {
  const Query q = mini_.ThreeWayQuery();
  auto result = Run(q, PlannerKnobs{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Brute-force: count fact rows passing the filter (each fk matches
  // exactly one dim row since dim ids are unique 0..n-1).
  const TableData* fact = mini_.db.FindData(mini_.fact);
  int64_t expected = 0;
  for (int64_t r = 0; r < fact->NumRows(); ++r) {
    if (fact->at(r, 3) <= 10000) ++expected;
  }
  EXPECT_EQ(result->rows, expected);
}

TEST_F(ExecutorTest, GroupByAggregatesSums) {
  // GROUP BY d1.c1 with few distinct values to check sums exactly.
  // Use the id column of d1 modulo nothing — instead group by fk on a
  // small dim domain via d1.id join then group by d1.c1 bucket:
  QueryBuilder qb(&mini_.db.catalog());
  auto q = qb.From("d1")
               .Select("d1", "c1")
               .Select("d1", "c2")
               .GroupBy("d1", "c1")
               .Aggregate(AggKind::kSum)
               .OrderBy("d1", "c1")
               .Build();
  ASSERT_TRUE(q.ok());
  auto result = Run(*q, PlannerKnobs{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Groups = distinct c1 values in d1.
  const TableData* d1 = mini_.db.FindData(mini_.d1);
  std::set<Value> distinct;
  for (int64_t r = 0; r < d1->NumRows(); ++r) distinct.insert(d1->at(r, 1));
  EXPECT_EQ(result->rows, static_cast<int64_t>(distinct.size()));
  EXPECT_TRUE(result->ordered_ok);
}

TEST_F(ExecutorTest, HypotheticalIndexRefusedAtExecution) {
  // A plan that scans a what-if index must be refused: hypothetical
  // indexes exist only as statistics (paper, Section V-A).
  const TableDef* d1 = mini_.db.catalog().FindTable(mini_.d1);
  std::vector<IndexDef> hypo = {
      MakeWhatIfIndex("ghost", *d1, {0, 1}, 500)};
  std::vector<IndexId> ids;
  auto catalog = CatalogWithIndexes(mini_.db.catalog(), hypo, &ids);
  ASSERT_TRUE(catalog.ok());

  Path scan;
  scan.kind = PathKind::kIndexScan;
  scan.table = mini_.d1;
  scan.table_pos = 0;
  scan.index = ids[0];

  QueryBuilder qb(&mini_.db.catalog());
  auto q = qb.From("d1").Select("d1", "c1").Build();
  ASSERT_TRUE(q.ok());
  PlanExecutor exec(&mini_.db);
  auto result = exec.Execute(*q, scan);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, IndexScanMatchesSeqScanResults) {
  ASSERT_TRUE(mini_.db.BuildIndex("fact_c1", mini_.fact, {3}).ok());
  QueryBuilder qb(&mini_.db.catalog());
  auto q = qb.From("fact")
               .Select("fact", "c2")
               .Where("fact", "c1", CompareOp::kLe, 10000)
               .OrderBy("fact", "c2")
               .Build();
  ASSERT_TRUE(q.ok());
  // With the index built and ANALYZE'd stats, compare against brute force
  // regardless of which access path the planner picks.
  auto result = Run(*q, PlannerKnobs{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TableData* fact = mini_.db.FindData(mini_.fact);
  int64_t expected = 0;
  for (int64_t r = 0; r < fact->NumRows(); ++r) {
    if (fact->at(r, 3) <= 10000) ++expected;
  }
  EXPECT_EQ(result->rows, expected);
  EXPECT_TRUE(result->ordered_ok);
}

}  // namespace
}  // namespace pinum
