#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/btree_index.h"
#include "storage/database.h"

namespace pinum {
namespace {

TableDef TwoColTable(const std::string& name) {
  TableDef t;
  t.name = name;
  t.columns = {{"a", TypeId::kInt64}, {"b", TypeId::kInt64}};
  return t;
}

TEST(TableDataTest, AppendAndRead) {
  TableDef def = TwoColTable("t");
  def.id = 0;
  TableData data(def);
  data.AppendRow({1, 10});
  data.AppendRow({2, 20});
  EXPECT_EQ(data.NumRows(), 2);
  EXPECT_EQ(data.NumColumns(), 2u);
  EXPECT_EQ(data.at(0, 1), 10);
  EXPECT_EQ(data.at(1, 0), 2);
  EXPECT_EQ(data.column(1)[1], 20);
}

TEST(BtreePagesTest, LeafPagesScaleWithEntries) {
  const int width = 20;
  EXPECT_EQ(BtreeLeafPages(0, width), 1);
  const int64_t one_page = BtreeLeafPages(100, width);
  EXPECT_EQ(one_page, 1);
  const int64_t pages = BtreeLeafPages(1'000'000, width);
  // ~367 entries per page (8168*0.9/20) -> ~2724 pages.
  EXPECT_GT(pages, 2500);
  EXPECT_LT(pages, 3000);
}

TEST(BtreePagesTest, FullSizeAddsInternalLevels) {
  const BtreeSize small = BtreeFullSize(100, 20);
  EXPECT_EQ(small.height, 0);
  EXPECT_EQ(small.total_pages, small.leaf_pages);

  const BtreeSize big = BtreeFullSize(10'000'000, 20);
  EXPECT_GT(big.height, 0);
  EXPECT_GT(big.total_pages, big.leaf_pages);
  // Internal pages are a small fraction of the leaves (the premise of the
  // paper's what-if estimator ignoring them).
  const double internal =
      static_cast<double>(big.total_pages - big.leaf_pages);
  EXPECT_LT(internal / static_cast<double>(big.leaf_pages), 0.02);
}

TEST(BTreeIndexTest, OrderedAndRangeScan) {
  TableDef def = TwoColTable("t");
  def.id = 0;
  TableData data(def);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) data.AppendRow({rng.Uniform(0, 99), i});

  IndexDef idef;
  idef.name = "i";
  idef.table = 0;
  idef.key_columns = {0};
  BTreeIndex index(idef, def, data);
  EXPECT_EQ(index.NumEntries(), 1000);

  // Ordered scan yields non-decreasing keys.
  Value prev = -1;
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_GE(index.KeyAt(i), prev);
    prev = index.KeyAt(i);
  }

  // Range scan matches a brute-force filter.
  const auto hits = index.RangeScan(10, 19);
  size_t expected = 0;
  for (int64_t r = 0; r < 1000; ++r) {
    const Value v = data.at(r, 0);
    if (v >= 10 && v <= 19) ++expected;
  }
  EXPECT_EQ(hits.size(), expected);
  for (RowIdx r : hits) {
    EXPECT_GE(data.at(r, 0), 10);
    EXPECT_LE(data.at(r, 0), 19);
  }

  // Empty and full ranges.
  EXPECT_TRUE(index.RangeScan(200, 300).empty());
  EXPECT_EQ(index.RangeScan(0, 99).size(), 1000u);
}

TEST(BTreeIndexTest, MultiColumnKeyTiebreak) {
  TableDef def = TwoColTable("t");
  def.id = 0;
  TableData data(def);
  data.AppendRow({5, 3});
  data.AppendRow({5, 1});
  data.AppendRow({4, 9});
  IndexDef idef;
  idef.name = "i";
  idef.table = 0;
  idef.key_columns = {0, 1};
  BTreeIndex index(idef, def, data);
  const auto& rows = index.OrderedRows();
  EXPECT_EQ(data.at(rows[0], 0), 4);
  EXPECT_EQ(data.at(rows[1], 1), 1);  // (5,1) before (5,3)
  EXPECT_EQ(data.at(rows[2], 1), 3);
}

TEST(DatabaseTest, BuildIndexUpdatesCatalogStats) {
  Database db;
  auto tid = db.catalog().AddTable(TwoColTable("t"));
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(db.CreateTableStorage(*tid).ok());
  TableData* data = db.MutableData(*tid);
  Rng rng(1);
  for (int i = 0; i < 50000; ++i) {
    data->AppendRow({rng.Uniform(0, 1000000), i});
  }
  auto iid = db.BuildIndex("idx_a", *tid, {0});
  ASSERT_TRUE(iid.ok());
  const IndexDef* def = db.catalog().FindIndex(*iid);
  ASSERT_NE(def, nullptr);
  EXPECT_FALSE(def->hypothetical);
  EXPECT_GT(def->leaf_pages, 0);
  EXPECT_GE(def->total_pages, def->leaf_pages);
  EXPECT_NE(db.FindBuiltIndex(*iid), nullptr);

  ASSERT_TRUE(db.DropIndex(*iid).ok());
  EXPECT_EQ(db.FindBuiltIndex(*iid), nullptr);
  EXPECT_EQ(db.catalog().FindIndex(*iid), nullptr);
}

TEST(DatabaseTest, BuildIndexRequiresData) {
  Database db;
  auto tid = db.catalog().AddTable(TwoColTable("t"));
  auto iid = db.BuildIndex("idx", *tid, {0});
  EXPECT_FALSE(iid.ok());
  EXPECT_EQ(iid.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, AnalyzeComputesColumnStats) {
  Database db;
  auto tid = db.catalog().AddTable(TwoColTable("t"));
  ASSERT_TRUE(db.CreateTableStorage(*tid).ok());
  TableData* data = db.MutableData(*tid);
  // Column a: sorted 0..999 (correlation 1). Column b: reverse sorted.
  for (int i = 0; i < 1000; ++i) data->AppendRow({i, 999 - i});
  ASSERT_TRUE(db.AnalyzeTable(*tid).ok());
  const TableStats* stats = db.stats().Find(*tid);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->row_count, 1000);
  EXPECT_GE(stats->heap_pages, 1);
  const ColumnStats& a = stats->columns[0];
  EXPECT_EQ(a.n_distinct, 1000);
  EXPECT_EQ(a.min, 0);
  EXPECT_EQ(a.max, 999);
  EXPECT_NEAR(a.correlation, 1.0, 1e-9);
  EXPECT_NEAR(stats->columns[1].correlation, -1.0, 1e-9);
}

TEST(DatabaseTest, CreateStorageErrors) {
  Database db;
  EXPECT_EQ(db.CreateTableStorage(3).code(), StatusCode::kNotFound);
  auto tid = db.catalog().AddTable(TwoColTable("t"));
  ASSERT_TRUE(db.CreateTableStorage(*tid).ok());
  EXPECT_EQ(db.CreateTableStorage(*tid).code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace pinum
